package cnnrev_test

import (
	"fmt"

	"cnnrev"
)

// ExampleRunStructureAttack reverse engineers a LeNet's structure from one
// traced inference.
func ExampleRunStructureAttack() {
	victim := cnnrev.LeNet(10)
	victim.InitWeights(1)
	rep, err := cnnrev.RunStructureAttack(victim, cnnrev.DefaultAccelConfig(), cnnrev.DefaultSolverOptions(), 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("layers recovered:", len(rep.Analysis.Segments))
	fmt.Println("victim structure among candidates:", rep.TruthIndex >= 0)
	// Output:
	// layers recovered: 4
	// victim structure among candidates: true
}

// ExampleRunWeightAttack recovers weight/bias ratios through the
// zero-pruning write-count side channel.
func ExampleRunWeightAttack() {
	victim := cnnrev.PrunedConv1(2, 0.25, 5)
	rep, err := cnnrev.RunWeightAttack(victim, cnnrev.AccelConfig{})
	if err != nil {
		panic(err)
	}
	fmt.Println("within paper precision:", rep.MaxRatioErr < 1.0/1024)
	fmt.Println("zero weights misclassified:", rep.ZeroErrors)
	// Output:
	// within paper precision: true
	// zero weights misclassified: 0
}

// ExampleObfuscateTrace shows Path ORAM defeating the structure attack.
func ExampleObfuscateTrace() {
	victim := cnnrev.LeNet(10)
	victim.InitWeights(1)
	tr, _ := cnnrev.CaptureTrace(victim, cnnrev.DefaultAccelConfig(), 2)
	obf, stats, err := cnnrev.ObfuscateTrace(tr, cnnrev.ORAMConfig{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println("overhead exceeds 50x:", stats.Overhead() > 50)
	_, attackErr := cnnrev.RunStructureAttackOnTrace(obf, victim.Input, 10)
	fmt.Println("attack defeated:", attackErr != nil)
	// Output:
	// overhead exceeds 50x: true
	// attack defeated: true
}
