package cnnrev

import (
	"context"
	"io"
	"math"
	"math/rand"
	"sync"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/experiments"
	"cnnrev/internal/nn"
	"cnnrev/internal/oram"
	"cnnrev/internal/structrev"
	"cnnrev/internal/tensor"
	"cnnrev/internal/weightrev"
)

// ---------------------------------------------------------------------------
// Paper artifacts: one benchmark per table and figure. Each runs the full
// regeneration pipeline and reports the headline quantity as a custom
// metric, so `go test -bench .` doubles as the reproduction harness.
// ---------------------------------------------------------------------------

func benchTable3(b *testing.B, model string, paper int) {
	b.ReportAllocs()
	b.Helper()
	var count int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table3([]string{model})
		if err != nil {
			b.Fatal(err)
		}
		if !rows[0].TruthFound {
			b.Fatalf("%s: true structure lost", model)
		}
		count = rows[0].Count
	}
	b.ReportMetric(float64(count), "candidates")
	b.ReportMetric(float64(paper), "paper_candidates")
}

func BenchmarkTable3_LeNet(b *testing.B)      { benchTable3(b, "lenet", 9) }
func BenchmarkTable3_ConvNet(b *testing.B)    { benchTable3(b, "convnet", 6) }
func BenchmarkTable3_AlexNet(b *testing.B)    { benchTable3(b, "alexnet", 24) }
func BenchmarkTable3_SqueezeNet(b *testing.B) { benchTable3(b, "squeezenet", 9) }

func BenchmarkTable4_AlexNetConfigs(b *testing.B) {
	b.ReportAllocs()
	var rep *experiments.Table4Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if !rep.TruthFound {
			b.Fatal("true structure lost")
		}
	}
	rows := 0
	for _, cfgs := range rep.Configs {
		rows += len(cfgs)
	}
	b.ReportMetric(float64(rows), "config_rows")
	b.ReportMetric(float64(rep.Combinations), "combinations")
}

func BenchmarkFig3_MemoryTrace(b *testing.B) {
	b.ReportAllocs()
	var rep *experiments.Fig3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig3("alexnet", io.Discard)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.Segments), "layer_boundaries")
	b.ReportMetric(float64(rep.TraceRecords), "trace_records")
}

func BenchmarkFig4_CandidateAccuracy(b *testing.B) {
	b.ReportAllocs()
	var rep *experiments.RankReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig4(core.RankConfig{
			Classes: 3, PerClass: 6, Epochs: 1, DepthDiv: 48, Seed: 9, MaxCandidates: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.TruthRank), "truth_rank")
	b.ReportMetric(float64(rep.Candidates), "candidates_trained")
}

func BenchmarkFig5_SqueezeNetAccuracy(b *testing.B) {
	b.ReportAllocs()
	var rep *experiments.RankReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig5(core.RankConfig{
			Classes: 6, PerClass: 8, Epochs: 1, DepthDiv: 32, TopK: 5, Seed: 9,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.TruthRank), "truth_rank")
	b.ReportMetric(float64(rep.Candidates), "candidates_trained")
}

func BenchmarkFig7_WeightRecovery(b *testing.B) {
	b.ReportAllocs()
	var rep *experiments.Fig7Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.Fig7(16)
		if err != nil {
			b.Fatal(err)
		}
		if rep.MaxRatioErr > 1.0/1024 {
			b.Fatalf("ratio error %g exceeds the paper's 2^-10 bound", rep.MaxRatioErr)
		}
		if rep.ZeroErrors != 0 {
			b.Fatalf("%d zero-weight misclassifications", rep.ZeroErrors)
		}
	}
	b.ReportMetric(rep.MaxRatioErr, "max_ratio_err")
	b.ReportMetric(float64(rep.Queries), "device_queries")
}

// weightAttackVictim builds a single-conv victim with a model's first-layer
// geometry, minus pooling and padding (the ratio attack's corner iteration
// needs P=0 and no fused pool): deterministic signed weights bounded away
// from zero, 20% exact zeros, positive bias.
func weightAttackVictim(in nn.Shape, outC, f int, seed int64) *nn.Network {
	spec := nn.LayerSpec{Name: "conv1", Kind: nn.KindConv, OutC: outC, F: f, S: 1, ReLU: true}
	net := nn.MustNew("victim", in, []nn.LayerSpec{spec})
	rng := rand.New(rand.NewSource(seed))
	w := net.Params[0].W.Data
	for i := range w {
		if rng.Float64() < 0.2 {
			w[i] = 0
			continue
		}
		mag := 0.05 + 0.25*rng.Float64()
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		w[i] = float32(mag)
	}
	for i := range net.Params[0].B.Data {
		net.Params[0].B.Data[i] = 0.07
	}
	return net
}

// benchWeightAttack runs the full §4 recovery (parallel per-filter fan-out
// through core.RunWeightAttack) against a first-layer-geometry victim.
func benchWeightAttack(b *testing.B, in nn.Shape, outC, f int, seed int64) {
	net := weightAttackVictim(in, outC, f, seed)
	b.ReportAllocs()
	var rep *core.WeightReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = core.RunWeightAttack(net, accel.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if rep.ZeroErrors != 0 {
			b.Fatalf("%d zero-weight misclassifications", rep.ZeroErrors)
		}
	}
	b.ReportMetric(float64(rep.Queries), "device_queries")
	b.ReportMetric(rep.MaxRatioErr, "max_ratio_err")
}

// BenchmarkWeightAttack_LeNet: LeNet conv1 geometry (1x28x28 in, 6 filters
// of 5x5), unpooled/unpadded.
func BenchmarkWeightAttack_LeNet(b *testing.B) {
	benchWeightAttack(b, nn.Shape{C: 1, H: 28, W: 28}, 6, 5, 31)
}

// BenchmarkWeightAttack_ConvNet: CIFAR ConvNet conv1 geometry (3x32x32 in,
// 32 filters of 5x5), unpooled/unpadded.
func BenchmarkWeightAttack_ConvNet(b *testing.B) {
	benchWeightAttack(b, nn.Shape{C: 3, H: 32, W: 32}, 32, 5, 32)
}

// ---------------------------------------------------------------------------
// Ablations (design choices DESIGN.md calls out).
// ---------------------------------------------------------------------------

func BenchmarkAblationToleranceSweep(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.TimingSweepRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationTimingSweep("alexnet", []float64{1.15, 1.35, 2.0})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Tolerance == 1.35 {
			b.ReportMetric(float64(r.Candidates), "candidates_tol1.35")
		}
	}
}

func BenchmarkAblationKernelBound(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.KernelBoundRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationKernelBound("alexnet", []int{11, 22})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[len(rows)-1].Candidates), "candidates_unbounded22")
}

func BenchmarkAblationZeroPruning(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.PruneTrafficRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationZeroPruneTraffic(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].TrafficFactor, "traffic_ratio_sparse")
}

func BenchmarkAblationORAM(b *testing.B) {
	b.ReportAllocs()
	var rep *experiments.ORAMReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.AblationORAM("lenet")
		if err != nil {
			b.Fatal(err)
		}
		if !rep.AttackDefeated {
			b.Fatal("ORAM failed to defeat the attack")
		}
	}
	b.ReportMetric(rep.Overhead, "oram_overhead_x")
}

func BenchmarkAblationBiasInDRAM(b *testing.B) {
	b.ReportAllocs()
	var rep *experiments.BiasAblationReport
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.AblationBiasInDRAM("lenet")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.PaperModel), "candidates_paper_model")
	b.ReportMetric(float64(rep.BiasInDRAM), "candidates_bias_in_dram")
}

func BenchmarkAblationBlockSize(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.BlockSizeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationBlockSize("lenet", []int{4, 16})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rows[0].Candidates), "candidates_4B")
	b.ReportMetric(float64(rows[1].Candidates), "candidates_16B")
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

// gemmOperands builds deterministic operands for the GEMM shape benchmarks.
func gemmOperands(lenA, lenB, lenC int) (a, bb, c []float32) {
	rng := rand.New(rand.NewSource(1))
	a = make([]float32, lenA)
	bb = make([]float32, lenB)
	c = make([]float32, lenC)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range bb {
		bb[i] = float32(rng.NormFloat64())
	}
	return a, bb, c
}

func benchGemmShape(b *testing.B, m, k, n int) {
	b.ReportAllocs()
	b.Helper()
	a, bb, c := gemmOperands(m*k, k*n, m*n)
	b.SetBytes(int64(m*k+k*n+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.Gemm(a, bb, c, m, k, n)
	}
}

// Square, skinny and transposed shapes of the cache-blocked GEMM family.
// The naive-reference comparison benchmarks live next to the kernels in
// internal/tensor/gemm_bench_test.go.

func BenchmarkGemm256(b *testing.B)       { benchGemmShape(b, 256, 256, 256) }
func BenchmarkGemmSquare512(b *testing.B) { benchGemmShape(b, 512, 512, 512) }

// m=1: a single-sample FC forward row (classifier shape).
func BenchmarkGemmSkinnyM1(b *testing.B) { benchGemmShape(b, 1, 4096, 1000) }

// n=1: a matrix-vector product.
func BenchmarkGemmSkinnyN1(b *testing.B) { benchGemmShape(b, 2048, 1024, 1) }

func BenchmarkGemmTransA(b *testing.B) {
	b.ReportAllocs()
	// Conv backward dcols shape: (k×OutC)ᵀ·(OutC×n), AlexNet conv2 family.
	m, k, n := 2400, 256, 729
	a, bb, c := gemmOperands(k*m, k*n, m*n)
	b.SetBytes(int64(k*m+k*n+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmTransA(a, bb, c, m, k, n)
	}
}

func BenchmarkGemmTransB(b *testing.B) {
	b.ReportAllocs()
	// Conv backward dW shape: (OutC×spatial)·(k×spatial)ᵀ.
	m, k, n := 256, 729, 2400
	a, bb, c := gemmOperands(m*k, n*k, m*n)
	b.SetBytes(int64(m*k+n*k+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.GemmTransB(a, bb, c, m, k, n)
	}
}

func BenchmarkConvForwardAlexNetConv2(b *testing.B) {
	b.ReportAllocs()
	conv := tensor.Conv2D{InC: 96, OutC: 256, F: 5, S: 1, P: 2}
	in := make([]float32, 96*27*27)
	w := make([]float32, 256*96*5*5)
	bias := make([]float32, 256)
	oh, ow := conv.OutDims(27, 27)
	out := make([]float32, 256*oh*ow)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conv.Forward(in, 27, 27, w, bias, out, nil)
	}
}

func BenchmarkAccelTraceAlexNet(b *testing.B) {
	b.ReportAllocs()
	net := nn.AlexNet(1000, 1)
	net.InitWeights(1)
	x := make([]float32, net.Input.Len())
	for i := 0; i < b.N; i++ {
		sim, err := accel.New(net, accel.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveAlexNet(b *testing.B) {
	b.ReportAllocs()
	net := nn.AlexNet(1000, 1)
	net.InitWeights(1)
	cap, err := core.Capture(net, accel.Config{}, 2)
	if err != nil {
		b.Fatal(err)
	}
	a, err := structrev.Analyze(cap.Result.Trace, net.Input.Len()*4, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := structrev.Solve(a, 227, 3, 1000, structrev.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrainerEpochLeNet(b *testing.B) {
	b.ReportAllocs()
	net := nn.LeNet(3)
	net.InitWeights(1)
	xs := make([][]float32, 30)
	ys := make([]int, 30)
	rng := rand.New(rand.NewSource(2))
	for i := range xs {
		xs[i] = make([]float32, net.Input.Len())
		for j := range xs[i] {
			xs[i][j] = float32(rng.NormFloat64())
		}
		ys[i] = i % 3
	}
	tr := nn.NewTrainer(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Epoch(xs, ys, rng)
	}
}

func BenchmarkORAMObfuscate(b *testing.B) {
	b.ReportAllocs()
	net := nn.LeNet(10)
	net.InitWeights(1)
	cap, err := core.Capture(net, accel.Config{}, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := oram.Obfuscate(cap.Result.Trace, oram.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDataflow(b *testing.B) {
	b.ReportAllocs()
	var rows []experiments.DataflowRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationDataflow("convnet")
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.TruthFound {
				b.Fatalf("%s lost the truth", r.Dataflow)
			}
		}
	}
	b.ReportMetric(float64(rows[0].Candidates), "candidates")
}

func BenchmarkExtensionLayerPeeling(b *testing.B) {
	b.ReportAllocs()
	net := peelingVictim()
	for i := 0; i < b.N; i++ {
		o, err := weightrev.NewStackOracle(net)
		if err != nil {
			b.Fatal(err)
		}
		at := weightrev.NewStackAttacker(o, net)
		rec, err := at.Recover()
		if err != nil {
			b.Fatal(err)
		}
		if rec.Unreachable[1][0] || rec.Unreachable[1][1] || rec.Unreachable[1][2] {
			b.Fatal("injection failed")
		}
	}
}

// peelingVictim builds the 2-layer ladder-dominant stack used by the
// peeling benchmark (mirrors examples/peeling).
func peelingVictim() *nn.Network {
	net, err := nn.New("stack", nn.Shape{C: 1, H: 16, W: 16}, []nn.LayerSpec{
		{Name: "conv0", Kind: nn.KindConv, OutC: 3, F: 3, S: 2, ReLU: true},
		{Name: "conv1", Kind: nn.KindConv, OutC: 2, F: 2, S: 1, ReLU: true},
	})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(41))
	w0 := net.Params[0].W.Data
	for i := range w0 {
		w0[i] = float32(0.01 + 0.03*rng.Float64())
		if rng.Intn(2) == 0 {
			w0[i] = -w0[i]
		}
	}
	w0[(0*3+1)*3+1] = 0.5
	w0[(1*3+1)*3+1] = -0.5
	w0[(2*3+0)*3+1] = 0.5
	w0[(2*3+2)*3+1] = 0.02
	for d := 0; d < 3; d++ {
		net.Params[0].B.Data[d] = float32(-0.04 - 0.02*rng.Float64())
	}
	w1 := net.Params[1].W.Data
	for i := range w1 {
		m := 0.08 + 0.3*rng.Float64()
		if rng.Intn(2) == 0 {
			m = -m
		}
		w1[i] = float32(m)
	}
	for d := 0; d < 2; d++ {
		net.Params[1].B.Data[d] = float32(-0.02 - 0.02*rng.Float64())
	}
	return net
}

// BenchmarkPipeline_LeNet times the complete attack pipeline end to end:
// trace capture on the simulated accelerator, trace analysis, structure
// solving, and parallel candidate ranking — the wall-clock an adversary pays
// from first observation to a ranked structure list. This is the headline
// number for the pipeline-throughput work; before/after figures live in
// results/perf_pipeline.md.
func BenchmarkPipeline_LeNet(b *testing.B) {
	b.ReportAllocs()
	net := nn.LeNet(3)
	net.InitWeights(1)
	var ranked int
	for i := 0; i < b.N; i++ {
		rep, err := core.RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
		if err != nil {
			b.Fatal(err)
		}
		if rep.TruthIndex < 0 {
			b.Fatal("true structure lost")
		}
		scores := core.RankCandidates(rep, net.Input, core.RankConfig{
			Classes: 3, PerClass: 12, Epochs: 3, DepthDiv: 1, Seed: 7, MaxCandidates: 8,
		})
		if len(scores) == 0 {
			b.Fatal("no ranked candidates")
		}
		ranked = len(scores)
	}
	b.ReportMetric(float64(ranked), "candidates_ranked")
}

// ---------------------------------------------------------------------------
// Candidate-ranking schedules: flat full-budget training vs the
// successive-halving tournament on a wide report (LeNet at timing tolerance
// 4.0 yields ~93 candidates). Both benchmarks rank the identical report
// with the identical seed; the Halving variant asserts it selects the same
// top-1 as the flat reference — a winner whose full-budget validation
// accuracy is bit-equal to the flat winner's (under an exact accuracy tie
// the selection criterion cannot distinguish the tied candidates, so that
// is what "same top-1" means) — while spending at least 3x fewer training
// epochs. Committed numbers live in results/perf_rank.md and
// results/bench_rank.json.
// ---------------------------------------------------------------------------

var rankBench struct {
	once  sync.Once
	rep   *core.StructureReport
	input nn.Shape
	rc    core.RankConfig
	flat  *core.RankResult // untimed reference for the top-1 assertion
	err   error
}

func rankBenchSetup(b *testing.B) {
	b.Helper()
	rankBench.once.Do(func() {
		net := nn.LeNet(10)
		net.InitWeights(1)
		opt := structrev.DefaultOptions()
		opt.TimingSpreadMax = 4.0
		rep, err := core.RunStructureAttack(net, accel.Config{}, opt, 2)
		if err != nil {
			rankBench.err = err
			return
		}
		rankBench.rep = rep
		rankBench.input = net.Input
		rankBench.rc = core.RankConfig{Classes: 4, PerClass: 24, Epochs: 12, DepthDiv: 1, Seed: 9}
		rankBench.flat = core.RankCandidatesResult(context.Background(), rep, net.Input, rankBench.rc)
	})
	if rankBench.err != nil {
		b.Fatal(rankBench.err)
	}
	if n := len(rankBench.flat.Scores); n < 64 {
		b.Fatalf("want a >= 64-candidate report, got %d", n)
	}
}

func BenchmarkRank_Flat(b *testing.B) {
	rankBenchSetup(b)
	b.ReportAllocs()
	var res *core.RankResult
	for i := 0; i < b.N; i++ {
		res = core.RankCandidatesResult(context.Background(), rankBench.rep, rankBench.input, rankBench.rc)
	}
	if res.Scores[0].Index != rankBench.flat.Scores[0].Index {
		b.Fatalf("flat ranking nondeterministic: top-1 %d vs %d", res.Scores[0].Index, rankBench.flat.Scores[0].Index)
	}
	b.ReportMetric(float64(res.TotalEpochs), "total_epochs")
	b.ReportMetric(float64(len(res.Scores)), "candidates")
}

func BenchmarkRank_Halving(b *testing.B) {
	rankBenchSetup(b)
	b.ReportAllocs()
	rc := rankBench.rc
	rc.Halving, rc.Eta, rc.MinEpochs = true, 2, 1
	var res *core.RankResult
	for i := 0; i < b.N; i++ {
		res = core.RankCandidatesResult(context.Background(), rankBench.rep, rankBench.input, rc)
	}
	ref := rankBench.flat
	best := math.Float64bits(ref.Scores[0].Accuracy)
	sameTop1 := false
	for _, sc := range ref.Scores {
		if sc.Index == res.Scores[0].Index {
			sameTop1 = math.Float64bits(sc.Accuracy) == best && sc.Epochs == ref.Scores[0].Epochs
			break
		}
	}
	if !sameTop1 {
		b.Fatalf("tournament top-1 %d (acc %.4f) is not flat's top-1 selection (candidate %d, acc %.4f)",
			res.Scores[0].Index, res.Scores[0].Accuracy, ref.Scores[0].Index, ref.Scores[0].Accuracy)
	}
	if math.Float64bits(res.Scores[0].Accuracy) != best {
		b.Fatalf("winner accuracy differs: %v vs %v", res.Scores[0].Accuracy, ref.Scores[0].Accuracy)
	}
	if res.TotalEpochs*3 > ref.TotalEpochs {
		b.Fatalf("epoch reduction below 3x: tournament %d vs flat %d", res.TotalEpochs, ref.TotalEpochs)
	}
	b.ReportMetric(float64(res.TotalEpochs), "total_epochs")
	b.ReportMetric(float64(ref.TotalEpochs)/float64(res.TotalEpochs), "epoch_reduction_x")
	b.ReportMetric(float64(len(res.Scores)), "candidates")
}
