package memtrace

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"
)

func TestRecorderMergesContiguousBursts(t *testing.T) {
	r := NewRecorder(4)
	r.Record(10, 100, 2, Read)
	r.Record(10, 108, 3, Read) // extends previous burst
	r.Record(10, 140, 1, Read) // gap: new record
	r.Record(10, 144, 1, Write)
	tr := r.Trace()
	if len(tr.Accesses) != 3 {
		t.Fatalf("got %d records, want 3: %+v", len(tr.Accesses), tr.Accesses)
	}
	if tr.Accesses[0].Count != 5 {
		t.Fatalf("merged count = %d, want 5", tr.Accesses[0].Count)
	}
	if tr.Blocks() != 7 {
		t.Fatalf("Blocks = %d, want 7", tr.Blocks())
	}
}

func TestRecorderRejectsUnaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unaligned address")
		}
	}()
	NewRecorder(8).Record(0, 4, 1, Read)
}

func TestRecordBytesRoundsUp(t *testing.T) {
	r := NewRecorder(8)
	r.RecordBytes(0, 0, 9, Write)
	tr := r.Trace()
	if tr.Accesses[0].Count != 2 {
		t.Fatalf("9 bytes at block 8 = %d blocks, want 2", tr.Accesses[0].Count)
	}
	r2 := NewRecorder(8)
	r2.RecordBytes(0, 0, 0, Write)
	if len(r2.Trace().Accesses) != 0 {
		t.Fatal("zero-byte record must be dropped")
	}
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr := &Trace{BlockBytes: 4, Accesses: []Access{
		{Cycle: 1, Addr: 4096, Count: 10, Kind: Read},
		{Cycle: 99, Addr: 8192, Count: 1, Kind: Write},
	}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockBytes != tr.BlockBytes || len(got.Accesses) != len(tr.Accesses) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range tr.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("access %d: %+v != %+v", i, got.Accesses[i], tr.Accesses[i])
		}
	}
}

// TestTraceSerializationRoundTripLarge round-trips a trace big enough to
// exercise the fixed-record fast path across many bufio flushes, and checks
// the on-disk size against the documented layout (24-byte header + 21-byte
// records) so the format cannot drift.
func TestTraceSerializationRoundTripLarge(t *testing.T) {
	const n = 200_000
	tr := &Trace{BlockBytes: 64, Accesses: make([]Access, n)}
	for i := range tr.Accesses {
		tr.Accesses[i] = Access{
			Cycle: uint64(i) * 3,
			Addr:  uint64(i%4096) * 64,
			Count: uint32(i%7 + 1),
			Kind:  Kind(i % 2),
		}
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if want := 24 + n*21; buf.Len() != want {
		t.Fatalf("serialized size = %d bytes, want %d (format drift)", buf.Len(), want)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.BlockBytes != tr.BlockBytes || len(got.Accesses) != n {
		t.Fatalf("round trip header mismatch: block=%d n=%d", got.BlockBytes, len(got.Accesses))
	}
	for i := range tr.Accesses {
		if got.Accesses[i] != tr.Accesses[i] {
			t.Fatalf("access %d: %+v != %+v", i, got.Accesses[i], tr.Accesses[i])
		}
	}
}

// TestReadTraceRejectsInvalidKind corrupts the direction byte of a record;
// silently accepting it would misclassify reads vs. writes downstream.
func TestReadTraceRejectsInvalidKind(t *testing.T) {
	tr := &Trace{BlockBytes: 4, Accesses: []Access{
		{Cycle: 1, Addr: 0, Count: 1, Kind: Read},
		{Cycle: 2, Addr: 4, Count: 1, Kind: Write},
	}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Kind byte of the second record: header (24) + one record (21) + 20.
	raw[24+21+20] = 2
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected error for invalid kind byte")
	}
	raw[24+21+20] = 0xFF
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected error for 0xFF kind byte")
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("not a trace at all........"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

// TestReadTraceRejectsHighMagicGarbage pins the full-magic check: a header
// whose low 32 bits match but whose high word is garbage used to slip past
// the streaming reader (it validated only uint32(magic)).
func TestReadTraceRejectsHighMagicGarbage(t *testing.T) {
	tr := &Trace{BlockBytes: 4, Accesses: []Access{{Cycle: 1, Addr: 0, Count: 1, Kind: Write}}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[4:8], 0xDEADBEEF)
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected error for garbage high magic word")
	}
	if _, err := DecodeTrace(raw); err == nil {
		t.Fatal("DecodeTrace must agree on the garbage high magic word")
	}
}

// TestReadTraceRejectsAbsurdBlockSize pins the (0, MaxBlockBytes] bound: a
// multi-gigabyte block size used to decode "successfully" and feed absurd
// block arithmetic downstream.
func TestReadTraceRejectsAbsurdBlockSize(t *testing.T) {
	for _, block := range []uint64{0, MaxBlockBytes + 1, 1 << 33} {
		tr := &Trace{BlockBytes: 4, Accesses: []Access{{Cycle: 1, Addr: 0, Count: 1, Kind: Write}}}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		raw := buf.Bytes()
		binary.LittleEndian.PutUint64(raw[8:16], block)
		if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
			t.Fatalf("expected error for block size %d", block)
		}
	}
}

// TestDecodersRejectOverflowingExtent pins the Addr + Count·block wrap check
// in both decode paths: a wrapped extent yields Interval{Lo > Hi}, which
// corrupts the analyzer's region index.
func TestDecodersRejectOverflowingExtent(t *testing.T) {
	tr := &Trace{BlockBytes: 64, Accesses: []Access{
		{Cycle: 1, Addr: ^uint64(0) - 128, Count: 1 << 20, Kind: Read},
	}}
	if got := tr.Accesses[0].End(tr.BlockBytes); got >= tr.Accesses[0].Addr {
		t.Fatalf("test premise broken: extent %#x did not wrap", got)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTrace(buf.Bytes()); err == nil {
		t.Fatal("DecodeTrace accepted a wrapping extent")
	}
	if _, err := ReadTrace(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("ReadTrace accepted a wrapping extent")
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("Validate accepted a wrapping extent")
	}
	// The exact boundary: End is exclusive, so the largest acceptable extent
	// ends at 2^64 - 1 (Addr = 2^64 - 1 - Count·block).
	edge := &Trace{BlockBytes: 64, Accesses: []Access{
		{Cycle: 1, Addr: ^uint64(0) - 64*5, Count: 5, Kind: Read},
	}}
	var ebuf bytes.Buffer
	if err := edge.Write(&ebuf); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeTrace(ebuf.Bytes()); err != nil {
		t.Fatalf("DecodeTrace rejected a non-wrapping edge extent: %v", err)
	}
}

// TestRecorderSaturatesBurstCount pins the uint32 coalescing guard: merging
// past MaxUint32 must split into a new record, not silently wrap.
func TestRecorderSaturatesBurstCount(t *testing.T) {
	r := NewRecorder(4)
	const first = uint32(0xFFFF_FFF0)
	r.Record(7, 0, first, Write)
	r.Record(7, uint64(first)*4, 0x20, Write) // would wrap uint32
	tr := r.Trace()
	if len(tr.Accesses) != 2 {
		t.Fatalf("got %d records, want 2 (split, not wrapped): %+v", len(tr.Accesses), tr.Accesses)
	}
	if tr.Accesses[0].Count != first || tr.Accesses[1].Count != 0x20 {
		t.Fatalf("counts %d,%d want %d,%d", tr.Accesses[0].Count, tr.Accesses[1].Count, first, 0x20)
	}
	if got, want := tr.Blocks(), uint64(first)+0x20; got != want {
		t.Fatalf("Blocks = %d, want %d", got, want)
	}
	// A merge that exactly reaches MaxUint32 still coalesces.
	r2 := NewRecorder(4)
	r2.Record(7, 0, first, Write)
	r2.Record(7, uint64(first)*4, 0xF, Write)
	if tr2 := r2.Trace(); len(tr2.Accesses) != 1 || tr2.Accesses[0].Count != 0xFFFF_FFFF {
		t.Fatalf("exact-fit merge failed: %+v", tr2.Accesses)
	}
}

func TestValidateBounds(t *testing.T) {
	if err := (&Trace{BlockBytes: 0}).Validate(); err == nil {
		t.Fatal("block size 0 must fail validation")
	}
	if err := (&Trace{BlockBytes: MaxBlockBytes + 1}).Validate(); err == nil {
		t.Fatal("oversized block must fail validation")
	}
	ok := &Trace{BlockBytes: 4, Accesses: []Access{{Addr: 16, Count: 3, Kind: Read}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	bad := &Trace{BlockBytes: 4, Accesses: []Access{{Addr: 0, Count: 1, Kind: Kind(3)}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid kind must fail validation")
	}
}

func TestCoalesceIntervals(t *testing.T) {
	ivs := []Interval{{100, 200}, {200, 250}, {300, 400}, {50, 120}}
	got := CoalesceIntervals(ivs, 0)
	want := []Interval{{50, 250}, {300, 400}}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// With a gap of 50 the two merge.
	if merged := CoalesceIntervals(ivs, 50); len(merged) != 1 {
		t.Fatalf("gap merge failed: %v", merged)
	}
	if CoalesceIntervals(nil, 0) != nil {
		t.Fatal("empty input should give nil")
	}
}

// Property: coalescing preserves coverage — every input point remains
// covered, and the output is sorted and non-overlapping.
func TestQuickCoalesceInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		var ivs []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			lo, hi := uint64(raw[i]), uint64(raw[i])+uint64(raw[i+1]%64)+1
			ivs = append(ivs, Interval{lo, hi})
		}
		out := CoalesceIntervals(ivs, 0)
		for i := 1; i < len(out); i++ {
			if out[i].Lo <= out[i-1].Hi {
				return false // must be strictly separated and sorted
			}
		}
		for _, iv := range ivs {
			covered := false
			for _, o := range out {
				if iv.Lo >= o.Lo && iv.Hi <= o.Hi {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{10, 20}
	if !iv.Contains(10) || iv.Contains(20) || iv.Bytes() != 10 {
		t.Fatal("Contains/Bytes wrong")
	}
	if !iv.Overlaps(Interval{19, 30}) || iv.Overlaps(Interval{20, 30}) {
		t.Fatal("Overlaps wrong")
	}
}

func TestSubtractOverlap(t *testing.T) {
	set := []Interval{{0, 100}}
	set, n := SubtractOverlap(set, Interval{40, 60})
	if n != 20 || len(set) != 2 || set[0] != (Interval{0, 40}) || set[1] != (Interval{60, 100}) {
		t.Fatalf("split: set=%v n=%d", set, n)
	}
	set, n = SubtractOverlap(set, Interval{0, 50})
	if n != 40 || len(set) != 1 || set[0] != (Interval{60, 100}) {
		t.Fatalf("left clip: set=%v n=%d", set, n)
	}
	set, n = SubtractOverlap(set, Interval{200, 300})
	if n != 0 || len(set) != 1 {
		t.Fatalf("disjoint: set=%v n=%d", set, n)
	}
	set, n = SubtractOverlap(set, Interval{0, 1000})
	if n != 40 || len(set) != 0 {
		t.Fatalf("consume all: set=%v n=%d", set, n)
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n -= len(p)
	if f.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	return len(p), nil
}

func TestTraceWriteErrorPropagates(t *testing.T) {
	tr := &Trace{BlockBytes: 4}
	for i := 0; i < 100; i++ {
		tr.Accesses = append(tr.Accesses, Access{Addr: uint64(i) * 4, Count: 1})
	}
	if err := tr.Write(&failWriter{n: 8}); err == nil {
		t.Fatal("expected write error")
	}
}

func TestReadTraceTruncated(t *testing.T) {
	tr := &Trace{BlockBytes: 4, Accesses: []Access{{Addr: 0, Count: 1}, {Addr: 4, Count: 1}}}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadTrace(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestReadTraceHugeCountHeader(t *testing.T) {
	// A header claiming 2^40 accesses must not allocate petabytes.
	tr := &Trace{BlockBytes: 4, Accesses: []Access{{Addr: 0, Count: 1}}}
	var buf bytes.Buffer
	_ = tr.Write(&buf)
	raw := buf.Bytes()
	binary.LittleEndian.PutUint64(raw[16:24], 1<<40)
	if _, err := ReadTrace(bytes.NewReader(raw)); err == nil {
		t.Fatal("expected EOF error for bogus count")
	}
}
