//go:build !race

package memtrace

// raceEnabled lets tests scale work down under the race detector's ~10x
// slowdown (same pattern as internal/accel and internal/serve).
const raceEnabled = false
