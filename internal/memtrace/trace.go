// Package memtrace models the off-chip memory side channel of the paper's
// threat model: the adversary observes, for every DRAM transaction, its
// address, direction (read or write) and timing, but never plaintext data
// (values are encrypted). Traces are recorded by the accelerator simulator
// and consumed by the reverse-engineering attacks.
package memtrace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Kind is the direction of a memory access.
type Kind uint8

const (
	// Read is a DRAM read transaction.
	Read Kind = iota
	// Write is a DRAM write transaction.
	Write
)

// String returns "R" or "W".
func (k Kind) String() string {
	if k == Read {
		return "R"
	}
	return "W"
}

// Access is one coalesced burst of DRAM transactions: Count consecutive
// blocks starting at Addr, all in the same direction, issued at Cycle.
// Coalescing loses no information an adversary cares about — a bus probe
// could apply the same run-length compression — and keeps traces of large
// networks tractable.
type Access struct {
	Cycle uint64
	Addr  uint64
	Count uint32
	Kind  Kind
}

// End returns the first block address past the burst.
func (a Access) End(blockBytes int) uint64 {
	return a.Addr + uint64(a.Count)*uint64(blockBytes)
}

// Trace is a complete observed memory trace.
type Trace struct {
	// BlockBytes is the DRAM transaction granularity in bytes.
	BlockBytes int
	// Accesses in issue order.
	Accesses []Access
}

// Blocks returns the total number of block transactions in the trace.
func (t *Trace) Blocks() uint64 {
	var n uint64
	for _, a := range t.Accesses {
		n += uint64(a.Count)
	}
	return n
}

// LastCycle returns the cycle of the final access, or 0 for an empty trace.
func (t *Trace) LastCycle() uint64 {
	if len(t.Accesses) == 0 {
		return 0
	}
	return t.Accesses[len(t.Accesses)-1].Cycle
}

// Validate checks the structural invariants every decoder enforces — a block
// size in (0, MaxBlockBytes] and no access whose byte extent wraps the
// address space. Analysis entry points call it on traces that arrive
// in-memory (bypassing DecodeTrace/ReadTrace), so a hand-built hostile trace
// cannot feed inverted intervals into downstream interval arithmetic.
func (t *Trace) Validate() error {
	if t.BlockBytes <= 0 || t.BlockBytes > MaxBlockBytes {
		return fmt.Errorf("memtrace: implausible block size %d", t.BlockBytes)
	}
	for i, a := range t.Accesses {
		if span := uint64(a.Count) * uint64(t.BlockBytes); a.Addr > ^uint64(0)-span {
			return fmt.Errorf("memtrace: access %d: extent %#x+%d blocks overflows the address space", i, a.Addr, a.Count)
		}
		if a.Kind > Write {
			return fmt.Errorf("memtrace: access %d: invalid kind %d", i, a.Kind)
		}
	}
	return nil
}

const traceMagic = uint32(0xC99A7E01)

// On-disk layout (all little-endian): a 24-byte header of three uint64s
// (magic, block size, access count) followed by one 21-byte record per
// access — cycle (8), addr (8), count (4), kind (1). The fixed-size record
// buffers below keep serialization allocation-free; the reflection-based
// binary.Write/Read path cost one interface allocation per field per access,
// which dominated wall-clock on multi-million-access traces.
const (
	traceHeaderBytes  = 3 * 8
	accessRecordBytes = 8 + 8 + 4 + 1
)

// Write serializes the trace in a compact little-endian binary format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var hdr [traceHeaderBytes]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(traceMagic))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(t.BlockBytes))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(t.Accesses)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("memtrace: write header: %w", err)
	}
	var rec [accessRecordBytes]byte
	for _, a := range t.Accesses {
		binary.LittleEndian.PutUint64(rec[0:8], a.Cycle)
		binary.LittleEndian.PutUint64(rec[8:16], a.Addr)
		binary.LittleEndian.PutUint32(rec[16:20], a.Count)
		rec[20] = byte(a.Kind)
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MaxBlockBytes bounds the block size DecodeTrace accepts. Real DRAM
// transaction granularities are tens of bytes; a megabyte is already absurd,
// and the bound keeps downstream block arithmetic far from overflow.
const MaxBlockBytes = 1 << 20

// decodeAccess parses one 21-byte record, rejecting direction bytes that
// are neither Read nor Write: silently coercing a corrupt byte into a Kind
// would misclassify reads versus writes downstream, where the structure
// attack's RAW segmentation depends on the distinction. It also rejects
// records whose byte extent Addr + Count·blockBytes wraps past 2^64: such an
// access yields an inverted Interval{Lo > Hi}, which corrupts the region
// index and segmentation on hostile uploads.
func decodeAccess(rec []byte, blockBytes uint64) (Access, error) {
	if rec[20] > uint8(Write) {
		return Access{}, fmt.Errorf("invalid kind %d", rec[20])
	}
	a := Access{
		Cycle: binary.LittleEndian.Uint64(rec[0:8]),
		Addr:  binary.LittleEndian.Uint64(rec[8:16]),
		Count: binary.LittleEndian.Uint32(rec[16:20]),
		Kind:  Kind(rec[20]),
	}
	// Count·blockBytes cannot itself overflow: Count < 2^32 and blockBytes
	// ≤ MaxBlockBytes = 2^20, so the product stays below 2^52.
	if span := uint64(a.Count) * blockBytes; a.Addr > ^uint64(0)-span {
		return Access{}, fmt.Errorf("extent %#x+%d blocks overflows the address space", a.Addr, a.Count)
	}
	return a, nil
}

// DecodeTrace parses a serialized trace from an in-memory buffer — the
// hardened entry point for untrusted input (e.g. service uploads). Unlike
// the streaming ReadTrace it knows the total input length up front, so the
// header's declared record count is validated against the bytes actually
// present before any allocation: a forged count can never make the decoder
// allocate more than the input itself could hold. Block sizes outside
// (0, MaxBlockBytes] and trailing bytes past the declared records are
// rejected, which makes the accepted encoding canonical — any buffer
// DecodeTrace accepts re-encodes via Write to the identical bytes. It is
// a thin wrapper over the streaming Decoder with a size hint; callers that
// can avoid materializing the serialized bytes should use NewDecoder
// directly.
func DecodeTrace(data []byte) (*Trace, error) {
	d := NewDecoder(bytes.NewReader(data))
	// Knowing the total length up front lets the decoder validate the
	// declared record count before any allocation and reject trailing
	// bytes from the header alone, which keeps the accepted encoding
	// canonical and makes the preallocation below safe.
	d.sizeHint = int64(len(data))
	if err := d.readHeader(); err != nil {
		return nil, err
	}
	t := &Trace{BlockBytes: int(d.block), Accesses: make([]Access, 0, d.declared)}
	for {
		batch, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		t.Accesses = append(t.Accesses, batch...)
	}
	return t, nil
}

// ReadTrace deserializes a trace written by Write. It shares DecodeTrace's
// full-magic, block-size and per-record validation but, reading from a
// stream of unknown length, it cannot pre-validate the declared record count;
// the preallocation is capped and bogus counts simply hit EOF. Prefer
// DecodeTrace for untrusted in-memory input (it additionally rejects
// trailing bytes, making the accepted encoding canonical).
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [traceHeaderBytes]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("memtrace: read header: %w", err)
	}
	magic := binary.LittleEndian.Uint64(hdr[0:8])
	block := binary.LittleEndian.Uint64(hdr[8:16])
	n := binary.LittleEndian.Uint64(hdr[16:24])
	// The full 64-bit header word must match: a garbage high half means the
	// stream was not produced by Write, however plausible the low half looks.
	if magic != uint64(traceMagic) {
		return nil, fmt.Errorf("memtrace: bad magic %#x", magic)
	}
	if block == 0 || block > MaxBlockBytes {
		return nil, fmt.Errorf("memtrace: implausible block size %d", block)
	}
	// Cap the preallocation: n is untrusted input; bogus counts simply hit
	// EOF below.
	capHint := n
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	t := &Trace{BlockBytes: int(block), Accesses: make([]Access, 0, capHint)}
	var rec [accessRecordBytes]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("memtrace: read access %d: %w", i, err)
		}
		a, err := decodeAccess(rec[:], block)
		if err != nil {
			return nil, fmt.Errorf("memtrace: access %d: %w", i, err)
		}
		t.Accesses = append(t.Accesses, a)
	}
	return t, nil
}

// Recorder accumulates accesses during simulation, merging bursts that
// extend the previous access contiguously in the same direction and cycle
// window.
type Recorder struct {
	BlockBytes int
	accesses   []Access
}

// NewRecorder returns a recorder for the given block granularity.
func NewRecorder(blockBytes int) *Recorder {
	if blockBytes <= 0 {
		panic("memtrace: block size must be positive")
	}
	return &Recorder{BlockBytes: blockBytes}
}

// Record appends a burst of count blocks starting at byte address addr.
// addr must be block-aligned.
func (r *Recorder) Record(cycle uint64, addr uint64, count uint32, kind Kind) {
	if count == 0 {
		return
	}
	if addr%uint64(r.BlockBytes) != 0 {
		panic(fmt.Sprintf("memtrace: unaligned address %#x (block %d)", addr, r.BlockBytes))
	}
	if n := len(r.accesses); n > 0 {
		last := &r.accesses[n-1]
		if last.Kind == kind && last.End(r.BlockBytes) == addr && last.Cycle == cycle {
			// Coalesce only while the merged count fits in uint32; a
			// pathological layer size must start a fresh record rather than
			// silently wrap the burst length.
			if uint64(last.Count)+uint64(count) <= math.MaxUint32 {
				last.Count += count
				return
			}
		}
	}
	r.accesses = append(r.accesses, Access{Cycle: cycle, Addr: addr, Count: count, Kind: kind})
}

// RecordBytes records a burst covering byteLen bytes from addr, rounding up
// to whole blocks.
func (r *Recorder) RecordBytes(cycle uint64, addr uint64, byteLen int, kind Kind) {
	if byteLen <= 0 {
		return
	}
	blocks := (byteLen + r.BlockBytes - 1) / r.BlockBytes
	r.Record(cycle, addr, uint32(blocks), kind)
}

// Trace returns the recorded trace. The recorder must not be used afterward.
func (r *Recorder) Trace() *Trace {
	return &Trace{BlockBytes: r.BlockBytes, Accesses: r.accesses}
}

// TraceInto fills t with the recorded trace without copying: t.Accesses
// shares the recorder's backing array and stays valid only until the next
// Record or Reset. Reusable simulation sessions use this to hand a trace
// view to the caller without per-run allocation; use Trace (or copy) when
// the trace must outlive the recorder.
func (r *Recorder) TraceInto(t *Trace) {
	t.BlockBytes = r.BlockBytes
	t.Accesses = r.accesses
}

// Reset clears the recorder for a fresh run while retaining the accumulated
// capacity, so a recorder reused across many inferences reaches a
// zero-allocation steady state once it has seen the largest trace.
func (r *Recorder) Reset() { r.accesses = r.accesses[:0] }

// Reserve grows the recorder's capacity to hold at least n accesses without
// reallocating. Simulators call it with a transaction-count estimate derived
// from the network's tiling so even the first run records without growth
// copies.
func (r *Recorder) Reserve(n int) {
	if n > cap(r.accesses) {
		grown := make([]Access, len(r.accesses), n)
		copy(grown, r.accesses)
		r.accesses = grown
	}
}

// Len returns the number of coalesced accesses recorded so far.
func (r *Recorder) Len() int { return len(r.accesses) }

// Interval is a half-open byte-address range [Lo, Hi).
type Interval struct {
	Lo, Hi uint64
}

// Bytes returns the length of the interval.
func (iv Interval) Bytes() uint64 { return iv.Hi - iv.Lo }

// Contains reports whether addr lies in the interval.
func (iv Interval) Contains(addr uint64) bool { return addr >= iv.Lo && addr < iv.Hi }

// Overlaps reports whether two intervals share any address.
func (iv Interval) Overlaps(o Interval) bool { return iv.Lo < o.Hi && o.Lo < iv.Hi }

// CoalesceIntervals merges a set of address intervals into maximal
// non-overlapping intervals, joining neighbors separated by at most gap
// bytes. This is how the adversary clusters observed addresses into data
// structures ("FMAPs and filters are stored as arrays... each in its own
// contiguous memory locations").
func CoalesceIntervals(ivs []Interval, gap uint64) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := append([]Interval(nil), ivs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+gap {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// SubtractOverlap removes iv's intersection from the disjoint, sorted
// interval set and returns the updated set plus the number of bytes
// removed. Used to attribute reads to their most recent writers.
func SubtractOverlap(set []Interval, iv Interval) ([]Interval, uint64) {
	var out []Interval
	var removed uint64
	for _, s := range set {
		if !s.Overlaps(iv) {
			out = append(out, s)
			continue
		}
		lo, hi := iv.Lo, iv.Hi
		if s.Lo > lo {
			lo = s.Lo
		}
		if s.Hi < hi {
			hi = s.Hi
		}
		removed += hi - lo
		if s.Lo < lo {
			out = append(out, Interval{Lo: s.Lo, Hi: lo})
		}
		if hi < s.Hi {
			out = append(out, Interval{Lo: hi, Hi: s.Hi})
		}
	}
	return out, removed
}
