package memtrace

import (
	"encoding/binary"
	"fmt"
	"io"
)

// DecodeBatch is the number of access records a Decoder yields per Next
// call. At 21 serialized / 24 in-memory bytes per record one batch costs
// ~180 KiB of working memory, independent of how large the trace is — a
// multi-gigabyte probe capture decodes through the same two fixed buffers.
const DecodeBatch = 4096

// Decoder incrementally decodes a serialized trace from an io.Reader. It
// applies the same strict validation as DecodeTrace — full 64-bit magic and
// block-size bounds up front (on the first Next call), per-record direction
// and address-extent checks, and rejection of data past the declared record
// count — but holds only one bounded batch in memory at a time, so decoding
// never allocates proportionally to the trace size. DecodeTrace is
// implemented on top of it, which keeps the two entry points' accepted
// input sets identical by construction (pinned by FuzzTraceDecodeStream).
//
// A Decoder is not safe for concurrent use.
type Decoder struct {
	r io.Reader

	// sizeHint is the total input length in bytes when the caller knows it
	// (DecodeTrace does), enabling the header's declared record count to be
	// validated against the bytes actually present before any allocation.
	// -1 means unknown: a forged count then simply hits EOF mid-batch, and
	// trailing bytes are caught by a one-byte probe after the last record.
	sizeHint int64

	block    uint64
	declared uint64
	decoded  uint64
	headerOK bool
	err      error // sticky; io.EOF after a clean end

	batchCap int
	raw      []byte
	batch    []Access
}

// NewDecoder returns a decoder reading a serialized trace from r. The
// header is read and validated on the first Next call.
func NewDecoder(r io.Reader) *Decoder {
	return &Decoder{r: r, sizeHint: -1, batchCap: DecodeBatch}
}

// BlockBytes returns the trace's block granularity, or 0 before the header
// has been decoded.
func (d *Decoder) BlockBytes() int { return int(d.block) }

// Declared returns the header's declared record count, or 0 before the
// header has been decoded. The count is untrusted until the stream has been
// fully consumed: a forged header fails with an error from Next, never by
// over-allocating.
func (d *Decoder) Declared() uint64 { return d.declared }

// Decoded returns the number of records yielded so far.
func (d *Decoder) Decoded() uint64 { return d.decoded }

// readHeader parses and validates the 24-byte header. With a size hint the
// declared record count is additionally checked against the bytes present,
// which both rejects forged counts before any allocation and makes the
// accepted encoding canonical (no trailing bytes).
func (d *Decoder) readHeader() error {
	if d.sizeHint >= 0 && d.sizeHint < traceHeaderBytes {
		return fmt.Errorf("memtrace: decode: %d bytes is shorter than the %d-byte header", d.sizeHint, traceHeaderBytes)
	}
	var hdr [traceHeaderBytes]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		return fmt.Errorf("memtrace: decode: header: %w", err)
	}
	magic := binary.LittleEndian.Uint64(hdr[0:8])
	block := binary.LittleEndian.Uint64(hdr[8:16])
	n := binary.LittleEndian.Uint64(hdr[16:24])
	if magic != uint64(traceMagic) {
		return fmt.Errorf("memtrace: decode: bad magic %#x", magic)
	}
	if block == 0 || block > MaxBlockBytes {
		return fmt.Errorf("memtrace: decode: implausible block size %d", block)
	}
	if d.sizeHint >= 0 {
		body := uint64(d.sizeHint - traceHeaderBytes)
		if n > body/accessRecordBytes {
			return fmt.Errorf("memtrace: decode: header declares %d records but only %d bytes follow", n, body)
		}
		if n*accessRecordBytes != body {
			return fmt.Errorf("memtrace: decode: %d trailing bytes past %d declared records", body-n*accessRecordBytes, n)
		}
	}
	d.block, d.declared, d.headerOK = block, n, true
	return nil
}

// Next returns the next batch of decoded records, at most DecodeBatch of
// them. The returned slice is reused by the following Next call — callers
// that retain records across calls must copy them. After the final record
// the decoder verifies the stream holds no trailing data and returns
// io.EOF. Any other error is sticky and terminal; errors from the
// underlying reader are wrapped and recoverable with errors.As (the serve
// layer relies on this to map *http.MaxBytesError to 413).
func (d *Decoder) Next() ([]Access, error) {
	if d.err != nil {
		return nil, d.err
	}
	if !d.headerOK {
		if err := d.readHeader(); err != nil {
			d.err = err
			return nil, err
		}
	}
	if d.decoded == d.declared {
		if err := d.expectEOF(); err != nil {
			d.err = err
			return nil, err
		}
		d.err = io.EOF
		return nil, io.EOF
	}
	if d.raw == nil {
		d.raw = make([]byte, d.batchCap*accessRecordBytes)
		d.batch = make([]Access, d.batchCap)
	}
	want := d.declared - d.decoded
	if want > uint64(d.batchCap) {
		want = uint64(d.batchCap)
	}
	buf := d.raw[:want*accessRecordBytes]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		d.err = fmt.Errorf("memtrace: decode: access %d: %w (header declared %d records)", d.decoded, err, d.declared)
		return nil, d.err
	}
	for i := uint64(0); i < want; i++ {
		a, err := decodeAccess(buf[i*accessRecordBytes:][:accessRecordBytes], d.block)
		if err != nil {
			d.err = fmt.Errorf("memtrace: decode: access %d: %w", d.decoded+i, err)
			return nil, d.err
		}
		d.batch[i] = a
	}
	d.decoded += want
	return d.batch[:want], nil
}

// expectEOF probes the stream for data past the declared records. With a
// size hint the header check already proved there is none.
func (d *Decoder) expectEOF() error {
	if d.sizeHint >= 0 {
		return nil
	}
	var one [1]byte
	n, err := io.ReadFull(d.r, one[:])
	if n > 0 {
		return fmt.Errorf("memtrace: decode: trailing data past %d declared records", d.declared)
	}
	if err != nil && err != io.EOF {
		return fmt.Errorf("memtrace: decode: trailing probe: %w", err)
	}
	return nil
}
