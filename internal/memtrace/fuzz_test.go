package memtrace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// fuzzAccesses deterministically builds an access list from raw fuzz bytes:
// each full 21-byte chunk becomes one record with a valid direction byte.
// The address top bit is cleared so the burst extent Addr + Count·block
// (< 2^63 + 2^52) never wraps — the decoders now reject wrapping extents, and
// this helper must only build traces Write→Decode round-trips.
func fuzzAccesses(raw []byte) []Access {
	n := len(raw) / accessRecordBytes
	accs := make([]Access, 0, n)
	for i := 0; i < n; i++ {
		rec := raw[i*accessRecordBytes:][:accessRecordBytes]
		accs = append(accs, Access{
			Cycle: binary.LittleEndian.Uint64(rec[0:8]),
			Addr:  binary.LittleEndian.Uint64(rec[8:16]) &^ (1 << 63),
			Count: binary.LittleEndian.Uint32(rec[16:20]),
			Kind:  Kind(rec[20] & 1),
		})
	}
	return accs
}

func sameAccesses(a, b []Access) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzTraceRoundTrip checks that any trace built from arbitrary field values
// survives Write → DecodeTrace and Write → ReadTrace unchanged.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add(4, []byte{})
	f.Add(64, bytes.Repeat([]byte{0xA5}, accessRecordBytes*3))
	f.Add(1, bytes.Repeat([]byte{0xFF}, accessRecordBytes+7))
	f.Fuzz(func(t *testing.T, block int, raw []byte) {
		if block <= 0 || block > MaxBlockBytes {
			block = 4
		}
		tr := &Trace{BlockBytes: block, Accesses: fuzzAccesses(raw)}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		dec, err := DecodeTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("DecodeTrace of Write output: %v", err)
		}
		if dec.BlockBytes != tr.BlockBytes || !sameAccesses(dec.Accesses, tr.Accesses) {
			t.Fatalf("DecodeTrace round-trip mismatch: got %d accesses block %d, want %d accesses block %d",
				len(dec.Accesses), dec.BlockBytes, len(tr.Accesses), tr.BlockBytes)
		}
		rd, err := ReadTrace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("ReadTrace of Write output: %v", err)
		}
		if rd.BlockBytes != tr.BlockBytes || !sameAccesses(rd.Accesses, tr.Accesses) {
			t.Fatal("ReadTrace round-trip mismatch")
		}
	})
}

// FuzzTraceDecode feeds arbitrary bytes to both decode paths: they must
// never panic, DecodeTrace's allocation must be bounded by the input length
// (not the header's claim), and any accepted buffer must be canonical —
// re-encoding reproduces the input byte for byte.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte{})
	// A valid empty trace.
	var empty bytes.Buffer
	(&Trace{BlockBytes: 64}).Write(&empty)
	f.Add(empty.Bytes())
	// A header that declares far more records than the buffer holds.
	forged := append([]byte(nil), empty.Bytes()...)
	binary.LittleEndian.PutUint64(forged[16:24], 1<<40)
	f.Add(forged)
	f.Add(overflowExtentBytes())
	f.Add(highMagicBytes())
	f.Fuzz(func(t *testing.T, raw []byte) {
		tr, err := DecodeTrace(raw)
		if err == nil {
			if want := (len(raw) - traceHeaderBytes) / accessRecordBytes; len(tr.Accesses) != want {
				t.Fatalf("decoded %d accesses from a buffer that holds %d", len(tr.Accesses), want)
			}
			var re bytes.Buffer
			if err := tr.Write(&re); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(re.Bytes(), raw) {
				t.Fatal("accepted buffer is not canonical: re-encoding differs")
			}
			// The streaming reader must accept everything the strict decoder
			// accepts, and agree on the contents.
			rd, err := ReadTrace(bytes.NewReader(raw))
			if err != nil {
				t.Fatalf("ReadTrace rejected a DecodeTrace-accepted buffer: %v", err)
			}
			if rd.BlockBytes != tr.BlockBytes || !sameAccesses(rd.Accesses, tr.Accesses) {
				t.Fatal("ReadTrace and DecodeTrace disagree on an accepted buffer")
			}
			return
		}
		// Invalid input: the streaming reader may be more lenient (it ignores
		// trailing bytes) but must not panic.
		_, _ = ReadTrace(bytes.NewReader(raw))
	})
}

// FuzzTraceDecodeStream cross-checks the streaming Decoder against
// DecodeTrace on arbitrary bytes: the two must accept exactly the same
// inputs (DecodeTrace is built on the decoder, but with a size hint that
// takes different validation paths — this pins their agreement) and decode
// accepted inputs to identical traces. The committed FuzzTraceDecode crash
// corpus is mirrored into this target's seed corpus.
func FuzzTraceDecodeStream(f *testing.F) {
	f.Add([]byte{})
	var empty bytes.Buffer
	(&Trace{BlockBytes: 64}).Write(&empty)
	f.Add(empty.Bytes())
	forged := append([]byte(nil), empty.Bytes()...)
	binary.LittleEndian.PutUint64(forged[16:24], 1<<40)
	f.Add(forged)
	f.Add(overflowExtentBytes())
	f.Add(highMagicBytes())
	// A multi-record trace, plus the same trace with a trailing byte (the
	// case the streaming path must catch with its EOF probe rather than a
	// length check).
	var multi bytes.Buffer
	(&Trace{BlockBytes: 4, Accesses: []Access{
		{Cycle: 1, Addr: 0, Count: 2, Kind: Read},
		{Cycle: 2, Addr: 8, Count: 1, Kind: Write},
		{Cycle: 3, Addr: 0, Count: 1, Kind: Read},
	}}).Write(&multi)
	f.Add(multi.Bytes())
	f.Add(append(append([]byte(nil), multi.Bytes()...), 0x5A))
	f.Fuzz(func(t *testing.T, raw []byte) {
		want, werr := DecodeTrace(raw)
		d := NewDecoder(bytes.NewReader(raw))
		var accs []Access
		var gerr error
		for {
			batch, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				gerr = err
				break
			}
			accs = append(accs, batch...)
		}
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("decoders disagree on acceptance: stream=%v decode=%v", gerr, werr)
		}
		if werr != nil {
			return
		}
		if d.BlockBytes() != want.BlockBytes || !sameAccesses(accs, want.Accesses) {
			t.Fatalf("streaming decode of an accepted buffer diverges: %d accesses block %d, want %d accesses block %d",
				len(accs), d.BlockBytes(), len(want.Accesses), want.BlockBytes)
		}
	})
}

// overflowExtentBytes serializes a trace whose single record has an address
// near 2^64 and a count that wraps the extent — the crash-corpus case the
// decoders must reject rather than hand downstream as Interval{Lo > Hi}.
func overflowExtentBytes() []byte {
	var buf bytes.Buffer
	(&Trace{BlockBytes: 64, Accesses: []Access{
		{Cycle: 1, Addr: ^uint64(0) - 128, Count: 1 << 20, Kind: Read},
	}}).Write(&buf)
	return buf.Bytes()
}

// highMagicBytes serializes a valid trace and corrupts the high half of the
// 64-bit magic word — the streaming reader used to check only the low 32
// bits and accept it.
func highMagicBytes() []byte {
	var buf bytes.Buffer
	(&Trace{BlockBytes: 4, Accesses: []Access{{Cycle: 1, Addr: 0, Count: 1, Kind: Write}}}).Write(&buf)
	raw := buf.Bytes()
	binary.LittleEndian.PutUint32(raw[4:8], 0xDEADBEEF)
	return raw
}
