package memtrace

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// synthAccess is the deterministic record stream the synthetic trace reader
// emits: valid, non-wrapping, and cheap to regenerate for verification.
func synthAccess(i uint64) Access {
	return Access{
		Cycle: i,
		Addr:  (i % (1 << 20)) * 64,
		Count: uint32(1 + i%7),
		Kind:  Kind(i % 2),
	}
}

// synthTraceReader serves a serialized trace of n records without ever
// materializing it: records are encoded on demand into a fixed carry
// buffer. It lets the constant-memory tests stream multi-hundred-megabyte
// traces whose only real allocations are the decoder's own batch buffers.
type synthTraceReader struct {
	n     uint64 // total records
	next  uint64 // next record to encode
	carry [traceHeaderBytes]byte
	have  int // valid bytes in carry
	used  int // bytes of carry already served
	done  bool
}

func newSynthTrace(n uint64) *synthTraceReader {
	r := &synthTraceReader{n: n}
	binary.LittleEndian.PutUint64(r.carry[0:8], uint64(traceMagic))
	binary.LittleEndian.PutUint64(r.carry[8:16], 64)
	binary.LittleEndian.PutUint64(r.carry[16:24], n)
	r.have = traceHeaderBytes
	return r
}

func (r *synthTraceReader) Read(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		if r.used == r.have {
			if r.next == r.n {
				r.done = true
				break
			}
			a := synthAccess(r.next)
			r.next++
			binary.LittleEndian.PutUint64(r.carry[0:8], a.Cycle)
			binary.LittleEndian.PutUint64(r.carry[8:16], a.Addr)
			binary.LittleEndian.PutUint32(r.carry[16:20], a.Count)
			r.carry[20] = byte(a.Kind)
			r.have, r.used = accessRecordBytes, 0
		}
		n := copy(p, r.carry[r.used:r.have])
		r.used += n
		p = p[n:]
		total += n
	}
	if total == 0 && r.done {
		return 0, io.EOF
	}
	return total, nil
}

// randomTrace builds a structurally valid trace of n records for round-trip
// comparisons.
func randomTrace(t *testing.T, n int, seed int64) *Trace {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{BlockBytes: 1 + rng.Intn(256), Accesses: make([]Access, n)}
	for i := range tr.Accesses {
		tr.Accesses[i] = Access{
			Cycle: rng.Uint64(),
			Addr:  rng.Uint64() >> 1, // clear the top bit: extent must not wrap
			Count: uint32(rng.Intn(1 << 16)),
			Kind:  Kind(rng.Intn(2)),
		}
	}
	return tr
}

// decodeAll drains a Decoder, accumulating every batch.
func decodeAll(d *Decoder) (*Trace, error) {
	var accs []Access
	for {
		batch, err := d.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		accs = append(accs, batch...)
	}
	return &Trace{BlockBytes: d.BlockBytes(), Accesses: accs}, nil
}

// TestDecoderMatchesDecodeTrace pins the tentpole contract: the streaming
// decoder and the in-memory decoder produce identical traces on everything
// Write emits, across batch boundaries (including a batch size that does
// not divide the record count).
func TestDecoderMatchesDecodeTrace(t *testing.T) {
	for _, n := range []int{0, 1, 7, DecodeBatch, DecodeBatch + 1, 3*DecodeBatch - 5} {
		tr := randomTrace(t, n, int64(n)+1)
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		want, err := DecodeTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("n=%d: DecodeTrace: %v", n, err)
		}
		d := NewDecoder(bytes.NewReader(buf.Bytes()))
		d.batchCap = 7 // force many small batches
		got, err := decodeAll(d)
		if err != nil {
			t.Fatalf("n=%d: streaming decode: %v", n, err)
		}
		if got.BlockBytes != want.BlockBytes || !sameAccesses(got.Accesses, want.Accesses) {
			t.Fatalf("n=%d: streaming decode diverges from DecodeTrace", n)
		}
		if d.Declared() != uint64(n) || d.Decoded() != uint64(n) {
			t.Fatalf("n=%d: declared %d decoded %d", n, d.Declared(), d.Decoded())
		}
		// The decoder is terminal after EOF.
		if _, err := d.Next(); err != io.EOF {
			t.Fatalf("n=%d: post-EOF Next returned %v", n, err)
		}
	}
}

// TestDecoderStrictRejection feeds both decode paths the same corrupt
// buffers; the streaming decoder must reject exactly what DecodeTrace
// rejects, with an error naming the problem.
func TestDecoderStrictRejection(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		tr := &Trace{BlockBytes: 4, Accesses: []Access{
			{Cycle: 1, Addr: 0, Count: 1, Kind: Read},
			{Cycle: 2, Addr: 4, Count: 1, Kind: Write},
		}}
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantSub string
	}{
		{"short header", func(b []byte) []byte { return b[:10] }, "header"},
		{"bad magic", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[0:8], 0x1234)
			return b
		}, "bad magic"},
		{"high magic garbage", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 0xDEADBEEF)
			return b
		}, "bad magic"},
		{"zero block", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], 0)
			return b
		}, "block size"},
		{"absurd block", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[8:16], MaxBlockBytes+1)
			return b
		}, "block size"},
		{"forged count", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:24], 1<<40)
			return b
		}, "access"},
		{"truncated record", func(b []byte) []byte { return b[:len(b)-5] }, "access"},
		{"trailing byte", func(b []byte) []byte { return append(b, 0xAA) }, "trailing"},
		{"bad kind", func(b []byte) []byte {
			b[traceHeaderBytes+accessRecordBytes+20] = 7
			return b
		}, "invalid kind"},
		{"wrapping extent", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[traceHeaderBytes+8:traceHeaderBytes+16], ^uint64(0)-2)
			return b
		}, "overflows"},
	}
	for _, tc := range cases {
		raw := tc.mutate(append([]byte(nil), valid()...))
		if _, err := DecodeTrace(raw); err == nil {
			t.Fatalf("%s: DecodeTrace accepted the corrupt buffer", tc.name)
		}
		_, err := decodeAll(NewDecoder(bytes.NewReader(raw)))
		if err == nil {
			t.Fatalf("%s: streaming decoder accepted the corrupt buffer", tc.name)
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}
}

// TestDecodeStreamConstantMemory is the ROADMAP item-1 pin: decoding a
// multi-hundred-megabyte trace through the streaming decoder allocates a
// fixed number of O(batch) buffers, independent of trace size — where the
// old io.ReadAll + DecodeTrace path held the entire serialized body plus
// the full access slice. The generator reader allocates nothing per record,
// so every allocation AllocsPerRun sees belongs to the decoder.
func TestDecodeStreamConstantMemory(t *testing.T) {
	records := uint64(12_000_000) // 24 + 12M·21 bytes ≈ 252 MB serialized
	if raceEnabled || testing.Short() {
		records = 2_000_000
	}
	var total uint64
	allocs := testing.AllocsPerRun(1, func() {
		total = 0
		d := NewDecoder(newSynthTrace(records))
		for {
			batch, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("decode at record %d: %v", total, err)
			}
			for i := range batch {
				if batch[i] != synthAccess(total) {
					t.Fatalf("record %d decoded as %+v, want %+v", total, batch[i], synthAccess(total))
				}
				total++
			}
		}
	})
	if total != records {
		t.Fatalf("decoded %d records, want %d", total, records)
	}
	// The decoder owns exactly two batch buffers plus a handful of fixed
	// setup allocations; a bound far below one-per-batch (records/4096
	// batches were consumed) pins the O(batch) memory claim.
	if allocs > 16 {
		t.Fatalf("streaming decode of %d records did %v allocs, want <= 16 (constant)", records, allocs)
	}
}

// BenchmarkDecodeStream measures streaming decode throughput; CI's
// bench-smoke job runs it so codec regressions show up next to the
// existing perf pins.
func BenchmarkDecodeStream(b *testing.B) {
	const records = 1_000_000
	b.SetBytes(int64(traceHeaderBytes + records*accessRecordBytes))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(newSynthTrace(records))
		var n uint64
		for {
			batch, err := d.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n += uint64(len(batch))
		}
		if n != records {
			b.Fatalf("decoded %d records, want %d", n, records)
		}
	}
}

// BenchmarkDecodeTrace is the in-memory baseline for BenchmarkDecodeStream:
// the same records, decoded from a buffer the old ReadAll path would have
// had to hold.
func BenchmarkDecodeTrace(b *testing.B) {
	const records = 1_000_000
	raw, err := io.ReadAll(newSynthTrace(records))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := DecodeTrace(raw)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Accesses) != records {
			b.Fatalf("decoded %d records", len(tr.Accesses))
		}
	}
}
