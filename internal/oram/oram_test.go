package oram

import (
	"math/rand"
	"testing"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

func lenetTrace(t *testing.T) *memtrace.Trace {
	t.Helper()
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func TestObfuscateOverheadMatchesTheory(t *testing.T) {
	tr := lenetTrace(t)
	obf, st, err := Obfuscate(tr, Config{BlockBytes: 64, Z: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Path ORAM moves 2·Z·(L+1) blocks per logical access.
	want := float64(2 * 4 * st.Levels)
	if got := st.Overhead(); got != want {
		t.Fatalf("overhead = %v, want %v (levels %d)", got, want, st.Levels)
	}
	if obf.Blocks() != st.PhysicalBlocks {
		t.Fatalf("trace blocks %d != stats %d", obf.Blocks(), st.PhysicalBlocks)
	}
	if st.Overhead() < 50 {
		t.Fatalf("ORAM should cost dearly; overhead only %.0fx", st.Overhead())
	}
}

func TestObfuscateStashBounded(t *testing.T) {
	tr := lenetTrace(t)
	_, st, err := Obfuscate(tr, Config{BlockBytes: 64, Z: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The classic result: stash stays small (O(log N) w.h.p.) for Z >= 4.
	if st.MaxStash > st.DistinctBlocks/4 {
		t.Fatalf("stash blew up: %d of %d blocks", st.MaxStash, st.DistinctBlocks)
	}
	if st.MaxStash == 0 {
		t.Fatal("stash never used — protocol not exercised")
	}
}

func TestObfuscationDefeatsStructureAttack(t *testing.T) {
	tr := lenetTrace(t)
	obf, _, err := Obfuscate(tr, Config{BlockBytes: 64, Z: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every bucket is both read and written, so there is no read-only
	// (filter) region and no layer boundary to find: Analyze must fail.
	if _, err := structrev.Analyze(obf, 28*28*4, 4); err == nil {
		t.Fatal("structure attack should fail on an ORAM-obfuscated trace")
	}
}

func TestObfuscationHidesAddressCorrelation(t *testing.T) {
	// Two runs of the same logical trace with different ORAM seeds must
	// produce different physical access sequences (position-map randomness),
	// while identical seeds reproduce exactly.
	tr := lenetTrace(t)
	a1, _, _ := Obfuscate(tr, Config{Seed: 5})
	a2, _, _ := Obfuscate(tr, Config{Seed: 6})
	a3, _, _ := Obfuscate(tr, Config{Seed: 5})
	if len(a1.Accesses) != len(a3.Accesses) {
		t.Fatal("same seed must give same length")
	}
	same13, same12 := true, true
	for i := range a1.Accesses {
		if a1.Accesses[i] != a3.Accesses[i] {
			same13 = false
		}
		if i < len(a2.Accesses) && a1.Accesses[i] != a2.Accesses[i] {
			same12 = false
		}
	}
	if !same13 {
		t.Fatal("obfuscation must be deterministic per seed")
	}
	if same12 {
		t.Fatal("different seeds must randomize the pattern")
	}
}

func TestPathBucketsWellFormed(t *testing.T) {
	c := newController(100, 4, rand.New(rand.NewSource(1)))
	for leaf := 0; leaf < c.leaves; leaf++ {
		p := c.pathBuckets(leaf)
		if len(p) != c.levels || p[0] != 0 {
			t.Fatalf("leaf %d: path %v", leaf, p)
		}
		for l := 1; l < len(p); l++ {
			if (p[l]-1)/2 != p[l-1] {
				t.Fatalf("leaf %d: %v not a root path", leaf, p)
			}
		}
		if !c.onPath(p[len(p)-1], leaf) || !c.onPath(0, leaf) {
			t.Fatal("onPath inconsistent with pathBuckets")
		}
	}
}

func TestObfuscateRejectsIncompatibleBlocks(t *testing.T) {
	tr := &memtrace.Trace{BlockBytes: 48, Accesses: []memtrace.Access{{Addr: 0, Count: 1}}}
	if _, _, err := Obfuscate(tr, Config{BlockBytes: 64}); err == nil {
		t.Fatal("expected block-size incompatibility error")
	}
}

func TestObfuscateBucketCapacityScalesOverhead(t *testing.T) {
	tr := lenetTrace(t)
	_, z4, err := Obfuscate(tr, Config{Z: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, z8, err := Obfuscate(tr, Config{Z: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Doubling Z halves tree height (roughly) but doubles per-bucket cost;
	// both must report consistent accounting.
	if z8.Levels >= z4.Levels {
		t.Fatalf("larger buckets should shrink the tree: %d vs %d levels", z8.Levels, z4.Levels)
	}
	if z4.Overhead() != float64(2*4*z4.Levels) || z8.Overhead() != float64(2*8*z8.Levels) {
		t.Fatal("overhead accounting inconsistent")
	}
}

// TestObfuscateRejectsHostileConfigs pins the Validate gate: a negative Z
// used to spin newController's sizing loop forever, and a negative or
// non-power-of-two BlockBytes corrupted the block math. Every case must
// return promptly with an error, never hang or panic.
func TestObfuscateRejectsHostileConfigs(t *testing.T) {
	tr := &memtrace.Trace{BlockBytes: 64, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 4, Kind: memtrace.Read},
		{Cycle: 1, Addr: 4096, Count: 4, Kind: memtrace.Write},
	}}
	for _, cfg := range []Config{
		{Z: -1},
		{Z: -1 << 40},
		{Z: maxZ + 1},
		{BlockBytes: -64},
		{BlockBytes: 48},             // not a power of two
		{BlockBytes: 3},              // not a power of two
		{BlockBytes: memtrace.MaxBlockBytes * 2},
		{Z: -1, BlockBytes: -1},
	} {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a hostile config", cfg)
		}
		if _, _, err := Obfuscate(tr, cfg); err == nil {
			t.Errorf("Obfuscate(%+v) accepted a hostile config", cfg)
		}
	}
	// Zero values still select the defaults.
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	if _, st, err := Obfuscate(tr, Config{}); err != nil || st.PhysicalBlocks == 0 {
		t.Fatalf("zero config: %v (physical %d)", err, st.PhysicalBlocks)
	}
}

// TestObfuscateBoundsHostileExtents pins the DoS guards: a tiny
// codec-valid trace claiming petabyte extents must be rejected before any
// per-block enumeration, not obfuscated block by block.
func TestObfuscateBoundsHostileExtents(t *testing.T) {
	tr := &memtrace.Trace{BlockBytes: 1 << 20, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 1 << 31, Kind: memtrace.Read},
		{Cycle: 1, Addr: 1 << 60, Count: 1 << 31, Kind: memtrace.Write},
	}}
	if _, _, err := Obfuscate(tr, Config{BlockBytes: 4096}); err == nil {
		t.Fatal("petabyte-extent trace accepted")
	}
}

// TestObfuscateTopOfAddressSpace is the wrap regression: an extent hugging
// 2^64 used to wrap the per-block enumeration cursor past its end bound
// and spin forever. The trace is small and must obfuscate (or reject)
// promptly.
func TestObfuscateTopOfAddressSpace(t *testing.T) {
	top := ^uint64(0)
	tr := &memtrace.Trace{BlockBytes: 1, Accesses: []memtrace.Access{
		{Cycle: top, Addr: top - 1, Count: 1, Kind: memtrace.Read},
		{Cycle: top, Addr: 0, Count: 1, Kind: memtrace.Write},
		{Cycle: 0, Addr: top - 1, Count: 1, Kind: memtrace.Write},
	}}
	done := make(chan error, 1)
	go func() {
		_, _, err := Obfuscate(tr, Config{Seed: 1})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Logf("rejected (acceptable): %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Obfuscate hung on a top-of-address-space extent")
	}
}
