// Package oram implements a Path ORAM controller (Stefanov et al., CCS'13)
// over the reproduction's memory-trace model. The paper's related-work
// section names ORAM as the defense that defeats its attacks at significant
// cost; this package quantifies both claims: an obfuscated trace carries no
// read-after-write structure for the attack to segment, and every logical
// block access expands into 2·Z·(L+1) physical block transfers.
package oram

import (
	"fmt"
	"math/rand"

	"cnnrev/internal/memtrace"
)

// Config parameterizes the ORAM controller.
type Config struct {
	// BlockBytes is the ORAM block size (default 64).
	BlockBytes int
	// Z is the bucket capacity in blocks (default 4, the standard Path ORAM
	// choice).
	Z int
	// Seed drives the position-map randomness.
	Seed int64
}

// Validate rejects configurations the controller cannot run. Zero values
// are allowed — they select the documented defaults — but a negative Z
// would spin newController's tree-sizing loop forever (a negative product
// is always below the target), and a negative or non-power-of-two block
// size corrupts the block arithmetic. This is the single gate every
// HTTP-reachable caller goes through.
func (c Config) Validate() error {
	if c.Z < 0 {
		return fmt.Errorf("oram: Z must be >= 1 (got %d)", c.Z)
	}
	if c.BlockBytes < 0 {
		return fmt.Errorf("oram: BlockBytes must be >= 1 (got %d)", c.BlockBytes)
	}
	if c.BlockBytes > 0 && c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("oram: BlockBytes must be a power of two (got %d)", c.BlockBytes)
	}
	if c.BlockBytes > memtrace.MaxBlockBytes {
		return fmt.Errorf("oram: BlockBytes %d exceeds the maximum block size %d", c.BlockBytes, memtrace.MaxBlockBytes)
	}
	if c.Z > maxZ {
		return fmt.Errorf("oram: Z must be <= %d (got %d)", maxZ, c.Z)
	}
	return nil
}

// maxZ bounds the bucket capacity; every physical access touches 2·Z·(L+1)
// slots, so an absurd Z is a resource-exhaustion vector, not a security
// parameter.
const maxZ = 1 << 10

// maxLogicalAccesses and maxPhysicalTransfers bound an obfuscation run.
// A hostile (codec-valid) trace can claim petabyte extents in a few
// records; enumerating its logical blocks, let alone emitting the
// 2·Z·(L+1)-expanded physical stream, would run without bound. Both caps
// sit above every planned experiment (full AlexNet at page-granular ORAM
// blocks is ~10M physical transfers) and the error text names the fix:
// a larger ORAM block size.
const (
	maxLogicalAccesses   = 1 << 26
	maxPhysicalTransfers = 1 << 25
)

// Stats reports the cost and behaviour of an obfuscation run.
type Stats struct {
	// LogicalBlocks is the number of block accesses in the input trace.
	LogicalBlocks uint64
	// PhysicalBlocks is the number of block transfers the ORAM emitted.
	PhysicalBlocks uint64
	// Levels is the tree height + 1 (number of buckets per path).
	Levels int
	// MaxStash is the peak stash occupancy observed.
	MaxStash int
	// DistinctBlocks is the size of the logical address space touched.
	DistinctBlocks int
}

// Overhead returns the bandwidth expansion factor.
func (s Stats) Overhead() float64 {
	if s.LogicalBlocks == 0 {
		return 0
	}
	return float64(s.PhysicalBlocks) / float64(s.LogicalBlocks)
}

// controller is a Path ORAM instance over a fixed logical block set.
type controller struct {
	z      int
	levels int // buckets per path = tree height + 1
	leaves int
	rng    *rand.Rand

	pos     map[uint64]int      // logical block -> leaf
	bucket  [][]uint64          // bucket index -> resident blocks
	inStash map[uint64]struct{} // stash contents
	max     int
}

// newController sizes the tree for n logical blocks.
func newController(n int, z int, rng *rand.Rand) *controller {
	if n < 1 {
		n = 1
	}
	levels := 1
	for (1<<(levels-1))*z < n {
		levels++
	}
	c := &controller{
		z:       z,
		levels:  levels,
		leaves:  1 << (levels - 1),
		rng:     rng,
		pos:     make(map[uint64]int, n),
		bucket:  make([][]uint64, (1<<levels)-1),
		inStash: make(map[uint64]struct{}),
	}
	return c
}

// pathBuckets returns the bucket indices from the root to the given leaf.
func (c *controller) pathBuckets(leaf int) []int {
	idx := make([]int, c.levels)
	node := leaf + c.leaves - 1 // leaf node index in the implicit tree
	for l := c.levels - 1; l >= 0; l-- {
		idx[l] = node
		node = (node - 1) / 2
	}
	return idx
}

// onPath reports whether bucket b lies on the path to leaf.
func (c *controller) onPath(b, leaf int) bool {
	node := leaf + c.leaves - 1
	for {
		if node == b {
			return true
		}
		if node == 0 {
			return false
		}
		node = (node - 1) / 2
	}
}

// access performs one Path ORAM access for the logical block, invoking emit
// for every physical bucket-slot transfer (reads of the whole path, then
// writes of the whole path).
func (c *controller) access(block uint64, emit func(bucket, slot int, kind memtrace.Kind)) {
	leaf, ok := c.pos[block]
	if !ok {
		leaf = c.rng.Intn(c.leaves)
	}
	// Remap before the access, as the protocol requires.
	c.pos[block] = c.rng.Intn(c.leaves)

	path := c.pathBuckets(leaf)
	// Read the whole path into the stash.
	for _, b := range path {
		for s := 0; s < c.z; s++ {
			emit(b, s, memtrace.Read)
		}
		for _, blk := range c.bucket[b] {
			c.inStash[blk] = struct{}{}
		}
		c.bucket[b] = c.bucket[b][:0]
	}
	c.inStash[block] = struct{}{}
	if len(c.inStash) > c.max {
		c.max = len(c.inStash)
	}

	// Evict: greedily push stash blocks as deep as possible on this path.
	for l := c.levels - 1; l >= 0; l-- {
		b := path[l]
		for blk := range c.inStash {
			if len(c.bucket[b]) >= c.z {
				break
			}
			if c.onPath(b, c.pos[blk]) {
				c.bucket[b] = append(c.bucket[b], blk)
				delete(c.inStash, blk)
			}
		}
	}
	// Write the whole path back (dummies fill unused slots — the adversary
	// cannot tell).
	for _, b := range path {
		for s := 0; s < c.z; s++ {
			emit(b, s, memtrace.Write)
		}
	}
}

// Obfuscate replays a plaintext trace through Path ORAM and returns the
// physical trace an adversary would observe, plus cost statistics. Logical
// timing (the cycle stamps) is replaced by a constant-rate clock — one tick
// per physical block — since the ORAM controller serializes transfers.
func Obfuscate(tr *memtrace.Trace, cfg Config) (*memtrace.Trace, Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if err := tr.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if cfg.BlockBytes == 0 {
		cfg.BlockBytes = 64
	}
	if cfg.Z == 0 {
		cfg.Z = 4
	}
	if cfg.BlockBytes%tr.BlockBytes != 0 && tr.BlockBytes%cfg.BlockBytes != 0 {
		return nil, Stats{}, fmt.Errorf("oram: block size %d incompatible with trace granularity %d", cfg.BlockBytes, tr.BlockBytes)
	}

	// Bound the run before enumerating anything: a hostile trace's extents
	// can dwarf its record count.
	obb := uint64(cfg.BlockBytes)
	var totalLogical uint64
	for _, a := range tr.Accesses {
		lo := a.Addr / obb * obb
		hi := a.End(tr.BlockBytes)
		// span/obb rounded up, without the += obb-1 overflow a hostile
		// full-address-space extent would trigger.
		span := hi - lo
		blocks := span / obb
		if span%obb != 0 {
			blocks++
		}
		totalLogical += blocks
		if totalLogical > maxLogicalAccesses {
			return nil, Stats{}, fmt.Errorf("oram: trace spans more than %d logical block accesses at block size %d; use a larger ORAM block size", maxLogicalAccesses, cfg.BlockBytes)
		}
	}

	// Enumerate the logical block set. The inner loops step with an explicit
	// wrap check: an extent hugging the top of the address space would
	// otherwise wrap addr past hi and spin forever.
	seen := map[uint64]struct{}{}
	var logical []uint64
	for _, a := range tr.Accesses {
		lo := a.Addr / obb * obb
		hi := a.End(tr.BlockBytes)
		for addr := lo; addr < hi; {
			if _, ok := seen[addr]; !ok {
				seen[addr] = struct{}{}
				logical = append(logical, addr)
			}
			next := addr + obb
			if next < addr {
				break // top of the address space
			}
			addr = next
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := newController(len(logical), cfg.Z, rng)
	for _, b := range logical {
		c.pos[b] = rng.Intn(c.leaves)
	}
	if physical := totalLogical * 2 * uint64(cfg.Z) * uint64(c.levels); physical > maxPhysicalTransfers {
		return nil, Stats{}, fmt.Errorf("oram: obfuscation would emit %d physical transfers (cap %d); use a larger ORAM block size", physical, maxPhysicalTransfers)
	}

	st := Stats{Levels: c.levels, DistinctBlocks: len(logical)}
	rec := memtrace.NewRecorder(cfg.BlockBytes)
	var tick uint64
	emit := func(bucket, slot int, kind memtrace.Kind) {
		addr := uint64(bucket*cfg.Z+slot) * obb
		rec.Record(tick, addr, 1, kind)
		tick++
		st.PhysicalBlocks++
	}
	for _, a := range tr.Accesses {
		lo := a.Addr / obb * obb
		hi := a.End(tr.BlockBytes)
		for addr := lo; addr < hi; {
			st.LogicalBlocks++
			c.access(addr, emit)
			next := addr + obb
			if next < addr {
				break // top of the address space
			}
			addr = next
		}
	}
	st.MaxStash = c.max
	return rec.Trace(), st, nil
}
