package tensor

import "math"

// Pool2D holds the geometry of a square pooling window. Ceil selects
// Caffe-style ceil-mode output sizing (the mode the paper's Table 4 implies);
// windows that extend past the padded input are clipped.
type Pool2D struct {
	F, S, P int
	Ceil    bool
}

// OutDim returns the pooled output extent for an input extent w.
func (p Pool2D) OutDim(w int) int {
	if p.Ceil {
		return PoolOutDim(w, p.F, p.S, p.P)
	}
	return ConvOutDim(w, p.F, p.S, p.P)
}

// MaxForward applies channel-wise max pooling to in (c×h×w), writing
// out (c×oh×ow). If argmax is non-nil it records, per output element, the
// flat input index of the selected maximum (or -1 when the window covered
// only padding), for use by MaxBackward.
func (p Pool2D) MaxForward(in []float32, c, h, w int, out []float32, argmax []int) (oh, ow int) {
	oh, ow = p.OutDim(h), p.OutDim(w)
	oi := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			y0 := oy*p.S - p.P
			for ox := 0; ox < ow; ox++ {
				x0 := ox*p.S - p.P
				best := float32(math.Inf(-1))
				bestIdx := -1
				for ky := 0; ky < p.F; ky++ {
					iy := y0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.F; kx++ {
						ix := x0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						v := in[base+iy*w+ix]
						if v > best {
							best, bestIdx = v, base+iy*w+ix
						}
					}
				}
				if bestIdx < 0 {
					best = 0 // window fully in padding: emit zero
				}
				out[oi] = best
				if argmax != nil {
					argmax[oi] = bestIdx
				}
				oi++
			}
		}
	}
	return oh, ow
}

// MaxBackward scatters the upstream gradient dOut through the argmax map
// produced by MaxForward, accumulating into dIn (which the caller zeroes).
func (p Pool2D) MaxBackward(dOut []float32, argmax []int, dIn []float32) {
	for i, g := range dOut {
		if idx := argmax[i]; idx >= 0 {
			dIn[idx] += g
		}
	}
}

// AvgForward applies channel-wise average pooling with a fixed divisor of
// F² (padding counts as zeros), matching the paper's Eq. (11) semantics.
func (p Pool2D) AvgForward(in []float32, c, h, w int, out []float32) (oh, ow int) {
	oh, ow = p.OutDim(h), p.OutDim(w)
	inv := 1 / float32(p.F*p.F)
	oi := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			y0 := oy*p.S - p.P
			for ox := 0; ox < ow; ox++ {
				x0 := ox*p.S - p.P
				var sum float32
				for ky := 0; ky < p.F; ky++ {
					iy := y0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.F; kx++ {
						ix := x0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						sum += in[base+iy*w+ix]
					}
				}
				out[oi] = sum * inv
				oi++
			}
		}
	}
	return oh, ow
}

// AvgBackward distributes the upstream gradient uniformly over each window
// (1/F² per contributing input element), accumulating into dIn.
func (p Pool2D) AvgBackward(dOut []float32, c, h, w int, dIn []float32) {
	oh, ow := p.OutDim(h), p.OutDim(w)
	inv := 1 / float32(p.F*p.F)
	oi := 0
	for ch := 0; ch < c; ch++ {
		base := ch * h * w
		for oy := 0; oy < oh; oy++ {
			y0 := oy*p.S - p.P
			for ox := 0; ox < ow; ox++ {
				x0 := ox*p.S - p.P
				g := dOut[oi] * inv
				oi++
				for ky := 0; ky < p.F; ky++ {
					iy := y0 + ky
					if iy < 0 || iy >= h {
						continue
					}
					for kx := 0; kx < p.F; kx++ {
						ix := x0 + kx
						if ix < 0 || ix >= w {
							continue
						}
						dIn[base+iy*w+ix] += g
					}
				}
			}
		}
	}
}

// GlobalAvgForward averages each channel plane of in (c×h×w) to a single
// value, writing c values to out.
func GlobalAvgForward(in []float32, c, h, w int, out []float32) {
	plane := h * w
	inv := 1 / float32(plane)
	for ch := 0; ch < c; ch++ {
		var s float32
		for _, v := range in[ch*plane : (ch+1)*plane] {
			s += v
		}
		out[ch] = s * inv
	}
}

// GlobalAvgBackward spreads each channel's gradient uniformly over its plane.
func GlobalAvgBackward(dOut []float32, c, h, w int, dIn []float32) {
	plane := h * w
	inv := 1 / float32(plane)
	for ch := 0; ch < c; ch++ {
		g := dOut[ch] * inv
		row := dIn[ch*plane : (ch+1)*plane]
		for i := range row {
			row[i] += g
		}
	}
}
