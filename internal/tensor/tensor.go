// Package tensor provides the from-scratch numeric substrate used by the
// reproduction: dense float32 tensors in NCHW layout, convolution and
// pooling kernels (forward and backward), fully-connected layers, activation
// functions, and a parallel GEMM. It is deliberately dependency-free
// (standard library only) and deterministic given a seed.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// tensor; use New or Zeros to construct one with a shape.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data holds the elements in row-major order; len(Data) equals the
	// product of Shape.
	Data []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape. The data is not
// copied; the caller must not resize it. It panics if the element count does
// not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: %d elements cannot form shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if u.Shape[i] != d {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape covering the same data.
// It panics if the element counts differ.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v to %v", t.Shape, shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index %v does not match shape %v", idx, t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to zero.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// AddScaled accumulates alpha*u into t element-wise. Shapes must match.
func (t *Tensor) AddScaled(u *Tensor, alpha float32) {
	if len(t.Data) != len(u.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range u.Data {
		t.Data[i] += alpha * v
	}
}

// Add accumulates u into t element-wise.
func (t *Tensor) Add(u *Tensor) { t.AddScaled(u, 1) }

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float32) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Dot returns the inner product of t and u viewed as flat vectors.
func (t *Tensor) Dot(u *Tensor) float64 {
	if len(t.Data) != len(u.Data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i, v := range t.Data {
		s += float64(v) * float64(u.Data[i])
	}
	return s
}

// MaxAbs returns the largest absolute element value, or 0 for an empty tensor.
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// Argmax returns the index of the largest element in the flat data.
func (t *Tensor) Argmax() int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// TopK returns the indices of the k largest elements in descending order,
// breaking ties by ascending index. NaN elements sort last (below −Inf),
// themselves ordered by ascending index. The selection is a single pass
// maintaining a size-k sorted prefix, so it runs in O(n·log n̂) for the
// typical mostly-sorted-input case rather than k full scans.
func (t *Tensor) TopK(k int) []int {
	if k > len(t.Data) {
		k = len(t.Data)
	}
	if k <= 0 {
		return nil
	}
	return topKInto(t.Data, k, make([]int, 0, k), make([]float32, 0, k))
}

// TopKInto is TopK over a raw slice with caller-provided scratch, for hot
// loops that rank many outputs without allocating: idxBuf and valBuf need
// capacity k (they are truncated, filled and returned — the result aliases
// idxBuf). Ordering is identical to TopK.
func TopKInto(data []float32, k int, idxBuf []int, valBuf []float32) []int {
	if k > len(data) {
		k = len(data)
	}
	if k <= 0 {
		return nil
	}
	return topKInto(data, k, idxBuf[:0], valBuf[:0])
}

func topKInto(data []float32, k int, idx []int, vals []float32) []int {
	for i, v := range data {
		if len(idx) == k && !topKOutranks(v, i, vals[k-1], idx[k-1]) {
			continue
		}
		pos := len(idx)
		for pos > 0 && topKOutranks(v, i, vals[pos-1], idx[pos-1]) {
			pos--
		}
		if len(idx) < k {
			vals = append(vals, 0)
			idx = append(idx, 0)
		}
		copy(vals[pos+1:], vals[pos:])
		copy(idx[pos+1:], idx[pos:])
		vals[pos], idx[pos] = v, i
	}
	return idx
}

// topKOutranks reports whether element (va, ia) ranks strictly above
// (vb, ib) in TopK order: larger values first, any number above NaN, equal
// values (and NaN pairs) by ascending index.
func topKOutranks(va float32, ia int, vb float32, ib int) bool {
	an, bn := math.IsNaN(float64(va)), math.IsNaN(float64(vb))
	if an != bn {
		return bn
	}
	if !an && va != vb {
		return va > vb
	}
	return ia < ib
}

// CountNonZero returns the number of elements that are not exactly zero.
func (t *Tensor) CountNonZero() int {
	n := 0
	for _, v := range t.Data {
		if v != 0 {
			n++
		}
	}
	return n
}

// RandNormal fills t with Gaussian noise of the given standard deviation,
// using rng for determinism.
func (t *Tensor) RandNormal(rng *rand.Rand, stddev float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * stddev)
	}
}

// RandUniform fills t with uniform values in [lo, hi).
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// HeInit fills t with He-normal initialization for a layer with the given
// fan-in, the standard choice for ReLU networks.
func (t *Tensor) HeInit(rng *rand.Rand, fanIn int) {
	if fanIn < 1 {
		fanIn = 1
	}
	t.RandNormal(rng, math.Sqrt(2.0/float64(fanIn)))
}

// String renders a compact description, not the full contents.
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v(%d elems)", t.Shape, len(t.Data))
}
