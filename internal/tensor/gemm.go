package tensor

import (
	"runtime"
	"sync"
)

// gemmParallelThreshold is the minimum number of multiply-accumulates below
// which Gemm runs single-threaded; spawning goroutines for tiny products
// costs more than it saves.
const gemmParallelThreshold = 1 << 16

// Gemm computes C = A*B for row-major matrices, where A is m×k, B is k×n and
// C is m×n. C is overwritten. The inner loops are ordered i,k,j so that the
// innermost loop streams both B and C rows sequentially, and rows of C are
// distributed across goroutines for large products.
func Gemm(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	for i := range c[:m*n] {
		c[i] = 0
	}
	GemmAcc(a, b, c, m, k, n)
}

// GemmAcc computes C += A*B with the same layout conventions as Gemm.
func GemmAcc(a, b, c []float32, m, k, n int) {
	work := m * k * n
	workers := runtime.GOMAXPROCS(0)
	if work < gemmParallelThreshold || workers == 1 || m == 1 {
		gemmRows(a, b, c, 0, m, k, n)
		return
	}
	if workers > m {
		workers = m
	}
	rowsPer := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * rowsPer
		hi := lo + rowsPer
		if hi > m {
			hi = m
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmRows(a, b, c, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// gemmRows accumulates rows [lo,hi) of C += A*B.
func gemmRows(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTransA computes C = Aᵀ*B where A is k×m (so Aᵀ is m×k), B is k×n and
// C is m×n. Used by convolution backward passes.
func GemmTransA(a, b, c []float32, m, k, n int) {
	for i := range c[:m*n] {
		c[i] = 0
	}
	for p := 0; p < k; p++ {
		arow := a[p*m : p*m+m]
		brow := b[p*n : p*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTransB computes C = A*Bᵀ where A is m×k, B is n×k and C is m×n.
func GemmTransB(a, b, c []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			crow[j] = s
		}
	}
}
