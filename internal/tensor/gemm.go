package tensor

import "sync"

// The GEMM family is cache-blocked: the k and n dimensions are walked in
// KC×NC panels, the B panel is packed into a contiguous scratch buffer so
// the inner kernels stream it with unit stride regardless of the parent
// matrix's row length, and the m dimension is split into row blocks that
// the shared worker pool (pool.go) executes concurrently. All workers of a
// panel read the same packed B and own disjoint rows of C, so no
// synchronization is needed inside a panel.
const (
	// blockMC is the number of C rows one pool task owns.
	blockMC = 64
	// blockKC is the packed panel depth; blockKC·blockNC floats ≈ 256 KiB,
	// sized to sit in L2 while A rows stream past it. The panel is wide and
	// shallow (NC ≫ KC) so the innermost j loops stay long enough to amortize
	// their setup; narrower panels measurably lose to the unblocked kernel on
	// deep-k convolution shapes even though they touch the same bytes.
	blockKC = 128
	// blockNC is the packed panel width.
	blockNC = 512
)

// gemmParallelThreshold is the minimum number of multiply-accumulates below
// which a GEMM runs single-threaded and unblocked; packing a panel and
// waking pool workers for tiny products costs more than it saves.
const gemmParallelThreshold = 1 << 16

// gemmPackMinRows is the minimum m for the packed-panel path. Packing costs
// one copy per panel element and is amortized over the m rows that reuse the
// panel, so below this the kernels parallelize over unpacked column blocks
// instead (the depth-scaled candidate networks of the ranking attack produce
// exactly these few-filter, wide-spatial shapes).
const gemmPackMinRows = 16

// gemmTask is the pooled state of one parallel GEMM call: operand views,
// blocking geometry, the packed-panel scratch, and the kernel to run per
// pool iteration. Keeping all of it in one recycled struct (instead of a
// fresh closure per panel) makes every GEMM call allocation-free in steady
// state, which matters for the trainer's step loop and the simulator's
// repeated oracle runs.
type gemmTask struct {
	kern    func(t *gemmTask, i int)
	a, b, c []float32
	packed  []float32 // KC×NC panel scratch, retained across pool cycles
	m, k, n int
	width   int // column-block width of the skinny (unpacked) paths
	// Current panel window for the packed paths.
	mc, pc, kc, jc, nc int
}

// Run dispatches one pool iteration to the task's kernel.
func (t *gemmTask) Run(i int) { t.kern(t, i) }

// gemmTasks recycles task descriptors (with their packed panels) across
// calls. Nested GEMMs — a trainer shard's conv inside a parallel region —
// each draw their own descriptor.
var gemmTasks = sync.Pool{New: func() any { return new(gemmTask) }}

func getGemmTask(a, b, c []float32, m, k, n int) *gemmTask {
	t := gemmTasks.Get().(*gemmTask)
	t.a, t.b, t.c = a, b, c
	t.m, t.k, t.n = m, k, n
	return t
}

func putGemmTask(t *gemmTask) {
	t.a, t.b, t.c = nil, nil, nil // keep packed, drop operand references
	gemmTasks.Put(t)
}

// panel ensures the packed scratch exists and returns it.
func (t *gemmTask) panel() []float32 {
	if t.packed == nil {
		t.packed = make([]float32, blockKC*blockNC)
	}
	return t.packed
}

// colSplit partitions n columns for the unpacked skinny-m paths: wide enough
// that the inner loops still stream long runs (≥ blockNC), and no finer than
// ~2 blocks per pool worker. With a single worker this yields one full-width
// block, making the skinny path bit-for-bit the serial kernel's access
// pattern rather than paying column-split overhead nobody can use.
func colSplit(n int) (blocks, width int) {
	width = (n + 2*Workers() - 1) / (2 * Workers())
	if width < blockNC {
		width = blockNC
	}
	return (n + width - 1) / width, width
}

// rowSplit picks the row-block size for the packed paths: blockMC, shrunk so
// every pool worker gets a few tasks to balance, but no smaller than lo.
func rowSplit(m, lo int) int {
	mc := blockMC
	if w := Workers(); m < 2*w*mc {
		mc = max((m+2*w-1)/(2*w), lo)
	}
	return mc
}

// Gemm computes C = A*B for row-major matrices, where A is m×k, B is k×n and
// C is m×n. C is overwritten.
func Gemm(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: Gemm buffer too small")
	}
	for i := range c[:m*n] {
		c[i] = 0
	}
	gemmAcc(a, b, c, m, k, n)
}

// GemmAcc computes C += A*B with the same layout conventions as Gemm.
func GemmAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmAcc buffer too small")
	}
	gemmAcc(a, b, c, m, k, n)
}

func gemmAcc(a, b, c []float32, m, k, n int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if m*k*n < gemmParallelThreshold {
		gemmRows(a, b, c, 0, m, k, n)
		return
	}
	t := getGemmTask(a, b, c, m, k, n)
	defer putGemmTask(t)
	if m < gemmPackMinRows {
		// Skinny in m (a single-sample FC row, or a depth-scaled conv with a
		// handful of filters): too few rows to amortize packing, so split
		// the columns of B and C into blocks and run the plain streaming
		// kernel on each — disjoint C columns, no scratch, and identical
		// memory behavior to the serial kernel when the pool is busy.
		var blocks int
		blocks, t.width = colSplit(n)
		t.kern = skinnyAccKern
		ParallelRun(blocks, t)
		return
	}
	// Row blocks sized so every pool worker gets a few tasks to balance.
	mc := rowSplit(m, 8)
	t.mc = mc
	t.kern = panelAccKern
	packed := t.panel()
	for jc := 0; jc < n; jc += blockNC {
		nc := min(blockNC, n-jc)
		for pc := 0; pc < k; pc += blockKC {
			kc := min(blockKC, k-pc)
			packB(packed, b, pc, kc, jc, nc, n)
			t.pc, t.kc, t.jc, t.nc = pc, kc, jc, nc
			ParallelRun((m+mc-1)/mc, t)
		}
	}
}

// skinnyAccKern accumulates one column block of C += A*B without packing.
func skinnyAccKern(t *gemmTask, ji int) {
	jc := ji * t.width
	nc := min(t.width, t.n-jc)
	k, n := t.k, t.n
	for i := 0; i < t.m; i++ {
		arow := t.a[i*k : i*k+k]
		crow := t.c[i*n+jc : i*n+jc+nc]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := t.b[p*n+jc : p*n+jc+nc]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// panelAccKern accumulates one row block of C against the current packed
// panel window.
func panelAccKern(t *gemmTask, bi int) {
	ic := bi * t.mc
	gemmPanel(t.a, t.packed, t.c, ic, min(t.mc, t.m-ic), t.pc, t.kc, t.jc, t.nc, t.k, t.n)
}

// packB copies the kc×nc sub-panel of row-major B (row length n) starting at
// (pc, jc) into packed, contiguously with row length nc.
func packB(packed, b []float32, pc, kc, jc, nc, n int) {
	for p := 0; p < kc; p++ {
		src := b[(pc+p)*n+jc:]
		copy(packed[p*nc:p*nc+nc], src[:nc])
	}
}

// gemmPanel accumulates C[ic:ic+mc, jc:jc+nc] += A[ic:ic+mc, pc:pc+kc] times
// the packed kc×nc B panel. The zero-skip matters for the sparse im2col
// columns produced by padded convolutions.
func gemmPanel(a, packed, c []float32, ic, mc, pc, kc, jc, nc, k, n int) {
	for i := ic; i < ic+mc; i++ {
		arow := a[i*k+pc : i*k+pc+kc]
		crow := c[i*n+jc : i*n+jc+nc]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := packed[p*nc : p*nc+nc]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmRows accumulates rows [lo,hi) of C += A*B with the i,k,j loop order,
// streaming B and C rows sequentially. This is the unblocked small-size
// kernel and the serial baseline the blocked path must agree with.
func gemmRows(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := b[p*n : p*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTransA computes C = Aᵀ*B where A is k×m (so Aᵀ is m×k), B is k×n and
// C is m×n. Used by convolution backward passes.
func GemmTransA(a, b, c []float32, m, k, n int) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic("tensor: GemmTransA buffer too small")
	}
	for i := range c[:m*n] {
		c[i] = 0
	}
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if m*k*n < gemmParallelThreshold {
		gemmTransASerial(a, b, c, m, k, n)
		return
	}
	t := getGemmTask(a, b, c, m, k, n)
	defer putGemmTask(t)
	if m < gemmPackMinRows {
		// Too few C rows to amortize packing: split the columns instead and
		// run the serial loop order on each disjoint column window.
		var blocks int
		blocks, t.width = colSplit(n)
		t.kern = skinnyTransAKern
		ParallelRun(blocks, t)
		return
	}
	// Row blocks of C own contiguous runs of every row of A (A is k×m, so
	// row p contributes a[p*m+ic : p*m+ic+mc]), which keeps both the A reads
	// and the C writes of a task disjoint and cache-local.
	mc := rowSplit(m, 8)
	t.mc = mc
	t.kern = panelTransAKern
	packed := t.panel()
	for jc := 0; jc < n; jc += blockNC {
		nc := min(blockNC, n-jc)
		for pc := 0; pc < k; pc += blockKC {
			kc := min(blockKC, k-pc)
			packB(packed, b, pc, kc, jc, nc, n)
			t.pc, t.kc, t.jc, t.nc = pc, kc, jc, nc
			ParallelRun((m+mc-1)/mc, t)
		}
	}
}

// skinnyTransAKern accumulates one column block of C += Aᵀ*B unpacked.
func skinnyTransAKern(t *gemmTask, ji int) {
	jc := ji * t.width
	nc := min(t.width, t.n-jc)
	m, n := t.m, t.n
	for p := 0; p < t.k; p++ {
		arow := t.a[p*m : p*m+m]
		brow := t.b[p*n+jc : p*n+jc+nc]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := t.c[i*n+jc : i*n+jc+nc]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// panelTransAKern accumulates one row block of C += Aᵀ·(packed panel).
func panelTransAKern(t *gemmTask, bi int) {
	ic := bi * t.mc
	mcc := min(t.mc, t.m-ic)
	m, n := t.m, t.n
	for p := 0; p < t.kc; p++ {
		apart := t.a[(t.pc+p)*m+ic : (t.pc+p)*m+ic+mcc]
		brow := t.packed[p*t.nc : p*t.nc+t.nc]
		for ii, av := range apart {
			if av == 0 {
				continue
			}
			crow := t.c[(ic+ii)*n+t.jc : (ic+ii)*n+t.jc+t.nc]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// gemmTransASerial is the unblocked Aᵀ*B accumulation kernel.
func gemmTransASerial(a, b, c []float32, m, k, n int) {
	for p := 0; p < k; p++ {
		arow := a[p*m : p*m+m]
		brow := b[p*n : p*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			crow := c[i*n : i*n+n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// GemmTransB computes C = A*Bᵀ where A is m×k, B is n×k and C is m×n.
func GemmTransB(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTransB buffer too small")
	}
	for i := range c[:m*n] {
		c[i] = 0
	}
	gemmTransBAcc(a, b, c, m, k, n)
}

// GemmTransBAcc computes C += A*Bᵀ where A is m×k, B is n×k, C is m×n.
func GemmTransBAcc(a, b, c []float32, m, k, n int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic("tensor: GemmTransBAcc buffer too small")
	}
	gemmTransBAcc(a, b, c, m, k, n)
}

func gemmTransBAcc(a, b, c []float32, m, k, n int) {
	if m == 0 || n == 0 || k == 0 {
		return
	}
	if m*k*n < gemmParallelThreshold {
		gemmTransBRows(a, b, c, 0, m, k, n)
		return
	}
	t := getGemmTask(a, b, c, m, k, n)
	defer putGemmTask(t)
	if m < gemmPackMinRows {
		// Few C rows: every output is an independent dot of contiguous
		// k-vectors, so split the B rows (= C columns) across the pool
		// without packing.
		var blocks int
		blocks, t.width = colSplit(n)
		t.kern = skinnyTransBKern
		ParallelRun(blocks, t)
		return
	}
	// Here both A rows and B rows are contiguous k-vectors; the panel packs
	// nc rows of B restricted to a kc slice so a task's working set is one
	// nc×kc panel plus the A row it streams.
	mc := rowSplit(m, 1)
	t.mc = mc
	t.kern = panelTransBKern
	packed := t.panel()
	for jc := 0; jc < n; jc += blockNC {
		nc := min(blockNC, n-jc)
		for pc := 0; pc < k; pc += blockKC {
			kc := min(blockKC, k-pc)
			// Pack rows jc..jc+nc of B, columns pc..pc+kc (row length kc).
			for j := 0; j < nc; j++ {
				src := b[(jc+j)*k+pc:]
				copy(packed[j*kc:j*kc+kc], src[:kc])
			}
			t.pc, t.kc, t.jc, t.nc = pc, kc, jc, nc
			ParallelRun((m+mc-1)/mc, t)
		}
	}
}

// skinnyTransBKern accumulates one column block of C += A*Bᵀ unpacked.
func skinnyTransBKern(t *gemmTask, ji int) {
	jc := ji * t.width
	nc := min(t.width, t.n-jc)
	k, n := t.k, t.n
	for i := 0; i < t.m; i++ {
		arow := t.a[i*k : i*k+k]
		crow := t.c[i*n+jc : i*n+jc+nc]
		for j := 0; j < nc; j++ {
			crow[j] += dot(arow, t.b[(jc+j)*k:(jc+j)*k+k])
		}
	}
}

// panelTransBKern accumulates one row block of C += A·(packed Bᵀ panel).
func panelTransBKern(t *gemmTask, bi int) {
	ic := bi * t.mc
	k, n := t.k, t.n
	for i := ic; i < min(ic+t.mc, t.m); i++ {
		arow := t.a[i*k+t.pc : i*k+t.pc+t.kc]
		crow := t.c[i*n+t.jc : i*n+t.jc+t.nc]
		for j := 0; j < t.nc; j++ {
			crow[j] += dot(arow, t.packed[j*t.kc:j*t.kc+t.kc])
		}
	}
}

// gemmTransBRows is the unblocked A*Bᵀ kernel over C rows [lo,hi).
func gemmTransBRows(a, b, c []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		arow := a[i*k : i*k+k]
		crow := c[i*n : i*n+n]
		for j := 0; j < n; j++ {
			crow[j] += dot(arow, b[j*k:j*k+k])
		}
	}
}

// dot returns the inner product of two equal-length float32 vectors, using
// four accumulators so the multiplies pipeline.
func dot(x, y []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i] * y[i]
		s1 += x[i+1] * y[i+1]
		s2 += x[i+2] * y[i+2]
		s3 += x[i+3] * y[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i] * y[i]
	}
	return (s0 + s1) + (s2 + s3)
}
