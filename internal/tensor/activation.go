package tensor

// ReLUForward writes max(0, in[i]) into out. in and out may alias.
func ReLUForward(in, out []float32) {
	for i, v := range in {
		if v > 0 {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// ThresholdReLUForward writes in[i] if in[i] > thresh, else 0. A tunable
// threshold activation is the Minerva/Cnvlutin-style optimization that the
// paper's §4 exploits to recover the bias: with an all-zero input the output
// pixel value is exactly the bias, so sweeping the threshold locates it.
func ThresholdReLUForward(in, out []float32, thresh float32) {
	for i, v := range in {
		if v > thresh {
			out[i] = v
		} else {
			out[i] = 0
		}
	}
}

// ReLUBackward accumulates dOut into dIn where the forward output was
// positive. out must be the forward ReLU output (or input; the mask is the
// same away from exact zeros).
func ReLUBackward(out, dOut, dIn []float32) {
	for i, v := range out {
		if v > 0 {
			dIn[i] += dOut[i]
		}
	}
}
