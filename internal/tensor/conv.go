package tensor

// ConvOutDim returns the spatial output extent of a convolution with kernel
// width f, per-side padding p and stride s over an input of extent w:
// floor((w − f + 2p)/s) + 1. It returns 0 when the kernel does not fit.
// Every component of the reproduction (simulator, solver, attacks) shares
// this arithmetic so that the constraint equations match the victim exactly.
func ConvOutDim(w, f, s, p int) int {
	num := w - f + 2*p
	if num < 0 || s <= 0 {
		return 0
	}
	return num/s + 1
}

// PoolOutDim returns the spatial output extent of a pooling window of width
// f, per-side padding p and stride s over an input of extent w using
// Caffe-style ceil semantics: ceil((w − f + 2p)/s) + 1. Paper Table 4 is
// only consistent with ceil-mode pooling (e.g. 55 → 27 with F=3, S=2).
func PoolOutDim(w, f, s, p int) int {
	num := w - f + 2*p
	if num < 0 || s <= 0 {
		return 0
	}
	return (num+s-1)/s + 1
}

// Conv2D holds the immutable geometry of a 2-D convolution layer.
type Conv2D struct {
	InC, OutC int // channel counts
	F         int // square kernel width
	S         int // stride
	P         int // per-side zero padding
}

// OutDims returns the spatial output size for an h×w input.
func (c Conv2D) OutDims(h, w int) (oh, ow int) {
	return ConvOutDim(h, c.F, c.S, c.P), ConvOutDim(w, c.F, c.S, c.P)
}

// Im2col expands an input image (InC×H×W, flat) into a column matrix of
// shape (InC·F·F) × (OH·OW) so convolution becomes a single GEMM. cols must
// have capacity InC·F·F·OH·OW.
func (c Conv2D) Im2col(in []float32, h, w int, cols []float32) (oh, ow int) {
	oh, ow = c.OutDims(h, w)
	rowLen := oh * ow
	for ch := 0; ch < c.InC; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < c.F; ky++ {
			for kx := 0; kx < c.F; kx++ {
				r := (ch*c.F+ky)*c.F + kx
				dst := cols[r*rowLen : (r+1)*rowLen]
				di := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.S - c.P + ky
					if iy < 0 || iy >= h {
						for ox := 0; ox < ow; ox++ {
							dst[di] = 0
							di++
						}
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.S - c.P + kx
						if ix < 0 || ix >= w {
							dst[di] = 0
						} else {
							dst[di] = in[rowBase+ix]
						}
						di++
					}
				}
			}
		}
	}
	return oh, ow
}

// Col2im scatters a column-matrix gradient back onto an input-shaped
// gradient buffer, accumulating where kernel windows overlap. It is the
// adjoint of Im2col. dIn must be pre-zeroed by the caller if accumulation
// from scratch is desired.
func (c Conv2D) Col2im(cols []float32, h, w int, dIn []float32) {
	oh, ow := c.OutDims(h, w)
	rowLen := oh * ow
	for ch := 0; ch < c.InC; ch++ {
		chBase := ch * h * w
		for ky := 0; ky < c.F; ky++ {
			for kx := 0; kx < c.F; kx++ {
				r := (ch*c.F+ky)*c.F + kx
				src := cols[r*rowLen : (r+1)*rowLen]
				si := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*c.S - c.P + ky
					if iy < 0 || iy >= h {
						si += ow
						continue
					}
					rowBase := chBase + iy*w
					for ox := 0; ox < ow; ox++ {
						ix := ox*c.S - c.P + kx
						if ix >= 0 && ix < w {
							dIn[rowBase+ix] += src[si]
						}
						si++
					}
				}
			}
		}
	}
}

// Forward computes the convolution of a single image in (InC×H×W) with
// weights (OutC × InC·F·F) and per-output-channel bias, writing the result
// (OutC×OH×OW) into out. cols is scratch space of size InC·F·F·OH·OW; pass
// nil to allocate internally.
func (c Conv2D) Forward(in []float32, h, w int, weights, bias, out, cols []float32) (oh, ow int) {
	oh, ow = c.OutDims(h, w)
	k := c.InC * c.F * c.F
	if cols == nil {
		cols = make([]float32, k*oh*ow)
	}
	c.Im2col(in, h, w, cols)
	Gemm(weights, cols, out, c.OutC, k, oh*ow)
	if bias != nil {
		plane := oh * ow
		for oc := 0; oc < c.OutC; oc++ {
			b := bias[oc]
			row := out[oc*plane : (oc+1)*plane]
			for i := range row {
				row[i] += b
			}
		}
	}
	return oh, ow
}

// Backward computes gradients for a single image given upstream gradient
// dOut (OutC×OH×OW). It accumulates into dWeights (OutC × InC·F·F) and dBias
// (OutC), and writes the input gradient into dIn (InC×H×W, overwritten).
// Passing nil for dIn skips input-gradient computation (first layer).
// cols must hold the Im2col expansion of the forward input (recomputed here
// from in), and colsGrad is scratch of the same size; pass nil to allocate.
func (c Conv2D) Backward(in []float32, h, w int, weights, dOut, dWeights, dBias, dIn, cols, colsGrad []float32) {
	oh, ow := c.OutDims(h, w)
	k := c.InC * c.F * c.F
	n := oh * ow
	if cols == nil {
		cols = make([]float32, k*n)
	}
	c.Im2col(in, h, w, cols)

	// dW += dOut · colsᵀ  (OutC×n)·(n×k)
	GemmTransBAcc(dOut, cols, dWeights, c.OutC, n, k)

	if dBias != nil {
		for oc := 0; oc < c.OutC; oc++ {
			var s float32
			for _, v := range dOut[oc*n : (oc+1)*n] {
				s += v
			}
			dBias[oc] += s
		}
	}

	if dIn != nil {
		if colsGrad == nil {
			colsGrad = make([]float32, k*n)
		}
		// dcols = Wᵀ · dOut  (k×OutC)·(OutC×n)
		GemmTransA(weights, dOut, colsGrad, k, c.OutC, n)
		for i := range dIn[:c.InC*h*w] {
			dIn[i] = 0
		}
		c.Col2im(colsGrad, h, w, dIn)
	}
}
