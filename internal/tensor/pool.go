package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerPool is a fixed set of persistent worker goroutines shared by every
// parallel kernel in the process. Routing all data parallelism — GEMM row
// blocks, per-sample training/accuracy fan-out, per-filter weight recovery,
// per-candidate ranking — through one bounded pool keeps the total number of
// runnable compute goroutines at the pool size even when parallel regions
// nest (a trainer worker calling a parallel GEMM), instead of multiplying
// goroutines per call and oversubscribing GOMAXPROCS.
type workerPool struct {
	size  int
	tasks chan *region
	// regions recycles parallel-region descriptors so steady-state Parallel
	// calls allocate nothing: a region is a pointer, and sync.Pool hands
	// pointers back and forth without boxing.
	regions sync.Pool
}

// region describes one parallel loop in flight: the work body, the iteration
// bound, the shared claim counter, and the completion group. Workers receive
// a *region over the task channel rather than a fresh closure, so recruiting
// help costs no allocation.
type region struct {
	r    Runner
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup
}

// loop claims and runs iterations until the region is exhausted.
func (rg *region) loop() {
	defer rg.wg.Done()
	for {
		i := rg.next.Add(1) - 1
		if i >= rg.n {
			return
		}
		rg.r.Run(int(i))
	}
}

// newWorkerPool starts a pool of the given parallel width. The pool runs
// size−1 background workers; the goroutine that submits a parallel region
// always participates, so total concurrency is exactly size.
func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	p := &workerPool{size: size, tasks: make(chan *region)}
	p.regions.New = func() any { return new(region) }
	for i := 0; i < size-1; i++ {
		go p.work()
	}
	return p
}

func (p *workerPool) work() {
	for rg := range p.tasks {
		rg.loop()
	}
}

// parallel executes r.Run(i) for every i in [0,n), distributing iterations
// dynamically over idle pool workers plus the calling goroutine. Handing the
// loop to a worker uses a non-blocking send on an unbuffered channel, which
// succeeds only when a worker is actually parked waiting — so a nested call
// issued from inside a worker finds no idle peers and simply runs inline,
// never growing the goroutine count past the pool size. r.Run must be safe
// for concurrent invocation with distinct i.
func (p *workerPool) parallel(n int, r Runner) {
	if n <= 0 {
		return
	}
	if n == 1 || p.size == 1 {
		for i := 0; i < n; i++ {
			r.Run(i)
		}
		return
	}
	rg := p.regions.Get().(*region)
	rg.r, rg.n = r, int64(n)
	rg.next.Store(0)
recruit:
	for helpers := 0; helpers < n-1 && helpers < p.size-1; helpers++ {
		rg.wg.Add(1)
		select {
		case p.tasks <- rg:
		default:
			rg.wg.Done()
			break recruit // no idle worker: run the rest inline
		}
	}
	rg.wg.Add(1)
	rg.loop()
	rg.wg.Wait()
	rg.r = nil // drop the body reference before pooling the descriptor
	p.regions.Put(rg)
}

var (
	sharedOnce sync.Once
	shared     *workerPool
)

func sharedPool() *workerPool {
	sharedOnce.Do(func() { shared = newWorkerPool(runtime.GOMAXPROCS(0)) })
	return shared
}

// Workers returns the parallel width of the shared pool (the number of
// iterations of a Parallel region that can run simultaneously). Callers
// sizing per-worker scratch buffers should allocate this many.
func Workers() int { return sharedPool().size }

// Runner is the work body of a ParallelRun region. Hot paths implement it on
// a reusable (typically pooled) struct instead of passing a closure to
// Parallel: a pointer receiver converts to the interface without allocating,
// so steady-state parallel loops stay allocation-free.
type Runner interface {
	// Run executes iteration i. It must be safe to call concurrently with
	// distinct i.
	Run(i int)
}

// funcRunner adapts a plain function to Runner. Func values are
// pointer-shaped, so the interface conversion itself does not allocate (the
// closure, if any, is the caller's allocation).
type funcRunner func(int)

func (f funcRunner) Run(i int) { f(i) }

// Parallel runs fn(i) for every i in [0,n) on the shared pool, returning
// when all iterations have finished. Iterations are claimed dynamically, so
// uneven per-iteration cost balances automatically. Nested Parallel calls
// are safe and degrade to inline execution rather than oversubscribing.
func Parallel(n int, fn func(i int)) { sharedPool().parallel(n, funcRunner(fn)) }

// ParallelRun is Parallel for pre-built Runner bodies. Use it from hot loops
// that must not allocate: keep the Runner in a reusable struct and the whole
// region — descriptor, recruitment, claim counter — costs zero allocations
// in steady state.
func ParallelRun(n int, r Runner) { sharedPool().parallel(n, r) }
