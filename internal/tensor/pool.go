package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerPool is a fixed set of persistent worker goroutines shared by every
// parallel kernel in the process. Routing all data parallelism — GEMM row
// blocks, per-sample training/accuracy fan-out, per-filter weight recovery —
// through one bounded pool keeps the total number of runnable compute
// goroutines at the pool size even when parallel regions nest (a trainer
// worker calling a parallel GEMM), instead of multiplying goroutines per
// call and oversubscribing GOMAXPROCS.
type workerPool struct {
	size  int
	tasks chan func()
}

// newWorkerPool starts a pool of the given parallel width. The pool runs
// size−1 background workers; the goroutine that submits a parallel region
// always participates, so total concurrency is exactly size.
func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	p := &workerPool{size: size, tasks: make(chan func())}
	for i := 0; i < size-1; i++ {
		go p.work()
	}
	return p
}

func (p *workerPool) work() {
	for f := range p.tasks {
		f()
	}
}

// parallel executes fn(i) for every i in [0,n), distributing iterations
// dynamically over idle pool workers plus the calling goroutine. Handing the
// loop to a worker uses a non-blocking send on an unbuffered channel, which
// succeeds only when a worker is actually parked waiting — so a nested call
// issued from inside a worker finds no idle peers and simply runs inline,
// never growing the goroutine count past the pool size. fn must be safe for
// concurrent invocation with distinct i.
func (p *workerPool) parallel(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 || p.size == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	loop := func() {
		defer wg.Done()
		for {
			i := next.Add(1) - 1
			if i >= int64(n) {
				return
			}
			fn(int(i))
		}
	}
recruit:
	for helpers := 0; helpers < n-1 && helpers < p.size-1; helpers++ {
		wg.Add(1)
		select {
		case p.tasks <- loop:
		default:
			wg.Done()
			break recruit // no idle worker: run the rest inline
		}
	}
	wg.Add(1)
	loop()
	wg.Wait()
}

var (
	sharedOnce sync.Once
	shared     *workerPool
)

func sharedPool() *workerPool {
	sharedOnce.Do(func() { shared = newWorkerPool(runtime.GOMAXPROCS(0)) })
	return shared
}

// Workers returns the parallel width of the shared pool (the number of
// iterations of a Parallel region that can run simultaneously). Callers
// sizing per-worker scratch buffers should allocate this many.
func Workers() int { return sharedPool().size }

// Parallel runs fn(i) for every i in [0,n) on the shared pool, returning
// when all iterations have finished. Iterations are claimed dynamically, so
// uneven per-iteration cost balances automatically. Nested Parallel calls
// are safe and degrade to inline execution rather than oversubscribing.
func Parallel(n int, fn func(i int)) { sharedPool().parallel(n, fn) }
