package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveGemm(a, b []float32, m, k, n int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestGemmMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {7, 11, 13}, {64, 32, 48}, {130, 17, 9}} {
		m, k, n := dims[0], dims[1], dims[2]
		a, b := randSlice(rng, m*k), randSlice(rng, k*n)
		c := make([]float32, m*n)
		Gemm(a, b, c, m, k, n)
		want := naiveGemm(a, b, m, k, n)
		if d := maxDiff(c, want); d > 1e-4 {
			t.Fatalf("Gemm(%dx%dx%d) differs from naive by %g", m, k, n, d)
		}
	}
}

func TestGemmParallelLarge(t *testing.T) {
	// Big enough to cross gemmParallelThreshold and exercise goroutine split.
	rng := rand.New(rand.NewSource(8))
	m, k, n := 97, 53, 61
	a, b := randSlice(rng, m*k), randSlice(rng, k*n)
	c := make([]float32, m*n)
	Gemm(a, b, c, m, k, n)
	if d := maxDiff(c, naiveGemm(a, b, m, k, n)); d > 1e-3 {
		t.Fatalf("parallel Gemm differs from naive by %g", d)
	}
}

func TestGemmAccAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, k, n := 4, 3, 5
	a, b := randSlice(rng, m*k), randSlice(rng, k*n)
	c := make([]float32, m*n)
	for i := range c {
		c[i] = 1
	}
	GemmAcc(a, b, c, m, k, n)
	want := naiveGemm(a, b, m, k, n)
	for i := range want {
		want[i]++
	}
	if d := maxDiff(c, want); d > 1e-4 {
		t.Fatalf("GemmAcc differs by %g", d)
	}
}

func TestGemmTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m, k, n := 6, 4, 5 // A stored k×m
	a, b := randSlice(rng, k*m), randSlice(rng, k*n)
	c := make([]float32, m*n)
	GemmTransA(a, b, c, m, k, n)
	// Explicit transpose then naive multiply.
	at := make([]float32, m*k)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			at[i*k+p] = a[p*m+i]
		}
	}
	if d := maxDiff(c, naiveGemm(at, b, m, k, n)); d > 1e-4 {
		t.Fatalf("GemmTransA differs by %g", d)
	}
}

func TestGemmTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m, k, n := 5, 7, 3 // B stored n×k
	a, b := randSlice(rng, m*k), randSlice(rng, n*k)
	c := make([]float32, m*n)
	GemmTransB(a, b, c, m, k, n)
	bt := make([]float32, k*n)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			bt[p*n+j] = b[j*k+p]
		}
	}
	if d := maxDiff(c, naiveGemm(a, bt, m, k, n)); d > 1e-4 {
		t.Fatalf("GemmTransB differs by %g", d)
	}
	// The accumulating variant must add on top.
	c2 := make([]float32, m*n)
	copy(c2, c)
	GemmTransBAcc(a, b, c2, m, k, n)
	for i := range c2 {
		if math.Abs(float64(c2[i]-2*c[i])) > 1e-4 {
			t.Fatalf("GemmTransBAcc not accumulating at %d", i)
		}
	}
}

// naiveGemmTransA is the reference Aᵀ·B (A stored k×m): explicit transpose
// plus the naive triple loop.
func naiveGemmTransA(a, b []float32, m, k, n int) []float32 {
	at := make([]float32, m*k)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			at[i*k+p] = a[p*m+i]
		}
	}
	return naiveGemm(at, b, m, k, n)
}

// naiveGemmTransB is the reference A·Bᵀ (B stored n×k).
func naiveGemmTransB(a, b []float32, m, k, n int) []float32 {
	bt := make([]float32, k*n)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			bt[p*n+j] = b[j*k+p]
		}
	}
	return naiveGemm(a, bt, m, k, n)
}

// Property: every blocked kernel matches the retained naive reference over
// randomized shapes, including k=0, skinny m/n, and extents that are not
// multiples of the MC/KC/NC block sizes (so partial panels are exercised).
func TestQuickBlockedKernelsMatchNaive(t *testing.T) {
	dim := func(r *rand.Rand) int {
		switch r.Intn(4) {
		case 0:
			return 1 + r.Intn(8) // tiny / skinny
		case 1:
			return r.Intn(2) * (1 + r.Intn(4)) // sometimes 0
		case 2:
			return blockMC + r.Intn(blockMC) // straddles a row block
		default:
			return 1 + r.Intn(blockKC+40) // may straddle a KC/NC panel
		}
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := dim(r), dim(r), dim(r)
		tol := 1e-4 + 1e-6*float64(k)
		a, b := randSlice(r, m*k), randSlice(r, k*n)
		c := make([]float32, m*n)
		Gemm(a, b, c, m, k, n)
		if maxDiff(c, naiveGemm(a, b, m, k, n)) > tol {
			t.Logf("Gemm mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}

		acc := make([]float32, m*n)
		for i := range acc {
			acc[i] = float32(i%5) - 2
		}
		want := naiveGemm(a, b, m, k, n)
		for i := range want {
			want[i] += float32(i%5) - 2
		}
		GemmAcc(a, b, acc, m, k, n)
		if maxDiff(acc, want) > tol {
			t.Logf("GemmAcc mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}

		at := randSlice(r, k*m) // stored k×m
		c2 := make([]float32, m*n)
		GemmTransA(at, b, c2, m, k, n)
		if maxDiff(c2, naiveGemmTransA(at, b, m, k, n)) > tol {
			t.Logf("GemmTransA mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}

		bt := randSlice(r, n*k) // stored n×k
		c3 := make([]float32, m*n)
		GemmTransB(a, bt, c3, m, k, n)
		wantT := naiveGemmTransB(a, bt, m, k, n)
		if maxDiff(c3, wantT) > tol {
			t.Logf("GemmTransB mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}

		c4 := make([]float32, m*n)
		for i := range c4 {
			c4[i] = 1
		}
		GemmTransBAcc(a, bt, c4, m, k, n)
		for i := range wantT {
			wantT[i]++
		}
		if maxDiff(c4, wantT) > tol {
			t.Logf("GemmTransBAcc mismatch at m=%d k=%d n=%d", m, k, n)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGemmZeroK pins the k=0 contract: Gemm/GemmTransA/GemmTransB zero C,
// the accumulating variants leave it untouched.
func TestGemmZeroK(t *testing.T) {
	m, n := 3, 4
	c := make([]float32, m*n)
	for i := range c {
		c[i] = 7
	}
	Gemm(nil, nil, c, m, 0, n)
	for i, v := range c {
		if v != 0 {
			t.Fatalf("Gemm k=0 left c[%d]=%g", i, v)
		}
	}
	for i := range c {
		c[i] = 7
	}
	GemmAcc(nil, nil, c, m, 0, n)
	GemmTransBAcc(nil, nil, c, m, 0, n)
	for i, v := range c {
		if v != 7 {
			t.Fatalf("accumulating k=0 variant changed c[%d] to %g", i, v)
		}
	}
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected bounds panic", name)
		}
	}()
	fn()
}

// Every variant must reject undersized buffers up front rather than
// corrupting adjacent memory or panicking mid-write.
func TestGemmBoundsChecks(t *testing.T) {
	m, k, n := 4, 5, 6
	a := make([]float32, m*k)
	at := make([]float32, k*m)
	b := make([]float32, k*n)
	bt := make([]float32, n*k)
	c := make([]float32, m*n)
	short := func(s []float32) []float32 { return s[:len(s)-1] }

	mustPanic(t, "Gemm short a", func() { Gemm(short(a), b, c, m, k, n) })
	mustPanic(t, "Gemm short b", func() { Gemm(a, short(b), c, m, k, n) })
	mustPanic(t, "Gemm short c", func() { Gemm(a, b, short(c), m, k, n) })
	mustPanic(t, "GemmAcc short c", func() { GemmAcc(a, b, short(c), m, k, n) })
	mustPanic(t, "GemmTransA short a", func() { GemmTransA(short(at), b, c, m, k, n) })
	mustPanic(t, "GemmTransA short b", func() { GemmTransA(at, short(b), c, m, k, n) })
	mustPanic(t, "GemmTransA short c", func() { GemmTransA(at, b, short(c), m, k, n) })
	mustPanic(t, "GemmTransB short a", func() { GemmTransB(short(a), bt, c, m, k, n) })
	mustPanic(t, "GemmTransB short b", func() { GemmTransB(a, short(bt), c, m, k, n) })
	mustPanic(t, "GemmTransB short c", func() { GemmTransB(a, bt, short(c), m, k, n) })
	mustPanic(t, "GemmTransBAcc short a", func() { GemmTransBAcc(short(a), bt, c, m, k, n) })
	mustPanic(t, "GemmTransBAcc short b", func() { GemmTransBAcc(a, short(bt), c, m, k, n) })
	mustPanic(t, "GemmTransBAcc short c", func() { GemmTransBAcc(a, bt, short(c), m, k, n) })
}

// Property: matrix multiplication distributes over addition, (A)(B+B') = AB + AB'.
func TestQuickGemmDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, k, n := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a := randSlice(rng, m*k)
		b1, b2 := randSlice(rng, k*n), randSlice(rng, k*n)
		sum := make([]float32, k*n)
		for i := range sum {
			sum[i] = b1[i] + b2[i]
		}
		c1, c2, cs := make([]float32, m*n), make([]float32, m*n), make([]float32, m*n)
		Gemm(a, b1, c1, m, k, n)
		Gemm(a, b2, c2, m, k, n)
		Gemm(a, sum, cs, m, k, n)
		for i := range cs {
			if math.Abs(float64(cs[i]-(c1[i]+c2[i]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
