package tensor

import (
	"math/rand"
	"testing"
)

// naiveGemmInto is the reference i,j,p triple loop writing into a
// preallocated C, used as the baseline the blocked kernels must beat.
func naiveGemmInto(a, b, c []float32, m, k, n int) {
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
}

func benchOperands(m, k, n int) (a, b, c []float32) {
	rng := rand.New(rand.NewSource(1))
	a, b, c = randSlice(rng, m*k), randSlice(rng, k*n), make([]float32, m*n)
	return
}

func benchGemmKernel(b *testing.B, m, k, n int, fn func(a, bb, c []float32)) {
	b.ReportAllocs()
	b.Helper()
	a, bb, c := benchOperands(m, k, n)
	b.SetBytes(int64(m*k+k*n+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(a, bb, c)
	}
}

// Blocked parallel kernels versus the retained naive reference, same shapes.

func BenchmarkGemmBlocked256(b *testing.B) {
	b.ReportAllocs()
	benchGemmKernel(b, 256, 256, 256, func(a, bb, c []float32) { Gemm(a, bb, c, 256, 256, 256) })
}

func BenchmarkGemmNaive256(b *testing.B) {
	b.ReportAllocs()
	benchGemmKernel(b, 256, 256, 256, func(a, bb, c []float32) { naiveGemmInto(a, bb, c, 256, 256, 256) })
}

func BenchmarkGemmBlocked512(b *testing.B) {
	b.ReportAllocs()
	benchGemmKernel(b, 512, 512, 512, func(a, bb, c []float32) { Gemm(a, bb, c, 512, 512, 512) })
}

func BenchmarkGemmNaive512(b *testing.B) {
	b.ReportAllocs()
	benchGemmKernel(b, 512, 512, 512, func(a, bb, c []float32) { naiveGemmInto(a, bb, c, 512, 512, 512) })
}

func BenchmarkGemmTransBBlocked(b *testing.B) {
	b.ReportAllocs()
	// Shape family of a conv-backward dW accumulation (C = dOut·colsᵀ).
	m, k, n := 256, 729, 512
	a := randSlice(rand.New(rand.NewSource(1)), m*k)
	bt := randSlice(rand.New(rand.NewSource(2)), n*k)
	c := make([]float32, m*n)
	b.SetBytes(int64(m*k+n*k+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmTransB(a, bt, c, m, k, n)
	}
}

func BenchmarkGemmTransBNaive(b *testing.B) {
	b.ReportAllocs()
	m, k, n := 256, 729, 512
	a := randSlice(rand.New(rand.NewSource(1)), m*k)
	bt := randSlice(rand.New(rand.NewSource(2)), n*k)
	c := make([]float32, m*n)
	b.SetBytes(int64(m*k+n*k+m*n) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for x := 0; x < m; x++ {
			arow := a[x*k : x*k+k]
			crow := c[x*n : x*n+n]
			for j := 0; j < n; j++ {
				brow := bt[j*k : j*k+k]
				var s float32
				for p, av := range arow {
					s += av * brow[p]
				}
				crow[j] = s
			}
		}
	}
}
