package tensor

// Linear is a fully-connected layer mapping In features to Out features.
// In a CNN accelerator an FC layer is a convolution whose filter width
// equals the whole input feature map, which is exactly how the paper's
// structure attack treats it.
type Linear struct {
	In, Out int
}

// Forward computes out = W·in + b for one sample, with W stored row-major
// as Out×In.
func (l Linear) Forward(in, weights, bias, out []float32) {
	for o := 0; o < l.Out; o++ {
		row := weights[o*l.In : (o+1)*l.In]
		var s float32
		for i, v := range in {
			s += row[i] * v
		}
		if bias != nil {
			s += bias[o]
		}
		out[o] = s
	}
}

// Backward accumulates dWeights and dBias for one sample and, when dIn is
// non-nil, overwrites dIn with Wᵀ·dOut.
func (l Linear) Backward(in, weights, dOut, dWeights, dBias, dIn []float32) {
	for o := 0; o < l.Out; o++ {
		g := dOut[o]
		if dBias != nil {
			dBias[o] += g
		}
		if g == 0 {
			continue
		}
		drow := dWeights[o*l.In : (o+1)*l.In]
		for i, v := range in {
			drow[i] += g * v
		}
	}
	if dIn != nil {
		for i := range dIn[:l.In] {
			dIn[i] = 0
		}
		for o := 0; o < l.Out; o++ {
			g := dOut[o]
			if g == 0 {
				continue
			}
			row := weights[o*l.In : (o+1)*l.In]
			for i, v := range row {
				dIn[i] += g * v
			}
		}
	}
}
