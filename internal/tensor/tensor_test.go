package tensor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	ts := New(2, 3, 4)
	if ts.Len() != 24 {
		t.Fatalf("Len = %d, want 24", ts.Len())
	}
	for i, v := range ts.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
	if ts.Rank() != 3 || ts.Dim(1) != 3 {
		t.Fatalf("bad shape bookkeeping: %v", ts.Shape)
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	ts := New(2, 3, 4)
	ts.Set(7.5, 1, 2, 3)
	if got := ts.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := ts.Data[1*12+2*4+3]; got != 7.5 {
		t.Fatalf("row-major offset wrong: %v", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshapeSharesData(t *testing.T) {
	ts := New(2, 6)
	r := ts.Reshape(3, 4)
	r.Set(1, 0, 0)
	if ts.Data[0] != 1 {
		t.Fatal("Reshape must alias the same data")
	}
}

func TestReshapePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	New(2, 3).Reshape(4)
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestCloneIndependent(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone must copy data")
	}
	if !a.SameShape(b) {
		t.Fatal("Clone must preserve shape")
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	a.AddScaled(b, 0.5)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Fatalf("AddScaled = %v", a.Data)
	}
}

func TestArgmaxAndTopK(t *testing.T) {
	a := FromSlice([]float32{0.1, 5, -2, 3, 5.5}, 5)
	if a.Argmax() != 4 {
		t.Fatalf("Argmax = %d, want 4", a.Argmax())
	}
	top := a.TopK(3)
	want := []int{4, 1, 3}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", top, want)
		}
	}
	if got := a.TopK(10); len(got) != 5 {
		t.Fatalf("TopK over-length = %d entries", len(got))
	}
}

// TestTopKNaNAndTies pins the selection order contract: NaN sorts last
// (below −Inf), ties and NaN runs resolve by ascending index, and a partial
// selection never reorders equal elements.
func TestTopKNaNAndTies(t *testing.T) {
	nan := float32(math.NaN())
	ninf := float32(math.Inf(-1))

	a := FromSlice([]float32{nan, 2, nan, 5, 2, ninf}, 6)
	got := a.TopK(6)
	want := []int{3, 1, 4, 5, 0, 2} // 5, then the 2s by index, −Inf, NaNs by index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK full = %v, want %v", got, want)
		}
	}

	// Partial selection must keep NaN out while real values remain.
	got = a.TopK(4)
	want = []int{3, 1, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK(4) = %v, want %v", got, want)
		}
	}

	// All-NaN input: indices in ascending order.
	b := FromSlice([]float32{nan, nan, nan}, 3)
	got = b.TopK(2)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("all-NaN TopK = %v, want [0 1]", got)
	}

	if got := a.TopK(0); len(got) != 0 {
		t.Fatalf("TopK(0) = %v, want empty", got)
	}
}

// Property: the single-pass TopK agrees with a full sort-based selection.
func TestQuickTopKMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		data := make([]float32, n)
		for i := range data {
			switch rng.Intn(6) {
			case 0:
				data[i] = float32(math.NaN())
			case 1:
				data[i] = float32(rng.Intn(3)) // force ties
			default:
				data[i] = float32(rng.NormFloat64())
			}
		}
		k := rng.Intn(n + 1)
		got := FromSlice(data, n).TopK(k)
		ref := make([]int, n)
		for i := range ref {
			ref[i] = i
		}
		sort.SliceStable(ref, func(x, y int) bool {
			return topKOutranks(data[ref[x]], ref[x], data[ref[y]], ref[y])
		})
		for i := 0; i < k; i++ {
			if got[i] != ref[i] {
				t.Fatalf("trial %d (n=%d k=%d): TopK=%v want prefix of %v (data %v)",
					trial, n, k, got, ref, data)
			}
		}
	}
}

func TestCountNonZero(t *testing.T) {
	a := FromSlice([]float32{0, 1, 0, -2, 0.0001}, 5)
	if n := a.CountNonZero(); n != 3 {
		t.Fatalf("CountNonZero = %d, want 3", n)
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromSlice([]float32{1, -7, 3}, 3)
	if a.MaxAbs() != 7 {
		t.Fatalf("MaxAbs = %v, want 7", a.MaxAbs())
	}
}

func TestHeInitDeterministic(t *testing.T) {
	a, b := New(100), New(100)
	a.HeInit(rand.New(rand.NewSource(1)), 50)
	b.HeInit(rand.New(rand.NewSource(1)), 50)
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("HeInit must be deterministic for a fixed seed")
		}
	}
	if a.MaxAbs() == 0 {
		t.Fatal("HeInit produced all zeros")
	}
}

// Property: Dot is symmetric and AddScaled is linear in its scalar.
func TestQuickDotSymmetry(t *testing.T) {
	f := func(xs []float32) bool {
		if len(xs) == 0 {
			return true
		}
		a := FromSlice(append([]float32(nil), xs...), len(xs))
		b := a.Clone()
		for i := range b.Data {
			b.Data[i] = b.Data[i]*0.5 + 1
		}
		return a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantizeRoundTrip(t *testing.T) {
	data := []float32{-1.27, 0, 0.5, 1.27, 0.009}
	q := ChooseScale(data)
	if q.Scale != 1.27/127 {
		t.Fatalf("scale = %v", q.Scale)
	}
	back := Dequantize(Quantize(data, q), q)
	for i := range data {
		if e := math.Abs(float64(back[i] - data[i])); e > float64(q.Scale)/2+1e-7 {
			t.Fatalf("elem %d: %v -> %v (err %g)", i, data[i], back[i], e)
		}
	}
	// Saturation.
	sat := Quantize([]float32{10}, QuantParams{Scale: 0.01})
	if sat[0] != 127 {
		t.Fatalf("saturation failed: %d", sat[0])
	}
	if s := ChooseScale([]float32{0, 0}); s.Scale <= 0 {
		t.Fatal("zero data must still give a positive scale")
	}
}

func TestQuantConvMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	c := Conv2D{InC: 2, OutC: 3, F: 3, S: 1, P: 1}
	h, w := 8, 8
	in := randSlice(rng, c.InC*h*w)
	weights := randSlice(rng, c.OutC*c.InC*c.F*c.F)
	bias := randSlice(rng, c.OutC)
	oh, ow := c.OutDims(h, w)

	ref := make([]float32, c.OutC*oh*ow)
	c.Forward(in, h, w, weights, bias, ref, nil)

	qi := ChooseScale(in)
	qw := ChooseScale(weights)
	out := make([]float32, c.OutC*oh*ow)
	c.QuantForward(Quantize(in, qi), h, w, Quantize(weights, qw), qi.Scale, qw.Scale, bias, out)

	var maxRef float32
	for _, v := range ref {
		if a := float32(math.Abs(float64(v))); a > maxRef {
			maxRef = a
		}
	}
	for i := range ref {
		if e := math.Abs(float64(out[i] - ref[i])); e > 0.05*float64(maxRef) {
			t.Fatalf("quant conv off at %d: %v vs %v", i, out[i], ref[i])
		}
	}
}

func TestQuantLinearMatchesFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	l := Linear{In: 64, Out: 8}
	in := randSlice(rng, l.In)
	weights := randSlice(rng, l.In*l.Out)
	bias := randSlice(rng, l.Out)
	ref := make([]float32, l.Out)
	l.Forward(in, weights, bias, ref)

	qi, qw := ChooseScale(in), ChooseScale(weights)
	out := make([]float32, l.Out)
	l.QuantForward(Quantize(in, qi), Quantize(weights, qw), qi.Scale, qw.Scale, bias, out)
	for i := range ref {
		if e := math.Abs(float64(out[i] - ref[i])); e > 0.3 {
			t.Fatalf("quant linear off at %d: %v vs %v", i, out[i], ref[i])
		}
	}
}
