package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestOutDimArithmeticMatchesPaperTable4 pins the conv/pool output-size
// arithmetic against every row of paper Table 4 (AlexNet candidate layer
// configurations). The entire structure attack rests on this relation.
func TestOutDimArithmeticMatchesPaperTable4(t *testing.T) {
	rows := []struct {
		name                               string
		wIFM, wOFM, fc, sc, pc, fp, sp, pp int
		pooled                             bool
	}{
		{"CONV1_1", 227, 27, 11, 4, 1, 3, 2, 0, true},
		{"CONV1_2", 227, 27, 11, 4, 2, 4, 2, 0, true},
		{"CONV2_1", 27, 13, 5, 1, 2, 3, 2, 0, true},
		{"CONV2_2", 27, 26, 10, 1, 4, 0, 0, 0, false},
		{"CONV3_1", 13, 13, 3, 1, 1, 0, 0, 0, false},
		{"CONV3_2", 26, 13, 6, 2, 2, 0, 0, 0, false},
		{"CONV4", 13, 13, 3, 1, 1, 0, 0, 0, false},
		{"CONV5_1", 13, 6, 3, 1, 1, 3, 2, 0, true},
		{"CONV5_2", 13, 12, 6, 1, 2, 0, 0, 0, false},
		{"CONV5_3", 13, 3, 3, 2, 0, 2, 2, 0, true},
		{"CONV5_4", 13, 3, 3, 2, 0, 4, 1, 0, true},
		{"CONV5_5", 13, 3, 3, 2, 1, 3, 2, 0, true},
		{"CONV5_6", 13, 4, 2, 1, 0, 3, 3, 0, true},
	}
	for _, r := range rows {
		wc := ConvOutDim(r.wIFM, r.fc, r.sc, r.pc)
		got := wc
		if r.pooled {
			got = PoolOutDim(wc, r.fp, r.sp, r.pp)
		}
		if got != r.wOFM {
			t.Errorf("%s: W_OFM = %d (conv out %d), paper says %d", r.name, got, wc, r.wOFM)
		}
	}
}

func TestConvOutDimEdgeCases(t *testing.T) {
	if d := ConvOutDim(5, 7, 1, 0); d != 0 {
		t.Fatalf("kernel larger than input should give 0, got %d", d)
	}
	if d := ConvOutDim(5, 7, 1, 1); d != 1 {
		t.Fatalf("padding rescue: got %d, want 1", d)
	}
	if d := ConvOutDim(5, 3, 0, 0); d != 0 {
		t.Fatalf("zero stride should give 0, got %d", d)
	}
	if d := PoolOutDim(55, 3, 2, 0); d != 27 {
		t.Fatalf("ceil pool 55/3/2 = %d, want 27", d)
	}
	if d := ConvOutDim(55, 3, 2, 0); d != 27 {
		t.Fatalf("floor conv 55/3/2 = %d, want 27", d)
	}
	// Case where ceil and floor genuinely differ.
	if f, c := ConvOutDim(6, 2, 2, 0), PoolOutDim(6, 2, 2, 0); f != 3 || c != 3 {
		t.Fatalf("6/2/2: floor %d ceil %d", f, c)
	}
	if f, c := ConvOutDim(7, 2, 2, 0), PoolOutDim(7, 2, 2, 0); f != 3 || c != 4 {
		t.Fatalf("7/2/2: floor %d ceil %d, want 3 and 4", f, c)
	}
}

// naiveConv is a direct 7-loop reference convolution.
func naiveConv(c Conv2D, in []float32, h, w int, weights, bias []float32) []float32 {
	oh, ow := c.OutDims(h, w)
	out := make([]float32, c.OutC*oh*ow)
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.F; ky++ {
						iy := oy*c.S - c.P + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.F; kx++ {
							ix := ox*c.S - c.P + kx
							if ix < 0 || ix >= w {
								continue
							}
							wv := weights[((oc*c.InC+ic)*c.F+ky)*c.F+kx]
							s += wv * in[(ic*h+iy)*w+ix]
						}
					}
				}
				if bias != nil {
					s += bias[oc]
				}
				out[(oc*oh+oy)*ow+ox] = s
			}
		}
	}
	return out
}

func TestConvForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		c    Conv2D
		h, w int
	}{
		{Conv2D{InC: 1, OutC: 1, F: 1, S: 1, P: 0}, 3, 3},
		{Conv2D{InC: 3, OutC: 4, F: 3, S: 1, P: 1}, 7, 7},
		{Conv2D{InC: 2, OutC: 5, F: 5, S: 2, P: 2}, 11, 11},
		{Conv2D{InC: 3, OutC: 2, F: 11, S: 4, P: 0}, 23, 23},
		{Conv2D{InC: 4, OutC: 3, F: 2, S: 3, P: 1}, 9, 8},
	}
	for _, tc := range cases {
		in := randSlice(rng, tc.c.InC*tc.h*tc.w)
		weights := randSlice(rng, tc.c.OutC*tc.c.InC*tc.c.F*tc.c.F)
		bias := randSlice(rng, tc.c.OutC)
		oh, ow := tc.c.OutDims(tc.h, tc.w)
		out := make([]float32, tc.c.OutC*oh*ow)
		tc.c.Forward(in, tc.h, tc.w, weights, bias, out, nil)
		want := naiveConv(tc.c, in, tc.h, tc.w, weights, bias)
		if d := maxDiff(out, want); d > 1e-3 {
			t.Errorf("conv %+v on %dx%d: max diff %g", tc.c, tc.h, tc.w, d)
		}
	}
}

// TestIm2colCol2imAdjoint checks the defining adjoint property
// <im2col(x), y> == <x, col2im(y)> for random x, y, which is exactly what
// backprop correctness requires.
func TestIm2colCol2imAdjoint(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := Conv2D{InC: 2, OutC: 1, F: 3, S: 2, P: 1}
	h, w := 7, 6
	oh, ow := c.OutDims(h, w)
	k := c.InC * c.F * c.F
	x := randSlice(rng, c.InC*h*w)
	y := randSlice(rng, k*oh*ow)

	cols := make([]float32, k*oh*ow)
	c.Im2col(x, h, w, cols)
	var lhs float64
	for i := range cols {
		lhs += float64(cols[i]) * float64(y[i])
	}

	back := make([]float32, c.InC*h*w)
	c.Col2im(y, h, w, back)
	var rhs float64
	for i := range back {
		rhs += float64(back[i]) * float64(x[i])
	}
	if math.Abs(lhs-rhs) > 1e-3*(1+math.Abs(lhs)) {
		t.Fatalf("adjoint violated: %g vs %g", lhs, rhs)
	}
}

// TestConvBackwardNumerical verifies conv gradients against central finite
// differences on a small problem.
func TestConvBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := Conv2D{InC: 2, OutC: 3, F: 3, S: 2, P: 1}
	h, w := 6, 5
	oh, ow := c.OutDims(h, w)
	nw := c.OutC * c.InC * c.F * c.F
	in := randSlice(rng, c.InC*h*w)
	weights := randSlice(rng, nw)
	bias := randSlice(rng, c.OutC)
	dOut := randSlice(rng, c.OutC*oh*ow)

	// Scalar objective L = <out, dOut>; its gradients are what Backward returns.
	loss := func() float64 {
		out := make([]float32, c.OutC*oh*ow)
		c.Forward(in, h, w, weights, bias, out, nil)
		var s float64
		for i := range out {
			s += float64(out[i]) * float64(dOut[i])
		}
		return s
	}

	dW := make([]float32, nw)
	dB := make([]float32, c.OutC)
	dIn := make([]float32, c.InC*h*w)
	c.Backward(in, h, w, weights, dOut, dW, dB, dIn, nil, nil)

	const eps = 1e-2
	check := func(buf []float32, grad []float32, name string, samples int) {
		for s := 0; s < samples; s++ {
			i := rng.Intn(len(buf))
			orig := buf[i]
			buf[i] = orig + eps
			lp := loss()
			buf[i] = orig - eps
			lm := loss()
			buf[i] = orig
			num := (lp - lm) / (2 * eps)
			if math.Abs(num-float64(grad[i])) > 2e-2*(1+math.Abs(num)) {
				t.Errorf("%s[%d]: numeric %g, analytic %g", name, i, num, grad[i])
			}
		}
	}
	check(weights, dW, "dW", 12)
	check(bias, dB, "dB", 3)
	check(in, dIn, "dIn", 12)
}

// Property: convolution is linear in its input.
func TestQuickConvLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c := Conv2D{InC: 1, OutC: 2, F: 3, S: 1, P: 1}
	h, w := 5, 5
	oh, ow := c.OutDims(h, w)
	weights := randSlice(rng, c.OutC*c.F*c.F)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x1, x2 := randSlice(r, h*w), randSlice(r, h*w)
		sum := make([]float32, h*w)
		for i := range sum {
			sum[i] = x1[i] + x2[i]
		}
		o1 := make([]float32, c.OutC*oh*ow)
		o2 := make([]float32, c.OutC*oh*ow)
		os := make([]float32, c.OutC*oh*ow)
		c.Forward(x1, h, w, weights, nil, o1, nil)
		c.Forward(x2, h, w, weights, nil, o2, nil)
		c.Forward(sum, h, w, weights, nil, os, nil)
		for i := range os {
			if math.Abs(float64(os[i]-(o1[i]+o2[i]))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
