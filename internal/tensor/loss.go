package tensor

import "math"

// Softmax writes the softmax of logits into probs (may alias) using the
// max-subtraction trick for numeric stability.
func Softmax(logits, probs []float32) {
	maxV := float32(math.Inf(-1))
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range logits {
		e := math.Exp(float64(v - maxV))
		probs[i] = float32(e)
		sum += e
	}
	inv := float32(1 / sum)
	for i := range probs {
		probs[i] *= inv
	}
}

// SoftmaxCrossEntropy returns the cross-entropy loss of logits against the
// integer label and writes dLogits = softmax(logits) − onehot(label), the
// gradient of the loss with respect to the logits.
func SoftmaxCrossEntropy(logits []float32, label int, dLogits []float32) float64 {
	Softmax(logits, dLogits)
	p := float64(dLogits[label])
	if p < 1e-12 {
		p = 1e-12
	}
	loss := -math.Log(p)
	dLogits[label] -= 1
	return loss
}
