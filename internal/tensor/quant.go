package tensor

import "math"

// Symmetric per-tensor int8 quantization, the scheme inference accelerators
// commonly use: real ≈ int8 · Scale, accumulating in int32.

// QuantParams holds a symmetric quantization scale.
type QuantParams struct {
	Scale float32
}

// ChooseScale picks the symmetric scale covering data's max magnitude.
func ChooseScale(data []float32) QuantParams {
	var m float32
	for _, v := range data {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	if m == 0 {
		m = 1
	}
	return QuantParams{Scale: m / 127}
}

// Quantize converts data to int8 under q, with saturation.
func Quantize(data []float32, q QuantParams) []int8 {
	out := make([]int8, len(data))
	for i, v := range data {
		r := math.Round(float64(v / q.Scale))
		if r > 127 {
			r = 127
		}
		if r < -127 {
			r = -127
		}
		out[i] = int8(r)
	}
	return out
}

// Dequantize converts int8 values back to float32 under q.
func Dequantize(data []int8, q QuantParams) []float32 {
	out := make([]float32, len(data))
	for i, v := range data {
		out[i] = float32(v) * q.Scale
	}
	return out
}

// QuantConv2D computes an int8×int8 convolution with int32 accumulation,
// emitting float32 outputs out = accum·(inScale·wScale) + bias. Geometry
// follows the embedded Conv2D.
func (c Conv2D) QuantForward(in []int8, h, w int, weights []int8, inScale, wScale float32, bias []float32, out []float32) (oh, ow int) {
	oh, ow = c.OutDims(h, w)
	scale := inScale * wScale
	for oc := 0; oc < c.OutC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var acc int32
				for ic := 0; ic < c.InC; ic++ {
					for ky := 0; ky < c.F; ky++ {
						iy := oy*c.S - c.P + ky
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < c.F; kx++ {
							ix := ox*c.S - c.P + kx
							if ix < 0 || ix >= w {
								continue
							}
							wv := weights[((oc*c.InC+ic)*c.F+ky)*c.F+kx]
							acc += int32(wv) * int32(in[(ic*h+iy)*w+ix])
						}
					}
				}
				v := float32(acc) * scale
				if bias != nil {
					v += bias[oc]
				}
				out[(oc*oh+oy)*ow+ox] = v
			}
		}
	}
	return oh, ow
}

// QuantLinearForward computes an int8×int8 fully-connected layer with
// int32 accumulation and float32 outputs.
func (l Linear) QuantForward(in []int8, weights []int8, inScale, wScale float32, bias []float32, out []float32) {
	scale := inScale * wScale
	for o := 0; o < l.Out; o++ {
		row := weights[o*l.In : (o+1)*l.In]
		var acc int32
		for i, v := range in {
			acc += int32(row[i]) * int32(v)
		}
		s := float32(acc) * scale
		if bias != nil {
			s += bias[o]
		}
		out[o] = s
	}
}
