package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func TestMaxPoolKnownValues(t *testing.T) {
	// 1 channel, 4x4 input, 2x2 window stride 2.
	in := []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}
	p := Pool2D{F: 2, S: 2}
	out := make([]float32, 4)
	arg := make([]int, 4)
	oh, ow := p.MaxForward(in, 1, 4, 4, out, arg)
	if oh != 2 || ow != 2 {
		t.Fatalf("out dims %dx%d, want 2x2", oh, ow)
	}
	want := []float32{6, 8, 14, 16}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
	wantArg := []int{5, 7, 13, 15}
	for i := range wantArg {
		if arg[i] != wantArg[i] {
			t.Fatalf("argmax = %v, want %v", arg, wantArg)
		}
	}
}

func TestMaxPoolCeilModeClipsWindow(t *testing.T) {
	// 5x5 input, 2x2 stride 2, ceil mode: output 3x3 with clipped last column/row.
	in := make([]float32, 25)
	for i := range in {
		in[i] = float32(i)
	}
	p := Pool2D{F: 2, S: 2, Ceil: true}
	if d := p.OutDim(5); d != 3 {
		t.Fatalf("ceil OutDim(5) = %d, want 3", d)
	}
	out := make([]float32, 9)
	p.MaxForward(in, 1, 5, 5, out, nil)
	// Bottom-right output covers only element 24.
	if out[8] != 24 {
		t.Fatalf("clipped corner = %v, want 24", out[8])
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	in := []float32{1, 3, 2, 0}
	p := Pool2D{F: 2, S: 2}
	out := make([]float32, 1)
	arg := make([]int, 1)
	p.MaxForward(in, 1, 2, 2, out, arg)
	dIn := make([]float32, 4)
	p.MaxBackward([]float32{5}, arg, dIn)
	want := []float32{0, 5, 0, 0}
	for i := range want {
		if dIn[i] != want[i] {
			t.Fatalf("dIn = %v, want %v", dIn, want)
		}
	}
}

func TestAvgPoolFixedDivisor(t *testing.T) {
	// With padding, the divisor stays F² (padding counts as zeros), matching
	// the paper's Eq. (11).
	in := []float32{4}
	p := Pool2D{F: 2, S: 1, P: 1, Ceil: false}
	oh := p.OutDim(1)
	out := make([]float32, oh*oh)
	p.AvgForward(in, 1, 1, 1, out)
	// Every window sees the single pixel once: 4/4 = 1.
	for i, v := range out {
		if v != 1 {
			t.Fatalf("out[%d] = %v, want 1", i, v)
		}
	}
}

func TestAvgPoolBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	p := Pool2D{F: 3, S: 2, P: 1}
	c, h, w := 2, 6, 5
	oh, ow := p.OutDim(h), p.OutDim(w)
	in := randSlice(rng, c*h*w)
	dOut := randSlice(rng, c*oh*ow)
	loss := func() float64 {
		out := make([]float32, c*oh*ow)
		p.AvgForward(in, c, h, w, out)
		var s float64
		for i := range out {
			s += float64(out[i]) * float64(dOut[i])
		}
		return s
	}
	dIn := make([]float32, c*h*w)
	p.AvgBackward(dOut, c, h, w, dIn)
	const eps = 1e-2
	for s := 0; s < 10; s++ {
		i := rng.Intn(len(in))
		orig := in[i]
		in[i] = orig + eps
		lp := loss()
		in[i] = orig - eps
		lm := loss()
		in[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-float64(dIn[i])) > 2e-2*(1+math.Abs(num)) {
			t.Fatalf("dIn[%d]: numeric %g, analytic %g", i, num, dIn[i])
		}
	}
}

func TestGlobalAvg(t *testing.T) {
	in := []float32{1, 2, 3, 4, 10, 10, 10, 10}
	out := make([]float32, 2)
	GlobalAvgForward(in, 2, 2, 2, out)
	if out[0] != 2.5 || out[1] != 10 {
		t.Fatalf("global avg = %v", out)
	}
	dIn := make([]float32, 8)
	GlobalAvgBackward([]float32{4, 8}, 2, 2, 2, dIn)
	if dIn[0] != 1 || dIn[7] != 2 {
		t.Fatalf("global avg backward = %v", dIn)
	}
}

func TestReLU(t *testing.T) {
	in := []float32{-1, 0, 2.5, -0.001}
	out := make([]float32, 4)
	ReLUForward(in, out)
	want := []float32{0, 0, 2.5, 0}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("relu = %v, want %v", out, want)
		}
	}
	dIn := make([]float32, 4)
	ReLUBackward(out, []float32{1, 1, 1, 1}, dIn)
	if dIn[0] != 0 || dIn[2] != 1 {
		t.Fatalf("relu backward = %v", dIn)
	}
}

func TestThresholdReLU(t *testing.T) {
	in := []float32{0.05, 0.2, -1}
	out := make([]float32, 3)
	ThresholdReLUForward(in, out, 0.1)
	if out[0] != 0 || out[1] != 0.2 || out[2] != 0 {
		t.Fatalf("threshold relu = %v", out)
	}
	// Threshold zero degenerates to plain ReLU.
	ThresholdReLUForward(in, out, 0)
	if out[0] != 0.05 {
		t.Fatalf("zero-threshold relu = %v", out)
	}
}

func TestLinearForwardBackward(t *testing.T) {
	l := Linear{In: 3, Out: 2}
	weights := []float32{1, 2, 3, 4, 5, 6}
	bias := []float32{0.5, -0.5}
	in := []float32{1, 0, -1}
	out := make([]float32, 2)
	l.Forward(in, weights, bias, out)
	if out[0] != 1-3+0.5 || out[1] != 4-6-0.5 {
		t.Fatalf("linear forward = %v", out)
	}

	dOut := []float32{1, 2}
	dW := make([]float32, 6)
	dB := make([]float32, 2)
	dIn := make([]float32, 3)
	l.Backward(in, weights, dOut, dW, dB, dIn)
	// dW[o][i] = dOut[o]*in[i]
	wantDW := []float32{1, 0, -1, 2, 0, -2}
	for i := range wantDW {
		if dW[i] != wantDW[i] {
			t.Fatalf("dW = %v, want %v", dW, wantDW)
		}
	}
	if dB[0] != 1 || dB[1] != 2 {
		t.Fatalf("dB = %v", dB)
	}
	// dIn[i] = sum_o dOut[o]*W[o][i]
	wantDIn := []float32{1 + 8, 2 + 10, 3 + 12}
	for i := range wantDIn {
		if dIn[i] != wantDIn[i] {
			t.Fatalf("dIn = %v, want %v", dIn, wantDIn)
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := []float32{1, 2, 3}
	probs := make([]float32, 3)
	Softmax(logits, probs)
	var sum float32
	for _, p := range probs {
		if p <= 0 || p >= 1 {
			t.Fatalf("prob out of range: %v", probs)
		}
		sum += p
	}
	if math.Abs(float64(sum-1)) > 1e-5 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if !(probs[2] > probs[1] && probs[1] > probs[0]) {
		t.Fatalf("softmax not monotone: %v", probs)
	}

	dLogits := make([]float32, 3)
	loss := SoftmaxCrossEntropy(logits, 2, dLogits)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	// Gradient sums to zero and is negative only at the label.
	var gsum float64
	for i, g := range dLogits {
		gsum += float64(g)
		if i == 2 && g >= 0 {
			t.Fatalf("label gradient should be negative: %v", dLogits)
		}
		if i != 2 && g <= 0 {
			t.Fatalf("non-label gradient should be positive: %v", dLogits)
		}
	}
	if math.Abs(gsum) > 1e-5 {
		t.Fatalf("gradient sum = %v", gsum)
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	logits := []float32{1000, 1001, 999}
	probs := make([]float32, 3)
	Softmax(logits, probs)
	for _, p := range probs {
		if math.IsNaN(float64(p)) || math.IsInf(float64(p), 0) {
			t.Fatalf("softmax overflow: %v", probs)
		}
	}
}
