package tensor

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelCoversEveryIndexOnce(t *testing.T) {
	p := newWorkerPool(4)
	for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
		counts := make([]int32, n)
		p.parallel(n, funcRunner(func(i int) {
			atomic.AddInt32(&counts[i], 1)
		}))
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d executed %d times", n, i, c)
			}
		}
	}
}

func TestParallelNestedDoesNotDeadlock(t *testing.T) {
	p := newWorkerPool(4)
	var total atomic.Int64
	p.parallel(8, funcRunner(func(i int) {
		p.parallel(8, funcRunner(func(j int) {
			total.Add(1)
		}))
	}))
	if got := total.Load(); got != 64 {
		t.Fatalf("nested parallel ran %d inner iterations, want 64", got)
	}
}

func TestParallelConcurrentCallers(t *testing.T) {
	p := newWorkerPool(3)
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 5; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.parallel(100, funcRunner(func(i int) { total.Add(1) }))
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 500 {
		t.Fatalf("concurrent callers ran %d iterations, want 500", got)
	}
}

func TestParallelSingleWorkerRunsInline(t *testing.T) {
	p := newWorkerPool(1)
	order := make([]int, 0, 5)
	p.parallel(5, funcRunner(func(i int) { order = append(order, i) }))
	for i, v := range order {
		if v != i {
			t.Fatalf("single-worker pool must run in order, got %v", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d iterations, want 5", len(order))
	}
}

func TestParallelBoundsConcurrency(t *testing.T) {
	const size = 4
	p := newWorkerPool(size)
	var running, peak atomic.Int64
	p.parallel(64, funcRunner(func(i int) {
		cur := running.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		// Nested region: must not raise concurrency past the pool size.
		p.parallel(4, funcRunner(func(j int) {}))
		running.Add(-1)
	}))
	if peak.Load() > size {
		t.Fatalf("peak concurrency %d exceeds pool size %d", peak.Load(), size)
	}
}

func TestSharedPoolWorkers(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d, want >= 1", Workers())
	}
	var total atomic.Int64
	Parallel(10, func(i int) { total.Add(1) })
	if total.Load() != 10 {
		t.Fatalf("shared Parallel ran %d iterations, want 10", total.Load())
	}
}
