package core

import (
	"math"
	"math/rand"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

func TestStructureAttackLeNetEndToEnd(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	rep, err := RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Structures) == 0 {
		t.Fatal("no structures recovered")
	}
	if rep.TruthIndex < 0 {
		t.Fatal("true structure not among candidates")
	}
	if len(rep.PerLayer) != 4 {
		t.Fatalf("per-layer map has %d entries, want 4", len(rep.PerLayer))
	}
}

func TestMaterializeReproducesVictimShapes(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	rep, err := RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cand, err := Materialize(rep.Analysis, &rep.Structures[rep.TruthIndex], net.Input, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cand.Output() != net.Output() {
		t.Fatalf("candidate output %v, victim %v", cand.Output(), net.Output())
	}
	// Per-layer shapes must match the victim exactly for the true candidate.
	wi := 0
	for i := range net.Specs {
		if net.Params[i] == nil {
			continue
		}
		for wi < len(cand.Specs) && cand.Params[wi] == nil {
			wi++
		}
		if cand.Shapes[wi] != net.Shapes[i] {
			t.Fatalf("layer %d: candidate %v, victim %v", i, cand.Shapes[wi], net.Shapes[i])
		}
		wi++
	}
}

func TestMaterializeSqueezeNetDAG(t *testing.T) {
	// Attack the full-size victim (tiny depth-scaled victims are
	// overhead-dominated, breaking the cycles∝MACs assumption the timing
	// filter relies on), then materialize a depth-scaled candidate.
	net := nn.SqueezeNet(1000, 1)
	net.InitWeights(3)
	opt := structrev.DefaultOptions()
	opt.IdenticalModules = true
	rep, err := RunStructureAttack(net, accel.Config{}, opt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TruthIndex < 0 {
		t.Fatalf("truth not found among %d candidates", len(rep.Structures))
	}
	cand, err := Materialize(rep.Analysis, &rep.Structures[rep.TruthIndex], net.Input, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt DAG must run and produce classifier-shaped output.
	cand.InitWeights(5)
	x := make([]float32, cand.Input.Len())
	rng := rand.New(rand.NewSource(6))
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	out := cand.Infer(x)
	if len(out) != 10 {
		t.Fatalf("candidate output size %d", len(out))
	}
	// It must contain eltwise (bypass) and concat (fire) nodes.
	var elt, cat int
	for i := range cand.Specs {
		switch cand.Specs[i].Kind {
		case nn.KindEltwise:
			elt++
		case nn.KindConcat:
			cat++
		}
	}
	if elt != 3 || cat == 0 {
		t.Fatalf("rebuilt DAG has %d eltwise and %d concat nodes", elt, cat)
	}
}

func TestRankCandidatesOrdersByAccuracy(t *testing.T) {
	net := nn.LeNet(3)
	net.InitWeights(1)
	rep, err := RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	scores := RankCandidates(rep, net.Input, RankConfig{
		Classes: 3, PerClass: 12, Epochs: 3, DepthDiv: 1, Seed: 7, MaxCandidates: 5,
	})
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	for i := 1; i < len(scores); i++ {
		a, b := scores[i-1].Accuracy, scores[i].Accuracy
		if !math.IsNaN(a) && !math.IsNaN(b) && a < b {
			t.Fatal("scores not sorted descending")
		}
	}
	// All candidates should train (valid geometries).
	for _, s := range scores {
		if s.Err != nil {
			t.Fatalf("candidate %d failed to materialize: %v", s.Index, s.Err)
		}
	}
}

func TestRunWeightAttackAccuracy(t *testing.T) {
	// A small pruned conv layer: 8 filters of 5×5×2 with 25% zeros.
	spec := nn.LayerSpec{Name: "conv1", Kind: nn.KindConv, OutC: 8, F: 5, S: 2, ReLU: true}
	net, err := nn.New("victim", nn.Shape{C: 2, H: 24, W: 24}, []nn.LayerSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for i := range net.Params[0].W.Data {
		if rng.Float64() < 0.25 {
			net.Params[0].W.Data[i] = 0
		} else {
			m := 0.05 + 0.3*rng.Float64()
			if rng.Intn(2) == 0 {
				m = -m
			}
			net.Params[0].W.Data[i] = float32(m)
		}
	}
	for i := range net.Params[0].B.Data {
		net.Params[0].B.Data[i] = float32(0.04 + 0.05*rng.Float64())
	}
	rep, err := RunWeightAttack(net, accel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRatioErr > math.Pow(2, -10) {
		t.Fatalf("max ratio error %g exceeds 2^-10", rep.MaxRatioErr)
	}
	if rep.ZeroErrors != 0 {
		t.Fatalf("%d zero/non-zero misclassifications", rep.ZeroErrors)
	}
	if rep.ZerosDetected != rep.ZerosActual {
		t.Fatalf("detected %d of %d zero weights", rep.ZerosDetected, rep.ZerosActual)
	}
	if rep.Queries == 0 {
		t.Fatal("no queries recorded")
	}
}

func TestRankCandidatesCapsAndSurvivesErrors(t *testing.T) {
	net := nn.LeNet(3)
	net.InitWeights(1)
	rep, err := RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	scores := RankCandidates(rep, net.Input, RankConfig{
		Classes: 2, PerClass: 4, Epochs: 1, DepthDiv: 1, Seed: 3, MaxCandidates: 2,
	})
	if len(scores) != 2 {
		t.Fatalf("cap ignored: %d scores", len(scores))
	}
}

func TestGroundTruthConfigsShapes(t *testing.T) {
	net := nn.AlexNet(1000, 16)
	truth := GroundTruthConfigs(net)
	if len(truth) != 8 {
		t.Fatalf("%d configs", len(truth))
	}
	if !truth[5].FC || truth[5].WIFM != 6 {
		t.Fatalf("fc6 config: %+v", truth[5])
	}
	if truth[0].F != 11 || !truth[0].HasPool {
		t.Fatalf("conv1 config: %+v", truth[0])
	}
}
