package core

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"cnnrev/internal/dataset"
	"cnnrev/internal/nn"
	"cnnrev/internal/tensor"
)

// RankConfig parameterizes candidate ranking (Figures 4 and 5).
type RankConfig struct {
	Classes   int
	PerClass  int // training samples per class (plus PerClass/3 test)
	Epochs    int
	DepthDiv  int
	TopK      int // accuracy metric: top-K
	Seed      int64
	LR        float32
	BatchSize int
	// MaxCandidates caps how many structures are trained (0 = all). When the
	// cap truncates the candidate list, the trained scores are a
	// deterministic prefix (candidate-index order) of the full ranking and
	// RankResult.Skipped records how many candidates were never trained —
	// the same truncated-prefix contract ErrTooManyStructures gives the
	// solver stage.
	MaxCandidates int
	// Serial forces the candidates to be trained one after another on the
	// calling goroutine — the reference schedule the determinism regression
	// tests compare the default parallel ranking against.
	Serial bool

	// Halving replaces the flat train-everyone-to-completion loop with a
	// successive-halving tournament: every candidate trains for a small
	// initial budget (MinEpochs), the top 1/Eta fraction by validation
	// accuracy survives, the per-candidate budget multiplies by Eta, and the
	// cycle repeats — survivors resuming from their existing trainer state —
	// until the budget reaches Epochs. The zero value (and Eta <= 1, and
	// MinEpochs >= Epochs) selects the flat path, so existing callers and
	// golden tests are untouched.
	Halving bool
	// Eta is the tournament elimination factor (default 2). Eta <= 1
	// degenerates to the flat schedule: one rung at the full epoch budget.
	Eta int
	// MinEpochs is the first-rung per-candidate epoch budget (default 1).
	MinEpochs int

	// Runner, when non-nil (and Serial is unset), schedules each rung's
	// independent candidate trainings instead of tensor.Parallel — the hook
	// revcnnd uses to fan a rung out across its idle serve workers. The
	// determinism contract requires only that Runner invoke fn exactly once
	// for every i in [0,n), in any order, and return after all calls finish;
	// candidate state isolation makes the result schedule-independent.
	Runner func(n int, fn func(i int))
}

// CandidateScore is one ranked candidate structure.
type CandidateScore struct {
	Index    int
	Accuracy float64
	IsTruth  bool
	Err      error
	// Epochs counts the training epochs this candidate actually received.
	// Under the flat schedule every scored candidate gets RankConfig.Epochs;
	// under successive halving only the final rung's survivors reach the
	// full budget and earlier-eliminated candidates record the rung budget
	// they were cut at.
	Epochs int
}

// RungStat records one rung of a successive-halving tournament (the flat
// schedule is a single rung at the full budget).
type RungStat struct {
	// TargetEpochs is the cumulative per-candidate epoch budget at this rung.
	TargetEpochs int
	// Candidates is how many candidates trained in this rung.
	Candidates int
	// Epochs is the number of epoch-trainings actually executed in this rung
	// (survivors resume, so a rung only pays the budget delta).
	Epochs int
	// Eliminated is how many candidates were cut at this rung's boundary.
	Eliminated int
}

// RankResult is the full outcome of a candidate ranking: the sorted scores
// plus the tournament accounting the serve layer exposes as metrics and the
// perf harness benchmarks.
type RankResult struct {
	// Scores is sorted best-first: NaN (failed/cancelled) candidates last,
	// then by Epochs descending (final-rung survivors before earlier
	// eliminations), then by accuracy descending, ties in candidate-index
	// order. The top-1 is therefore always a candidate that reached the full
	// epoch budget.
	Scores []CandidateScore
	// Skipped counts candidates beyond MaxCandidates that were never
	// trained; the trained scores are a deterministic prefix (by candidate
	// index) of the uncapped ranking's training set.
	Skipped int
	// TotalEpochs is the number of epoch-trainings executed across all
	// candidates and rungs — the quantity successive halving minimizes.
	TotalEpochs int
	// Rungs is the executed tournament schedule, one entry per rung.
	Rungs []RungStat
	// Halving reports whether the tournament path ran (false for the flat
	// schedule, including the Eta <= 1 and MinEpochs >= Epochs degenerations).
	Halving bool
}

// candState is one candidate's resumable training state: the materialized
// network, its trainer (momentum velocities and gradient buffers), and the
// private epoch-shuffle RNG. Holding these across rungs is what lets a
// survivor continue where it stopped instead of retraining from scratch —
// and what keeps the tournament bit-identical to the flat schedule when no
// elimination happens: the epoch/RNG stream is exactly the flat one, merely
// interleaved with extra read-only accuracy evaluations.
type candState struct {
	net    *nn.Network
	tr     *nn.Trainer
	rng    *rand.Rand
	epochs int
}

// RankCandidates short-trains every recovered candidate on a synthetic
// dataset and ranks them by validation accuracy — the paper's method for
// picking the final structure (its Figures 4 and 5). The input resolution
// and channel count follow the victim; depth scaling substitutes for the
// paper's full-scale ImageNet training (see DESIGN.md §2).
func RankCandidates(rep *StructureReport, input nn.Shape, rc RankConfig) []CandidateScore {
	return RankCandidatesCtx(context.Background(), rep, input, rc)
}

// RankCandidatesCtx is RankCandidates with cooperative cancellation at
// candidate and epoch granularity: a cancelled ranking abandons untrained
// candidates (and unfinished epochs) and marks their scores with ctx's
// error and a NaN accuracy, which sorts them after every real score. The
// per-candidate RNG and shard-state isolation means a cancelled run leaves
// no residue — a subsequent rank over the same report is bit-identical to
// one that was never preceded by a cancellation.
func RankCandidatesCtx(ctx context.Context, rep *StructureReport, input nn.Shape, rc RankConfig) []CandidateScore {
	return RankCandidatesResult(ctx, rep, input, rc).Scores
}

// RankCandidatesResult is RankCandidatesCtx returning the full RankResult:
// scores plus skip/rung/epoch accounting. When rc.Halving is set it runs
// the successive-halving tournament; otherwise the flat schedule (a single
// rung at the full budget).
//
// Determinism contract, either schedule: candidate weights are seeded per
// candidate (Seed+i), each candidate owns a private epoch-shuffle RNG, and
// trainer shard partitioning is fixed, so concurrent training on the shared
// worker pool reorders nothing observable — the result is bit-identical to
// the Serial reference for a fixed seed. Rung elimination sorts a snapshot
// of per-candidate accuracies (NaN last, ties by candidate index), which is
// equally schedule-independent, so the whole tournament is too.
func RankCandidatesResult(ctx context.Context, rep *StructureReport, input nn.Shape, rc RankConfig) *RankResult {
	if rc.Classes == 0 {
		rc.Classes = 4
	}
	if rc.PerClass == 0 {
		rc.PerClass = 12
	}
	if rc.Epochs == 0 {
		rc.Epochs = 3
	}
	if rc.DepthDiv == 0 {
		rc.DepthDiv = 16
	}
	if rc.TopK == 0 {
		rc.TopK = 1
	}
	if rc.LR == 0 {
		rc.LR = 0.1
	}
	if rc.BatchSize == 0 {
		rc.BatchSize = 8
	}
	if rc.Eta == 0 {
		rc.Eta = 2
	}
	if rc.MinEpochs == 0 {
		rc.MinEpochs = 1
	}
	testPer := rc.PerClass/3 + 1
	ds := dataset.Synthetic(rc.Classes, rc.PerClass+testPer, input.C, input.H, input.W, rc.Seed+100)
	train, test := ds.Split(rc.Classes * rc.PerClass)

	n := len(rep.Structures)
	res := &RankResult{}
	if rc.MaxCandidates > 0 && n > rc.MaxCandidates {
		res.Skipped = n - rc.MaxCandidates
		n = rc.MaxCandidates
	}
	halving := rc.Halving && rc.Eta > 1 && rc.MinEpochs < rc.Epochs
	res.Halving = halving

	scores := make([]CandidateScore, n)
	states := make([]*candState, n)
	for i := range scores {
		scores[i] = CandidateScore{Index: i, IsTruth: i == rep.TruthIndex}
	}

	// trainOne brings candidate i up to the cumulative epoch budget and
	// re-evaluates its validation accuracy. release drops the resumable
	// state afterwards (final rung: nothing left to resume), restoring the
	// flat path's transient-memory behavior.
	trainOne := func(i, target int, release bool) {
		sc := &scores[i]
		if sc.Err != nil {
			return // failed to materialize or already cancelled
		}
		if err := ctx.Err(); err != nil {
			sc.Err = err
			sc.Accuracy = math.NaN()
			return
		}
		st := states[i]
		if st == nil {
			net, err := Materialize(rep.Analysis, &rep.Structures[i], input, rc.Classes, rc.DepthDiv)
			if err != nil {
				sc.Err = err
				sc.Accuracy = math.NaN()
				return
			}
			net.InitWeights(rc.Seed + int64(i))
			tr := nn.NewTrainer(net)
			tr.LR = rc.LR
			tr.BatchSize = rc.BatchSize
			tr.ClipNorm = 1.0 // deep candidates at aggressive rates need clipping
			st = &candState{net: net, tr: tr, rng: rand.New(rand.NewSource(rc.Seed + 7))}
			states[i] = st
		}
		for st.epochs < target {
			if err := ctx.Err(); err != nil {
				sc.Err = err
				sc.Accuracy = math.NaN()
				return
			}
			st.tr.Epoch(train.X, train.Y, st.rng)
			st.epochs++
			sc.Epochs = st.epochs
		}
		sc.Accuracy = nn.Accuracy(st.net, test.X, test.Y, rc.TopK)
		if release {
			states[i] = nil
		}
	}

	survivors := make([]int, n)
	for i := range survivors {
		survivors[i] = i
	}
	budget := rc.Epochs
	if halving {
		budget = rc.MinEpochs
	}
	for len(survivors) > 0 {
		final := budget >= rc.Epochs
		prev := make([]int, len(survivors))
		for si, i := range survivors {
			prev[si] = scores[i].Epochs
		}
		if rc.Serial {
			for _, i := range survivors {
				trainOne(i, budget, final)
			}
		} else {
			// Candidates within a rung are fully independent; one task per
			// candidate on the shared worker pool (nested GEMM/trainer
			// parallelism finds the pool busy and runs inline), or on the
			// caller's Runner when it wants to schedule the fan-out itself.
			surv := survivors
			run := tensor.Parallel
			if rc.Runner != nil {
				run = rc.Runner
			}
			run(len(surv), func(si int) { trainOne(surv[si], budget, final) })
		}
		rs := RungStat{TargetEpochs: budget, Candidates: len(survivors)}
		for si, i := range survivors {
			rs.Epochs += scores[i].Epochs - prev[si]
		}
		res.TotalEpochs += rs.Epochs
		if final {
			res.Rungs = append(res.Rungs, rs)
			break
		}
		// Rung boundary: keep the top ceil(k/Eta) by this rung's validation
		// accuracy. The ordering is the final sort's within-rung rule (NaN
		// last, ties by candidate index), so failed/cancelled candidates
		// are never carried into the next rung — they are eliminated at the
		// first boundary they reach, exactly like the flat ranker's NaN-last
		// ordering puts them behind every real score.
		order := append([]int(nil), survivors...)
		sort.SliceStable(order, func(a, b int) bool {
			ai, aj := scores[order[a]].Accuracy, scores[order[b]].Accuracy
			if math.IsNaN(aj) {
				return !math.IsNaN(ai)
			}
			if math.IsNaN(ai) {
				return false
			}
			return ai > aj
		})
		keep := (len(order) + rc.Eta - 1) / rc.Eta
		for keep > 0 && math.IsNaN(scores[order[keep-1]].Accuracy) {
			keep--
		}
		rs.Eliminated = len(order) - keep
		res.Rungs = append(res.Rungs, rs)
		for _, i := range order[keep:] {
			states[i] = nil // eliminated: free the resumable state
		}
		// Train the next rung in candidate-index order (clearer serial
		// reference; scheduling is unobservable either way).
		survivors = order[:keep]
		sort.Ints(survivors)
		if len(survivors) == 1 {
			// A decided tournament still owes the winner the full budget:
			// the returned top-1 accuracy is always a full-budget accuracy.
			budget = rc.Epochs
		} else {
			budget *= rc.Eta
			if budget > rc.Epochs {
				budget = rc.Epochs
			}
		}
	}

	// Stable sort so candidates with equal accuracies — and the NaN block of
	// cancelled/failed candidates — keep index order, making the output
	// well-defined even when a deadline strikes mid-rank. Epochs ranks
	// before accuracy so a tournament's top-1 is always a final-rung
	// survivor: an eliminated candidate's few-epoch accuracy is not
	// comparable to a full-budget one. Under the flat schedule every scored
	// candidate has equal Epochs and this is the plain accuracy order.
	sort.SliceStable(scores, func(i, j int) bool {
		ai, aj := scores[i].Accuracy, scores[j].Accuracy
		if math.IsNaN(aj) {
			return !math.IsNaN(ai)
		}
		if math.IsNaN(ai) {
			return false
		}
		if scores[i].Epochs != scores[j].Epochs {
			return scores[i].Epochs > scores[j].Epochs
		}
		return ai > aj
	})
	res.Scores = scores
	return res
}
