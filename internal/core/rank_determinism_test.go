package core

import (
	"math"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

// TestRankCandidatesParallelBitIdenticalToSerial is the determinism
// regression for the parallel ranking schedule: concurrent candidate
// training must produce the exact CandidateScore sequence — same order,
// bit-identical accuracies — as the serial reference, because every
// candidate's RNG state (weight init Seed+i, private epoch shuffler) and
// trainer shard partitioning are independent of scheduling.
func TestRankCandidatesParallelBitIdenticalToSerial(t *testing.T) {
	victims := []*nn.Network{nn.LeNet(3), nn.ConvNet(3)}
	for _, net := range victims {
		net.InitWeights(1)
		rep, err := RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
		if err != nil {
			t.Fatal(err)
		}
		rc := RankConfig{Classes: 3, PerClass: 9, Epochs: 2, DepthDiv: 1, Seed: 11, MaxCandidates: 6}
		par := RankCandidates(rep, net.Input, rc)
		rc.Serial = true
		ser := RankCandidates(rep, net.Input, rc)
		if len(par) != len(ser) {
			t.Fatalf("%s: parallel ranked %d candidates, serial %d", net.Name, len(par), len(ser))
		}
		if len(par) < 2 {
			t.Fatalf("%s: want at least 2 candidates to make the comparison meaningful, got %d", net.Name, len(par))
		}
		for i := range ser {
			p, s := par[i], ser[i]
			if p.Index != s.Index || p.IsTruth != s.IsTruth {
				t.Fatalf("%s: rank %d is candidate %d (truth=%v) parallel vs %d (truth=%v) serial",
					net.Name, i, p.Index, p.IsTruth, s.Index, s.IsTruth)
			}
			if math.Float64bits(p.Accuracy) != math.Float64bits(s.Accuracy) {
				t.Fatalf("%s: rank %d accuracy %v parallel vs %v serial (not bit-identical)",
					net.Name, i, p.Accuracy, s.Accuracy)
			}
			if (p.Err == nil) != (s.Err == nil) {
				t.Fatalf("%s: rank %d error mismatch: %v vs %v", net.Name, i, p.Err, s.Err)
			}
		}
	}
}
