package core

import (
	"context"
	"math"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

// lenetReport builds the shared LeNet report the halving tests rank.
func lenetReport(t *testing.T) (*StructureReport, *nn.Network) {
	t.Helper()
	net := nn.LeNet(3)
	net.InitWeights(1)
	rep, err := RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	return rep, net
}

// TestRankHalvingDegeneratesToFlat is the satellite property test: a
// tournament with Eta=1, or with MinEpochs >= Epochs, performs no
// elimination and must be bit-identical to the flat ranker — same order,
// bit-identical accuracies, same per-candidate epochs. This is the
// guarantee that lets the knobs default to the flat path without risking
// the golden rankings.
func TestRankHalvingDegeneratesToFlat(t *testing.T) {
	rep, net := lenetReport(t)
	base := RankConfig{Classes: 3, PerClass: 9, Epochs: 3, DepthDiv: 1, Seed: 11, MaxCandidates: 6}
	flat := RankCandidatesResult(context.Background(), rep, net.Input, base)
	if flat.Halving {
		t.Fatal("flat config reported Halving")
	}
	if len(flat.Scores) < 2 {
		t.Fatalf("want at least 2 candidates, got %d", len(flat.Scores))
	}

	cases := []struct {
		name string
		rc   RankConfig
	}{
		{"eta1", func() RankConfig { rc := base; rc.Halving = true; rc.Eta = 1; return rc }()},
		{"minEpochs=epochs", func() RankConfig { rc := base; rc.Halving = true; rc.Eta = 2; rc.MinEpochs = base.Epochs; return rc }()},
		{"minEpochs>epochs", func() RankConfig { rc := base; rc.Halving = true; rc.Eta = 3; rc.MinEpochs = base.Epochs + 5; return rc }()},
	}
	for _, tc := range cases {
		got := RankCandidatesResult(context.Background(), rep, net.Input, tc.rc)
		if got.Halving {
			t.Fatalf("%s: degenerate tournament reported Halving", tc.name)
		}
		if len(got.Rungs) != 1 || got.Rungs[0].TargetEpochs != base.Epochs {
			t.Fatalf("%s: rungs %+v, want a single full-budget rung", tc.name, got.Rungs)
		}
		if got.TotalEpochs != flat.TotalEpochs {
			t.Fatalf("%s: total epochs %d vs flat %d", tc.name, got.TotalEpochs, flat.TotalEpochs)
		}
		sameScores(t, tc.name+" vs flat", got.Scores, flat.Scores)
		for i := range got.Scores {
			if got.Scores[i].Epochs != flat.Scores[i].Epochs {
				t.Fatalf("%s: rank %d epochs %d vs flat %d", tc.name, i, got.Scores[i].Epochs, flat.Scores[i].Epochs)
			}
		}
	}
}

// TestRankHalvingParallelBitIdenticalToSerial extends the determinism
// regression to the tournament: per-candidate RNGs, fixed shard
// partitioning, and snapshot-based rung elimination make the halving
// schedule bit-identical between the shared-pool parallel execution and the
// serial reference.
func TestRankHalvingParallelBitIdenticalToSerial(t *testing.T) {
	rep, net := lenetReport(t)
	rc := RankConfig{
		Classes: 3, PerClass: 9, Epochs: 4, DepthDiv: 1, Seed: 11, MaxCandidates: 8,
		Halving: true, Eta: 2, MinEpochs: 1,
	}
	par := RankCandidatesResult(context.Background(), rep, net.Input, rc)
	rc.Serial = true
	ser := RankCandidatesResult(context.Background(), rep, net.Input, rc)
	if !par.Halving || !ser.Halving {
		t.Fatalf("halving not active: parallel %v serial %v", par.Halving, ser.Halving)
	}
	sameScores(t, "parallel tournament vs serial reference", par.Scores, ser.Scores)
	for i := range ser.Scores {
		if par.Scores[i].Epochs != ser.Scores[i].Epochs {
			t.Fatalf("rank %d epochs %d parallel vs %d serial", i, par.Scores[i].Epochs, ser.Scores[i].Epochs)
		}
	}
	if par.TotalEpochs != ser.TotalEpochs || len(par.Rungs) != len(ser.Rungs) {
		t.Fatalf("tournament accounting differs: %+v vs %+v", par, ser)
	}
	for r := range ser.Rungs {
		if par.Rungs[r] != ser.Rungs[r] {
			t.Fatalf("rung %d: %+v parallel vs %+v serial", r, par.Rungs[r], ser.Rungs[r])
		}
	}
}

// TestRankHalvingScheduleAndCounters pins the tournament mechanics: rung
// budgets multiply by Eta up to the full budget, survivor counts shrink by
// ~1/Eta per rung, the total epoch work is strictly below the flat
// schedule's, and the winner always carries a full-budget accuracy.
func TestRankHalvingScheduleAndCounters(t *testing.T) {
	rep, net := lenetReport(t)
	rc := RankConfig{
		Classes: 3, PerClass: 9, Epochs: 8, DepthDiv: 1, Seed: 11, MaxCandidates: 8,
		Halving: true, Eta: 2, MinEpochs: 1,
	}
	res := RankCandidatesResult(context.Background(), rep, net.Input, rc)
	if !res.Halving {
		t.Fatal("halving not active")
	}
	n := res.Rungs[0].Candidates
	if n < 4 {
		t.Fatalf("want >= 4 candidates in rung 0, got %d", n)
	}
	flatEpochs := n * rc.Epochs
	if res.TotalEpochs >= flatEpochs {
		t.Fatalf("tournament spent %d epochs, flat would be %d", res.TotalEpochs, flatEpochs)
	}
	wantBudget := rc.MinEpochs
	prevCands := n
	for r, rung := range res.Rungs {
		if rung.TargetEpochs != wantBudget {
			t.Fatalf("rung %d budget %d, want %d", r, rung.TargetEpochs, wantBudget)
		}
		if rung.Candidates > prevCands {
			t.Fatalf("rung %d grew: %d candidates after %d", r, rung.Candidates, prevCands)
		}
		prevCands = rung.Candidates - rung.Eliminated
		if r < len(res.Rungs)-1 {
			keep := (rung.Candidates + rc.Eta - 1) / rc.Eta
			if got := rung.Candidates - rung.Eliminated; got != keep {
				t.Fatalf("rung %d kept %d of %d, want ceil(k/eta)=%d", r, got, rung.Candidates, keep)
			}
			if prevCands == 1 {
				wantBudget = rc.Epochs
			} else {
				wantBudget *= rc.Eta
				if wantBudget > rc.Epochs {
					wantBudget = rc.Epochs
				}
			}
		}
	}
	last := res.Rungs[len(res.Rungs)-1]
	if last.TargetEpochs != rc.Epochs {
		t.Fatalf("final rung budget %d, want full %d", last.TargetEpochs, rc.Epochs)
	}
	top := res.Scores[0]
	if top.Err != nil || math.IsNaN(top.Accuracy) {
		t.Fatalf("top-1 unusable: %+v", top)
	}
	if top.Epochs != rc.Epochs {
		t.Fatalf("top-1 trained %d epochs, want the full budget %d", top.Epochs, rc.Epochs)
	}
	// Resume semantics: total epoch work is the sum of per-rung budget
	// deltas over survivors, not budget × survivors.
	sum := 0
	for _, sc := range res.Scores {
		sum += sc.Epochs
	}
	if sum != res.TotalEpochs {
		t.Fatalf("per-candidate epochs sum %d != TotalEpochs %d (restart instead of resume?)", sum, res.TotalEpochs)
	}
}

// TestRankMaxCandidatesRecordsSkipped is the satellite fix: a MaxCandidates
// truncation must be recorded, not silent — the trained scores are the
// deterministic candidate-index prefix and Skipped counts the rest,
// mirroring ErrTooManyStructures' truncated-prefix semantics.
func TestRankMaxCandidatesRecordsSkipped(t *testing.T) {
	rep, net := lenetReport(t)
	if len(rep.Structures) < 3 {
		t.Fatalf("want >= 3 candidates, got %d", len(rep.Structures))
	}
	for _, halving := range []bool{false, true} {
		rc := RankConfig{
			Classes: 2, PerClass: 4, Epochs: 2, DepthDiv: 1, Seed: 3,
			MaxCandidates: 2, Halving: halving, Eta: 2, MinEpochs: 1,
		}
		res := RankCandidatesResult(context.Background(), rep, net.Input, rc)
		if len(res.Scores) != 2 {
			t.Fatalf("halving=%v: cap ignored: %d scores", halving, len(res.Scores))
		}
		if want := len(rep.Structures) - 2; res.Skipped != want {
			t.Fatalf("halving=%v: skipped %d, want %d", halving, res.Skipped, want)
		}
		for _, sc := range res.Scores {
			if sc.Index >= 2 {
				t.Fatalf("halving=%v: trained candidate %d beyond the cap prefix", halving, sc.Index)
			}
		}
		// Uncapped: nothing skipped.
		rc.MaxCandidates = 0
		if got := RankCandidatesResult(context.Background(), rep, net.Input, rc); got.Skipped != 0 {
			t.Fatalf("halving=%v: uncapped rank reports %d skipped", halving, got.Skipped)
		}
	}
}

// TestRankHalvingEliminatesBrokenCandidateFirstRung: a candidate that fails
// to materialize carries a NaN accuracy and must be cut at the first rung
// boundary it reaches (the flat ranker's NaN-last contract, applied per
// rung), never consuming later-rung budget.
func TestRankHalvingEliminatesBrokenCandidateFirstRung(t *testing.T) {
	rep, net := lenetReport(t)
	broken := *rep
	broken.Structures = append(append([]structrev.Structure(nil), rep.Structures...),
		structrev.Structure{Layers: make([]structrev.SolvedLayer, len(rep.Analysis.Segments))})
	brokenIdx := len(broken.Structures) - 1
	rc := RankConfig{
		Classes: 2, PerClass: 4, Epochs: 4, DepthDiv: 1, Seed: 3,
		Halving: true, Eta: 2, MinEpochs: 1,
	}
	res := RankCandidatesResult(context.Background(), &broken, net.Input, rc)
	last := res.Scores[len(res.Scores)-1]
	if last.Index != brokenIdx || last.Err == nil || !math.IsNaN(last.Accuracy) {
		t.Fatalf("broken candidate not sorted last with an error: %+v", last)
	}
	if last.Epochs != 0 {
		t.Fatalf("broken candidate trained %d epochs", last.Epochs)
	}
	if res.Rungs[0].Eliminated < 1 {
		t.Fatalf("first rung eliminated %d, want >= 1 (the broken candidate)", res.Rungs[0].Eliminated)
	}
}

// TestRankHalvingTop1MatchesFlatGoldenVictims is the seeded regression the
// perf claim rests on: on all four Table 3 victims, the tournament must
// select flat's top-1 candidate while spending fewer total epochs. The
// small synthetic training task can saturate, leaving several candidates
// bit-equal at flat's best accuracy; in that case any member of the tied-top
// set is the same selection (successive halving is free to keep a different
// tied optimum), so the assertion is membership in the bit-equal tie set —
// which degenerates to exact index equality whenever the top-1 is unique.
// Work is race-scaled via the raceEnabled pattern.
func TestRankHalvingTop1MatchesFlatGoldenVictims(t *testing.T) {
	type victimCase struct {
		name    string
		build   func() *nn.Network
		modular bool
		rc      RankConfig
	}
	cases := []victimCase{
		{"lenet", func() *nn.Network { return nn.LeNet(10) }, false,
			RankConfig{Classes: 5, PerClass: 8, Epochs: 4, DepthDiv: 1, Seed: 9}},
		{"convnet", func() *nn.Network { return nn.ConvNet(10) }, false,
			RankConfig{Classes: 5, PerClass: 8, Epochs: 4, DepthDiv: 1, Seed: 9}},
		{"alexnet", func() *nn.Network { return nn.AlexNet(1000, 1) }, false,
			RankConfig{Classes: 4, PerClass: 6, Epochs: 4, DepthDiv: 48, Seed: 9, MaxCandidates: 8}},
		{"squeezenet", func() *nn.Network { return nn.SqueezeNet(1000, 1) }, true,
			RankConfig{Classes: 4, PerClass: 6, Epochs: 4, DepthDiv: 48, Seed: 9, MaxCandidates: 8}},
	}
	if raceEnabled {
		// The detector multiplies training cost ~10x; the two big victims'
		// coverage here is the schedule, not the training numerics, which
		// lenet/convnet already exercise.
		cases = cases[:2]
		for i := range cases {
			cases[i].rc.MaxCandidates = 6
		}
	}
	for _, tc := range cases {
		net := tc.build()
		net.InitWeights(1)
		opt := structrev.DefaultOptions()
		opt.IdenticalModules = tc.modular
		rep, err := RunStructureAttack(net, accel.Config{}, opt, 2)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		flat := RankCandidatesResult(context.Background(), rep, net.Input, tc.rc)
		hrc := tc.rc
		hrc.Halving, hrc.Eta, hrc.MinEpochs = true, 2, 1
		halv := RankCandidatesResult(context.Background(), rep, net.Input, hrc)
		best := math.Float64bits(flat.Scores[0].Accuracy)
		tied := map[int]bool{}
		for _, sc := range flat.Scores {
			if math.Float64bits(sc.Accuracy) == best && sc.Epochs == flat.Scores[0].Epochs {
				tied[sc.Index] = true
			}
		}
		top := halv.Scores[0]
		if !tied[top.Index] {
			t.Fatalf("%s: halving top-1 candidate %d (acc %.4f) not in flat's tied-top set %v (acc %.4f)",
				tc.name, top.Index, top.Accuracy, tied, flat.Scores[0].Accuracy)
		}
		if len(tied) == 1 && top.Index != flat.Scores[0].Index {
			t.Fatalf("%s: unique flat top-1 %d, halving chose %d", tc.name, flat.Scores[0].Index, top.Index)
		}
		if b := math.Float64bits(top.Accuracy); b != best {
			t.Fatalf("%s: winner accuracy differs despite full-budget final rung: %v vs %v",
				tc.name, flat.Scores[0].Accuracy, top.Accuracy)
		}
		if top.Epochs != tc.rc.Epochs {
			t.Fatalf("%s: halving winner trained %d epochs, want full budget %d", tc.name, top.Epochs, tc.rc.Epochs)
		}
		if halv.TotalEpochs >= flat.TotalEpochs {
			t.Fatalf("%s: halving spent %d epochs, flat %d", tc.name, halv.TotalEpochs, flat.TotalEpochs)
		}
	}
}
