// Package core orchestrates the paper's end-to-end model-extraction flows
// on top of the substrates: run a victim network on the simulated
// accelerator, capture its off-chip trace, reverse engineer the structure
// (§3, Algorithm 1), materialize and short-train the recovered candidate
// structures to pick the best one (the paper's Figures 4 and 5), and
// recover weights through the zero-pruning side channel (§4, Algorithm 2).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/corrupt"
	"cnnrev/internal/defense"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
	"cnnrev/internal/weightrev"
)

// CaptureResult bundles a victim run and its observable trace.
type CaptureResult struct {
	Net    *nn.Network
	Sim    *accel.Simulator
	Result *accel.Result
}

// Capture runs one inference of net on the simulated accelerator with a
// deterministic random input and returns the observables.
func Capture(net *nn.Network, cfg accel.Config, seed int64) (*CaptureResult, error) {
	sim, err := accel.New(net, cfg)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		return nil, err
	}
	return &CaptureResult{Net: net, Sim: sim, Result: res}, nil
}

// StructureReport is the outcome of the structure attack against one victim.
type StructureReport struct {
	Analysis   *structrev.Analysis
	Structures []structrev.Structure
	// PerLayer lists, per weighted segment, the distinct recovered
	// configurations (the paper's Table 4 view).
	PerLayer map[int][]structrev.LayerConfig
	// TruthIndex is the index of the candidate matching the victim (up to
	// padding equivalence), or -1.
	TruthIndex int
	// Queries counts victim inferences used (the structure attack needs 1).
	TraceBytes uint64
	// Partial marks a report whose enumeration was cut short by context
	// cancellation: Structures is a deterministic prefix of the complete
	// candidate set.
	Partial bool
	// Corrupted marks a run whose captured trace was degraded by a
	// corruption model before analysis; Tolerant marks the noise-tolerant
	// analysis path, whose measured corruption level is in Noise.
	Corrupted bool
	Tolerant  bool
	Noise     structrev.NoiseStats
	// Defense names the defensive trace transform applied between capture
	// and the (adversary-side) corruption/analysis stages — "" when none
	// ran. DefenseStats carries its measured bandwidth/latency cost.
	Defense      string
	DefenseStats defense.Stats
	// Dataflow is the accelerator scheduling the capture ran under
	// (canonical name of cfg.Dataflow).
	Dataflow string
	// DetectedDataflow is the scheduling class auto-detected from the
	// trace's read/write interleaving — "ambiguous" when the evidence is
	// absent or conflicting (e.g. heavily corrupted probes). On a clean
	// capture it matches Dataflow; the conformance tests pin this for every
	// Table 3 victim under every backend.
	DetectedDataflow string
}

// StructureAttackSpec selects the hostile-probe extensions of the §3
// pipeline: a seeded corruption model applied to the captured trace (an
// imperfect bus probe) and the noise-tolerant analysis that compensates.
// The zero value reproduces the clean pipeline exactly.
type StructureAttackSpec struct {
	// Defense applies a defensive trace transform (internal/defense) to
	// the captured trace before any adversary-side stage: the victim's
	// countermeasure runs at the accelerator, the probe's corruption
	// happens afterwards on the bus.
	Defense defense.Config
	// Corrupt degrades the captured trace before analysis. Enabling any
	// model forces the tolerant analysis path.
	Corrupt corrupt.Config
	// Tolerant selects structrev.AnalyzeTolerant even on a clean trace
	// (byte-identical results there, per the golden conformance tests).
	Tolerant bool
	// TolerantOpt tunes the tolerant analysis; zero fields take the
	// documented defaults.
	TolerantOpt structrev.TolerantOptions
}

// StageFunc observes the completion of one named pipeline stage; the
// service layer uses it to feed per-stage latency histograms.
type StageFunc func(stage string, elapsed time.Duration)

// isCtxErr reports whether err is the context's own cancellation error.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunStructureAttack captures a trace of net and runs the full §3 pipeline.
func RunStructureAttack(net *nn.Network, cfg accel.Config, opt structrev.Options, seed int64) (*StructureReport, error) {
	return RunStructureAttackCtx(context.Background(), net, cfg, opt, seed, nil)
}

// RunStructureAttackCtx is RunStructureAttack with cooperative cancellation
// and optional stage observation. If ctx expires during the candidate
// enumeration, the returned report carries the structures found so far with
// Partial set, alongside ctx's error; cancellation before the solve stage
// returns a nil report.
func RunStructureAttackCtx(ctx context.Context, net *nn.Network, cfg accel.Config, opt structrev.Options, seed int64, onStage StageFunc) (*StructureReport, error) {
	return RunStructureAttackSpec(ctx, net, cfg, opt, seed, StructureAttackSpec{}, onStage)
}

// RunStructureAttackSpec is RunStructureAttackCtx with the hostile-probe
// spec: the captured trace is degraded by spec.Corrupt (its own "corrupt"
// stage) and analyzed tolerantly when corruption is enabled or spec.Tolerant
// is set.
func RunStructureAttackSpec(ctx context.Context, net *nn.Network, cfg accel.Config, opt structrev.Options, seed int64, spec StructureAttackSpec, onStage StageFunc) (*StructureReport, error) {
	stage := func(name string, t0 time.Time) {
		if onStage != nil {
			onStage(name, time.Since(t0))
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	cap, err := Capture(net, cfg, seed)
	if err != nil {
		return nil, err
	}
	stage("capture", t0)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	trace := cap.Result.Trace
	var defStats defense.Stats
	defended := spec.Defense.Enabled()
	if defended {
		t0 = time.Now()
		var derr error
		trace, defStats, derr = defense.Apply(trace, spec.Defense)
		if derr != nil {
			return nil, derr
		}
		stage("defense", t0)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	corrupted := spec.Corrupt.Enabled()
	if corrupted {
		t0 = time.Now()
		trace = corrupt.Apply(trace, spec.Corrupt)
		stage("corrupt", t0)
	}
	tolerant := spec.Tolerant || corrupted
	elem := cap.Sim.Config().ElemBytes
	t0 = time.Now()
	var a *structrev.Analysis
	if tolerant {
		a, err = structrev.AnalyzeTolerant(trace, net.Input.Len()*elem, elem, spec.TolerantOpt)
	} else {
		a, err = structrev.Analyze(trace, net.Input.Len()*elem, elem)
	}
	if err != nil {
		return nil, err
	}
	stage("analyze", t0)
	t0 = time.Now()
	detected := structrev.DetectDataflow(trace, a, structrev.DetectOptions{})
	stage("detect", t0)
	t0 = time.Now()
	structures, serr := structrev.SolveCtx(ctx, a, net.Input.W, net.Input.C, net.NumClasses(), opt)
	stage("solve", t0)
	if serr != nil && !isCtxErr(serr) {
		return nil, serr
	}
	rep := &StructureReport{
		Analysis:   a,
		Structures: structures,
		PerLayer:   structrev.UniqueConfigs(a, structures),
		TruthIndex: -1,
		TraceBytes: trace.Blocks() * uint64(trace.BlockBytes),
		Partial:    serr != nil,
		Corrupted:  corrupted,
		Tolerant:   tolerant,
		Noise:      a.Noise,

		Dataflow:         cfg.Dataflow.String(),
		DetectedDataflow: detected.Class.String(),
	}
	if defended {
		rep.Defense = spec.Defense.Kind
		rep.DefenseStats = defStats
	}
	rep.TruthIndex = FindTruth(structures, GroundTruthConfigs(net))
	return rep, serr
}

// FindTruth returns the index of the first candidate matching the ground
// truth (up to padding equivalence), or -1. Exported so experiments that
// drive the analysis stages directly can score truth retention the same way
// the pipeline does.
func FindTruth(structures []structrev.Structure, truth []structrev.LayerConfig) int {
	for i := range structures {
		if structureMatches(&structures[i], truth) {
			return i
		}
	}
	return -1
}

// GroundTruthConfigs converts a network's weighted layers to the
// LayerConfig form the attack recovers (used to score the attack; the
// adversary of course does not have this).
func GroundTruthConfigs(net *nn.Network) []structrev.LayerConfig {
	var out []structrev.LayerConfig
	for i := range net.Specs {
		spec := &net.Specs[i]
		in := net.InShapes[i][0]
		switch spec.Kind {
		case nn.KindConv:
			c := structrev.LayerConfig{
				WIFM: in.W, DIFM: in.C,
				WOFM: net.Shapes[i].W, DOFM: net.Shapes[i].C,
				F: spec.F, S: spec.S, P: spec.P,
			}
			if spec.Pool != nn.PoolNone {
				c.HasPool = true
				c.FPool, c.SPool, c.PPool = spec.PoolF, spec.PoolS, spec.PoolP
			}
			out = append(out, c)
		case nn.KindFC:
			out = append(out, structrev.LayerConfig{
				WIFM: in.W, DIFM: in.C, WOFM: 1, DOFM: spec.OutC,
				FC: true, F: in.W, S: 1,
			})
		}
	}
	return out
}

// structureMatches compares a candidate against ground truth up to padding
// equivalence (the solver canonicalizes equivalent paddings).
func structureMatches(st *structrev.Structure, truth []structrev.LayerConfig) bool {
	cfgs := st.WeightedConfigs()
	if len(cfgs) != len(truth) {
		return false
	}
	for i := range cfgs {
		a, b := cfgs[i], truth[i]
		if a.FC != b.FC || a.WOFM != b.WOFM || a.DOFM != b.DOFM {
			return false
		}
		if a.FC {
			continue
		}
		if a.F != b.F || a.S != b.S || a.ConvOutW() != b.ConvOutW() ||
			a.HasPool != b.HasPool || a.FPool != b.FPool || a.SPool != b.SPool || a.PPool != b.PPool {
			return false
		}
	}
	return true
}

// Materialize builds a trainable network from a recovered structure by
// replaying the recovered dataflow graph: weighted segments become conv/FC
// layers, concatenated reads become concat nodes, element-wise segments
// become bypass additions. Channel and FC widths are depth-scaled by
// depthDiv (classifier output intact) so pure-Go candidate ranking stays
// feasible; pooling materializes as max pooling (global pools as average),
// since the side channel does not distinguish pool kinds.
func Materialize(a *structrev.Analysis, st *structrev.Structure, input nn.Shape, classes, depthDiv int) (*nn.Network, error) {
	var specs []nn.LayerSpec
	segNode := make([]int, len(a.Segments)) // nn layer index of each segment's output
	last := len(a.Segments) - 1

	for si := range a.Segments {
		seg := &a.Segments[si]
		// Group the segment's inputs into units: adjacent producers form a
		// concatenated read.
		var units [][]int // each unit: list of producer refs (nn node indices or InputRef)
		for _, in := range seg.Inputs {
			var node int
			if in.Producer < 0 {
				node = nn.InputRef
			} else {
				node = segNode[in.Producer]
			}
			if in.Adjacent && len(units) > 0 {
				units[len(units)-1] = append(units[len(units)-1], node)
			} else {
				units = append(units, []int{node})
			}
		}
		if len(units) == 0 {
			return nil, fmt.Errorf("core: segment %d has no inputs", si)
		}
		// Materialize each multi-producer unit as a concat node.
		nodes := make([]int, len(units))
		for u, members := range units {
			if len(members) == 1 {
				nodes[u] = members[0]
				continue
			}
			specs = append(specs, nn.LayerSpec{
				Name: fmt.Sprintf("concat%d_%d", si, u), Kind: nn.KindConcat, Inputs: members,
			})
			nodes[u] = len(specs) - 1
		}

		switch {
		case seg.Kind == structrev.SegEltwise:
			specs = append(specs, nn.LayerSpec{
				Name: fmt.Sprintf("eltwise%d", si), Kind: nn.KindEltwise, Inputs: nodes,
			})
		default:
			c := st.Layers[si].Config
			if c == nil {
				return nil, fmt.Errorf("core: weighted segment %d has no config", si)
			}
			in := nodes[0]
			if len(nodes) > 1 {
				// A weighted layer reading several non-adjacent maps: treat
				// as a concatenated input.
				specs = append(specs, nn.LayerSpec{
					Name: fmt.Sprintf("concat%d", si), Kind: nn.KindConcat, Inputs: nodes,
				})
				in = len(specs) - 1
			}
			outC := c.DOFM
			if si != last {
				outC = scaleDim(outC, depthDiv)
			} else if classes > 0 {
				outC = classes
			}
			spec := nn.LayerSpec{
				Name:   fmt.Sprintf("layer%d", si),
				ReLU:   si != last,
				Inputs: []int{in},
				OutC:   outC,
			}
			if c.FC {
				spec.Kind = nn.KindFC
			} else {
				spec.Kind = nn.KindConv
				spec.F, spec.S, spec.P = c.F, c.S, c.P
				if c.HasPool {
					spec.Pool = nn.PoolMax
					if c.WOFM == 1 {
						spec.Pool = nn.PoolAvg // global pooling is average by convention
					}
					spec.PoolF, spec.PoolS, spec.PoolP = c.FPool, c.SPool, c.PPool
				}
			}
			specs = append(specs, spec)
		}
		segNode[si] = len(specs) - 1
	}
	return nn.New("candidate", input, specs)
}

func scaleDim(d, div int) int {
	if div <= 1 {
		return d
	}
	s := d / div
	if s < 1 {
		s = 1
	}
	return s
}

// WeightReport is the outcome of the §4 weight attack on one conv layer.
type WeightReport struct {
	// MaxRatioErr is the largest |recovered − true| error over all w/b
	// ratios of non-zero weights (the paper reports < 2⁻¹⁰).
	MaxRatioErr float64
	// ZerosDetected / ZerosActual count zero-weight identification.
	ZerosDetected, ZerosActual int
	// ZeroErrors counts misclassified weights (zero↔non-zero).
	ZeroErrors int
	// Queries is the number of device inferences used.
	Queries int
	// Filters is the number of output channels recovered.
	Filters int
	// Ratios[d][c][ky][kx] are the recovered w/b values.
	Ratios [][][][]float64
}

// WeightAttackConfig tunes RunWeightAttackOpts. The zero value gives the
// default behavior (parallel per-filter recovery).
type WeightAttackConfig struct {
	// Serial disables the per-filter fan-out and recovers filters one at a
	// time — the reference mode (mirrors RankConfig.Serial).
	Serial bool
}

// RunWeightAttack recovers w/b for every filter of the first layer of net
// (which must be an unpooled, unpadded conv layer) through the zero-pruning
// side channel, and scores the recovery against the true parameters.
func RunWeightAttack(net *nn.Network, cfg accel.Config) (*WeightReport, error) {
	return RunWeightAttackCtx(context.Background(), net, cfg)
}

// RunWeightAttackCtx is RunWeightAttack with cooperative cancellation: each
// parallel per-filter recovery checks ctx between individual weight
// searches, so a cancelled attack releases the worker pool within one
// binary-search (single-weight) boundary.
func RunWeightAttackCtx(ctx context.Context, net *nn.Network, cfg accel.Config) (*WeightReport, error) {
	return RunWeightAttackOpts(ctx, net, cfg, WeightAttackConfig{})
}

// RunWeightAttackOpts is RunWeightAttackCtx with attack tuning options.
func RunWeightAttackOpts(ctx context.Context, net *nn.Network, cfg accel.Config, opts WeightAttackConfig) (*WeightReport, error) {
	oracle, err := weightrev.NewFastOracle(net, cfg, 0)
	if err != nil {
		return nil, err
	}
	spec := &net.Specs[0]
	g := weightrev.Geometry{
		In: net.Input, OutC: spec.OutC, F: spec.F, S: spec.S, P: spec.P,
	}
	at := weightrev.NewAttacker(oracle, g)
	at.Serial = opts.Serial

	rep := &WeightReport{Filters: spec.OutC}
	rep.Ratios = make([][][][]float64, spec.OutC)
	w := net.Params[0].W.Data
	b := net.Params[0].B.Data
	inC, f := net.Input.C, spec.F

	// Filters are independent: RecoverAllFilters fans them out on the shared
	// tensor worker pool (the analytic oracle is read-only per query), one
	// task per filter so uneven search depths balance dynamically. In
	// hardware terms this corresponds to interleaving the per-filter query
	// schedules.
	results, err := at.RecoverAllFilters(ctx)
	if err != nil {
		return nil, err
	}
	for d := 0; d < spec.OutC; d++ {
		res := results[d]
		rep.Ratios[d] = res.Ratio
		for c := 0; c < inC; c++ {
			for ky := 0; ky < f; ky++ {
				for kx := 0; kx < f; kx++ {
					truth := float64(w[((d*inC+c)*f+ky)*f+kx]) / float64(b[d])
					isZero := w[((d*inC+c)*f+ky)*f+kx] == 0
					if isZero {
						rep.ZerosActual++
						if res.Zero[c][ky][kx] {
							rep.ZerosDetected++
						} else {
							rep.ZeroErrors++
						}
						continue
					}
					if res.Zero[c][ky][kx] {
						rep.ZeroErrors++
						continue
					}
					if e := math.Abs(res.Ratio[c][ky][kx] - truth); e > rep.MaxRatioErr {
						rep.MaxRatioErr = e
					}
				}
			}
		}
	}
	rep.Queries = oracle.Queries()
	return rep, nil
}
