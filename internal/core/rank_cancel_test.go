package core

import (
	"context"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

// countdownCtx is a context.Context whose Err flips to context.Canceled
// after a fixed number of Err calls — a deterministic way to cancel the
// pipeline mid-flight at an exact cooperative checkpoint, independent of
// wall-clock timing. Safe for concurrent use (parallel ranking polls Err
// from worker goroutines).
type countdownCtx struct {
	remaining atomic.Int64
}

func cancelAfter(n int) *countdownCtx {
	c := &countdownCtx{}
	c.remaining.Store(int64(n))
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}
func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return nil }
func (c *countdownCtx) Value(any) any               { return nil }

// sameScores compares two rankings for bit-identical equality.
func sameScores(t *testing.T, label string, got, want []CandidateScore) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d scores vs %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.Index != w.Index || g.IsTruth != w.IsTruth ||
			math.Float64bits(g.Accuracy) != math.Float64bits(w.Accuracy) ||
			(g.Err == nil) != (w.Err == nil) {
			t.Fatalf("%s: rank %d differs: got {idx %d acc %v truth %v err %v}, want {idx %d acc %v truth %v err %v}",
				label, i, g.Index, g.Accuracy, g.IsTruth, g.Err, w.Index, w.Accuracy, w.IsTruth, w.Err)
		}
	}
}

// TestRankCandidatesCancelledRunLeavesPoolClean is the satellite property
// test extending rank_determinism_test.go: cancelling a parallel rank at an
// arbitrary cooperative checkpoint must leave no residue in the shared
// worker pool or trainer state — a subsequent uncancelled parallel rank is
// bit-identical to the serial reference, exactly as if the cancelled run
// never happened.
func TestRankCandidatesCancelledRunLeavesPoolClean(t *testing.T) {
	net := nn.LeNet(3)
	net.InitWeights(1)
	rep, err := RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rc := RankConfig{Classes: 3, PerClass: 9, Epochs: 2, DepthDiv: 1, Seed: 11, MaxCandidates: 6}
	serialRC := rc
	serialRC.Serial = true
	ref := RankCandidates(rep, net.Input, serialRC)
	if len(ref) < 2 {
		t.Fatalf("want at least 2 candidates, got %d", len(ref))
	}

	checkpoints := []int{0, 1, 3, 7, 15}
	if raceEnabled {
		checkpoints = []int{0, 3, 15} // each k costs a full re-rank; trim under -race
	}
	sawCancelled := false
	for _, k := range checkpoints {
		cancelled := RankCandidatesCtx(cancelAfter(k), rep, net.Input, rc)
		for _, sc := range cancelled {
			if sc.Err != nil {
				sawCancelled = true
				if !math.IsNaN(sc.Accuracy) {
					t.Fatalf("k=%d: cancelled candidate %d has accuracy %v, want NaN", k, sc.Index, sc.Accuracy)
				}
			}
		}
		// rank → cancel → rank: the follow-up run must be pristine.
		after := RankCandidatesCtx(context.Background(), rep, net.Input, rc)
		sameScores(t, "post-cancel parallel rank vs serial reference", after, ref)
	}
	if !sawCancelled {
		t.Fatal("no candidate was ever cancelled; countdown checkpoints never hit")
	}
}

// TestRunStructureAttackCtxPartialPrefix pins partial-result semantics for
// the solve stage: a cancellation mid-enumeration yields a report marked
// Partial whose structures are a prefix of the full deterministic
// enumeration.
func TestRunStructureAttackCtxPartialPrefix(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	full, err := RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Structures) < 3 {
		t.Fatalf("want a few structures to truncate, got %d", len(full.Structures))
	}

	sawStrictPrefix := false
	for k := 2; k < 60; k += 7 {
		net := nn.LeNet(10)
		net.InitWeights(1)
		rep, err := RunStructureAttackCtx(cancelAfter(k), net, accel.Config{}, structrev.DefaultOptions(), 2, nil)
		if err == nil {
			if len(rep.Structures) != len(full.Structures) || rep.Partial {
				t.Fatalf("k=%d: no error but incomplete report (%d structures, partial=%v)", k, len(rep.Structures), rep.Partial)
			}
			continue
		}
		if rep == nil {
			continue // cancelled before the solve stage; nothing partial yet
		}
		if !rep.Partial {
			t.Fatalf("k=%d: cancelled report not marked partial", k)
		}
		if len(rep.Structures) > len(full.Structures) {
			t.Fatalf("k=%d: partial run found more structures (%d) than the full run (%d)", k, len(rep.Structures), len(full.Structures))
		}
		for i := range rep.Structures {
			got := rep.Structures[i].WeightedConfigs()
			want := full.Structures[i].WeightedConfigs()
			if len(got) != len(want) {
				t.Fatalf("k=%d: structure %d is not the full run's prefix", k, i)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("k=%d: structure %d config %d: %v != %v", k, i, j, got[j], want[j])
				}
			}
		}
		if n := len(rep.Structures); n > 0 && n < len(full.Structures) {
			sawStrictPrefix = true
		}
	}
	if !sawStrictPrefix {
		t.Fatal("no checkpoint produced a nonempty strict prefix; countdown values need retuning")
	}

	// Already-expired context: refused before any work.
	if rep, err := RunStructureAttackCtx(cancelAfter(0), net, accel.Config{}, structrev.DefaultOptions(), 2, nil); err == nil || rep != nil {
		t.Fatalf("expired context: rep=%v err=%v, want nil/ctx error", rep, err)
	}
}
