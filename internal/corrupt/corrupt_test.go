package corrupt

import (
	"bytes"
	"testing"

	"cnnrev/internal/memtrace"
)

// testTrace builds a deterministic victim-like trace: a few contiguous
// regions of multi-block bursts with monotonic cycles.
func testTrace() *memtrace.Trace {
	tr := &memtrace.Trace{BlockBytes: 64}
	cycle := uint64(100)
	addr := uint64(1 << 20)
	for region := 0; region < 4; region++ {
		for i := 0; i < 50; i++ {
			kind := memtrace.Read
			if i%3 == 0 {
				kind = memtrace.Write
			}
			count := uint32(1 + i%7)
			tr.Accesses = append(tr.Accesses, memtrace.Access{
				Cycle: cycle, Addr: addr, Count: count, Kind: kind,
			})
			addr += uint64(count) * 64
			cycle += uint64(3 + i%5)
		}
		addr += 1 << 16 // guard gap between regions
	}
	return tr
}

func traceBytes(t *testing.T, tr *memtrace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// TestZeroConfigIsByteIdentical pins the acceptance criterion that rate-0
// corruption leaves traces byte-for-byte unchanged.
func TestZeroConfigIsByteIdentical(t *testing.T) {
	tr := testTrace()
	want := traceBytes(t, tr)
	got := traceBytes(t, Apply(tr, Config{Seed: 42}))
	if !bytes.Equal(want, got) {
		t.Fatal("zero-effect Config changed the trace bytes")
	}
	if Config.Enabled(Config{Seed: 99}) {
		t.Fatal("seed alone must not enable corruption")
	}
}

// TestEqualSeedsCorruptIdentically pins determinism: equal (trace, Config)
// pairs produce byte-identical corrupted traces; different seeds differ.
func TestEqualSeedsCorruptIdentically(t *testing.T) {
	cfg := Config{
		Seed: 7, DropRate: 0.05, SplitRate: 0.2, CoalesceRate: 0.2,
		ReorderWindow: 8, InterferenceRate: 0.1,
	}
	a := traceBytes(t, Apply(testTrace(), cfg))
	b := traceBytes(t, Apply(testTrace(), cfg))
	if !bytes.Equal(a, b) {
		t.Fatal("equal seeds produced different corruption")
	}
	cfg.Seed = 8
	c := traceBytes(t, Apply(testTrace(), cfg))
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

// TestApplyDoesNotMutateInput verifies the input trace is untouched even
// with every model enabled (dropRecords reuses backing arrays of its own
// copy, never the caller's).
func TestApplyDoesNotMutateInput(t *testing.T) {
	tr := testTrace()
	want := traceBytes(t, tr)
	Apply(tr, Config{Seed: 1, DropRate: 0.5, SplitRate: 0.5, CoalesceRate: 0.5,
		ReorderWindow: 16, InterferenceRate: 0.5})
	if got := traceBytes(t, tr); !bytes.Equal(want, got) {
		t.Fatal("Apply mutated its input trace")
	}
}

func TestDropRate(t *testing.T) {
	tr := testTrace()
	out := Apply(tr, Config{Seed: 3, DropRate: 0.2})
	n, m := len(tr.Accesses), len(out.Accesses)
	if m >= n {
		t.Fatalf("drop removed nothing: %d -> %d", n, m)
	}
	if lo, hi := n*6/10, n*95/100; m < lo || m > hi {
		t.Fatalf("drop rate 0.2 kept %d of %d records, outside [%d,%d]", m, n, lo, hi)
	}
}

// TestReorderBounded verifies cycles stay monotonic, displacement respects
// the window, and the multiset of (Addr, Count, Kind) is preserved.
func TestReorderBounded(t *testing.T) {
	tr := testTrace()
	const window = 6
	out := Apply(tr, Config{Seed: 5, ReorderWindow: window})
	if len(out.Accesses) != len(tr.Accesses) {
		t.Fatalf("reorder changed record count: %d -> %d", len(tr.Accesses), len(out.Accesses))
	}
	type payload struct {
		Addr  uint64
		Count uint32
		Kind  memtrace.Kind
	}
	pos := map[payload][]int{}
	for i, a := range tr.Accesses {
		if i > 0 && a.Cycle < tr.Accesses[i-1].Cycle {
			t.Fatal("test trace cycles not monotonic")
		}
		pos[payload{a.Addr, a.Count, a.Kind}] = append(pos[payload{a.Addr, a.Count, a.Kind}], i)
	}
	moved := false
	for i, a := range out.Accesses {
		if a.Cycle != tr.Accesses[i].Cycle {
			t.Fatalf("record %d: cycle %d, want original slot cycle %d", i, a.Cycle, tr.Accesses[i].Cycle)
		}
		p := payload{a.Addr, a.Count, a.Kind}
		orig := pos[p]
		if len(orig) == 0 {
			t.Fatalf("record %d: payload %+v not in original trace", i, p)
		}
		// Displacement bound: some original slot of this payload must lie
		// within the window. (Payloads are near-unique in testTrace.)
		ok := false
		for _, o := range orig {
			if d := i - o; d >= -window && d <= window {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("record %d moved further than window %d (origins %v)", i, window, orig)
		}
		if orig[0] != i {
			moved = true
		}
		pos[p] = orig[1:]
	}
	if !moved {
		t.Fatal("reorder with window 6 moved nothing")
	}
}

// TestSplitAndCoalescePreserveBlocks verifies regranulation never changes
// the total block count or the set of touched addresses.
func TestSplitAndCoalescePreserveBlocks(t *testing.T) {
	tr := testTrace()
	for _, cfg := range []Config{
		{Seed: 11, SplitRate: 0.7},
		{Seed: 11, CoalesceRate: 0.7},
		{Seed: 11, SplitRate: 0.5, CoalesceRate: 0.5},
	} {
		out := Apply(tr, cfg)
		if got, want := out.Blocks(), tr.Blocks(); got != want {
			t.Fatalf("%+v: total blocks %d, want %d", cfg, got, want)
		}
		if cfg.SplitRate > 0 && cfg.CoalesceRate == 0 && len(out.Accesses) <= len(tr.Accesses) {
			t.Fatalf("split rate %v did not increase record count", cfg.SplitRate)
		}
		if cfg.CoalesceRate > 0 && cfg.SplitRate == 0 && len(out.Accesses) >= len(tr.Accesses) {
			t.Fatalf("coalesce rate %v did not decrease record count", cfg.CoalesceRate)
		}
	}
}

// TestInterferenceIsDisjoint verifies injected accesses land strictly above
// the victim's footprint, in the configured number of regions, with cycles
// inside the trace's span and the merged stream still cycle-monotonic.
func TestInterferenceIsDisjoint(t *testing.T) {
	tr := testTrace()
	var victimMax uint64
	for _, a := range tr.Accesses {
		if e := a.End(tr.BlockBytes); e > victimMax {
			victimMax = e
		}
	}
	out := Apply(tr, Config{Seed: 13, InterferenceRate: 0.3, InterferenceRegions: 3})
	if len(out.Accesses) <= len(tr.Accesses) {
		t.Fatal("interference rate 0.3 injected nothing")
	}
	lo, hi := tr.Accesses[0].Cycle, tr.Accesses[len(tr.Accesses)-1].Cycle
	regions := map[uint64]bool{}
	injected := 0
	for i, a := range out.Accesses {
		if i > 0 && a.Cycle < out.Accesses[i-1].Cycle {
			t.Fatalf("merged trace not cycle-monotonic at %d", i)
		}
		if a.Addr < victimMax {
			continue // victim record
		}
		injected++
		if a.Cycle < lo || a.Cycle > hi {
			t.Fatalf("interference cycle %d outside victim span [%d,%d]", a.Cycle, lo, hi)
		}
		regions[a.Addr/interferenceRegionGap] = true
	}
	if injected == 0 {
		t.Fatal("no injected record found above the victim footprint")
	}
	if len(regions) < 2 || len(regions) > 3 {
		t.Fatalf("interference spread over %d regions, want 2..3", len(regions))
	}
	if got, want := len(out.Accesses)-len(tr.Accesses), injected; got != want {
		t.Fatalf("victim records changed: %d new records but %d injected", got, want)
	}
}

// TestInterferenceHostileCycleSpan pins the Int63n guard: a codec-valid
// trace whose cycle span reaches or exceeds 2^63 — including spans only
// visible as min/max over non-monotonic records — must not panic, and the
// injected cycles must stay inside the observed span.
func TestInterferenceHostileCycleSpan(t *testing.T) {
	top := ^uint64(0)
	for name, accs := range map[string][]memtrace.Access{
		"monotonic-2^63": {
			{Cycle: 0, Addr: 0, Count: 1, Kind: memtrace.Read},
			{Cycle: 1 << 63, Addr: 64, Count: 1, Kind: memtrace.Write},
		},
		"full-span": {
			{Cycle: 0, Addr: 0, Count: 1, Kind: memtrace.Read},
			{Cycle: top, Addr: 64, Count: 1, Kind: memtrace.Write},
		},
		"non-monotonic": {
			{Cycle: top, Addr: 0, Count: 1, Kind: memtrace.Read},
			{Cycle: 0, Addr: 64, Count: 1, Kind: memtrace.Write},
			{Cycle: 5, Addr: 128, Count: 1, Kind: memtrace.Read},
		},
	} {
		tr := &memtrace.Trace{BlockBytes: 64, Accesses: accs}
		out := Apply(tr, Config{Seed: 17, InterferenceRate: 1})
		if len(out.Accesses) <= len(tr.Accesses) {
			t.Fatalf("%s: interference rate 1 injected nothing", name)
		}
	}
}

// TestSeverityMonotonic sanity-checks the slack heuristic.
func TestSeverityMonotonic(t *testing.T) {
	if (Config{}).Severity() != 0 {
		t.Fatal("zero config must have zero severity")
	}
	a := Config{DropRate: 0.01}.Severity()
	b := Config{DropRate: 0.05}.Severity()
	if !(a > 0 && b > a && b <= 1) {
		t.Fatalf("severity not monotonic: %v, %v", a, b)
	}
}

// TestRegranulationBoundedOnHostileExtents pins the DoS guard: a tiny
// codec-valid trace claiming enormous extents must not make Apply
// materialize records proportional to the claimed traffic — granularity
// coarsens instead, and block totals are preserved exactly.
func TestRegranulationBoundedOnHostileExtents(t *testing.T) {
	tr := &memtrace.Trace{BlockBytes: 1 << 20, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 1 << 31, Kind: memtrace.Read},
		{Cycle: 1, Addr: 1 << 60, Count: 1 << 31, Kind: memtrace.Write},
	}}
	out := Apply(tr, Config{Seed: 1, ReorderWindow: 4})
	if got := len(out.Accesses); got > maxRegranRecords+len(tr.Accesses) {
		t.Fatalf("hostile extents regranulated into %d records", got)
	}
	if got, want := out.Blocks(), tr.Blocks(); got != want {
		t.Fatalf("reorder-only corruption changed block total: %d != %d", got, want)
	}
}
