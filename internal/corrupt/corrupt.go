// Package corrupt applies deterministic, seeded corruption models to memory
// traces. The simulator in internal/accel emits a perfect transaction log;
// a real DRAM bus probe does not see one. Following the noisy-bus threat
// models of Hu et al. (arXiv:1903.03916) and Weerasena & Mishra
// (arXiv:2311.00579), this package degrades a clean memtrace.Trace post-hoc
// with four independent, composable models:
//
//   - transaction drop: probe undersampling misses individual bursts,
//   - burst splitting / coalescing: the probe observes transactions at a
//     granularity different from the accelerator's burst engine,
//   - bounded-window reordering: memory-controller scheduling reorders
//     nearby transactions while preserving coarse time order,
//   - co-tenant interference: a neighbour workload injects accesses in
//     address regions disjoint from the victim's footprint.
//
// All corruption is driven by a single seeded PRNG so equal (trace, Config)
// pairs always produce byte-identical corrupted traces, and a zero-effect
// Config returns a byte-identical copy — both properties are pinned by
// regression tests and are what makes the noise sweeps in
// internal/experiments reproducible.
package corrupt

import (
	"math"
	"math/rand"
	"sort"

	"cnnrev/internal/memtrace"
)

// Config selects corruption models and their rates. The zero value disables
// every model: Apply becomes a deep copy.
type Config struct {
	// Seed drives the single PRNG behind all enabled models. Equal seeds on
	// equal inputs corrupt identically.
	Seed int64

	// DropRate is the i.i.d. probability in [0,1] that any single burst
	// record is missed by the probe (undersampling).
	DropRate float64

	// SplitRate is the probability in [0,1] that a multi-block burst is
	// observed as two separate transactions, cut at a uniformly random
	// block boundary.
	SplitRate float64

	// CoalesceRate is the probability in [0,1] that a pair of adjacent,
	// contiguous, same-kind records is observed as one coarser transaction
	// (the inverse of SplitRate: a probe that integrates over longer
	// windows than the burst engine).
	CoalesceRate float64

	// ReorderWindow bounds memory-controller reordering: each record may
	// move at most ReorderWindow positions from its true slot. The original
	// monotonic cycle sequence is reassigned to the shuffled records in
	// order, modelling a controller that reorders requests but issues them
	// back-to-back. 0 disables reordering.
	ReorderWindow int

	// InterferenceRate injects co-tenant traffic: for each original record
	// an independent coin with this probability adds one interfering access
	// at a cycle drawn from the trace's span.
	InterferenceRate float64

	// InterferenceRegions is the number of disjoint co-tenant address
	// regions the injected accesses are spread over. Defaults to 2 when
	// InterferenceRate > 0.
	InterferenceRegions int

	// ProbeGranularityBlocks is the burst length, in blocks, at which the
	// probe observes the bus. The simulator's recorder coalesces a layer's
	// whole stream into a handful of giant burst records; a real probe sees
	// individual transactions. Whenever any model is enabled, records longer
	// than this are first chopped into consecutive chunks of at most this
	// size, so DropRate drops ~that fraction of *traffic* (not of layers)
	// and ReorderWindow permutes locally (not across layers). 0 defaults
	// to 16.
	ProbeGranularityBlocks int
}

// Enabled reports whether any corruption model is active.
func (c Config) Enabled() bool {
	return c.DropRate > 0 || c.SplitRate > 0 || c.CoalesceRate > 0 ||
		c.ReorderWindow > 0 || c.InterferenceRate > 0
}

// Severity is a scalar summary of how aggressive the configuration is,
// used by callers to scale analysis slack. It is a heuristic, not a
// probability: drops dominate because they shrink observed sizes.
func (c Config) Severity() float64 {
	s := c.DropRate + 0.5*c.InterferenceRate + 0.25*(c.SplitRate+c.CoalesceRate)
	if c.ReorderWindow > 0 {
		s += 0.01
	}
	return math.Min(s, 1)
}

// interferenceRegionBytes is the span of each co-tenant region; regions are
// separated by interferenceRegionGap so they can never be mistaken for the
// victim's guard-page-separated buffers or for each other.
const (
	interferenceRegionBytes = 1 << 16
	interferenceRegionGap   = 1 << 24
)

// maxRegranRecords bounds how many records regranulation may materialize.
// A hostile (codec-valid) trace can claim petabyte extents in a few records;
// chopping those at the configured granularity would allocate without bound.
// Oversized traces are instead observed at a proportionally coarser
// granularity, keeping Apply total and its output ~200 MB at worst. The
// bound sits above every real victim's chunk count (full AlexNet is ~4.9M
// chunks at the default granularity) so legitimate sweeps never coarsen.
const maxRegranRecords = 8 << 20

// Apply returns a corrupted copy of tr; tr itself is never modified. The
// trace is first regranulated to the probe's observation granularity, then
// the models run in a fixed order — interference injection, bounded
// reordering, burst splitting, burst coalescing, transaction drop — so a
// record can be split and then one half dropped, mirroring a probe that
// first sees the merged bus and then undersamples it.
func Apply(tr *memtrace.Trace, cfg Config) *memtrace.Trace {
	out := &memtrace.Trace{
		BlockBytes: tr.BlockBytes,
		Accesses:   append([]memtrace.Access(nil), tr.Accesses...),
	}
	if !cfg.Enabled() || len(out.Accesses) == 0 {
		return out
	}
	gran := uint64(16)
	if cfg.ProbeGranularityBlocks > 0 {
		gran = uint64(cfg.ProbeGranularityBlocks)
	}
	var totalBlocks uint64
	for _, a := range out.Accesses {
		totalBlocks += uint64(a.Count)
	}
	if totalBlocks/gran > maxRegranRecords {
		gran = totalBlocks / maxRegranRecords
	}
	if gran > math.MaxUint32 {
		gran = math.MaxUint32
	}
	out.Accesses = regranulate(out.Accesses, uint32(gran), uint64(out.BlockBytes))
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.InterferenceRate > 0 {
		out.Accesses = injectInterference(out, cfg, rng)
	}
	if cfg.ReorderWindow > 0 {
		reorderBounded(out.Accesses, cfg.ReorderWindow, rng)
	}
	if cfg.SplitRate > 0 {
		out.Accesses = splitBursts(out.Accesses, uint64(out.BlockBytes), cfg.SplitRate, rng)
	}
	if cfg.CoalesceRate > 0 {
		out.Accesses = coalesceBursts(out.Accesses, uint64(out.BlockBytes), cfg.CoalesceRate, rng)
	}
	if cfg.DropRate > 0 {
		out.Accesses = dropRecords(out.Accesses, cfg.DropRate, rng)
	}
	return out
}

// regranulate chops burst records down to the probe's observation
// granularity: consecutive chunks of at most maxBlocks blocks, all carrying
// the source record's cycle stamp.
func regranulate(accs []memtrace.Access, maxBlocks uint32, block uint64) []memtrace.Access {
	out := make([]memtrace.Access, 0, len(accs))
	for _, a := range accs {
		for a.Count > maxBlocks {
			head := a
			head.Count = maxBlocks
			out = append(out, head)
			a.Addr += uint64(maxBlocks) * block
			a.Count -= maxBlocks
		}
		out = append(out, a)
	}
	return out
}

// injectInterference adds co-tenant accesses in regions placed past the
// victim's highest address, far enough that region clustering never merges
// them with real buffers, and merges them into the trace in cycle order.
func injectInterference(tr *memtrace.Trace, cfg Config, rng *rand.Rand) []memtrace.Access {
	accs := tr.Accesses
	regions := cfg.InterferenceRegions
	if regions <= 0 {
		regions = 2
	}
	if regions > 64 {
		regions = 64
	}
	// Cycles in a hostile (codec-valid) trace are untrusted and need not be
	// monotonic, so the span is the min/max over all records, not first/last.
	var maxEnd uint64
	loCycle, hiCycle := accs[0].Cycle, accs[0].Cycle
	for _, a := range accs {
		if e := a.End(tr.BlockBytes); e > maxEnd {
			maxEnd = e
		}
		if a.Cycle < loCycle {
			loCycle = a.Cycle
		}
		if a.Cycle > hiCycle {
			hiCycle = a.Cycle
		}
	}
	base := maxEnd + interferenceRegionGap
	if base < maxEnd || base > ^uint64(0)-uint64(regions+1)*interferenceRegionGap {
		// A hostile trace already occupies the top of the address space;
		// there is nowhere disjoint to inject, so leave it untouched.
		return accs
	}
	block := uint64(tr.BlockBytes)
	var injected []memtrace.Access
	for range accs {
		if rng.Float64() >= cfg.InterferenceRate {
			continue
		}
		region := base + uint64(rng.Intn(regions))*interferenceRegionGap
		off := uint64(rng.Int63n(interferenceRegionBytes)) / block * block
		cyc := loCycle
		if hiCycle > loCycle {
			// A hostile span can exceed int64; clamp so Int63n never sees a
			// non-positive bound.
			span := hiCycle - loCycle
			if span >= math.MaxInt64 {
				span = math.MaxInt64 - 1
			}
			cyc += uint64(rng.Int63n(int64(span) + 1))
		}
		kind := memtrace.Read
		if rng.Intn(2) == 1 {
			kind = memtrace.Write
		}
		injected = append(injected, memtrace.Access{
			Cycle: cyc,
			Addr:  region + off,
			Count: uint32(1 + rng.Intn(4)),
			Kind:  kind,
		})
	}
	if len(injected) == 0 {
		return accs
	}
	// Stable merge by cycle: victim records keep their relative order, and
	// an interfering access lands after victim records with the same stamp.
	merged := make([]memtrace.Access, 0, len(accs)+len(injected))
	i, j := 0, 0
	// injected is generated with random cycles; sort it first. The sort must
	// be stable so equal-cycle injections keep generation order (a high
	// interference rate on a multi-million-record trace injects ~rate·n
	// accesses, so this must also be O(n log n)).
	sort.SliceStable(injected, func(x, y int) bool { return injected[x].Cycle < injected[y].Cycle })
	for i < len(accs) && j < len(injected) {
		if accs[i].Cycle <= injected[j].Cycle {
			merged = append(merged, accs[i])
			i++
		} else {
			merged = append(merged, injected[j])
			j++
		}
	}
	merged = append(merged, accs[i:]...)
	merged = append(merged, injected[j:]...)
	return merged
}

// reorderBounded shuffles records within a bounded window and reassigns the
// original cycle sequence in order, so timestamps stay monotonic while the
// address stream is locally permuted. It stable-sorts by the perturbed key
// i + U[0,window]: with every key within `window` of its index, no element
// can travel more than `window` positions in either direction.
func reorderBounded(accs []memtrace.Access, window int, rng *rand.Rand) {
	n := len(accs)
	cycles := make([]uint64, n)
	keys := make([]int, n)
	order := make([]int, n)
	for i, a := range accs {
		cycles[i] = a.Cycle
		keys[i] = i + rng.Intn(window+1)
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return keys[order[x]] < keys[order[y]] })
	shuffled := make([]memtrace.Access, n)
	for i, o := range order {
		shuffled[i] = accs[o]
		shuffled[i].Cycle = cycles[i]
	}
	copy(accs, shuffled)
}

// splitBursts cuts multi-block bursts in two at a random block boundary.
func splitBursts(accs []memtrace.Access, block uint64, rate float64, rng *rand.Rand) []memtrace.Access {
	out := make([]memtrace.Access, 0, len(accs))
	for _, a := range accs {
		if a.Count < 2 || rng.Float64() >= rate {
			out = append(out, a)
			continue
		}
		k := uint32(1 + rng.Intn(int(a.Count-1)))
		head, tail := a, a
		head.Count = k
		tail.Addr = a.Addr + uint64(k)*block
		tail.Count = a.Count - k
		out = append(out, head, tail)
	}
	return out
}

// coalesceBursts merges adjacent contiguous same-kind records, emulating a
// probe that integrates over coarser windows than the burst engine.
func coalesceBursts(accs []memtrace.Access, block uint64, rate float64, rng *rand.Rand) []memtrace.Access {
	out := make([]memtrace.Access, 0, len(accs))
	for _, a := range accs {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Kind == a.Kind && last.End(int(block)) == a.Addr &&
				uint64(last.Count)+uint64(a.Count) <= math.MaxUint32 &&
				rng.Float64() < rate {
				last.Count += a.Count
				continue
			}
		}
		out = append(out, a)
	}
	return out
}

// dropRecords removes each record independently with probability rate.
func dropRecords(accs []memtrace.Access, rate float64, rng *rand.Rand) []memtrace.Access {
	out := accs[:0]
	for _, a := range accs {
		if rng.Float64() < rate {
			continue
		}
		out = append(out, a)
	}
	return out
}
