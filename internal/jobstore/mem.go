package jobstore

import (
	"context"
	"sync"
	"time"
)

// memJob is one job's full in-memory state.
type memJob struct {
	job             Job
	state           State
	attempt         int
	worker          string
	err             string
	result          []byte
	submittedAt     time.Time
	claimedAt       time.Time
	leaseExpiry     time.Time
	cancelRequested bool
	completions     int
	cancelFn        func()        // CancelWatcher hook for the live claim
	done            chan struct{} // closed on terminal transition
}

// Mem is the in-process store: a bounded FIFO queue with lease-based claim
// tracking. It is revcnnd's default and keeps the original single-process
// semantics — instant claim wakeups via Notify and instant cancellation via
// the CancelWatcher fast path.
type Mem struct {
	mu       sync.Mutex
	opt      Options
	jobs     map[string]*memJob
	queue    []string // FIFO of queued job IDs; re-queued retries go to the front
	leased   map[string]struct{}
	terminal []string // terminal IDs in completion order, for retention eviction
	notify   chan struct{}
	closed   bool

	claimed, retried, orphaned, completed int64
}

// NewMem builds an in-memory store.
func NewMem(opt Options) *Mem {
	opt.fillDefaults()
	return &Mem{
		opt:    opt,
		jobs:   make(map[string]*memJob),
		leased: make(map[string]struct{}),
		notify: make(chan struct{}, 1),
	}
}

var _ Store = (*Mem)(nil)
var _ CancelWatcher = (*Mem)(nil)

func (m *Mem) pulse() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// Submit implements Store.
func (m *Mem) Submit(j Job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if len(m.queue) >= m.opt.QueueDepth {
		return ErrFull
	}
	if _, dup := m.jobs[j.ID]; dup {
		return ErrTerminal // ID reuse is a caller bug; refuse rather than clobber
	}
	m.jobs[j.ID] = &memJob{
		job:         j,
		state:       StateQueued,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
	}
	m.queue = append(m.queue, j.ID)
	m.pulse()
	return nil
}

// sweepLocked re-queues or orphans expired leases. Called with mu held.
func (m *Mem) sweepLocked(now time.Time) {
	for id := range m.leased {
		j := m.jobs[id]
		if j == nil || j.state != StateRunning || now.Before(j.leaseExpiry) {
			continue
		}
		delete(m.leased, id)
		j.cancelFn = nil
		j.worker = ""
		switch {
		case j.cancelRequested:
			m.terminalizeLocked(id, j, StateCancelled, "cancelled while lease expired")
		case j.attempt-1 >= m.opt.MaxRetries:
			m.orphaned++
			m.terminalizeLocked(id, j, StateFailed, "lease expired; retry cap exhausted")
		default:
			m.retried++
			j.state = StateQueued
			m.queue = append([]string{id}, m.queue...) // retries resume first
			m.pulse()
		}
	}
}

// terminalizeLocked moves a job into a final state. Called with mu held.
func (m *Mem) terminalizeLocked(id string, j *memJob, st State, reason string) {
	j.state = st
	if j.err == "" {
		j.err = reason
	}
	j.cancelFn = nil
	close(j.done)
	m.terminal = append(m.terminal, id)
	for len(m.terminal) > m.opt.RetainTerminal {
		evict := m.terminal[0]
		m.terminal = m.terminal[1:]
		delete(m.jobs, evict)
	}
}

// Claim implements Store.
func (m *Mem) Claim(worker string, lease time.Duration) (*Claim, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	now := time.Now()
	m.sweepLocked(now)
	if len(m.queue) == 0 {
		return nil, ErrEmpty
	}
	id := m.queue[0]
	m.queue = m.queue[1:]
	j := m.jobs[id]
	j.state = StateRunning
	j.worker = worker
	j.attempt++
	j.claimedAt = now
	j.leaseExpiry = now.Add(lease)
	m.leased[id] = struct{}{}
	m.claimed++
	return &Claim{
		ID:          id,
		Payload:     j.job.Payload,
		Attempt:     j.attempt,
		Deadline:    j.job.Deadline,
		SubmittedAt: j.submittedAt,
		ClaimedAt:   now,
	}, nil
}

// ownedLocked returns the job iff (id, worker, attempt) is the live claim.
func (m *Mem) ownedLocked(id, worker string, attempt int) (*memJob, error) {
	j := m.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	if j.state != StateRunning || j.worker != worker || j.attempt != attempt {
		return nil, ErrLost
	}
	return j, nil
}

// Heartbeat implements Store.
func (m *Mem) Heartbeat(id, worker string, attempt int, lease time.Duration) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, err := m.ownedLocked(id, worker, attempt)
	if err != nil {
		return false, err
	}
	j.leaseExpiry = time.Now().Add(lease)
	return j.cancelRequested, nil
}

// Complete implements Store.
func (m *Mem) Complete(id, worker string, attempt int, result []byte, failure string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, err := m.ownedLocked(id, worker, attempt)
	if err != nil {
		return err
	}
	delete(m.leased, id)
	j.result = result
	j.err = failure
	j.completions++
	m.completed++
	st := StateDone
	switch {
	case j.cancelRequested:
		st = StateCancelled
	case failure != "":
		st = StateFailed
	}
	m.terminalizeLocked(id, j, st, failure)
	return nil
}

// Fetch implements Store.
func (m *Mem) Fetch(id string) (*Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	return snapshotLocked(id, j), nil
}

func snapshotLocked(id string, j *memJob) *Record {
	return &Record{
		ID:              id,
		State:           j.state,
		Attempt:         j.attempt,
		Worker:          j.worker,
		Err:             j.err,
		Result:          j.result,
		SubmittedAt:     j.submittedAt,
		ClaimedAt:       j.claimedAt,
		LeaseExpiry:     j.leaseExpiry,
		CancelRequested: j.cancelRequested,
		Completions:     j.completions,
	}
}

// Cancel implements Store.
func (m *Mem) Cancel(id string) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.jobs[id]
	if j == nil {
		return false, ErrNotFound
	}
	if j.state.Terminal() {
		return false, ErrTerminal
	}
	j.cancelRequested = true
	if j.state == StateQueued {
		for i, qid := range m.queue {
			if qid == id {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.terminalizeLocked(id, j, StateCancelled, "cancelled while queued")
		return true, nil
	}
	if fn := j.cancelFn; fn != nil {
		j.cancelFn = nil
		go fn() // outside the claim's critical sections; fn must be idempotent
	}
	return false, nil
}

// WatchCancel implements CancelWatcher.
func (m *Mem) WatchCancel(id string, attempt int, fn func()) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil || j.state != StateRunning || j.attempt != attempt {
		m.mu.Unlock()
		return
	}
	if j.cancelRequested {
		m.mu.Unlock()
		fn()
		return
	}
	j.cancelFn = fn
	m.mu.Unlock()
}

// Wait implements Store.
func (m *Mem) Wait(ctx context.Context, id string) (*Record, error) {
	m.mu.Lock()
	j := m.jobs[id]
	if j == nil {
		m.mu.Unlock()
		return nil, ErrNotFound
	}
	done := j.done
	m.mu.Unlock()
	select {
	case <-done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return snapshotLocked(id, j), nil
}

// Notify implements Store.
func (m *Mem) Notify() <-chan struct{} { return m.notify }

// Stats implements Store.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sweepLocked(time.Now())
	return Stats{
		Queued:    len(m.queue),
		Leased:    len(m.leased),
		Claimed:   m.claimed,
		Retried:   m.retried,
		Orphaned:  m.orphaned,
		Completed: m.completed,
	}
}

// Close implements Store.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	return nil
}
