// Package jobstore is the pluggable queue behind revcnnd's horizontal
// scale-out: a stateless HTTP frontend submits attack jobs, a pool of
// workers — in the same process or in N separate revcnnd processes sharing
// one store — claims them under a lease, and crash recovery falls out of
// lease expiry: a worker that dies mid-job stops heartbeating, its lease
// expires, and the next Claim re-queues the job (bounded by a retry cap)
// for another worker to pick up.
//
// Two implementations ship:
//
//   - Mem (NewMem): the zero-dependency in-process queue. This is the
//     default revcnnd store and preserves the single-process service's
//     original bounded-queue behavior.
//   - FS (OpenFS): a shared filesystem store — one directory, flock-guarded
//     per-job records — so multiple revcnnd processes on one host (or a
//     shared volume) drain a common queue.
//
// Completion is exactly-once: Claim hands out an (ID, Attempt) pair, and
// Complete/Heartbeat from a stale attempt — one whose lease expired and was
// re-claimed — fail with ErrLost, so a worker that stalls past its lease
// and then wakes up cannot double-deliver a result.
package jobstore

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"time"
)

// State is a job's lifecycle position.
type State string

const (
	// StateQueued jobs are waiting for a worker.
	StateQueued State = "queued"
	// StateRunning jobs are claimed under a live (or expired-but-unswept)
	// lease.
	StateRunning State = "running"
	// StateDone jobs completed and carry a result.
	StateDone State = "done"
	// StateFailed jobs exhausted their retry cap after repeated lease
	// expiries (orphaned), or were completed with a failure.
	StateFailed State = "failed"
	// StateCancelled jobs were cancelled before (queued) or during
	// (running, acknowledged by the worker) execution.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one submission.
type Job struct {
	// ID must be unique across every process sharing the store; NewID
	// generates a suitable one.
	ID string
	// Payload is the opaque serialized request; the store never interprets
	// it.
	Payload []byte
	// Deadline, when nonzero, is the job's absolute execution deadline.
	// Queue wait counts against it: workers bound the job context by this
	// time regardless of when the claim happens.
	Deadline time.Time
}

// Claim is a leased job handed to a worker. The (ID, Attempt) pair is the
// worker's completion credential: Heartbeat and Complete verify it, so a
// claim that outlives its lease and is re-issued to another worker can no
// longer act on the job.
type Claim struct {
	ID          string
	Payload     []byte
	Attempt     int
	Deadline    time.Time
	SubmittedAt time.Time
	ClaimedAt   time.Time
}

// Record is a point-in-time snapshot of a job's stored state.
type Record struct {
	ID              string
	State           State
	Attempt         int
	Worker          string
	Err             string // failure/cancellation reason for terminal states
	Result          []byte // set once State == StateDone (and for failed completions that carried one)
	SubmittedAt     time.Time
	ClaimedAt       time.Time
	LeaseExpiry     time.Time
	CancelRequested bool
	// Completions counts accepted Complete calls — the exactly-once
	// invariant is Completions <= 1 for every job, which the kill-a-worker
	// e2e asserts after lease re-claims.
	Completions int
}

// Stats is a store occupancy/lifecycle snapshot. The counters are
// process-local views for the FS store (each process counts the claims and
// sweeps it performed); the gauges reflect the shared state.
type Stats struct {
	Queued    int   // jobs waiting for a worker
	Leased    int   // jobs claimed under a lease
	Claimed   int64 // claims handed out (includes re-claims)
	Retried   int64 // expired leases re-queued
	Orphaned  int64 // jobs failed after exhausting the retry cap
	Completed int64 // accepted Complete calls
}

// Store errors. Implementations return these sentinel values (possibly
// wrapped) so callers can branch with errors.Is.
var (
	// ErrFull rejects a submission because the queue is at capacity.
	ErrFull = errors.New("jobstore: queue full")
	// ErrEmpty reports that no job is currently claimable.
	ErrEmpty = errors.New("jobstore: nothing to claim")
	// ErrNotFound reports an unknown (or swept) job ID.
	ErrNotFound = errors.New("jobstore: job not found")
	// ErrLost reports that the caller's claim is no longer valid: the lease
	// expired and the job was re-queued, re-claimed, or orphaned.
	ErrLost = errors.New("jobstore: claim lost")
	// ErrTerminal rejects an operation on a job already in a final state.
	ErrTerminal = errors.New("jobstore: job already terminal")
	// ErrClosed reports operations on a closed store.
	ErrClosed = errors.New("jobstore: store closed")
)

// Store is the pluggable job queue contract. All methods are safe for
// concurrent use; Claim is non-blocking (ErrEmpty when nothing is ready) —
// callers wait on Notify between attempts.
type Store interface {
	// Submit enqueues a job. ErrFull when the queue is at capacity.
	Submit(j Job) error
	// Claim leases the oldest claimable job to worker for the given
	// duration. It also performs lease recovery: expired leases are
	// re-queued (and become claimable in the same pass) or orphaned when
	// the retry cap is exhausted. ErrEmpty when nothing is claimable.
	Claim(worker string, lease time.Duration) (*Claim, error)
	// Heartbeat extends the lease of a claim and reports whether
	// cancellation of the job has been requested. ErrLost when the claim
	// is no longer valid.
	Heartbeat(id, worker string, attempt int, lease time.Duration) (cancelRequested bool, err error)
	// Complete finishes a claimed job: failure == "" stores the result and
	// marks it done; a nonempty failure marks it failed. A job whose
	// cancellation was requested terminalizes as cancelled either way.
	// ErrLost when the claim is no longer valid — the result is discarded
	// and whoever holds the live claim remains responsible for the job.
	Complete(id, worker string, attempt int, result []byte, failure string) error
	// Fetch returns a snapshot of the job.
	Fetch(id string) (*Record, error)
	// Cancel requests cancellation. A queued job terminalizes immediately
	// (wasQueued true); a running job has its cancellation flagged for the
	// worker's next heartbeat (wasQueued false). ErrTerminal if already
	// final.
	Cancel(id string) (wasQueued bool, err error)
	// Wait blocks until the job reaches a terminal state or ctx expires.
	Wait(ctx context.Context, id string) (*Record, error)
	// Notify returns a channel pulsed when a job may have become
	// claimable. Pulses are best-effort (coalesced, may be spurious);
	// claim loops must also poll on a coarse fallback interval.
	Notify() <-chan struct{}
	// Stats returns an occupancy and lifecycle snapshot.
	Stats() Stats
	// Close releases the store's resources. In-flight claims held by other
	// processes (FS store) are unaffected.
	Close() error
}

// CancelWatcher is an optional fast path stores can provide: when the
// current claim of id matches attempt, fn is invoked as soon as
// cancellation is requested, instead of waiting for the next heartbeat.
// The in-memory store implements it, giving the single-process deployment
// its original instant client-disconnect cancellation.
type CancelWatcher interface {
	WatchCancel(id string, attempt int, fn func())
}

// Options parameterizes a store.
type Options struct {
	// QueueDepth bounds how many jobs may wait for a worker (default 8).
	// For the FS store the bound is per-submitter and approximate: each
	// process enforces it against its latest scan of the shared directory.
	QueueDepth int
	// MaxRetries is how many times an expired lease may be re-queued
	// before the job is orphaned (default 2, so a job runs at most
	// 1+MaxRetries attempts). Negative disables retries entirely.
	MaxRetries int
	// RetainTerminal caps how many terminal records the in-memory store
	// keeps for Fetch/Wait after completion (default 1024, FIFO-evicted).
	RetainTerminal int
	// RetainFor is how long the FS store keeps terminal records before
	// sweeping their files (default 1h).
	RetainFor time.Duration
	// PollInterval is the FS store's scan/notify period (default 25ms).
	PollInterval time.Duration
}

func (o *Options) fillDefaults() {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.RetainTerminal <= 0 {
		o.RetainTerminal = 1024
	}
	if o.RetainFor <= 0 {
		o.RetainFor = time.Hour
	}
	if o.PollInterval <= 0 {
		o.PollInterval = 25 * time.Millisecond
	}
}

// NewID returns a job ID unique across processes (64 random bits).
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("jobstore: crypto/rand unavailable: " + err.Error())
	}
	return "j" + hex.EncodeToString(b[:])
}
