package jobstore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// stores returns a factory per implementation so every conformance test
// runs against both.
func stores(t *testing.T) map[string]func(opt Options) Store {
	t.Helper()
	return map[string]func(opt Options) Store{
		"mem": func(opt Options) Store { return NewMem(opt) },
		"fs": func(opt Options) Store {
			if opt.PollInterval == 0 {
				opt.PollInterval = 5 * time.Millisecond // keep lease tests fast
			}
			s, err := OpenFS(t.TempDir(), opt)
			if err != nil {
				t.Fatalf("OpenFS: %v", err)
			}
			return s
		},
	}
}

func eachStore(t *testing.T, opt Options, fn func(t *testing.T, s Store)) {
	for name, mk := range stores(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(opt)
			defer s.Close()
			fn(t, s)
		})
	}
}

func TestSubmitClaimComplete(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		id := NewID()
		deadline := time.Now().Add(time.Minute)
		if err := s.Submit(Job{ID: id, Payload: []byte("req"), Deadline: deadline}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		c, err := s.Claim("w1", time.Minute)
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		if c.ID != id || !bytes.Equal(c.Payload, []byte("req")) || c.Attempt != 1 {
			t.Fatalf("claim = %+v", c)
		}
		if c.Deadline.Sub(deadline) > time.Millisecond || deadline.Sub(c.Deadline) > time.Millisecond {
			t.Fatalf("deadline drifted: got %v want %v", c.Deadline, deadline)
		}
		if cancel, err := s.Heartbeat(id, "w1", 1, time.Minute); err != nil || cancel {
			t.Fatalf("Heartbeat = %v, %v", cancel, err)
		}
		if err := s.Complete(id, "w1", 1, []byte("res"), ""); err != nil {
			t.Fatalf("Complete: %v", err)
		}
		rec, err := s.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch: %v", err)
		}
		if rec.State != StateDone || !bytes.Equal(rec.Result, []byte("res")) || rec.Completions != 1 {
			t.Fatalf("record = %+v", rec)
		}
	})
}

func TestQueueDepthRejects(t *testing.T) {
	eachStore(t, Options{QueueDepth: 2}, func(t *testing.T, s Store) {
		for i := 0; i < 2; i++ {
			if err := s.Submit(Job{ID: NewID()}); err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
		}
		if err := s.Submit(Job{ID: NewID()}); !errors.Is(err, ErrFull) {
			t.Fatalf("Submit over depth = %v, want ErrFull", err)
		}
		// Draining one makes room again.
		if _, err := s.Claim("w1", time.Minute); err != nil {
			t.Fatalf("Claim: %v", err)
		}
		if err := s.Submit(Job{ID: NewID()}); err != nil {
			t.Fatalf("Submit after claim: %v", err)
		}
	})
}

func TestClaimEmptyAndFIFO(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		if _, err := s.Claim("w1", time.Minute); !errors.Is(err, ErrEmpty) {
			t.Fatalf("Claim on empty = %v, want ErrEmpty", err)
		}
		var ids []string
		for i := 0; i < 3; i++ {
			id := fmt.Sprintf("j-fifo-%d", i)
			ids = append(ids, id)
			if err := s.Submit(Job{ID: id}); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			time.Sleep(2 * time.Millisecond) // distinct SubmittedAt for the fs store
		}
		for i, want := range ids {
			c, err := s.Claim("w1", time.Minute)
			if err != nil {
				t.Fatalf("Claim %d: %v", i, err)
			}
			if c.ID != want {
				t.Fatalf("claim %d = %s, want %s (FIFO)", i, c.ID, want)
			}
		}
	})
}

func TestCancelQueued(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		id := NewID()
		if err := s.Submit(Job{ID: id}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		wasQueued, err := s.Cancel(id)
		if err != nil || !wasQueued {
			t.Fatalf("Cancel = %v, %v; want queued cancel", wasQueued, err)
		}
		rec, err := s.Wait(context.Background(), id)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if rec.State != StateCancelled {
			t.Fatalf("state = %s, want cancelled", rec.State)
		}
		if _, err := s.Claim("w1", time.Minute); !errors.Is(err, ErrEmpty) {
			t.Fatalf("cancelled job still claimable: %v", err)
		}
		if _, err := s.Cancel(id); !errors.Is(err, ErrTerminal) {
			t.Fatalf("Cancel terminal = %v, want ErrTerminal", err)
		}
	})
}

func TestCancelRunningFlagsHeartbeat(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		id := NewID()
		if err := s.Submit(Job{ID: id}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := s.Claim("w1", time.Minute); err != nil {
			t.Fatalf("Claim: %v", err)
		}
		wasQueued, err := s.Cancel(id)
		if err != nil || wasQueued {
			t.Fatalf("Cancel running = %v, %v; want flagged not queued", wasQueued, err)
		}
		cancel, err := s.Heartbeat(id, "w1", 1, time.Minute)
		if err != nil || !cancel {
			t.Fatalf("Heartbeat after cancel = %v, %v; want cancelRequested", cancel, err)
		}
		if err := s.Complete(id, "w1", 1, nil, ""); err != nil {
			t.Fatalf("Complete: %v", err)
		}
		rec, _ := s.Fetch(id)
		if rec.State != StateCancelled {
			t.Fatalf("state = %s, want cancelled (cancel acknowledged)", rec.State)
		}
	})
}

func TestLeaseExpiryReclaimExactlyOnce(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		id := NewID()
		if err := s.Submit(Job{ID: id, Payload: []byte("p")}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := s.Claim("dead", 10*time.Millisecond); err != nil {
			t.Fatalf("Claim: %v", err)
		}
		time.Sleep(20 * time.Millisecond) // let the lease lapse

		c2, err := s.Claim("alive", time.Minute) // sweep re-queues, same pass re-claims
		if err != nil {
			t.Fatalf("re-Claim after expiry: %v", err)
		}
		if c2.ID != id || c2.Attempt != 2 {
			t.Fatalf("re-claim = %+v, want attempt 2", c2)
		}
		// The dead worker wakes up: its credentials are stale.
		if _, err := s.Heartbeat(id, "dead", 1, time.Minute); !errors.Is(err, ErrLost) {
			t.Fatalf("stale Heartbeat = %v, want ErrLost", err)
		}
		if err := s.Complete(id, "dead", 1, []byte("stale"), ""); !errors.Is(err, ErrLost) {
			t.Fatalf("stale Complete = %v, want ErrLost", err)
		}
		if err := s.Complete(id, "alive", 2, []byte("good"), ""); err != nil {
			t.Fatalf("live Complete: %v", err)
		}
		rec, _ := s.Fetch(id)
		if rec.State != StateDone || !bytes.Equal(rec.Result, []byte("good")) || rec.Completions != 1 {
			t.Fatalf("record = %+v; want exactly-once good result", rec)
		}
		if st := s.Stats(); st.Retried < 1 {
			t.Fatalf("Stats.Retried = %d, want >= 1", st.Retried)
		}
	})
}

func TestRetryCapOrphans(t *testing.T) {
	eachStore(t, Options{MaxRetries: 1}, func(t *testing.T, s Store) {
		id := NewID()
		if err := s.Submit(Job{ID: id}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		for attempt := 1; attempt <= 2; attempt++ {
			c, err := s.Claim(fmt.Sprintf("w%d", attempt), 5*time.Millisecond)
			if err != nil {
				t.Fatalf("Claim attempt %d: %v", attempt, err)
			}
			if c.Attempt != attempt {
				t.Fatalf("attempt = %d, want %d", c.Attempt, attempt)
			}
			time.Sleep(15 * time.Millisecond)
		}
		// Second expiry exhausts MaxRetries=1: the next sweep orphans it.
		if _, err := s.Claim("w3", time.Minute); !errors.Is(err, ErrEmpty) {
			t.Fatalf("Claim after cap = %v, want ErrEmpty (orphaned)", err)
		}
		rec, err := s.Fetch(id)
		if err != nil {
			t.Fatalf("Fetch: %v", err)
		}
		if rec.State != StateFailed || rec.Err == "" {
			t.Fatalf("record = %+v; want failed with reason", rec)
		}
		if st := s.Stats(); st.Orphaned < 1 {
			t.Fatalf("Stats.Orphaned = %d, want >= 1", st.Orphaned)
		}
	})
}

func TestWaitBlocksUntilTerminal(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		id := NewID()
		if err := s.Submit(Job{ID: id}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer cancel()
		if _, err := s.Wait(ctx, id); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("Wait on live job = %v, want deadline", err)
		}
		done := make(chan *Record, 1)
		go func() {
			rec, err := s.Wait(context.Background(), id)
			if err != nil {
				t.Errorf("Wait: %v", err)
			}
			done <- rec
		}()
		if _, err := s.Claim("w1", time.Minute); err != nil {
			t.Fatalf("Claim: %v", err)
		}
		if err := s.Complete(id, "w1", 1, []byte("r"), ""); err != nil {
			t.Fatalf("Complete: %v", err)
		}
		select {
		case rec := <-done:
			if rec.State != StateDone {
				t.Fatalf("state = %s", rec.State)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("Wait did not return after completion")
		}
	})
}

func TestFetchUnknownAndDuplicateSubmit(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		if _, err := s.Fetch("j-missing"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Fetch missing = %v, want ErrNotFound", err)
		}
		if _, err := s.Wait(context.Background(), "j-missing"); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Wait missing = %v, want ErrNotFound", err)
		}
		id := NewID()
		if err := s.Submit(Job{ID: id}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if err := s.Submit(Job{ID: id}); err == nil {
			t.Fatal("duplicate Submit accepted")
		}
	})
}

func TestFailedCompletion(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		id := NewID()
		if err := s.Submit(Job{ID: id}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if _, err := s.Claim("w1", time.Minute); err != nil {
			t.Fatalf("Claim: %v", err)
		}
		if err := s.Complete(id, "w1", 1, nil, "victim model too large"); err != nil {
			t.Fatalf("Complete: %v", err)
		}
		rec, _ := s.Fetch(id)
		if rec.State != StateFailed || rec.Err != "victim model too large" {
			t.Fatalf("record = %+v", rec)
		}
	})
}

func TestConcurrentClaimsNoDoubleIssue(t *testing.T) {
	eachStore(t, Options{QueueDepth: 64}, func(t *testing.T, s Store) {
		const jobs = 16
		for i := 0; i < jobs; i++ {
			if err := s.Submit(Job{ID: fmt.Sprintf("j-conc-%02d", i)}); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		var mu sync.Mutex
		seen := map[string]int{}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				name := fmt.Sprintf("w%d", w)
				for {
					c, err := s.Claim(name, time.Minute)
					if errors.Is(err, ErrEmpty) {
						return
					}
					if err != nil {
						t.Errorf("Claim: %v", err)
						return
					}
					mu.Lock()
					seen[c.ID]++
					mu.Unlock()
					if err := s.Complete(c.ID, name, c.Attempt, nil, ""); err != nil {
						t.Errorf("Complete: %v", err)
					}
				}
			}(w)
		}
		wg.Wait()
		if len(seen) != jobs {
			t.Fatalf("claimed %d distinct jobs, want %d", len(seen), jobs)
		}
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("job %s claimed %d times", id, n)
			}
		}
	})
}

func TestMemWatchCancelFastPath(t *testing.T) {
	s := NewMem(Options{})
	defer s.Close()
	id := NewID()
	if err := s.Submit(Job{ID: id}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := s.Claim("w1", time.Minute); err != nil {
		t.Fatalf("Claim: %v", err)
	}
	fired := make(chan struct{})
	s.WatchCancel(id, 1, func() { close(fired) })
	if _, err := s.Cancel(id); err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	select {
	case <-fired:
	case <-time.After(time.Second):
		t.Fatal("WatchCancel did not fire")
	}
	// Registering after the fact fires immediately.
	fired2 := make(chan struct{})
	s.WatchCancel(id, 1, func() { close(fired2) })
	select {
	case <-fired2:
	case <-time.After(time.Second):
		t.Fatal("late WatchCancel did not fire")
	}
}

func TestMemTerminalRetention(t *testing.T) {
	s := NewMem(Options{RetainTerminal: 2, QueueDepth: 16})
	defer s.Close()
	var ids []string
	for i := 0; i < 4; i++ {
		id := fmt.Sprintf("j-ret-%d", i)
		ids = append(ids, id)
		if err := s.Submit(Job{ID: id}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		c, err := s.Claim("w1", time.Minute)
		if err != nil {
			t.Fatalf("Claim: %v", err)
		}
		if err := s.Complete(c.ID, "w1", c.Attempt, nil, ""); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
	for _, id := range ids[:2] {
		if _, err := s.Fetch(id); !errors.Is(err, ErrNotFound) {
			t.Fatalf("evicted %s still present: %v", id, err)
		}
	}
	for _, id := range ids[2:] {
		if _, err := s.Fetch(id); err != nil {
			t.Fatalf("retained %s missing: %v", id, err)
		}
	}
}

// TestFSSharedDirectory is the cross-process shape in miniature: two FS
// handles on one directory, submit through one, drain through the other.
func TestFSSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	opt := Options{PollInterval: 5 * time.Millisecond}
	front, err := OpenFS(dir, opt)
	if err != nil {
		t.Fatalf("OpenFS front: %v", err)
	}
	defer front.Close()
	worker, err := OpenFS(dir, opt)
	if err != nil {
		t.Fatalf("OpenFS worker: %v", err)
	}
	defer worker.Close()

	id := NewID()
	if err := front.Submit(Job{ID: id, Payload: []byte("shared")}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	c, err := worker.Claim("other-proc", time.Minute)
	if err != nil {
		t.Fatalf("Claim via second handle: %v", err)
	}
	if c.ID != id || !bytes.Equal(c.Payload, []byte("shared")) {
		t.Fatalf("claim = %+v", c)
	}
	if err := worker.Complete(id, "other-proc", 1, []byte("out"), ""); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	rec, err := front.Wait(context.Background(), id)
	if err != nil {
		t.Fatalf("Wait via first handle: %v", err)
	}
	if rec.State != StateDone || !bytes.Equal(rec.Result, []byte("out")) {
		t.Fatalf("record = %+v", rec)
	}
}

func TestClosedStoreRejects(t *testing.T) {
	eachStore(t, Options{}, func(t *testing.T, s Store) {
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		if err := s.Submit(Job{ID: NewID()}); !errors.Is(err, ErrClosed) {
			t.Fatalf("Submit after close = %v, want ErrClosed", err)
		}
		if _, err := s.Claim("w1", time.Minute); !errors.Is(err, ErrClosed) {
			t.Fatalf("Claim after close = %v, want ErrClosed", err)
		}
	})
}
