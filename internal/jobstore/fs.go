package jobstore

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// FS is the shared filesystem store: every revcnnd process pointed at the
// same directory drains one queue. A single flock-guarded lock file
// serializes mutations across processes (job-granular work makes the lock
// cheap), job records are small JSON files renamed into place atomically,
// and payloads/results live in separate write-once files so heartbeats
// never rewrite megabytes of trace data.
//
// Layout under the root directory:
//
//	.lock        cross-process mutex (flock)
//	jobs/        <id>.json per-job record
//	payload/     <id> opaque request bytes (removed on completion)
//	result/      <id> opaque result bytes
//	tmp/         staging for atomic renames
type FS struct {
	root string
	opt  Options

	mu     sync.Mutex // serializes goroutines in this process; flock handles other processes
	lockf  *os.File
	notify chan struct{}
	stopc  chan struct{}
	closed atomic.Bool

	claimed, retried, orphaned, completed atomic.Int64
}

// fsRecord is the on-disk job record. Times are UnixNano; zero means unset.
type fsRecord struct {
	ID              string `json:"id"`
	State           State  `json:"state"`
	Attempt         int    `json:"attempt"`
	Worker          string `json:"worker,omitempty"`
	Err             string `json:"err,omitempty"`
	SubmittedAt     int64  `json:"submitted_at"`
	ClaimedAt       int64  `json:"claimed_at,omitempty"`
	LeaseExpiry     int64  `json:"lease_expiry,omitempty"`
	CompletedAt     int64  `json:"completed_at,omitempty"`
	Deadline        int64  `json:"deadline,omitempty"`
	CancelRequested bool   `json:"cancel_requested,omitempty"`
	Completions     int    `json:"completions"`
	HasResult       bool   `json:"has_result,omitempty"`
}

// OpenFS opens (creating if needed) a shared store rooted at dir.
func OpenFS(dir string, opt Options) (*FS, error) {
	opt.fillDefaults()
	for _, sub := range []string{"", "jobs", "payload", "result", "tmp"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("jobstore: create %s: %w", sub, err)
		}
	}
	lockf, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: open lock file: %w", err)
	}
	f := &FS{
		root:   dir,
		opt:    opt,
		lockf:  lockf,
		notify: make(chan struct{}, 1),
		stopc:  make(chan struct{}),
	}
	go f.notifyLoop()
	return f, nil
}

var _ Store = (*FS)(nil)

// notifyLoop pulses the notify channel every PollInterval. The FS store has
// no cross-process wakeup channel, so claim loops poll on this cadence.
func (f *FS) notifyLoop() {
	t := time.NewTicker(f.opt.PollInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stopc:
			return
		case <-t.C:
			select {
			case f.notify <- struct{}{}:
			default:
			}
		}
	}
}

// lock takes the process-local mutex then the cross-process flock.
func (f *FS) lock() error {
	if f.closed.Load() {
		return ErrClosed
	}
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		return ErrClosed
	}
	if err := syscall.Flock(int(f.lockf.Fd()), syscall.LOCK_EX); err != nil {
		f.mu.Unlock()
		return fmt.Errorf("jobstore: flock: %w", err)
	}
	return nil
}

func (f *FS) unlock() {
	syscall.Flock(int(f.lockf.Fd()), syscall.LOCK_UN)
	f.mu.Unlock()
}

func (f *FS) recordPath(id string) string  { return filepath.Join(f.root, "jobs", id+".json") }
func (f *FS) payloadPath(id string) string { return filepath.Join(f.root, "payload", id) }
func (f *FS) resultPath(id string) string  { return filepath.Join(f.root, "result", id) }

// writeFileAtomic stages data in tmp/ and renames it to path.
func (f *FS) writeFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Join(f.root, "tmp"), "stage-")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

func (f *FS) writeRecord(rec *fsRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	return f.writeFileAtomic(f.recordPath(rec.ID), data)
}

func (f *FS) readRecord(id string) (*fsRecord, error) {
	data, err := os.ReadFile(f.recordPath(id))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, err
	}
	var rec fsRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("jobstore: corrupt record %s: %w", id, err)
	}
	return &rec, nil
}

// scan reads every job record. Called with the lock held.
func (f *FS) scan() ([]*fsRecord, error) {
	entries, err := os.ReadDir(filepath.Join(f.root, "jobs"))
	if err != nil {
		return nil, err
	}
	recs := make([]*fsRecord, 0, len(entries))
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		rec, err := f.readRecord(strings.TrimSuffix(name, ".json"))
		if err != nil {
			continue // racing removal or corrupt leftovers; skip
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

// sweep handles lease recovery and terminal retention over a scan.
// Called with the lock held; returns recs with swept-away entries removed.
func (f *FS) sweep(recs []*fsRecord, now time.Time) []*fsRecord {
	kept := recs[:0]
	for _, rec := range recs {
		switch {
		case rec.State == StateRunning && now.UnixNano() >= rec.LeaseExpiry:
			rec.Worker = ""
			switch {
			case rec.CancelRequested:
				f.terminalize(rec, StateCancelled, "cancelled while lease expired", now)
			case rec.Attempt-1 >= f.opt.MaxRetries:
				f.orphaned.Add(1)
				f.terminalize(rec, StateFailed, "lease expired; retry cap exhausted", now)
			default:
				f.retried.Add(1)
				rec.State = StateQueued
				rec.LeaseExpiry = 0
				f.writeRecord(rec)
			}
			kept = append(kept, rec)
		case rec.State.Terminal() && now.Sub(time.Unix(0, rec.CompletedAt)) > f.opt.RetainFor:
			os.Remove(f.recordPath(rec.ID))
			os.Remove(f.resultPath(rec.ID))
		default:
			kept = append(kept, rec)
		}
	}
	return kept
}

// terminalize finalizes a record on disk. Called with the lock held.
func (f *FS) terminalize(rec *fsRecord, st State, reason string, now time.Time) {
	rec.State = st
	if rec.Err == "" {
		rec.Err = reason
	}
	rec.CompletedAt = now.UnixNano()
	os.Remove(f.payloadPath(rec.ID))
	f.writeRecord(rec)
}

// Submit implements Store.
func (f *FS) Submit(j Job) error {
	if err := f.lock(); err != nil {
		return err
	}
	defer f.unlock()
	recs, err := f.scan()
	if err != nil {
		return err
	}
	now := time.Now()
	recs = f.sweep(recs, now)
	queued := 0
	for _, rec := range recs {
		if rec.ID == j.ID {
			return ErrTerminal // ID reuse is a caller bug; refuse rather than clobber
		}
		if rec.State == StateQueued {
			queued++
		}
	}
	if queued >= f.opt.QueueDepth {
		return ErrFull
	}
	if err := f.writeFileAtomic(f.payloadPath(j.ID), j.Payload); err != nil {
		return err
	}
	var deadline int64
	if !j.Deadline.IsZero() {
		deadline = j.Deadline.UnixNano()
	}
	return f.writeRecord(&fsRecord{
		ID:          j.ID,
		State:       StateQueued,
		SubmittedAt: now.UnixNano(),
		Deadline:    deadline,
	})
}

// Claim implements Store.
func (f *FS) Claim(worker string, lease time.Duration) (*Claim, error) {
	if err := f.lock(); err != nil {
		return nil, err
	}
	defer f.unlock()
	recs, err := f.scan()
	if err != nil {
		return nil, err
	}
	now := time.Now()
	recs = f.sweep(recs, now)
	var pick *fsRecord
	for _, rec := range recs {
		if rec.State != StateQueued {
			continue
		}
		// Oldest first; a re-queued retry keeps its original SubmittedAt and
		// so naturally resumes ahead of younger submissions.
		if pick == nil || rec.SubmittedAt < pick.SubmittedAt {
			pick = rec
		}
	}
	if pick == nil {
		return nil, ErrEmpty
	}
	payload, err := os.ReadFile(f.payloadPath(pick.ID))
	if err != nil {
		return nil, fmt.Errorf("jobstore: payload %s: %w", pick.ID, err)
	}
	pick.State = StateRunning
	pick.Worker = worker
	pick.Attempt++
	pick.ClaimedAt = now.UnixNano()
	pick.LeaseExpiry = now.Add(lease).UnixNano()
	if err := f.writeRecord(pick); err != nil {
		return nil, err
	}
	f.claimed.Add(1)
	var deadline time.Time
	if pick.Deadline != 0 {
		deadline = time.Unix(0, pick.Deadline)
	}
	return &Claim{
		ID:          pick.ID,
		Payload:     payload,
		Attempt:     pick.Attempt,
		Deadline:    deadline,
		SubmittedAt: time.Unix(0, pick.SubmittedAt),
		ClaimedAt:   now,
	}, nil
}

// owned loads the record iff (id, worker, attempt) is the live claim.
// Called with the lock held.
func (f *FS) owned(id, worker string, attempt int) (*fsRecord, error) {
	rec, err := f.readRecord(id)
	if err != nil {
		return nil, err
	}
	if rec.State != StateRunning || rec.Worker != worker || rec.Attempt != attempt {
		return nil, ErrLost
	}
	// An expired-but-unswept lease is already lost: another process's next
	// Claim will re-queue it, so acting on it here would race that recovery.
	if time.Now().UnixNano() >= rec.LeaseExpiry {
		return nil, ErrLost
	}
	return rec, nil
}

// Heartbeat implements Store.
func (f *FS) Heartbeat(id, worker string, attempt int, lease time.Duration) (bool, error) {
	if err := f.lock(); err != nil {
		return false, err
	}
	defer f.unlock()
	rec, err := f.owned(id, worker, attempt)
	if err != nil {
		return false, err
	}
	rec.LeaseExpiry = time.Now().Add(lease).UnixNano()
	if err := f.writeRecord(rec); err != nil {
		return false, err
	}
	return rec.CancelRequested, nil
}

// Complete implements Store.
func (f *FS) Complete(id, worker string, attempt int, result []byte, failure string) error {
	if err := f.lock(); err != nil {
		return err
	}
	defer f.unlock()
	rec, err := f.owned(id, worker, attempt)
	if err != nil {
		return err
	}
	if result != nil {
		if err := f.writeFileAtomic(f.resultPath(id), result); err != nil {
			return err
		}
		rec.HasResult = true
	}
	rec.Err = failure
	rec.Completions++
	f.completed.Add(1)
	st := StateDone
	switch {
	case rec.CancelRequested:
		st = StateCancelled
	case failure != "":
		st = StateFailed
	}
	f.terminalize(rec, st, failure, time.Now())
	return nil
}

// Fetch implements Store.
func (f *FS) Fetch(id string) (*Record, error) {
	if err := f.lock(); err != nil {
		return nil, err
	}
	defer f.unlock()
	rec, err := f.readRecord(id)
	if err != nil {
		return nil, err
	}
	var result []byte
	if rec.HasResult {
		result, err = os.ReadFile(f.resultPath(id))
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	return recordFromFS(rec, result), nil
}

func recordFromFS(rec *fsRecord, result []byte) *Record {
	r := &Record{
		ID:              rec.ID,
		State:           rec.State,
		Attempt:         rec.Attempt,
		Worker:          rec.Worker,
		Err:             rec.Err,
		Result:          result,
		SubmittedAt:     time.Unix(0, rec.SubmittedAt),
		CancelRequested: rec.CancelRequested,
		Completions:     rec.Completions,
	}
	if rec.ClaimedAt != 0 {
		r.ClaimedAt = time.Unix(0, rec.ClaimedAt)
	}
	if rec.LeaseExpiry != 0 {
		r.LeaseExpiry = time.Unix(0, rec.LeaseExpiry)
	}
	return r
}

// Cancel implements Store.
func (f *FS) Cancel(id string) (bool, error) {
	if err := f.lock(); err != nil {
		return false, err
	}
	defer f.unlock()
	rec, err := f.readRecord(id)
	if err != nil {
		return false, err
	}
	if rec.State.Terminal() {
		return false, ErrTerminal
	}
	rec.CancelRequested = true
	if rec.State == StateQueued {
		f.terminalize(rec, StateCancelled, "cancelled while queued", time.Now())
		return true, nil
	}
	return false, f.writeRecord(rec)
}

// Wait implements Store. The FS store has no cross-process completion
// signal, so Wait polls at the store's PollInterval.
func (f *FS) Wait(ctx context.Context, id string) (*Record, error) {
	t := time.NewTicker(f.opt.PollInterval)
	defer t.Stop()
	for {
		rec, err := f.Fetch(id)
		if err != nil {
			return nil, err
		}
		if rec.State.Terminal() {
			return rec, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Notify implements Store.
func (f *FS) Notify() <-chan struct{} { return f.notify }

// Stats implements Store. Gauges reflect the shared directory; counters are
// this process's contribution.
func (f *FS) Stats() Stats {
	st := Stats{
		Claimed:   f.claimed.Load(),
		Retried:   f.retried.Load(),
		Orphaned:  f.orphaned.Load(),
		Completed: f.completed.Load(),
	}
	if err := f.lock(); err != nil {
		return st
	}
	defer f.unlock()
	recs, err := f.scan()
	if err != nil {
		return st
	}
	recs = f.sweep(recs, time.Now())
	for _, rec := range recs {
		switch rec.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Leased++
		}
	}
	return st
}

// Close implements Store. The shared directory is left intact for other
// processes; only this process's handles stop.
func (f *FS) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	close(f.stopc)
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lockf.Close()
}
