//go:build !race

package weightrev

const raceEnabled = false
