package weightrev

import (
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// benchOracleQuery measures one CountChannel device query against a
// multi-layer victim (LeNet: conv-conv-fc-fc) with layer 0 as the target.
// Full mode simulates all four layers and scans the whole trace (the
// pre-prefix reference); prefix mode stops after the target layer and
// reads only its region of the trace.
func benchOracleQuery(b *testing.B, fullRun bool) {
	net := nn.LeNet(10)
	net.InitWeights(3)
	o, err := NewTraceOracle(net, accel.Config{}, 0)
	if err != nil {
		b.Fatal(err)
	}
	o.fullRun = fullRun
	pixels := []Pixel{{C: 0, Y: 3, X: 4, V: 0.5}}
	want := o.CountChannel(0, pixels) // warm the session pool
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := o.CountChannel(0, pixels); got != want {
			b.Fatalf("count changed: %d vs %d", got, want)
		}
	}
}

func BenchmarkOracleQuery_Full(b *testing.B)   { benchOracleQuery(b, true) }
func BenchmarkOracleQuery_Prefix(b *testing.B) { benchOracleQuery(b, false) }
