package weightrev

import (
	"fmt"
	"math"
	"sync/atomic"

	"cnnrev/internal/nn"
	"cnnrev/internal/tensor"
)

// This file extends the paper's single-layer weight attack (§4) to whole
// stacks of convolutional layers — the "duplicated model" end goal its
// threat model states. The key observation: once layer k−1's weight/bias
// ratios are known, the adversary can craft a device input that makes layer
// k's input feature map a *single non-zero pixel* of dialable magnitude,
// and then rerun Algorithm 2 against layer k's compressed write streams.
//
// The injected magnitude is only known up to the (unrecovered) bias scale
// of the producing channel, so layer k's weights are recovered as scaled
// ratios ρ_k = w_k·β_k/b_k, where β_k is the bias of the injection channel
// one layer up. Everything composes in these normalized units:
//
//	ν_0 = v (the device dial),   ν_k = 1 + ρ*_{k−1}·ν_{k−1},
//
// a pixel is non-zero iff 1 + ρ·ν < 0 (all biases negative), and a layer-k
// crossing at ν* yields ρ_k = −1/ν*. An L-layer network is thus reduced to
// L unknown scalars — the per-layer generalization of the paper's "each
// weight can be expressed as a function of one bias value".
//
// Injectability requirement: to isolate channel e of layer k−1, e must own
// the extreme ρ in some dial direction of some ladder (otherwise another
// channel turns on first and the feature map is not a single pixel). This
// depends on the victim's weights, just as the paper's pooled attack
// depends on negative biases; Recover reports channels it cannot isolate.

// StackOracle answers per-layer non-zero counts for a stack of conv layers
// — what the per-layer compressed write streams leak. Queries run the full
// (dense) forward pass, so it suits the small stacks the peeling extension
// demonstrates. Each query works on its own buffers against read-only
// network parameters, with an atomic query counter, so the oracle is safe
// for concurrent LayerCounts calls.
type StackOracle struct {
	net     *nn.Network
	queries atomic.Int64
}

// NewStackOracle validates that every layer of net is an unpooled,
// unpadded conv layer with strictly negative biases (the regime the
// peeling construction needs) and returns the oracle.
func NewStackOracle(net *nn.Network) (*StackOracle, error) {
	for i := range net.Specs {
		spec := &net.Specs[i]
		if spec.Kind != nn.KindConv || spec.Pool != nn.PoolNone || spec.P != 0 {
			return nil, fmt.Errorf("weightrev: stack oracle requires unpooled, unpadded conv layers (layer %d)", i)
		}
		if !spec.ReLU {
			return nil, fmt.Errorf("weightrev: stack oracle requires ReLU layers (layer %d)", i)
		}
		for _, b := range net.Params[i].B.Data {
			if b >= 0 {
				return nil, fmt.Errorf("weightrev: peeling requires negative biases (layer %d)", i)
			}
		}
	}
	return &StackOracle{net: net}, nil
}

// Queries returns the number of device inferences issued.
func (o *StackOracle) Queries() int { return int(o.queries.Load()) }

// LayerCounts runs one inference and returns the per-channel non-zero
// counts of the given layer's output feature map.
func (o *StackOracle) LayerCounts(layer int, pixels []Pixel) []int {
	o.queries.Add(1)
	in := o.net.Input
	x := make([]float32, in.Len())
	for _, p := range pixels {
		x[(p.C*in.H+p.Y)*in.W+p.X] += p.V
	}
	acts := o.forwardAll(x)
	shape := o.net.Shapes[layer]
	counts := make([]int, shape.C)
	plane := shape.H * shape.W
	for c := 0; c < shape.C; c++ {
		for _, v := range acts[layer][c*plane : (c+1)*plane] {
			if v != 0 {
				counts[c]++
			}
		}
	}
	return counts
}

// forwardAll computes every layer's activation (plain inference).
func (o *StackOracle) forwardAll(x []float32) [][]float32 {
	acts := make([][]float32, len(o.net.Specs))
	cur := x
	curShape := o.net.Input
	for i := range o.net.Specs {
		spec := &o.net.Specs[i]
		outShape := o.net.Shapes[i]
		out := make([]float32, outShape.Len())
		conv := convKernel{inC: curShape.C, outC: spec.OutC, f: spec.F, s: spec.S}
		conv.forward(cur, curShape.H, curShape.W, o.net.Params[i].W.Data, o.net.Params[i].B.Data, out, outShape.H, outShape.W)
		acts[i] = out
		cur = out
		curShape = outShape
	}
	return acts
}

// convKernel is a minimal direct convolution + ReLU used by the oracle.
type convKernel struct{ inC, outC, f, s int }

func (k convKernel) forward(in []float32, h, w int, weights, bias, out []float32, oh, ow int) {
	for d := 0; d < k.outC; d++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				sum := bias[d]
				for c := 0; c < k.inC; c++ {
					for ky := 0; ky < k.f; ky++ {
						for kx := 0; kx < k.f; kx++ {
							iy, ix := oy*k.s+ky, ox*k.s+kx
							sum += weights[((d*k.inC+c)*k.f+ky)*k.f+kx] * in[(c*h+iy)*w+ix]
						}
					}
				}
				if sum > 0 {
					out[(d*oh+oy)*ow+ox] = sum
				}
			}
		}
	}
}

// StackRecovery holds the peeled ratios. Layer 0 carries plain w/b ratios;
// layer k ≥ 1 carries ρ = w·β/b with β the injection channel's bias one
// layer up.
//
// For layer 0, Zero marks weights identified as exactly zero (the paper's
// missing-crossing rule). For deeper layers, inputs are post-ReLU and hence
// non-negative, so a single-pixel probe can only drive outputs *upward*:
// after Recover, Zero there means "non-positive or out of range". A second
// pass with RecoverNegativeDeep applies Eq-10-style pinning to recover the
// genuinely negative weights where the geometry permits (stride ≥ 2 and
// non-interfering probes). Unreachable marks input channels with no
// feasible injection.
type StackRecovery struct {
	// Ratios[k][d][c][ky][kx]
	Ratios [][][][][]float64
	Zero   [][][][][]bool
	// Unreachable[k][c] marks layer-k input channels with no feasible
	// injection.
	Unreachable [][]bool
	Queries     int
}

// injector produces a single-pixel delta in a layer's input feature map.
type injector struct {
	// pixelFor maps a desired delta position to the device input pixel.
	pixelFor func(y, x int) (Pixel, bool)
	// nuOf maps the device dial to the normalized delta magnitude ν.
	nuOf func(v float64) float64
	// vLo/vHi is the dial window within which the delta is the only
	// non-zero pixel of the layer input.
	vLo, vHi float64
}

// StackAttacker peels a conv stack.
type StackAttacker struct {
	O     *StackOracle
	Net   *nn.Network // structure only (geometry is public via the §3 attack)
	XMax  float64
	Iters int
	// Serial forces each layer's (filter, input channel) recovery tasks
	// onto a plain sequential loop — the reference mode the parallel path
	// must match bit for bit.
	Serial bool

	// injByLayer[k][c] is the injector driving channel c of layer k's input
	// feature map (populated by Recover; consumed by RecoverNegativeDeep).
	injByLayer [][]*injector
}

// NewStackAttacker returns an attacker with default search parameters.
func NewStackAttacker(o *StackOracle, net *nn.Network) *StackAttacker {
	return &StackAttacker{O: o, Net: net, XMax: 64, Iters: 48}
}

// Recover peels every layer of the stack.
func (a *StackAttacker) Recover() (*StackRecovery, error) {
	L := len(a.Net.Specs)
	rec := &StackRecovery{
		Ratios:      make([][][][][]float64, L),
		Zero:        make([][][][][]bool, L),
		Unreachable: make([][]bool, L),
	}

	// Level-0 injectors: device pixels themselves (ν = v, full dial range).
	in := a.Net.Input
	inj := make([]*injector, in.C)
	for c := 0; c < in.C; c++ {
		c := c
		inj[c] = &injector{
			pixelFor: func(y, x int) (Pixel, bool) {
				if y < 0 || y >= in.H || x < 0 || x >= in.W {
					return Pixel{}, false
				}
				return Pixel{C: c, Y: y, X: x}, true
			},
			nuOf: func(v float64) float64 { return v },
			vLo:  -a.XMax,
			vHi:  a.XMax,
		}
	}

	a.injByLayer = make([][]*injector, L)
	curIn := in
	for k := 0; k < L; k++ {
		spec := &a.Net.Specs[k]
		a.injByLayer[k] = inj
		rec.Unreachable[k] = make([]bool, curIn.C)
		ratios, zeros, err := a.recoverLayer(k, curIn, spec, inj, rec)
		if err != nil {
			return nil, err
		}
		rec.Ratios[k] = ratios
		rec.Zero[k] = zeros
		if k+1 < L {
			inj = a.buildInjectors(curIn, spec, inj, ratios, zeros)
		}
		curIn = a.Net.Shapes[k]
	}
	rec.Queries = a.O.Queries()
	return rec, nil
}

// recoverLayer runs Algorithm 2 against layer k through the per-channel
// injectors, searching in dial units and converting crossings to ν units.
func (a *StackAttacker) recoverLayer(k int, in nn.Shape, spec *nn.LayerSpec, inj []*injector, rec *StackRecovery) ([][][][]float64, [][][][]bool, error) {
	f := spec.F
	ratios := make([][][][]float64, spec.OutC)
	zeros := make([][][][]bool, spec.OutC)
	for d := range ratios {
		ratios[d] = make([][][]float64, in.C)
		zeros[d] = make([][][]bool, in.C)
		for c := range ratios[d] {
			ratios[d][c] = alloc2(f)
			zeros[d][c] = alloc2b(f)
		}
	}
	// crossings in ν units, NaN for zero/unknown.
	cross := make([][][][]float64, spec.OutC)
	for d := range cross {
		cross[d] = make([][][]float64, in.C)
		for c := range cross[d] {
			cross[d][c] = alloc2(f)
		}
	}

	// Unreachable input channels are filled serially (no queries needed);
	// every reachable (input channel, filter) pair becomes an independent
	// recovery task. Within one pair the kernel positions must run in
	// raster order — position (ky,kx)'s predicted crossings come from
	// earlier positions of the same cross[d][c] — but no task reads another
	// task's slices and the oracle is a pure function of the query, so the
	// tasks fan out across the shared tensor pool (unless Serial) with
	// bit-identical results in any schedule.
	type task struct{ c, d int }
	var tasks []task
	for c := 0; c < in.C; c++ {
		if inj[c] == nil {
			rec.Unreachable[k][c] = true
			for d := 0; d < spec.OutC; d++ {
				for ky := 0; ky < f; ky++ {
					for kx := 0; kx < f; kx++ {
						zeros[d][c][ky][kx] = true
						cross[d][c][ky][kx] = math.NaN()
					}
				}
			}
			continue
		}
		for d := 0; d < spec.OutC; d++ {
			tasks = append(tasks, task{c: c, d: d})
		}
	}

	errs := make([]error, len(tasks))
	run := func(ti int) {
		c, d := tasks[ti].c, tasks[ti].d
		ij := inj[c]
		for ky := 0; ky < f; ky++ {
			for kx := 0; kx < f; kx++ {
				pix, ok := ij.pixelFor(ky, kx)
				if !ok {
					errs[ti] = fmt.Errorf("weightrev: probe position (%d,%d) unmappable at layer %d", ky, kx, k)
					return
				}
				// Predicted crossings (in dial units) from already
				// recovered weights reachable from this probe pixel.
				var predicted []float64
				for m := 0; m*spec.S <= ky; m++ {
					for n := 0; n*spec.S <= kx; n++ {
						if m == 0 && n == 0 {
							continue
						}
						cr := cross[d][c][ky-m*spec.S][kx-n*spec.S]
						if v, ok := a.dialForNu(ij, cr); ok {
							predicted = append(predicted, v)
						}
					}
				}
				vStar, found := a.findStackCrossing(k, d, pix, ij, predicted)
				if !found {
					zeros[d][c][ky][kx] = true
					cross[d][c][ky][kx] = math.NaN()
					continue
				}
				nu := ij.nuOf(vStar)
				cross[d][c][ky][kx] = nu
				ratios[d][c][ky][kx] = -1 / nu
			}
		}
	}
	if a.Serial {
		for ti := range tasks {
			run(ti)
		}
	} else {
		tensor.Parallel(len(tasks), run)
	}
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return ratios, zeros, nil
}

// dialForNu inverts the injector's affine ν(v) for a target ν, reporting
// whether the dial stays within the injector's window.
func (a *StackAttacker) dialForNu(ij *injector, nu float64) (float64, bool) {
	if math.IsNaN(nu) {
		return 0, false
	}
	n0, n1 := ij.nuOf(ij.vLo), ij.nuOf(ij.vHi)
	if n1 == n0 {
		return 0, false
	}
	v := ij.vLo + (nu-n0)*(ij.vHi-ij.vLo)/(n1-n0)
	if v <= math.Min(ij.vLo, ij.vHi) || v >= math.Max(ij.vLo, ij.vHi) {
		return 0, false
	}
	return v, true
}

// findStackCrossing scans the injector's dial window for a count step of
// layer k channel d unexplained by the predicted crossings.
func (a *StackAttacker) findStackCrossing(k, d int, pix Pixel, ij *injector, predicted []float64) (float64, bool) {
	count := func(v float64) int {
		pix.V = float32(v)
		return a.O.LayerCounts(k, []Pixel{pix})[d]
	}
	return scanCrossing(count, ij.vLo, ij.vHi, predicted, a.Iters)
}

// buildInjectors constructs, per next-layer input channel, an injector
// through the just-recovered layer: the channel owning the extreme ρ of
// some stride-residue ladder can be isolated; others are reported
// unreachable when the next layer runs.
func (a *StackAttacker) buildInjectors(in nn.Shape, spec *nn.LayerSpec, inj []*injector, ratios [][][][]float64, zeros [][][][]bool) []*injector {
	next := make([]*injector, spec.OutC)
	for e := 0; e < spec.OutC; e++ {
		next[e] = a.planInjection(e, in, spec, inj, ratios, zeros)
	}
	return next
}

// planInjection searches all (source channel, kernel position, dial
// direction) combinations that make output channel e of the layer the
// strictly first to activate, and returns the feasible injector with the
// largest normalized-magnitude headroom (a narrow window may not reach the
// next layer's crossings), or nil if e cannot be isolated.
func (a *StackAttacker) planInjection(e int, in nn.Shape, spec *nn.LayerSpec, inj []*injector, ratios [][][][]float64, zeros [][][][]bool) *injector {
	f, s := spec.F, spec.S
	var best *injector
	bestHeadroom := 0.0
	for c := 0; c < in.C; c++ {
		src := inj[c]
		if src == nil {
			continue
		}
		for ky := 0; ky < f; ky++ {
			for kx := 0; kx < f; kx++ {
				if zeros[e][c][ky][kx] {
					continue
				}
				rho := ratios[e][c][ky][kx]
				// An interior probe pixel at IFM position (y·s+ky, x·s+kx)
				// reaches, across output windows, every kernel position in
				// the same stride-residue class (ky mod s, kx mod s) — of
				// every output channel. The target must be the strictly
				// largest same-sign ρ in that whole class, and the nearest
				// same-sign competitor caps the usable ν window.
				dominant := true
				nuTarget := -1 / rho // the target turns on past this ν
				nuLimit := math.Inf(1) * sign(nuTarget)
				for d := 0; d < spec.OutC && dominant; d++ {
					for ry := ky % s; ry < f && dominant; ry += s {
						for rx := kx % s; rx < f && dominant; rx += s {
							if d == e && ry == ky && rx == kx {
								continue
							}
							if zeros[d][c][ry][rx] {
								continue
							}
							r := ratios[d][c][ry][rx]
							if r*rho <= 0 {
								continue // opposite dial direction
							}
							if math.Abs(r) >= math.Abs(rho) {
								dominant = false
								continue
							}
							cr := -1 / r
							if math.Abs(cr) < math.Abs(nuLimit) {
								nuLimit = cr
							}
						}
					}
				}
				if !dominant {
					continue
				}
				// Dial window: ν from just past the target crossing to just
				// before the first competitor (or the source window edge).
				margin := 1e-3 * (1 + math.Abs(nuTarget))
				nuFrom := nuTarget + sign(nuTarget)*margin
				var nuTo float64
				if math.IsInf(nuLimit, 0) {
					// Use the source injector's reachable extreme, pulled
					// just inside the window.
					nuTo = ij2extreme(src, sign(nuTarget))
					nuTo -= sign(nuTo-nuFrom) * 1e-6 * (1 + math.Abs(nuTo))
				} else {
					nuTo = nuLimit - sign(nuLimit)*1e-3*(1+math.Abs(nuLimit))
				}
				vFrom, ok1 := a.dialForNu(src, nuFrom)
				vTo, ok2 := a.dialForNu(src, nuTo)
				if !ok1 || !ok2 || vFrom == vTo {
					continue
				}
				// Headroom: the largest normalized magnitude this injector
				// can deliver into the next layer.
				headroom := math.Abs(1 + rho*nuTo)
				if headroom <= bestHeadroom {
					continue
				}
				cky, ckx := ky, kx
				rhoStar := rho
				srcNu := src.nuOf
				srcPix := src.pixelFor
				best = &injector{
					pixelFor: func(y, x int) (Pixel, bool) {
						return srcPix(y*s+cky, x*s+ckx)
					},
					nuOf: func(v float64) float64 {
						return 1 + rhoStar*srcNu(v)
					},
					vLo: math.Min(vFrom, vTo),
					vHi: math.Max(vFrom, vTo),
				}
				bestHeadroom = headroom
			}
		}
	}
	return best
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}

// ij2extreme returns the ν value at the injector window edge in the given
// direction.
func ij2extreme(ij *injector, dir float64) float64 {
	a, b := ij.nuOf(ij.vLo), ij.nuOf(ij.vHi)
	if dir < 0 {
		return math.Min(a, b)
	}
	return math.Max(a, b)
}

// RecoverNegativeDeep revisits layer-k weights that single-pixel probing
// classified as non-positive (k ≥ 1) and recovers the genuinely negative
// ones with the paper's Eq-10 pinning idea: a second delta, placed in the
// stride-aligned corner block so that it reaches *only* output (0,0),
// passes through an already-recovered positive weight and lifts that
// output above zero; dialing the target delta then drives it back across
// the boundary, exposing −(1 + ρ_pin·ν_pin)/ν* = ρ_target.
//
// Requirements per weight: layer k's stride ≥ 2 (so a pin position exists
// that reaches no other output), a recovered positive pin weight in the
// [0,S)² block of the same (filter, input channel), and device probes far
// enough apart that no intermediate activation sees both deltas. Weights
// it cannot reach stay flagged. It returns the number recovered and
// updates rec in place (Zero cleared, Ratios set).
func (a *StackAttacker) RecoverNegativeDeep(rec *StackRecovery, k int) (int, error) {
	if k < 1 || k >= len(a.Net.Specs) {
		return 0, fmt.Errorf("weightrev: RecoverNegativeDeep needs an inner layer index")
	}
	if a.injByLayer == nil {
		return 0, fmt.Errorf("weightrev: run Recover first")
	}
	spec := &a.Net.Specs[k]
	sK, f := spec.S, spec.F
	if sK < 2 {
		return 0, nil // no output-exclusive pin block exists
	}
	// Interference bound: two probes must not share any activation at the
	// previous conv level.
	prevF := a.Net.Specs[k-1].F
	prevS := a.Net.Specs[k-1].S

	recovered := 0
	inC := a.Net.InShapes[k][0].C
	for d := 0; d < spec.OutC; d++ {
		for c := 0; c < inC; c++ {
			ij := a.injByLayer[k][c]
			if ij == nil {
				continue
			}
			// A pin inside [0,S)² reaches only output (0,0); it must carry a
			// recovered positive weight (ρ > 0 ⇔ w > 0 for negative biases).
			pinY, pinX := -1, -1
			for py := 0; py < sK && pinY < 0; py++ {
				for px := 0; px < sK; px++ {
					if !rec.Zero[k][d][c][py][px] && rec.Ratios[k][d][c][py][px] > 0 {
						pinY, pinX = py, px
						break
					}
				}
			}
			if pinY < 0 {
				continue
			}
			// Pin dial: past the pin's own crossing with some margin, inside
			// the injector window.
			rhoPin := rec.Ratios[k][d][c][pinY][pinX]
			nuOn := -1 / rhoPin * 1.5 // 50% past the crossing
			vPin, ok := a.dialForNu(ij, nuOn)
			if !ok {
				// Fall back to the deepest reachable ν.
				vPin, ok = a.dialForNu(ij, ij2extreme(ij, -1)*0.99)
				if !ok {
					continue
				}
			}
			nuPin := ij.nuOf(vPin)
			if 1+rhoPin*nuPin >= 0 {
				continue // pin cannot lift the output
			}
			pinPix, okP := ij.pixelFor(pinY, pinX)
			if !okP {
				continue
			}

			for ky := 0; ky < f; ky++ {
				for kx := 0; kx < f; kx++ {
					if !rec.Zero[k][d][c][ky][kx] {
						continue // already recovered
					}
					if ky == pinY && kx == pinX {
						continue
					}
					// Probe separation at the previous conv level.
					sepY := abs(ky-pinY) * prevS
					sepX := abs(kx-pinX) * prevS
					if sepY < prevF && sepX < prevF {
						continue // probes would share an activation
					}
					tgtPix, okT := ij.pixelFor(ky, kx)
					if !okT {
						continue
					}
					// Predicted crossings of the target delta's other
					// affected outputs (known positive weights only; the pin
					// does not reach them, negatives stay off).
					var predicted []float64
					for m := 0; m*sK <= ky; m++ {
						for n := 0; n*sK <= kx; n++ {
							if m == 0 && n == 0 {
								continue
							}
							r := rec.Ratios[k][d][c][ky-m*sK][kx-n*sK]
							if rec.Zero[k][d][c][ky-m*sK][kx-n*sK] || r <= 0 {
								continue
							}
							if v, ok := a.dialForNu(ij, -1/r); ok {
								predicted = append(predicted, v)
							}
						}
					}
					pinned := pinPix
					pinned.V = float32(vPin)
					count := func(v float64) int {
						probe := tgtPix
						probe.V = float32(v)
						return a.O.LayerCounts(k, []Pixel{pinned, probe})[d]
					}
					vStar, found := scanCrossing(count, ij.vLo, ij.vHi, predicted, a.Iters)
					if !found {
						continue // genuinely (near) zero
					}
					nuStar := ij.nuOf(vStar)
					rho := -(1 + rhoPin*nuPin) / nuStar
					if rho >= 0 {
						continue // crossing explained otherwise; stay flagged
					}
					rec.Ratios[k][d][c][ky][kx] = rho
					rec.Zero[k][d][c][ky][kx] = false
					recovered++
				}
			}
		}
	}
	return recovered, nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
