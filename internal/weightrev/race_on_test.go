//go:build race

package weightrev

// raceEnabled reports that this binary was built with the race detector,
// whose instrumentation allocates — the steady-state allocation pins skip
// under it and run in the non-race CI job instead.
const raceEnabled = true
