package weightrev

import (
	"math/rand"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// fullRunOracle builds a TraceOracle pinned to the pre-prefix reference
// path: simulate every layer, scan the whole trace.
func fullRunOracle(t *testing.T, net *nn.Network, cfg accel.Config, layer int) *TraceOracle {
	t.Helper()
	o, err := NewTraceOracle(net, cfg, layer)
	if err != nil {
		t.Fatal(err)
	}
	o.fullRun = true
	return o
}

// TestPrefixOracleMatchesFullRun: the region-scoped prefix oracle must
// report exactly the counts the whole-trace full-run reference reports, on
// a multi-layer victim (downstream conv/pool/FC layers present) for both
// target-layer choices, single- and multi-pixel queries, jitter on and
// off, and through SetThreshold retunes.
func TestPrefixOracleMatchesFullRun(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(3)
	cfgs := []accel.Config{
		{},
		{CycleJitter: 0.05, NoiseSeed: 11},
	}
	for ci, cfg := range cfgs {
		for _, layer := range []int{0, 1} { // conv1, conv2
			prefix, err := NewTraceOracle(net, cfg, layer)
			if err != nil {
				t.Fatal(err)
			}
			full := fullRunOracle(t, net, cfg, layer)
			rng := rand.New(rand.NewSource(int64(100*ci + layer)))
			in := net.Input
			for q := 0; q < 25; q++ {
				npix := 1 + rng.Intn(3)
				pixels := make([]Pixel, npix)
				for i := range pixels {
					pixels[i] = Pixel{
						C: rng.Intn(in.C), Y: rng.Intn(in.H), X: rng.Intn(in.W),
						V: float32(rng.Float64()*4 - 2),
					}
				}
				pc := prefix.Counts(pixels)
				fc := full.Counts(pixels)
				if len(pc) != len(fc) {
					t.Fatalf("cfg%d layer%d: count lengths %d vs %d", ci, layer, len(pc), len(fc))
				}
				for d := range pc {
					if pc[d] != fc[d] {
						t.Fatalf("cfg%d layer%d q%d: channel %d count %d (prefix) vs %d (full)", ci, layer, q, d, pc[d], fc[d])
					}
					if got := prefix.CountChannel(d, pixels); got != fc[d] {
						t.Fatalf("cfg%d layer%d q%d: CountChannel(%d) = %d, want %d", ci, layer, q, d, got, fc[d])
					}
				}
			}
			// Threshold retune must flow through the prefix path too.
			prefix.SetThreshold(0.05)
			full.SetThreshold(0.05)
			pix := []Pixel{{C: 0, Y: 2, X: 3, V: 1.5}}
			for d := 0; d < net.Shapes[layer].C; d++ {
				if got, want := prefix.CountChannel(d, pix), full.CountChannel(d, pix); got != want {
					t.Fatalf("cfg%d layer%d post-threshold: CountChannel(%d) = %d, want %d", ci, layer, d, got, want)
				}
			}
			// A single-channel read is still exactly one device inference.
			before := prefix.Queries()
			prefix.CountChannel(0, pix)
			if got := prefix.Queries() - before; got != 1 {
				t.Fatalf("cfg%d layer%d: CountChannel issued %d queries, want 1", ci, layer, got)
			}
			prefix.SetThreshold(0)
			full.SetThreshold(0)
		}
	}
}

// TestCountChannelAllocs pins the single-channel oracle path allocation
// free: one bisection step must not pay for count slices or trace copies.
func TestCountChannelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pinned in the non-race job")
	}
	net := nn.LeNet(10)
	net.InitWeights(3)
	o, err := NewTraceOracle(net, accel.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pixels := []Pixel{{C: 0, Y: 1, X: 2, V: 0.8}}
	o.CountChannel(0, pixels) // warm the session pool
	allocs := testing.AllocsPerRun(200, func() {
		o.CountChannel(0, pixels)
	})
	// Same tolerance as the accel Session.Run pin: the session arena is
	// allocation-free in steady state; allow at most one stray allocation
	// for rare sync.Pool internals.
	if allocs > 1 {
		t.Fatalf("CountChannel allocates %.1f times per query, want 0 (tolerance 1)", allocs)
	}
}

// TestCountChannelRejectsBadChannel: out-of-range channels must fail loudly
// (the old implementation panicked via slice indexing; keep that contract).
func TestCountChannelRejectsBadChannel(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(3)
	o, err := NewTraceOracle(net, accel.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range channel")
		}
	}()
	o.CountChannel(6, nil) // LeNet conv1 has channels 0..5
}
