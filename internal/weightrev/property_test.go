package weightrev

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// TestQuickRecoverRandomGeometry: for random unpadded conv geometries,
// random sign-mixed weights and random non-zero biases, Algorithm 2 must
// recover every w/b ratio within 2^-10 and classify every exact zero.
func TestQuickRecoverRandomGeometry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fk := 1 + rng.Intn(5)       // kernel 1..5
		s := 1 + rng.Intn(fk)       // stride ≤ F
		inC := 1 + rng.Intn(2)      // 1-2 channels
		w := 2*fk + 2 + rng.Intn(8) // input wide enough for F ≤ W/2
		outC := 1 + rng.Intn(2)     // 1-2 filters
		spec := nn.LayerSpec{Name: "conv", Kind: nn.KindConv, OutC: outC, F: fk, S: s, ReLU: true}
		net, err := nn.New("victim", nn.Shape{C: inC, H: w, W: w}, []nn.LayerSpec{spec})
		if err != nil {
			t.Log(err)
			return false
		}
		for i := range net.Params[0].W.Data {
			if rng.Float64() < 0.2 {
				net.Params[0].W.Data[i] = 0
				continue
			}
			m := 0.05 + 0.3*rng.Float64()
			if rng.Intn(2) == 0 {
				m = -m
			}
			net.Params[0].W.Data[i] = float32(m)
		}
		for d := 0; d < outC; d++ {
			b := 0.02 + 0.1*rng.Float64()
			if rng.Intn(2) == 0 {
				b = -b
			}
			net.Params[0].B.Data[d] = float32(b)
		}

		o, err := NewFastOracle(net, accel.Config{}, 0)
		if err != nil {
			t.Log(err)
			return false
		}
		at := NewAttacker(o, Geometry{In: net.Input, OutC: outC, F: fk, S: s, P: 0})
		for d := 0; d < outC; d++ {
			got, err := at.RecoverFilterRatios(d)
			if err != nil {
				t.Log(err)
				return false
			}
			b := float64(net.Params[0].B.Data[d])
			for c := 0; c < inC; c++ {
				for ky := 0; ky < fk; ky++ {
					for kx := 0; kx < fk; kx++ {
						wv := float64(net.Params[0].W.Data[((d*inC+c)*fk+ky)*fk+kx])
						if wv == 0 {
							if !got.Zero[c][ky][kx] {
								t.Logf("seed %d: zero missed at d%d c%d (%d,%d)", seed, d, c, ky, kx)
								return false
							}
							continue
						}
						if got.Zero[c][ky][kx] {
							t.Logf("seed %d: spurious zero at d%d c%d (%d,%d), w=%g b=%g", seed, d, c, ky, kx, wv, b)
							return false
						}
						if e := math.Abs(got.Ratio[c][ky][kx] - wv/b); e > math.Pow(2, -10) {
							t.Logf("seed %d: err %g at d%d c%d (%d,%d)", seed, e, d, c, ky, kx)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOraclesAgreeRandom: the analytic oracle and the full trace-level
// simulation must agree for random geometries and queries.
func TestQuickOraclesAgreeRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fk := 1 + rng.Intn(4)
		s := 1 + rng.Intn(fk)
		p := rng.Intn(fk)
		w := 2*fk + 2 + rng.Intn(5)
		spec := nn.LayerSpec{Name: "conv", Kind: nn.KindConv, OutC: 2, F: fk, S: s, P: p, ReLU: true}
		if rng.Intn(2) == 0 {
			spec.Pool, spec.PoolF, spec.PoolS = nn.PoolMax, 2, 2
			if (w-fk+2*p)/s+1 < 3 {
				return true // pool would not fit; skip
			}
		}
		net, err := nn.New("victim", nn.Shape{C: 1, H: w, W: w}, []nn.LayerSpec{spec})
		if err != nil {
			return true // invalid random geometry; skip
		}
		net.InitWeights(seed)
		cfg := accel.Config{Threshold: float32(rng.Float64() * 0.05)}
		trace, err := NewTraceOracle(net, cfg, 0)
		if err != nil {
			t.Log(err)
			return false
		}
		fast, err := NewFastOracle(net, cfg, 0)
		if err != nil {
			t.Log(err)
			return false
		}
		for q := 0; q < 5; q++ {
			pix := []Pixel{{C: 0, Y: rng.Intn(w), X: rng.Intn(w), V: float32(rng.NormFloat64())}}
			a, b := trace.Counts(pix), fast.Counts(pix)
			for d := range a {
				if a[d] != b[d] {
					t.Logf("seed %d: oracle mismatch ch %d: %d vs %d (spec %+v)", seed, d, a[d], b[d], spec)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
