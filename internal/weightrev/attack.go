package weightrev

import (
	"context"
	"fmt"
	"math"

	"cnnrev/internal/nn"
	"cnnrev/internal/tensor"
)

// Geometry is the attacker's knowledge of the target layer's structure
// (obtained with the structure attack of §3).
type Geometry struct {
	In            nn.Shape
	OutC          int
	F, S, P       int
	Pool          nn.PoolKind
	PoolF, PoolS  int
	PoolBeforeAct bool
}

// Attacker drives the zero-crossing weight-recovery attack against an
// oracle.
type Attacker struct {
	O Oracle
	G Geometry
	// XMax bounds the probe-value search range; crossings beyond it (i.e.
	// |b/w| > XMax, extremely small weights) are reported as zero.
	XMax float64
	// Iters is the number of bisection refinements per crossing.
	Iters int
	// Serial forces RecoverAllFilters onto a plain sequential loop — the
	// reference mode the parallel path must match bit for bit.
	Serial bool
}

// NewAttacker returns an attacker with default search parameters.
func NewAttacker(o Oracle, g Geometry) *Attacker {
	return &Attacker{O: o, G: g, XMax: 64, Iters: 48}
}

// FilterRatios holds the recovered weight/bias ratios of one filter
// (output channel): Ratio[c][ky][kx] = w(c,ky,kx)/b, with Zero marking
// weights identified as zero (no crossing found — the paper's
// missing-zero-crossing rule).
type FilterRatios struct {
	Channel int
	Ratio   [][][]float64
	Zero    [][][]bool
}

// step searches [lo,hi] for the single count step of channel d when probe
// pixels[idx].V varies, and returns the crossing point.
func (a *Attacker) bisect(d int, pixels []Pixel, idx int, lo, hi float64) float64 {
	set := func(v float64) int {
		pixels[idx].V = float32(v)
		return a.O.CountChannel(d, pixels)
	}
	cLo := set(lo)
	for i := 0; i < a.Iters; i++ {
		mid := (lo + hi) / 2
		if set(mid) == cLo {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// findNewCrossing scans the probe range for a count step of channel d that
// is not explained by the predicted (already-known) crossings. It returns
// false only when no unexplained step exists anywhere (zero weight, or
// |b/w| beyond the search range).
func (a *Attacker) findNewCrossing(d int, pixels []Pixel, idx int, predicted []float64) (float64, bool) {
	count := func(v float64) int {
		pixels[idx].V = float32(v)
		return a.O.CountChannel(d, pixels)
	}
	return scanCrossing(count, -a.XMax, a.XMax, predicted, a.Iters)
}

// scanCrossing finds the crossing of an unexplained count step of the
// monotone-per-term step function count over [lo, hi]. Steps in the gaps
// between predicted crossings are bisected to full precision. A target
// crossing that coincides with a predicted one — common for quantized
// models, where many weights share a value — still betrays itself by the
// step across that point: k known flips of ±1 produce a net step of
// magnitude at most k with parity k, so any magnitude or parity anomaly
// means an extra (target) flip, and the crossing equals the predicted
// value.
func scanCrossing(count func(float64) int, lo, hi float64, predicted []float64, iters int) (float64, bool) {
	// Cluster predicted crossings, with margins exceeding both their
	// recovery error and the device's float32 quantization.
	var pts []float64
	for _, p := range predicted {
		if p > lo && p < hi {
			pts = append(pts, p)
		}
	}
	sortFloats(pts)
	type cluster struct {
		center float64
		k      int // number of predicted flips at this point
		lo, hi float64
	}
	var clusters []cluster
	for _, p := range pts {
		eps := 2e-5 * (1 + math.Abs(p))
		if n := len(clusters); n > 0 && p-eps <= clusters[n-1].hi {
			clusters[n-1].k++
			clusters[n-1].hi = p + eps
			continue
		}
		clusters = append(clusters, cluster{center: p, k: 1, lo: p - eps, hi: p + eps})
	}

	bisect := func(gl, gh float64) float64 {
		cl := count(gl)
		for i := 0; i < iters; i++ {
			mid := (gl + gh) / 2
			if count(mid) == cl {
				gl = mid
			} else {
				gh = mid
			}
		}
		return (gl + gh) / 2
	}

	// Walk the breakpoints left to right, evaluating each once.
	prevX := lo
	prevC := count(prevX)
	for _, cl := range clusters {
		if cl.lo <= prevX || cl.hi >= hi {
			continue // cluster clipped against the window; treat as gap
		}
		// Gap before this cluster.
		cLo := count(cl.lo)
		if cLo != prevC {
			return bisect(prevX, cl.lo), true
		}
		// Step across the cluster itself.
		cHi := count(cl.hi)
		step := cHi - cLo
		if absInt(step) > cl.k || (absInt(step)-cl.k)%2 != 0 {
			return cl.center, true // collision: target crossing ≈ predicted value
		}
		prevX, prevC = cl.hi, cHi
	}
	if count(hi) != prevC {
		return bisect(prevX, hi), true
	}
	return 0, false
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}

// RecoverFilterRatios runs Algorithm 2 for one output channel of an
// unpooled conv layer with zero padding (P = 0), recovering w/b for every
// weight. Probe pixels iterate in raster order from the corner; at pixel
// (ky,kx) every other affected output goes through an already-recovered
// weight, so its crossing is predictable and the one unexplained step
// reveals b/w(ky,kx).
func (a *Attacker) RecoverFilterRatios(d int) (*FilterRatios, error) {
	return a.RecoverFilterRatiosCtx(context.Background(), d)
}

// RecoverFilterRatiosCtx is RecoverFilterRatios with cooperative
// cancellation, checked before each weight's crossing search — one
// scan-plus-bisection, tens of oracle queries — so an abandoned attack
// stops within a single-weight boundary.
func (a *Attacker) RecoverFilterRatiosCtx(ctx context.Context, d int) (*FilterRatios, error) {
	g := a.G
	if g.Pool != nn.PoolNone {
		return nil, fmt.Errorf("weightrev: RecoverFilterRatios handles unpooled layers; use RecoverPooled* for fused pooling")
	}
	if g.P != 0 {
		return nil, fmt.Errorf("weightrev: corner iteration requires P=0 (padding makes corner weights unreachable in isolation)")
	}
	res := &FilterRatios{Channel: d}
	res.Ratio = make([][][]float64, g.In.C)
	res.Zero = make([][][]bool, g.In.C)
	// crossings[c][ky][kx] = -b/w, NaN when w = 0.
	crossings := make([][][]float64, g.In.C)
	for c := 0; c < g.In.C; c++ {
		res.Ratio[c] = alloc2(g.F)
		res.Zero[c] = alloc2b(g.F)
		crossings[c] = alloc2(g.F)
		for ky := 0; ky < g.F; ky++ {
			for kx := 0; kx < g.F; kx++ {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				// Predicted crossings: outputs (m,n) ≥ (0,0), m·S ≤ ky etc.,
				// reached through weight (ky−mS, kx−nS); all but (0,0) known.
				var predicted []float64
				for m := 0; m*g.S <= ky; m++ {
					for n := 0; n*g.S <= kx; n++ {
						if m == 0 && n == 0 {
							continue
						}
						pky, pkx := ky-m*g.S, kx-n*g.S
						cr := crossings[c][pky][pkx]
						if !math.IsNaN(cr) {
							predicted = append(predicted, cr)
						}
					}
				}
				pix := []Pixel{{C: c, Y: ky, X: kx}}
				cr, ok := a.findNewCrossing(d, pix, 0, predicted)
				if !ok {
					crossings[c][ky][kx] = math.NaN()
					res.Zero[c][ky][kx] = true
					continue
				}
				crossings[c][ky][kx] = cr
				res.Ratio[c][ky][kx] = -1 / cr // w/b = −1/(−b/w crossing)
			}
		}
	}
	return res, nil
}

// RecoverAllFilters recovers every output channel of the layer. Filters
// are independent — channel d's bisections read only channel d's
// compressed write stream, and its query values depend only on its own
// earlier crossings — so unless Serial is set they fan out across the
// shared tensor worker pool. The oracle must be safe for concurrent
// queries (TraceOracle and FastOracle are); results and Queries() totals
// are then bit-identical to the serial reference regardless of schedule.
// On failure the first error in channel order is returned.
func (a *Attacker) RecoverAllFilters(ctx context.Context) ([]*FilterRatios, error) {
	n := a.G.OutC
	if n <= 0 {
		return nil, fmt.Errorf("weightrev: geometry has %d output channels", n)
	}
	results := make([]*FilterRatios, n)
	errs := make([]error, n)
	run := func(d int) {
		results[d], errs[d] = a.RecoverFilterRatiosCtx(ctx, d)
	}
	if a.Serial {
		for d := 0; d < n; d++ {
			run(d)
		}
	} else {
		tensor.Parallel(n, run)
	}
	for d, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("weightrev: filter %d: %w", d, err)
		}
	}
	return results, nil
}

func alloc2(f int) [][]float64 {
	m := make([][]float64, f)
	for i := range m {
		m[i] = make([]float64, f)
	}
	return m
}

func alloc2b(f int) [][]bool {
	m := make([][]bool, f)
	for i := range m {
		m[i] = make([]bool, f)
	}
	return m
}

// RecoverPooled1x1 recovers w/b for a 1×1 convolution fused with 2×2/2
// pooling (max or average). Each probe pixel at an even coordinate affects
// exactly one conv output, whose pool window companions stay at the bias
// value; with a negative bias the pooled non-zero indicator flips exactly
// at the crossing (§4.1's F=1 case).
func (a *Attacker) RecoverPooled1x1(d int) ([]float64, []bool, error) {
	g := a.G
	if g.F != 1 || g.Pool == nn.PoolNone || g.PoolF != 2 || g.PoolS != 2 {
		return nil, nil, fmt.Errorf("weightrev: RecoverPooled1x1 requires F=1 with 2x2/2 pooling")
	}
	ratios := make([]float64, g.In.C)
	zeros := make([]bool, g.In.C)
	for c := 0; c < g.In.C; c++ {
		pix := []Pixel{{C: c, Y: 0, X: 0}}
		cr, ok := a.findNewCrossing(d, pix, 0, nil)
		if !ok {
			zeros[c] = true
			continue
		}
		ratios[c] = -1 / cr
	}
	return ratios, zeros, nil
}

// RecoverPooledPair implements the paper's Eq. (10)/(11) two-pixel method
// for an F×F convolution (S=1, P=0) fused with 2×2/2 pooling: it recovers
// w(0,0)/b by probing x(0,0), then pins x(1,0) so that the merged output
// y(1,0) stays non-positive and probes x(0,0) again to expose w(1,0)/b.
// It requires a negative bias (otherwise max pooling hides all crossings,
// as §4.1 notes). It returns the two ratios (w00/b, w10/b) for channel c
// of filter d.
func (a *Attacker) RecoverPooledPair(d, c int) (r00, r10 float64, err error) {
	g := a.G
	if g.Pool == nn.PoolNone || g.PoolF != 2 || g.PoolS != 2 || g.S != 1 || g.P != 0 {
		return 0, 0, fmt.Errorf("weightrev: RecoverPooledPair requires S=1, P=0, 2x2/2 pooling")
	}
	// Step 1: w(0,0). Pixel (0,0) reaches only conv output (0,0); its pool
	// companions remain at the (negative) bias. Under max (or
	// ReLU-then-average) pooling the pooled indicator flips at −b/w00;
	// under Eq.-11 average-then-activate semantics all four raw window
	// terms contribute, so the flip is at −4b/w00.
	pix := []Pixel{{C: c, Y: 0, X: 0}}
	cr00, ok := a.findNewCrossing(d, pix, 0, nil)
	if !ok {
		return 0, 0, fmt.Errorf("weightrev: no crossing for w(0,0) — zero weight or bias not negative")
	}
	negBOverW00 := cr00 // −b/w00
	if g.Pool == nn.PoolAvg && g.PoolBeforeAct {
		negBOverW00 = cr00 / 4
		r00 = -4 / cr00
	} else {
		r00 = -1 / cr00
	}

	// Step 2: pin x(1,0) = τ with y(1,0) = w00·τ + b = b/2 ≤ 0, then search
	// x(0,0): the pooled window flips when y(0,0) = w00·v + w10·τ + b
	// crosses the activation boundary.
	tau := negBOverW00 / 2
	pins := []Pixel{{C: c, Y: 1, X: 0, V: float32(tau)}, {C: c, Y: 0, X: 0}}
	// Predicted crossings: none besides the target — y(1,0) is pinned
	// non-positive for all probe values, other windows see only the pin.
	cr, ok := a.findNewCrossing(d, pins, 1, nil)
	if !ok {
		return r00, 0, fmt.Errorf("weightrev: no crossing for w(1,0)")
	}
	if g.Pool == nn.PoolMax && !g.PoolBeforeAct {
		// y00 = w00·v + w10·τ + b = 0 at v = cr →
		// w10 = −(b + w00·cr)/τ → w10/b = −(1 + (w00/b)·cr)/τ.
		r10 = -(1 + r00*cr) / tau
		return r00, r10, nil
	}
	if g.Pool == nn.PoolAvg && g.PoolBeforeAct {
		// Eq. (11) semantics: pooled(0,0) = (y00 + y01 + y10 + y11)/4 with
		// y01 = y11 = b and y10 = w00·τ + b:
		// crossing when w00·v + w10·τ + w00·τ + 4b = 0 →
		// w10/b = −(4 + (w00/b)(v + τ))/τ.
		r10 = -(4 + r00*(cr+tau)) / tau
		return r00, r10, nil
	}
	if g.Pool == nn.PoolAvg && !g.PoolBeforeAct {
		// ReLU-then-average: the pooled sum is non-zero iff any window term
		// is positive; with the pin keeping y10 ≤ 0 the flip is y00's:
		// same algebra as the max case.
		r10 = -(1 + r00*cr) / tau
		return r00, r10, nil
	}
	return 0, 0, fmt.Errorf("weightrev: unsupported pooling configuration")
}

// RecoverBias exploits a tunable activation threshold (§4.1): with an
// all-zero input every output pixel equals the bias, so sweeping the
// threshold until the channel's non-zero count flips locates b exactly.
// tMax bounds the search.
func (a *Attacker) RecoverBias(d int, tMax float64) (float64, error) {
	count := func(t float64) int {
		a.O.SetThreshold(float32(t))
		return a.O.CountChannel(d, nil)
	}
	lo, hi := -tMax, tMax
	cLo := count(lo)
	if count(hi) == cLo {
		a.O.SetThreshold(0)
		return 0, fmt.Errorf("weightrev: bias outside ±%g or zero", tMax)
	}
	for i := 0; i < a.Iters; i++ {
		mid := (lo + hi) / 2
		if count(mid) == cLo {
			lo = mid
		} else {
			hi = mid
		}
	}
	a.O.SetThreshold(0)
	return (lo + hi) / 2, nil
}

// RecoverWeights combines ratio recovery with threshold-based bias recovery
// to reconstruct the exact weights of filter d (unpooled, P=0 layer).
func (a *Attacker) RecoverWeights(d int, tMax float64) (weights [][][]float64, bias float64, err error) {
	ratios, err := a.RecoverFilterRatios(d)
	if err != nil {
		return nil, 0, err
	}
	bias, err = a.RecoverBias(d, tMax)
	if err != nil {
		return nil, 0, err
	}
	weights = make([][][]float64, a.G.In.C)
	for c := range weights {
		weights[c] = alloc2(a.G.F)
		for ky := 0; ky < a.G.F; ky++ {
			for kx := 0; kx < a.G.F; kx++ {
				if !ratios.Zero[c][ky][kx] {
					weights[c][ky][kx] = ratios.Ratio[c][ky][kx] * bias
				}
			}
		}
	}
	return weights, bias, nil
}
