package weightrev

import (
	"math"
	"math/rand"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// convLayer builds a single-conv-layer victim with deterministic weights:
// magnitudes bounded away from zero (so crossings stay inside the search
// range), a sprinkling of exact-zero weights, and a non-zero bias.
func convLayer(t *testing.T, in nn.Shape, outC, f, s, p int, pool nn.PoolKind, poolF, poolS int, bias float32, zeroFrac float64, seed int64) *nn.Network {
	t.Helper()
	spec := nn.LayerSpec{Name: "conv1", Kind: nn.KindConv, OutC: outC, F: f, S: s, P: p, ReLU: true,
		Pool: pool, PoolF: poolF, PoolS: poolS}
	net, err := nn.New("victim", in, []nn.LayerSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	w := net.Params[0].W.Data
	for i := range w {
		if rng.Float64() < zeroFrac {
			w[i] = 0
			continue
		}
		mag := 0.05 + 0.25*rng.Float64()
		if rng.Intn(2) == 0 {
			mag = -mag
		}
		w[i] = float32(mag)
	}
	for i := range net.Params[0].B.Data {
		net.Params[0].B.Data[i] = bias
	}
	return net
}

func TestFastOracleMatchesTraceOracle(t *testing.T) {
	cases := []struct {
		name string
		net  *nn.Network
		cfg  accel.Config
	}{
		{"plain", convLayer(t, nn.Shape{C: 2, H: 12, W: 12}, 3, 3, 1, 0, nn.PoolNone, 0, 0, 0.07, 0.2, 1), accel.Config{}},
		{"padded", convLayer(t, nn.Shape{C: 1, H: 10, W: 10}, 2, 3, 2, 1, nn.PoolNone, 0, 0, -0.05, 0, 2), accel.Config{}},
		{"maxpool", convLayer(t, nn.Shape{C: 1, H: 12, W: 12}, 2, 3, 1, 0, nn.PoolMax, 2, 2, -0.06, 0.1, 3), accel.Config{}},
		{"avgpool", convLayer(t, nn.Shape{C: 1, H: 12, W: 12}, 2, 3, 1, 0, nn.PoolAvg, 2, 2, -0.06, 0, 4), accel.Config{}},
		{"avgpool-eq11", convLayer(t, nn.Shape{C: 1, H: 12, W: 12}, 2, 3, 1, 0, nn.PoolAvg, 2, 2, -0.06, 0, 5), accel.Config{PoolBeforeActivation: true}},
		{"threshold", convLayer(t, nn.Shape{C: 1, H: 12, W: 12}, 2, 3, 1, 0, nn.PoolNone, 0, 0, 0.04, 0, 6), accel.Config{Threshold: 0.03}},
	}
	rng := rand.New(rand.NewSource(9))
	for _, tc := range cases {
		trace, err := NewTraceOracle(tc.net, tc.cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewFastOracle(tc.net, tc.cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		in := tc.net.Input
		for q := 0; q < 25; q++ {
			var pix []Pixel
			for n := rng.Intn(3); n >= 0; n-- {
				pix = append(pix, Pixel{
					C: rng.Intn(in.C), Y: rng.Intn(in.H), X: rng.Intn(in.W),
					V: float32(rng.NormFloat64() * 2),
				})
			}
			want := trace.Counts(pix)
			got := fast.Counts(pix)
			for d := range want {
				if got[d] != want[d] {
					t.Fatalf("%s query %d ch %d: fast %d, trace %d (pix %+v)", tc.name, q, d, got[d], want[d], pix)
				}
			}
		}
	}
}

func TestRecoverFilterRatiosExact(t *testing.T) {
	// 5×5 kernel, stride 2 (so probe pixels hit multiple outputs), 2 input
	// channels, 20% zero weights, positive bias.
	net := convLayer(t, nn.Shape{C: 2, H: 20, W: 20}, 3, 5, 2, 0, nn.PoolNone, 0, 0, 0.08, 0.2, 7)
	o, err := NewFastOracle(net, accel.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 3, F: 5, S: 2, P: 0})
	for d := 0; d < 3; d++ {
		got, err := at.RecoverFilterRatios(d)
		if err != nil {
			t.Fatal(err)
		}
		b := float64(net.Params[0].B.Data[d])
		for c := 0; c < 2; c++ {
			for ky := 0; ky < 5; ky++ {
				for kx := 0; kx < 5; kx++ {
					w := float64(net.Params[0].W.Data[((d*2+c)*5+ky)*5+kx])
					if w == 0 {
						if !got.Zero[c][ky][kx] {
							t.Errorf("d%d c%d (%d,%d): zero weight not detected (ratio %g)", d, c, ky, kx, got.Ratio[c][ky][kx])
						}
						continue
					}
					if got.Zero[c][ky][kx] {
						t.Errorf("d%d c%d (%d,%d): nonzero weight reported zero", d, c, ky, kx)
						continue
					}
					want := w / b
					if e := math.Abs(got.Ratio[c][ky][kx] - want); e > math.Pow(2, -10) {
						t.Errorf("d%d c%d (%d,%d): w/b = %g, want %g (err %g > 2^-10)", d, c, ky, kx, got.Ratio[c][ky][kx], want, e)
					}
				}
			}
		}
	}
	t.Logf("device queries: %d", o.Queries())
}

func TestRecoverNegativeBias(t *testing.T) {
	net := convLayer(t, nn.Shape{C: 1, H: 14, W: 14}, 2, 3, 1, 0, nn.PoolNone, 0, 0, -0.07, 0, 8)
	o, _ := NewFastOracle(net, accel.Config{}, 0)
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 2, F: 3, S: 1, P: 0})
	got, err := at.RecoverFilterRatios(0)
	if err != nil {
		t.Fatal(err)
	}
	b := float64(net.Params[0].B.Data[0])
	for ky := 0; ky < 3; ky++ {
		for kx := 0; kx < 3; kx++ {
			w := float64(net.Params[0].W.Data[(ky)*3+kx])
			if e := math.Abs(got.Ratio[0][ky][kx] - w/b); e > math.Pow(2, -10) {
				t.Errorf("(%d,%d): err %g", ky, kx, e)
			}
		}
	}
}

func TestRecoverPooled1x1(t *testing.T) {
	for _, pool := range []nn.PoolKind{nn.PoolMax, nn.PoolAvg} {
		net := convLayer(t, nn.Shape{C: 4, H: 8, W: 8}, 2, 1, 1, 0, pool, 2, 2, -0.05, 0.25, 10)
		o, _ := NewFastOracle(net, accel.Config{}, 0)
		at := NewAttacker(o, Geometry{In: net.Input, OutC: 2, F: 1, S: 1, P: 0, Pool: pool, PoolF: 2, PoolS: 2})
		for d := 0; d < 2; d++ {
			ratios, zeros, err := at.RecoverPooled1x1(d)
			if err != nil {
				t.Fatal(err)
			}
			b := float64(net.Params[0].B.Data[d])
			for c := 0; c < 4; c++ {
				w := float64(net.Params[0].W.Data[d*4+c])
				if w == 0 {
					if !zeros[c] {
						t.Errorf("pool %v d%d c%d: zero weight missed", pool, d, c)
					}
					continue
				}
				if e := math.Abs(ratios[c] - w/b); e > math.Pow(2, -10) {
					t.Errorf("pool %v d%d c%d: err %g", pool, d, c, e)
				}
			}
		}
	}
}

func TestRecoverPooledPairEq10(t *testing.T) {
	// Max pooling, ReLU-then-pool: the paper's Eq. (10) case.
	net := convLayer(t, nn.Shape{C: 1, H: 16, W: 16}, 2, 3, 1, 0, nn.PoolMax, 2, 2, -0.06, 0, 11)
	o, _ := NewFastOracle(net, accel.Config{}, 0)
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 2, F: 3, S: 1, P: 0, Pool: nn.PoolMax, PoolF: 2, PoolS: 2})
	for d := 0; d < 2; d++ {
		r00, r10, err := at.RecoverPooledPair(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := float64(net.Params[0].B.Data[d])
		w00 := float64(net.Params[0].W.Data[(d*1*3+0)*3+0])
		w10 := float64(net.Params[0].W.Data[(d*1*3+1)*3+0])
		if e := math.Abs(r00 - w00/b); e > 1e-3 {
			t.Errorf("d%d: w00/b err %g", d, e)
		}
		if e := math.Abs(r10 - w10/b); e > 1e-2*(1+math.Abs(w10/b)) {
			t.Errorf("d%d: w10/b = %g, want %g", d, r10, w10/b)
		}
	}
}

func TestRecoverPooledPairEq11(t *testing.T) {
	// Average pooling applied before the activation: the paper's Eq. (11).
	net := convLayer(t, nn.Shape{C: 1, H: 16, W: 16}, 2, 3, 1, 0, nn.PoolAvg, 2, 2, -0.06, 0, 12)
	cfg := accel.Config{PoolBeforeActivation: true}
	o, _ := NewFastOracle(net, cfg, 0)
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 2, F: 3, S: 1, P: 0,
		Pool: nn.PoolAvg, PoolF: 2, PoolS: 2, PoolBeforeAct: true})
	for d := 0; d < 2; d++ {
		r00, r10, err := at.RecoverPooledPair(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		b := float64(net.Params[0].B.Data[d])
		w00 := float64(net.Params[0].W.Data[(d*3+0)*3+0])
		w10 := float64(net.Params[0].W.Data[(d*3+1)*3+0])
		if e := math.Abs(r00 - w00/b); e > 1e-3 {
			t.Errorf("d%d: w00/b err %g", d, e)
		}
		if e := math.Abs(r10 - w10/b); e > 1e-2*(1+math.Abs(w10/b)) {
			t.Errorf("d%d: w10/b = %g, want %g", d, r10, w10/b)
		}
	}
}

func TestRecoverBiasAndFullWeights(t *testing.T) {
	net := convLayer(t, nn.Shape{C: 1, H: 12, W: 12}, 2, 3, 1, 0, nn.PoolNone, 0, 0, 0.0625, 0, 13)
	o, _ := NewFastOracle(net, accel.Config{}, 0)
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 2, F: 3, S: 1, P: 0})
	for d := 0; d < 2; d++ {
		weights, bias, err := at.RecoverWeights(d, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if e := math.Abs(bias - 0.0625); e > 1e-6 {
			t.Errorf("d%d: bias = %g, want 0.0625", d, bias)
		}
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				w := float64(net.Params[0].W.Data[(d*3+ky)*3+kx])
				if e := math.Abs(weights[0][ky][kx] - w); e > 1e-4 {
					t.Errorf("d%d (%d,%d): w = %g, want %g", d, ky, kx, weights[0][ky][kx], w)
				}
			}
		}
	}
}

func TestAttackerRejectsUnsupportedGeometry(t *testing.T) {
	net := convLayer(t, nn.Shape{C: 1, H: 12, W: 12}, 1, 3, 1, 1, nn.PoolNone, 0, 0, 0.05, 0, 14)
	o, _ := NewFastOracle(net, accel.Config{}, 0)
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 1, F: 3, S: 1, P: 1})
	if _, err := at.RecoverFilterRatios(0); err == nil {
		t.Fatal("expected rejection of padded geometry")
	}
	at2 := NewAttacker(o, Geometry{In: net.Input, OutC: 1, F: 3, S: 1, P: 0, Pool: nn.PoolMax, PoolF: 3, PoolS: 3})
	if _, _, err := at2.RecoverPooledPair(0, 0); err == nil {
		t.Fatal("expected rejection of 3x3 pooling in the pair method")
	}
}

func TestFastOracleRejectsNonFirstLayer(t *testing.T) {
	net := nn.LeNet(10)
	if _, err := NewFastOracle(net, accel.Config{}, 1); err == nil {
		t.Fatal("expected rejection")
	}
}

// TestRecoverQuantizedWeights exercises the collision path: a
// Deep-Compression-style quantized filter where many weights share exactly
// the same value, so target crossings coincide with predicted ones and must
// be identified from the count-step parity anomaly.
func TestRecoverQuantizedWeights(t *testing.T) {
	spec := nn.LayerSpec{Name: "conv", Kind: nn.KindConv, OutC: 1, F: 4, S: 1, ReLU: true}
	net, err := nn.New("quant", nn.Shape{C: 1, H: 16, W: 16}, []nn.LayerSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	// A 4-value codebook, as trained quantization produces.
	codebook := []float32{-0.2, -0.05, 0.1, 0.25}
	rng := rand.New(rand.NewSource(21))
	for i := range net.Params[0].W.Data {
		net.Params[0].W.Data[i] = codebook[rng.Intn(len(codebook))]
	}
	net.Params[0].B.Data[0] = 0.07

	o, _ := NewFastOracle(net, accel.Config{}, 0)
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 1, F: 4, S: 1, P: 0})
	got, err := at.RecoverFilterRatios(0)
	if err != nil {
		t.Fatal(err)
	}
	for ky := 0; ky < 4; ky++ {
		for kx := 0; kx < 4; kx++ {
			w := float64(net.Params[0].W.Data[ky*4+kx])
			if got.Zero[0][ky][kx] {
				t.Errorf("(%d,%d): quantized weight misreported as zero", ky, kx)
				continue
			}
			if e := math.Abs(got.Ratio[0][ky][kx] - w/0.07); e > 1e-3 {
				t.Errorf("(%d,%d): w/b err %g", ky, kx, e)
			}
		}
	}
}

// TestAggregateOracleSingleFilter: with only the total count visible (the
// paper's conservative leak model), a single-filter layer is still fully
// recoverable — total and per-channel counts coincide.
func TestAggregateOracleSingleFilter(t *testing.T) {
	net := convLayer(t, nn.Shape{C: 1, H: 14, W: 14}, 1, 3, 1, 0, nn.PoolNone, 0, 0, 0.06, 0.2, 61)
	fast, _ := NewFastOracle(net, accel.Config{}, 0)
	agg := &AggregateOracle{O: fast}
	at := NewAttacker(agg, Geometry{In: net.Input, OutC: 1, F: 3, S: 1, P: 0})
	got, err := at.RecoverFilterRatios(0)
	if err != nil {
		t.Fatal(err)
	}
	b := float64(net.Params[0].B.Data[0])
	for ky := 0; ky < 3; ky++ {
		for kx := 0; kx < 3; kx++ {
			w := float64(net.Params[0].W.Data[ky*3+kx])
			if w == 0 {
				if !got.Zero[0][ky][kx] {
					t.Errorf("(%d,%d): zero missed", ky, kx)
				}
				continue
			}
			if e := math.Abs(got.Ratio[0][ky][kx] - w/b); e > math.Pow(2, -10) {
				t.Errorf("(%d,%d): err %g", ky, kx, e)
			}
		}
	}
}

// TestAggregateOracleConfoundedMultiFilter: on a multi-filter layer the
// total count mixes every filter's crossings; the recovery for filter 0 no
// longer matches filter 0's true ratios everywhere, motivating the
// per-channel oracle (which the visible write addresses justify).
func TestAggregateOracleConfoundedMultiFilter(t *testing.T) {
	net := convLayer(t, nn.Shape{C: 1, H: 14, W: 14}, 3, 3, 1, 0, nn.PoolNone, 0, 0, 0.06, 0, 62)
	fast, _ := NewFastOracle(net, accel.Config{}, 0)
	agg := &AggregateOracle{O: fast}
	at := NewAttacker(agg, Geometry{In: net.Input, OutC: 3, F: 3, S: 1, P: 0})
	got, err := at.RecoverFilterRatios(0)
	if err != nil {
		t.Fatal(err)
	}
	b := float64(net.Params[0].B.Data[0])
	mismatch := false
	for ky := 0; ky < 3 && !mismatch; ky++ {
		for kx := 0; kx < 3 && !mismatch; kx++ {
			w := float64(net.Params[0].W.Data[ky*3+kx])
			if got.Zero[0][ky][kx] || math.Abs(got.Ratio[0][ky][kx]-w/b) > 1e-3 {
				mismatch = true
			}
		}
	}
	if !mismatch {
		t.Fatal("aggregate counting should confound multi-filter recovery")
	}
}

func TestRecoverBiasOutOfRange(t *testing.T) {
	net := convLayer(t, nn.Shape{C: 1, H: 10, W: 10}, 1, 3, 1, 0, nn.PoolNone, 0, 0, 0.5, 0, 71)
	o, _ := NewFastOracle(net, accel.Config{}, 0)
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 1, F: 3, S: 1, P: 0})
	if _, err := at.RecoverBias(0, 0.1); err == nil {
		t.Fatal("bias 0.5 outside ±0.1 must error")
	}
}

func TestTinyWeightReportedZero(t *testing.T) {
	// |b/w| beyond the search range reads as "no crossing": the attack
	// classifies ultra-small weights as zero, as documented.
	net := convLayer(t, nn.Shape{C: 1, H: 10, W: 10}, 1, 2, 1, 0, nn.PoolNone, 0, 0, 0.5, 0, 72)
	net.Params[0].W.Data[0] = 0.001 // |b/w| = 500 >> XMax=64
	o, _ := NewFastOracle(net, accel.Config{}, 0)
	at := NewAttacker(o, Geometry{In: net.Input, OutC: 1, F: 2, S: 1, P: 0})
	got, err := at.RecoverFilterRatios(0)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Zero[0][0][0] {
		t.Fatal("unreachable crossing should classify as zero")
	}
}
