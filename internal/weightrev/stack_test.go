package weightrev

import (
	"math"
	"math/rand"
	"testing"

	"cnnrev/internal/nn"
)

// stackVictim builds a 2-layer conv stack whose first layer is
// "ladder-dominant": each output channel owns the extreme weight of one
// stride-residue class, making every channel injectable for peeling.
func stackVictim(t *testing.T) *nn.Network {
	t.Helper()
	net, err := nn.New("stack", nn.Shape{C: 1, H: 16, W: 16}, []nn.LayerSpec{
		{Name: "conv0", Kind: nn.KindConv, OutC: 3, F: 3, S: 2, ReLU: true},
		{Name: "conv1", Kind: nn.KindConv, OutC: 2, F: 2, S: 1, ReLU: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	// Layer 0: small background weights plus one dominant weight per
	// channel, each in a distinct stride-residue class of the 3x3/stride-2
	// kernel ((1,1) is a singleton class; (0,1) and (1,0) have two members).
	w0 := net.Params[0].W.Data
	for i := range w0 {
		w0[i] = float32(0.01 + 0.03*rng.Float64())
		if rng.Intn(2) == 0 {
			w0[i] = -w0[i]
		}
	}
	set0 := func(d, ky, kx int, v float32) { w0[(d*3+ky)*3+kx] = v }
	set0(0, 1, 1, 0.5)  // channel 0 dominates class (1,1), positive dial
	set0(1, 1, 1, -0.5) // channel 1 dominates class (1,1), negative dial
	set0(2, 0, 1, 0.5)  // channel 2 dominates class (0,1)
	set0(2, 2, 1, 0.02) // keep its own class-mate small
	for d := 0; d < 3; d++ {
		net.Params[0].B.Data[d] = float32(-0.04 - 0.02*rng.Float64())
	}
	// Layer 1: mixed-sign weights, a couple of exact zeros.
	w1 := net.Params[1].W.Data
	for i := range w1 {
		m := 0.08 + 0.3*rng.Float64()
		if rng.Intn(2) == 0 {
			m = -m
		}
		w1[i] = float32(m)
	}
	w1[0] = 0
	w1[7] = 0
	for d := 0; d < 2; d++ {
		net.Params[1].B.Data[d] = float32(-0.02 - 0.02*rng.Float64())
	}
	return net
}

func TestStackOracleValidates(t *testing.T) {
	bad := nn.LeNet(10) // pooled layers, FC, positive-capable biases
	if _, err := NewStackOracle(bad); err == nil {
		t.Fatal("expected rejection of a non-stack victim")
	}
	good := stackVictim(t)
	if _, err := NewStackOracle(good); err != nil {
		t.Fatal(err)
	}
}

// TestStackPeelingRecoversBothLayers is the peeling extension's main test:
// layer 0 fully recovered as w/b; layer 1's positive weights recovered as
// w·β/b scaled ratios, with non-positive weights classified as such.
func TestStackPeelingRecoversBothLayers(t *testing.T) {
	net := stackVictim(t)
	o, err := NewStackOracle(net)
	if err != nil {
		t.Fatal(err)
	}
	at := NewStackAttacker(o, net)
	rec, err := at.Recover()
	if err != nil {
		t.Fatal(err)
	}

	// Layer 0: plain ratios, every weight.
	b0 := net.Params[0].B.Data
	for d := 0; d < 3; d++ {
		for ky := 0; ky < 3; ky++ {
			for kx := 0; kx < 3; kx++ {
				w := float64(net.Params[0].W.Data[(d*3+ky)*3+kx])
				want := w / float64(b0[d])
				if rec.Zero[0][d][0][ky][kx] {
					t.Errorf("layer0 d%d (%d,%d): wrongly zero", d, ky, kx)
					continue
				}
				if e := math.Abs(rec.Ratios[0][d][0][ky][kx] - want); e > 1e-3 {
					t.Errorf("layer0 d%d (%d,%d): err %g", d, ky, kx, e)
				}
			}
		}
	}

	// All three layer-1 input channels must be injectable.
	for c := 0; c < 3; c++ {
		if rec.Unreachable[1][c] {
			t.Fatalf("layer-1 input channel %d not injectable", c)
		}
	}

	// Layer 1: positive weights recovered as ρ = w·β_c/b_d; others flagged.
	b1 := net.Params[1].B.Data
	recovered, masked := 0, 0
	for d := 0; d < 2; d++ {
		for c := 0; c < 3; c++ {
			for ky := 0; ky < 2; ky++ {
				for kx := 0; kx < 2; kx++ {
					w := float64(net.Params[1].W.Data[((d*3+c)*2+ky)*2+kx])
					if w <= 0 {
						masked++
						if !rec.Zero[1][d][c][ky][kx] {
							t.Errorf("layer1 d%d c%d (%d,%d): non-positive weight not flagged", d, c, ky, kx)
						}
						continue
					}
					recovered++
					if rec.Zero[1][d][c][ky][kx] {
						t.Errorf("layer1 d%d c%d (%d,%d): positive weight missed", d, c, ky, kx)
						continue
					}
					want := w * float64(b0[c]) / float64(b1[d])
					if e := math.Abs(rec.Ratios[1][d][c][ky][kx] - want); e > 1e-2*(1+math.Abs(want)) {
						t.Errorf("layer1 d%d c%d (%d,%d): ρ = %g, want %g", d, c, ky, kx,
							rec.Ratios[1][d][c][ky][kx], want)
					}
				}
			}
		}
	}
	if recovered == 0 {
		t.Fatal("no positive layer-1 weights recovered")
	}
	t.Logf("layer 1: %d positive weights recovered, %d non-positive classified, %d queries",
		recovered, masked, rec.Queries)
}

// TestStackPeelingThreeLayers exercises the recursive injector composition:
// layer-2 probes pass through two levels of crafted single-pixel deltas.
// Layer 1 uses stride 2 so each of its output channels can own a distinct
// stride-residue ladder (deeper injections only dial upward, so only
// positive-weight ladders are available there).
func TestStackPeelingThreeLayers(t *testing.T) {
	net, err := nn.New("stack3", nn.Shape{C: 1, H: 24, W: 24}, []nn.LayerSpec{
		{Name: "conv0", Kind: nn.KindConv, OutC: 2, F: 3, S: 2, ReLU: true},
		{Name: "conv1", Kind: nn.KindConv, OutC: 2, F: 2, S: 2, ReLU: true},
		{Name: "conv2", Kind: nn.KindConv, OutC: 1, F: 2, S: 1, ReLU: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(71))
	// Layer 0: two ladder-dominant channels in the (1,1) singleton class,
	// opposite dial directions.
	w0 := net.Params[0].W.Data
	for i := range w0 {
		w0[i] = float32(0.01 + 0.02*rng.Float64())
		if rng.Intn(2) == 0 {
			w0[i] = -w0[i]
		}
	}
	w0[(0*3+1)*3+1] = 0.6
	w0[(1*3+1)*3+1] = -0.6
	net.Params[0].B.Data[0] = -0.05
	net.Params[0].B.Data[1] = -0.06
	// Layer 1: stride-2 2x2 kernel — four singleton classes; give each
	// output channel a dominant POSITIVE weight in a distinct class (deeper
	// dials only go upward).
	w1 := net.Params[1].W.Data
	for i := range w1 {
		w1[i] = float32(0.02 + 0.05*rng.Float64())
	}
	w1[((0*2+0)*2+0)*2+0] = 0.7 // d0 <- c0 at (0,0)
	w1[((1*2+0)*2+0)*2+1] = 0.7 // d1 <- c0 at (0,1)
	net.Params[1].B.Data[0] = -0.03
	net.Params[1].B.Data[1] = -0.04
	// Layer 2: mixed-sign weights.
	w2 := net.Params[2].W.Data
	for i := range w2 {
		m := 0.1 + 0.3*rng.Float64()
		if rng.Intn(2) == 0 {
			m = -m
		}
		w2[i] = float32(m)
	}
	net.Params[2].B.Data[0] = -0.02

	o, err := NewStackOracle(net)
	if err != nil {
		t.Fatal(err)
	}
	at := NewStackAttacker(o, net)
	rec, err := at.Recover()
	if err != nil {
		t.Fatal(err)
	}

	// Layer 0 exact.
	for d := 0; d < 2; d++ {
		b := float64(net.Params[0].B.Data[d])
		for k := 0; k < 9; k++ {
			w := float64(w0[d*9+k])
			if e := math.Abs(rec.Ratios[0][d][0][k/3][k%3] - w/b); e > 1e-3 {
				t.Fatalf("layer0 d%d k%d err %g", d, k, e)
			}
		}
	}
	// Layer 1: all positive weights recovered (scaled); channels injectable.
	got1 := 0
	for d := 0; d < 2; d++ {
		for c := 0; c < 2; c++ {
			for k := 0; k < 4; k++ {
				w := float64(w1[((d*2+c)*2+k/2)*2+k%2])
				if w <= 0 {
					continue
				}
				if rec.Zero[1][d][c][k/2][k%2] {
					t.Fatalf("layer1 d%d c%d k%d positive weight missed", d, c, k)
				}
				want := w * float64(net.Params[0].B.Data[c]) / float64(net.Params[1].B.Data[d])
				if e := math.Abs(rec.Ratios[1][d][c][k/2][k%2] - want); e > 1e-2*(1+math.Abs(want)) {
					t.Fatalf("layer1 d%d c%d k%d: %g want %g", d, c, k,
						rec.Ratios[1][d][c][k/2][k%2], want)
				}
				got1++
			}
		}
	}
	// Layer 2: every positive weight on an injectable channel recovered.
	got2 := 0
	for c := 0; c < 2; c++ {
		if rec.Unreachable[2][c] {
			t.Fatalf("layer-2 input channel %d not injectable", c)
		}
		for k := 0; k < 4; k++ {
			w := float64(w2[(c*2+k/2)*2+k%2])
			if w <= 0 {
				if !rec.Zero[2][0][c][k/2][k%2] {
					t.Fatalf("layer2 c%d k%d non-positive not flagged", c, k)
				}
				continue
			}
			if rec.Zero[2][0][c][k/2][k%2] {
				t.Fatalf("layer2 c%d k%d positive weight missed", c, k)
			}
			want := w * float64(net.Params[1].B.Data[c]) / float64(net.Params[2].B.Data[0])
			if e := math.Abs(rec.Ratios[2][0][c][k/2][k%2] - want); e > 2e-2*(1+math.Abs(want)) {
				t.Fatalf("layer2 c%d k%d: %g want %g", c, k, rec.Ratios[2][0][c][k/2][k%2], want)
			}
			got2++
		}
	}
	t.Logf("3-layer peel: %d layer-1 and %d layer-2 positive weights recovered, %d queries",
		got1, got2, rec.Queries)
}

// TestRecoverNegativeDeep exercises the Eq-10 pinning extension: negative
// layer-1 weights, invisible to single-pixel probing (deeper inputs are
// non-negative), become recoverable when a pinned second delta lifts the
// shared output above zero first.
func TestRecoverNegativeDeep(t *testing.T) {
	net, err := nn.New("pinstack", nn.Shape{C: 1, H: 20, W: 20}, []nn.LayerSpec{
		{Name: "conv0", Kind: nn.KindConv, OutC: 1, F: 3, S: 2, ReLU: true},
		{Name: "conv1", Kind: nn.KindConv, OutC: 1, F: 3, S: 2, ReLU: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(81))
	w0 := net.Params[0].W.Data
	for i := range w0 {
		w0[i] = float32(0.01 + 0.02*rng.Float64())
	}
	w0[(1)*3+1] = 0.6 // ladder-dominant channel
	net.Params[0].B.Data[0] = -0.05

	// Layer 1: a positive pin at (0,0) (inside the stride-2 block) and
	// negative weights at positions far enough from the pin.
	w1 := net.Params[1].W.Data
	for i := range w1 {
		w1[i] = float32(0.05 + 0.1*rng.Float64())
	}
	w1[0] = 0.5   // pin (0,0)
	w1[2] = -0.3  // (0,2): separation 4 >= F0=3, recoverable
	w1[6] = -0.2  // (2,0): recoverable
	w1[8] = -0.35 // (2,2): recoverable
	w1[4] = -0.25 // (1,1): separation 2 < 3, must stay flagged
	net.Params[1].B.Data[0] = -0.03

	o, err := NewStackOracle(net)
	if err != nil {
		t.Fatal(err)
	}
	at := NewStackAttacker(o, net)
	rec, err := at.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Single-pixel pass leaves the negatives flagged.
	for _, k := range [][2]int{{0, 2}, {2, 0}, {2, 2}, {1, 1}} {
		if !rec.Zero[1][0][0][k[0]][k[1]] {
			t.Fatalf("(%d,%d) should be flagged before pinning", k[0], k[1])
		}
	}
	n, err := at.RecoverNegativeDeep(rec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("recovered only %d negative weights", n)
	}
	b0 := float64(net.Params[0].B.Data[0])
	b1 := float64(net.Params[1].B.Data[0])
	for _, k := range [][2]int{{0, 2}, {2, 0}, {2, 2}} {
		w := float64(w1[k[0]*3+k[1]])
		want := w * b0 / b1
		if rec.Zero[1][0][0][k[0]][k[1]] {
			t.Fatalf("(%d,%d) still flagged after pinning", k[0], k[1])
		}
		got := rec.Ratios[1][0][0][k[0]][k[1]]
		if e := math.Abs(got - want); e > 2e-2*(1+math.Abs(want)) {
			t.Fatalf("(%d,%d): ρ = %g, want %g", k[0], k[1], got, want)
		}
	}
	// The interfering position must remain flagged (honest refusal).
	if !rec.Zero[1][0][0][1][1] {
		t.Fatal("(1,1) should stay flagged: probes would interfere")
	}
}
