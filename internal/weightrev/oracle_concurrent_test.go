package weightrev

import (
	"fmt"
	"sync"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// TestTraceOracleConcurrentQueries: a TraceOracle shares one Simulator
// across all queries (each goroutine borrowing a pooled session), so
// concurrent Counts calls must be safe and must agree with serial answers.
// Run with -race in CI — this is the regression for the shared-arena oracle.
func TestTraceOracleConcurrentQueries(t *testing.T) {
	in := nn.Shape{C: 2, H: 12, W: 12}
	net := convLayer(t, in, 3, 3, 1, 0, nn.PoolNone, 0, 0, 0.07, 0.2, 1)
	o, err := NewTraceOracle(net, accel.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	queries := make([][]Pixel, 12)
	want := make([][]int, len(queries))
	for i := range queries {
		queries[i] = []Pixel{{C: i % in.C, Y: (i * 3) % in.H, X: (i * 5) % in.W, V: 0.4 + 0.1*float32(i)}}
		want[i] = o.Counts(queries[i])
	}
	base := o.Queries()

	const goroutines = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range queries {
				idx := (g + i) % len(queries)
				got := o.Counts(queries[idx])
				for c := range want[idx] {
					if got[c] != want[idx][c] {
						errc <- fmt.Errorf("goroutine %d query %d: channel %d count %d, want %d",
							g, idx, c, got[c], want[idx][c])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got := o.Queries(); got != base+goroutines*len(queries) {
		t.Fatalf("query counter %d, want %d (atomic accounting lost updates)", got, base+goroutines*len(queries))
	}
}
