package weightrev

// AggregateOracle models the paper's conservative assumption that the
// dynamic zero pruning "only leaks the number of zero-valued pixels" in
// total — a single compressed stream per layer rather than one per output
// channel. It wraps a per-channel oracle and exposes only the sum.
//
// Under this oracle a crossing can no longer be attributed to a filter, so
// Algorithm 2 recovers single-filter layers (where total = per-channel)
// but is confounded on multi-filter layers — which is why the reproduction
// defaults to the per-channel oracle, justified by the threat model: write
// *addresses* are visible, and per-channel compressed streams occupy
// distinct address ranges.
type AggregateOracle struct {
	O Oracle
}

// Counts returns a single-element slice holding the total non-zero count.
func (a *AggregateOracle) Counts(pixels []Pixel) []int {
	total := 0
	for _, c := range a.O.Counts(pixels) {
		total += c
	}
	return []int{total}
}

// CountChannel ignores the channel index: only the total is observable.
func (a *AggregateOracle) CountChannel(_ int, pixels []Pixel) int {
	return a.Counts(pixels)[0]
}

// SetThreshold forwards to the device.
func (a *AggregateOracle) SetThreshold(t float32) { a.O.SetThreshold(t) }

// Queries forwards the device inference count.
func (a *AggregateOracle) Queries() int { return a.O.Queries() }
