// Package weightrev implements the paper's second attack (§4): reverse
// engineering convolution weights by exploiting dynamic zero pruning. A
// zero-pruning accelerator writes only the non-zero output pixels to DRAM,
// so the number (and, per compressed channel stream, the per-channel
// number) of write transactions leaks how many output pixels the activation
// zeroed. By feeding inputs that are zero except for one crafted pixel and
// binary-searching that pixel's value for the point where the non-zero
// count changes, the adversary finds zero crossings x* = −b/w and hence the
// ratio of every weight to the layer's bias (Algorithm 2), with variants
// for fused max pooling (Eq. 10) and average pooling (Eq. 11). A tunable
// activation threshold additionally reveals the bias itself, completing
// exact weight recovery.
package weightrev

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cnnrev/internal/accel"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// Pixel is one non-zero input element of an attacker-crafted query.
type Pixel struct {
	C, Y, X int
	V       float32
}

// Oracle answers attacker queries against the victim device: for an input
// that is all zeros except the given pixels, how many non-zero pixels does
// each output channel of the target layer produce? This is exactly the
// information the per-channel compressed write streams leak.
type Oracle interface {
	// Counts returns the per-channel non-zero counts for the query input.
	Counts(pixels []Pixel) []int
	// CountChannel returns the count for a single channel (the adversary
	// simply ignores the other channels' bursts).
	CountChannel(d int, pixels []Pixel) int
	// SetThreshold adjusts the device's tunable activation threshold (the
	// Minerva-style optimization; §4's bias-recovery lever).
	SetThreshold(t float32)
	// Queries returns the number of device inferences issued so far.
	Queries() int
}

// TraceOracle drives the accelerator simulator for every query and derives
// counts from the observed compressed write bursts — the trace-backed
// oracle. The simulated network must consist of (at least) the target conv
// layer, and the simulator must have zero pruning enabled.
//
// Each query simulates only layers 0..target (Session.RunPrefix) and scans
// only the target layer's window of the trace, located via the precomputed
// write-region index (regBase/regEnd/stride below) — an adversary watching
// the bus needs no later layers to read this layer's write volume, and
// neither do we. CountChannel goes further and touches a single channel
// slot without allocating.
//
// All queries share one Simulator; each goroutine borrows a query context
// (an accel.Session plus an input buffer) from an internal pool, so the
// oracle is safe for concurrent Counts/CountChannel calls and repeated
// queries allocate only the returned count slices. SetThreshold retunes the
// shared device and must not race in-flight queries — the attack's
// bias-recovery sweep (its only caller) is sequential by construction.
type TraceOracle struct {
	sim   *accel.Simulator
	layer int

	// Precomputed region index for the target layer's pruned write stream:
	// channel c's compressed slot is [regBase+c*stride, regBase+(c+1)*stride).
	regBase uint64
	regEnd  uint64
	stride  uint64
	chans   int
	bpnz    int

	// fullRun restores the pre-prefix reference behavior — simulate every
	// layer and scan the whole trace per query. Kept (test-settable only)
	// as the equivalence baseline and for BenchmarkOracleQuery_Full.
	fullRun bool

	queries atomic.Int64
	ctxs    sync.Pool // *oracleCtx
}

// oracleCtx is one goroutine's reusable query state.
type oracleCtx struct {
	ses *accel.Session
	x   []float32
}

// NewTraceOracle builds a trace-backed oracle targeting the given layer.
func NewTraceOracle(net *nn.Network, cfg accel.Config, layer int) (*TraceOracle, error) {
	cfg.ZeroPrune = true
	if layer < 0 || layer >= len(net.Specs) {
		return nil, fmt.Errorf("weightrev: layer %d out of range [0,%d)", layer, len(net.Specs))
	}
	sim, err := accel.New(net, cfg)
	if err != nil {
		return nil, err
	}
	if net.Specs[layer].Kind != nn.KindConv {
		return nil, fmt.Errorf("weightrev: layer %d is not a conv layer", layer)
	}
	shape := net.Shapes[layer]
	reg := sim.Layout().Fmaps[layer]
	devCfg := sim.Config()
	return &TraceOracle{
		sim:     sim,
		layer:   layer,
		regBase: reg.Base,
		regEnd:  reg.End(),
		stride:  uint64(shape.H * shape.W * devCfg.PruneBytesPerNZ),
		chans:   shape.C,
		bpnz:    devCfg.PruneBytesPerNZ,
	}, nil
}

// SetThreshold adjusts the activation threshold used by subsequent queries.
func (o *TraceOracle) SetThreshold(t float32) { o.sim.SetThreshold(t) }

// Queries returns the number of device inferences issued.
func (o *TraceOracle) Queries() int { return int(o.queries.Load()) }

// run issues one device query: it borrows a query context, assembles the
// sparse input, simulates layers 0..target (or the whole network in fullRun
// reference mode), and returns the context together with the trace window
// holding the target layer's accesses. The caller must finish reading the
// returned accesses before releasing ctx — the trace lives in the session
// arena and is recycled on the next query.
func (o *TraceOracle) run(pixels []Pixel) (ctx *oracleCtx, acc []memtrace.Access, blockBytes int) {
	o.queries.Add(1)
	ctx, _ = o.ctxs.Get().(*oracleCtx)
	if ctx == nil {
		ctx = &oracleCtx{
			ses: o.sim.NewSession(),
			x:   make([]float32, o.sim.Net().Input.Len()),
		}
	}
	in := o.sim.Net().Input
	for _, p := range pixels {
		// Accumulate so repeated coordinates behave like the analytic
		// oracle's additive contributions.
		ctx.x[(p.C*in.H+p.Y)*in.W+p.X] += p.V
	}
	var res *accel.Result
	var err error
	if o.fullRun {
		res, err = ctx.ses.Run(ctx.x)
	} else {
		res, err = ctx.ses.RunPrefix(ctx.x, o.layer)
	}
	if err != nil {
		panic(err)
	}
	for _, p := range pixels { // restore the all-zero base input
		ctx.x[(p.C*in.H+p.Y)*in.W+p.X] = 0
	}
	acc = res.Trace.Accesses
	if !o.fullRun {
		r := res.LayerAccessRange[o.layer]
		acc = acc[r[0]:r[1]]
	}
	return ctx, acc, res.Trace.BlockBytes
}

// Counts runs one inference and parses the per-channel compressed write
// volumes out of the target layer's trace window.
func (o *TraceOracle) Counts(pixels []Pixel) []int {
	counts := make([]int, o.chans)
	ctx, acc, blockBytes := o.run(pixels)
	defer o.ctxs.Put(ctx)
	for _, a := range acc {
		if a.Kind != memtrace.Write {
			continue
		}
		lo, hi := a.Addr, a.End(blockBytes)
		if hi <= o.regBase || lo >= o.regEnd {
			continue
		}
		// A burst may span several channel slots (the recorder merges
		// contiguous full-slot streams); apportion it slot by slot.
		for lo < hi {
			c := int((lo - o.regBase) / o.stride)
			slotEnd := o.regBase + uint64(c+1)*o.stride
			seg := hi
			if slotEnd < seg {
				seg = slotEnd
			}
			if c >= 0 && c < o.chans {
				counts[c] += int(seg-lo) / o.bpnz
			}
			lo = seg
		}
	}
	return counts
}

// CountChannel returns one channel's count. Unlike Counts it intersects the
// trace window with just that channel's compressed slot and allocates
// nothing — the inner loop of Algorithm 2's bisection pays for exactly one
// slot, not the whole layer.
func (o *TraceOracle) CountChannel(d int, pixels []Pixel) int {
	if d < 0 || d >= o.chans {
		panic(fmt.Sprintf("weightrev: channel %d out of range [0,%d)", d, o.chans))
	}
	slotLo := o.regBase + uint64(d)*o.stride
	slotHi := slotLo + o.stride
	ctx, acc, blockBytes := o.run(pixels)
	n := 0
	for _, a := range acc {
		if a.Kind != memtrace.Write {
			continue
		}
		lo, hi := a.Addr, a.End(blockBytes)
		if lo < slotLo {
			lo = slotLo
		}
		if hi > slotHi {
			hi = slotHi
		}
		if lo < hi {
			n += int(hi-lo) / o.bpnz
		}
	}
	o.ctxs.Put(ctx)
	return n
}
