// Package weightrev implements the paper's second attack (§4): reverse
// engineering convolution weights by exploiting dynamic zero pruning. A
// zero-pruning accelerator writes only the non-zero output pixels to DRAM,
// so the number (and, per compressed channel stream, the per-channel
// number) of write transactions leaks how many output pixels the activation
// zeroed. By feeding inputs that are zero except for one crafted pixel and
// binary-searching that pixel's value for the point where the non-zero
// count changes, the adversary finds zero crossings x* = −b/w and hence the
// ratio of every weight to the layer's bias (Algorithm 2), with variants
// for fused max pooling (Eq. 10) and average pooling (Eq. 11). A tunable
// activation threshold additionally reveals the bias itself, completing
// exact weight recovery.
package weightrev

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cnnrev/internal/accel"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// Pixel is one non-zero input element of an attacker-crafted query.
type Pixel struct {
	C, Y, X int
	V       float32
}

// Oracle answers attacker queries against the victim device: for an input
// that is all zeros except the given pixels, how many non-zero pixels does
// each output channel of the target layer produce? This is exactly the
// information the per-channel compressed write streams leak.
type Oracle interface {
	// Counts returns the per-channel non-zero counts for the query input.
	Counts(pixels []Pixel) []int
	// CountChannel returns the count for a single channel (the adversary
	// simply ignores the other channels' bursts).
	CountChannel(d int, pixels []Pixel) int
	// SetThreshold adjusts the device's tunable activation threshold (the
	// Minerva-style optimization; §4's bias-recovery lever).
	SetThreshold(t float32)
	// Queries returns the number of device inferences issued so far.
	Queries() int
}

// TraceOracle drives the full accelerator simulator for every query and
// derives counts from the observed compressed write bursts — the reference
// (slow) oracle. The simulated network must consist of (at least) the
// target conv layer, and the simulator must have zero pruning enabled.
//
// All queries share one Simulator; each goroutine borrows a query context
// (an accel.Session plus an input buffer) from an internal pool, so the
// oracle is safe for concurrent Counts/CountChannel calls and repeated
// queries allocate only the returned count slices. SetThreshold retunes the
// shared device and must not race in-flight queries — the attack's
// bias-recovery sweep (its only caller) is sequential by construction.
type TraceOracle struct {
	sim     *accel.Simulator
	layer   int
	queries atomic.Int64
	ctxs    sync.Pool // *oracleCtx
}

// oracleCtx is one goroutine's reusable query state.
type oracleCtx struct {
	ses *accel.Session
	x   []float32
}

// NewTraceOracle builds a trace-backed oracle targeting the given layer.
func NewTraceOracle(net *nn.Network, cfg accel.Config, layer int) (*TraceOracle, error) {
	cfg.ZeroPrune = true
	sim, err := accel.New(net, cfg)
	if err != nil {
		return nil, err
	}
	if net.Specs[layer].Kind != nn.KindConv {
		return nil, fmt.Errorf("weightrev: layer %d is not a conv layer", layer)
	}
	return &TraceOracle{sim: sim, layer: layer}, nil
}

// SetThreshold adjusts the activation threshold used by subsequent queries.
func (o *TraceOracle) SetThreshold(t float32) { o.sim.SetThreshold(t) }

// Queries returns the number of device inferences issued.
func (o *TraceOracle) Queries() int { return int(o.queries.Load()) }

// Counts runs one inference and parses the per-channel compressed write
// volumes out of the memory trace.
func (o *TraceOracle) Counts(pixels []Pixel) []int {
	o.queries.Add(1)
	ctx, _ := o.ctxs.Get().(*oracleCtx)
	if ctx == nil {
		ctx = &oracleCtx{
			ses: o.sim.NewSession(),
			x:   make([]float32, o.sim.Net().Input.Len()),
		}
	}
	defer o.ctxs.Put(ctx)
	net := o.sim.Net()
	in := net.Input
	for _, p := range pixels {
		// Accumulate so repeated coordinates behave like the analytic
		// oracle's additive contributions.
		ctx.x[(p.C*in.H+p.Y)*in.W+p.X] += p.V
	}
	res, err := ctx.ses.Run(ctx.x)
	if err != nil {
		panic(err)
	}
	for _, p := range pixels { // restore the all-zero base input
		ctx.x[(p.C*in.H+p.Y)*in.W+p.X] = 0
	}
	lay := o.sim.Layout()
	cfg := o.sim.Config()
	shape := net.Shapes[o.layer]
	stride := uint64(shape.H * shape.W * cfg.PruneBytesPerNZ)
	counts := make([]int, shape.C)
	reg := lay.Fmaps[o.layer]
	for _, a := range res.Trace.Accesses {
		if a.Kind != memtrace.Write {
			continue
		}
		lo, hi := a.Addr, a.End(res.Trace.BlockBytes)
		if hi <= reg.Base || lo >= reg.End() {
			continue
		}
		// A burst may span several channel slots (the recorder merges
		// contiguous full-slot streams); apportion it slot by slot.
		for lo < hi {
			c := int((lo - reg.Base) / stride)
			slotEnd := reg.Base + uint64(c+1)*stride
			seg := hi
			if slotEnd < seg {
				seg = slotEnd
			}
			if c >= 0 && c < shape.C {
				counts[c] += int(seg-lo) / cfg.PruneBytesPerNZ
			}
			lo = seg
		}
	}
	return counts
}

// CountChannel returns one channel's count (still a full inference).
func (o *TraceOracle) CountChannel(d int, pixels []Pixel) int {
	return o.Counts(pixels)[d]
}
