package weightrev

import (
	"fmt"
	"sync/atomic"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// FastOracle computes the same per-channel non-zero counts as TraceOracle
// but analytically, exploiting that attack queries are all-zero except a
// handful of pixels: the convolution output equals the bias everywhere
// except the few positions the probe pixels touch. It implements the exact
// semantics of the simulated accelerator's fused conv → activation → pool
// pipeline (including threshold activations, clipped max-pool windows,
// fixed-divisor average pooling, and the optional pool-before-activation
// order), and is validated bit-for-bit against TraceOracle by tests.
type FastOracle struct {
	net   *nn.Network
	layer int
	spec  *nn.LayerSpec
	in    nn.Shape
	conv  nn.Shape
	out   nn.Shape

	thresh        float32
	poolBeforeAct bool

	// base state for the all-zero input: per channel, the non-zero count,
	// and (for pooled layers) per pooled position whether it is non-zero.
	baseCount []int
	baseNZ    [][]bool

	queries atomic.Int64
}

// NewFastOracle builds the analytic oracle for layer 0 of net, mirroring
// the semantics selected by cfg.
func NewFastOracle(net *nn.Network, cfg accel.Config, layer int) (*FastOracle, error) {
	if layer != 0 {
		return nil, fmt.Errorf("weightrev: the fast oracle models attacker-controlled layer inputs, so the target must be layer 0")
	}
	spec := &net.Specs[layer]
	if spec.Kind != nn.KindConv {
		return nil, fmt.Errorf("weightrev: layer %d is not a conv layer", layer)
	}
	o := &FastOracle{
		net:           net,
		layer:         layer,
		spec:          spec,
		in:            net.Input,
		conv:          spec.ConvOut(net.Input),
		out:           net.Shapes[layer],
		thresh:        cfg.Threshold,
		poolBeforeAct: cfg.PoolBeforeActivation,
	}
	o.rebuildBase()
	return o, nil
}

// SetThreshold adjusts the activation threshold.
func (o *FastOracle) SetThreshold(t float32) {
	o.thresh = t
	o.rebuildBase()
}

// Queries returns the number of device inferences issued.
func (o *FastOracle) Queries() int { return int(o.queries.Load()) }

func (o *FastOracle) weight(d, c, ky, kx int) float32 {
	f := o.spec.F
	return o.net.Params[o.layer].W.Data[((d*o.in.C+c)*f+ky)*f+kx]
}

func (o *FastOracle) bias(d int) float32 {
	return o.net.Params[o.layer].B.Data[d]
}

func (o *FastOracle) act(v float32) float32 {
	if v > o.thresh {
		return v
	}
	return 0
}

// convValue evaluates the conv output at (d, cy, cx) for a sparse input.
func (o *FastOracle) convValue(d, cy, cx int, pixels []Pixel) float32 {
	spec := o.spec
	v := o.bias(d)
	for _, p := range pixels {
		ky := p.Y - (cy*spec.S - spec.P)
		kx := p.X - (cx*spec.S - spec.P)
		if ky >= 0 && ky < spec.F && kx >= 0 && kx < spec.F {
			v += o.weight(d, p.C, ky, kx) * p.V
		}
	}
	return v
}

// pooledValue evaluates the fused pooled output at (d, py, px), honoring
// the configured activation order, for a sparse input.
func (o *FastOracle) pooledValue(d, py, px int, pixels []Pixel) float32 {
	spec := o.spec
	if spec.Pool == nn.PoolNone {
		return o.act(o.convValue(d, py, px, pixels))
	}
	y0 := py*spec.PoolS - spec.PoolP
	x0 := px*spec.PoolS - spec.PoolP
	var maxV float32
	var sum float32
	first := true
	for ky := 0; ky < spec.PoolF; ky++ {
		cy := y0 + ky
		if cy < 0 || cy >= o.conv.H {
			continue
		}
		for kx := 0; kx < spec.PoolF; kx++ {
			cx := x0 + kx
			if cx < 0 || cx >= o.conv.W {
				continue
			}
			v := o.convValue(d, cy, cx, pixels)
			if !o.poolBeforeAct {
				v = o.act(v)
			}
			if first || v > maxV {
				maxV = v
				first = false
			}
			sum += v
		}
	}
	var pooled float32
	if spec.Pool == nn.PoolMax {
		pooled = maxV
	} else {
		pooled = sum / float32(spec.PoolF*spec.PoolF)
	}
	if o.poolBeforeAct {
		pooled = o.act(pooled)
	}
	return pooled
}

// rebuildBase evaluates the all-zero-input output state once per channel.
func (o *FastOracle) rebuildBase() {
	o.baseCount = make([]int, o.out.C)
	o.baseNZ = make([][]bool, o.out.C)
	for d := 0; d < o.out.C; d++ {
		nz := make([]bool, o.out.H*o.out.W)
		n := 0
		for py := 0; py < o.out.H; py++ {
			for px := 0; px < o.out.W; px++ {
				if o.pooledValue(d, py, px, nil) != 0 {
					nz[py*o.out.W+px] = true
					n++
				}
			}
		}
		o.baseNZ[d] = nz
		o.baseCount[d] = n
	}
}

// affectedOut lists the output (pooled) positions whose value can differ
// from the base state for the given sparse input.
func (o *FastOracle) affectedOut(pixels []Pixel) map[[2]int]bool {
	spec := o.spec
	conv := map[[2]int]bool{}
	span := func(p, w int) (int, int) {
		// conv positions m with 0 <= p - (m*S - P) < F
		lo := (p + spec.P - spec.F + 1 + spec.S - 1) / spec.S // ceil
		if lo < 0 {
			lo = 0
		}
		hi := (p + spec.P) / spec.S
		if hi > w-1 {
			hi = w - 1
		}
		return lo, hi
	}
	for _, p := range pixels {
		y0, y1 := span(p.Y, o.conv.H)
		x0, x1 := span(p.X, o.conv.W)
		for cy := y0; cy <= y1; cy++ {
			for cx := x0; cx <= x1; cx++ {
				conv[[2]int{cy, cx}] = true
			}
		}
	}
	if spec.Pool == nn.PoolNone {
		return conv
	}
	pooled := map[[2]int]bool{}
	pspan := func(p, w int) (int, int) {
		lo := (p + spec.PoolP - spec.PoolF + 1 + spec.PoolS - 1) / spec.PoolS
		if lo < 0 {
			lo = 0
		}
		hi := (p + spec.PoolP) / spec.PoolS
		if hi > w-1 {
			hi = w - 1
		}
		return lo, hi
	}
	for pos := range conv {
		y0, y1 := pspan(pos[0], o.out.H)
		x0, x1 := pspan(pos[1], o.out.W)
		for py := y0; py <= y1; py++ {
			for px := x0; px <= x1; px++ {
				pooled[[2]int{py, px}] = true
			}
		}
	}
	return pooled
}

// CountChannel returns the non-zero output count of channel d.
func (o *FastOracle) CountChannel(d int, pixels []Pixel) int {
	o.queries.Add(1)
	return o.countChannel(d, pixels, o.affectedOut(pixels))
}

func (o *FastOracle) countChannel(d int, pixels []Pixel, affected map[[2]int]bool) int {
	n := o.baseCount[d]
	for pos := range affected {
		now := o.pooledValue(d, pos[0], pos[1], pixels) != 0
		was := o.baseNZ[d][pos[0]*o.out.W+pos[1]]
		if now && !was {
			n++
		} else if !now && was {
			n--
		}
	}
	return n
}

// Counts returns all channels' non-zero counts.
func (o *FastOracle) Counts(pixels []Pixel) []int {
	o.queries.Add(1)
	affected := o.affectedOut(pixels)
	counts := make([]int, o.out.C)
	for d := range counts {
		counts[d] = o.countChannel(d, pixels, affected)
	}
	return counts
}
