package weightrev

import (
	"context"
	"errors"
	"math"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// ratiosBitsEqual compares two recovered filters bit for bit — the
// determinism contract is exact float identity, not tolerance.
func ratiosBitsEqual(t *testing.T, d int, a, b *FilterRatios) {
	t.Helper()
	if a.Channel != b.Channel {
		t.Fatalf("filter %d: channel %d vs %d", d, a.Channel, b.Channel)
	}
	for c := range a.Ratio {
		for ky := range a.Ratio[c] {
			for kx := range a.Ratio[c][ky] {
				if math.Float64bits(a.Ratio[c][ky][kx]) != math.Float64bits(b.Ratio[c][ky][kx]) {
					t.Fatalf("filter %d (%d,%d,%d): ratio %v vs %v (bit mismatch)",
						d, c, ky, kx, a.Ratio[c][ky][kx], b.Ratio[c][ky][kx])
				}
				if a.Zero[c][ky][kx] != b.Zero[c][ky][kx] {
					t.Fatalf("filter %d (%d,%d,%d): zero flag %v vs %v",
						d, c, ky, kx, a.Zero[c][ky][kx], b.Zero[c][ky][kx])
				}
			}
		}
	}
}

// TestRecoverAllFiltersParallelMatchesSerial: the parallel fan-out must be
// bit-identical to the Serial reference — ratios, zero flags, and the
// Queries() total — against the real trace-backed oracle (whose session
// pool the parallel path exercises concurrently; run with -race to check
// the schedule independence for real).
func TestRecoverAllFiltersParallelMatchesSerial(t *testing.T) {
	build := func() *nn.Network {
		return convLayer(t, nn.Shape{C: 2, H: 8, W: 8}, 4, 3, 1, 0, nn.PoolNone, 0, 0, 0.07, 0.2, 7)
	}
	newAttacker := func(serial bool) *Attacker {
		o, err := NewTraceOracle(build(), accel.Config{}, 0)
		if err != nil {
			t.Fatal(err)
		}
		g := Geometry{In: nn.Shape{C: 2, H: 8, W: 8}, OutC: 4, F: 3, S: 1, P: 0}
		at := NewAttacker(o, g)
		at.Serial = serial
		return at
	}

	ser := newAttacker(true)
	serRes, err := ser.RecoverAllFilters(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	par := newAttacker(false)
	parRes, err := par.RecoverAllFilters(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(serRes) != len(parRes) {
		t.Fatalf("result lengths %d vs %d", len(serRes), len(parRes))
	}
	for d := range serRes {
		ratiosBitsEqual(t, d, serRes[d], parRes[d])
	}
	if sq, pq := ser.O.Queries(), par.O.Queries(); sq != pq {
		t.Fatalf("query totals diverge: serial %d, parallel %d", sq, pq)
	}
}

// TestRecoverAllFiltersCancellation: a pre-cancelled context must abort
// every filter and surface context.Canceled through the wrap.
func TestRecoverAllFiltersCancellation(t *testing.T) {
	net := convLayer(t, nn.Shape{C: 1, H: 6, W: 6}, 2, 3, 1, 0, nn.PoolNone, 0, 0, 0.07, 0, 8)
	o, err := NewTraceOracle(net, accel.Config{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	at := NewAttacker(o, Geometry{In: nn.Shape{C: 1, H: 6, W: 6}, OutC: 2, F: 3, S: 1, P: 0})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := at.RecoverAllFilters(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestStackRecoverParallelMatchesSerial: the per-(filter, channel) task
// fan-out inside recoverLayer must reproduce the Serial reference bit for
// bit across the whole peel — ratios, zero flags, reachability, and the
// device query total.
func TestStackRecoverParallelMatchesSerial(t *testing.T) {
	recover := func(serial bool) *StackRecovery {
		net := stackVictim(t)
		o, err := NewStackOracle(net)
		if err != nil {
			t.Fatal(err)
		}
		at := NewStackAttacker(o, net)
		at.Serial = serial
		rec, err := at.Recover()
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	ser := recover(true)
	par := recover(false)
	if ser.Queries != par.Queries {
		t.Fatalf("query totals diverge: serial %d, parallel %d", ser.Queries, par.Queries)
	}
	for k := range ser.Ratios {
		for c := range ser.Unreachable[k] {
			if ser.Unreachable[k][c] != par.Unreachable[k][c] {
				t.Fatalf("layer %d channel %d: unreachable %v vs %v", k, c, ser.Unreachable[k][c], par.Unreachable[k][c])
			}
		}
		for d := range ser.Ratios[k] {
			for c := range ser.Ratios[k][d] {
				for ky := range ser.Ratios[k][d][c] {
					for kx := range ser.Ratios[k][d][c][ky] {
						sv, pv := ser.Ratios[k][d][c][ky][kx], par.Ratios[k][d][c][ky][kx]
						if math.Float64bits(sv) != math.Float64bits(pv) {
							t.Fatalf("layer %d d%d c%d (%d,%d): ratio %v vs %v (bit mismatch)", k, d, c, ky, kx, sv, pv)
						}
						if ser.Zero[k][d][c][ky][kx] != par.Zero[k][d][c][ky][kx] {
							t.Fatalf("layer %d d%d c%d (%d,%d): zero flag diverges", k, d, c, ky, kx)
						}
					}
				}
			}
		}
	}
}
