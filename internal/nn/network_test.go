package nn

import (
	"math"
	"math/rand"
	"testing"

	"cnnrev/internal/tensor"
)

func TestAlexNetShapes(t *testing.T) {
	n := AlexNet(1000, 1)
	want := []Shape{
		{96, 27, 27},
		{256, 13, 13},
		{384, 13, 13},
		{384, 13, 13},
		{256, 6, 6},
		{4096, 1, 1},
		{4096, 1, 1},
		{1000, 1, 1},
	}
	if len(n.Shapes) != len(want) {
		t.Fatalf("AlexNet has %d layers, want %d", len(n.Shapes), len(want))
	}
	for i, w := range want {
		if n.Shapes[i] != w {
			t.Errorf("layer %d (%s): shape %v, want %v", i, n.Specs[i].Name, n.Shapes[i], w)
		}
	}
}

func TestAlexNetMACs(t *testing.T) {
	n := AlexNet(1000, 1)
	// conv1: 55²·96·11²·3 per the paper's MAC formula.
	want := int64(55*55) * 96 * 121 * 3
	if got := n.MACs(0); got != want {
		t.Fatalf("conv1 MACs = %d, want %d", got, want)
	}
	// fc8: 1000·4096
	if got := n.MACs(7); got != 1000*4096 {
		t.Fatalf("fc8 MACs = %d", got)
	}
	if n.TotalMACs() <= n.MACs(0) {
		t.Fatal("TotalMACs must exceed a single layer")
	}
}

func TestLeNetAndConvNetShapes(t *testing.T) {
	le := LeNet(10)
	if le.Shapes[0] != (Shape{6, 14, 14}) || le.Shapes[1] != (Shape{16, 5, 5}) {
		t.Fatalf("LeNet conv shapes: %v", le.Shapes[:2])
	}
	if le.Output() != (Shape{10, 1, 1}) {
		t.Fatalf("LeNet output: %v", le.Output())
	}
	cn := ConvNet(10)
	if cn.Shapes[0] != (Shape{32, 16, 16}) || cn.Shapes[2] != (Shape{64, 4, 4}) {
		t.Fatalf("ConvNet shapes: %v", cn.Shapes)
	}
}

func TestSqueezeNetStructure(t *testing.T) {
	n := SqueezeNet(1000, 1)
	// conv1 pools 111 -> 55.
	if n.Shapes[0] != (Shape{96, 55, 55}) {
		t.Fatalf("conv1 out = %v, want 96x55x55", n.Shapes[0])
	}
	// Find the three bypass layers and the final conv10.
	bypass := 0
	for i := range n.Specs {
		if n.Specs[i].Kind == KindEltwise {
			bypass++
			if len(n.Specs[i].Inputs) != 2 {
				t.Fatalf("bypass %s has %d inputs", n.Specs[i].Name, len(n.Specs[i].Inputs))
			}
		}
	}
	if bypass != 3 {
		t.Fatalf("SqueezeNet has %d bypass paths, want 3", bypass)
	}
	if n.Output() != (Shape{1000, 1, 1}) {
		t.Fatalf("output = %v", n.Output())
	}
	// fire4 expands pool 55 -> 27; the concat after fire4 should be 256x27x27.
	for i := range n.Specs {
		if n.Specs[i].Name == "fire4/concat" && n.Shapes[i] != (Shape{256, 27, 27}) {
			t.Fatalf("fire4 concat = %v, want 256x27x27", n.Shapes[i])
		}
		if n.Specs[i].Name == "fire9/concat" && n.Shapes[i] != (Shape{512, 13, 13}) {
			t.Fatalf("fire9 concat = %v, want 512x13x13", n.Shapes[i])
		}
	}
}

func TestDepthScaling(t *testing.T) {
	n := AlexNet(10, 8)
	if n.Shapes[0].C != 12 || n.Shapes[1].C != 32 {
		t.Fatalf("depth-scaled channels: %v %v", n.Shapes[0], n.Shapes[1])
	}
	if n.Output().C != 10 {
		t.Fatal("classes must not scale")
	}
	if n.TotalWeights() >= AlexNet(10, 1).TotalWeights()/8 {
		t.Fatal("depth scaling should cut weights substantially")
	}
}

func TestNewRejectsBadGraphs(t *testing.T) {
	cases := []struct {
		name  string
		specs []LayerSpec
	}{
		{"forward ref", []LayerSpec{
			{Name: "a", Kind: KindConv, OutC: 1, F: 1, S: 1, Inputs: []int{1}},
			{Name: "b", Kind: KindConv, OutC: 1, F: 1, S: 1},
		}},
		{"kernel too big", []LayerSpec{
			{Name: "a", Kind: KindConv, OutC: 1, F: 50, S: 1},
		}},
		{"eltwise mismatch", []LayerSpec{
			{Name: "a", Kind: KindConv, OutC: 2, F: 1, S: 1},
			{Name: "b", Kind: KindConv, OutC: 3, F: 1, S: 1},
			{Name: "c", Kind: KindEltwise, Inputs: []int{0, 1}},
		}},
		{"concat spatial mismatch", []LayerSpec{
			{Name: "a", Kind: KindConv, OutC: 2, F: 1, S: 1},
			{Name: "b", Kind: KindConv, OutC: 2, F: 1, S: 2},
			{Name: "c", Kind: KindConcat, Inputs: []int{0, 1}},
		}},
		{"empty", nil},
	}
	for _, tc := range cases {
		if _, err := New(tc.name, Shape{C: 1, H: 8, W: 8}, tc.specs); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestInferDeterministic(t *testing.T) {
	n := LeNet(10)
	n.InitWeights(42)
	x := make([]float32, n.Input.Len())
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	a, b := n.Infer(x), n.Infer(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Infer must be deterministic")
		}
	}
	if len(a) != 10 {
		t.Fatalf("logit count = %d", len(a))
	}
}

// tinyDAG builds a small network exercising every layer kind: conv+pool,
// parallel branches, concat, eltwise, fc.
func tinyDAG(t *testing.T) *Network {
	t.Helper()
	n, err := New("tinydag", Shape{C: 2, H: 8, W: 8}, []LayerSpec{
		{Name: "conv1", Kind: KindConv, OutC: 4, F: 3, S: 1, P: 1, ReLU: true,
			Pool: PoolMax, PoolF: 2, PoolS: 2},
		{Name: "branchA", Kind: KindConv, OutC: 3, F: 1, S: 1, ReLU: true, Inputs: []int{0}},
		{Name: "branchB", Kind: KindConv, OutC: 3, F: 3, S: 1, P: 1, ReLU: true, Inputs: []int{0},
			Pool: PoolAvg, PoolF: 3, PoolS: 1, PoolP: 1},
		{Name: "cat", Kind: KindConcat, Inputs: []int{1, 2}},
		{Name: "proj", Kind: KindConv, OutC: 6, F: 1, S: 1, ReLU: true, Inputs: []int{3}},
		{Name: "sum", Kind: KindEltwise, Inputs: []int{3, 4}},
		{Name: "fc", Kind: KindFC, OutC: 4, Inputs: []int{5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestBackwardNumericalDAG verifies analytic gradients of the full DAG
// (pool, relu, concat, eltwise, fc) against central finite differences of
// the cross-entropy loss.
func TestBackwardNumericalDAG(t *testing.T) {
	n := tinyDAG(t)
	n.InitWeights(7)
	rng := rand.New(rand.NewSource(8))
	x := make([]float32, n.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	label := 2

	loss := func() float64 {
		out := n.Infer(x)
		d := make([]float32, len(out))
		return tensor.SoftmaxCrossEntropy(out, label, d)
	}

	st := n.newState()
	gs := n.newGradState()
	gs.zeroGrads()
	out := n.forward(st, x)
	last := len(n.Specs) - 1
	tensor.SoftmaxCrossEntropy(out, label, gs.dOut[last])
	n.backward(st, gs, x)

	const eps = 5e-3
	for li, p := range n.Params {
		if p == nil {
			continue
		}
		for s := 0; s < 6; s++ {
			i := rng.Intn(p.W.Len())
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := loss()
			p.W.Data[i] = orig - eps
			lm := loss()
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			got := float64(gs.dW[li][i])
			if math.Abs(num-got) > 5e-2*(1+math.Abs(num)) {
				t.Errorf("layer %s dW[%d]: numeric %g analytic %g", n.Specs[li].Name, i, num, got)
			}
		}
		// One bias per layer.
		i := rng.Intn(p.B.Len())
		orig := p.B.Data[i]
		p.B.Data[i] = orig + eps
		lp := loss()
		p.B.Data[i] = orig - eps
		lm := loss()
		p.B.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if got := float64(gs.dB[li][i]); math.Abs(num-got) > 5e-2*(1+math.Abs(num)) {
			t.Errorf("layer %s dB[%d]: numeric %g analytic %g", n.Specs[li].Name, i, num, got)
		}
	}
}

func TestSequentialBuilder(t *testing.T) {
	n, err := Sequential("seq", Shape{C: 1, H: 28, W: 28}, []ConvConfig{
		{OutC: 6, F: 5, S: 1, P: 2, Pool: PoolMax, PoolF: 2, PoolS: 2},
		{OutC: 16, F: 5, S: 1, Pool: PoolMax, PoolF: 2, PoolS: 2},
	}, []int{120, 10})
	if err != nil {
		t.Fatal(err)
	}
	ref := LeNet(10)
	for i := range ref.Shapes {
		if n.Shapes[i] != ref.Shapes[i] {
			t.Fatalf("Sequential differs from LeNet at layer %d: %v vs %v", i, n.Shapes[i], ref.Shapes[i])
		}
	}
	if n.Specs[len(n.Specs)-1].ReLU {
		t.Fatal("last FC must not have ReLU")
	}
}

func TestVGG11Shapes(t *testing.T) {
	n := VGG11(1000, 1)
	if len(n.Specs) != 11 {
		t.Fatalf("VGG11 has %d layers", len(n.Specs))
	}
	want := map[int]Shape{
		0:  {64, 112, 112},
		1:  {128, 56, 56},
		3:  {256, 28, 28},
		5:  {512, 14, 14},
		7:  {512, 7, 7},
		10: {1000, 1, 1},
	}
	for i, w := range want {
		if n.Shapes[i] != w {
			t.Errorf("layer %d: %v, want %v", i, n.Shapes[i], w)
		}
	}
}

func TestNiNShapes(t *testing.T) {
	n := NiN(10, 1)
	if n.Output() != (Shape{10, 1, 1}) {
		t.Fatalf("NiN output %v", n.Output())
	}
	if n.Shapes[2] != (Shape{96, 16, 16}) || n.Shapes[5] != (Shape{192, 8, 8}) {
		t.Fatalf("NiN stage shapes: %v %v", n.Shapes[2], n.Shapes[5])
	}
	// No FC layers at all.
	for i := range n.Specs {
		if n.Specs[i].Kind == KindFC {
			t.Fatal("NiN must be fully convolutional")
		}
	}
}

func TestResNetMiniShapes(t *testing.T) {
	n := ResNetMini(10, 1)
	if n.Output() != (Shape{10, 1, 1}) {
		t.Fatalf("output %v", n.Output())
	}
	elt := 0
	for i := range n.Specs {
		if n.Specs[i].Kind == KindEltwise {
			elt++
			a, b := n.Specs[i].Inputs[0], n.Specs[i].Inputs[1]
			if n.Shapes[a] != n.Shapes[b] {
				t.Fatalf("shortcut dims mismatch at %s", n.Specs[i].Name)
			}
		}
		if n.Specs[i].Name == "proj" && n.Shapes[i] != (Shape{32, 16, 16}) {
			t.Fatalf("projection shape %v", n.Shapes[i])
		}
	}
	if elt != 2 {
		t.Fatalf("%d shortcuts, want 2", elt)
	}
	// It must train like any other DAG.
	n.InitWeights(1)
	x := make([]float32, n.Input.Len())
	if got := len(n.Infer(x)); got != 10 {
		t.Fatalf("logits %d", got)
	}
}

func TestKindAndPoolStrings(t *testing.T) {
	if KindConv.String() != "conv" || KindFC.String() != "fc" ||
		KindConcat.String() != "concat" || KindEltwise.String() != "eltwise" {
		t.Fatal("Kind names wrong")
	}
	if PoolNone.String() != "none" || PoolMax.String() != "max" || PoolAvg.String() != "avg" {
		t.Fatal("PoolKind names wrong")
	}
	if (Shape{3, 4, 5}).String() != "3x4x5" {
		t.Fatal("Shape string wrong")
	}
	if Kind(99).String() == "" || PoolKind(99).String() == "" {
		t.Fatal("unknown enum names must not be empty")
	}
}
