package nn

import (
	"math"
	"math/rand"

	"cnnrev/internal/tensor"
)

// gradState carries per-layer backward buffers for one worker.
type gradState struct {
	dOut     [][]float32 // gradient w.r.t. each layer output
	dActMax  []float32   // scratch: gradient w.r.t. pre-pool activation
	dInMax   []float32   // scratch: gradient w.r.t. a layer input
	colsGrad []float32   // scratch for conv backward
	dW, dB   [][]float32 // parameter gradient accumulators (nil for non-param layers)
}

func (n *Network) newGradState() *gradState {
	gs := &gradState{
		dOut: make([][]float32, len(n.Specs)),
		dW:   make([][]float32, len(n.Specs)),
		dB:   make([][]float32, len(n.Specs)),
	}
	maxAct, maxIn, maxCols := 0, n.Input.Len(), 0
	for i := range n.Specs {
		gs.dOut[i] = make([]float32, n.Shapes[i].Len())
		if p := n.Params[i]; p != nil {
			gs.dW[i] = make([]float32, p.W.Len())
			gs.dB[i] = make([]float32, p.B.Len())
		}
		for _, in := range n.InShapes[i] {
			if in.Len() > maxIn {
				maxIn = in.Len()
			}
		}
		if n.Specs[i].Kind == KindConv {
			spec := &n.Specs[i]
			in := n.InShapes[i][0]
			c := spec.ConvOut(in)
			if c.Len() > maxAct {
				maxAct = c.Len()
			}
			if k := in.C * spec.F * spec.F * c.H * c.W; k > maxCols {
				maxCols = k
			}
		}
	}
	gs.dActMax = make([]float32, maxAct)
	gs.dInMax = make([]float32, maxIn)
	gs.colsGrad = make([]float32, maxCols)
	return gs
}

// zeroGrads clears parameter-gradient accumulators.
func (gs *gradState) zeroGrads() {
	for i := range gs.dW {
		for j := range gs.dW[i] {
			gs.dW[i][j] = 0
		}
		for j := range gs.dB[i] {
			gs.dB[i][j] = 0
		}
	}
}

// backward propagates the loss gradient (already stored in
// gs.dOut[last]) through the network, accumulating parameter gradients in
// gs.dW/gs.dB. st must hold the forward activations of the same sample.
func (n *Network) backward(st *state, gs *gradState, x []float32) {
	// Zero every intermediate dOut except the last, which carries dLoss.
	for i := 0; i < len(n.Specs)-1; i++ {
		buf := gs.dOut[i]
		for j := range buf {
			buf[j] = 0
		}
	}
	for i := len(n.Specs) - 1; i >= 0; i-- {
		spec := &n.Specs[i]
		g := gs.dOut[i]
		switch spec.Kind {
		case KindConv:
			in := n.InShapes[i][0]
			c := spec.ConvOut(in)
			// Gradient w.r.t. the pre-pool activation.
			var dAct []float32
			if spec.Pool != PoolNone {
				dAct = gs.dActMax[:c.Len()]
				for j := range dAct {
					dAct[j] = 0
				}
				p := tensor.Pool2D{F: spec.PoolF, S: spec.PoolS, P: spec.PoolP, Ceil: false}
				if spec.Pool == PoolMax {
					p.MaxBackward(g, st.argmax[i], dAct)
				} else {
					p.AvgBackward(g, c.C, c.H, c.W, dAct)
				}
			} else {
				dAct = g
			}
			if spec.ReLU {
				// In-place mask: dPre = dAct where activation was positive.
				act := st.actOut[i]
				for j := range dAct {
					if act[j] <= 0 {
						dAct[j] = 0
					}
				}
			}
			conv := tensor.Conv2D{InC: in.C, OutC: spec.OutC, F: spec.F, S: spec.S, P: spec.P}
			ref := spec.Inputs[0]
			var dIn []float32
			if ref != InputRef {
				dIn = gs.dInMax[:in.Len()]
			}
			conv.Backward(st.input(n, i, 0, x), in.H, in.W, n.Params[i].W.Data,
				dAct, gs.dW[i], gs.dB[i], dIn, st.cols, gs.colsGrad)
			if ref != InputRef {
				dst := gs.dOut[ref]
				for j, v := range dIn {
					dst[j] += v
				}
			}
		case KindFC:
			in := n.InShapes[i][0]
			if spec.ReLU {
				act := st.actOut[i]
				for j := range g {
					if act[j] <= 0 {
						g[j] = 0
					}
				}
			}
			l := tensor.Linear{In: in.Len(), Out: spec.OutC}
			ref := spec.Inputs[0]
			var dIn []float32
			if ref != InputRef {
				dIn = gs.dInMax[:in.Len()]
			}
			l.Backward(st.input(n, i, 0, x), n.Params[i].W.Data, g, gs.dW[i], gs.dB[i], dIn)
			if ref != InputRef {
				dst := gs.dOut[ref]
				for j, v := range dIn {
					dst[j] += v
				}
			}
		case KindConcat:
			off := 0
			for _, ref := range spec.Inputs {
				var size int
				if ref == InputRef {
					size = n.Input.Len()
				} else {
					size = n.Shapes[ref].Len()
				}
				if ref != InputRef {
					dst := gs.dOut[ref]
					seg := g[off : off+size]
					for k, v := range seg {
						dst[k] += v
					}
				}
				off += size
			}
		case KindEltwise:
			for _, ref := range spec.Inputs {
				if ref == InputRef {
					continue
				}
				dst := gs.dOut[ref]
				for k, v := range g {
					dst[k] += v
				}
			}
		}
	}
}

// Trainer performs minibatch SGD with momentum over a fixed network,
// parallelizing samples within a batch across workers.
type Trainer struct {
	Net         *Network
	LR          float32
	Momentum    float32
	WeightDecay float32
	BatchSize   int
	Workers     int
	// ClipNorm rescales each batch gradient to at most this global L2 norm
	// (0 disables clipping). Essential for stable short training of deep
	// candidates at aggressive learning rates.
	ClipNorm float64

	velW, velB [][]float32
	bufs       []*trainBuf
	losses     []float64
	shard      stepShard
}

type trainBuf struct {
	st *state
	gs *gradState
}

// stepShard is the trainer's reusable parallel-region body: one Run(w)
// invocation processes worker w's strided share of the current minibatch.
// Keeping it (and the operand references it needs) in a persistent field
// instead of a per-step closure keeps Trainer.step allocation-free, which
// the parallel candidate-ranking path relies on — dozens of short trainings
// run concurrently and per-step garbage would serialize them in the GC.
type stepShard struct {
	tr      *Trainer
	xs      [][]float32
	ys      []int
	batch   []int
	workers int
}

// Run computes worker w's forward/backward passes and gradient accumulation.
func (s *stepShard) Run(w int) {
	tr := s.tr
	n := tr.Net
	buf := tr.bufs[w]
	buf.gs.zeroGrads()
	var loss float64
	last := len(n.Specs) - 1
	for bi := w; bi < len(s.batch); bi += s.workers {
		idx := s.batch[bi]
		x := s.xs[idx]
		out := n.forward(buf.st, x)
		loss += tensor.SoftmaxCrossEntropy(out, s.ys[idx], buf.gs.dOut[last])
		n.backward(buf.st, buf.gs, x)
	}
	// A local accumulator before the single final store keeps shards from
	// writing adjacent losses[] words in their hot loop (false sharing).
	tr.losses[w] = loss
}

// NewTrainer constructs a trainer with sensible defaults for any zero field
// (LR 0.01, momentum 0.9, batch 32, one worker per shared-pool slot).
func NewTrainer(n *Network) *Trainer {
	tr := &Trainer{
		Net:       n,
		LR:        0.01,
		Momentum:  0.9,
		BatchSize: 32,
		Workers:   tensor.Workers(),
	}
	tr.velW = make([][]float32, len(n.Specs))
	tr.velB = make([][]float32, len(n.Specs))
	for i, p := range n.Params {
		if p != nil {
			tr.velW[i] = make([]float32, p.W.Len())
			tr.velB[i] = make([]float32, p.B.Len())
		}
	}
	return tr
}

func (tr *Trainer) ensureBufs() {
	if tr.Workers < 1 {
		tr.Workers = 1
	}
	for len(tr.bufs) < tr.Workers {
		tr.bufs = append(tr.bufs, &trainBuf{st: tr.Net.newState(), gs: tr.Net.newGradState()})
	}
	if len(tr.losses) < tr.Workers {
		tr.losses = make([]float64, tr.Workers)
	}
}

// Epoch runs one pass over the dataset in shuffled minibatches and returns
// the mean cross-entropy loss.
func (tr *Trainer) Epoch(xs [][]float32, ys []int, rng *rand.Rand) float64 {
	tr.ensureBufs()
	perm := rng.Perm(len(xs))
	var totalLoss float64
	for start := 0; start < len(perm); start += tr.BatchSize {
		end := start + tr.BatchSize
		if end > len(perm) {
			end = len(perm)
		}
		totalLoss += tr.step(xs, ys, perm[start:end])
	}
	return totalLoss / float64(len(xs))
}

// step processes one minibatch and applies the SGD update; it returns the
// summed loss over the batch.
func (tr *Trainer) step(xs [][]float32, ys []int, batch []int) float64 {
	tr.ensureBufs() // no-op (and no allocation) once warm
	n := tr.Net
	workers := tr.Workers
	if workers > len(batch) {
		workers = len(batch)
	}
	// Worker shards run on the shared tensor pool; a shard's nested GEMM
	// parallelism then finds the pool busy and runs inline instead of
	// oversubscribing. The shard body and loss accumulators are persistent
	// trainer fields, so a step allocates nothing in steady state.
	tr.shard = stepShard{tr: tr, xs: xs, ys: ys, batch: batch, workers: workers}
	tensor.ParallelRun(workers, &tr.shard)
	tr.shard.xs, tr.shard.ys, tr.shard.batch = nil, nil, nil

	invBatch := 1 / float32(len(batch))
	// Reduce worker gradients into worker 0 and optionally clip the global
	// gradient norm.
	var sq float64
	for i, p := range n.Params {
		if p == nil {
			continue
		}
		for w := 1; w < workers; w++ {
			src := tr.bufs[w].gs
			dst := tr.bufs[0].gs
			for j, v := range src.dW[i] {
				dst.dW[i][j] += v
			}
			for j, v := range src.dB[i] {
				dst.dB[i][j] += v
			}
		}
		if tr.ClipNorm > 0 {
			for _, v := range tr.bufs[0].gs.dW[i] {
				g := float64(v) * float64(invBatch)
				sq += g * g
			}
			for _, v := range tr.bufs[0].gs.dB[i] {
				g := float64(v) * float64(invBatch)
				sq += g * g
			}
		}
	}
	scale := float32(1)
	if tr.ClipNorm > 0 {
		if norm := math.Sqrt(sq); norm > tr.ClipNorm {
			scale = float32(tr.ClipNorm / norm)
		}
	}
	for i, p := range n.Params {
		if p == nil {
			continue
		}
		gW, gB := tr.bufs[0].gs.dW[i], tr.bufs[0].gs.dB[i]
		for j := range p.W.Data {
			g := gW[j]*invBatch*scale + tr.WeightDecay*p.W.Data[j]
			tr.velW[i][j] = tr.Momentum*tr.velW[i][j] - tr.LR*g
			p.W.Data[j] += tr.velW[i][j]
		}
		for j := range p.B.Data {
			g := gB[j] * invBatch * scale
			tr.velB[i][j] = tr.Momentum*tr.velB[i][j] - tr.LR*g
			p.B.Data[j] += tr.velB[i][j]
		}
	}
	var loss float64
	for _, l := range tr.losses[:workers] {
		loss += l
	}
	return loss
}

// Accuracy returns the top-k classification accuracy of n over the dataset.
func Accuracy(n *Network, xs [][]float32, ys []int, k int) float64 {
	if len(xs) == 0 {
		return 0
	}
	workers := tensor.Workers()
	if workers > len(xs) {
		workers = len(xs)
	}
	hits := make([]int, workers)
	tensor.Parallel(workers, func(w int) {
		st := n.newState()
		// Per-worker top-k scratch: the ranking loop evaluates thousands of
		// samples and must not allocate per sample.
		idxBuf := make([]int, 0, k)
		valBuf := make([]float32, 0, k)
		hit := 0 // local accumulator: avoids false sharing on hits[]
		for i := w; i < len(xs); i += workers {
			out := n.forward(st, xs[i])
			for _, idx := range tensor.TopKInto(out, k, idxBuf, valBuf) {
				if idx == ys[i] {
					hit++
					break
				}
			}
		}
		hits[w] = hit
	})
	total := 0
	for _, h := range hits {
		total += h
	}
	return float64(total) / float64(len(xs))
}
