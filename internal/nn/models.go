package nn

import "fmt"

// scaleC divides a channel count by div, keeping at least one channel.
// div=1 reproduces the paper-size networks; larger divisors give the
// depth-scaled variants used for candidate-structure training (DESIGN.md §2).
func scaleC(c, div int) int {
	if div <= 1 {
		return c
	}
	s := c / div
	if s < 1 {
		s = 1
	}
	return s
}

// LeNet returns the 4-layer LeNet variant the paper studies (two conv
// layers with pooling, two fully-connected layers) for 28×28 grayscale
// input.
func LeNet(numClasses int) *Network {
	return MustNew("lenet", Shape{C: 1, H: 28, W: 28}, []LayerSpec{
		{Name: "conv1", Kind: KindConv, OutC: 6, F: 5, S: 1, P: 2, ReLU: true,
			Pool: PoolMax, PoolF: 2, PoolS: 2},
		{Name: "conv2", Kind: KindConv, OutC: 16, F: 5, S: 1, ReLU: true,
			Pool: PoolMax, PoolF: 2, PoolS: 2},
		{Name: "fc3", Kind: KindFC, OutC: 120, ReLU: true},
		{Name: "fc4", Kind: KindFC, OutC: numClasses},
	})
}

// ConvNet returns the 4-layer cuda-convnet style CIFAR network the paper
// studies (three conv layers, one fully-connected) for 32×32 RGB input.
func ConvNet(numClasses int) *Network {
	return MustNew("convnet", Shape{C: 3, H: 32, W: 32}, []LayerSpec{
		{Name: "conv1", Kind: KindConv, OutC: 32, F: 5, S: 1, P: 2, ReLU: true,
			Pool: PoolMax, PoolF: 2, PoolS: 2},
		{Name: "conv2", Kind: KindConv, OutC: 32, F: 5, S: 1, P: 2, ReLU: true,
			Pool: PoolAvg, PoolF: 2, PoolS: 2},
		{Name: "conv3", Kind: KindConv, OutC: 64, F: 3, S: 1, P: 1, ReLU: true,
			Pool: PoolAvg, PoolF: 2, PoolS: 2},
		{Name: "fc4", Kind: KindFC, OutC: numClasses},
	})
}

// AlexNet returns the 8-layer AlexNet (five conv, three FC) with the layer
// geometry of the paper's Table 4 original structure (CONV1₁, CONV2₁,
// CONV3₁, CONV4, CONV5₁). depthDiv scales channel counts for feasible
// pure-Go training; 1 gives the paper-size network.
func AlexNet(numClasses, depthDiv int) *Network {
	d := depthDiv
	return MustNew(fmt.Sprintf("alexnet/d%d", d), Shape{C: 3, H: 227, W: 227}, []LayerSpec{
		{Name: "conv1", Kind: KindConv, OutC: scaleC(96, d), F: 11, S: 4, P: 1, ReLU: true,
			Pool: PoolMax, PoolF: 3, PoolS: 2},
		{Name: "conv2", Kind: KindConv, OutC: scaleC(256, d), F: 5, S: 1, P: 2, ReLU: true,
			Pool: PoolMax, PoolF: 3, PoolS: 2},
		{Name: "conv3", Kind: KindConv, OutC: scaleC(384, d), F: 3, S: 1, P: 1, ReLU: true},
		{Name: "conv4", Kind: KindConv, OutC: scaleC(384, d), F: 3, S: 1, P: 1, ReLU: true},
		{Name: "conv5", Kind: KindConv, OutC: scaleC(256, d), F: 3, S: 1, P: 1, ReLU: true,
			Pool: PoolMax, PoolF: 3, PoolS: 2},
		{Name: "fc6", Kind: KindFC, OutC: scaleC(4096, d), ReLU: true},
		{Name: "fc7", Kind: KindFC, OutC: scaleC(4096, d), ReLU: true},
		{Name: "fc8", Kind: KindFC, OutC: numClasses},
	})
}

// fire appends a SqueezeNet fire module (squeeze 1×1 → parallel expand 1×1
// and expand 3×3 → channel concat) reading from layer `from`, and returns
// the index of the concat layer. If poolExpand is true, a 3×3/2 max pool is
// fused into both expand convolutions (equivalent to pooling the concat,
// since pooling is per-channel; this is how an accelerator without a
// dedicated fire unit realizes the SqueezeNet pool placement).
func fire(specs []LayerSpec, name string, from, squeezeC, expandC int, poolExpand bool) ([]LayerSpec, int) {
	sq := LayerSpec{Name: name + "/squeeze1x1", Kind: KindConv, OutC: squeezeC, F: 1, S: 1, ReLU: true, Inputs: []int{from}}
	specs = append(specs, sq)
	sqIdx := len(specs) - 1
	e1 := LayerSpec{Name: name + "/expand1x1", Kind: KindConv, OutC: expandC, F: 1, S: 1, ReLU: true, Inputs: []int{sqIdx}}
	e3 := LayerSpec{Name: name + "/expand3x3", Kind: KindConv, OutC: expandC, F: 3, S: 1, P: 1, ReLU: true, Inputs: []int{sqIdx}}
	if poolExpand {
		for _, e := range []*LayerSpec{&e1, &e3} {
			e.Pool, e.PoolF, e.PoolS = PoolMax, 3, 2
		}
	}
	specs = append(specs, e1, e3)
	cat := LayerSpec{Name: name + "/concat", Kind: KindConcat, Inputs: []int{len(specs) - 2, len(specs) - 1}}
	specs = append(specs, cat)
	return specs, len(specs) - 1
}

// SqueezeNet returns the SqueezeNet the paper studies: two conv layers,
// eight fire modules, and three simple bypass paths (element-wise additions
// around fire3, fire5 and fire7, the fires whose input and output dims
// match). depthDiv scales channels as in AlexNet.
func SqueezeNet(numClasses, depthDiv int) *Network {
	d := depthDiv
	var specs []LayerSpec
	specs = append(specs, LayerSpec{Name: "conv1", Kind: KindConv,
		OutC: scaleC(96, d), F: 7, S: 2, ReLU: true,
		Pool: PoolMax, PoolF: 3, PoolS: 2, Inputs: []int{InputRef}})
	conv1 := 0

	var f2, f3, by3, f4, f5, by5, f6, f7, by7, f8, f9 int
	specs, f2 = fire(specs, "fire2", conv1, scaleC(16, d), scaleC(64, d), false)
	specs, f3 = fire(specs, "fire3", f2, scaleC(16, d), scaleC(64, d), false)
	specs = append(specs, LayerSpec{Name: "bypass23", Kind: KindEltwise, Inputs: []int{f2, f3}})
	by3 = len(specs) - 1
	specs, f4 = fire(specs, "fire4", by3, scaleC(32, d), scaleC(128, d), true)
	specs, f5 = fire(specs, "fire5", f4, scaleC(32, d), scaleC(128, d), false)
	specs = append(specs, LayerSpec{Name: "bypass45", Kind: KindEltwise, Inputs: []int{f4, f5}})
	by5 = len(specs) - 1
	specs, f6 = fire(specs, "fire6", by5, scaleC(48, d), scaleC(192, d), false)
	specs, f7 = fire(specs, "fire7", f6, scaleC(48, d), scaleC(192, d), false)
	specs = append(specs, LayerSpec{Name: "bypass67", Kind: KindEltwise, Inputs: []int{f6, f7}})
	by7 = len(specs) - 1
	specs, f8 = fire(specs, "fire8", by7, scaleC(64, d), scaleC(256, d), true)
	specs, f9 = fire(specs, "fire9", f8, scaleC(64, d), scaleC(256, d), false)

	// conv10 with fused global average pooling (1×1 conv, then average over
	// the whole remaining plane).
	net := MustNew("tmp", Shape{C: 3, H: 227, W: 227}, specs) // resolve shapes so far
	w := net.Shapes[f9].W
	specs = append(specs, LayerSpec{Name: "conv10", Kind: KindConv,
		OutC: numClasses, F: 1, S: 1, ReLU: true,
		Pool: PoolAvg, PoolF: w, PoolS: w, Inputs: []int{f9}})

	return MustNew(fmt.Sprintf("squeezenet/d%d", d), Shape{C: 3, H: 227, W: 227}, specs)
}

// VGG11 returns VGG configuration A (11 weighted layers), a beyond-the-
// paper target demonstrating the structure attack on deep uniform-kernel
// networks. depthDiv scales channels as elsewhere.
func VGG11(numClasses, depthDiv int) *Network {
	d := depthDiv
	conv := func(name string, outC int, pool bool) LayerSpec {
		s := LayerSpec{Name: name, Kind: KindConv, OutC: scaleC(outC, d), F: 3, S: 1, P: 1, ReLU: true}
		if pool {
			s.Pool, s.PoolF, s.PoolS = PoolMax, 2, 2
		}
		return s
	}
	return MustNew(fmt.Sprintf("vgg11/d%d", d), Shape{C: 3, H: 224, W: 224}, []LayerSpec{
		conv("conv1", 64, true),
		conv("conv2", 128, true),
		conv("conv3", 256, false),
		conv("conv4", 256, true),
		conv("conv5", 512, false),
		conv("conv6", 512, true),
		conv("conv7", 512, false),
		conv("conv8", 512, true),
		{Name: "fc9", Kind: KindFC, OutC: scaleC(4096, d), ReLU: true},
		{Name: "fc10", Kind: KindFC, OutC: scaleC(4096, d), ReLU: true},
		{Name: "fc11", Kind: KindFC, OutC: numClasses},
	})
}

// NiN returns a CIFAR-scale Network-in-Network: 5×5/3×3 convolutions each
// followed by 1×1 "mlpconv" layers, a global-average-pooled classifier and
// no FC layers — another beyond-the-paper generality target (1×1 kernels
// and a global pool stress the solver's corner cases).
func NiN(numClasses, depthDiv int) *Network {
	d := depthDiv
	return MustNew(fmt.Sprintf("nin/d%d", d), Shape{C: 3, H: 32, W: 32}, []LayerSpec{
		{Name: "conv1", Kind: KindConv, OutC: scaleC(192, d), F: 5, S: 1, P: 2, ReLU: true},
		{Name: "mlp1a", Kind: KindConv, OutC: scaleC(160, d), F: 1, S: 1, ReLU: true},
		{Name: "mlp1b", Kind: KindConv, OutC: scaleC(96, d), F: 1, S: 1, ReLU: true,
			Pool: PoolMax, PoolF: 2, PoolS: 2},
		{Name: "conv2", Kind: KindConv, OutC: scaleC(192, d), F: 5, S: 1, P: 2, ReLU: true},
		{Name: "mlp2a", Kind: KindConv, OutC: scaleC(192, d), F: 1, S: 1, ReLU: true},
		{Name: "mlp2b", Kind: KindConv, OutC: scaleC(192, d), F: 1, S: 1, ReLU: true,
			Pool: PoolAvg, PoolF: 2, PoolS: 2},
		{Name: "conv3", Kind: KindConv, OutC: scaleC(192, d), F: 3, S: 1, P: 1, ReLU: true},
		{Name: "mlp3a", Kind: KindConv, OutC: scaleC(192, d), F: 1, S: 1, ReLU: true},
		{Name: "mlp3b", Kind: KindConv, OutC: numClasses, F: 1, S: 1, ReLU: true,
			Pool: PoolAvg, PoolF: 8, PoolS: 8},
	})
}

// ResNetMini returns a small residual network in the style the paper cites
// when introducing bypass connections (He et al.): a stem convolution, two
// residual stages (each two 3×3 convolutions with an element-wise shortcut,
// the second stage downsampling through a 1×1 projection), and a global-
// average-pooled classifier. All shortcut additions are visible to the
// trace adversary as element-wise layers.
func ResNetMini(numClasses, depthDiv int) *Network {
	d := depthDiv
	c16, c32 := scaleC(16, d), scaleC(32, d)
	var specs []LayerSpec
	add := func(s LayerSpec) int {
		specs = append(specs, s)
		return len(specs) - 1
	}
	stem := add(LayerSpec{Name: "stem", Kind: KindConv, OutC: c16, F: 3, S: 1, P: 1, ReLU: true,
		Inputs: []int{InputRef}})
	// Stage 1: identity shortcut.
	b1a := add(LayerSpec{Name: "b1a", Kind: KindConv, OutC: c16, F: 3, S: 1, P: 1, ReLU: true, Inputs: []int{stem}})
	b1b := add(LayerSpec{Name: "b1b", Kind: KindConv, OutC: c16, F: 3, S: 1, P: 1, ReLU: true, Inputs: []int{b1a}})
	sum1 := add(LayerSpec{Name: "sum1", Kind: KindEltwise, Inputs: []int{stem, b1b}})
	// Stage 2: strided branch with a 1×1 projection shortcut.
	b2a := add(LayerSpec{Name: "b2a", Kind: KindConv, OutC: c32, F: 3, S: 2, P: 1, ReLU: true, Inputs: []int{sum1}})
	b2b := add(LayerSpec{Name: "b2b", Kind: KindConv, OutC: c32, F: 3, S: 1, P: 1, ReLU: true, Inputs: []int{b2a}})
	proj := add(LayerSpec{Name: "proj", Kind: KindConv, OutC: c32, F: 1, S: 2, ReLU: true, Inputs: []int{sum1}})
	sum2 := add(LayerSpec{Name: "sum2", Kind: KindEltwise, Inputs: []int{proj, b2b}})
	// Classifier: 1×1 conv + global average pool.
	net := MustNew("tmp", Shape{C: 3, H: 32, W: 32}, specs)
	w := net.Shapes[sum2].W
	add(LayerSpec{Name: "head", Kind: KindConv, OutC: numClasses, F: 1, S: 1, ReLU: true,
		Pool: PoolAvg, PoolF: w, PoolS: w, Inputs: []int{sum2}})
	return MustNew(fmt.Sprintf("resnetmini/d%d", d), Shape{C: 3, H: 32, W: 32}, specs)
}

// ConvConfig is a generic convolution-layer description used to materialize
// candidate structures recovered by the attack into trainable networks.
type ConvConfig struct {
	OutC, F, S, P       int
	Pool                PoolKind
	PoolF, PoolS, PoolP int
}

// Sequential builds a plain feed-forward network: the given conv layers
// (each with ReLU) followed by FC layers (ReLU on all but the last).
func Sequential(name string, input Shape, convs []ConvConfig, fcs []int) (*Network, error) {
	var specs []LayerSpec
	for i, c := range convs {
		specs = append(specs, LayerSpec{
			Name: fmt.Sprintf("conv%d", i+1), Kind: KindConv,
			OutC: c.OutC, F: c.F, S: c.S, P: c.P, ReLU: true,
			Pool: c.Pool, PoolF: c.PoolF, PoolS: c.PoolS, PoolP: c.PoolP,
		})
	}
	for i, out := range fcs {
		specs = append(specs, LayerSpec{
			Name: fmt.Sprintf("fc%d", len(convs)+i+1), Kind: KindFC,
			OutC: out, ReLU: i < len(fcs)-1,
		})
	}
	return New(name, input, specs)
}
