package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// serializedNetwork is the on-disk form: specs plus parameters, with the
// derived fields (shapes, input shapes) rebuilt on load so a corrupted file
// cannot produce an inconsistent network.
type serializedNetwork struct {
	Version int
	Name    string
	Input   Shape
	Specs   []LayerSpec
	Weights [][]float32
	Biases  [][]float32
}

const ioVersion = 1

// Save serializes the network (structure and parameters) with encoding/gob.
func (n *Network) Save(w io.Writer) error {
	s := serializedNetwork{
		Version: ioVersion,
		Name:    n.Name,
		Input:   n.Input,
		Specs:   n.Specs,
	}
	for _, p := range n.Params {
		if p == nil {
			s.Weights = append(s.Weights, nil)
			s.Biases = append(s.Biases, nil)
			continue
		}
		s.Weights = append(s.Weights, p.W.Data)
		s.Biases = append(s.Biases, p.B.Data)
	}
	return gob.NewEncoder(w).Encode(&s)
}

// Load deserializes a network written by Save, revalidating the structure.
func Load(r io.Reader) (*Network, error) {
	var s serializedNetwork
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if s.Version != ioVersion {
		return nil, fmt.Errorf("nn: load: unsupported version %d", s.Version)
	}
	n, err := New(s.Name, s.Input, s.Specs)
	if err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(s.Weights) != len(n.Params) || len(s.Biases) != len(n.Params) {
		return nil, fmt.Errorf("nn: load: parameter count mismatch")
	}
	for i, p := range n.Params {
		if p == nil {
			if s.Weights[i] != nil || s.Biases[i] != nil {
				return nil, fmt.Errorf("nn: load: unexpected parameters at layer %d", i)
			}
			continue
		}
		if len(s.Weights[i]) != p.W.Len() || len(s.Biases[i]) != p.B.Len() {
			return nil, fmt.Errorf("nn: load: layer %d parameter size mismatch", i)
		}
		copy(p.W.Data, s.Weights[i])
		copy(p.B.Data, s.Biases[i])
	}
	return n, nil
}
