package nn

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	n := SqueezeNet(10, 16)
	n.InitWeights(5)
	var buf bytes.Buffer
	if err := n.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != n.Name || m.Input != n.Input || len(m.Specs) != len(n.Specs) {
		t.Fatal("structure not preserved")
	}
	x := make([]float32, n.Input.Len())
	rng := rand.New(rand.NewSource(6))
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	a, b := n.Infer(x), m.Infer(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded network computes differently")
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("expected decode error")
	}
}
