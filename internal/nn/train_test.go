package nn

import (
	"math/rand"
	"testing"

	"cnnrev/internal/dataset"
)

// TestTrainerLearnsLeNet is the substrate's key integration test: LeNet must
// learn a small synthetic task far beyond chance within a few epochs,
// demonstrating that forward, backward and the SGD update are consistent.
func TestTrainerLearnsLeNet(t *testing.T) {
	ds := dataset.Synthetic(3, 40, 1, 28, 28, 11)
	train, test := ds.Split(90)

	n := LeNet(3)
	n.InitWeights(1)
	tr := NewTrainer(n)
	tr.LR = 0.02
	tr.BatchSize = 10
	rng := rand.New(rand.NewSource(2))

	first := tr.Epoch(train.X, train.Y, rng)
	var last float64
	for e := 0; e < 6; e++ {
		last = tr.Epoch(train.X, train.Y, rng)
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %.4f last %.4f", first, last)
	}
	acc := Accuracy(n, test.X, test.Y, 1)
	if acc < 0.6 {
		t.Fatalf("test accuracy %.2f, want >= 0.6 (chance is 0.33)", acc)
	}
}

// TestTrainerLearnsDAG checks that training works through concat and
// eltwise layers (the SqueezeNet building blocks).
func TestTrainerLearnsDAG(t *testing.T) {
	ds := dataset.Synthetic(2, 30, 2, 8, 8, 12)
	train, test := ds.Split(40)

	n := tinyDAG(t)
	n.InitWeights(3)
	tr := NewTrainer(n)
	tr.LR = 0.05
	tr.BatchSize = 8
	rng := rand.New(rand.NewSource(4))
	for e := 0; e < 15; e++ {
		tr.Epoch(train.X, train.Y, rng)
	}
	acc := Accuracy(n, test.X, test.Y, 1)
	if acc < 0.7 {
		t.Fatalf("DAG test accuracy %.2f, want >= 0.7 (chance is 0.5)", acc)
	}
}

func TestAccuracyTopK(t *testing.T) {
	n := LeNet(5)
	n.InitWeights(9)
	ds := dataset.Synthetic(5, 4, 1, 28, 28, 13)
	top1 := Accuracy(n, ds.X, ds.Y, 1)
	top5 := Accuracy(n, ds.X, ds.Y, 5)
	if top5 != 1 {
		t.Fatalf("top-5 of 5 classes must be 1.0, got %v", top5)
	}
	if top1 > top5 {
		t.Fatal("top-1 cannot exceed top-5")
	}
}

func TestTrainerDeterministic(t *testing.T) {
	run := func() float64 {
		ds := dataset.Synthetic(2, 10, 1, 28, 28, 5)
		n := LeNet(2)
		n.InitWeights(1)
		tr := NewTrainer(n)
		tr.Workers = 1 // single worker for bitwise determinism
		tr.BatchSize = 5
		rng := rand.New(rand.NewSource(6))
		return tr.Epoch(ds.X, ds.Y, rng)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("single-worker training must be deterministic: %v vs %v", a, b)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	run := func(wd float32) float32 {
		n := LeNet(2)
		n.InitWeights(3)
		tr := NewTrainer(n)
		tr.Workers = 1
		tr.WeightDecay = wd
		tr.LR = 0.01
		xs := [][]float32{make([]float32, n.Input.Len()), make([]float32, n.Input.Len())}
		ys := []int{0, 1}
		rng := rand.New(rand.NewSource(4))
		for e := 0; e < 20; e++ {
			tr.Epoch(xs, ys, rng)
		}
		var sum float32
		for _, p := range n.Params {
			for _, v := range p.W.Data {
				sum += v * v
			}
		}
		return sum
	}
	if run(0.05) >= run(0) {
		t.Fatal("weight decay should shrink the weight norm")
	}
}

func TestClipNormBoundsUpdates(t *testing.T) {
	// With a huge LR, training diverges to NaN without clipping and stays
	// finite with it.
	diverged := func(clip float64) bool {
		ds := dataset.Synthetic(2, 10, 1, 28, 28, 7)
		n := LeNet(2)
		n.InitWeights(1)
		tr := NewTrainer(n)
		tr.LR = 5
		tr.ClipNorm = clip
		tr.BatchSize = 5
		rng := rand.New(rand.NewSource(8))
		for e := 0; e < 3; e++ {
			tr.Epoch(ds.X, ds.Y, rng)
		}
		for _, p := range n.Params {
			for _, v := range p.W.Data {
				if v != v { // NaN
					return true
				}
			}
		}
		return false
	}
	if !diverged(0) {
		t.Skip("unclipped training happened to stay finite; clip comparison moot")
	}
	if diverged(0.5) {
		t.Fatal("clipped training diverged")
	}
}
