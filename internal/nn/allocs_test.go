package nn

import (
	"math/rand"
	"testing"
)

// TestTrainerStepSteadyStateAllocs pins the zero-allocation property of the
// training hot loop: once the per-worker buffers are warm, a minibatch step
// must not allocate. The parallel candidate ranking runs dozens of short
// trainings concurrently; per-step garbage would serialize them in the GC.
// Tolerance 1 covers a GC emptying the shared pools' sync.Pool caches
// mid-measurement.
func TestTrainerStepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin runs in the non-race job")
	}
	net := LeNet(5)
	net.InitWeights(3)
	tr := NewTrainer(net)
	tr.BatchSize = 8
	tr.ClipNorm = 1.0

	rng := rand.New(rand.NewSource(1))
	xs := make([][]float32, 16)
	ys := make([]int, 16)
	for i := range xs {
		x := make([]float32, net.Input.Len())
		for j := range x {
			x[j] = float32(rng.NormFloat64())
		}
		xs[i] = x
		ys[i] = i % 5
	}
	batch := []int{0, 1, 2, 3, 4, 5, 6, 7}

	tr.step(xs, ys, batch) // warm up worker buffers and pool scratch
	tr.step(xs, ys, batch)
	allocs := testing.AllocsPerRun(20, func() {
		tr.step(xs, ys, batch)
	})
	if allocs > 1 {
		t.Fatalf("Trainer.step allocates %.1f objects per call in steady state, want 0", allocs)
	}
}
