package nn

import (
	"math/rand"
	"testing"

	"cnnrev/internal/dataset"
)

// TestQuantNetworkCloseToFloat: post-training int8 quantization of a
// trained LeNet must track the float network closely and retain accuracy.
func TestQuantNetworkCloseToFloat(t *testing.T) {
	ds := dataset.Synthetic(3, 40, 1, 28, 28, 61)
	train, test := ds.Split(90)
	n := LeNet(3)
	n.InitWeights(1)
	tr := NewTrainer(n)
	tr.LR = 0.02
	tr.BatchSize = 10
	rng := rand.New(rand.NewSource(2))
	for e := 0; e < 6; e++ {
		tr.Epoch(train.X, train.Y, rng)
	}
	floatAcc := Accuracy(n, test.X, test.Y, 1)

	q, err := QuantizeNetwork(n, train.X[:20])
	if err != nil {
		t.Fatal(err)
	}
	if e := q.MaxLogitError(test.X[:10]); e > 0.15 {
		t.Fatalf("quantized logits deviate %.2f (relative)", e)
	}
	qAcc := q.Accuracy(test.X, test.Y, 1)
	if qAcc < floatAcc-0.15 {
		t.Fatalf("quantized accuracy %.2f vs float %.2f", qAcc, floatAcc)
	}
	t.Logf("float acc %.2f, int8 acc %.2f", floatAcc, qAcc)
}

// TestQuantNetworkDAG covers concat/eltwise under quantization.
func TestQuantNetworkDAG(t *testing.T) {
	n := tinyDAG(t)
	n.InitWeights(5)
	calib := make([][]float32, 4)
	rng := rand.New(rand.NewSource(6))
	for i := range calib {
		calib[i] = make([]float32, n.Input.Len())
		for j := range calib[i] {
			calib[i][j] = float32(rng.NormFloat64())
		}
	}
	q, err := QuantizeNetwork(n, calib)
	if err != nil {
		t.Fatal(err)
	}
	if e := q.MaxLogitError(calib); e > 0.25 {
		t.Fatalf("DAG quantization deviates %.2f", e)
	}
}

func TestQuantizeNetworkNeedsCalibration(t *testing.T) {
	if _, err := QuantizeNetwork(LeNet(10), nil); err == nil {
		t.Fatal("expected error without calibration data")
	}
}
