package nn

import (
	"fmt"
	"math"

	"cnnrev/internal/tensor"
)

// QuantNetwork is a post-training symmetric-int8 quantization of a Network:
// weights per layer and activations per edge carry one scale each;
// convolutions and FC layers accumulate in int32. It models the numeric
// regime of int8 inference accelerators, where feature maps and filters
// occupy one byte per element in DRAM.
type QuantNetwork struct {
	Net *Network
	// WQ/WScale hold each parameterized layer's quantized weights.
	WQ     [][]int8
	WScale []float32
	// AScale[i] is the activation scale of layer i's output (AInScale is
	// the network input's).
	AScale   []float32
	AInScale float32
}

// QuantizeNetwork calibrates activation ranges by running the float network
// over the calibration inputs and quantizes every parameterized layer.
func QuantizeNetwork(n *Network, calib [][]float32) (*QuantNetwork, error) {
	if len(calib) == 0 {
		return nil, fmt.Errorf("nn: quantization needs calibration inputs")
	}
	q := &QuantNetwork{
		Net:    n,
		WQ:     make([][]int8, len(n.Specs)),
		WScale: make([]float32, len(n.Specs)),
		AScale: make([]float32, len(n.Specs)),
	}
	for i, p := range n.Params {
		if p == nil {
			continue
		}
		wp := tensor.ChooseScale(p.W.Data)
		q.WQ[i] = tensor.Quantize(p.W.Data, wp)
		q.WScale[i] = wp.Scale
	}
	// Calibrate: track max |activation| per layer and at the input.
	var inMax float32
	actMax := make([]float32, len(n.Specs))
	st := n.newState()
	for _, x := range calib {
		for _, v := range x {
			if a := abs32(v); a > inMax {
				inMax = a
			}
		}
		n.forward(st, x)
		for i := range n.Specs {
			for _, v := range st.out[i] {
				if a := abs32(v); a > actMax[i] {
					actMax[i] = a
				}
			}
		}
	}
	if inMax == 0 {
		inMax = 1
	}
	q.AInScale = inMax / 127
	for i, m := range actMax {
		if m == 0 {
			m = 1
		}
		q.AScale[i] = m / 127
	}
	return q, nil
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// Infer runs int8 inference on one sample, returning float32 logits.
// Activations travel between layers as int8 at the calibrated scales.
func (q *QuantNetwork) Infer(x []float32) []float32 {
	n := q.Net
	qIn := tensor.Quantize(x, tensor.QuantParams{Scale: q.AInScale})
	acts := make([][]int8, len(n.Specs))
	var lastFloat []float32

	inputOf := func(i, j int) ([]int8, float32) {
		ref := n.Specs[i].Inputs[j]
		if ref == InputRef {
			return qIn, q.AInScale
		}
		return acts[ref], q.AScale[ref]
	}

	for i := range n.Specs {
		spec := &n.Specs[i]
		out := make([]float32, 0)
		switch spec.Kind {
		case KindConv:
			in := n.InShapes[i][0]
			qx, xs := inputOf(i, 0)
			conv := tensor.Conv2D{InC: in.C, OutC: spec.OutC, F: spec.F, S: spec.S, P: spec.P}
			c := spec.ConvOut(in)
			out = make([]float32, c.Len())
			conv.QuantForward(qx, in.H, in.W, q.WQ[i], xs, q.WScale[i], n.Params[i].B.Data, out)
			if spec.ReLU {
				tensor.ReLUForward(out, out)
			}
			if spec.Pool != PoolNone {
				pooled := make([]float32, n.Shapes[i].Len())
				p := tensor.Pool2D{F: spec.PoolF, S: spec.PoolS, P: spec.PoolP}
				if spec.Pool == PoolMax {
					p.MaxForward(out, c.C, c.H, c.W, pooled, nil)
				} else {
					p.AvgForward(out, c.C, c.H, c.W, pooled)
				}
				out = pooled
			}
		case KindFC:
			in := n.InShapes[i][0]
			qx, xs := inputOf(i, 0)
			l := tensor.Linear{In: in.Len(), Out: spec.OutC}
			out = make([]float32, spec.OutC)
			l.QuantForward(qx, q.WQ[i], xs, q.WScale[i], n.Params[i].B.Data, out)
			if spec.ReLU {
				tensor.ReLUForward(out, out)
			}
		case KindConcat:
			out = make([]float32, n.Shapes[i].Len())
			off := 0
			for j := range spec.Inputs {
				qx, xs := inputOf(i, j)
				seg := tensor.Dequantize(qx, tensor.QuantParams{Scale: xs})
				copy(out[off:off+len(seg)], seg)
				off += len(seg)
			}
		case KindEltwise:
			out = make([]float32, n.Shapes[i].Len())
			for j := range spec.Inputs {
				qx, xs := inputOf(i, j)
				for k2, v := range qx {
					out[k2] += float32(v) * xs
				}
			}
		}
		// Requantize the layer output for downstream consumers.
		acts[i] = tensor.Quantize(out, tensor.QuantParams{Scale: q.AScale[i]})
		lastFloat = out
	}
	return lastFloat
}

// Accuracy returns top-k accuracy of the quantized network.
func (q *QuantNetwork) Accuracy(xs [][]float32, ys []int, k int) float64 {
	hits := 0
	for i, x := range xs {
		out := q.Infer(x)
		t := tensor.FromSlice(out, len(out))
		for _, idx := range t.TopK(k) {
			if idx == ys[i] {
				hits++
				break
			}
		}
	}
	if len(xs) == 0 {
		return 0
	}
	return float64(hits) / float64(len(xs))
}

// MaxLogitError returns the largest |quantized − float| logit difference
// over the samples, normalized by the float logit magnitude range.
func (q *QuantNetwork) MaxLogitError(xs [][]float32) float64 {
	var worst float64
	for _, x := range xs {
		fq := q.Infer(x)
		ff := q.Net.Infer(x)
		var rng float32
		for _, v := range ff {
			if a := abs32(v); a > rng {
				rng = a
			}
		}
		if rng == 0 {
			rng = 1
		}
		for i := range ff {
			e := math.Abs(float64(fq[i]-ff[i])) / float64(rng)
			if e > worst {
				worst = e
			}
		}
	}
	return worst
}
