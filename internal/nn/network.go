package nn

import (
	"fmt"
	"math/rand"

	"cnnrev/internal/tensor"
)

// Param holds the learnable parameters of one conv/fc layer.
type Param struct {
	W *tensor.Tensor // conv: OutC×(InC·F·F); fc: Out×In
	B *tensor.Tensor // OutC
}

// Network is a feed-forward CNN expressed as a DAG of LayerSpecs in
// topological order. It owns the learnable parameters.
type Network struct {
	Name  string
	Input Shape
	Specs []LayerSpec

	// Shapes[i] is the output shape of layer i; InShapes[i] are its resolved
	// input shapes, parallel to Specs[i].Inputs.
	Shapes   []Shape
	InShapes [][]Shape

	// Params[i] is non-nil iff layer i is conv or fc.
	Params []*Param
}

// New builds and validates a network from its specs, allocating (but not
// initializing) parameters. Layer inputs must refer to earlier layers only.
func New(name string, input Shape, specs []LayerSpec) (*Network, error) {
	n := &Network{
		Name:     name,
		Input:    input,
		Specs:    append([]LayerSpec(nil), specs...),
		Shapes:   make([]Shape, len(specs)),
		InShapes: make([][]Shape, len(specs)),
		Params:   make([]*Param, len(specs)),
	}
	for i := range n.Specs {
		spec := &n.Specs[i]
		if len(spec.Inputs) == 0 {
			// Default to simple sequential wiring: the previous layer, or the
			// network input for the first layer.
			spec.Inputs = []int{i - 1}
		}
		ins := make([]Shape, len(spec.Inputs))
		for j, ref := range spec.Inputs {
			switch {
			case ref == InputRef:
				ins[j] = input
			case ref >= 0 && ref < i:
				ins[j] = n.Shapes[ref]
			default:
				return nil, fmt.Errorf("nn: layer %d (%s) references layer %d (must be earlier)", i, spec.Name, ref)
			}
		}
		if err := spec.validate(i, ins); err != nil {
			return nil, fmt.Errorf("nn: %w", err)
		}
		n.InShapes[i] = ins
		n.Shapes[i] = spec.outShape(ins)
		if wc := spec.WeightCount(ins[0]); wc > 0 {
			n.Params[i] = &Param{
				W: tensor.New(wc),
				B: tensor.New(spec.OutC),
			}
		}
	}
	if len(n.Specs) == 0 {
		return nil, fmt.Errorf("nn: network %q has no layers", name)
	}
	return n, nil
}

// MustNew is New that panics on error; for the hand-written model zoo.
func MustNew(name string, input Shape, specs []LayerSpec) *Network {
	n, err := New(name, input, specs)
	if err != nil {
		panic(err)
	}
	return n
}

// InitWeights fills all parameters with He-normal weights and zero biases,
// deterministically from seed.
func (n *Network) InitWeights(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i, p := range n.Params {
		if p == nil {
			continue
		}
		fanIn := n.InShapes[i][0].Len()
		if n.Specs[i].Kind == KindConv {
			fanIn = n.InShapes[i][0].C * n.Specs[i].F * n.Specs[i].F
		}
		p.W.HeInit(rng, fanIn)
		p.B.Zero()
	}
}

// Output returns the final layer's output shape.
func (n *Network) Output() Shape { return n.Shapes[len(n.Shapes)-1] }

// NumClasses returns the flattened size of the final output (class count for
// a classifier).
func (n *Network) NumClasses() int { return n.Output().Len() }

// MACs returns the multiply-accumulate count of layer i using the paper's
// formula: Wc²·D_OFM·F²·D_IFM with Wc the conv-stage (pre-pool) output
// width. FC layers count Out·In. Concat/eltwise contribute zero.
func (n *Network) MACs(i int) int64 {
	spec := &n.Specs[i]
	in := n.InShapes[i][0]
	switch spec.Kind {
	case KindConv:
		c := spec.ConvOut(in)
		return int64(c.H) * int64(c.W) * int64(spec.OutC) * int64(spec.F) * int64(spec.F) * int64(in.C)
	case KindFC:
		return int64(spec.OutC) * int64(in.Len())
	}
	return 0
}

// TotalMACs sums MACs over all layers.
func (n *Network) TotalMACs() int64 {
	var t int64
	for i := range n.Specs {
		t += n.MACs(i)
	}
	return t
}

// TotalWeights returns the number of learnable parameters (weights + biases).
func (n *Network) TotalWeights() int {
	t := 0
	for _, p := range n.Params {
		if p != nil {
			t += p.W.Len() + p.B.Len()
		}
	}
	return t
}

// state carries per-layer forward activations for one sample; reused across
// calls to avoid allocation.
type state struct {
	convOut [][]float32 // pre-activation conv/fc output (nil for concat/eltwise)
	actOut  [][]float32 // post-ReLU (aliases convOut when no ReLU)
	out     [][]float32 // layer output (post-pool)
	argmax  [][]int     // maxpool selections
	cols    []float32   // shared im2col scratch (sized for the largest layer)
}

// newState allocates forward state for the network.
func (n *Network) newState() *state {
	st := &state{
		convOut: make([][]float32, len(n.Specs)),
		actOut:  make([][]float32, len(n.Specs)),
		out:     make([][]float32, len(n.Specs)),
		argmax:  make([][]int, len(n.Specs)),
	}
	maxCols := 0
	for i := range n.Specs {
		spec := &n.Specs[i]
		switch spec.Kind {
		case KindConv:
			in := n.InShapes[i][0]
			c := spec.ConvOut(in)
			st.convOut[i] = make([]float32, c.Len())
			st.actOut[i] = st.convOut[i]
			if spec.Pool != PoolNone {
				st.out[i] = make([]float32, n.Shapes[i].Len())
				if spec.Pool == PoolMax {
					st.argmax[i] = make([]int, n.Shapes[i].Len())
				}
			} else {
				st.out[i] = st.convOut[i]
			}
			if k := in.C * spec.F * spec.F * c.H * c.W; k > maxCols {
				maxCols = k
			}
		case KindFC:
			st.convOut[i] = make([]float32, spec.OutC)
			st.actOut[i] = st.convOut[i]
			st.out[i] = st.convOut[i]
		default:
			st.out[i] = make([]float32, n.Shapes[i].Len())
		}
	}
	st.cols = make([]float32, maxCols)
	return st
}

// input returns the activation buffer feeding input j of layer i.
func (st *state) input(n *Network, i, j int, x []float32) []float32 {
	ref := n.Specs[i].Inputs[j]
	if ref == InputRef {
		return x
	}
	return st.out[ref]
}

// forward runs one sample x (flattened Input shape) through the network,
// filling st. It returns the final output buffer.
func (n *Network) forward(st *state, x []float32) []float32 {
	for i := range n.Specs {
		spec := &n.Specs[i]
		switch spec.Kind {
		case KindConv:
			in := n.InShapes[i][0]
			conv := tensor.Conv2D{InC: in.C, OutC: spec.OutC, F: spec.F, S: spec.S, P: spec.P}
			conv.Forward(st.input(n, i, 0, x), in.H, in.W, n.Params[i].W.Data, n.Params[i].B.Data, st.convOut[i], st.cols)
			if spec.ReLU {
				tensor.ReLUForward(st.convOut[i], st.actOut[i])
			}
			if spec.Pool != PoolNone {
				c := spec.ConvOut(in)
				p := tensor.Pool2D{F: spec.PoolF, S: spec.PoolS, P: spec.PoolP, Ceil: false}
				if spec.Pool == PoolMax {
					p.MaxForward(st.actOut[i], c.C, c.H, c.W, st.out[i], st.argmax[i])
				} else {
					p.AvgForward(st.actOut[i], c.C, c.H, c.W, st.out[i])
				}
			}
		case KindFC:
			in := n.InShapes[i][0]
			l := tensor.Linear{In: in.Len(), Out: spec.OutC}
			l.Forward(st.input(n, i, 0, x), n.Params[i].W.Data, n.Params[i].B.Data, st.convOut[i])
			if spec.ReLU {
				tensor.ReLUForward(st.convOut[i], st.actOut[i])
			}
		case KindConcat:
			off := 0
			for j := range spec.Inputs {
				src := st.input(n, i, j, x)
				copy(st.out[i][off:off+len(src)], src)
				off += len(src)
			}
		case KindEltwise:
			out := st.out[i]
			copy(out, st.input(n, i, 0, x))
			for j := 1; j < len(spec.Inputs); j++ {
				src := st.input(n, i, j, x)
				for k, v := range src {
					out[k] += v
				}
			}
		}
	}
	return st.out[len(n.Specs)-1]
}

// Infer runs inference on a single sample and returns a copy of the logits.
func (n *Network) Infer(x []float32) []float32 {
	if len(x) != n.Input.Len() {
		panic(fmt.Sprintf("nn: input has %d elements, network %s expects %v", len(x), n.Name, n.Input))
	}
	st := n.newState()
	out := n.forward(st, x)
	res := make([]float32, len(out))
	copy(res, out)
	return res
}

// Predict returns the argmax class of the logits for sample x.
func (n *Network) Predict(x []float32) int {
	out := n.Infer(x)
	best, bi := out[0], 0
	for i, v := range out {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
