// Package nn implements the neural-network substrate for the reproduction:
// layer and network specifications, forward inference, backpropagation
// training, and constructors for the four networks the paper studies
// (LeNet, CIFAR ConvNet, AlexNet and SqueezeNet with bypass paths).
//
// A "layer" here is an accelerator-visible unit: convolution (or fully
// connected) fused with its activation and optional pooling, exactly as the
// paper's threat model assumes ("these three operations are often merged and
// performed together as a single layer in CNN accelerators"). Concatenation
// and element-wise addition appear as their own layers, as in Caffe and
// TensorFlow, which is what makes SqueezeNet fire modules and bypass paths
// visible to the memory-trace adversary.
package nn

import (
	"fmt"

	"cnnrev/internal/tensor"
)

// Kind enumerates the accelerator-visible layer kinds.
type Kind int

const (
	// KindConv is a convolution layer, optionally fused with ReLU and pooling.
	KindConv Kind = iota
	// KindFC is a fully-connected layer (a convolution whose filter spans the
	// entire input feature map), optionally fused with ReLU.
	KindFC
	// KindConcat concatenates its inputs along the channel dimension
	// (GoogLeNet/SqueezeNet style).
	KindConcat
	// KindEltwise adds its inputs element-wise (ResNet/SqueezeNet bypass).
	KindEltwise
)

// String returns the conventional name of the kind.
func (k Kind) String() string {
	switch k {
	case KindConv:
		return "conv"
	case KindFC:
		return "fc"
	case KindConcat:
		return "concat"
	case KindEltwise:
		return "eltwise"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// PoolKind selects the pooling operation fused after a convolution.
type PoolKind int

const (
	// PoolNone means no pooling is fused into the layer.
	PoolNone PoolKind = iota
	// PoolMax fuses max pooling.
	PoolMax
	// PoolAvg fuses average pooling (fixed F² divisor).
	PoolAvg
)

// String returns the conventional name of the pooling kind.
func (p PoolKind) String() string {
	switch p {
	case PoolNone:
		return "none"
	case PoolMax:
		return "max"
	case PoolAvg:
		return "avg"
	}
	return fmt.Sprintf("pool(%d)", int(p))
}

// InputRef is the sentinel layer index denoting the network input.
const InputRef = -1

// LayerSpec describes one layer of a network. For KindConv, OutC/F/S/P are
// the convolution geometry and the Pool* fields describe optional fused
// pooling. For KindFC only OutC is used. Concat and Eltwise carry no
// parameters of their own.
type LayerSpec struct {
	Name string
	Kind Kind

	OutC int // output channels (conv) or output features (fc)
	F    int // square kernel width (conv)
	S    int // stride (conv)
	P    int // per-side zero padding (conv)

	Pool                PoolKind
	PoolF, PoolS, PoolP int

	ReLU bool

	// Inputs lists the producing layer indices (InputRef for the network
	// input). Conv/FC take exactly one input; Concat and Eltwise take two or
	// more.
	Inputs []int
}

// Shape is a channels×height×width activation shape.
type Shape struct {
	C, H, W int
}

// Len returns the number of elements in the shape.
func (s Shape) Len() int { return s.C * s.H * s.W }

// String renders the shape as CxHxW.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.C, s.H, s.W) }

// ConvOut returns the spatial output shape of the conv stage of spec applied
// to input shape in (before pooling).
func (spec *LayerSpec) ConvOut(in Shape) Shape {
	return Shape{
		C: spec.OutC,
		H: tensor.ConvOutDim(in.H, spec.F, spec.S, spec.P),
		W: tensor.ConvOutDim(in.W, spec.F, spec.S, spec.P),
	}
}

// PoolOut returns the output shape after the fused pooling stage (floor
// mode, matching the exact-division pooling the paper's Table 4 implies),
// given the conv-stage output shape.
func (spec *LayerSpec) PoolOut(conv Shape) Shape {
	if spec.Pool == PoolNone {
		return conv
	}
	return Shape{
		C: conv.C,
		H: tensor.ConvOutDim(conv.H, spec.PoolF, spec.PoolS, spec.PoolP),
		W: tensor.ConvOutDim(conv.W, spec.PoolF, spec.PoolS, spec.PoolP),
	}
}

// WeightCount returns the number of weight elements of the layer given its
// input shape (zero for concat/eltwise).
func (spec *LayerSpec) WeightCount(in Shape) int {
	switch spec.Kind {
	case KindConv:
		return spec.OutC * in.C * spec.F * spec.F
	case KindFC:
		return spec.OutC * in.Len()
	}
	return 0
}

// validate checks a spec in the context of its resolved input shapes.
func (spec *LayerSpec) validate(idx int, inputs []Shape) error {
	switch spec.Kind {
	case KindConv:
		if len(inputs) != 1 {
			return fmt.Errorf("layer %d (%s): conv needs exactly 1 input, has %d", idx, spec.Name, len(inputs))
		}
		in := inputs[0]
		if spec.OutC <= 0 || spec.F <= 0 || spec.S <= 0 || spec.P < 0 {
			return fmt.Errorf("layer %d (%s): bad conv geometry OutC=%d F=%d S=%d P=%d", idx, spec.Name, spec.OutC, spec.F, spec.S, spec.P)
		}
		c := spec.ConvOut(in)
		if c.H <= 0 || c.W <= 0 {
			return fmt.Errorf("layer %d (%s): conv produces empty output from %v", idx, spec.Name, in)
		}
		if spec.Pool != PoolNone {
			if spec.PoolF <= 0 || spec.PoolS <= 0 || spec.PoolP < 0 {
				return fmt.Errorf("layer %d (%s): bad pool geometry F=%d S=%d P=%d", idx, spec.Name, spec.PoolF, spec.PoolS, spec.PoolP)
			}
			p := spec.PoolOut(c)
			if p.H <= 0 || p.W <= 0 {
				return fmt.Errorf("layer %d (%s): pool produces empty output", idx, spec.Name)
			}
		}
	case KindFC:
		if len(inputs) != 1 {
			return fmt.Errorf("layer %d (%s): fc needs exactly 1 input, has %d", idx, spec.Name, len(inputs))
		}
		if spec.OutC <= 0 {
			return fmt.Errorf("layer %d (%s): fc OutC=%d", idx, spec.Name, spec.OutC)
		}
	case KindConcat:
		if len(inputs) < 2 {
			return fmt.Errorf("layer %d (%s): concat needs >=2 inputs", idx, spec.Name)
		}
		for _, in := range inputs[1:] {
			if in.H != inputs[0].H || in.W != inputs[0].W {
				return fmt.Errorf("layer %d (%s): concat spatial mismatch %v vs %v", idx, spec.Name, inputs[0], in)
			}
		}
	case KindEltwise:
		if len(inputs) < 2 {
			return fmt.Errorf("layer %d (%s): eltwise needs >=2 inputs", idx, spec.Name)
		}
		for _, in := range inputs[1:] {
			if in != inputs[0] {
				return fmt.Errorf("layer %d (%s): eltwise shape mismatch %v vs %v", idx, spec.Name, inputs[0], in)
			}
		}
	default:
		return fmt.Errorf("layer %d (%s): unknown kind %d", idx, spec.Name, spec.Kind)
	}
	return nil
}

// outShape computes the layer output shape from resolved input shapes; it
// assumes validate has passed.
func (spec *LayerSpec) outShape(inputs []Shape) Shape {
	switch spec.Kind {
	case KindConv:
		return spec.PoolOut(spec.ConvOut(inputs[0]))
	case KindFC:
		return Shape{C: spec.OutC, H: 1, W: 1}
	case KindConcat:
		c := 0
		for _, in := range inputs {
			c += in.C
		}
		return Shape{C: c, H: inputs[0].H, W: inputs[0].W}
	case KindEltwise:
		return inputs[0]
	}
	panic("unreachable")
}
