package structrev

import (
	"testing"

	"cnnrev/internal/memtrace"
)

func TestAnalyzeRejectsEmptyTrace(t *testing.T) {
	if _, err := Analyze(&memtrace.Trace{BlockBytes: 4}, 100, 4); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestAnalyzeRejectsWriteOnlyTrace(t *testing.T) {
	tr := &memtrace.Trace{BlockBytes: 4, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 10, Kind: memtrace.Write},
	}}
	if _, err := Analyze(tr, 40, 4); err == nil {
		t.Fatal("expected error for a trace with no reads")
	}
}

func TestAnalyzeRejectsWrongInputSize(t *testing.T) {
	// A minimal two-layer trace whose first region is far smaller than the
	// declared input.
	tr := &memtrace.Trace{BlockBytes: 4, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 4, Kind: memtrace.Read},      // "input"
		{Cycle: 1, Addr: 8192, Count: 4, Kind: memtrace.Read},   // weights
		{Cycle: 2, Addr: 16384, Count: 4, Kind: memtrace.Write}, // OFM
		{Cycle: 3, Addr: 16384, Count: 4, Kind: memtrace.Read},  // next layer IFM
		{Cycle: 4, Addr: 24576, Count: 4, Kind: memtrace.Read},  // next weights
		{Cycle: 5, Addr: 32768, Count: 2, Kind: memtrace.Write}, // next OFM
	}}
	if _, err := Analyze(tr, 10000, 4); err == nil {
		t.Fatal("expected input-size mismatch error")
	}
}

// TestAnalyzeSyntheticTwoLayer verifies segmentation on a hand-built trace
// with known ground truth.
func TestAnalyzeSyntheticTwoLayer(t *testing.T) {
	const (
		input = uint64(0)     // 64 bytes
		w1    = uint64(8192)  // 32 bytes
		ofm1  = uint64(16384) // 48 bytes
		w2    = uint64(24576) // 16 bytes
		ofm2  = uint64(32768) // 8 bytes
	)
	tr := &memtrace.Trace{BlockBytes: 4, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: input, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: w1, Count: 8, Kind: memtrace.Read},
		{Cycle: 10, Addr: ofm1, Count: 12, Kind: memtrace.Write},
		// Layer 2 begins: first read of freshly written ofm1.
		{Cycle: 20, Addr: ofm1, Count: 12, Kind: memtrace.Read},
		{Cycle: 21, Addr: w2, Count: 4, Kind: memtrace.Read},
		{Cycle: 22, Addr: ofm1, Count: 12, Kind: memtrace.Read}, // tiled re-read
		{Cycle: 30, Addr: ofm2, Count: 2, Kind: memtrace.Write},
	}}
	a, err := Analyze(tr, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Segments) != 2 {
		t.Fatalf("%d segments, want 2", len(a.Segments))
	}
	s0, s1 := a.Segments[0], a.Segments[1]
	if s0.WeightsBytes != 32 || s1.WeightsBytes != 16 {
		t.Fatalf("weights: %d, %d", s0.WeightsBytes, s1.WeightsBytes)
	}
	if s0.OFMBytes != 48 || s1.OFMBytes != 8 {
		t.Fatalf("OFMs: %d, %d", s0.OFMBytes, s1.OFMBytes)
	}
	if s1.StartCycle != 20 {
		t.Fatalf("layer 2 starts at %d, want 20", s1.StartCycle)
	}
	if len(s1.Inputs) != 1 || s1.Inputs[0].Producer != 0 || s1.Inputs[0].Bytes != 48 {
		t.Fatalf("layer 2 inputs: %+v", s1.Inputs)
	}
	if len(s0.Inputs) != 1 || s0.Inputs[0].Producer != -1 {
		t.Fatalf("layer 1 inputs: %+v", s0.Inputs)
	}
}

func TestClipAndOverlapHelpers(t *testing.T) {
	a := memtrace.Interval{Lo: 10, Hi: 20}
	b := memtrace.Interval{Lo: 15, Hi: 30}
	if c := clip(a, b); c != (memtrace.Interval{Lo: 15, Hi: 20}) {
		t.Fatalf("clip = %+v", c)
	}
	if c := clip(a, memtrace.Interval{Lo: 25, Hi: 30}); c.Bytes() != 0 {
		t.Fatalf("disjoint clip should be empty, got %+v", c)
	}
	sorted := []memtrace.Interval{{Lo: 0, Hi: 10}, {Lo: 20, Hi: 30}}
	if !overlapsAny(sorted, memtrace.Interval{Lo: 25, Hi: 26}) {
		t.Fatal("overlapsAny missed a hit")
	}
	if overlapsAny(sorted, memtrace.Interval{Lo: 10, Hi: 20}) {
		t.Fatal("overlapsAny false positive in the gap")
	}
}

func TestRegionIndex(t *testing.T) {
	regions := []memtrace.Interval{{Lo: 0, Hi: 100}, {Lo: 200, Hi: 300}}
	cases := []struct {
		addr uint64
		want int
	}{{0, 0}, {99, 0}, {100, -1}, {150, -1}, {200, 1}, {299, 1}, {300, -1}}
	for _, tc := range cases {
		if got := regionIndex(regions, tc.addr); got != tc.want {
			t.Errorf("regionIndex(%d) = %d, want %d", tc.addr, got, tc.want)
		}
	}
}
