package structrev

import (
	"testing"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// makeSeg builds a minimal segment for unit tests.
func makeSeg(idx int, kind SegmentKind, ofm memtrace.Interval, inputs []SegInput) Segment {
	return Segment{Index: idx, Kind: kind, OFMRegion: ofm, OFMBytes: ofm.Bytes(), Inputs: inputs}
}

func TestDetectModulesFiresOnAdjacentPair(t *testing.T) {
	// squeeze (0) feeds two weighted consumers (1, 2) whose OFM regions are
	// DRAM-adjacent: the fire-module motif.
	a := &Analysis{Segments: []Segment{
		makeSeg(0, SegWeighted, memtrace.Interval{Lo: 0, Hi: 100}, nil),
		makeSeg(1, SegWeighted, memtrace.Interval{Lo: 1000, Hi: 1400},
			[]SegInput{{Producer: 0, Bytes: 100}}),
		makeSeg(2, SegWeighted, memtrace.Interval{Lo: 1400, Hi: 1800},
			[]SegInput{{Producer: 0, Bytes: 100}}),
	}}
	roles := detectModules(a)
	if roles[0] != roleSqueeze || roles[1] != roleExpandLo || roles[2] != roleExpandHi {
		t.Fatalf("roles = %v", roles)
	}
}

func TestDetectModulesIgnoresNonAdjacent(t *testing.T) {
	a := &Analysis{Segments: []Segment{
		makeSeg(0, SegWeighted, memtrace.Interval{Lo: 0, Hi: 100}, nil),
		makeSeg(1, SegWeighted, memtrace.Interval{Lo: 1000, Hi: 1400},
			[]SegInput{{Producer: 0, Bytes: 100}}),
		makeSeg(2, SegWeighted, memtrace.Interval{Lo: 9000, Hi: 9400},
			[]SegInput{{Producer: 0, Bytes: 100}}),
	}}
	roles := detectModules(a)
	for i, r := range roles {
		if r != roleNone {
			t.Fatalf("segment %d wrongly assigned role %v", i, r)
		}
	}
}

func TestInputDimsConcatAndEltwise(t *testing.T) {
	// Weighted segment reading two adjacent producers: depths add.
	a := &Analysis{Segments: []Segment{
		{}, {},
		makeSeg(2, SegWeighted, memtrace.Interval{}, []SegInput{
			{Producer: 0, Bytes: 1},
			{Producer: 1, Bytes: 1, Adjacent: true},
		}),
		makeSeg(3, SegEltwise, memtrace.Interval{}, []SegInput{
			{Producer: 0, Bytes: 1},
			{Producer: 1, Bytes: 1},
		}),
	}}
	out := []dims{{W: 10, D: 4}, {W: 10, D: 6}, {}, {}}
	d, ok := inputDims(a, 2, out, 0, 0)
	if !ok || d != (dims{W: 10, D: 10}) {
		t.Fatalf("concat dims = %v ok=%v", d, ok)
	}
	// Eltwise with mismatched depths must fail.
	if _, ok := inputDims(a, 3, out, 0, 0); ok {
		t.Fatal("eltwise over mismatched depths must be inconsistent")
	}
	// Eltwise with equal depths passes.
	out[1] = dims{W: 10, D: 4}
	if d, ok := inputDims(a, 3, out, 0, 0); !ok || d != (dims{W: 10, D: 4}) {
		t.Fatalf("eltwise dims = %v ok=%v", d, ok)
	}
	// Width mismatch fails in both modes.
	out[1] = dims{W: 9, D: 4}
	if _, ok := inputDims(a, 2, out, 0, 0); ok {
		t.Fatal("width mismatch must be inconsistent")
	}
}

func TestTimingCheckWindow(t *testing.T) {
	opt := Options{TimingSpreadMax: 1.5}
	seg := &Segment{StartCycle: 0, EndCycle: 1000}
	c := &LayerConfig{WIFM: 10, DIFM: 1, WOFM: 8, DOFM: 1, F: 3, S: 1, P: 0}
	t0, ok := timingCheck(timingWindow{}, seg, c, opt)
	if !ok || t0.lo != t0.hi {
		t.Fatalf("first layer must seed the window: %+v ok=%v", t0, ok)
	}
	// A layer 4x off per MAC must be rejected.
	segFast := &Segment{StartCycle: 0, EndCycle: 250}
	if _, ok := timingCheck(t0, segFast, c, opt); ok {
		t.Fatal("4x faster per MAC should violate a 1.5 tolerance")
	}
	// Within tolerance passes and widens the window.
	segNear := &Segment{StartCycle: 0, EndCycle: 1400}
	t1, ok := timingCheck(t0, segNear, c, opt)
	if !ok || t1.hi <= t1.lo {
		t.Fatalf("near layer should pass: %+v ok=%v", t1, ok)
	}
	// FC layers bypass the filter entirely.
	fc := &LayerConfig{WIFM: 10, DIFM: 1, WOFM: 1, DOFM: 5, FC: true, F: 10, S: 1}
	if t2, ok := timingCheck(t1, segFast, fc, opt); !ok || t2 != t1 {
		t.Fatal("FC must not affect the timing window")
	}
}

func TestUniqueConfigsDeduplicates(t *testing.T) {
	a := &Analysis{Segments: []Segment{{Index: 0, Kind: SegWeighted}}}
	c1 := LayerConfig{WIFM: 8, DIFM: 1, WOFM: 8, DOFM: 2, F: 3, S: 1, P: 1}
	c2 := c1
	c3 := c1
	c3.F = 1
	structures := []Structure{
		{Layers: []SolvedLayer{{Segment: 0, Config: &c1}}},
		{Layers: []SolvedLayer{{Segment: 0, Config: &c2}}},
		{Layers: []SolvedLayer{{Segment: 0, Config: &c3}}},
	}
	u := UniqueConfigs(a, structures)
	if len(u[0]) != 2 {
		t.Fatalf("got %d unique configs, want 2", len(u[0]))
	}
}

func TestSolveMaxStructuresGuard(t *testing.T) {
	a, _ := traceOf(t, nn.LeNet(10))
	opt := DefaultOptions()
	opt.MaxStructures = 1 // LeNet yields dozens; the valve must trip
	if _, err := Solve(a, 28, 1, 10, opt); err == nil {
		t.Fatal("expected MaxStructures abort")
	}
}
