package structrev

import (
	"bytes"
	"math/rand"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/corrupt"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// FuzzAnalyze feeds arbitrary serialized traces through the analyzer: it
// must never panic, only return errors or well-formed analyses.
func FuzzAnalyze(f *testing.F) {
	// Seed: a minimal valid two-layer trace.
	seed := &memtrace.Trace{BlockBytes: 4, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: 8192, Count: 8, Kind: memtrace.Read},
		{Cycle: 10, Addr: 16384, Count: 12, Kind: memtrace.Write},
		{Cycle: 20, Addr: 16384, Count: 12, Kind: memtrace.Read},
		{Cycle: 21, Addr: 24576, Count: 4, Kind: memtrace.Read},
		{Cycle: 30, Addr: 32768, Count: 2, Kind: memtrace.Write},
	}}
	var buf bytes.Buffer
	if err := seed.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), 64)
	f.Add([]byte{}, 1)

	f.Fuzz(func(t *testing.T, raw []byte, inputBytes int) {
		tr, err := memtrace.ReadTrace(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if tr.BlockBytes <= 0 || tr.BlockBytes > 1<<20 || len(tr.Accesses) > 10000 {
			return
		}
		// Align addresses and bound counts so the trace is structurally
		// plausible; the analyzer still sees arbitrary patterns.
		for i := range tr.Accesses {
			tr.Accesses[i].Addr -= tr.Accesses[i].Addr % uint64(tr.BlockBytes)
			if tr.Accesses[i].Count > 1<<16 {
				tr.Accesses[i].Count %= 1 << 16
			}
			if tr.Accesses[i].Count == 0 {
				tr.Accesses[i].Count = 1
			}
			tr.Accesses[i].Kind &= 1
		}
		if inputBytes <= 0 {
			inputBytes = 1
		}
		a, err := Analyze(tr, inputBytes%(1<<20), 4)
		if err != nil {
			return
		}
		// Well-formedness: segments ordered, producers precede consumers.
		for i, seg := range a.Segments {
			if seg.Index != i {
				t.Fatalf("segment %d has index %d", i, seg.Index)
			}
			for _, in := range seg.Inputs {
				if in.Producer >= i {
					t.Fatalf("segment %d depends on later segment %d", i, in.Producer)
				}
			}
		}
		// Solving may fail but must not panic.
		_, _ = Solve(a, 8, 1, 10, DefaultOptions())
	})
}

// FuzzAnalyzeHostile is the untrusted-boundary contract: ANY buffer the
// trace codec accepts — no structural normalization, however adversarial the
// access pattern — must flow through the tolerant analyzer without a panic,
// producing either an error or well-formed segments. This is the property
// the revcnnd trace endpoint relies on.
func FuzzAnalyzeHostile(f *testing.F) {
	addSeed := func(tr *memtrace.Trace) {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), 64, int64(0))
	}
	// A minimal plausible two-layer trace.
	addSeed(&memtrace.Trace{BlockBytes: 4, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: 8192, Count: 8, Kind: memtrace.Read},
		{Cycle: 10, Addr: 16384, Count: 12, Kind: memtrace.Write},
		{Cycle: 20, Addr: 16384, Count: 12, Kind: memtrace.Read},
		{Cycle: 30, Addr: 32768, Count: 2, Kind: memtrace.Write},
	}})
	// Crash-corpus seeds: extents hugging the top of the address space (the
	// decode overflow guard's boundary), zero-ish geometry, duplicate and
	// interleaved regions, and a write-only trace.
	top := ^uint64(0)
	addSeed(&memtrace.Trace{BlockBytes: 64, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: top - 64*16 + 1, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: top - 64, Count: 1, Kind: memtrace.Write},
	}})
	addSeed(&memtrace.Trace{BlockBytes: 1, Accesses: []memtrace.Access{
		{Cycle: top, Addr: top - 1, Count: 1, Kind: memtrace.Read},
		{Cycle: top, Addr: 0, Count: 1, Kind: memtrace.Write},
		{Cycle: 0, Addr: top - 1, Count: 1, Kind: memtrace.Write},
	}})
	addSeed(&memtrace.Trace{BlockBytes: 8, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 4096, Count: 512, Kind: memtrace.Write},
		{Cycle: 1, Addr: 4096, Count: 512, Kind: memtrace.Write},
		{Cycle: 2, Addr: 4096, Count: 512, Kind: memtrace.Read},
		{Cycle: 2, Addr: 4100, Count: 512, Kind: memtrace.Read},
	}})
	// Regression seed: a >= 2^63 cycle span with corruption enabled used to
	// panic interference injection's Int63n (span cast to a non-positive
	// int64). Needs a nonzero corrupt seed — the other seeds skip Apply.
	{
		tr := &memtrace.Trace{BlockBytes: 64, Accesses: []memtrace.Access{
			{Cycle: 0, Addr: 0, Count: 1, Kind: memtrace.Read},
			{Cycle: 1 << 63, Addr: 4096, Count: 1, Kind: memtrace.Write},
		}}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), 64, int64(1))
	}
	f.Add([]byte{}, 1, int64(0))

	f.Fuzz(func(t *testing.T, raw []byte, inputBytes int, corruptSeed int64) {
		tr, err := memtrace.DecodeTrace(raw)
		if err != nil {
			return
		}
		if len(tr.Accesses) > 4096 {
			return // bound fuzz iteration cost, not the property
		}
		if inputBytes <= 0 {
			inputBytes = 1
		}
		inputBytes %= 1 << 20

		// Optionally push the hostile trace through the corruption models
		// too: Apply must also be total on codec-accepted traces. The block
		// bound keeps per-exec regranulation cost in fuzzing budget; Apply's
		// own maxRegranRecords guard covers the unbounded case.
		if corruptSeed != 0 && tr.Blocks() <= 1<<20 {
			tr = corrupt.Apply(tr, corrupt.Config{
				Seed: corruptSeed, DropRate: 0.05, SplitRate: 0.1,
				CoalesceRate: 0.1, ReorderWindow: 32, InterferenceRate: 0.1,
			})
		}

		opt := DefaultOptions()
		opt.MaxStructures = 200
		for _, tolerant := range []bool{false, true} {
			var a *Analysis
			var err error
			if tolerant {
				a, err = AnalyzeTolerant(tr, inputBytes, 4, TolerantOptions{})
			} else {
				a, err = Analyze(tr, inputBytes, 4)
			}
			if err != nil {
				continue
			}
			for i, seg := range a.Segments {
				if seg.Index != i {
					t.Fatalf("tolerant=%v: segment %d has index %d", tolerant, i, seg.Index)
				}
				for _, in := range seg.Inputs {
					if in.Producer >= i {
						t.Fatalf("tolerant=%v: segment %d depends on later segment %d", tolerant, i, in.Producer)
					}
				}
			}
			// Solving may reject the geometry but must not panic.
			_, _ = Solve(a, 8, 1, 10, opt)
		}
	})
}

// FuzzDataflowDetect drives hostile traces through the full untrusted
// pipeline the daemon exposes — detect, analyze, solve — and checks two
// properties: nothing panics, and the detector only ever returns one of its
// four classes with votes indexing real segments. It reuses the hostile
// extent corpus (top-of-address-space regions, 2^63 cycle spans, duplicate
// regions) plus per-dataflow golden captures as seeds.
func FuzzDataflowDetect(f *testing.F) {
	addSeed := func(tr *memtrace.Trace) {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), 64, int64(0))
	}
	// Minimal plausible two-layer trace.
	addSeed(&memtrace.Trace{BlockBytes: 4, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: 8192, Count: 8, Kind: memtrace.Read},
		{Cycle: 10, Addr: 16384, Count: 12, Kind: memtrace.Write},
		{Cycle: 20, Addr: 16384, Count: 12, Kind: memtrace.Read},
		{Cycle: 30, Addr: 32768, Count: 2, Kind: memtrace.Write},
	}})
	// Hostile-extent corpus (shared with FuzzAnalyzeHostile).
	top := ^uint64(0)
	addSeed(&memtrace.Trace{BlockBytes: 64, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: top - 64*16 + 1, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: top - 64, Count: 1, Kind: memtrace.Write},
	}})
	addSeed(&memtrace.Trace{BlockBytes: 1, Accesses: []memtrace.Access{
		{Cycle: top, Addr: top - 1, Count: 1, Kind: memtrace.Read},
		{Cycle: top, Addr: 0, Count: 1, Kind: memtrace.Write},
		{Cycle: 0, Addr: top - 1, Count: 1, Kind: memtrace.Write},
	}})
	addSeed(&memtrace.Trace{BlockBytes: 8, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 4096, Count: 512, Kind: memtrace.Write},
		{Cycle: 1, Addr: 4096, Count: 512, Kind: memtrace.Write},
		{Cycle: 2, Addr: 4096, Count: 512, Kind: memtrace.Read},
		{Cycle: 2, Addr: 4100, Count: 512, Kind: memtrace.Read},
	}})
	addSeed(&memtrace.Trace{BlockBytes: 64, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 1, Kind: memtrace.Read},
		{Cycle: 1 << 63, Addr: 4096, Count: 1, Kind: memtrace.Write},
	}})
	// Honest per-dataflow captures, so mutation starts from traces that carry
	// each backend's real interleaving signature.
	for _, df := range []accel.Dataflow{accel.OutputStationary, accel.WeightStationary, accel.RowStationary} {
		net := nn.LeNet(10)
		net.InitWeights(1)
		sim, err := accel.New(net, accel.Config{Dataflow: df})
		if err != nil {
			f.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		x := make([]float32, net.Input.Len())
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		res, err := sim.Run(x)
		if err != nil {
			f.Fatal(err)
		}
		addSeed(res.Trace)
	}
	f.Add([]byte{}, 1, int64(0))

	f.Fuzz(func(t *testing.T, raw []byte, inputBytes int, corruptSeed int64) {
		tr, err := memtrace.DecodeTrace(raw)
		if err != nil {
			return
		}
		if len(tr.Accesses) > 4096 {
			return // bound fuzz iteration cost, not the property
		}
		if inputBytes <= 0 {
			inputBytes = 1
		}
		inputBytes %= 1 << 20
		if corruptSeed != 0 && tr.Blocks() <= 1<<20 {
			tr = corrupt.Apply(tr, corrupt.Config{
				Seed: corruptSeed, DropRate: 0.05, SplitRate: 0.1,
				CoalesceRate: 0.1, ReorderWindow: 32, InterferenceRate: 0.1,
			})
		}

		// Detection must be total even on mismatched trace/analysis pairs.
		if det := DetectDataflow(tr, &Analysis{}, DetectOptions{}); det.Class != DataflowAmbiguous {
			t.Fatalf("empty analysis classified as %v", det.Class)
		}

		opt := DefaultOptions()
		opt.MaxStructures = 200
		for _, tolerant := range []bool{false, true} {
			var a *Analysis
			var err error
			if tolerant {
				a, err = AnalyzeTolerant(tr, inputBytes, 4, TolerantOptions{})
			} else {
				a, err = Analyze(tr, inputBytes, 4)
			}
			if err != nil {
				continue
			}
			det := DetectDataflow(tr, a, DetectOptions{})
			switch det.Class {
			case DataflowAmbiguous, DataflowOutputStationary, DataflowWeightStationary, DataflowRowStationary:
			default:
				t.Fatalf("tolerant=%v: detector invented class %d", tolerant, int(det.Class))
			}
			if len(det.Votes) != len(a.Segments) {
				t.Fatalf("tolerant=%v: %d votes for %d segments", tolerant, len(det.Votes), len(a.Segments))
			}
			for _, v := range det.Votes {
				if v.Segment < 0 || v.Segment >= len(a.Segments) {
					t.Fatalf("tolerant=%v: vote references segment %d of %d", tolerant, v.Segment, len(a.Segments))
				}
			}
			// Solving downstream of detection must not panic either.
			_, _ = Solve(a, 8, 1, 10, opt)
		}
	})
}

// FuzzEnumerateLayer checks the solver never panics and always emits
// configurations satisfying the size equations, for arbitrary size inputs.
func FuzzEnumerateLayer(f *testing.F) {
	f.Add(28, 1, 1176, 150, false)
	f.Add(227, 3, 69984, 34848, false)
	f.Add(6, 256, 4096, 37748736, true)
	f.Fuzz(func(t *testing.T, wIFM, dIFM, sizeOFM, sizeFltr int, last bool) {
		if wIFM <= 0 || wIFM > 300 || dIFM <= 0 || dIFM > 1024 {
			return
		}
		if sizeOFM <= 0 || sizeOFM > 1<<22 || sizeFltr <= 0 || sizeFltr > 1<<26 {
			return
		}
		for _, c := range EnumerateLayer(wIFM, dIFM, sizeOFM, sizeFltr, last, 10, DefaultOptions()) {
			if c.WOFM*c.WOFM*c.DOFM != sizeOFM {
				t.Fatalf("Eq2 violated by %s", c.String())
			}
			if c.F*c.F*c.DIFM*c.DOFM != sizeFltr {
				t.Fatalf("Eq3 violated by %s", c.String())
			}
		}
	})
}
