package structrev

import (
	"bytes"
	"testing"

	"cnnrev/internal/memtrace"
)

// FuzzAnalyze feeds arbitrary serialized traces through the analyzer: it
// must never panic, only return errors or well-formed analyses.
func FuzzAnalyze(f *testing.F) {
	// Seed: a minimal valid two-layer trace.
	seed := &memtrace.Trace{BlockBytes: 4, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: 8192, Count: 8, Kind: memtrace.Read},
		{Cycle: 10, Addr: 16384, Count: 12, Kind: memtrace.Write},
		{Cycle: 20, Addr: 16384, Count: 12, Kind: memtrace.Read},
		{Cycle: 21, Addr: 24576, Count: 4, Kind: memtrace.Read},
		{Cycle: 30, Addr: 32768, Count: 2, Kind: memtrace.Write},
	}}
	var buf bytes.Buffer
	if err := seed.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes(), 64)
	f.Add([]byte{}, 1)

	f.Fuzz(func(t *testing.T, raw []byte, inputBytes int) {
		tr, err := memtrace.ReadTrace(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if tr.BlockBytes <= 0 || tr.BlockBytes > 1<<20 || len(tr.Accesses) > 10000 {
			return
		}
		// Align addresses and bound counts so the trace is structurally
		// plausible; the analyzer still sees arbitrary patterns.
		for i := range tr.Accesses {
			tr.Accesses[i].Addr -= tr.Accesses[i].Addr % uint64(tr.BlockBytes)
			if tr.Accesses[i].Count > 1<<16 {
				tr.Accesses[i].Count %= 1 << 16
			}
			if tr.Accesses[i].Count == 0 {
				tr.Accesses[i].Count = 1
			}
			tr.Accesses[i].Kind &= 1
		}
		if inputBytes <= 0 {
			inputBytes = 1
		}
		a, err := Analyze(tr, inputBytes%(1<<20), 4)
		if err != nil {
			return
		}
		// Well-formedness: segments ordered, producers precede consumers.
		for i, seg := range a.Segments {
			if seg.Index != i {
				t.Fatalf("segment %d has index %d", i, seg.Index)
			}
			for _, in := range seg.Inputs {
				if in.Producer >= i {
					t.Fatalf("segment %d depends on later segment %d", i, in.Producer)
				}
			}
		}
		// Solving may fail but must not panic.
		_, _ = Solve(a, 8, 1, 10, DefaultOptions())
	})
}

// FuzzEnumerateLayer checks the solver never panics and always emits
// configurations satisfying the size equations, for arbitrary size inputs.
func FuzzEnumerateLayer(f *testing.F) {
	f.Add(28, 1, 1176, 150, false)
	f.Add(227, 3, 69984, 34848, false)
	f.Add(6, 256, 4096, 37748736, true)
	f.Fuzz(func(t *testing.T, wIFM, dIFM, sizeOFM, sizeFltr int, last bool) {
		if wIFM <= 0 || wIFM > 300 || dIFM <= 0 || dIFM > 1024 {
			return
		}
		if sizeOFM <= 0 || sizeOFM > 1<<22 || sizeFltr <= 0 || sizeFltr > 1<<26 {
			return
		}
		for _, c := range EnumerateLayer(wIFM, dIFM, sizeOFM, sizeFltr, last, 10, DefaultOptions()) {
			if c.WOFM*c.WOFM*c.DOFM != sizeOFM {
				t.Fatalf("Eq2 violated by %s", c.String())
			}
			if c.F*c.F*c.DIFM*c.DOFM != sizeFltr {
				t.Fatalf("Eq3 violated by %s", c.String())
			}
		}
	})
}
