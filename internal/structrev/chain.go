package structrev

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
)

// SolvedLayer pairs a segment with a structural hypothesis (nil for
// element-wise segments, which carry no parameters).
type SolvedLayer struct {
	Segment int
	Kind    SegmentKind
	Config  *LayerConfig
}

// Structure is one complete candidate network structure: a consistent
// assignment of configurations to every segment (Algorithm 1 step 5).
type Structure struct {
	Layers []SolvedLayer
}

// WeightedConfigs returns the configs of the weighted (conv/FC) layers in
// execution order.
func (s *Structure) WeightedConfigs() []LayerConfig {
	var out []LayerConfig
	for _, l := range s.Layers {
		if l.Config != nil {
			out = append(out, *l.Config)
		}
	}
	return out
}

// moduleRole identifies a repeated-module role for the IdenticalModules
// assumption: fire-module squeeze and the two expand positions.
type moduleRole int

const (
	roleNone moduleRole = iota
	roleSqueeze
	roleExpandLo
	roleExpandHi
)

// detectModules marks fire-module roles: a weighted segment feeding exactly
// two weighted segments whose outputs are DRAM-adjacent (a depth concat) is
// a squeeze; the two consumers are expand-lo/expand-hi by address order.
func detectModules(a *Analysis) []moduleRole {
	roles := make([]moduleRole, len(a.Segments))
	consumers := make([][]int, len(a.Segments))
	for i := range a.Segments {
		for _, in := range a.Segments[i].Inputs {
			if in.Producer >= 0 {
				consumers[in.Producer] = append(consumers[in.Producer], i)
			}
		}
	}
	for i := range a.Segments {
		if a.Segments[i].Kind != SegWeighted {
			continue
		}
		var w []int
		for _, c := range consumers[i] {
			if a.Segments[c].Kind == SegWeighted {
				w = append(w, c)
			}
		}
		if len(w) != 2 {
			continue
		}
		r1, r2 := a.Segments[w[0]].OFMRegion, a.Segments[w[1]].OFMRegion
		if adjacentAddrs(r1.Hi, r2.Lo, a.AddrSlack) {
			roles[i] = roleSqueeze
			roles[w[0]] = roleExpandLo
			roles[w[1]] = roleExpandHi
		} else if adjacentAddrs(r2.Hi, r1.Lo, a.AddrSlack) {
			roles[i] = roleSqueeze
			roles[w[1]] = roleExpandLo
			roles[w[0]] = roleExpandHi
		}
	}
	return roles
}

// geometry is the instance-independent part of a configuration, shared
// across module instances under the IdenticalModules assumption.
type geometry struct {
	FC      bool
	F, S, P int
}

func geomOf(c *LayerConfig) geometry { return geometry{FC: c.FC, F: c.F, S: c.S, P: c.P} }

// dims is a feature-map shape hypothesis.
type dims struct{ W, D int }

// ErrTooManyStructures marks an enumeration aborted by Options.
// MaxStructures. Like a deadline, the abort returns the deterministic
// prefix enumerated so far alongside the (wrapped) sentinel.
var ErrTooManyStructures = errors.New("too many candidate structures")

// Solve enumerates every complete network structure consistent with the
// analysis, the known input (inW×inW×inD) and output (classes), the
// constraint system, and the execution-time filter.
func Solve(a *Analysis, inW, inD, classes int, opt Options) ([]Structure, error) {
	return SolveCtx(context.Background(), a, inW, inD, classes, opt)
}

// SolveCtx is Solve with cooperative cancellation: the chaining recursion
// checks ctx at every segment node it visits, so a cancelled solve stops
// within one candidate-assignment step. On cancellation it returns the
// structures fully enumerated so far together with ctx.Err() — a
// deterministic prefix of the complete enumeration — so callers can serve a
// partial result against a deadline.
func SolveCtx(ctx context.Context, a *Analysis, inW, inD, classes int, opt Options) ([]Structure, error) {
	if opt.TimingSpreadMax == 0 {
		opt.TimingSpreadMax = 1.35
	}
	if opt.MaxPoolF == 0 {
		opt.MaxPoolF = 4
	}
	if opt.MaxConvF == 0 {
		opt.MaxConvF = 13
	}
	if opt.MaxStructures == 0 {
		opt.MaxStructures = 100000
	}
	elem := a.ElemBytes
	if opt.SizeSlackElems == 0 && a.BlockBytes > elem {
		// Coarse transactions round region extents up to whole blocks.
		opt.SizeSlackElems = a.BlockBytes/elem - 1
	}
	slackB := opt.SizeSlackElems * elem
	if opt.SizeSlackUpFrac == 0 && a.Noise.WriteHoleFrac > 0 {
		// Dropped write transactions make observed sizes undershoot the true
		// ones; widen upward in proportion to the measured hole fraction
		// (×3 head-room for per-region variance around the mean). A clean
		// trace measures zero holes and keeps the exact constraints.
		opt.SizeSlackUpFrac = math.Min(0.5, 3*a.Noise.WriteHoleFrac)
	}
	if want := inW * inW * inD * elem; int(a.InputRegion.Bytes()) > want+slackB || int(a.InputRegion.Bytes()) < want*3/4 {
		return nil, fmt.Errorf("structrev: input region %d bytes does not match declared input %dx%dx%d", a.InputRegion.Bytes(), inW, inW, inD)
	}

	var roles []moduleRole
	if opt.IdenticalModules {
		roles = detectModules(a)
	} else {
		roles = make([]moduleRole, len(a.Segments))
	}

	// Candidate cache per (segment, input dims).
	type cacheKey struct {
		seg int
		in  dims
	}
	candCache := map[cacheKey][]LayerConfig{}
	candidatesFor := func(si int, in dims) []LayerConfig {
		key := cacheKey{si, in}
		if c, ok := candCache[key]; ok {
			return c
		}
		seg := &a.Segments[si]
		isLast := si == len(a.Segments)-1
		c := EnumerateLayer(in.W, in.D,
			int(seg.OFMBytes)/elem, int(seg.WeightsBytes)/elem,
			isLast, classes, opt)
		candCache[key] = c
		return c
	}

	var results []Structure
	out := make([]dims, len(a.Segments))
	chosen := make([]*LayerConfig, len(a.Segments))
	geomChosen := map[moduleRole]*geometry{}

	var rec func(si int, t timingWindow) error
	rec = func(si int, t timingWindow) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if si == len(a.Segments) {
			st := Structure{}
			for i := range a.Segments {
				sl := SolvedLayer{Segment: i, Kind: a.Segments[i].Kind}
				if chosen[i] != nil {
					c := *chosen[i]
					sl.Config = &c
				}
				st.Layers = append(st.Layers, sl)
			}
			if len(results) == opt.MaxStructures {
				return fmt.Errorf("structrev: more than %d candidate structures; aborting: %w", opt.MaxStructures, ErrTooManyStructures)
			}
			results = append(results, st)
			return nil
		}
		seg := &a.Segments[si]

		// Resolve input dims from producers.
		in, ok := inputDims(a, si, out, inW, inD)
		if !ok {
			return nil // inconsistent branch
		}

		if seg.Kind == SegEltwise {
			// Element-wise addition: all inputs must agree and the output
			// must have the same size (up to block rounding upward, and up
			// to the drop-induced undershoot downward).
			want := in.W * in.W * in.D * elem
			if int(seg.OFMBytes) < want-sizeUp(want, opt.SizeSlackUpFrac) || int(seg.OFMBytes) > want+slackB {
				return nil
			}
			out[si] = in
			return rec(si+1, t)
		}

		role := roles[si]
		for _, cand := range candidatesFor(si, in) {
			cand := cand
			if role != roleNone {
				g := geomOf(&cand)
				if cur := geomChosen[role]; cur != nil && *cur != g {
					continue
				}
				var restore *geometry
				if geomChosen[role] == nil {
					geomChosen[role] = &g
					restore = nil
				} else {
					restore = geomChosen[role]
				}
				nt, okT := timingCheck(t, seg, &cand, opt)
				if okT {
					chosen[si] = &cand
					out[si] = dims{cand.WOFM, cand.DOFM}
					if err := rec(si+1, nt); err != nil {
						return err
					}
					chosen[si] = nil
				}
				if restore == nil {
					delete(geomChosen, role)
				}
				continue
			}
			nt, okT := timingCheck(t, seg, &cand, opt)
			if !okT {
				continue
			}
			chosen[si] = &cand
			out[si] = dims{cand.WOFM, cand.DOFM}
			if err := rec(si+1, nt); err != nil {
				return err
			}
			chosen[si] = nil
		}
		return nil
	}
	if err := rec(0, timingWindow{}); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, ErrTooManyStructures) {
			return results, err // partial prefix
		}
		return nil, err
	}
	return results, nil
}

// inputDims derives the input dimensions of segment si from its producers'
// chosen output dims. DRAM-adjacent producers are first folded into
// concatenation units (widths equal, depths add); the resulting units then
// combine as an element-wise merge (all equal) or a further concatenated
// read (depths add) depending on the segment kind.
func inputDims(a *Analysis, si int, out []dims, inW, inD int) (dims, bool) {
	seg := &a.Segments[si]
	if len(seg.Inputs) == 0 {
		return dims{}, false
	}
	// Fold adjacent runs into units.
	var units []dims
	for _, in := range seg.Inputs {
		var d dims
		if in.Producer < 0 {
			d = dims{inW, inD}
		} else {
			d = out[in.Producer]
		}
		if in.Adjacent && len(units) > 0 {
			last := &units[len(units)-1]
			if last.W != d.W {
				return dims{}, false
			}
			last.D += d.D
			continue
		}
		units = append(units, d)
	}
	cur := units[0]
	for _, d := range units[1:] {
		if d.W != cur.W {
			return dims{}, false
		}
		if seg.Kind == SegEltwise {
			if d.D != cur.D {
				return dims{}, false
			}
		} else {
			cur.D += d.D // concatenated read
		}
	}
	return cur, true
}

// timingWindow tracks the running min/max cycles-per-MAC over the conv
// layers of a partially assembled structure.
type timingWindow struct{ lo, hi float64 }

// timingCheck folds a candidate's cycles-per-MAC into the running spread and
// reports whether the structure remains plausible. FC layers are excluded:
// they are memory-bound, and their configurations are unique anyway.
func timingCheck(t timingWindow, seg *Segment, c *LayerConfig, opt Options) (timingWindow, bool) {
	if c.FC {
		return t, true
	}
	macs := c.MACs()
	if macs <= 0 {
		return t, false
	}
	alpha := float64(seg.Cycles()) / float64(macs)
	if t.lo == 0 {
		return timingWindow{alpha, alpha}, true
	}
	lo, hi := t.lo, t.hi
	if alpha < lo {
		lo = alpha
	}
	if alpha > hi {
		hi = alpha
	}
	if hi/lo > opt.TimingSpreadMax {
		return t, false
	}
	return timingWindow{lo, hi}, true
}

// UniqueConfigs returns, for each weighted segment, the distinct
// configurations appearing across the given structures — the per-layer view
// of paper Table 4.
func UniqueConfigs(a *Analysis, structures []Structure) map[int][]LayerConfig {
	res := map[int][]LayerConfig{}
	seen := map[int]map[LayerConfig]bool{}
	for _, st := range structures {
		for _, l := range st.Layers {
			if l.Config == nil {
				continue
			}
			if seen[l.Segment] == nil {
				seen[l.Segment] = map[LayerConfig]bool{}
			}
			if !seen[l.Segment][*l.Config] {
				seen[l.Segment][*l.Config] = true
				res[l.Segment] = append(res[l.Segment], *l.Config)
			}
		}
	}
	for _, cfgs := range res {
		sort.Slice(cfgs, func(i, j int) bool { return cfgs[i].String() < cfgs[j].String() })
	}
	return res
}
