package structrev

import (
	"math/rand"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/corrupt"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// dataflowOf maps an accel constant to the detector's class space.
func dataflowOf(df accel.Dataflow) DataflowClass {
	switch df {
	case accel.WeightStationary:
		return DataflowWeightStationary
	case accel.RowStationary:
		return DataflowRowStationary
	}
	return DataflowOutputStationary
}

var allDataflows = []accel.Dataflow{accel.OutputStationary, accel.WeightStationary, accel.RowStationary}

// captureDataflowTrace records one inference of net under the given
// dataflow with the golden-corpus capture parameters (weight seed 1, input
// seed 2, otherwise default configuration).
func captureDataflowTrace(t *testing.T, net *nn.Network, df accel.Dataflow) *memtrace.Trace {
	t.Helper()
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{Dataflow: df})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

// TestDetectDataflowCleanMatrix: auto-detection recovers the producing
// backend for every Table 3 victim under every dataflow — the 12/12 matrix
// the dataflow experiment re-derives into results/dataflow_matrix.md.
func TestDetectDataflowCleanMatrix(t *testing.T) {
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.model, func(t *testing.T) {
			if testing.Short() && !gc.short {
				t.Skip("large victim in -short mode")
			}
			for _, df := range allDataflows {
				tr := captureDataflowTrace(t, gc.victim(), df)
				a, err := Analyze(tr, gc.inW*gc.inW*gc.inD*4, 4)
				if err != nil {
					t.Fatalf("%v: %v", df, err)
				}
				det := DetectDataflow(tr, a, DetectOptions{})
				if want := dataflowOf(df); det.Class != want {
					for _, v := range det.Votes {
						t.Logf("segment %d: %v weak=%v (%s)", v.Segment, v.Class, v.Weak, v.Reason)
					}
					t.Fatalf("%s under %v detected as %v, want %v", gc.model, df, det.Class, want)
				}
			}
		})
	}
}

// TestDetectDataflowUnderDrops: with probe drop rates up to 5%, detection
// must return either the true dataflow or an explicit ambiguous verdict —
// never a wrong confident answer.
func TestDetectDataflowUnderDrops(t *testing.T) {
	victims := []struct {
		name   string
		inW    int
		inD    int
		victim func() *nn.Network
	}{
		{"lenet", 28, 1, func() *nn.Network { return nn.LeNet(10) }},
		{"convnet", 32, 3, func() *nn.Network { return nn.ConvNet(10) }},
	}
	for _, vic := range victims {
		for _, df := range allDataflows {
			tr := captureDataflowTrace(t, vic.victim(), df)
			want := dataflowOf(df)
			for _, rate := range []float64{0.01, 0.03, 0.05} {
				for seed := int64(1); seed <= 3; seed++ {
					corr := corrupt.Apply(tr, corrupt.Config{Seed: seed, DropRate: rate})
					a, err := AnalyzeTolerant(corr, vic.inW*vic.inW*vic.inD*4, 4, DefaultTolerantOptions())
					if err != nil {
						continue // segmentation lost: no verdict to mistrust
					}
					det := DetectDataflow(corr, a, DetectOptions{})
					if det.Class != want && det.Class != DataflowAmbiguous {
						t.Fatalf("%s under %v, drop %.2f seed %d: detected %v (want %v or ambiguous)",
							vic.name, df, rate, seed, det.Class, want)
					}
				}
			}
		}
	}
}

// TestCrossDataflowSolveContainsTruth: the structure attack keeps working
// against every backend — each victim's trace, under each dataflow, still
// yields a solve set containing the true structure. The output-stationary
// leg additionally re-pins byte identity with the pre-refactor golden
// corpus via captureTraceBytes (see TestGoldenTraceRegeneration).
func TestCrossDataflowSolveContainsTruth(t *testing.T) {
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.model, func(t *testing.T) {
			if testing.Short() && !gc.short {
				t.Skip("large victim in -short mode")
			}
			for _, df := range allDataflows {
				tr := captureDataflowTrace(t, gc.victim(), df)
				a, err := Analyze(tr, gc.inW*gc.inW*gc.inD*4, 4)
				if err != nil {
					t.Fatalf("%v: %v", df, err)
				}
				if len(a.Segments) != gc.segments {
					t.Fatalf("%v: recovered %d segments, want %d", df, len(a.Segments), gc.segments)
				}
				opt := DefaultOptions()
				opt.IdenticalModules = gc.modular
				structures, err := Solve(a, gc.inW, gc.inD, gc.classes, opt)
				if err != nil {
					t.Fatalf("%v: %v", df, err)
				}
				if !containsTruth(structures, groundTruth(gc.victim())) {
					t.Fatalf("%s under %v: true structure not among %d candidates", gc.model, df, len(structures))
				}
			}
		})
	}
}

// TestDetectDataflowDegenerateInputs: nil/empty inputs produce an explicit
// ambiguous verdict, not a panic.
func TestDetectDataflowDegenerateInputs(t *testing.T) {
	if got := DetectDataflow(nil, nil, DetectOptions{}); got.Class != DataflowAmbiguous {
		t.Fatalf("nil inputs: %v", got.Class)
	}
	tr := &memtrace.Trace{BlockBytes: 4}
	if got := DetectDataflow(tr, &Analysis{}, DetectOptions{}); got.Class != DataflowAmbiguous {
		t.Fatalf("empty analysis: %v", got.Class)
	}
}
