// Command gen regenerates the golden-trace conformance corpus consumed by
// golden_test.go: for each Table 3 victim it captures one deterministic
// inference trace on the default simulated accelerator and writes the
// serialized trace plus the recovered dataflow-graph report.
//
// Regenerate (from internal/structrev) with:
//
//	go generate ./...
//
// The traces are value-independent — without zero pruning the accelerator's
// transaction schedule depends only on layer shapes and tiling — so
// regeneration is byte-identical across machines as long as the capture
// parameters below (weight seed 1, input seed 2, default accel.Config)
// stay fixed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

func main() {
	out := flag.String("out", filepath.Join("testdata", "golden"), "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	victims := []struct {
		name string
		net  *nn.Network
	}{
		{"lenet", nn.LeNet(10)},
		{"convnet", nn.ConvNet(10)},
		{"alexnet", nn.AlexNet(1000, 1)},
		{"squeezenet", nn.SqueezeNet(1000, 1)},
	}
	for _, v := range victims {
		v.net.InitWeights(1)
		sim, err := accel.New(v.net, accel.Config{})
		if err != nil {
			log.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		x := make([]float32, v.net.Input.Len())
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		res, err := sim.Run(x)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Trace.Write(&buf); err != nil {
			log.Fatal(err)
		}
		tracePath := filepath.Join(*out, v.name+".trace")
		if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		a, err := structrev.Analyze(res.Trace, v.net.Input.Len()*4, 4)
		if err != nil {
			log.Fatal(err)
		}
		var rep bytes.Buffer
		a.WriteReport(&rep)
		reportPath := filepath.Join(*out, v.name+".report.txt")
		if err := os.WriteFile(reportPath, rep.Bytes(), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %7d accesses  %8d trace bytes  %2d segments\n",
			v.name, len(res.Trace.Accesses), buf.Len(), len(a.Segments))
	}
}
