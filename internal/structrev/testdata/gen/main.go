// Command gen regenerates the golden-trace conformance corpus consumed by
// golden_test.go: for each Table 3 victim it captures one deterministic
// inference trace per accelerator dataflow and writes the serialized trace
// plus the recovered dataflow-graph report. The output-stationary corpus
// keeps the historical unsuffixed names (lenet.trace, …) — those bytes pin
// the pre-refactor simulator schedule — while the weight- and
// row-stationary captures carry .ws/.rs suffixes (lenet.ws.trace, …).
//
// Regenerate (from internal/structrev) with:
//
//	go generate ./...
//
// The traces are value-independent — without zero pruning the accelerator's
// transaction schedule depends only on layer shapes and tiling — so
// regeneration is byte-identical across machines as long as the capture
// parameters below (weight seed 1, input seed 2, default accel.Config plus
// the dataflow) stay fixed.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

// dataflows maps the per-backend file suffix ("" = legacy output-stationary
// names) to the captured dataflow.
var dataflows = []struct {
	suffix string
	df     accel.Dataflow
}{
	{"", accel.OutputStationary},
	{".ws", accel.WeightStationary},
	{".rs", accel.RowStationary},
}

func main() {
	out := flag.String("out", filepath.Join("testdata", "golden"), "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	victims := []struct {
		name string
		net  func() *nn.Network
	}{
		{"lenet", func() *nn.Network { return nn.LeNet(10) }},
		{"convnet", func() *nn.Network { return nn.ConvNet(10) }},
		{"alexnet", func() *nn.Network { return nn.AlexNet(1000, 1) }},
		{"squeezenet", func() *nn.Network { return nn.SqueezeNet(1000, 1) }},
	}
	for _, v := range victims {
		for _, d := range dataflows {
			net := v.net()
			net.InitWeights(1)
			sim, err := accel.New(net, accel.Config{Dataflow: d.df})
			if err != nil {
				log.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			x := make([]float32, net.Input.Len())
			for i := range x {
				x[i] = float32(rng.NormFloat64())
			}
			res, err := sim.Run(x)
			if err != nil {
				log.Fatal(err)
			}
			var buf bytes.Buffer
			if err := res.Trace.Write(&buf); err != nil {
				log.Fatal(err)
			}
			tracePath := filepath.Join(*out, v.name+d.suffix+".trace")
			if err := os.WriteFile(tracePath, buf.Bytes(), 0o644); err != nil {
				log.Fatal(err)
			}
			a, err := structrev.Analyze(res.Trace, net.Input.Len()*4, 4)
			if err != nil {
				log.Fatal(err)
			}
			var rep bytes.Buffer
			a.WriteReport(&rep)
			reportPath := filepath.Join(*out, v.name+d.suffix+".report.txt")
			if err := os.WriteFile(reportPath, rep.Bytes(), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10s %-18s %7d accesses  %8d trace bytes  %2d segments\n",
				v.name, d.df, len(res.Trace.Accesses), buf.Len(), len(a.Segments))
		}
	}
}
