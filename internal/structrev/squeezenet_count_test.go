package structrev

import (
	"testing"

	"cnnrev/internal/nn"
)

func TestSqueezeNetNonModularCount(t *testing.T) {
	net := nn.SqueezeNet(1000, 1)
	a, _ := traceOf(t, net)
	structures, err := Solve(a, 227, 3, 1000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SqueezeNet non-modular: %d candidates (paper: 329 theoretical)", len(structures))
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatal("truth lost")
	}
}
