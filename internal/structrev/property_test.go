package structrev

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cnnrev/internal/tensor"
)

// randomTrueConfig draws a random plausible conv layer configuration (the
// kind a real network could contain) and computes the sizes its execution
// would expose.
func randomTrueConfig(rng *rand.Rand) (cfg LayerConfig, sizeOFM, sizeFltr int, ok bool) {
	wIFM := 8 + rng.Intn(60)
	dIFM := 1 + rng.Intn(64)
	f := 1 + rng.Intn(7)
	if 2*f > wIFM {
		return cfg, 0, 0, false
	}
	s := 1 + rng.Intn(f)
	p := rng.Intn(f)
	dOFM := 1 + rng.Intn(128)
	wc := tensor.ConvOutDim(wIFM, f, s, p)
	if wc < 1 {
		return cfg, 0, 0, false
	}
	cfg = LayerConfig{WIFM: wIFM, DIFM: dIFM, WOFM: wc, DOFM: dOFM, F: f, S: s, P: p}
	// Half the time, add an exact-division pooling stage.
	if rng.Intn(2) == 0 {
		fp := 2 + rng.Intn(3)
		sp := 1 + rng.Intn(fp)
		if wc > fp && (wc-fp)%sp == 0 {
			cfg.HasPool = true
			cfg.FPool, cfg.SPool, cfg.PPool = fp, sp, 0
			cfg.WOFM = (wc-fp)/sp + 1
		}
	}
	return cfg, cfg.WOFM * cfg.WOFM * cfg.DOFM, f * f * dIFM * dOFM, true
}

// TestQuickEnumerationComplete: for any true configuration, the enumeration
// over its exposed sizes must contain a candidate matching it up to padding
// equivalence (the solver never loses the truth).
func TestQuickEnumerationComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg, sizeOFM, sizeFltr, ok := randomTrueConfig(rng)
		if !ok {
			return true
		}
		cands := EnumerateLayer(cfg.WIFM, cfg.DIFM, sizeOFM, sizeFltr, false, 0, DefaultOptions())
		for _, c := range cands {
			if c.F == cfg.F && c.S == cfg.S && c.WOFM == cfg.WOFM && c.DOFM == cfg.DOFM &&
				c.HasPool == cfg.HasPool && c.FPool == cfg.FPool && c.SPool == cfg.SPool &&
				c.ConvOutW() == cfg.ConvOutW() {
				return true
			}
		}
		t.Logf("seed %d: lost %s (OFM %d, FLTR %d) among %d candidates",
			seed, cfg.String(), sizeOFM, sizeFltr, len(cands))
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEnumerationSound: every enumerated candidate must actually
// satisfy the paper's constraint system against the observed sizes —
// Equations (1)-(3) exactly and (4)-(8) as inequalities.
func TestQuickEnumerationSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg, sizeOFM, sizeFltr, ok := randomTrueConfig(rng)
		if !ok {
			return true
		}
		for _, c := range EnumerateLayer(cfg.WIFM, cfg.DIFM, sizeOFM, sizeFltr, false, 0, DefaultOptions()) {
			// Eq (2): SIZE_OFM = W_OFM² · D_OFM
			if c.WOFM*c.WOFM*c.DOFM != sizeOFM {
				t.Logf("Eq2 violated: %s", c.String())
				return false
			}
			// Eq (3): SIZE_FLTR = F² · D_IFM · D_OFM (FC: F = W_IFM)
			if c.F*c.F*c.DIFM*c.DOFM != sizeFltr {
				t.Logf("Eq3 violated: %s", c.String())
				return false
			}
			if c.FC {
				if c.F != c.WIFM || c.WOFM != 1 {
					t.Logf("FC malformed: %s", c.String())
					return false
				}
				continue
			}
			// Eq (5): S ≤ F ≤ W_IFM/2
			if c.S > c.F || 2*c.F > c.WIFM {
				t.Logf("Eq5 violated: %s", c.String())
				return false
			}
			// Eq (7): P < F
			if c.P >= c.F {
				t.Logf("Eq7 violated: %s", c.String())
				return false
			}
			// Eq (4): geometry consistency.
			wc := c.ConvOutW()
			if wc < c.WOFM {
				t.Logf("geometry shrinks below W_OFM: %s", c.String())
				return false
			}
			if c.HasPool {
				// Eq (6): S_pool ≤ F_pool ≤ Wc; Eq (8): P_pool < F_pool.
				if c.SPool > c.FPool || c.FPool > wc || c.PPool >= c.FPool {
					t.Logf("Eq6/8 violated: %s", c.String())
					return false
				}
				if (wc-c.FPool+2*c.PPool)%c.SPool != 0 ||
					(wc-c.FPool+2*c.PPool)/c.SPool+1 != c.WOFM {
					t.Logf("pool geometry violated: %s (wc=%d)", c.String(), wc)
					return false
				}
			} else if wc != c.WOFM {
				t.Logf("unpooled geometry violated: %s", c.String())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMACFormula: the solver's MAC formula must equal the brute-force
// operation count of the hypothesized convolution.
func TestQuickMACFormula(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg, _, _, ok := randomTrueConfig(rng)
		if !ok {
			return true
		}
		wc := int64(cfg.ConvOutW())
		want := wc * wc * int64(cfg.DOFM) * int64(cfg.F) * int64(cfg.F) * int64(cfg.DIFM)
		return cfg.MACs() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIsqrt(t *testing.T) {
	for n := 0; n < 2000; n++ {
		r := isqrt(n)
		root := 0
		for root*root < n {
			root++
		}
		if root*root == n {
			if r != root {
				t.Fatalf("isqrt(%d) = %d, want %d", n, r, root)
			}
		} else if r != -1 {
			t.Fatalf("isqrt(%d) = %d, want -1 (not a square)", n, r)
		}
	}
	if isqrt(-4) != -1 {
		t.Fatal("negative input must give -1")
	}
}

func TestCanonicalizePaddingKeepsMinimum(t *testing.T) {
	cands := []LayerConfig{
		{WIFM: 227, DIFM: 3, WOFM: 27, DOFM: 96, F: 11, S: 4, P: 1, HasPool: true, FPool: 3, SPool: 2},
		{WIFM: 227, DIFM: 3, WOFM: 27, DOFM: 96, F: 11, S: 4, P: 0, HasPool: true, FPool: 3, SPool: 2},
	}
	out := canonicalizePadding(cands)
	if len(out) != 1 || out[0].P != 0 {
		t.Fatalf("canonicalize = %+v", out)
	}
	// Different Wc (P=2 gives 56): both kept.
	cands = append(cands, LayerConfig{WIFM: 227, DIFM: 3, WOFM: 27, DOFM: 96, F: 11, S: 4, P: 2, HasPool: true, FPool: 4, SPool: 2})
	if out := canonicalizePadding(cands); len(out) != 2 {
		t.Fatalf("expected 2 classes, got %+v", out)
	}
}
