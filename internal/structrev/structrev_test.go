package structrev

import (
	"math/rand"
	"strings"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// traceOf runs net on the simulated accelerator and returns its analysis.
func traceOf(t *testing.T, net *nn.Network) (*Analysis, *accel.Simulator) {
	t.Helper()
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(res.Trace, net.Input.Len()*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	return a, sim
}

// groundTruth converts a network's weighted layers to the LayerConfigs the
// attack should recover.
func groundTruth(net *nn.Network) []LayerConfig {
	var out []LayerConfig
	for i := range net.Specs {
		spec := &net.Specs[i]
		in := net.InShapes[i][0]
		switch spec.Kind {
		case nn.KindConv:
			c := LayerConfig{
				WIFM: in.W, DIFM: in.C,
				WOFM: net.Shapes[i].W, DOFM: net.Shapes[i].C,
				F: spec.F, S: spec.S, P: spec.P,
			}
			if spec.Pool != nn.PoolNone {
				c.HasPool = true
				c.FPool, c.SPool, c.PPool = spec.PoolF, spec.PoolS, spec.PoolP
			}
			out = append(out, c)
		case nn.KindFC:
			out = append(out, LayerConfig{
				WIFM: in.W, DIFM: in.C * in.H * in.W / (in.W * in.W) * in.W / in.W, // placeholder, fixed below
				WOFM: 1, DOFM: spec.OutC, FC: true, F: in.W, S: 1,
			})
			out[len(out)-1].DIFM = in.C
		}
	}
	return out
}

// geomEqual compares configs up to padding equivalence (the solver reports
// the canonical minimum-padding representative).
func geomEqual(a, b LayerConfig) bool {
	if a.FC != b.FC || a.WOFM != b.WOFM || a.DOFM != b.DOFM {
		return false
	}
	if a.FC {
		return true
	}
	return a.F == b.F && a.S == b.S && a.ConvOutW() == b.ConvOutW() &&
		a.HasPool == b.HasPool && a.FPool == b.FPool && a.SPool == b.SPool && a.PPool == b.PPool
}

// containsTruth reports whether any candidate structure matches the victim
// up to padding equivalence.
func containsTruth(structures []Structure, truth []LayerConfig) bool {
	for _, st := range structures {
		cfgs := st.WeightedConfigs()
		if len(cfgs) != len(truth) {
			continue
		}
		ok := true
		for i := range cfgs {
			if !geomEqual(cfgs[i], truth[i]) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func TestAnalyzeLeNetSegments(t *testing.T) {
	net := nn.LeNet(10)
	a, sim := traceOf(t, net)
	if len(a.Segments) != 4 {
		t.Fatalf("LeNet: %d segments, want 4", len(a.Segments))
	}
	lay := sim.Layout()
	for i, seg := range a.Segments {
		if seg.Kind != SegWeighted {
			t.Fatalf("segment %d: kind %v", i, seg.Kind)
		}
		if seg.WeightsBytes != lay.Weights[i].Bytes {
			t.Errorf("segment %d: weights %d bytes, victim has %d", i, seg.WeightsBytes, lay.Weights[i].Bytes)
		}
		wantOFM := uint64(net.Shapes[i].Len() * 4)
		if seg.OFMBytes != wantOFM {
			t.Errorf("segment %d: OFM %d bytes, want %d", i, seg.OFMBytes, wantOFM)
		}
		if len(seg.Inputs) != 1 {
			t.Fatalf("segment %d: %d inputs", i, len(seg.Inputs))
		}
		wantProducer := i - 1
		if seg.Inputs[0].Producer != wantProducer {
			t.Errorf("segment %d: producer %d, want %d", i, seg.Inputs[0].Producer, wantProducer)
		}
		if seg.Cycles() == 0 {
			t.Errorf("segment %d: zero cycles", i)
		}
	}
}

func TestAnalyzeSqueezeNetGraph(t *testing.T) {
	net := nn.SqueezeNet(10, 8)
	a, _ := traceOf(t, net)
	// Concat layers are zero-copy and invisible: segments = layers − concats.
	concats := 0
	for i := range net.Specs {
		if net.Specs[i].Kind == nn.KindConcat {
			concats++
		}
	}
	want := len(net.Specs) - concats
	if len(a.Segments) != want {
		t.Fatalf("SqueezeNet: %d segments, want %d", len(a.Segments), want)
	}
	eltwise, concatReads := 0, 0
	for _, seg := range a.Segments {
		if seg.Kind == SegEltwise {
			eltwise++
			// Two operands, each possibly a concatenated pair of adjacent
			// producer halves (fire-module outputs).
			units := 0
			for _, in := range seg.Inputs {
				if !in.Adjacent {
					units++
				}
			}
			if units != 2 {
				t.Fatalf("eltwise segment %d has %d operand units (%d raw inputs)", seg.Index, units, len(seg.Inputs))
			}
		}
		for _, in := range seg.Inputs {
			if in.Adjacent {
				concatReads++
			}
		}
	}
	if eltwise != 3 {
		t.Fatalf("found %d eltwise segments, want 3 (bypass paths)", eltwise)
	}
	if concatReads == 0 {
		t.Fatal("no concatenation reads detected (fire modules invisible)")
	}
}

func TestEnumerateLayerRecoversAlexNetConv1(t *testing.T) {
	// Observed sizes of AlexNet CONV1: OFM 27²·96, filters 11²·3·96.
	cands := EnumerateLayer(227, 3, 27*27*96, 11*11*3*96, false, 0, DefaultOptions())
	foundTrue := false
	for _, c := range cands {
		if c.F == 11 && c.S == 4 && c.HasPool && c.FPool == 3 && c.SPool == 2 && c.WOFM == 27 && c.DOFM == 96 {
			foundTrue = true
		}
	}
	if !foundTrue {
		t.Fatalf("true CONV1 config missing from %d candidates", len(cands))
	}
	// The paper's alternative CONV1₂ class (Wc=56, pool 4/2) must also appear.
	foundAlt := false
	for _, c := range cands {
		if c.F == 11 && c.S == 4 && c.ConvOutW() == 56 && c.HasPool && c.FPool == 4 && c.SPool == 2 {
			foundAlt = true
		}
	}
	if !foundAlt {
		t.Fatal("paper's CONV1₂ variant (pool 4/2 on Wc=56) missing")
	}
}

func TestEnumerateLayerFCUnique(t *testing.T) {
	// AlexNet FC6: 6×6×256 → 4096.
	cands := EnumerateLayer(6, 256, 4096, 6*6*256*4096, false, 0, DefaultOptions())
	if len(cands) != 1 || !cands[0].FC || cands[0].DOFM != 4096 {
		t.Fatalf("FC6 should be unique FC config, got %v", cands)
	}
}

func TestSolveLeNetFindsTruth(t *testing.T) {
	net := nn.LeNet(10)
	a, _ := traceOf(t, net)
	structures, err := Solve(a, 28, 1, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(structures) == 0 {
		t.Fatal("no structures found")
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("true LeNet structure not among %d candidates", len(structures))
	}
	t.Logf("LeNet: %d candidate structures (paper: 9)", len(structures))
}

func TestSolveConvNetFindsTruth(t *testing.T) {
	net := nn.ConvNet(10)
	a, _ := traceOf(t, net)
	structures, err := Solve(a, 32, 3, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("true ConvNet structure not among %d candidates", len(structures))
	}
	t.Logf("ConvNet: %d candidate structures (paper: 6)", len(structures))
}

func TestSolveAlexNetFindsTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full AlexNet trace in -short mode")
	}
	net := nn.AlexNet(1000, 1)
	a, _ := traceOf(t, net)
	if len(a.Segments) != 8 {
		t.Fatalf("AlexNet: %d segments, want 8", len(a.Segments))
	}
	structures, err := Solve(a, 227, 3, 1000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("true AlexNet structure not among %d candidates", len(structures))
	}
	t.Logf("AlexNet: %d candidate structures (paper: 24)", len(structures))
	perLayer := UniqueConfigs(a, structures)
	for seg, cfgs := range perLayer {
		t.Logf("  segment %d: %d configs", seg, len(cfgs))
		for _, c := range cfgs {
			t.Logf("    %s", c.String())
		}
	}
}

func TestSolveSqueezeNetModular(t *testing.T) {
	if testing.Short() {
		t.Skip("full SqueezeNet trace in -short mode")
	}
	net := nn.SqueezeNet(1000, 1)
	a, _ := traceOf(t, net)
	opt := DefaultOptions()
	opt.IdenticalModules = true
	structures, err := Solve(a, 227, 3, 1000, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("true SqueezeNet structure not among %d candidates", len(structures))
	}
	t.Logf("SqueezeNet (modular): %d candidate structures (paper: 9)", len(structures))
}

func TestSolveBiasAblationShrinksCandidates(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	simB, err := accel.New(net, accel.Config{BiasInDRAM: true})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, net.Input.Len())
	res, _ := simB.Run(x)
	aB, err := Analyze(res.Trace, net.Input.Len()*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	optB := DefaultOptions()
	optB.BiasInFilters = true
	withBias, err := Solve(aB, 28, 1, 10, optB)
	if err != nil {
		t.Fatal(err)
	}
	aPlain, _ := traceOf(t, net)
	plain, err := Solve(aPlain, 28, 1, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(withBias) > len(plain) {
		t.Fatalf("bias-in-DRAM should not increase candidates: %d vs %d", len(withBias), len(plain))
	}
	if !containsTruth(withBias, groundTruth(net)) {
		t.Fatal("bias ablation lost the true structure")
	}
	t.Logf("LeNet candidates: %d (bias in DRAM) vs %d (paper model)", len(withBias), len(plain))
}

// TestSolveNiNFindsTruth exercises the solver's 1×1-kernel and global-pool
// corner cases on a fully convolutional victim (beyond the paper's zoo).
func TestSolveNiNFindsTruth(t *testing.T) {
	net := nn.NiN(10, 1)
	a, _ := traceOf(t, net)
	structures, err := Solve(a, 32, 3, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("true NiN structure not among %d candidates", len(structures))
	}
	t.Logf("NiN: %d candidate structures", len(structures))
}

// TestSolveVGG11FindsTruth exercises the solver on a deep uniform-kernel
// network (beyond the paper's zoo).
func TestSolveVGG11FindsTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full VGG-11 trace in -short mode")
	}
	net := nn.VGG11(1000, 4) // quarter width keeps the FC layers tractable
	a, _ := traceOf(t, net)
	if len(a.Segments) != 11 {
		t.Fatalf("VGG11: %d segments, want 11", len(a.Segments))
	}
	structures, err := Solve(a, 224, 3, 1000, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("true VGG-11 structure not among %d candidates", len(structures))
	}
	t.Logf("VGG-11: %d candidate structures", len(structures))
}

// TestSolveCoarseGranularity: with a realistic 64-byte DRAM bus, region
// extents are only block-accurate; the solver's size-slack intervals must
// still recover the truth.
func TestSolveCoarseGranularity(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{BlockBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(res.Trace, net.Input.Len()*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.BlockBytes != 64 {
		t.Fatalf("analysis block size %d", a.BlockBytes)
	}
	structures, err := Solve(a, 28, 1, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("truth lost at 64B granularity (%d candidates)", len(structures))
	}
}

// TestSolveUnderTimingNoise: per-tile latency jitter must not break the
// timing filter (layer times are sums of many jittered tiles).
func TestSolveUnderTimingNoise(t *testing.T) {
	net := nn.ConvNet(10)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{CycleJitter: 0.3, NoiseSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, net.Input.Len())
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(res.Trace, net.Input.Len()*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	structures, err := Solve(a, 32, 3, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("truth lost under 30%% tile jitter (%d candidates)", len(structures))
	}
}

// TestSolveDataflowInvariant: the paper claims the RAW structure survives
// any data-reuse strategy; the attack must recover the truth from a
// weight-stationary accelerator just as from the output-stationary default.
func TestSolveDataflowInvariant(t *testing.T) {
	for _, df := range []accel.Dataflow{accel.OutputStationary, accel.WeightStationary} {
		net := nn.ConvNet(10)
		net.InitWeights(1)
		sim, err := accel.New(net, accel.Config{Dataflow: df})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		x := make([]float32, net.Input.Len())
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		res, err := sim.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Analyze(res.Trace, net.Input.Len()*4, 4)
		if err != nil {
			t.Fatalf("%v: %v", df, err)
		}
		if len(a.Segments) != 4 {
			t.Fatalf("%v: %d segments", df, len(a.Segments))
		}
		structures, err := Solve(a, 32, 3, 10, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !containsTruth(structures, groundTruth(net)) {
			t.Fatalf("%v: truth lost among %d candidates", df, len(structures))
		}
	}
}

// TestSolveSqueezeNetWeightStationary covers the DAG case (fire modules,
// bypass) under the alternative dataflow.
func TestSolveSqueezeNetWeightStationary(t *testing.T) {
	if testing.Short() {
		t.Skip("full SqueezeNet trace in -short mode")
	}
	net := nn.SqueezeNet(1000, 1)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{Dataflow: accel.WeightStationary})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, net.Input.Len())
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(res.Trace, net.Input.Len()*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.IdenticalModules = true
	structures, err := Solve(a, 227, 3, 1000, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("truth lost among %d candidates", len(structures))
	}
}

// TestMultiInferenceTrace: an adversary watching a serving accelerator sees
// several back-to-back inferences in one trace; the analysis must split
// them cleanly and each slice must solve identically.
func TestMultiInferenceTrace(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	var xs [][]float32
	for k := 0; k < 3; k++ {
		x := make([]float32, net.Input.Len())
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		xs = append(xs, x)
	}
	results, tr, err := sim.RunMany(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	a, err := Analyze(tr, net.Input.Len()*4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Segments) != 12 {
		t.Fatalf("%d segments for 3 LeNet inferences, want 12", len(a.Segments))
	}
	infs := a.Inferences()
	if len(infs) != 3 {
		t.Fatalf("%d inferences, want 3", len(infs))
	}
	var counts []int
	for _, inf := range infs {
		if len(inf.Segments) != 4 {
			t.Fatalf("inference has %d segments", len(inf.Segments))
		}
		structures, err := Solve(inf, 28, 1, 10, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		if !containsTruth(structures, groundTruth(net)) {
			t.Fatal("truth lost in an inference slice")
		}
		counts = append(counts, len(structures))
	}
	if counts[0] != counts[1] || counts[1] != counts[2] {
		t.Fatalf("inference slices disagree: %v", counts)
	}
}

// TestSolveInt8Victim: an int8 accelerator stores one byte per element, so
// with a 4-byte bus every region size is known only to ±3 elements; the
// slack-interval solver must still recover the structure.
func TestSolveInt8Victim(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{ElemBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(res.Trace, net.Input.Len(), 1)
	if err != nil {
		t.Fatal(err)
	}
	structures, err := Solve(a, 28, 1, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("truth lost on the int8 victim (%d candidates)", len(structures))
	}
	t.Logf("int8 victim: %d candidates", len(structures))
}

// TestSolveResNetMiniFindsTruth: residual shortcuts with a strided
// projection (the paper's ResNet citation) are recovered like SqueezeNet
// bypasses.
func TestSolveResNetMiniFindsTruth(t *testing.T) {
	net := nn.ResNetMini(10, 1)
	a, _ := traceOf(t, net)
	elt := 0
	for _, seg := range a.Segments {
		if seg.Kind == SegEltwise {
			elt++
		}
	}
	if elt != 2 {
		t.Fatalf("found %d eltwise segments, want 2", elt)
	}
	// The strided 1x1 projection violates the paper's Equation (5) (S <= F):
	// under the literal constraint system the truth is unreachable.
	strict, err := Solve(a, 32, 3, 10, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if containsTruth(strict, groundTruth(net)) {
		t.Fatal("strict Eq(5) should not admit a stride-2 1x1 projection")
	}
	opt := DefaultOptions()
	opt.AllowStrideOverKernel = true
	structures, err := Solve(a, 32, 3, 10, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(net)) {
		t.Fatalf("true ResNetMini structure not among %d candidates", len(structures))
	}
	t.Logf("ResNetMini: %d candidate structures (strict Eq(5): %d, truth excluded)", len(structures), len(strict))
}

func TestInferencesSingleRunIsIdentity(t *testing.T) {
	net := nn.LeNet(10)
	a, _ := traceOf(t, net)
	infs := a.Inferences()
	if len(infs) != 1 {
		t.Fatalf("%d inference slices for one run", len(infs))
	}
	if len(infs[0].Segments) != len(a.Segments) {
		t.Fatal("identity split changed segment count")
	}
	for i := range a.Segments {
		if infs[0].Segments[i].OFMBytes != a.Segments[i].OFMBytes {
			t.Fatal("identity split changed segments")
		}
	}
}

func TestSegmentAccessors(t *testing.T) {
	seg := Segment{StartCycle: 10, EndCycle: 35, Inputs: []SegInput{
		{Producer: -1, Bytes: 100}, {Producer: 0, Bytes: 50},
	}}
	if seg.Cycles() != 25 {
		t.Fatalf("Cycles = %d", seg.Cycles())
	}
	if seg.IFMBytes() != 150 {
		t.Fatalf("IFMBytes = %d", seg.IFMBytes())
	}
	if SegWeighted.String() != "weighted" || SegEltwise.String() != "eltwise" {
		t.Fatal("kind names wrong")
	}
}

func TestWriteReport(t *testing.T) {
	net := nn.SqueezeNet(10, 16)
	a, _ := traceOf(t, net)
	var sb strings.Builder
	a.WriteReport(&sb)
	out := sb.String()
	if !strings.Contains(out, "eltwise") || !strings.Contains(out, "++") {
		t.Fatalf("report missing bypass/concat markers:\n%s", out[:200])
	}
	if strings.Count(out, "\n") != len(a.Segments)+1 {
		t.Fatal("one line per segment expected")
	}
}
