package structrev

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"cnnrev/internal/corrupt"
	"cnnrev/internal/memtrace"
)

func goldenTrace(t *testing.T, model string) *memtrace.Trace {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "golden", model+".trace"))
	if err != nil {
		t.Fatalf("missing golden trace (run `go generate ./...`): %v", err)
	}
	tr, err := memtrace.DecodeTrace(raw)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestTolerantMatchesStrictOnCleanTraces is the acceptance gate for the
// tolerant path: with corruption disabled, AnalyzeTolerant + Solve must
// reproduce the strict pipeline's golden output byte for byte — the same
// dataflow report and the same candidate structures.
func TestTolerantMatchesStrictOnCleanTraces(t *testing.T) {
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.model, func(t *testing.T) {
			if testing.Short() && !gc.short {
				t.Skip("large golden trace in -short mode")
			}
			tr := goldenTrace(t, gc.model)
			inputBytes := gc.inW * gc.inW * gc.inD * 4

			strict, err := Analyze(tr, inputBytes, 4)
			if err != nil {
				t.Fatal(err)
			}
			tol, err := AnalyzeTolerant(tr, inputBytes, 4, TolerantOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if n := tol.Noise; n.InterferenceRegions != 0 || n.InterferenceAccesses != 0 ||
				n.WriteHoleFrac != 0 || n.DroppedDeps != 0 {
				t.Fatalf("clean trace measured nonzero noise: %+v", n)
			}
			var sRep, tRep bytes.Buffer
			strict.WriteReport(&sRep)
			tol.WriteReport(&tRep)
			if !bytes.Equal(sRep.Bytes(), tRep.Bytes()) {
				t.Fatalf("tolerant report differs from strict on a clean trace:\n--- strict ---\n%s--- tolerant ---\n%s",
					sRep.String(), tRep.String())
			}

			opt := DefaultOptions()
			opt.IdenticalModules = gc.modular
			sStructs, err := Solve(strict, gc.inW, gc.inD, gc.classes, opt)
			if err != nil {
				t.Fatal(err)
			}
			tStructs, err := Solve(tol, gc.inW, gc.inD, gc.classes, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(tStructs) != len(sStructs) || len(tStructs) != gc.structures {
				t.Fatalf("tolerant solve found %d structures, strict %d, golden %d",
					len(tStructs), len(sStructs), gc.structures)
			}
			for i := range sStructs {
				for j, l := range sStructs[i].Layers {
					tl := tStructs[i].Layers[j]
					if (l.Config == nil) != (tl.Config == nil) ||
						(l.Config != nil && *l.Config != *tl.Config) {
						t.Fatalf("structure %d layer %d differs between strict and tolerant", i, j)
					}
				}
			}
		})
	}
}

// TestTolerantSurvivesDropAndReorder is the ISSUE's robustness criterion:
// at ≤ 2% transaction drop plus bounded reordering, the tolerant pipeline
// must keep the true LeNet and ConvNet structures in the candidate set.
func TestTolerantSurvivesDropAndReorder(t *testing.T) {
	for _, gc := range goldenCases[:2] { // lenet, convnet
		gc := gc
		t.Run(gc.model, func(t *testing.T) {
			tr := goldenTrace(t, gc.model)
			for _, seed := range []int64{1, 2, 3} {
				noisy := corrupt.Apply(tr, corrupt.Config{
					Seed:          seed,
					DropRate:      0.02,
					ReorderWindow: 16,
				})
				a, err := AnalyzeTolerant(noisy, gc.inW*gc.inW*gc.inD*4, 4, TolerantOptions{})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(a.Segments) != gc.segments {
					t.Fatalf("seed %d: recovered %d segments, want %d", seed, len(a.Segments), gc.segments)
				}
				opt := DefaultOptions()
				opt.IdenticalModules = gc.modular
				structures, err := Solve(a, gc.inW, gc.inD, gc.classes, opt)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !containsTruth(structures, groundTruth(gc.victim())) {
					t.Fatalf("seed %d: true structure lost from %d candidates at 2%% drop",
						seed, len(structures))
				}
			}
		})
	}
}

// TestTolerantFiltersInterference injects co-tenant traffic and checks the
// tolerant path discards the scattered clusters, keeps the segmentation
// intact, and reports what it removed.
func TestTolerantFiltersInterference(t *testing.T) {
	gc := goldenCases[0] // lenet
	tr := goldenTrace(t, gc.model)
	noisy := corrupt.Apply(tr, corrupt.Config{Seed: 9, InterferenceRate: 0.05, InterferenceRegions: 2})
	a, err := AnalyzeTolerant(noisy, gc.inW*gc.inW*gc.inD*4, 4, TolerantOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Noise.InterferenceAccesses == 0 {
		t.Fatal("tolerant analysis filtered no interference from an interfered trace")
	}
	if len(a.Segments) != gc.segments {
		t.Fatalf("interference changed the segmentation: %d segments, want %d", len(a.Segments), gc.segments)
	}
	structures, err := Solve(a, gc.inW, gc.inD, gc.classes, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !containsTruth(structures, groundTruth(gc.victim())) {
		t.Fatal("true structure lost under interference")
	}
}

// TestSizeSlackUpFracWidensEnumeration pins the new solver knob directly:
// with an observed size 5% under the truth, the exact solver misses the
// true factorization and the widened solver recovers it.
func TestSizeSlackUpFracWidensEnumeration(t *testing.T) {
	// Truth: 24×24×8 OFM (4608 elems), 5×5×1×8 filters (200 elems).
	obsOFM := 4608 * 95 / 100
	obsFltr := 200*95/100 + 1
	opt := DefaultOptions()
	exact := EnumerateLayer(28, 1, obsOFM, obsFltr, false, 10, opt)
	for _, c := range exact {
		if c.WOFM == 24 && c.DOFM == 8 && c.F == 5 {
			t.Fatal("exact enumeration should not recover the undershot truth")
		}
	}
	opt.SizeSlackUpFrac = 0.10
	wide := EnumerateLayer(28, 1, obsOFM, obsFltr, false, 10, opt)
	found := false
	for _, c := range wide {
		if c.WOFM == 24 && c.DOFM == 8 && c.F == 5 && c.S == 1 && c.P == 0 && !c.HasPool {
			found = true
		}
	}
	if !found {
		t.Fatalf("widened enumeration (%d candidates) missed the true configuration", len(wide))
	}
	if len(wide) < len(exact) {
		t.Fatalf("widening shrank the candidate set: %d -> %d", len(exact), len(wide))
	}
}
