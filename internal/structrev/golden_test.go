package structrev

//go:generate go run ./testdata/gen

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// goldenCase pins the structure attack's output for one committed victim
// trace. structures is this implementation's deterministic candidate count;
// paperTable3 is the count the paper reports for the same victim (Table 3)
// — recorded alongside so drift in either direction is visible. The counts
// differ where the paper's solver applies pruning heuristics ours does not
// reproduce (cmd/experiments prints the same ours-vs-paper comparison).
type goldenCase struct {
	model       string
	inW, inD    int
	classes     int
	modular     bool
	segments    int
	structures  int
	paperTable3 int
	victim      func() *nn.Network
	short       bool // runs under -short
}

var goldenCases = []goldenCase{
	{"lenet", 28, 1, 10, false, 4, 27, 9, func() *nn.Network { return nn.LeNet(10) }, true},
	{"convnet", 32, 3, 10, false, 4, 25, 6, func() *nn.Network { return nn.ConvNet(10) }, true},
	{"alexnet", 227, 3, 1000, false, 8, 32, 24, func() *nn.Network { return nn.AlexNet(1000, 1) }, false},
	{"squeezenet", 227, 3, 1000, true, 29, 2, 9, func() *nn.Network { return nn.SqueezeNet(1000, 1) }, false},
}

// TestGoldenTraceConformance is the end-to-end regression gate for the
// attack pipeline: it decodes each committed trace, re-derives the dataflow
// graph, and pins both the graph report and the candidate count. Any change
// to the simulator's transaction schedule, the trace codec, the segmenter,
// or the solver that alters attack output fails here before it can ship
// silently.
func TestGoldenTraceConformance(t *testing.T) {
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.model, func(t *testing.T) {
			if testing.Short() && !gc.short {
				t.Skip("large golden trace in -short mode")
			}
			raw, err := os.ReadFile(filepath.Join("testdata", "golden", gc.model+".trace"))
			if err != nil {
				t.Fatalf("missing golden trace (run `go generate ./...`): %v", err)
			}
			tr, err := memtrace.DecodeTrace(raw)
			if err != nil {
				t.Fatalf("golden trace does not decode: %v", err)
			}

			a, err := Analyze(tr, gc.inW*gc.inW*gc.inD*4, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Segments) != gc.segments {
				t.Fatalf("recovered %d segments, golden %d", len(a.Segments), gc.segments)
			}

			// The dataflow graph (dependencies, adjacency, extents, timing)
			// must match the committed report byte for byte.
			wantReport, err := os.ReadFile(filepath.Join("testdata", "golden", gc.model+".report.txt"))
			if err != nil {
				t.Fatalf("missing golden report (run `go generate ./...`): %v", err)
			}
			var gotReport bytes.Buffer
			a.WriteReport(&gotReport)
			if !bytes.Equal(gotReport.Bytes(), wantReport) {
				t.Fatalf("recovered dataflow graph drifted from golden report:\n--- got ---\n%s--- want ---\n%s",
					gotReport.String(), wantReport)
			}

			opt := DefaultOptions()
			opt.IdenticalModules = gc.modular
			structures, err := Solve(a, gc.inW, gc.inD, gc.classes, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(structures) != gc.structures {
				t.Fatalf("enumerated %d candidate structures, golden %d (paper Table 3: %d)",
					len(structures), gc.structures, gc.paperTable3)
			}
			if !containsTruth(structures, groundTruth(gc.victim())) {
				t.Fatalf("true structure not among the %d candidates", len(structures))
			}
			t.Logf("%s: %d candidates from committed trace (paper Table 3: %d)",
				gc.model, len(structures), gc.paperTable3)
		})
	}
}

// TestGoldenTraceRegeneration guards the generator's determinism claim on
// the fast victims: capturing a fresh trace with the documented parameters
// reproduces the committed bytes exactly. (Traces are value-independent
// without zero pruning; this catches accidental schedule or codec drift.)
func TestGoldenTraceRegeneration(t *testing.T) {
	for _, gc := range goldenCases[:2] { // lenet, convnet: cheap to recapture
		gc := gc
		t.Run(gc.model, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", "golden", gc.model+".trace"))
			if err != nil {
				t.Fatal(err)
			}
			raw := captureTraceBytes(t, gc.victim())
			if !bytes.Equal(raw, want) {
				t.Fatalf("freshly captured %s trace differs from golden (%d vs %d bytes)",
					gc.model, len(raw), len(want))
			}
		})
	}
}

// captureTraceBytes performs the generator's capture: weight seed 1, input
// seed 2, default accelerator configuration.
func captureTraceBytes(t *testing.T, net *nn.Network) []byte {
	t.Helper()
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
