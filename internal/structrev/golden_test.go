package structrev

//go:generate go run ./testdata/gen

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// goldenCase pins the structure attack's output for one committed victim
// trace. structures is this implementation's deterministic candidate count;
// paperTable3 is the count the paper reports for the same victim (Table 3)
// — recorded alongside so drift in either direction is visible. The counts
// differ where the paper's solver applies pruning heuristics ours does not
// reproduce (cmd/experiments prints the same ours-vs-paper comparison).
type goldenCase struct {
	model        string
	inW, inD     int
	classes      int
	modular      bool
	segments     int
	structures   int
	rsStructures int // candidate count from the row-stationary trace
	paperTable3  int
	victim       func() *nn.Network
	short        bool // runs under -short
}

// The row-stationary counts differ where per-row cycle accounting shifts a
// layer's cycles-per-MAC profile enough to move candidates across the
// solver's timing-consistency bound; weight-stationary timing matches
// output-stationary exactly, so those two share a count.
var goldenCases = []goldenCase{
	{"lenet", 28, 1, 10, false, 4, 27, 24, 9, func() *nn.Network { return nn.LeNet(10) }, true},
	{"convnet", 32, 3, 10, false, 4, 25, 25, 6, func() *nn.Network { return nn.ConvNet(10) }, true},
	{"alexnet", 227, 3, 1000, false, 8, 32, 60, 24, func() *nn.Network { return nn.AlexNet(1000, 1) }, false},
	{"squeezenet", 227, 3, 1000, true, 29, 2, 2, 9, func() *nn.Network { return nn.SqueezeNet(1000, 1) }, false},
}

// goldenDataflows enumerates the per-backend corpus files: the
// output-stationary capture keeps the historical unsuffixed names (whose
// bytes pin the pre-refactor schedule); weight- and row-stationary captures
// carry .ws/.rs suffixes.
var goldenDataflows = []struct {
	suffix string
	df     accel.Dataflow
	class  DataflowClass
}{
	{"", accel.OutputStationary, DataflowOutputStationary},
	{".ws", accel.WeightStationary, DataflowWeightStationary},
	{".rs", accel.RowStationary, DataflowRowStationary},
}

// TestGoldenTraceConformance is the end-to-end regression gate for the
// attack pipeline: it decodes each committed trace, re-derives the dataflow
// graph, and pins both the graph report and the candidate count. Any change
// to the simulator's transaction schedule, the trace codec, the segmenter,
// or the solver that alters attack output fails here before it can ship
// silently.
func TestGoldenTraceConformance(t *testing.T) {
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.model, func(t *testing.T) {
			if testing.Short() && !gc.short {
				t.Skip("large golden trace in -short mode")
			}
			for _, gd := range goldenDataflows {
				raw, err := os.ReadFile(filepath.Join("testdata", "golden", gc.model+gd.suffix+".trace"))
				if err != nil {
					t.Fatalf("missing golden trace (run `go generate ./...`): %v", err)
				}
				tr, err := memtrace.DecodeTrace(raw)
				if err != nil {
					t.Fatalf("%v golden trace does not decode: %v", gd.df, err)
				}

				a, err := Analyze(tr, gc.inW*gc.inW*gc.inD*4, 4)
				if err != nil {
					t.Fatalf("%v: %v", gd.df, err)
				}
				if len(a.Segments) != gc.segments {
					t.Fatalf("%v: recovered %d segments, golden %d", gd.df, len(a.Segments), gc.segments)
				}

				// The dataflow graph (dependencies, adjacency, extents, timing)
				// must match the committed report byte for byte.
				wantReport, err := os.ReadFile(filepath.Join("testdata", "golden", gc.model+gd.suffix+".report.txt"))
				if err != nil {
					t.Fatalf("missing golden report (run `go generate ./...`): %v", err)
				}
				var gotReport bytes.Buffer
				a.WriteReport(&gotReport)
				if !bytes.Equal(gotReport.Bytes(), wantReport) {
					t.Fatalf("%v: recovered dataflow graph drifted from golden report:\n--- got ---\n%s--- want ---\n%s",
						gd.df, gotReport.String(), wantReport)
				}

				// The committed trace must classify as the backend that
				// produced it.
				if det := DetectDataflow(tr, a, DetectOptions{}); det.Class != gd.class {
					t.Fatalf("%v golden trace detected as %v", gd.df, det.Class)
				}

				opt := DefaultOptions()
				opt.IdenticalModules = gc.modular
				structures, err := Solve(a, gc.inW, gc.inD, gc.classes, opt)
				if err != nil {
					t.Fatalf("%v: %v", gd.df, err)
				}
				wantN := gc.structures
				if gd.df == accel.RowStationary {
					wantN = gc.rsStructures
				}
				if len(structures) != wantN {
					t.Fatalf("%v: enumerated %d candidate structures, golden %d (paper Table 3: %d)",
						gd.df, len(structures), wantN, gc.paperTable3)
				}
				if !containsTruth(structures, groundTruth(gc.victim())) {
					t.Fatalf("%v: true structure not among the %d candidates", gd.df, len(structures))
				}
				t.Logf("%s/%v: %d candidates from committed trace (paper Table 3: %d)",
					gc.model, gd.df, len(structures), gc.paperTable3)
			}
		})
	}
}

// TestGoldenTraceRegeneration guards the generator's determinism claim on
// the fast victims: capturing a fresh trace with the documented parameters
// reproduces the committed bytes exactly. (Traces are value-independent
// without zero pruning; this catches accidental schedule or codec drift.)
func TestGoldenTraceRegeneration(t *testing.T) {
	for _, gc := range goldenCases[:2] { // lenet, convnet: cheap to recapture
		gc := gc
		t.Run(gc.model, func(t *testing.T) {
			for _, gd := range goldenDataflows {
				want, err := os.ReadFile(filepath.Join("testdata", "golden", gc.model+gd.suffix+".trace"))
				if err != nil {
					t.Fatal(err)
				}
				raw := captureTraceBytes(t, gc.victim(), gd.df)
				if !bytes.Equal(raw, want) {
					t.Fatalf("freshly captured %s %v trace differs from golden (%d vs %d bytes)",
						gc.model, gd.df, len(raw), len(want))
				}
			}
		})
	}
}

// captureTraceBytes performs the generator's capture: weight seed 1, input
// seed 2, default accelerator configuration plus the dataflow.
func captureTraceBytes(t *testing.T, net *nn.Network, df accel.Dataflow) []byte {
	t.Helper()
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{Dataflow: df})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
