package structrev

import (
	"fmt"
	"math"
)

// LayerConfig is one hypothesis for the structural parameters of a layer —
// the eleven quantities of paper Table 2.
type LayerConfig struct {
	WIFM, DIFM int
	WOFM, DOFM int

	// FC marks a fully-connected layer: its filter spans the entire input
	// feature map (F = WIFM) and it has a unique configuration.
	FC bool

	F, S, P int // convolution kernel, stride, per-side padding

	HasPool             bool
	FPool, SPool, PPool int
}

// ConvOutW returns the conv-stage (pre-pool) output width Wc.
func (c *LayerConfig) ConvOutW() int {
	if c.FC {
		return 1
	}
	num := c.WIFM - c.F + 2*c.P
	if num < 0 || c.S <= 0 {
		return 0
	}
	return num/c.S + 1
}

// MACs returns the multiply-accumulate count of the hypothesis, using the
// paper's formula #MACs = Wc²·D_OFM·F²·D_IFM.
func (c *LayerConfig) MACs() int64 {
	if c.FC {
		return int64(c.DOFM) * int64(c.WIFM) * int64(c.WIFM) * int64(c.DIFM)
	}
	wc := int64(c.ConvOutW())
	return wc * wc * int64(c.DOFM) * int64(c.F) * int64(c.F) * int64(c.DIFM)
}

// String renders the hypothesis compactly.
func (c *LayerConfig) String() string {
	if c.FC {
		return fmt.Sprintf("FC %dx%dx%d -> %d", c.WIFM, c.WIFM, c.DIFM, c.DOFM)
	}
	s := fmt.Sprintf("conv %dx%dx%d F%d S%d P%d -> %dx%dx%d",
		c.WIFM, c.WIFM, c.DIFM, c.F, c.S, c.P, c.WOFM, c.WOFM, c.DOFM)
	if c.HasPool {
		s += fmt.Sprintf(" pool F%d S%d P%d", c.FPool, c.SPool, c.PPool)
	}
	return s
}

// Options tunes the solver.
type Options struct {
	// TimingSpreadMax bounds the ratio between the largest and smallest
	// cycles-per-MAC over the conv layers of a candidate structure. The
	// paper assumes execution time is "roughly proportional" to MACs; the
	// victim's measured spread plus candidate MAC differences must fit
	// under this bound. Default 1.35.
	TimingSpreadMax float64
	// MaxPoolPad bounds pooling padding in the enumeration. Every pooled
	// configuration in the paper's Table 4 has P_pool = 0; default 0.
	MaxPoolPad int
	// MaxConvF bounds convolution kernels in the enumeration. The size and
	// timing observables carry a gauge symmetry — W_OFM→2·W_OFM, D_OFM→D_OFM/4,
	// F→2·F preserves SIZE_OFM, SIZE_FLTR and the MAC count — so without a
	// kernel bound the solver admits unbounded ladders of physically absurd
	// kernels (F=22, 44, …) that no published CNN uses. Default 13 (the
	// largest kernel in classic CNNs is AlexNet's 11). FC layers, whose
	// filter spans the whole IFM, are exempt.
	MaxConvF int
	// MaxPoolF bounds the pooling window in the enumeration (practicality
	// prior: real networks pool over small windows; every pooled row of the
	// paper's Table 4 has F_pool ≤ 4). Global pooling — a window covering
	// the whole conv output, collapsing it to 1×1 — is always allowed.
	// Default 4.
	MaxPoolF int
	// BiasInFilters indicates the filter region also stores D_OFM bias
	// values in addition to the F²·D_IFM·D_OFM weights. The default (false)
	// matches the paper's Equation (3). When the victim does store biases in
	// DRAM, setting this makes the attack markedly stronger: wrong D_OFM
	// factorizations fail the ±D_OFM size accounting.
	BiasInFilters bool
	// KeepPaddingVariants disables padding canonicalization. By default,
	// candidates differing only in conv padding while producing identical
	// geometry and MACs (observationally equivalent under floor division)
	// are collapsed to their minimum-padding representative.
	KeepPaddingVariants bool
	// IdenticalModules applies the paper's modular-construction assumption:
	// repeated module instances (fire-module squeeze/expand roles) must use
	// identical conv geometry across instances.
	IdenticalModules bool
	// MaxStructures caps the number of enumerated structures as a safety
	// valve. Default 100000.
	MaxStructures int
	// AllowStrideOverKernel relaxes the paper's Equation (5) lower bound
	// (S ≤ F). The paper argues a stride beyond the kernel leaves input
	// pixels unused — yet ResNet-style strided 1×1 projection shortcuts do
	// exactly that, so attacking post-2015 architectures requires the
	// relaxation (a finding of this reproduction).
	AllowStrideOverKernel bool
	// SizeSlackElems widens the size equations to intervals: a region's true
	// element count lies in (observed − slack, observed], because coarse
	// DRAM transactions round extents up to whole blocks. Solve sets this
	// automatically from the trace granularity; zero means exact sizes.
	SizeSlackElems int
	// SizeSlackUpFrac widens the size equations in the opposite direction:
	// the true element count may exceed the observed one by this fraction,
	// because a lossy probe (dropped transactions, see internal/corrupt)
	// undershoots region extents. Solve derives it automatically from the
	// measured Analysis.Noise.WriteHoleFrac when unset; zero on a clean
	// trace, preserving the exact constraint system.
	SizeSlackUpFrac float64
}

// sizeUp returns the upward widening in elements (or bytes) for an observed
// size under the given fractional slack.
func sizeUp(size int, frac float64) int {
	if frac <= 0 || size <= 0 {
		return 0
	}
	return int(frac * float64(size))
}

// DefaultOptions returns the options used in the paper reproduction runs.
func DefaultOptions() Options {
	return Options{
		TimingSpreadMax: 1.35,
		MaxPoolPad:      0,
		MaxConvF:        13,
		MaxPoolF:        4,
		MaxStructures:   100000,
	}
}

// isqrtFloor returns floor(sqrt(n)) for n ≥ 0.
func isqrtFloor(n int) int {
	if n < 0 {
		return 0
	}
	r := int(math.Sqrt(float64(n)))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}

// isqrt returns the integer square root of n if n is a perfect square, and
// -1 otherwise.
func isqrt(n int) int {
	if n < 0 {
		return -1
	}
	r := int(math.Round(math.Sqrt(float64(n))))
	for r*r > n {
		r--
	}
	for (r+1)*(r+1) <= n {
		r++
	}
	if r*r != n {
		return -1
	}
	return r
}

// EnumerateLayer lists every layer configuration consistent with the
// observed sizes and the paper's constraint system (Equations (1)-(8)),
// given the input dimensions inherited from the previous layer's candidate.
// sizeOFM and sizeFltr are in elements. If isLast is set, the output must be
// the classifier output (W_OFM = 1, D_OFM = classes).
func EnumerateLayer(wIFM, dIFM, sizeOFM, sizeFltr int, isLast bool, classes int, opt Options) []LayerConfig {
	var out []LayerConfig
	seen := map[LayerConfig]bool{}
	add := func(c LayerConfig) {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}

	// With coarse DRAM blocks the observed sizes are rounded up: the true
	// element counts lie in (observed − slack, observed]. A lossy probe
	// additionally undershoots, extending the interval upward to
	// observed·(1 + SizeSlackUpFrac).
	slack := opt.SizeSlackElems
	if slack < 0 {
		slack = 0
	}
	upOFM := sizeUp(sizeOFM, opt.SizeSlackUpFrac)
	for wofm := 1; wofm*wofm <= sizeOFM+upOFM; wofm++ {
		w2 := wofm * wofm
		for dofm := (sizeOFM + upOFM) / w2; dofm >= 1 && dofm*w2 >= sizeOFM-slack; dofm-- {
			enumerateDepth(wIFM, dIFM, wofm, dofm, sizeFltr, slack, isLast, classes, opt, add)
		}
	}
	if !opt.KeepPaddingVariants {
		out = canonicalizePadding(out)
	}
	return out
}

// enumerateDepth lists the kernel sizes and geometries consistent with one
// (W_OFM, D_OFM) factorization of the observed output size.
func enumerateDepth(wIFM, dIFM, wofm, dofm, sizeFltr, slack int, isLast bool, classes int, opt Options, add func(LayerConfig)) {
	if isLast && (wofm != 1 || dofm != classes) {
		return
	}
	// Note: W_OFM may exceed W_IFM — padded convolution grows the output
	// by up to F−1 — so no upsampling prune is sound here.
	// Equation (3): SIZE_FLTR = F²·D_IFM·D_OFM (+ D_OFM bias values),
	// within the block-rounding slack.
	hi := sizeFltr
	if opt.BiasInFilters {
		hi -= dofm
	}
	up := sizeUp(sizeFltr, opt.SizeSlackUpFrac)
	unit := dIFM * dofm
	if hi+up < unit {
		return
	}
	for f := isqrtFloor((hi + up) / unit); f >= 1 && f*f*unit >= hi-slack; f-- {
		// Fully-connected interpretation: the filter covers the whole IFM.
		if f == wIFM && wofm == 1 {
			add(LayerConfig{WIFM: wIFM, DIFM: dIFM, WOFM: 1, DOFM: dofm, FC: true, F: f, S: 1})
		}
		// Convolutional interpretations. Equation (5): S ≤ F ≤ W_IFM/2.
		if 2*f > wIFM {
			continue
		}
		if opt.MaxConvF > 0 && f > opt.MaxConvF {
			continue
		}
		enumerateGeometry(wIFM, dIFM, wofm, dofm, f, opt, add)
	}
}

// enumerateGeometry lists the (S, P, pooling) combinations realizing a
// (W_IFM, D_IFM) → (W_OFM, D_OFM) convolution with kernel width f.
func enumerateGeometry(wIFM, dIFM, wofm, dofm, f int, opt Options, add func(LayerConfig)) {
	maxS := f // Equation (5): S ≤ F
	if opt.AllowStrideOverKernel {
		maxS = wIFM
	}
	for s := 1; s <= maxS; s++ {
		for p := 0; p < f; p++ { // Equation (7): P < F
			wc := (wIFM - f + 2*p) / s
			if wIFM-f+2*p < 0 {
				continue
			}
			wc++
			if wc < wofm {
				continue
			}
			if wc == wofm {
				add(LayerConfig{WIFM: wIFM, DIFM: dIFM, WOFM: wofm, DOFM: dofm, F: f, S: s, P: p})
			}
			// Pooled interpretations: F_pool from exact division
			// (W_OFM−1)·S_pool = Wc − F_pool + 2·P_pool.
			for pp := 0; pp <= opt.MaxPoolPad; pp++ {
				for sp := 1; ; sp++ {
					fp := wc + 2*pp - (wofm-1)*sp
					if fp < sp { // Equation (6) lower bound: S_pool ≤ F_pool
						break
					}
					if fp > wc { // Equation (6) upper bound: F_pool ≤ Wc
						continue
					}
					if pp >= fp { // Equation (8): P_pool < F_pool
						continue
					}
					if fp == 1 && sp == 1 {
						continue // trivial identity pool
					}
					if wofm == 1 && sp != fp {
						continue // global pooling: stride is immaterial, canonicalize
					}
					if fp > opt.MaxPoolF && !(wofm == 1 && fp == wc+2*pp) {
						continue // practicality prior; global pools exempt
					}
					add(LayerConfig{WIFM: wIFM, DIFM: dIFM, WOFM: wofm, DOFM: dofm, F: f, S: s, P: p,
						HasPool: true, FPool: fp, SPool: sp, PPool: pp})
				}
			}
		}
	}
}

// canonicalizePadding collapses candidates that differ only in conv padding
// while producing identical pre-pool and final geometry (floor division maps
// several paddings to the same output width); the minimum-padding
// representative is kept. Such variants are observationally equivalent:
// identical sizes, identical MAC counts.
func canonicalizePadding(cands []LayerConfig) []LayerConfig {
	type key struct {
		c  LayerConfig
		wc int
	}
	best := map[key]LayerConfig{}
	var order []key
	for _, c := range cands {
		k := key{c: c, wc: c.ConvOutW()}
		k.c.P = 0
		if prev, ok := best[k]; !ok || c.P < prev.P {
			if !ok {
				order = append(order, k)
			}
			best[k] = c
		}
	}
	out := make([]LayerConfig, 0, len(order))
	for _, k := range order {
		out = append(out, best[k])
	}
	return out
}
