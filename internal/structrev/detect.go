package structrev

import (
	"sort"

	"cnnrev/internal/memtrace"
)

// DataflowClass identifies the accelerator scheduling family that produced
// a trace. The classes correspond to accel's Dataflow values; structrev
// names them independently so the attack side carries no simulator
// dependency.
type DataflowClass int

const (
	// DataflowAmbiguous means the evidence was absent or conflicting. The
	// detector prefers this over guessing: a corrupted trace must degrade
	// to ambiguous, never to a wrong confident answer.
	DataflowAmbiguous DataflowClass = iota
	DataflowOutputStationary
	DataflowWeightStationary
	DataflowRowStationary
)

// String names the class using accel's canonical dataflow names.
func (c DataflowClass) String() string {
	switch c {
	case DataflowOutputStationary:
		return "output-stationary"
	case DataflowWeightStationary:
		return "weight-stationary"
	case DataflowRowStationary:
		return "row-stationary"
	}
	return "ambiguous"
}

// DataflowVote is one segment's classification evidence.
type DataflowVote struct {
	// Segment indexes Analysis.Segments.
	Segment int
	// Class is the per-segment verdict (DataflowAmbiguous = abstain).
	Class DataflowClass
	// Weak marks a degenerate single-tile/single-band pattern whose class
	// is the most plausible reading but cannot veto a specific verdict:
	// tiny layers genuinely converge across dataflows.
	Weak bool
	// Reason is a fixed diagnostic tag for reports and tests.
	Reason string
}

// DetectOptions tunes dataflow detection. The zero value matches the
// default accelerator configuration.
type DetectOptions struct {
	// OFMBufBytes is the accelerator's on-chip output buffer size (the
	// paper's threat model assumes a known victim device). Write groups
	// filling more than half of it mark band-granular retirement
	// (weight-stationary); row-granular groups stay far below it. 0 uses
	// the 64 KiB default.
	OFMBufBytes int
	// FCRatio is the WeightsBytes/OFMBytes ratio at which a segment is
	// treated as fully connected and abstains — FC trace emission is
	// dataflow-invariant. 0 uses 16.
	FCRatio uint64
}

// DataflowDetection is the result of classifying a trace's dataflow.
type DataflowDetection struct {
	// Class is the aggregated verdict across all weighted segments.
	Class DataflowClass
	// Votes holds the per-segment evidence (abstaining segments included,
	// with Class DataflowAmbiguous).
	Votes []DataflowVote
}

// segEvidence accumulates one segment's raw interleaving features during
// the trace scan.
type segEvidence struct {
	weightReads   int
	wRegress      int    // weight-read address regressions (re-sweeps)
	prevWAddr     uint64 // last weight-read address
	sawFmap       bool   // any fmap read / OFM write seen yet
	fmapBeforeW   bool   // fmap access preceded the first weight read
	wAfterFmap    bool   // weight read after fmap traffic began
	writes        int
	writeGroups   int // maximal runs of non-regressing OFM write addresses
	prevWrAddr    uint64
	groupBytes    uint64
	maxGroupBytes uint64
}

func (ev *segEvidence) closeWriteGroup() {
	if ev.groupBytes > ev.maxGroupBytes {
		ev.maxGroupBytes = ev.groupBytes
	}
	ev.groupBytes = 0
}

// DetectDataflow classifies which accelerator dataflow produced the trace
// from the read/write interleaving structure of each weighted segment:
//
//   - output-stationary re-sweeps the filter region once per output band
//     (weight-read address regressions) and, in its single-band form, opens
//     every tile with an IFM read before the filter tile;
//   - weight-stationary opens each filter tile with a weight read and
//     interleaves further weight reads with feature-map traffic, retiring
//     buffer-filling output bands;
//   - row-stationary reads the whole filter region in one ascending
//     preamble before any feature-map access and retires output rows —
//     many small write groups, each far below the output buffer size.
//
// Fully-connected segments emit the same trace under every dataflow and
// abstain, as do segments whose evidence is incomplete. Votes are
// aggregated conservatively: a verdict requires at least one supporting
// segment and no contradicting segment, so corrupted traces degrade to
// DataflowAmbiguous rather than flipping to a wrong confident answer.
func DetectDataflow(tr *memtrace.Trace, a *Analysis, opt DetectOptions) DataflowDetection {
	if opt.OFMBufBytes <= 0 {
		opt.OFMBufBytes = 64 << 10
	}
	if opt.FCRatio == 0 {
		opt.FCRatio = 16
	}
	det := DataflowDetection{Class: DataflowAmbiguous}
	if tr == nil || a == nil || len(a.Segments) == 0 {
		return det
	}

	// Feature-map address space: the network input region plus every
	// segment's output region. Reads outside both this set and a segment's
	// weight region (co-tenant interference, hostile noise) carry no
	// dataflow signal and are ignored.
	fmapIvs := make([]memtrace.Interval, 0, len(a.Segments)+1)
	if a.InputRegion.Bytes() > 0 {
		fmapIvs = append(fmapIvs, a.InputRegion)
	}
	for i := range a.Segments {
		if iv := a.Segments[i].OFMRegion; iv.Bytes() > 0 {
			fmapIvs = append(fmapIvs, iv)
		}
	}
	sort.Slice(fmapIvs, func(i, j int) bool { return fmapIvs[i].Lo < fmapIvs[j].Lo })
	inFmap := func(addr uint64) bool {
		k := sort.Search(len(fmapIvs), func(i int) bool { return fmapIvs[i].Hi > addr })
		return k < len(fmapIvs) && fmapIvs[k].Contains(addr)
	}

	// One pass over the trace, attributing accesses to segments by cycle
	// window. Accesses are cycle-ordered in honest traces; out-of-window
	// stragglers (reordering corruption) are dropped rather than guessed at.
	ev := make([]segEvidence, len(a.Segments))
	si := 0
	for _, acc := range tr.Accesses {
		for si < len(a.Segments) && acc.Cycle >= a.Segments[si].EndCycle {
			ev[si].closeWriteGroup()
			si++
		}
		if si >= len(a.Segments) {
			break
		}
		seg := &a.Segments[si]
		if acc.Cycle < seg.StartCycle {
			continue
		}
		e := &ev[si]
		switch {
		case acc.Kind == memtrace.Read && seg.WeightsRegion.Contains(acc.Addr):
			if e.weightReads > 0 && acc.Addr < e.prevWAddr {
				e.wRegress++
			}
			e.prevWAddr = acc.Addr
			e.weightReads++
			if e.sawFmap {
				e.wAfterFmap = true
			}
		case acc.Kind == memtrace.Write && seg.OFMRegion.Contains(acc.Addr):
			if e.writes == 0 {
				e.writeGroups = 1
			} else if acc.Addr < e.prevWrAddr {
				e.closeWriteGroup()
				e.writeGroups++
			}
			e.prevWrAddr = acc.Addr
			e.writes++
			e.groupBytes += uint64(acc.Count) * uint64(tr.BlockBytes)
			if e.weightReads == 0 {
				e.fmapBeforeW = true
			}
			e.sawFmap = true
		case acc.Kind == memtrace.Read && inFmap(acc.Addr):
			if e.weightReads == 0 {
				e.fmapBeforeW = true
			}
			e.sawFmap = true
		}
	}
	if si < len(a.Segments) {
		ev[si].closeWriteGroup()
	}

	for i := range a.Segments {
		det.Votes = append(det.Votes, classifySegment(&a.Segments[i], &ev[i], &opt))
	}

	var osN, wsN, wsWeakN, rsN int
	for _, v := range det.Votes {
		switch {
		case v.Class == DataflowOutputStationary:
			osN++
		case v.Class == DataflowWeightStationary && v.Weak:
			wsWeakN++
		case v.Class == DataflowWeightStationary:
			wsN++
		case v.Class == DataflowRowStationary:
			rsN++
		}
	}
	switch {
	case osN > 0 && wsN == 0 && wsWeakN == 0 && rsN == 0:
		det.Class = DataflowOutputStationary
	case rsN > 0 && osN == 0 && wsN == 0:
		// Weak weight-stationary votes come from degenerate single-group
		// segments, which a row-stationary schedule also produces when a
		// layer has one output row; they do not contradict row votes.
		det.Class = DataflowRowStationary
	case (wsN > 0 || wsWeakN > 0) && osN == 0 && rsN == 0:
		det.Class = DataflowWeightStationary
	}
	return det
}

// classifySegment turns one segment's interleaving evidence into a vote.
func classifySegment(seg *Segment, e *segEvidence, opt *DetectOptions) DataflowVote {
	v := DataflowVote{Segment: seg.Index, Class: DataflowAmbiguous}
	if seg.Kind != SegWeighted || e.weightReads == 0 || e.writes == 0 {
		v.Reason = "no-evidence"
		return v
	}
	if seg.OFMBytes > 0 && seg.WeightsBytes/seg.OFMBytes >= opt.FCRatio {
		// Fully-connected layers stream IFM → weight rows → output under
		// every dataflow; their trace carries no scheduling signal.
		v.Reason = "fc-invariant"
		return v
	}
	switch {
	case e.wRegress > 0:
		// Only the output-stationary order re-reads the filter region
		// (once per band); drops cannot fabricate an address regression.
		v.Class = DataflowOutputStationary
		v.Reason = "weight-resweep"
	case e.fmapBeforeW:
		// Single-band output-stationary: each tile opens with the pinned
		// band's IFM read, before its filter tile.
		v.Class = DataflowOutputStationary
		v.Reason = "ifm-first"
	case e.wAfterFmap:
		// Single ascending weight sweep interleaved with feature-map
		// traffic: filter tiles pinned one after another.
		v.Class = DataflowWeightStationary
		v.Reason = "weights-interleaved"
	case e.writeGroups >= 2 && e.maxGroupBytes < uint64(opt.OFMBufBytes)/2:
		// Weight-only preamble with many small write retirements: output
		// rows leave the PE array as they finish. Band-granular schedules
		// always fill most of the output buffer before writing back.
		v.Class = DataflowRowStationary
		v.Reason = "row-writes"
	case e.writeGroups >= 2:
		// Weight-only preamble with buffer-filling write bands: a single
		// filter tile streamed across multiple output bands.
		v.Class = DataflowWeightStationary
		v.Reason = "band-writes"
	default:
		// One tile, one band: [weights, IFM, write]. Weight-stationary is
		// the natural reading, but a one-row layer under row-stationary
		// emits the same thing — a weak vote that cannot veto others.
		v.Class = DataflowWeightStationary
		v.Weak = true
		v.Reason = "single-tile"
	}
	return v
}
