// Package structrev implements the paper's first attack (§3): reverse
// engineering a CNN's structure from its off-chip memory access trace.
//
// The attack proceeds in two stages. Analyze segments the trace into layers
// using read-after-write dependencies on feature maps (Algorithm 1 steps
// 1-2), recovering per-layer SIZE_IFM/SIZE_OFM/SIZE_FLTR, the inter-layer
// dataflow graph (including concatenation and bypass connections) and
// per-layer execution times. Solve then enumerates every layer
// parameterization consistent with the integer constraint system of
// Equations (1)-(8), filters candidates whose MAC count contradicts the
// measured execution-time ratios, and chains per-layer candidates into
// complete network structures (Algorithm 1 steps 3-5).
package structrev

import (
	"fmt"
	"io"
	"sort"

	"cnnrev/internal/memtrace"
)

// SegmentKind classifies a trace segment by its observable behaviour.
type SegmentKind int

const (
	// SegWeighted is a layer that streams a read-only (filter) region:
	// a convolutional or fully-connected layer.
	SegWeighted SegmentKind = iota
	// SegEltwise is a layer that reads feature maps only and writes an
	// output of the same size (a bypass element-wise addition).
	SegEltwise
)

// String names the segment kind.
func (k SegmentKind) String() string {
	if k == SegWeighted {
		return "weighted"
	}
	return "eltwise"
}

// SegInput is one observed data dependency of a segment.
type SegInput struct {
	// Producer is the segment index that wrote the data, or -1 for the
	// network input region.
	Producer int
	// Bytes is the extent of the producer data read.
	Bytes uint64
	// Adjacent reports whether this producer's output region is contiguous
	// in DRAM with the previous producer in the list — the signature of a
	// depth concatenation read.
	Adjacent bool
}

// Segment is one layer execution recovered from the trace.
type Segment struct {
	Index      int
	Kind       SegmentKind
	StartCycle uint64
	EndCycle   uint64 // start of the next segment (or end of trace)

	// WeightsBytes is the extent of the read-only region streamed by this
	// segment (0 for eltwise segments).
	WeightsBytes  uint64
	WeightsRegion memtrace.Interval

	// OFMBytes is the extent of the address range written by this segment.
	OFMBytes  uint64
	OFMRegion memtrace.Interval

	// Inputs are the feature-map dependencies, ordered by region address.
	Inputs []SegInput
}

// Cycles returns the segment execution time.
func (s *Segment) Cycles() uint64 { return s.EndCycle - s.StartCycle }

// IFMBytes returns the total extent of all feature-map inputs.
func (s *Segment) IFMBytes() uint64 {
	var t uint64
	for _, in := range s.Inputs {
		t += in.Bytes
	}
	return t
}

// Analysis is the result of segmenting a trace.
type Analysis struct {
	Segments []Segment
	// InputRegion is the DRAM region holding the (adversary-known) network
	// input.
	InputRegion memtrace.Interval
	ElemBytes   int
	// BlockBytes is the observed transaction granularity: region extents are
	// only known up to this rounding, which the solver accounts for.
	BlockBytes int
	// AddrSlack is the adjacency tolerance in bytes used when deciding
	// whether two producer regions are DRAM-contiguous (a concatenation
	// read). 0 demands exact adjacency; the tolerant path sets it so that
	// dropped boundary blocks cannot hide a concatenation.
	AddrSlack int
	// Tolerant records whether the noise-tolerant path produced this
	// analysis; Noise is populated only when it did.
	Tolerant bool
	Noise    NoiseStats
}

// NoiseStats summarizes the corruption the tolerant analysis measured and
// compensated for. SolveCtx derives its upward size slack from these.
type NoiseStats struct {
	// InterferenceRegions/Accesses count the low-density address clusters
	// (and the accesses within them) discarded as co-tenant traffic.
	InterferenceRegions  int
	InterferenceAccesses int
	// WriteHoleFrac is the fraction of the dominant output regions' extent
	// not covered by observed writes — the measured write-drop level.
	WriteHoleFrac float64
	// ROHoleFrac is the same measure over read-only (filter/input) regions.
	ROHoleFrac float64
	// DroppedDeps counts dependency edges discarded for carrying less than
	// MinDepFrac of a segment's input bytes.
	DroppedDeps int
}

// TolerantOptions tunes AnalyzeTolerant. The zero value of each field
// selects the documented default.
type TolerantOptions struct {
	// MinRegionDensity is the minimum covered-bytes/extent ratio an address
	// cluster needs to be treated as victim data; sparser clusters are
	// discarded as co-tenant interference. Default 0.35 — victim buffers
	// are streamed near-completely (density ≥ 0.9 even at 10% drop), while
	// interference scatters a few transactions over a wide region.
	MinRegionDensity float64
	// MinDepFrac discards dependency edges carrying less than this fraction
	// of a segment's total input bytes (residual interference reads that
	// alias an earlier interference write). Default 0.02.
	MinDepFrac float64
	// AddrSlack is the region-adjacency tolerance in bytes (see
	// Analysis.AddrSlack). Default 1024 — generous against boundary-block
	// drops yet far below the allocator's 4096-byte guard separation.
	AddrSlack int
	// RegionGap is the coalescing gap in bytes used when clustering written
	// and read-only address space, bridging holes left by dropped
	// transactions. Default 4095: one byte under the guard-page separation
	// of distinct victim regions, so real regions never merge.
	RegionGap uint64
	// FarFieldBytes groups address clusters into connected components
	// (consecutive gap within this bound) and keeps only the heaviest one:
	// the victim's buffers are guard-page-packed — never megabytes apart —
	// while co-tenant traffic lives in disjoint, distant regions. Default
	// 1 MiB.
	FarFieldBytes uint64
	// MinSegmentBytes folds segments that moved less than this much traffic
	// into a neighboring segment after the boundary scan. Reordering at a
	// layer boundary interleaves the two layers' filter streams, making
	// boundary rules fire twice and shedding a tiny spurious segment; real
	// layers stream at least their filter region. Default 2048 — half the
	// smallest victim layer's traffic, far above a reorder straggler's.
	MinSegmentBytes uint64
}

// DefaultTolerantOptions returns the tolerant-analysis thresholds used in
// the noise sweeps.
func DefaultTolerantOptions() TolerantOptions {
	return TolerantOptions{
		MinRegionDensity: 0.35,
		MinDepFrac:       0.02,
		AddrSlack:        1024,
		RegionGap:        4095,
		FarFieldBytes:    1 << 20,
		MinSegmentBytes:  2048,
	}
}

func (t TolerantOptions) withDefaults() TolerantOptions {
	def := DefaultTolerantOptions()
	if t.MinRegionDensity == 0 {
		t.MinRegionDensity = def.MinRegionDensity
	}
	if t.MinDepFrac == 0 {
		t.MinDepFrac = def.MinDepFrac
	}
	if t.AddrSlack == 0 {
		t.AddrSlack = def.AddrSlack
	}
	if t.RegionGap == 0 {
		t.RegionGap = def.RegionGap
	}
	if t.FarFieldBytes == 0 {
		t.FarFieldBytes = def.FarFieldBytes
	}
	if t.MinSegmentBytes == 0 {
		t.MinSegmentBytes = def.MinSegmentBytes
	}
	return t
}

// intervalOf converts an access to its byte interval.
func intervalOf(a memtrace.Access, blockBytes int) memtrace.Interval {
	return memtrace.Interval{Lo: a.Addr, Hi: a.End(blockBytes)}
}

// regionIndex finds the region in sorted (by Lo) regions containing addr,
// returning -1 if none.
func regionIndex(regions []memtrace.Interval, addr uint64) int {
	i := sort.Search(len(regions), func(i int) bool { return regions[i].Hi > addr })
	if i < len(regions) && regions[i].Contains(addr) {
		return i
	}
	return -1
}

// Analyze segments a trace into layers. inputBytes is the byte size of the
// network input (known to the adversary, who controls it); elemBytes is the
// element storage size (known from the data type).
func Analyze(tr *memtrace.Trace, inputBytes int, elemBytes int) (*Analysis, error) {
	return analyzeWith(tr, inputBytes, elemBytes, false, TolerantOptions{})
}

// AnalyzeTolerant is Analyze with the noise-tolerant path enabled: it
// discards low-density interference clusters, clusters regions with a gap
// that bridges dropped transactions, selects each segment's dominant output
// region, prunes negligible dependency edges, and records the measured
// corruption level in Analysis.Noise so the solver can widen its size
// constraints. On an uncorrupted trace it is equivalent to Analyze — the
// golden conformance tests pin byte-identical reports.
func AnalyzeTolerant(tr *memtrace.Trace, inputBytes int, elemBytes int, topt TolerantOptions) (*Analysis, error) {
	return analyzeWith(tr, inputBytes, elemBytes, true, topt.withDefaults())
}

// filterInterference discards accesses in address clusters that look like
// co-tenant traffic under either of two tests: coverage density below the
// threshold (victim buffers are streamed near-completely, while
// interference scatters a few transactions over a wide region), or a sparse
// burst isolated far from every substantial cluster (locally dense, but the
// victim's buffers are guard-page-packed, never megabytes apart).
func filterInterference(accs []memtrace.Access, bb int, topt TolerantOptions) ([]memtrace.Access, NoiseStats) {
	var st NoiseStats
	ivs := make([]memtrace.Interval, len(accs))
	for i, a := range accs {
		ivs[i] = intervalOf(a, bb)
	}
	clusters := memtrace.CoalesceIntervals(ivs, topt.RegionGap)
	covered := make([]uint64, len(clusters))
	for _, iv := range memtrace.CoalesceIntervals(ivs, 0) {
		// A zero-gap interval lies inside exactly one gap-coalesced cluster.
		if ci := regionIndex(clusters, iv.Lo); ci >= 0 {
			covered[ci] += iv.Bytes()
		}
	}
	drop := make([]bool, len(clusters))
	for i, c := range clusters {
		if c.Bytes() > 0 && float64(covered[i])/float64(c.Bytes()) < topt.MinRegionDensity {
			drop[i] = true
			st.InterferenceRegions++
		}
	}
	// Far-field pass: victim buffers are guard-page-packed — never megabytes
	// apart — while co-tenant traffic lives in disjoint, distant regions.
	// Group clusters into connected components (consecutive gap within
	// FarFieldBytes) and keep only the component carrying the most covered
	// bytes; everything else is interference, dense or not.
	if topt.FarFieldBytes > 0 && len(clusters) > 1 {
		compOf := make([]int, len(clusters))
		compWeight := []uint64{covered[0]}
		for i := 1; i < len(clusters); i++ {
			if clusters[i].Lo-clusters[i-1].Hi > topt.FarFieldBytes {
				compWeight = append(compWeight, 0)
			}
			compOf[i] = len(compWeight) - 1
			compWeight[compOf[i]] += covered[i]
		}
		best := 0
		for c, w := range compWeight {
			if w > compWeight[best] {
				best = c
			}
		}
		for i := range clusters {
			if compOf[i] != best && !drop[i] {
				drop[i] = true
				st.InterferenceRegions++
			}
		}
	}
	if st.InterferenceRegions == 0 {
		return accs, st
	}
	kept := make([]memtrace.Access, 0, len(accs))
	for i, a := range accs {
		if ci := regionIndex(clusters, ivs[i].Lo); ci >= 0 && drop[ci] {
			st.InterferenceAccesses++
			continue
		}
		kept = append(kept, a)
	}
	return kept, st
}

func analyzeWith(tr *memtrace.Trace, inputBytes int, elemBytes int, tolerant bool, topt TolerantOptions) (*Analysis, error) {
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("structrev: %w", err)
	}
	if len(tr.Accesses) == 0 {
		return nil, fmt.Errorf("structrev: empty trace")
	}
	bb := tr.BlockBytes

	accs := tr.Accesses
	var noise NoiseStats
	if tolerant {
		accs, noise = filterInterference(accs, bb, topt)
		if len(accs) == 0 {
			return nil, fmt.Errorf("structrev: every access cluster fell below the interference density threshold")
		}
	}

	// Pass 1: global write space and read-only (filter + input) regions.
	var writeIvs, readIvs []memtrace.Interval
	for _, a := range accs {
		if a.Kind == memtrace.Write {
			writeIvs = append(writeIvs, intervalOf(a, bb))
		} else {
			readIvs = append(readIvs, intervalOf(a, bb))
		}
	}
	// Feature-map regions: clusters of the written address space. The
	// allocator separates distinct data structures by guard pages, so a
	// zero-gap coalesce recovers them (a zero-copy concatenated output forms
	// one region, which is exactly how the adversary perceives it). The
	// tolerant path coalesces across RegionGap instead, bridging the holes
	// dropped write transactions leave inside a region.
	var fmapGap uint64
	if tolerant {
		fmapGap = topt.RegionGap
	}
	fmapRegions := memtrace.CoalesceIntervals(writeIvs, fmapGap)
	// A dropped write at the very edge of an output region shrinks the
	// write-derived region, orphaning the reads of that edge chunk; left
	// alone they would form a phantom read-only region and fire boundary
	// rule (b) on every pass over it. The tolerant path therefore counts
	// reads within edgeSlack of a feature-map region as feature-map reads.
	// Half the region gap can never reach a real read-only region: the
	// allocator separates distinct regions by at least RegionGap+1 bytes.
	var edgeSlack uint64
	if tolerant {
		edgeSlack = topt.RegionGap / 2
	}
	var roIvs []memtrace.Interval
	for _, iv := range readIvs {
		test := iv
		if tolerant {
			if test.Lo >= edgeSlack {
				test.Lo -= edgeSlack
			} else {
				test.Lo = 0
			}
			if test.Hi+edgeSlack >= test.Hi {
				test.Hi += edgeSlack
			} else {
				test.Hi = ^uint64(0)
			}
		}
		if !overlapsAny(fmapRegions, test) {
			roIvs = append(roIvs, iv)
		}
	}
	// A small gap tolerance bridges rows a strided convolution never samples
	// (e.g. AlexNet conv1 leaves the last input row unread); it stays well
	// under the allocator's page-granular separation of distinct regions.
	roGap := uint64(2048)
	if tolerant && topt.RegionGap > roGap {
		roGap = topt.RegionGap
	}
	roRegions := memtrace.CoalesceIntervals(roIvs, roGap)
	if tolerant {
		var roExtent, roCov uint64
		for _, r := range roRegions {
			roExtent += r.Bytes()
		}
		for _, iv := range memtrace.CoalesceIntervals(roIvs, 0) {
			roCov += iv.Bytes()
		}
		if roExtent > 0 {
			noise.ROHoleFrac = 1 - float64(roCov)/float64(roExtent)
		}
	}

	// The input region is the earliest-touched read-only region whose extent
	// matches the known input size. (A strided first layer may leave
	// trailing pixels unread, so the observed extent can fall slightly short
	// — or exceed the size by block rounding. Matching by size rather than
	// by first access keeps the identification dataflow-independent: a
	// weight-stationary accelerator streams filters before its first IFM
	// tile.)
	hasRead := false
	for _, a := range accs {
		if a.Kind == memtrace.Read {
			hasRead = true
			break
		}
	}
	if !hasRead {
		return nil, fmt.Errorf("structrev: trace has no reads")
	}
	inputIdx := -1
	bestDiff := 1 << 62
	for _, a := range accs {
		if a.Kind != memtrace.Read {
			continue
		}
		ro := regionIndex(roRegions, a.Addr)
		if ro < 0 {
			continue
		}
		got := int(roRegions[ro].Bytes())
		if got > inputBytes+bb || got < inputBytes*3/4 {
			continue
		}
		diff := inputBytes - got
		if diff < 0 {
			diff = -diff
		}
		// Closest size wins; earliest touch breaks ties (the input is always
		// consumed in the first layer).
		if diff < bestDiff {
			bestDiff = diff
			inputIdx = ro
		}
	}
	if inputIdx < 0 {
		return nil, fmt.Errorf("structrev: no read-only region matches the declared %d-byte input", inputBytes)
	}
	inputRegion := roRegions[inputIdx]

	// Pass 2: scan for boundaries. A new segment begins when
	//  (a) a read hits a *fresh* feature-map region — one written since it
	//      was last read. This is the paper's "first read access on a
	//      memory address that was previously written": a layer's OFM is
	//      fresh until its consumer starts, and the consumer's own
	//      progressive (banded, tiled) re-reads do not re-trigger.
	//  (b) a read streams a different filter region than the one the
	//      current segment has been using (two back-to-back layers can
	//      share an IFM, as in fire-module expand convolutions).
	type segAcc struct {
		start      uint64
		roIdx      int // filter region index, -1 if none yet
		firstIdx   int
		readsInput bool
		fmapReads  []memtrace.Interval
		writeSpans []memtrace.Interval
		// trailing counts the fmap reads issued after the segment's last
		// write; on a filter-region boundary they are re-attributed to the
		// new layer (they are its stale-IFM prefetch).
		trailing int
		// readRegions tracks the fmap regions this segment has read, so the
		// tolerant path can recognize a reordered producer write straggling
		// in after its consumer already started (layers never write a region
		// they read).
		readRegions map[int]bool
		// bytes is the total traffic attributed to this segment; the
		// tolerant path folds negligible segments into a neighbor.
		bytes uint64
	}
	var segs []*segAcc
	// writtenBy records which segment wrote each interval, in trace order.
	type writeRec struct {
		iv  memtrace.Interval
		seg int
	}
	var allWrites []writeRec
	fresh := make([]bool, len(fmapRegions))
	// inputConsumerRo is the filter region of the layer that consumes the
	// network input (layer 0); an input read from any other layer marks the
	// start of a new inference.
	inputConsumerRo := -1

	cur := &segAcc{start: accs[0].Cycle, roIdx: -1, firstIdx: 0}
	closeSeg := func(nextStart int, moveTrailing bool) {
		var carry []memtrace.Interval
		if moveTrailing && cur.trailing > 0 {
			n := len(cur.fmapReads) - cur.trailing
			carry = append(carry, cur.fmapReads[n:]...)
			cur.fmapReads = cur.fmapReads[:n]
		}
		segs = append(segs, cur)
		cur = &segAcc{start: accs[nextStart].Cycle, roIdx: -1, firstIdx: nextStart,
			fmapReads: carry, trailing: len(carry)}
	}
	for ai, a := range accs {
		iv := intervalOf(a, bb)
		if a.Kind == memtrace.Write {
			fr := regionIndex(fmapRegions, a.Addr)
			if tolerant && fr >= 0 && cur.readRegions[fr] && len(segs) > 0 {
				// A reordered producer write straggling in after its consumer
				// already started reading the region: attribute it to the
				// previous segment. Re-marking the region fresh here would
				// re-trigger boundary rule (a) and shatter the segmentation.
				prev := segs[len(segs)-1]
				prev.writeSpans = append(prev.writeSpans, iv)
				prev.bytes += iv.Bytes()
				allWrites = append(allWrites, writeRec{iv, len(segs) - 1})
				continue
			}
			if fr >= 0 {
				fresh[fr] = true
			}
			cur.writeSpans = append(cur.writeSpans, iv)
			cur.bytes += iv.Bytes()
			cur.trailing = 0
			allWrites = append(allWrites, writeRec{iv, len(segs)})
			continue
		}
		// Read: boundary checks. Rule (a) fires only once the current
		// segment has produced output: a weight-stationary layer streams
		// filters before its first IFM tile, and an element-wise layer
		// gathers several fresh operands — neither marks a new layer.
		boundary := false
		fr := regionIndex(fmapRegions, a.Addr)
		if fr < 0 && tolerant {
			fr = regionIndexNear(fmapRegions, a.Addr, edgeSlack)
		}
		if fr >= 0 && fresh[fr] {
			if len(cur.writeSpans) > 0 {
				boundary = true
			}
			fresh[fr] = false
		}
		ro := -1
		if fr < 0 {
			ro = regionIndex(roRegions, a.Addr)
			switch {
			case ro >= 0 && ro != inputIdx:
				switch {
				case cur.roIdx >= 0 && cur.roIdx != ro:
					// Rule (b): a different filter region is streaming.
					boundary = true
				case cur.roIdx < 0 && len(cur.writeSpans) > 0:
					// Rule (b'): the current segment has no filter region yet
					// it already wrote its output (an element-wise layer, or
					// a weight-stationary layer whose single filter read
					// opens the next layer) — a filter read must belong to a
					// new layer. Layers never write before reading filters.
					boundary = true
				}
			case ro == inputIdx:
				// Rule (c): the network input is consumed only by the first
				// layer — an input read from a segment that is not the
				// input-consuming layer (and has produced output) starts a
				// new inference.
				if len(cur.writeSpans) > 0 && cur.roIdx != inputConsumerRo {
					boundary = true
				}
			}
		}
		if boundary && ai > cur.firstIdx {
			// A filter-region boundary (rules b/b'/c) hands the trailing
			// post-write fmap reads to the new layer.
			closeSeg(ai, ro >= 0)
		}
		cur.bytes += iv.Bytes()
		if ro >= 0 && ro != inputIdx {
			if cur.roIdx < 0 {
				cur.roIdx = ro
				if cur.readsInput {
					inputConsumerRo = ro
				}
			}
		} else if fr >= 0 || ro == inputIdx {
			cur.fmapReads = append(cur.fmapReads, iv)
			cur.trailing++
			if tolerant && fr >= 0 {
				if cur.readRegions == nil {
					cur.readRegions = make(map[int]bool)
				}
				cur.readRegions[fr] = true
			}
			if ro == inputIdx {
				cur.readsInput = true
				if cur.roIdx >= 0 {
					inputConsumerRo = cur.roIdx
				}
			}
		}
	}
	segs = append(segs, cur)

	if tolerant && topt.MinSegmentBytes > 0 && len(segs) > 1 {
		// Fold negligible segments into a neighbor. Reordering at a layer
		// boundary interleaves the two layers' filter streams, so rules
		// (a)/(b) fire more than once and shed a tiny spurious segment
		// carrying a straggler's worth of traffic; a real layer streams at
		// least its whole filter region. Prefer the neighbor reading the
		// same filter region (the straggler's origin).
		var kept []*segAcc
		remap := make([]int, len(segs))
		// A segment is spurious if it moved negligible traffic, or if it is a
		// weighted segment that wrote nothing and streams the same filter
		// region as a neighbor: every real layer produces output, and adjacent
		// layers never share a filter region — such a husk is the remainder of
		// a reorder-split segment whose reads were carried forward and whose
		// writes were reattributed backward.
		spurious := func(i int, sa *segAcc) bool {
			if sa.bytes < topt.MinSegmentBytes {
				return true
			}
			if sa.roIdx >= 0 && len(sa.writeSpans) == 0 {
				if len(kept) > 0 && kept[len(kept)-1].roIdx == sa.roIdx {
					return true
				}
				if i+1 < len(segs) && segs[i+1].roIdx == sa.roIdx {
					return true
				}
			}
			return false
		}
		mergeInto := func(dst, src *segAcc, forward bool) {
			if forward {
				dst.start = src.start
				dst.firstIdx = src.firstIdx
				dst.fmapReads = append(append([]memtrace.Interval(nil), src.fmapReads...), dst.fmapReads...)
				dst.writeSpans = append(append([]memtrace.Interval(nil), src.writeSpans...), dst.writeSpans...)
			} else {
				dst.fmapReads = append(dst.fmapReads, src.fmapReads...)
				dst.writeSpans = append(dst.writeSpans, src.writeSpans...)
			}
			if dst.roIdx < 0 {
				dst.roIdx = src.roIdx
			}
			dst.readsInput = dst.readsInput || src.readsInput
			dst.bytes += src.bytes
		}
		for i, sa := range segs {
			if !spurious(i, sa) {
				remap[i] = len(kept)
				kept = append(kept, sa)
				continue
			}
			prevOK := len(kept) > 0
			nextOK := i+1 < len(segs)
			switch {
			case prevOK && (kept[len(kept)-1].roIdx == sa.roIdx || !nextOK ||
				segs[i+1].roIdx != sa.roIdx):
				mergeInto(kept[len(kept)-1], sa, false)
				remap[i] = len(kept) - 1
			case nextOK:
				mergeInto(segs[i+1], sa, true)
				remap[i] = -1 // resolves to the successor's kept index
			default:
				// Every segment is negligible; keep it rather than lose it.
				remap[i] = len(kept)
				kept = append(kept, sa)
			}
		}
		if len(kept) > 0 && len(kept) < len(segs) {
			for i := len(segs) - 2; i >= 0; i-- {
				if remap[i] < 0 {
					remap[i] = remap[i+1]
				}
			}
			for wi := range allWrites {
				allWrites[wi].seg = remap[allWrites[wi].seg]
			}
			segs = kept
		}
	}

	// Assemble Segment records.
	res := &Analysis{InputRegion: inputRegion, ElemBytes: elemBytes, BlockBytes: bb, Tolerant: tolerant}
	if tolerant {
		res.AddrSlack = topt.AddrSlack
	}
	lastCycle := accs[0].Cycle
	for _, a := range accs {
		if a.Cycle > lastCycle {
			lastCycle = a.Cycle
		}
	}
	var ofmExtent, ofmCovered uint64
	for si, sa := range segs {
		seg := Segment{Index: si, StartCycle: sa.start}
		if si+1 < len(segs) {
			seg.EndCycle = segs[si+1].start
		} else {
			seg.EndCycle = lastCycle + 1
		}
		if seg.EndCycle < seg.StartCycle {
			// A hostile trace with non-monotonic cycles must not underflow
			// the segment duration.
			seg.EndCycle = seg.StartCycle
		}
		if sa.roIdx >= 0 {
			seg.Kind = SegWeighted
			seg.WeightsRegion = roRegions[sa.roIdx]
			seg.WeightsBytes = seg.WeightsRegion.Bytes()
		} else {
			seg.Kind = SegEltwise
		}
		if w := memtrace.CoalesceIntervals(sa.writeSpans, fmapGap); len(w) > 0 {
			if tolerant {
				// Take the dominant written cluster as the OFM: residual
				// interference writes form small satellite clusters that must
				// not stretch the region, and the gap-coalesced extent bridges
				// dropped-write holes (on a clean contiguous trace it equals
				// the strict byte sum). Clusters overlapping the segment's own
				// feature-map reads are skipped — a layer never writes its
				// input, so such a cluster is a reordered producer write that
				// straggled in before this segment first read the region.
				readCover := memtrace.CoalesceIntervals(sa.fmapReads, topt.RegionGap)
				best := -1
				for i := range w {
					if overlapsAny(readCover, w[i]) {
						continue
					}
					if best < 0 || w[i].Bytes() > w[best].Bytes() {
						best = i
					}
				}
				if best < 0 {
					// Every cluster overlaps the reads (an in-place layer the
					// model does not cover); fall back to the plain dominant.
					for i := range w {
						if best < 0 || w[i].Bytes() > w[best].Bytes() {
							best = i
						}
					}
				}
				seg.OFMRegion = w[best]
				seg.OFMBytes = w[best].Bytes()
				for _, iv := range memtrace.CoalesceIntervals(sa.writeSpans, 0) {
					if iv.Lo >= w[best].Lo && iv.Hi <= w[best].Hi {
						ofmCovered += iv.Bytes()
					}
				}
				ofmExtent += seg.OFMBytes
			} else {
				// The OFM is the single contiguous range this segment wrote
				// (write-once). Multiple ranges would indicate an unmodelled
				// layer type; take the full span.
				seg.OFMRegion = memtrace.Interval{Lo: w[0].Lo, Hi: w[len(w)-1].Hi}
				for _, iv := range w {
					seg.OFMBytes += iv.Bytes()
				}
			}
		}
		res.Segments = append(res.Segments, seg)
	}
	if tolerant && ofmExtent > 0 {
		noise.WriteHoleFrac = 1 - float64(ofmCovered)/float64(ofmExtent)
	}
	res.Noise = noise

	// Dependencies: attribute each segment's feature-map reads to their
	// most recent earlier writers (a region may be rewritten across repeated
	// inferences; only the freshest data is the layer's input).
	firstWriteOfSeg := make([]int, len(segs)+1)
	for i := range firstWriteOfSeg {
		firstWriteOfSeg[i] = len(allWrites)
	}
	for wi := len(allWrites) - 1; wi >= 0; wi-- {
		firstWriteOfSeg[allWrites[wi].seg] = wi
	}
	for si, sa := range segs {
		fmr := memtrace.CoalesceIntervals(sa.fmapReads, 0)
		depBytes := map[int]uint64{}
		for _, iv := range fmr {
			if inputRegion.Overlaps(iv) {
				// Regions are guard-separated; a read never spans the input
				// region and a feature map.
				depBytes[-1] += clip(iv, inputRegion).Bytes()
				continue
			}
			remaining := []memtrace.Interval{iv}
			for wi := firstWriteOfSeg[si] - 1; wi >= 0 && len(remaining) > 0; wi-- {
				wr := allWrites[wi]
				var removed uint64
				remaining, removed = memtrace.SubtractOverlap(remaining, wr.iv)
				if removed > 0 {
					depBytes[wr.seg] += removed
				}
			}
		}
		if tolerant && len(depBytes) > 1 {
			// Prune negligible edges: residual interference reads that alias
			// an earlier interference write masquerade as tiny dependencies
			// and would wreck inputDims.
			var tot uint64
			for _, b := range depBytes {
				tot += b
			}
			for p, b := range depBytes {
				if float64(b) < topt.MinDepFrac*float64(tot) {
					delete(depBytes, p)
					res.Noise.DroppedDeps++
				}
			}
		}
		regionLo := func(p int) uint64 {
			if p < 0 {
				return inputRegion.Lo
			}
			return res.Segments[p].OFMRegion.Lo
		}
		var inputs []SegInput
		for p, b := range depBytes {
			inputs = append(inputs, SegInput{Producer: p, Bytes: b})
		}
		sort.Slice(inputs, func(i, j int) bool {
			return regionLo(inputs[i].Producer) < regionLo(inputs[j].Producer)
		})
		// Mark concatenation adjacency.
		for k := 1; k < len(inputs); k++ {
			prev, this := inputs[k-1].Producer, inputs[k].Producer
			if prev >= 0 && this >= 0 {
				a := res.Segments[prev].OFMRegion
				b := res.Segments[this].OFMRegion
				if adjacentAddrs(a.Hi, b.Lo, res.AddrSlack) {
					inputs[k].Adjacent = true
				}
			}
		}
		res.Segments[si].Inputs = inputs
	}
	return res, nil
}

// regionIndexNear is regionIndex with an edge tolerance: it also matches an
// address within slack bytes of a region's boundary (see edgeSlack in
// analyzeWith).
func regionIndexNear(regions []memtrace.Interval, addr uint64, slack uint64) int {
	i := sort.Search(len(regions), func(i int) bool { return regions[i].Hi > addr })
	if i < len(regions) {
		if regions[i].Contains(addr) {
			return i
		}
		if regions[i].Lo >= addr && regions[i].Lo-addr <= slack {
			return i
		}
	}
	if i > 0 && addr-regions[i-1].Hi <= slack {
		return i - 1
	}
	return -1
}

// adjacentAddrs reports whether two region endpoints are contiguous within
// the given byte tolerance (0 demands exact adjacency).
func adjacentAddrs(hi, lo uint64, slack int) bool {
	if hi == lo {
		return true
	}
	if slack <= 0 {
		return false
	}
	d := hi - lo
	if lo > hi {
		d = lo - hi
	}
	return d <= uint64(slack)
}

// clip returns the intersection of two overlapping intervals.
func clip(a, b memtrace.Interval) memtrace.Interval {
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	if hi < lo {
		hi = lo
	}
	return memtrace.Interval{Lo: lo, Hi: hi}
}

// overlapsAny reports whether iv overlaps any interval in the sorted,
// disjoint set.
func overlapsAny(sorted []memtrace.Interval, iv memtrace.Interval) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Hi > iv.Lo })
	return i < len(sorted) && sorted[i].Lo < iv.Hi
}

// Inferences splits a multi-inference analysis (a trace of a continuously
// serving accelerator) into per-inference analyses: a new inference begins
// at a weighted segment consuming the network-input region. Producer
// indices are renumbered within each slice; dependencies never cross an
// inference boundary because reads attribute to their most recent writers.
func (a *Analysis) Inferences() []*Analysis {
	var starts []int
	for i := range a.Segments {
		for _, in := range a.Segments[i].Inputs {
			if in.Producer == -1 {
				starts = append(starts, i)
				break
			}
		}
	}
	if len(starts) == 0 {
		return []*Analysis{a}
	}
	var out []*Analysis
	for k, lo := range starts {
		hi := len(a.Segments)
		if k+1 < len(starts) {
			hi = starts[k+1]
		}
		sub := &Analysis{
			InputRegion: a.InputRegion,
			ElemBytes:   a.ElemBytes,
			BlockBytes:  a.BlockBytes,
		}
		for i := lo; i < hi; i++ {
			seg := a.Segments[i]
			seg.Index = i - lo
			ins := make([]SegInput, len(seg.Inputs))
			for j, in := range seg.Inputs {
				ins[j] = in
				if in.Producer >= 0 {
					ins[j].Producer = in.Producer - lo
				}
			}
			seg.Inputs = ins
			sub.Segments = append(sub.Segments, seg)
		}
		out = append(out, sub)
	}
	return out
}

// WriteReport renders a human-readable summary of the recovered layer
// graph: per segment, its kind, filter and output sizes, timing, and data
// dependencies (with concatenation adjacency marked).
func (a *Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "recovered %d segments (input region %d bytes, %d-byte elements, %d-byte bus)\n",
		len(a.Segments), a.InputRegion.Bytes(), a.ElemBytes, a.BlockBytes)
	for _, seg := range a.Segments {
		fmt.Fprintf(w, "  seg %2d  %-8s  filters %8d B  output %8d B  %9d cycles  <- ",
			seg.Index, seg.Kind, seg.WeightsBytes, seg.OFMBytes, seg.Cycles())
		if len(seg.Inputs) == 0 {
			fmt.Fprint(w, "(none)")
		}
		for i, in := range seg.Inputs {
			if i > 0 {
				if in.Adjacent {
					fmt.Fprint(w, " ++ ") // depth concatenation
				} else {
					fmt.Fprint(w, ", ")
				}
			}
			if in.Producer < 0 {
				fmt.Fprint(w, "input")
			} else {
				fmt.Fprintf(w, "seg %d", in.Producer)
			}
		}
		fmt.Fprintln(w)
	}
}
