// Package structrev implements the paper's first attack (§3): reverse
// engineering a CNN's structure from its off-chip memory access trace.
//
// The attack proceeds in two stages. Analyze segments the trace into layers
// using read-after-write dependencies on feature maps (Algorithm 1 steps
// 1-2), recovering per-layer SIZE_IFM/SIZE_OFM/SIZE_FLTR, the inter-layer
// dataflow graph (including concatenation and bypass connections) and
// per-layer execution times. Solve then enumerates every layer
// parameterization consistent with the integer constraint system of
// Equations (1)-(8), filters candidates whose MAC count contradicts the
// measured execution-time ratios, and chains per-layer candidates into
// complete network structures (Algorithm 1 steps 3-5).
package structrev

import (
	"fmt"
	"io"
	"sort"

	"cnnrev/internal/memtrace"
)

// SegmentKind classifies a trace segment by its observable behaviour.
type SegmentKind int

const (
	// SegWeighted is a layer that streams a read-only (filter) region:
	// a convolutional or fully-connected layer.
	SegWeighted SegmentKind = iota
	// SegEltwise is a layer that reads feature maps only and writes an
	// output of the same size (a bypass element-wise addition).
	SegEltwise
)

// String names the segment kind.
func (k SegmentKind) String() string {
	if k == SegWeighted {
		return "weighted"
	}
	return "eltwise"
}

// SegInput is one observed data dependency of a segment.
type SegInput struct {
	// Producer is the segment index that wrote the data, or -1 for the
	// network input region.
	Producer int
	// Bytes is the extent of the producer data read.
	Bytes uint64
	// Adjacent reports whether this producer's output region is contiguous
	// in DRAM with the previous producer in the list — the signature of a
	// depth concatenation read.
	Adjacent bool
}

// Segment is one layer execution recovered from the trace.
type Segment struct {
	Index      int
	Kind       SegmentKind
	StartCycle uint64
	EndCycle   uint64 // start of the next segment (or end of trace)

	// WeightsBytes is the extent of the read-only region streamed by this
	// segment (0 for eltwise segments).
	WeightsBytes  uint64
	WeightsRegion memtrace.Interval

	// OFMBytes is the extent of the address range written by this segment.
	OFMBytes  uint64
	OFMRegion memtrace.Interval

	// Inputs are the feature-map dependencies, ordered by region address.
	Inputs []SegInput
}

// Cycles returns the segment execution time.
func (s *Segment) Cycles() uint64 { return s.EndCycle - s.StartCycle }

// IFMBytes returns the total extent of all feature-map inputs.
func (s *Segment) IFMBytes() uint64 {
	var t uint64
	for _, in := range s.Inputs {
		t += in.Bytes
	}
	return t
}

// Analysis is the result of segmenting a trace.
type Analysis struct {
	Segments []Segment
	// InputRegion is the DRAM region holding the (adversary-known) network
	// input.
	InputRegion memtrace.Interval
	ElemBytes   int
	// BlockBytes is the observed transaction granularity: region extents are
	// only known up to this rounding, which the solver accounts for.
	BlockBytes int
}

// intervalOf converts an access to its byte interval.
func intervalOf(a memtrace.Access, blockBytes int) memtrace.Interval {
	return memtrace.Interval{Lo: a.Addr, Hi: a.End(blockBytes)}
}

// regionIndex finds the region in sorted (by Lo) regions containing addr,
// returning -1 if none.
func regionIndex(regions []memtrace.Interval, addr uint64) int {
	i := sort.Search(len(regions), func(i int) bool { return regions[i].Hi > addr })
	if i < len(regions) && regions[i].Contains(addr) {
		return i
	}
	return -1
}

// Analyze segments a trace into layers. inputBytes is the byte size of the
// network input (known to the adversary, who controls it); elemBytes is the
// element storage size (known from the data type).
func Analyze(tr *memtrace.Trace, inputBytes int, elemBytes int) (*Analysis, error) {
	if len(tr.Accesses) == 0 {
		return nil, fmt.Errorf("structrev: empty trace")
	}
	bb := tr.BlockBytes

	// Pass 1: global write space and read-only (filter + input) regions.
	var writeIvs, readIvs []memtrace.Interval
	for _, a := range tr.Accesses {
		if a.Kind == memtrace.Write {
			writeIvs = append(writeIvs, intervalOf(a, bb))
		} else {
			readIvs = append(readIvs, intervalOf(a, bb))
		}
	}
	writeSpace := memtrace.CoalesceIntervals(writeIvs, 0)
	var roIvs []memtrace.Interval
	for _, iv := range readIvs {
		if !overlapsAny(writeSpace, iv) {
			roIvs = append(roIvs, iv)
		}
	}
	// A small gap tolerance bridges rows a strided convolution never samples
	// (e.g. AlexNet conv1 leaves the last input row unread); it stays well
	// under the allocator's page-granular separation of distinct regions.
	roRegions := memtrace.CoalesceIntervals(roIvs, 2048)

	// The input region is the earliest-touched read-only region whose extent
	// matches the known input size. (A strided first layer may leave
	// trailing pixels unread, so the observed extent can fall slightly short
	// — or exceed the size by block rounding. Matching by size rather than
	// by first access keeps the identification dataflow-independent: a
	// weight-stationary accelerator streams filters before its first IFM
	// tile.)
	hasRead := false
	for _, a := range tr.Accesses {
		if a.Kind == memtrace.Read {
			hasRead = true
			break
		}
	}
	if !hasRead {
		return nil, fmt.Errorf("structrev: trace has no reads")
	}
	inputIdx := -1
	bestDiff := 1 << 62
	for _, a := range tr.Accesses {
		if a.Kind != memtrace.Read {
			continue
		}
		ro := regionIndex(roRegions, a.Addr)
		if ro < 0 {
			continue
		}
		got := int(roRegions[ro].Bytes())
		if got > inputBytes+bb || got < inputBytes*3/4 {
			continue
		}
		diff := inputBytes - got
		if diff < 0 {
			diff = -diff
		}
		// Closest size wins; earliest touch breaks ties (the input is always
		// consumed in the first layer).
		if diff < bestDiff {
			bestDiff = diff
			inputIdx = ro
		}
	}
	if inputIdx < 0 {
		return nil, fmt.Errorf("structrev: no read-only region matches the declared %d-byte input", inputBytes)
	}
	inputRegion := roRegions[inputIdx]

	// Feature-map regions: clusters of the written address space. The
	// allocator separates distinct data structures by guard pages, so a
	// zero-gap coalesce recovers them (a zero-copy concatenated output forms
	// one region, which is exactly how the adversary perceives it).
	fmapRegions := memtrace.CoalesceIntervals(writeIvs, 0)

	// Pass 2: scan for boundaries. A new segment begins when
	//  (a) a read hits a *fresh* feature-map region — one written since it
	//      was last read. This is the paper's "first read access on a
	//      memory address that was previously written": a layer's OFM is
	//      fresh until its consumer starts, and the consumer's own
	//      progressive (banded, tiled) re-reads do not re-trigger.
	//  (b) a read streams a different filter region than the one the
	//      current segment has been using (two back-to-back layers can
	//      share an IFM, as in fire-module expand convolutions).
	type segAcc struct {
		start      uint64
		roIdx      int // filter region index, -1 if none yet
		firstIdx   int
		readsInput bool
		fmapReads  []memtrace.Interval
		writeSpans []memtrace.Interval
		// trailing counts the fmap reads issued after the segment's last
		// write; on a filter-region boundary they are re-attributed to the
		// new layer (they are its stale-IFM prefetch).
		trailing int
	}
	var segs []*segAcc
	// writtenBy records which segment wrote each interval, in trace order.
	type writeRec struct {
		iv  memtrace.Interval
		seg int
	}
	var allWrites []writeRec
	fresh := make([]bool, len(fmapRegions))
	// inputConsumerRo is the filter region of the layer that consumes the
	// network input (layer 0); an input read from any other layer marks the
	// start of a new inference.
	inputConsumerRo := -1

	cur := &segAcc{start: tr.Accesses[0].Cycle, roIdx: -1, firstIdx: 0}
	closeSeg := func(nextStart int, moveTrailing bool) {
		var carry []memtrace.Interval
		if moveTrailing && cur.trailing > 0 {
			n := len(cur.fmapReads) - cur.trailing
			carry = append(carry, cur.fmapReads[n:]...)
			cur.fmapReads = cur.fmapReads[:n]
		}
		segs = append(segs, cur)
		cur = &segAcc{start: tr.Accesses[nextStart].Cycle, roIdx: -1, firstIdx: nextStart,
			fmapReads: carry, trailing: len(carry)}
	}
	for ai, a := range tr.Accesses {
		iv := intervalOf(a, bb)
		if a.Kind == memtrace.Write {
			if fr := regionIndex(fmapRegions, a.Addr); fr >= 0 {
				fresh[fr] = true
			}
			cur.writeSpans = append(cur.writeSpans, iv)
			cur.trailing = 0
			allWrites = append(allWrites, writeRec{iv, len(segs)})
			continue
		}
		// Read: boundary checks. Rule (a) fires only once the current
		// segment has produced output: a weight-stationary layer streams
		// filters before its first IFM tile, and an element-wise layer
		// gathers several fresh operands — neither marks a new layer.
		boundary := false
		fr := regionIndex(fmapRegions, a.Addr)
		if fr >= 0 && fresh[fr] {
			if len(cur.writeSpans) > 0 {
				boundary = true
			}
			fresh[fr] = false
		}
		ro := -1
		if fr < 0 {
			ro = regionIndex(roRegions, a.Addr)
			switch {
			case ro >= 0 && ro != inputIdx:
				switch {
				case cur.roIdx >= 0 && cur.roIdx != ro:
					// Rule (b): a different filter region is streaming.
					boundary = true
				case cur.roIdx < 0 && len(cur.writeSpans) > 0:
					// Rule (b'): the current segment has no filter region yet
					// it already wrote its output (an element-wise layer, or
					// a weight-stationary layer whose single filter read
					// opens the next layer) — a filter read must belong to a
					// new layer. Layers never write before reading filters.
					boundary = true
				}
			case ro == inputIdx:
				// Rule (c): the network input is consumed only by the first
				// layer — an input read from a segment that is not the
				// input-consuming layer (and has produced output) starts a
				// new inference.
				if len(cur.writeSpans) > 0 && cur.roIdx != inputConsumerRo {
					boundary = true
				}
			}
		}
		if boundary && ai > cur.firstIdx {
			// A filter-region boundary (rules b/b'/c) hands the trailing
			// post-write fmap reads to the new layer.
			closeSeg(ai, ro >= 0)
		}
		if ro >= 0 && ro != inputIdx {
			if cur.roIdx < 0 {
				cur.roIdx = ro
				if cur.readsInput {
					inputConsumerRo = ro
				}
			}
		} else if fr >= 0 || ro == inputIdx {
			cur.fmapReads = append(cur.fmapReads, iv)
			cur.trailing++
			if ro == inputIdx {
				cur.readsInput = true
				if cur.roIdx >= 0 {
					inputConsumerRo = cur.roIdx
				}
			}
		}
	}
	segs = append(segs, cur)

	// Assemble Segment records.
	res := &Analysis{InputRegion: inputRegion, ElemBytes: elemBytes, BlockBytes: bb}
	for si, sa := range segs {
		seg := Segment{Index: si, StartCycle: sa.start}
		if si+1 < len(segs) {
			seg.EndCycle = segs[si+1].start
		} else {
			seg.EndCycle = tr.LastCycle() + 1
		}
		if sa.roIdx >= 0 {
			seg.Kind = SegWeighted
			seg.WeightsRegion = roRegions[sa.roIdx]
			seg.WeightsBytes = seg.WeightsRegion.Bytes()
		} else {
			seg.Kind = SegEltwise
		}
		if w := memtrace.CoalesceIntervals(sa.writeSpans, 0); len(w) > 0 {
			// The OFM is the single contiguous range this segment wrote
			// (write-once). Multiple ranges would indicate an unmodelled
			// layer type; take the full span.
			seg.OFMRegion = memtrace.Interval{Lo: w[0].Lo, Hi: w[len(w)-1].Hi}
			for _, iv := range w {
				seg.OFMBytes += iv.Bytes()
			}
		}
		res.Segments = append(res.Segments, seg)
	}

	// Dependencies: attribute each segment's feature-map reads to their
	// most recent earlier writers (a region may be rewritten across repeated
	// inferences; only the freshest data is the layer's input).
	firstWriteOfSeg := make([]int, len(segs)+1)
	for i := range firstWriteOfSeg {
		firstWriteOfSeg[i] = len(allWrites)
	}
	for wi := len(allWrites) - 1; wi >= 0; wi-- {
		firstWriteOfSeg[allWrites[wi].seg] = wi
	}
	for si, sa := range segs {
		fmr := memtrace.CoalesceIntervals(sa.fmapReads, 0)
		depBytes := map[int]uint64{}
		for _, iv := range fmr {
			if inputRegion.Overlaps(iv) {
				// Regions are guard-separated; a read never spans the input
				// region and a feature map.
				depBytes[-1] += clip(iv, inputRegion).Bytes()
				continue
			}
			remaining := []memtrace.Interval{iv}
			for wi := firstWriteOfSeg[si] - 1; wi >= 0 && len(remaining) > 0; wi-- {
				wr := allWrites[wi]
				var removed uint64
				remaining, removed = memtrace.SubtractOverlap(remaining, wr.iv)
				if removed > 0 {
					depBytes[wr.seg] += removed
				}
			}
		}
		regionLo := func(p int) uint64 {
			if p < 0 {
				return inputRegion.Lo
			}
			return res.Segments[p].OFMRegion.Lo
		}
		var inputs []SegInput
		for p, b := range depBytes {
			inputs = append(inputs, SegInput{Producer: p, Bytes: b})
		}
		sort.Slice(inputs, func(i, j int) bool {
			return regionLo(inputs[i].Producer) < regionLo(inputs[j].Producer)
		})
		// Mark concatenation adjacency.
		for k := 1; k < len(inputs); k++ {
			prev, this := inputs[k-1].Producer, inputs[k].Producer
			if prev >= 0 && this >= 0 {
				a := res.Segments[prev].OFMRegion
				b := res.Segments[this].OFMRegion
				if a.Hi == b.Lo {
					inputs[k].Adjacent = true
				}
			}
		}
		res.Segments[si].Inputs = inputs
	}
	return res, nil
}

// clip returns the intersection of two overlapping intervals.
func clip(a, b memtrace.Interval) memtrace.Interval {
	lo, hi := a.Lo, a.Hi
	if b.Lo > lo {
		lo = b.Lo
	}
	if b.Hi < hi {
		hi = b.Hi
	}
	if hi < lo {
		hi = lo
	}
	return memtrace.Interval{Lo: lo, Hi: hi}
}

// overlapsAny reports whether iv overlaps any interval in the sorted,
// disjoint set.
func overlapsAny(sorted []memtrace.Interval, iv memtrace.Interval) bool {
	i := sort.Search(len(sorted), func(i int) bool { return sorted[i].Hi > iv.Lo })
	return i < len(sorted) && sorted[i].Lo < iv.Hi
}

// Inferences splits a multi-inference analysis (a trace of a continuously
// serving accelerator) into per-inference analyses: a new inference begins
// at a weighted segment consuming the network-input region. Producer
// indices are renumbered within each slice; dependencies never cross an
// inference boundary because reads attribute to their most recent writers.
func (a *Analysis) Inferences() []*Analysis {
	var starts []int
	for i := range a.Segments {
		for _, in := range a.Segments[i].Inputs {
			if in.Producer == -1 {
				starts = append(starts, i)
				break
			}
		}
	}
	if len(starts) == 0 {
		return []*Analysis{a}
	}
	var out []*Analysis
	for k, lo := range starts {
		hi := len(a.Segments)
		if k+1 < len(starts) {
			hi = starts[k+1]
		}
		sub := &Analysis{
			InputRegion: a.InputRegion,
			ElemBytes:   a.ElemBytes,
			BlockBytes:  a.BlockBytes,
		}
		for i := lo; i < hi; i++ {
			seg := a.Segments[i]
			seg.Index = i - lo
			ins := make([]SegInput, len(seg.Inputs))
			for j, in := range seg.Inputs {
				ins[j] = in
				if in.Producer >= 0 {
					ins[j].Producer = in.Producer - lo
				}
			}
			seg.Inputs = ins
			sub.Segments = append(sub.Segments, seg)
		}
		out = append(out, sub)
	}
	return out
}

// WriteReport renders a human-readable summary of the recovered layer
// graph: per segment, its kind, filter and output sizes, timing, and data
// dependencies (with concatenation adjacency marked).
func (a *Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "recovered %d segments (input region %d bytes, %d-byte elements, %d-byte bus)\n",
		len(a.Segments), a.InputRegion.Bytes(), a.ElemBytes, a.BlockBytes)
	for _, seg := range a.Segments {
		fmt.Fprintf(w, "  seg %2d  %-8s  filters %8d B  output %8d B  %9d cycles  <- ",
			seg.Index, seg.Kind, seg.WeightsBytes, seg.OFMBytes, seg.Cycles())
		if len(seg.Inputs) == 0 {
			fmt.Fprint(w, "(none)")
		}
		for i, in := range seg.Inputs {
			if i > 0 {
				if in.Adjacent {
					fmt.Fprint(w, " ++ ") // depth concatenation
				} else {
					fmt.Fprint(w, ", ")
				}
			}
			if in.Producer < 0 {
				fmt.Fprint(w, "input")
			} else {
				fmt.Fprintf(w, "seg %d", in.Producer)
			}
		}
		fmt.Fprintln(w)
	}
}
