package dataset

import (
	"math"
	"testing"
)

func TestSyntheticShapeAndLabels(t *testing.T) {
	ds := Synthetic(4, 10, 3, 16, 16, 1)
	if ds.Len() != 40 {
		t.Fatalf("Len = %d, want 40", ds.Len())
	}
	counts := make([]int, 4)
	for i, x := range ds.X {
		if len(x) != 3*16*16 {
			t.Fatalf("sample %d has %d elements", i, len(x))
		}
		if ds.Y[i] < 0 || ds.Y[i] >= 4 {
			t.Fatalf("label %d out of range", ds.Y[i])
		}
		counts[ds.Y[i]]++
	}
	for k, c := range counts {
		if c != 10 {
			t.Fatalf("class %d has %d samples, want 10", k, c)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(2, 5, 1, 8, 8, 7)
	b := Synthetic(2, 5, 1, 8, 8, 7)
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
	c := Synthetic(2, 5, 1, 8, 8, 8)
	same := true
	for i := range a.X {
		for j := range a.X[i] {
			if a.X[i][j] != c.X[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds must give different data")
	}
}

// TestSyntheticClassesSeparable: class means must differ enough that the
// task is learnable (the candidate-ranking experiments rely on this).
func TestSyntheticClassesSeparable(t *testing.T) {
	ds := Synthetic(3, 30, 1, 16, 16, 3)
	dim := 16 * 16
	means := make([][]float64, 3)
	for k := range means {
		means[k] = make([]float64, dim)
	}
	counts := make([]int, 3)
	for i, x := range ds.X {
		k := ds.Y[i]
		counts[k]++
		for j, v := range x {
			means[k][j] += float64(v)
		}
	}
	for k := range means {
		for j := range means[k] {
			means[k][j] /= float64(counts[k])
		}
	}
	for a := 0; a < 3; a++ {
		for b := a + 1; b < 3; b++ {
			var d float64
			for j := range means[a] {
				diff := means[a][j] - means[b][j]
				d += diff * diff
			}
			if math.Sqrt(d) < 0.5 {
				t.Fatalf("classes %d and %d nearly identical (dist %.3f)", a, b, math.Sqrt(d))
			}
		}
	}
}

func TestSplit(t *testing.T) {
	ds := Synthetic(2, 10, 1, 8, 8, 5)
	train, test := ds.Split(15)
	if train.Len() != 15 || test.Len() != 5 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	// Over-length split clamps.
	tr2, te2 := ds.Split(100)
	if tr2.Len() != 20 || te2.Len() != 0 {
		t.Fatalf("clamped split sizes %d/%d", tr2.Len(), te2.Len())
	}
}

func TestSyntheticValuesBounded(t *testing.T) {
	ds := Synthetic(8, 3, 3, 12, 12, 9)
	for _, x := range ds.X {
		for _, v := range x {
			if math.IsNaN(float64(v)) || math.Abs(float64(v)) > 10 {
				t.Fatalf("wild pixel value %v", v)
			}
		}
	}
}
