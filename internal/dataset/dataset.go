// Package dataset generates deterministic synthetic image-classification
// datasets. The paper trains recovered candidate structures on the victim's
// training distribution (ImageNet/CIFAR/MNIST); this reproduction substitutes
// procedurally generated pattern classes (DESIGN.md §2) so the candidate
// ranking experiments run self-contained and reproducibly.
package dataset

import (
	"math"
	"math/rand"
)

// Set is an in-memory labelled image dataset. X[i] is a flattened C×H×W
// image, Y[i] its class.
type Set struct {
	X       [][]float32
	Y       []int
	C, H, W int
	Classes int
}

// Len returns the number of samples.
func (s *Set) Len() int { return len(s.X) }

// Split returns two views of the set: the first n samples and the rest.
func (s *Set) Split(n int) (train, test *Set) {
	if n > len(s.X) {
		n = len(s.X)
	}
	train = &Set{X: s.X[:n], Y: s.Y[:n], C: s.C, H: s.H, W: s.W, Classes: s.Classes}
	test = &Set{X: s.X[n:], Y: s.Y[n:], C: s.C, H: s.H, W: s.W, Classes: s.Classes}
	return train, test
}

// Synthetic generates classes×perClass images of size c×h×w, interleaved and
// shuffled, deterministically from seed. Each class is a distinct spatial
// pattern (oriented gratings, disks, rings, checkers at class-dependent
// scale) with per-sample position/phase jitter, amplitude variation and
// additive noise, so that classification requires learning spatial structure
// rather than mean intensity.
func Synthetic(classes, perClass, c, h, w int, seed int64) *Set {
	rng := rand.New(rand.NewSource(seed))
	n := classes * perClass
	s := &Set{
		X:       make([][]float32, 0, n),
		Y:       make([]int, 0, n),
		C:       c,
		H:       h,
		W:       w,
		Classes: classes,
	}
	for i := 0; i < perClass; i++ {
		for k := 0; k < classes; k++ {
			s.X = append(s.X, renderSample(rng, k, c, h, w))
			s.Y = append(s.Y, k)
		}
	}
	// Shuffle so train/test splits are class-balanced on average.
	rng.Shuffle(len(s.X), func(i, j int) {
		s.X[i], s.X[j] = s.X[j], s.X[i]
		s.Y[i], s.Y[j] = s.Y[j], s.Y[i]
	})
	return s
}

// renderSample draws one image of class k.
func renderSample(rng *rand.Rand, k, c, h, w int) []float32 {
	img := make([]float32, c*h*w)
	kind := k % 4
	scale := 1 + k/4 // higher classes use finer patterns

	amp := 0.8 + 0.4*rng.Float64()
	phase := rng.Float64() * 2 * math.Pi
	cx := 0.5 + 0.2*(rng.Float64()-0.5)
	cy := 0.5 + 0.2*(rng.Float64()-0.5)
	angle := float64(k)*math.Pi/7 + 0.1*(rng.Float64()-0.5)
	freq := 2 * math.Pi * float64(2+scale) // cycles over the image

	cosA, sinA := math.Cos(angle), math.Sin(angle)
	for y := 0; y < h; y++ {
		fy := float64(y)/float64(h) - cy
		for x := 0; x < w; x++ {
			fx := float64(x)/float64(w) - cx
			u := fx*cosA + fy*sinA
			v := -fx*sinA + fy*cosA
			r := math.Sqrt(fx*fx + fy*fy)
			var p float64
			switch kind {
			case 0: // oriented grating
				p = math.Sin(u*freq + phase)
			case 1: // disk of class-dependent radius
				if r < 0.15+0.05*float64(scale) {
					p = 1
				} else {
					p = -0.5
				}
			case 2: // ring
				rad := 0.2 + 0.06*float64(scale)
				p = math.Exp(-math.Pow((r-rad)*14, 2))*2 - 0.5
			case 3: // checker
				p = math.Sin(u*freq+phase) * math.Sin(v*freq)
			}
			p *= amp
			for ch := 0; ch < c; ch++ {
				// Channel mix varies with class so color carries signal too.
				mix := 0.5 + 0.5*math.Cos(float64(ch)*2+float64(k))
				noise := rng.NormFloat64() * 0.15
				img[(ch*h+y)*w+x] = float32(p*mix + noise)
			}
		}
	}
	return img
}
