package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/corrupt"
	"cnnrev/internal/structrev"
)

// noiseSweepSeeds are the corruption seeds each level is averaged over; the
// capture itself is deterministic (input seed 2, as in Table 3), so the
// seeds vary only which transactions are dropped/displaced.
var noiseSweepSeeds = []int64{1, 2, 3}

// noiseDropLevels are the swept transaction-drop rates; every level keeps
// the bounded reorder window at 16 so each point models a probe that both
// misses and misorders traffic.
var noiseDropLevels = []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1}

// noiseReorderWindow bounds transaction displacement at every sweep point.
const noiseReorderWindow = 16

// noiseInterferenceLevels are the swept co-tenant traffic rates (injected
// accesses per victim access), each spread over 4 disjoint regions.
var noiseInterferenceLevels = []float64{0.05, 0.25}

// noiseSolveBudget bounds each seed's candidate enumeration. Heavy
// corruption widens the solver's size intervals enough that the candidate
// space itself explodes — that explosion IS the degradation signal, so a
// point that exhausts the budget is recorded as truncated rather than
// enumerated to completion.
const (
	noiseSolveTimeout       = 15 * time.Second
	noiseSolveMaxStructures = 20000
)

// NoiseSweepPoint is one (victim, corruption level) measurement, averaged
// over the corruption seeds.
type NoiseSweepPoint struct {
	Network string
	// Corruption level: DropRate-driven points have InterferenceRate 0 and
	// vice versa; both keep the reorder window.
	DropRate         float64
	InterferenceRate float64

	// Seeds is how many corruption seeds the point aggregates.
	Seeds int
	// TruthRetained counts seeds whose candidate set still contains the
	// true structure (the paper's success criterion).
	TruthRetained int
	// MeanCandidates is the candidate-set size averaged over seeds; failed
	// analyses count as 0 and are tallied in Failures.
	MeanCandidates float64
	// MeanSegments is the recovered layer count averaged over seeds.
	MeanSegments float64
	// MeanWriteHole is the measured write-coverage hole fraction averaged
	// over seeds — the analyzer's own estimate of the drop level.
	MeanWriteHole float64
	// Truncated counts seeds whose enumeration hit the per-seed solve
	// budget; their candidate counts and truth checks cover the
	// deterministic prefix found within it.
	Truncated int
	// Failures counts seeds where analysis or solving errored outright.
	Failures int
	Elapsed  time.Duration
}

// NoiseSweep measures structure-attack degradation under trace corruption
// for the given victims (default: the four Table 3 networks). Each victim is
// captured once; every sweep point re-corrupts that trace with seeded drop +
// bounded-reorder (or co-tenant interference) models and runs the tolerant
// analysis and solver on the result.
func NoiseSweep(models []string) ([]NoiseSweepPoint, error) {
	if len(models) == 0 {
		models = []string{"lenet", "convnet", "alexnet", "squeezenet"}
	}
	var points []NoiseSweepPoint
	for _, m := range models {
		classes := 10
		if m == "alexnet" || m == "squeezenet" {
			classes = 1000
		}
		net, err := victim(m, classes, 1)
		if err != nil {
			return nil, err
		}
		opt := structrev.DefaultOptions()
		opt.MaxStructures = noiseSolveMaxStructures
		if m == "squeezenet" {
			opt.IdenticalModules = true
		}
		cap, err := core.Capture(net, accel.Config{}, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: capture: %w", m, err)
		}
		truth := core.GroundTruthConfigs(net)

		var cfgs []corrupt.Config
		for _, drop := range noiseDropLevels {
			cfgs = append(cfgs, corrupt.Config{DropRate: drop, ReorderWindow: noiseReorderWindow})
		}
		for _, ir := range noiseInterferenceLevels {
			cfgs = append(cfgs, corrupt.Config{
				ReorderWindow: noiseReorderWindow, InterferenceRate: ir, InterferenceRegions: 4,
			})
		}
		for _, cfg := range cfgs {
			pt := NoiseSweepPoint{
				Network: m, DropRate: cfg.DropRate, InterferenceRate: cfg.InterferenceRate,
				Seeds: len(noiseSweepSeeds),
			}
			start := time.Now()
			for _, seed := range noiseSweepSeeds {
				cfg.Seed = seed
				trace := cap.Result.Trace
				if cfg.Enabled() {
					trace = corrupt.Apply(trace, cfg)
				}
				elem := cap.Sim.Config().ElemBytes
				a, err := structrev.AnalyzeTolerant(trace, net.Input.Len()*elem, elem, structrev.TolerantOptions{})
				if err != nil {
					pt.Failures++
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), noiseSolveTimeout)
				structures, err := structrev.SolveCtx(ctx, a, net.Input.W, net.Input.C, net.NumClasses(), opt)
				cancel()
				switch {
				case err == nil:
				case errors.Is(err, context.DeadlineExceeded), errors.Is(err, structrev.ErrTooManyStructures):
					pt.Truncated++ // keep the deterministic prefix
				default:
					pt.Failures++
					continue
				}
				pt.MeanCandidates += float64(len(structures))
				pt.MeanSegments += float64(len(a.Segments))
				pt.MeanWriteHole += a.Noise.WriteHoleFrac
				if core.FindTruth(structures, truth) >= 0 {
					pt.TruthRetained++
				}
			}
			n := float64(len(noiseSweepSeeds))
			pt.MeanCandidates /= n
			pt.MeanSegments /= n
			pt.MeanWriteHole /= n
			pt.Elapsed = time.Since(start)
			fmt.Fprintf(os.Stderr, "noise: %s drop=%.3f interference=%.2f truth=%d/%d candidates=%.1f truncated=%d failures=%d (%s)\n",
				pt.Network, pt.DropRate, pt.InterferenceRate, pt.TruthRetained, pt.Seeds,
				pt.MeanCandidates, pt.Truncated, pt.Failures, pt.Elapsed.Round(time.Millisecond))
			points = append(points, pt)
		}
	}
	return points, nil
}

// FormatNoiseSweep renders the sweep as a markdown document (the attack's
// degradation curves under a hostile probe), destined for
// results/noise_sweep.md.
func FormatNoiseSweep(points []NoiseSweepPoint) string {
	var b strings.Builder
	b.WriteString("# Structure attack under trace corruption\n\n")
	fmt.Fprintf(&b, "Each point corrupts one deterministic capture (input seed 2) with %d\n", len(noiseSweepSeeds))
	fmt.Fprintf(&b, "corruption seeds and runs the noise-tolerant analysis plus the full solver.\n")
	fmt.Fprintf(&b, "All points keep a bounded transaction-reorder window of %d; interference\n", noiseReorderWindow)
	b.WriteString("points add co-tenant traffic in 4 disjoint address regions instead of drops.\n")
	b.WriteString("`truth` counts seeds whose candidate set still contains the true structure;\n")
	b.WriteString("`write-hole` is the analyzer's own measured write-coverage loss.\n\n")

	byNet := map[string][]NoiseSweepPoint{}
	var order []string
	for _, p := range points {
		if _, ok := byNet[p.Network]; !ok {
			order = append(order, p.Network)
		}
		byNet[p.Network] = append(byNet[p.Network], p)
	}
	for _, net := range order {
		fmt.Fprintf(&b, "## %s\n\n", net)
		b.WriteString("| drop | interference | candidates | segments | truth | write-hole | truncated | failures | time |\n")
		b.WriteString("|------|--------------|------------|----------|-------|------------|-----------|----------|------|\n")
		for _, p := range byNet[net] {
			fmt.Fprintf(&b, "| %.3f | %.2f | %.1f | %.1f | %d/%d | %.3f | %d | %d | %s |\n",
				p.DropRate, p.InterferenceRate, p.MeanCandidates, p.MeanSegments,
				p.TruthRetained, p.Seeds, p.MeanWriteHole, p.Truncated, p.Failures,
				p.Elapsed.Round(time.Millisecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}
