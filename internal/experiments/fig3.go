package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/structrev"
)

// Fig3Report summarizes the memory-access-pattern figure.
type Fig3Report struct {
	Model        string
	TraceRecords int
	TraceBlocks  uint64
	Segments     int
	Boundaries   []uint64 // cycle of each detected layer boundary
	Elapsed      time.Duration
}

// String renders the report.
func (r *Fig3Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 — memory access pattern of %s\n", r.Model)
	fmt.Fprintf(&b, "trace: %d records, %d block transfers\n", r.TraceRecords, r.TraceBlocks)
	fmt.Fprintf(&b, "layer boundaries detected from RAW dependencies: %d\n", r.Segments)
	fmt.Fprintf(&b, "boundary cycles: %v\n", r.Boundaries)
	return b.String()
}

// Fig3 reproduces Figure 3: it runs AlexNet (or another model) on the
// accelerator and, when w is non-nil, writes the address-versus-cycle
// series as CSV (cycle, address, kind, blocks, segment) — the data behind
// the paper's scatter plot — with the RAW-derived layer boundaries marked.
func Fig3(model string, w io.Writer) (*Fig3Report, error) {
	classes := 1000
	if model == "lenet" || model == "convnet" {
		classes = 10
	}
	net, err := victim(model, classes, 1)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	cap, err := core.Capture(net, accel.Config{}, 2)
	if err != nil {
		return nil, err
	}
	elem := cap.Sim.Config().ElemBytes
	a, err := structrev.Analyze(cap.Result.Trace, net.Input.Len()*elem, elem)
	if err != nil {
		return nil, err
	}
	rep := &Fig3Report{
		Model:        model,
		TraceRecords: len(cap.Result.Trace.Accesses),
		TraceBlocks:  cap.Result.Trace.Blocks(),
		Segments:     len(a.Segments),
		Elapsed:      time.Since(start),
	}
	for _, seg := range a.Segments {
		rep.Boundaries = append(rep.Boundaries, seg.StartCycle)
	}
	if w != nil {
		fmt.Fprintln(w, "cycle,addr,kind,blocks,segment")
		seg := 0
		for _, acc := range cap.Result.Trace.Accesses {
			for seg+1 < len(a.Segments) && acc.Cycle >= a.Segments[seg+1].StartCycle {
				seg++
			}
			kind := "R"
			if acc.Kind == memtrace.Write {
				kind = "W"
			}
			fmt.Fprintf(w, "%d,%d,%s,%d,%d\n", acc.Cycle, acc.Addr, kind, acc.Count, seg)
		}
	}
	return rep, nil
}
