package experiments

import (
	"fmt"
	"strings"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/structrev"
)

// DataflowMatrixRow is one (victim, dataflow) cell of the attack-accuracy
// matrix: which schedule the victim ran under, what the detector read off
// the trace, and whether the structure attack still contained the truth.
type DataflowMatrixRow struct {
	Network     string
	Dataflow    string
	Detected    string
	Candidates  int
	TruthFound  bool
	TraceBlocks uint64
}

// dataflowMatrixVictims are the paper's Table 3 victims, in table order.
var dataflowMatrixVictims = []string{"lenet", "convnet", "alexnet", "squeezenet"}

// DataflowMatrix runs the structure attack for every victim × dataflow
// pair and records the auto-detected schedule alongside the attack
// outcome. A nil or empty models slice means all four Table 3 victims.
// The paper's claim is that the attack is dataflow-agnostic; the matrix
// additionally pins that the adversary can recover the schedule itself
// from the read/write interleaving before mounting the attack.
func DataflowMatrix(models []string) ([]DataflowMatrixRow, error) {
	if len(models) == 0 {
		models = dataflowMatrixVictims
	}
	var rows []DataflowMatrixRow
	for _, model := range models {
		classes := 10
		if model == "alexnet" || model == "squeezenet" {
			classes = 1000
		}
		for _, df := range []accel.Dataflow{accel.OutputStationary, accel.WeightStationary, accel.RowStationary} {
			net, err := victim(model, classes, 1)
			if err != nil {
				return nil, err
			}
			opt := structrev.DefaultOptions()
			if model == "squeezenet" {
				opt.IdenticalModules = true
			}
			rep, err := core.RunStructureAttack(net, accel.Config{Dataflow: df}, opt, 2)
			if err != nil {
				return nil, err
			}
			rows = append(rows, DataflowMatrixRow{
				Network:     model,
				Dataflow:    rep.Dataflow,
				Detected:    rep.DetectedDataflow,
				Candidates:  len(rep.Structures),
				TruthFound:  rep.TruthIndex >= 0,
				TraceBlocks: rep.TraceBytes / 4,
			})
		}
	}
	return rows, nil
}

// FormatDataflowMatrix renders the matrix as markdown, with a summary
// line counting correct detections and truth-containing cells.
func FormatDataflowMatrix(rows []DataflowMatrixRow) string {
	var b strings.Builder
	b.WriteString("# Dataflow attack-accuracy matrix\n\n")
	b.WriteString("Structure attack and dataflow auto-detection across every Table 3\n")
	b.WriteString("victim under all three accelerator schedules. `detected` is read\n")
	b.WriteString("from the trace's read/write interleaving alone; `truth` marks the\n")
	b.WriteString("true structure surviving into the candidate set.\n\n")
	b.WriteString("| network | dataflow | detected | candidates | truth | trace blocks |\n")
	b.WriteString("|---|---|---|---:|---|---:|\n")
	detOK, truthOK := 0, 0
	for _, r := range rows {
		if r.Detected == r.Dataflow {
			detOK++
		}
		if r.TruthFound {
			truthOK++
		}
		fmt.Fprintf(&b, "| %s | %s | %s | %d | %v | %d |\n",
			r.Network, r.Dataflow, r.Detected, r.Candidates, r.TruthFound, r.TraceBlocks)
	}
	fmt.Fprintf(&b, "\nDetection: %d/%d cells classified as their producing dataflow; truth contained in %d/%d candidate sets.\n",
		detOK, len(rows), truthOK, len(rows))
	return b.String()
}
