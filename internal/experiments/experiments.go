// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables 3-4, Figures 3-5 and 7) plus the ablations DESIGN.md
// calls out. Each experiment returns a printable report; cmd/experiments
// and the root bench harness are thin wrappers around these functions.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

// victim builds one of the paper's four study networks with deterministic
// weights.
func victim(model string, classes, depthDiv int) (*nn.Network, error) {
	var net *nn.Network
	switch model {
	case "lenet":
		net = nn.LeNet(classes)
	case "convnet":
		net = nn.ConvNet(classes)
	case "alexnet":
		net = nn.AlexNet(classes, depthDiv)
	case "squeezenet":
		net = nn.SqueezeNet(classes, depthDiv)
	case "vgg11":
		net = nn.VGG11(classes, depthDiv)
	case "nin":
		net = nn.NiN(classes, depthDiv)
	case "resnetmini":
		net = nn.ResNetMini(classes, depthDiv)
	default:
		return nil, fmt.Errorf("experiments: unknown model %q", model)
	}
	net.InitWeights(1)
	return net, nil
}

// paperStructureCounts records the candidate-structure counts the paper's
// Table 3 reports.
var paperStructureCounts = map[string]int{
	"lenet": 9, "convnet": 6, "alexnet": 24, "squeezenet": 9,
}

// Table3Row is one network's entry of Table 3.
type Table3Row struct {
	Network    string
	Layers     int
	Count      int
	PaperCount int
	TruthFound bool
	Elapsed    time.Duration
}

// Table3 reproduces Table 3: the number of possible structures recovered
// for each study network (SqueezeNet under the identical-modules
// assumption, as in the paper).
func Table3(models []string) ([]Table3Row, error) {
	if len(models) == 0 {
		models = []string{"lenet", "convnet", "alexnet", "squeezenet"}
	}
	var rows []Table3Row
	for _, m := range models {
		classes := 10
		if m == "alexnet" || m == "squeezenet" {
			classes = 1000
		}
		net, err := victim(m, classes, 1)
		if err != nil {
			return nil, err
		}
		opt := structrev.DefaultOptions()
		if m == "squeezenet" {
			opt.IdenticalModules = true
		}
		start := time.Now()
		rep, err := core.RunStructureAttack(net, accel.Config{}, opt, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		layers := 0
		for i := range net.Specs {
			if net.Params[i] != nil {
				layers++
			}
		}
		rows = append(rows, Table3Row{
			Network:    m,
			Layers:     layers,
			Count:      len(rep.Structures),
			PaperCount: paperStructureCounts[m],
			TruthFound: rep.TruthIndex >= 0,
			Elapsed:    time.Since(start),
		})
	}
	return rows, nil
}

// FormatTable3 renders Table 3 rows.
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — number of possible structures\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %10s\n", "network", "layers", "ours", "paper", "truth", "time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8d %8d %8v %10s\n",
			r.Network, r.Layers, r.Count, r.PaperCount, r.TruthFound, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}

// Table4Report reproduces Table 4: per-layer candidate configurations for
// AlexNet, plus the total combination count.
type Table4Report struct {
	// Layer order follows the victim's weighted segments.
	Segments     []int
	Configs      map[int][]structrev.LayerConfig
	Combinations int
	PaperCombos  int
	TruthFound   bool
}

// Table4 runs the structure attack on AlexNet and gathers the per-layer
// view.
func Table4() (*Table4Report, error) {
	net, _ := victim("alexnet", 1000, 1)
	rep, err := core.RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		return nil, err
	}
	t := &Table4Report{
		Configs:      rep.PerLayer,
		Combinations: len(rep.Structures),
		PaperCombos:  24,
		TruthFound:   rep.TruthIndex >= 0,
	}
	for seg := range rep.PerLayer {
		t.Segments = append(t.Segments, seg)
	}
	sort.Ints(t.Segments)
	return t, nil
}

// String renders the Table 4 report.
func (t *Table4Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4 — AlexNet candidate layer configurations (paper: 13 rows, 24 combinations)\n")
	for _, seg := range t.Segments {
		fmt.Fprintf(&b, "layer %d (%d configs):\n", seg, len(t.Configs[seg]))
		for _, c := range t.Configs[seg] {
			fmt.Fprintf(&b, "  %s\n", c.String())
		}
	}
	fmt.Fprintf(&b, "total combinations: %d (paper: %d), truth recovered: %v\n",
		t.Combinations, t.PaperCombos, t.TruthFound)
	return b.String()
}

// RankReport is the outcome of candidate short-training (Figures 4 and 5).
type RankReport struct {
	Figure     string
	Scores     []core.CandidateScore
	TruthRank  int // 1-based rank of the true structure, 0 if absent
	Candidates int
	TopK       int
}

// String renders the ranking.
func (r *RankReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — top-%d accuracy of %d candidate structures (short training)\n",
		r.Figure, r.TopK, r.Candidates)
	for i, s := range r.Scores {
		mark := ""
		if s.IsTruth {
			mark = "  <-- original structure"
		}
		fmt.Fprintf(&b, "%3d. candidate %2d  acc %.3f%s\n", i+1, s.Index, s.Accuracy, mark)
	}
	if r.TruthRank > 0 {
		fmt.Fprintf(&b, "original structure ranks %d of %d (paper: 4th of 24 on Fig 4's ImageNet ranking)\n", r.TruthRank, len(r.Scores))
	}
	return b.String()
}

// Fig4 reproduces Figure 4: accuracy ranking of the recovered AlexNet
// candidate structures, trained depth-scaled on the synthetic substitute
// dataset (DESIGN.md §2).
func Fig4(rc core.RankConfig) (*RankReport, error) {
	net, _ := victim("alexnet", 1000, 1)
	rep, err := core.RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		return nil, err
	}
	if rc.TopK == 0 {
		rc.TopK = 1
	}
	scores := core.RankCandidates(rep, net.Input, rc)
	return rankReport("Figure 4 (AlexNet)", scores, rc.TopK), nil
}

// Fig5 reproduces Figure 5: top-5 accuracy of the SqueezeNet candidates
// after three epochs, under the identical-modules assumption.
func Fig5(rc core.RankConfig) (*RankReport, error) {
	net, _ := victim("squeezenet", 1000, 1)
	opt := structrev.DefaultOptions()
	opt.IdenticalModules = true
	rep, err := core.RunStructureAttack(net, accel.Config{}, opt, 2)
	if err != nil {
		return nil, err
	}
	if rc.TopK == 0 {
		rc.TopK = 5
	}
	if rc.Epochs == 0 {
		rc.Epochs = 3 // the paper trains three epochs for Figure 5
	}
	scores := core.RankCandidates(rep, net.Input, rc)
	return rankReport("Figure 5 (SqueezeNet)", scores, rc.TopK), nil
}

func rankReport(name string, scores []core.CandidateScore, topK int) *RankReport {
	r := &RankReport{Figure: name, Scores: scores, Candidates: len(scores), TopK: topK}
	for i, s := range scores {
		if s.IsTruth {
			r.TruthRank = i + 1
		}
	}
	return r
}

// PrunedConv1 builds the Figure-7 victim: a single AlexNet-geometry CONV1
// layer (96 filters of 11×11×3, stride 4) whose weights are magnitude-
// pruned (Deep-Compression style) so a zeroFrac fraction is exactly zero,
// with small positive biases.
func PrunedConv1(filters int, zeroFrac float64, seed int64) *nn.Network {
	if filters <= 0 {
		filters = 96
	}
	spec := nn.LayerSpec{Name: "conv1", Kind: nn.KindConv, OutC: filters, F: 11, S: 4, ReLU: true}
	net := nn.MustNew("alexnet-conv1", nn.Shape{C: 3, H: 227, W: 227}, []nn.LayerSpec{spec})
	rng := rand.New(rand.NewSource(seed))
	w := net.Params[0].W.Data
	for i := range w {
		w[i] = float32(rng.NormFloat64() * 0.08)
	}
	// Magnitude pruning: zero the smallest zeroFrac fraction.
	mags := make([]float64, len(w))
	for i, v := range w {
		mags[i] = abs64(float64(v))
	}
	sort.Float64s(mags)
	thresh := mags[int(float64(len(mags))*zeroFrac)]
	for i := range w {
		if abs64(float64(w[i])) <= thresh {
			w[i] = 0
		}
	}
	for i := range net.Params[0].B.Data {
		net.Params[0].B.Data[i] = float32(0.03 + 0.04*rng.Float64())
	}
	return net
}

func abs64(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Fig7Report is the weight-recovery outcome.
type Fig7Report struct {
	*core.WeightReport
	ZeroFrac float64
	Elapsed  time.Duration
}

// String renders the report.
func (r *Fig7Report) String() string {
	return fmt.Sprintf(
		"Figure 7 — w/b recovery over %d filters (11x11x3, %.0f%% pruned)\n"+
			"max |w/b error| = %.3g (paper: < 2^-10 = %.3g)\n"+
			"zero weights: %d/%d detected, %d misclassifications\n"+
			"device queries: %d, elapsed %s\n",
		r.Filters, r.ZeroFrac*100, r.MaxRatioErr, 1.0/1024,
		r.ZerosDetected, r.ZerosActual, r.ZeroErrors, r.Queries, r.Elapsed.Round(time.Millisecond))
}

// Fig7 reproduces Figure 7: recover w/b for every filter of the pruned
// CONV1 layer via the zero-pruning side channel. filters caps the number of
// output channels for quick runs (0 = the full 96).
func Fig7(filters int) (*Fig7Report, error) {
	net := PrunedConv1(filters, 0.25, 42)
	start := time.Now()
	rep, err := core.RunWeightAttack(net, accel.Config{})
	if err != nil {
		return nil, err
	}
	return &Fig7Report{WeightReport: rep, ZeroFrac: 0.25, Elapsed: time.Since(start)}, nil
}

// Table3Extended runs the structure attack on the beyond-paper victims
// (NiN and the mini ResNet; VGG-11 is exercised by the structrev tests —
// its full-scale FC layers are disproportionately heavy here). ResNet needs
// the Equation (5) relaxation for its strided projection.
func Table3Extended() ([]Table3Row, error) {
	var rows []Table3Row
	for _, m := range []string{"nin", "resnetmini"} {
		net, err := victim(m, 10, 1)
		if err != nil {
			return nil, err
		}
		opt := structrev.DefaultOptions()
		if m == "resnetmini" {
			opt.AllowStrideOverKernel = true
		}
		start := time.Now()
		rep, err := core.RunStructureAttack(net, accel.Config{}, opt, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m, err)
		}
		layers := 0
		for i := range net.Specs {
			if net.Params[i] != nil {
				layers++
			}
		}
		rows = append(rows, Table3Row{
			Network:    m,
			Layers:     layers,
			Count:      len(rep.Structures),
			TruthFound: rep.TruthIndex >= 0,
			Elapsed:    time.Since(start),
		})
	}
	return rows, nil
}
