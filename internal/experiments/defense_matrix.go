package experiments

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/defense"
	"cnnrev/internal/structrev"
)

// defenseMatrixSeed seeds the randomized defenses (dummy, rerand, oram);
// the victim capture itself keeps the Table 3 input seed 2.
const defenseMatrixSeed = 7

// defenseSolveBudget bounds each cell's candidate enumeration, mirroring
// the noise sweep: a defense that explodes the candidate space has already
// won, so a truncated cell is recorded rather than enumerated forever.
const (
	defenseSolveTimeout       = 15 * time.Second
	defenseSolveMaxStructures = 20000
)

// defenseMatrixDefenses is the evaluated defense order: the undefended
// baseline first, then the four lightweight transforms, then Path ORAM.
var defenseMatrixDefenses = []string{"none", "dummy", "pad", "rerand", "fuse", "oram"}

// DefenseMatrixRow is one (victim, defense, analysis-mode) cell: whether
// the structure attack still works through the defense, at what candidate
// ambiguity, and what the defense costs in off-chip bandwidth and latency.
type DefenseMatrixRow struct {
	Network string
	Defense string
	// Mode is "strict" (exact RAW segmentation) or "tolerant" (the
	// noise-tolerant analysis the adversary would fall back to).
	Mode string

	// Defeated marks cells where analysis or solving errored outright —
	// the adversary recovers no structure hypothesis at all.
	Defeated bool
	// Truncated marks cells whose enumeration hit the solve budget; the
	// candidate count and truth check cover the deterministic prefix.
	Truncated  bool
	Segments   int
	Candidates int
	// TruthFound is the paper's success criterion: the true structure
	// survives into the candidate set.
	TruthFound bool

	// BandwidthOverhead and LatencyOverhead are the defense's measured
	// costs (output/input block transfers and cycle spans); 1.0 for the
	// undefended baseline, and <1.0 for fusion, which removes traffic.
	BandwidthOverhead float64
	LatencyOverhead   float64

	Elapsed time.Duration
}

// defenseConfigFor builds the matrix's configuration for one defense kind.
// Every knob stays at its documented default except the ORAM block size,
// which must scale with the victim: the large nets move hundreds of
// megabytes, and a 64-byte ORAM block would put their obfuscated traces
// past the library's physical-transfer bound.
func defenseConfigFor(kind, model string) defense.Config {
	cfg := defense.Config{Kind: kind, Seed: defenseMatrixSeed}
	if kind == "oram" && (model == "alexnet" || model == "squeezenet") {
		cfg.ORAM.BlockBytes = 4096
	}
	return cfg
}

// DefenseMatrix measures the structure attack against every defense for
// the given victims (default: the four Table 3 networks) under both the
// strict and the noise-tolerant analysis. Each victim is captured once;
// each defense transforms that capture once, and both analysis modes
// attack the same defended trace. A nil or empty defenses slice means all
// of defenseMatrixDefenses.
//
// A cell where analysis errors is the defense working as intended and is
// recorded as defeated, not returned as an error.
func DefenseMatrix(models, defenses []string) ([]DefenseMatrixRow, error) {
	if len(models) == 0 {
		models = dataflowMatrixVictims
	}
	if len(defenses) == 0 {
		defenses = defenseMatrixDefenses
	}
	var rows []DefenseMatrixRow
	for _, model := range models {
		classes := 10
		if model == "alexnet" || model == "squeezenet" {
			classes = 1000
		}
		net, err := victim(model, classes, 1)
		if err != nil {
			return nil, err
		}
		opt := structrev.DefaultOptions()
		opt.MaxStructures = defenseSolveMaxStructures
		if model == "squeezenet" {
			opt.IdenticalModules = true
		}
		cap, err := core.Capture(net, accel.Config{}, 2)
		if err != nil {
			return nil, fmt.Errorf("%s: capture: %w", model, err)
		}
		truth := core.GroundTruthConfigs(net)
		elem := cap.Sim.Config().ElemBytes
		inputBytes := net.Input.Len() * elem

		for _, kind := range defenses {
			cfg := defenseConfigFor(kind, model)
			if err := cfg.Validate(); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", model, kind, err)
			}
			trace, st, err := defense.Apply(cap.Result.Trace, cfg)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: defense: %w", model, kind, err)
			}
			bw, lat := st.BandwidthOverhead(), st.LatencyOverhead()
			if !cfg.Enabled() {
				bw, lat = 1, 1
			}
			for _, mode := range []string{"strict", "tolerant"} {
				row := DefenseMatrixRow{
					Network: model, Defense: kind, Mode: mode,
					BandwidthOverhead: bw, LatencyOverhead: lat,
				}
				start := time.Now()
				var a *structrev.Analysis
				if mode == "strict" {
					a, err = structrev.Analyze(trace, inputBytes, elem)
				} else {
					a, err = structrev.AnalyzeTolerant(trace, inputBytes, elem, structrev.TolerantOptions{})
				}
				if err != nil {
					row.Defeated = true
					row.Elapsed = time.Since(start)
					rows = append(rows, logDefenseRow(row))
					continue
				}
				row.Segments = len(a.Segments)
				ctx, cancel := context.WithTimeout(context.Background(), defenseSolveTimeout)
				structures, serr := structrev.SolveCtx(ctx, a, net.Input.W, net.Input.C, net.NumClasses(), opt)
				cancel()
				switch {
				case serr == nil:
				case errors.Is(serr, context.DeadlineExceeded), errors.Is(serr, structrev.ErrTooManyStructures):
					row.Truncated = true // keep the deterministic prefix
				default:
					row.Defeated = true
					row.Elapsed = time.Since(start)
					rows = append(rows, logDefenseRow(row))
					continue
				}
				row.Candidates = len(structures)
				row.TruthFound = core.FindTruth(structures, truth) >= 0
				row.Elapsed = time.Since(start)
				rows = append(rows, logDefenseRow(row))
			}
		}
	}
	return rows, nil
}

func logDefenseRow(r DefenseMatrixRow) DefenseMatrixRow {
	fmt.Fprintf(os.Stderr, "defense: %s %s/%s defeated=%v truth=%v candidates=%d bw=x%.2f (%s)\n",
		r.Network, r.Defense, r.Mode, r.Defeated, r.TruthFound, r.Candidates,
		r.BandwidthOverhead, r.Elapsed.Round(time.Millisecond))
	return r
}

// defenseAttackOutcome collapses a row's attack columns into one word for
// the rendered table.
func defenseAttackOutcome(r DefenseMatrixRow) string {
	switch {
	case r.Defeated:
		return "defeated"
	case r.TruthFound:
		return "truth kept"
	case r.Candidates == 0:
		return "no candidates"
	default:
		return "truth lost"
	}
}

// FormatDefenseMatrix renders the matrix as a markdown document (the
// defense-evaluation companion to Table 3), destined for
// results/defense_matrix.md.
func FormatDefenseMatrix(rows []DefenseMatrixRow) string {
	var b strings.Builder
	b.WriteString("# Defense benchmark matrix\n\n")
	b.WriteString("Structure attack against every defensive trace transform, per Table 3\n")
	b.WriteString("victim, under both the strict and the noise-tolerant analysis. Each\n")
	b.WriteString("victim is captured once (input seed 2); each defense transforms that\n")
	fmt.Fprintf(&b, "capture with seed %d and both analysis modes attack the same defended\n", defenseMatrixSeed)
	b.WriteString("trace. `defeated` means analysis recovered no structure hypothesis at\n")
	b.WriteString("all; `truth kept` means the true structure survives in the candidate\n")
	b.WriteString("set (the paper's success criterion); `no candidates` means the solver\n")
	b.WriteString("found every segmentation inconsistent; `truth lost` means candidates\n")
	b.WriteString("were produced but none match. Overheads are measured block-transfer\n")
	b.WriteString("and cycle-span ratios — the price the victim pays for the defense.\n")
	fmt.Fprintf(&b, "Truncated cells (marked `*`) hit the per-cell solve budget (%s or\n", defenseSolveTimeout)
	fmt.Fprintf(&b, "%d structures) and report the deterministic prefix.\n\n", defenseSolveMaxStructures)

	byNet := map[string][]DefenseMatrixRow{}
	var order []string
	for _, r := range rows {
		if _, ok := byNet[r.Network]; !ok {
			order = append(order, r.Network)
		}
		byNet[r.Network] = append(byNet[r.Network], r)
	}
	for _, net := range order {
		fmt.Fprintf(&b, "## %s\n\n", net)
		b.WriteString("| defense | analysis | attack | segments | candidates | bandwidth | latency | time |\n")
		b.WriteString("|---|---|---|---:|---:|---:|---:|---:|\n")
		for _, r := range byNet[net] {
			trunc := ""
			if r.Truncated {
				trunc = "*"
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %d | %d%s | x%.2f | x%.2f | %s |\n",
				r.Defense, r.Mode, defenseAttackOutcome(r), r.Segments, r.Candidates, trunc,
				r.BandwidthOverhead, r.LatencyOverhead, r.Elapsed.Round(time.Millisecond))
		}
		b.WriteString("\n")
	}

	// Per-defense summary: in how many cells did the attack still recover
	// the truth, and at what mean bandwidth cost?
	type agg struct {
		cells, kept int
		bw          float64
	}
	perDef := map[string]*agg{}
	var defOrder []string
	for _, r := range rows {
		a, ok := perDef[r.Defense]
		if !ok {
			a = &agg{}
			perDef[r.Defense] = a
			defOrder = append(defOrder, r.Defense)
		}
		a.cells++
		a.bw += r.BandwidthOverhead
		if r.TruthFound {
			a.kept++
		}
	}
	b.WriteString("## Summary\n\n")
	b.WriteString("| defense | truth kept | mean bandwidth |\n")
	b.WriteString("|---|---|---:|\n")
	for _, d := range defOrder {
		a := perDef[d]
		fmt.Fprintf(&b, "| %s | %d/%d | x%.2f |\n", d, a.kept, a.cells, a.bw/float64(a.cells))
	}
	return b.String()
}
