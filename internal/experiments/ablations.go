package experiments

import (
	"fmt"
	"strings"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/nn"
	"cnnrev/internal/oram"
	"cnnrev/internal/structrev"
)

// TimingSweepRow is one tolerance setting's outcome.
type TimingSweepRow struct {
	Tolerance  float64
	Candidates int
	TruthFound bool
}

// AblationTimingSweep measures how the execution-time filter's tolerance
// trades candidate-set size against robustness (the design choice behind
// Algorithm 1 step 4). A tolerance below the victim's intrinsic
// cycles-per-MAC spread loses the true structure; a loose one admits more
// candidates.
func AblationTimingSweep(model string, tols []float64) ([]TimingSweepRow, error) {
	if len(tols) == 0 {
		tols = []float64{1.05, 1.15, 1.35, 2.0, 4.0}
	}
	classes := 10
	if model == "alexnet" || model == "squeezenet" {
		classes = 1000
	}
	net, err := victim(model, classes, 1)
	if err != nil {
		return nil, err
	}
	cap, err := core.Capture(net, accel.Config{}, 2)
	if err != nil {
		return nil, err
	}
	elem := cap.Sim.Config().ElemBytes
	a, err := structrev.Analyze(cap.Result.Trace, net.Input.Len()*elem, elem)
	if err != nil {
		return nil, err
	}
	truth := core.GroundTruthConfigs(net)
	var rows []TimingSweepRow
	for _, tol := range tols {
		opt := structrev.DefaultOptions()
		opt.TimingSpreadMax = tol
		if model == "squeezenet" {
			opt.IdenticalModules = true
		}
		structures, err := structrev.Solve(a, net.Input.W, net.Input.C, net.NumClasses(), opt)
		if err != nil {
			return nil, err
		}
		row := TimingSweepRow{Tolerance: tol, Candidates: len(structures)}
		for i := range structures {
			if matchesTruth(&structures[i], truth) {
				row.TruthFound = true
				break
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func matchesTruth(st *structrev.Structure, truth []structrev.LayerConfig) bool {
	cfgs := st.WeightedConfigs()
	if len(cfgs) != len(truth) {
		return false
	}
	for i := range cfgs {
		a, b := cfgs[i], truth[i]
		if a.FC != b.FC || a.WOFM != b.WOFM || a.DOFM != b.DOFM {
			return false
		}
		if a.FC {
			continue
		}
		if a.F != b.F || a.S != b.S || a.ConvOutW() != b.ConvOutW() ||
			a.HasPool != b.HasPool || a.FPool != b.FPool || a.SPool != b.SPool {
			return false
		}
	}
	return true
}

// FormatTimingSweep renders the sweep.
func FormatTimingSweep(model string, rows []TimingSweepRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — timing-filter tolerance sweep (%s)\n", model)
	fmt.Fprintf(&b, "%10s %12s %8s\n", "tolerance", "candidates", "truth")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.2f %12d %8v\n", r.Tolerance, r.Candidates, r.TruthFound)
	}
	return b.String()
}

// BiasAblationReport compares the attack against victims that keep biases
// on chip (the paper's Eq. (3) model) versus in the DRAM filter region.
type BiasAblationReport struct {
	Model                  string
	PaperModel, BiasInDRAM int
	TruthFoundBoth         bool
}

// AblationBiasInDRAM quantifies how much stronger the structure attack gets
// when the victim streams biases through DRAM: the extra D_OFM elements let
// the solver reject wrong output-depth factorizations outright.
func AblationBiasInDRAM(model string) (*BiasAblationReport, error) {
	classes := 10
	if model == "alexnet" || model == "squeezenet" {
		classes = 1000
	}
	net, err := victim(model, classes, 1)
	if err != nil {
		return nil, err
	}
	plain, err := core.RunStructureAttack(net, accel.Config{}, structrev.DefaultOptions(), 2)
	if err != nil {
		return nil, err
	}
	optB := structrev.DefaultOptions()
	optB.BiasInFilters = true
	withBias, err := core.RunStructureAttack(net, accel.Config{BiasInDRAM: true}, optB, 2)
	if err != nil {
		return nil, err
	}
	return &BiasAblationReport{
		Model:          model,
		PaperModel:     len(plain.Structures),
		BiasInDRAM:     len(withBias.Structures),
		TruthFoundBoth: plain.TruthIndex >= 0 && withBias.TruthIndex >= 0,
	}, nil
}

// String renders the report.
func (r *BiasAblationReport) String() string {
	return fmt.Sprintf("Ablation — bias storage (%s): %d candidates (biases on chip, paper model) vs %d (biases in DRAM); truth found in both: %v\n",
		r.Model, r.PaperModel, r.BiasInDRAM, r.TruthFoundBoth)
}

// PruneTrafficRow is one threshold's traffic measurement.
type PruneTrafficRow struct {
	Threshold     float32
	Sparsity      float64 // fraction of zero output pixels across fmap layers
	DenseBlocks   uint64
	PrunedBlocks  uint64
	TrafficFactor float64 // pruned / dense
}

// AblationZeroPruneTraffic reproduces the motivation for dynamic zero
// pruning (the optimization §4 attacks): total DRAM traffic with and
// without pruning as activation sparsity grows.
func AblationZeroPruneTraffic(thresholds []float32) ([]PruneTrafficRow, error) {
	if len(thresholds) == 0 {
		thresholds = []float32{0, 0.25, 0.5, 1.0}
	}
	base, err := nn.Sequential("sparse", nn.Shape{C: 3, H: 32, W: 32}, []nn.ConvConfig{
		{OutC: 16, F: 3, S: 1, P: 1},
		{OutC: 16, F: 3, S: 1, P: 1},
		{OutC: 16, F: 3, S: 1, P: 1},
	}, []int{10})
	if err != nil {
		return nil, err
	}
	base.InitWeights(3)
	var rows []PruneTrafficRow
	for _, th := range thresholds {
		dense, err := core.Capture(base, accel.Config{Threshold: th}, 4)
		if err != nil {
			return nil, err
		}
		pruned, err := core.Capture(base, accel.Config{Threshold: th, ZeroPrune: true}, 4)
		if err != nil {
			return nil, err
		}
		total, zero := 0, 0
		for li := range base.Specs {
			shape := base.Shapes[li]
			total += shape.Len()
			for _, nz := range dense.Result.NZCounts[li] {
				zero += shape.H*shape.W - nz
			}
		}
		db, pb := dense.Result.Trace.Blocks(), pruned.Result.Trace.Blocks()
		rows = append(rows, PruneTrafficRow{
			Threshold:     th,
			Sparsity:      float64(zero) / float64(total),
			DenseBlocks:   db,
			PrunedBlocks:  pb,
			TrafficFactor: float64(pb) / float64(db),
		})
	}
	return rows, nil
}

// FormatPruneTraffic renders the rows.
func FormatPruneTraffic(rows []PruneTrafficRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — zero-pruning DRAM traffic vs activation sparsity\n")
	fmt.Fprintf(&b, "%10s %10s %12s %12s %8s\n", "threshold", "sparsity", "dense blks", "pruned blks", "ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.2f %10.2f %12d %12d %8.2f\n",
			r.Threshold, r.Sparsity, r.DenseBlocks, r.PrunedBlocks, r.TrafficFactor)
	}
	return b.String()
}

// ORAMReport quantifies the defense the paper's related work points to.
type ORAMReport struct {
	Model          string
	Overhead       float64
	Levels         int
	MaxStash       int
	AttackDefeated bool
}

// AblationORAM obfuscates a victim trace with Path ORAM and verifies the
// structure attack no longer even segments it, at the measured bandwidth
// cost.
func AblationORAM(model string) (*ORAMReport, error) {
	classes := 10
	if model == "alexnet" || model == "squeezenet" {
		classes = 1000
	}
	net, err := victim(model, classes, 1)
	if err != nil {
		return nil, err
	}
	cap, err := core.Capture(net, accel.Config{}, 2)
	if err != nil {
		return nil, err
	}
	obf, st, err := oram.Obfuscate(cap.Result.Trace, oram.Config{Seed: 5})
	if err != nil {
		return nil, err
	}
	_, aerr := structrev.Analyze(obf, net.Input.Len()*4, 4)
	return &ORAMReport{
		Model:          model,
		Overhead:       st.Overhead(),
		Levels:         st.Levels,
		MaxStash:       st.MaxStash,
		AttackDefeated: aerr != nil,
	}, nil
}

// String renders the report.
func (r *ORAMReport) String() string {
	return fmt.Sprintf("Ablation — Path ORAM defense (%s): %.0fx block-transfer overhead (%d levels, stash<=%d); structure attack defeated: %v\n",
		r.Model, r.Overhead, r.Levels, r.MaxStash, r.AttackDefeated)
}

// KernelBoundRow is one MaxConvF setting's outcome.
type KernelBoundRow struct {
	MaxConvF   int
	Candidates int
	TruthFound bool
	Err        string
}

// AblationKernelBound sweeps the kernel-size prior that breaks the
// enumeration's gauge symmetry (DESIGN.md), showing candidate counts
// exploding as the bound loosens.
func AblationKernelBound(model string, bounds []int) ([]KernelBoundRow, error) {
	if len(bounds) == 0 {
		bounds = []int{7, 11, 13, 22, 44}
	}
	classes := 10
	if model == "alexnet" || model == "squeezenet" {
		classes = 1000
	}
	net, err := victim(model, classes, 1)
	if err != nil {
		return nil, err
	}
	cap, err := core.Capture(net, accel.Config{}, 2)
	if err != nil {
		return nil, err
	}
	elem := cap.Sim.Config().ElemBytes
	a, err := structrev.Analyze(cap.Result.Trace, net.Input.Len()*elem, elem)
	if err != nil {
		return nil, err
	}
	truth := core.GroundTruthConfigs(net)
	var rows []KernelBoundRow
	for _, mb := range bounds {
		opt := structrev.DefaultOptions()
		opt.MaxConvF = mb
		structures, err := structrev.Solve(a, net.Input.W, net.Input.C, net.NumClasses(), opt)
		row := KernelBoundRow{MaxConvF: mb}
		if err != nil {
			row.Err = err.Error()
		} else {
			row.Candidates = len(structures)
			for i := range structures {
				if matchesTruth(&structures[i], truth) {
					row.TruthFound = true
					break
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatKernelBound renders the sweep.
func FormatKernelBound(model string, rows []KernelBoundRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — kernel-size prior sweep (%s)\n", model)
	fmt.Fprintf(&b, "%10s %12s %8s %s\n", "maxConvF", "candidates", "truth", "note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %12d %8v %s\n", r.MaxConvF, r.Candidates, r.TruthFound, r.Err)
	}
	return b.String()
}

// BlockSizeRow is one trace-granularity setting's outcome.
type BlockSizeRow struct {
	BlockBytes int
	Candidates int
	TruthFound bool
	Err        string
}

// AblationBlockSize coarsens the observable DRAM transaction granularity
// and reruns the structure attack: with 4-byte (element) granularity sizes
// are exact; coarser buses blur region extents until the integer
// factorizations no longer pin the dimensions.
func AblationBlockSize(model string, blocks []int) ([]BlockSizeRow, error) {
	if len(blocks) == 0 {
		blocks = []int{4, 16, 64}
	}
	classes := 10
	if model == "alexnet" || model == "squeezenet" {
		classes = 1000
	}
	var rows []BlockSizeRow
	for _, bb := range blocks {
		net, err := victim(model, classes, 1)
		if err != nil {
			return nil, err
		}
		rep, err := core.RunStructureAttack(net, accel.Config{BlockBytes: bb}, structrev.DefaultOptions(), 2)
		row := BlockSizeRow{BlockBytes: bb}
		if err != nil {
			row.Err = err.Error()
		} else {
			row.Candidates = len(rep.Structures)
			row.TruthFound = rep.TruthIndex >= 0
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBlockSize renders the sweep.
func FormatBlockSize(model string, rows []BlockSizeRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — DRAM transaction granularity (%s)\n", model)
	fmt.Fprintf(&b, "%10s %12s %8s %s\n", "blockB", "candidates", "truth", "note")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10d %12d %8v %s\n", r.BlockBytes, r.Candidates, r.TruthFound, r.Err)
	}
	return b.String()
}

// NoiseRow is one timing-noise setting's outcome.
type NoiseRow struct {
	Jitter     float64
	Candidates int
	TruthFound bool
}

// AblationTimingNoise injects per-tile latency jitter (DRAM contention,
// refresh) into the victim and reruns the structure attack: per-layer
// execution times are sums of many jittered tiles, so the timing filter
// tolerates realistic noise levels.
func AblationTimingNoise(model string, jitters []float64) ([]NoiseRow, error) {
	if len(jitters) == 0 {
		jitters = []float64{0, 0.1, 0.25, 0.5}
	}
	classes := 10
	if model == "alexnet" || model == "squeezenet" {
		classes = 1000
	}
	var rows []NoiseRow
	for _, j := range jitters {
		net, err := victim(model, classes, 1)
		if err != nil {
			return nil, err
		}
		opt := structrev.DefaultOptions()
		if model == "squeezenet" {
			opt.IdenticalModules = true
		}
		rep, err := core.RunStructureAttack(net, accel.Config{CycleJitter: j, NoiseSeed: 11}, opt, 2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NoiseRow{Jitter: j, Candidates: len(rep.Structures), TruthFound: rep.TruthIndex >= 0})
	}
	return rows, nil
}

// FormatTimingNoise renders the sweep.
func FormatTimingNoise(model string, rows []NoiseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — per-tile latency jitter (%s)\n", model)
	fmt.Fprintf(&b, "%10s %12s %8s\n", "jitter", "candidates", "truth")
	for _, r := range rows {
		fmt.Fprintf(&b, "%10.2f %12d %8v\n", r.Jitter, r.Candidates, r.TruthFound)
	}
	return b.String()
}

// PadDefenseReport compares write-count hiding strategies against the §4
// weight attack.
type PadDefenseReport struct {
	DenseBlocks  uint64 // pruning disabled
	PrunedBlocks uint64 // pruning on (leaky)
	PaddedBlocks uint64 // pruning on, streams padded to worst case
	CountsLeak   bool   // do padded write volumes still vary with the input?
}

// AblationPadDefense evaluates the natural countermeasure to the weight
// attack — padding compressed streams to a constant worst-case size — and
// shows it costs more traffic than disabling pruning altogether: the only
// safe pruning is no pruning.
func AblationPadDefense() (*PadDefenseReport, error) {
	net := PrunedConv1(16, 0.25, 7)
	run := func(cfg accel.Config, seed int64) (*core.CaptureResult, error) {
		return core.Capture(net, cfg, seed)
	}
	dense, err := run(accel.Config{}, 1)
	if err != nil {
		return nil, err
	}
	pruned, err := run(accel.Config{ZeroPrune: true}, 1)
	if err != nil {
		return nil, err
	}
	pad1, err := run(accel.Config{ZeroPrune: true, PadPrunedWrites: true}, 1)
	if err != nil {
		return nil, err
	}
	pad2, err := run(accel.Config{ZeroPrune: true, PadPrunedWrites: true}, 2)
	if err != nil {
		return nil, err
	}
	rep := &PadDefenseReport{
		DenseBlocks:  dense.Result.Trace.Blocks(),
		PrunedBlocks: pruned.Result.Trace.Blocks(),
		PaddedBlocks: pad1.Result.Trace.Blocks(),
	}
	// Write volumes must be input-independent under padding.
	rep.CountsLeak = pad1.Result.Trace.Blocks() != pad2.Result.Trace.Blocks()
	return rep, nil
}

// String renders the report.
func (r *PadDefenseReport) String() string {
	return fmt.Sprintf("Ablation — padding defense vs weight attack: dense %d, pruned %d, padded %d block transfers; padded volumes input-dependent: %v (padding costs %.1fx dense — the only safe pruning is no pruning)\n",
		r.DenseBlocks, r.PrunedBlocks, r.PaddedBlocks, r.CountsLeak,
		float64(r.PaddedBlocks)/float64(r.DenseBlocks))
}

// DataflowRow is one data-reuse strategy's outcome.
type DataflowRow struct {
	Dataflow    string
	Candidates  int
	TruthFound  bool
	TraceBlocks uint64
}

// AblationDataflow runs the structure attack against all three accelerator
// dataflows, testing the paper's claim that the RAW structure survives
// "regardless of micro-architecture details and data reuse strategies".
func AblationDataflow(model string) ([]DataflowRow, error) {
	classes := 10
	if model == "alexnet" || model == "squeezenet" {
		classes = 1000
	}
	var rows []DataflowRow
	for _, df := range []accel.Dataflow{accel.OutputStationary, accel.WeightStationary, accel.RowStationary} {
		net, err := victim(model, classes, 1)
		if err != nil {
			return nil, err
		}
		opt := structrev.DefaultOptions()
		if model == "squeezenet" {
			opt.IdenticalModules = true
		}
		rep, err := core.RunStructureAttack(net, accel.Config{Dataflow: df}, opt, 2)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DataflowRow{
			Dataflow:    df.String(),
			Candidates:  len(rep.Structures),
			TruthFound:  rep.TruthIndex >= 0,
			TraceBlocks: rep.TraceBytes / 4,
		})
	}
	return rows, nil
}

// FormatDataflow renders the comparison.
func FormatDataflow(model string, rows []DataflowRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — data-reuse strategy (%s)\n", model)
	fmt.Fprintf(&b, "%20s %12s %8s %14s\n", "dataflow", "candidates", "truth", "trace blocks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%20s %12d %8v %14d\n", r.Dataflow, r.Candidates, r.TruthFound, r.TraceBlocks)
	}
	return b.String()
}
