package experiments

import (
	"bytes"
	"strings"
	"testing"

	"cnnrev/internal/core"
)

func TestTable3SmallNetworks(t *testing.T) {
	rows, err := Table3([]string{"lenet", "convnet"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.TruthFound {
			t.Errorf("%s: truth lost", r.Network)
		}
		if r.Count < 1 {
			t.Errorf("%s: zero candidates", r.Network)
		}
		if r.Layers != 4 {
			t.Errorf("%s: %d layers, want 4", r.Network, r.Layers)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "lenet") || !strings.Contains(out, "convnet") {
		t.Fatalf("formatting lost rows:\n%s", out)
	}
}

func TestTable3RejectsUnknownModel(t *testing.T) {
	if _, err := Table3([]string{"resnet"}); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestFig3CSVWellFormed(t *testing.T) {
	var buf bytes.Buffer
	rep, err := Fig3("lenet", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 4 {
		t.Fatalf("segments = %d", rep.Segments)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "cycle,addr,kind,blocks,segment" {
		t.Fatalf("bad header: %s", lines[0])
	}
	if len(lines) != rep.TraceRecords+1 {
		t.Fatalf("%d lines for %d records", len(lines), rep.TraceRecords)
	}
	for _, l := range lines[1:] {
		if n := strings.Count(l, ","); n != 4 {
			t.Fatalf("malformed line %q", l)
		}
	}
	if len(rep.Boundaries) != rep.Segments {
		t.Fatalf("%d boundaries for %d segments", len(rep.Boundaries), rep.Segments)
	}
}

func TestPrunedConv1Properties(t *testing.T) {
	net := PrunedConv1(8, 0.25, 1)
	w := net.Params[0].W.Data
	zeros := 0
	for _, v := range w {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(len(w))
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("zero fraction %.2f, want ~0.25", frac)
	}
	for _, b := range net.Params[0].B.Data {
		if b <= 0 {
			t.Fatal("biases must be positive for the ReLU side channel to see activity")
		}
	}
}

func TestFig7SmallScale(t *testing.T) {
	rep, err := Fig7(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxRatioErr > 1.0/1024 {
		t.Fatalf("max error %g exceeds 2^-10", rep.MaxRatioErr)
	}
	if rep.ZeroErrors != 0 {
		t.Fatalf("%d zero misclassifications", rep.ZeroErrors)
	}
	if !strings.Contains(rep.String(), "Figure 7") {
		t.Fatal("report formatting broken")
	}
}

func TestFig4SmokeRanksCandidates(t *testing.T) {
	if testing.Short() {
		t.Skip("training in -short mode")
	}
	rep, err := Fig4(core.RankConfig{Classes: 3, PerClass: 6, Epochs: 1, DepthDiv: 48, Seed: 9, MaxCandidates: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Candidates != 3 {
		t.Fatalf("trained %d candidates", rep.Candidates)
	}
	if !strings.Contains(rep.String(), "Figure 4") {
		t.Fatal("report formatting broken")
	}
}

func TestAblationsRunAndReport(t *testing.T) {
	rows, err := AblationTimingSweep("lenet", []float64{1.15, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Candidates > rows[1].Candidates {
		t.Fatalf("tolerance sweep not monotone: %+v", rows)
	}

	bias, err := AblationBiasInDRAM("lenet")
	if err != nil {
		t.Fatal(err)
	}
	if bias.BiasInDRAM > bias.PaperModel {
		t.Fatalf("bias in DRAM should not weaken the attack: %+v", bias)
	}

	or, err := AblationORAM("lenet")
	if err != nil {
		t.Fatal(err)
	}
	if !or.AttackDefeated || or.Overhead < 10 {
		t.Fatalf("ORAM report implausible: %+v", or)
	}

	pt, err := AblationZeroPruneTraffic([]float32{0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if pt[1].Sparsity <= pt[0].Sparsity {
		t.Fatal("higher threshold must increase sparsity")
	}
	if pt[1].TrafficFactor >= pt[0].TrafficFactor {
		t.Fatal("more sparsity must cut pruned traffic")
	}

	kb, err := AblationKernelBound("lenet", []int{7, 13})
	if err != nil {
		t.Fatal(err)
	}
	if kb[0].Candidates > kb[1].Candidates {
		t.Fatalf("kernel bound sweep not monotone: %+v", kb)
	}
}

func TestAblationPadDefense(t *testing.T) {
	rep, err := AblationPadDefense()
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountsLeak {
		t.Fatal("padded write volumes still leak")
	}
	if rep.PaddedBlocks <= rep.DenseBlocks {
		t.Fatalf("padding should cost more than dense: %+v", rep)
	}
}

func TestAblationDataflow(t *testing.T) {
	rows, err := AblationDataflow("convnet")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.TruthFound {
			t.Fatalf("%s: truth lost", r.Dataflow)
		}
	}
	if rows[0].Candidates != rows[1].Candidates || rows[1].Candidates != rows[2].Candidates {
		t.Logf("note: candidate counts differ across dataflows: %+v", rows)
	}
}

func TestDataflowMatrixSingleVictim(t *testing.T) {
	rows, err := DataflowMatrix([]string{"lenet"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.Detected != r.Dataflow {
			t.Errorf("%s/%s detected as %s", r.Network, r.Dataflow, r.Detected)
		}
		if !r.TruthFound {
			t.Errorf("%s/%s: truth lost", r.Network, r.Dataflow)
		}
	}
	md := FormatDataflowMatrix(rows)
	if !strings.Contains(md, "row-stationary") || !strings.Contains(md, "Detection: 3/3") {
		t.Fatalf("matrix formatting broken:\n%s", md)
	}
}

func TestTable3Extended(t *testing.T) {
	rows, err := Table3Extended()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if !r.TruthFound {
			t.Errorf("%s: truth lost", r.Network)
		}
	}
}

func TestTable4AndFig5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy in -short mode")
	}
	rep, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.TruthFound || rep.Combinations == 0 {
		t.Fatalf("table4: %+v", rep)
	}
	if !strings.Contains(rep.String(), "Table 4") {
		t.Fatal("table4 formatting broken")
	}

	f5, err := Fig5(core.RankConfig{Classes: 4, PerClass: 6, Epochs: 1, DepthDiv: 32, TopK: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if f5.Candidates == 0 || !strings.Contains(f5.String(), "Figure 5") {
		t.Fatalf("fig5: %+v", f5)
	}
}

func TestNoiseAndDataflowFormatting(t *testing.T) {
	tn, err := AblationTimingNoise("lenet", []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTimingNoise("lenet", tn)
	if !strings.Contains(out, "jitter") {
		t.Fatal("noise formatting broken")
	}
	for _, r := range tn {
		if !r.TruthFound {
			t.Errorf("jitter %.2f lost the truth", r.Jitter)
		}
	}
	df, err := AblationDataflow("lenet")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(FormatDataflow("lenet", df), "weight-stationary") {
		t.Fatal("dataflow formatting broken")
	}
	bs, _ := AblationBlockSize("lenet", []int{4})
	if !strings.Contains(FormatBlockSize("lenet", bs), "blockB") {
		t.Fatal("block formatting broken")
	}
	kb, _ := AblationKernelBound("lenet", []int{13})
	if !strings.Contains(FormatKernelBound("lenet", kb), "maxConvF") {
		t.Fatal("kernel formatting broken")
	}
}
