//go:build !race

package accel

const raceEnabled = false
