package accel

import (
	"bytes"
	"fmt"
	"testing"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// TestRunPrefixIsByteExactPrefix: for every stop layer, RunPrefix must
// record exactly the accesses a full Run records up to that layer — the
// serialized prefix trace equals the serialized truncation of the full
// trace, and the executed layers' activations, counts and cycles match.
// Exercised over conv/FC (LeNet), concat (SqueezeNet fire) and eltwise
// (ResNetMini) paths, with pruning and jitter on and off.
func TestRunPrefixIsByteExactPrefix(t *testing.T) {
	nets := []*nn.Network{nn.LeNet(10), nn.SqueezeNet(10, 8), nn.ResNetMini(10, 8)}
	cfgs := []Config{
		{},
		{ZeroPrune: true},
		{ZeroPrune: true, CycleJitter: 0.05, NoiseSeed: 9},
	}
	for _, net := range nets {
		net.InitWeights(5)
		for ci, cfg := range cfgs {
			sim, err := New(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			x := randInput(net, 77)
			full, err := sim.Run(x) // snapshot owns its buffers
			if err != nil {
				t.Fatal(err)
			}
			fullBytes := traceBytes(t, full.Trace)

			ses := sim.NewSession()
			// Warm the session with a full run so prefix runs reuse a dirty
			// arena — stale downstream buffers must not leak into the prefix.
			if _, err := ses.Run(randInput(net, 78)); err != nil {
				t.Fatal(err)
			}
			for last := 0; last < len(net.Specs); last++ {
				label := fmt.Sprintf("%s/cfg%d/last%d", net.Name, ci, last)
				res, err := ses.RunPrefix(x, last)
				if err != nil {
					t.Fatal(err)
				}
				n := len(res.Trace.Accesses)
				if want := full.LayerAccessRange[last][1]; n != want {
					t.Fatalf("%s: prefix records %d accesses, full run's layer range ends at %d", label, n, want)
				}
				trunc := &memtrace.Trace{BlockBytes: full.Trace.BlockBytes, Accesses: full.Trace.Accesses[:n]}
				if !bytes.Equal(traceBytes(t, res.Trace), traceBytes(t, trunc)) {
					t.Fatalf("%s: prefix trace is not a byte-exact prefix of the full trace", label)
				}
				for i := 0; i <= last; i++ {
					if res.LayerAccessRange[i] != full.LayerAccessRange[i] {
						t.Fatalf("%s: layer %d access range %v, full run %v", label, i,
							res.LayerAccessRange[i], full.LayerAccessRange[i])
					}
					if res.LayerCycles[i] != full.LayerCycles[i] || res.LayerStartCycle[i] != full.LayerStartCycle[i] {
						t.Fatalf("%s: layer %d cycles diverge", label, i)
					}
					for j := range full.Acts[i] {
						if res.Acts[i][j] != full.Acts[i][j] {
							t.Fatalf("%s: act[%d][%d] = %v, want %v", label, i, j, res.Acts[i][j], full.Acts[i][j])
						}
					}
					for c := range full.NZCounts[i] {
						if res.NZCounts[i][c] != full.NZCounts[i][c] {
							t.Fatalf("%s: nz[%d][%d] = %d, want %d", label, i, c, res.NZCounts[i][c], full.NZCounts[i][c])
						}
					}
				}
				for i := last + 1; i < len(net.Specs); i++ {
					if lo, hi := res.LayerAccessRange[i][0], res.LayerAccessRange[i][1]; lo != n || hi != n {
						t.Fatalf("%s: skipped layer %d has range [%d,%d], want empty at %d", label, i, lo, hi, n)
					}
				}
			}
			// The session still produces full-run traces after prefix runs.
			after, err := ses.Run(x)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(traceBytes(t, after.Trace), fullBytes) {
				t.Fatalf("%s/cfg%d: full run after prefix runs diverged", net.Name, ci)
			}
		}
	}
}

// TestLayerAccessRangePartitionsTrace: a full run's per-layer ranges tile
// the trace exactly — contiguous, in order, covering every access — so
// range-scoped consumers see each burst exactly once.
func TestLayerAccessRangePartitionsTrace(t *testing.T) {
	net := nn.SqueezeNet(10, 8)
	net.InitWeights(5)
	for _, cfg := range []Config{{}, {ZeroPrune: true}} {
		sim, err := New(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(randInput(net, 3))
		if err != nil {
			t.Fatal(err)
		}
		prev := 0
		for i, r := range res.LayerAccessRange {
			if r[0] != prev || r[1] < r[0] {
				t.Fatalf("layer %d range %v does not continue from %d", i, r, prev)
			}
			prev = r[1]
		}
		if prev != len(res.Trace.Accesses) {
			t.Fatalf("ranges end at %d, trace has %d accesses", prev, len(res.Trace.Accesses))
		}
	}
}

func TestRunPrefixRejectsOutOfRange(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ses := sim.NewSession()
	if _, err := ses.RunPrefix(randInput(net, 1), -1); err == nil {
		t.Fatal("negative stop layer must error")
	}
	if _, err := ses.RunPrefix(randInput(net, 1), len(net.Specs)); err == nil {
		t.Fatal("stop layer past the network must error")
	}
}
