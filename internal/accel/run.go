package accel

import (
	"fmt"
	"math/rand"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
	"cnnrev/internal/tensor"
)

// session is the per-run simulation arena: every buffer one inference needs,
// sized once from the network shapes and reused across runs. Simulators keep
// a sync.Pool of sessions, so both the one-shot Run/RunMany entry points and
// long-lived Session handles reach a zero-allocation steady state — the §4
// weight attack drives tens of thousands of oracle inferences through here,
// and per-query arena churn used to dominate its wall-clock.
type session struct {
	rec   *memtrace.Recorder
	trace memtrace.Trace // reused zero-copy trace view for Session.Run
	res   Result         // reused result header for Session.Run
	cycle uint64
	rng   *rand.Rand // tile-latency jitter source (nil = no jitter)
	x     []float32  // current input (caller-owned, valid during one run)

	acts [][]float32 // per-layer output activations
	// accRange[i] brackets layer i's records in the recorder: its trace
	// entries are Accesses[accRange[i][0]:accRange[i][1]]. Layers a prefix
	// run skipped carry an empty range at the trace end.
	accRange [][2]int
	// chanBytes[i][c] is the stored byte size of channel c of layer i's
	// output when pruned[i] (compressed); dense sizes live in the
	// simulator's immutable tables.
	chanBytes [][]int
	pruned    []bool
	nz        [][]int
	// chanStream[i][c] is the next write offset into channel c's compressed
	// stream when pruning.
	chanStream [][]uint64
	layerStart []uint64
	layerCyc   []uint64

	cols        []float32 // im2col scratch for the largest conv layer
	convScratch []float32 // pre-pool conv output scratch (pooled layers)
	order       []int     // eltwise producer-order scratch
}

// newSession allocates a fully-sized arena for one concurrent inference.
func (s *Simulator) newSession() *session {
	n := s.net
	se := &session{
		rec:        memtrace.NewRecorder(s.cfg.BlockBytes),
		acts:       make([][]float32, len(n.Specs)),
		accRange:   make([][2]int, len(n.Specs)),
		chanBytes:  make([][]int, len(n.Specs)),
		pruned:     make([]bool, len(n.Specs)),
		nz:         make([][]int, len(n.Specs)),
		chanStream: make([][]uint64, len(n.Specs)),
		layerStart: make([]uint64, len(n.Specs)),
		layerCyc:   make([]uint64, len(n.Specs)),
	}
	se.rec.Reserve(s.estAccesses)
	maxCols, maxPooledConv, maxEltIn := 0, 0, 0
	for i := range n.Specs {
		spec := &n.Specs[i]
		se.acts[i] = make([]float32, n.Shapes[i].Len())
		se.nz[i] = make([]int, n.Shapes[i].C)
		se.chanBytes[i] = make([]int, n.Shapes[i].C)
		se.chanStream[i] = make([]uint64, n.Shapes[i].C)
		switch spec.Kind {
		case nn.KindConv:
			in := n.InShapes[i][0]
			c := spec.ConvOut(in)
			if k := in.C * spec.F * spec.F * c.H * c.W; k > maxCols {
				maxCols = k
			}
			if spec.Pool != nn.PoolNone && c.Len() > maxPooledConv {
				maxPooledConv = c.Len()
			}
		case nn.KindEltwise:
			if len(spec.Inputs) > maxEltIn {
				maxEltIn = len(spec.Inputs)
			}
		}
	}
	se.cols = make([]float32, maxCols)
	se.convScratch = make([]float32, maxPooledConv)
	se.order = make([]int, maxEltIn)
	if s.cfg.CycleJitter > 0 {
		se.rng = rand.New(rand.NewSource(s.cfg.NoiseSeed))
	}
	return se
}

// acquire takes an arena from the simulator's pool (allocating on first use
// or after GC pressure drained the pool).
func (s *Simulator) acquire() *session {
	if se, ok := s.sessions.Get().(*session); ok {
		return se
	}
	return s.newSession()
}

func (s *Simulator) release(se *session) {
	se.x = nil
	s.sessions.Put(se)
}

// resetRun prepares the arena for one inference starting at startCycle.
func (s *Simulator) resetRun(se *session, x []float32, startCycle uint64) {
	se.x = x
	se.cycle = startCycle
	for i := range se.pruned {
		se.pruned[i] = false
	}
}

// reseedJitter restarts the jitter stream for a fresh observation window so
// equal-seed runs stay identical.
func (se *session) reseedJitter(cfg *Config) {
	if se.rng != nil {
		se.rng.Seed(cfg.NoiseSeed)
	}
}

// Run performs one inference, returning the functional outputs and the
// observed trace. The returned Result owns its buffers; for allocation-free
// repeated inference use NewSession.
func (s *Simulator) Run(x []float32) (*Result, error) {
	se := s.acquire()
	defer s.release(se)
	se.rec.Reset()
	se.reseedJitter(&s.cfg)
	if _, err := s.runOne(se, x, 0); err != nil {
		return nil, err
	}
	res := s.snapshotResult(se)
	res.Trace = s.snapshotTrace(se)
	return res, nil
}

// RunMany performs several back-to-back inferences on the same device —
// what an adversary watching a serving accelerator observes — returning the
// per-inference functional results and one continuous trace. All inferences
// share one arena; the per-run outputs are snapshotted so each Result stays
// valid after the arena is reused.
func (s *Simulator) RunMany(xs [][]float32) ([]*Result, *memtrace.Trace, error) {
	se := s.acquire()
	defer s.release(se)
	se.rec.Reset()
	se.reseedJitter(&s.cfg)
	var results []*Result
	cycle := uint64(0)
	for _, x := range xs {
		end, err := s.runOne(se, x, cycle)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, s.snapshotResult(se))
		cycle = end
	}
	tr := s.snapshotTrace(se)
	for _, r := range results {
		r.Trace = tr
	}
	return results, tr, nil
}

// snapshotResult deep-copies the arena's functional outputs into a fresh
// Result (Trace unset).
func (s *Simulator) snapshotResult(se *session) *Result {
	n := s.net
	last := len(n.Specs) - 1
	res := &Result{
		Logits:           append([]float32(nil), se.acts[last]...),
		Acts:             make([][]float32, len(n.Specs)),
		LayerCycles:      append([]uint64(nil), se.layerCyc...),
		LayerStartCycle:  append([]uint64(nil), se.layerStart...),
		NZCounts:         make([][]int, len(n.Specs)),
		LayerAccessRange: append([][2]int(nil), se.accRange...),
	}
	for i := range n.Specs {
		res.Acts[i] = append([]float32(nil), se.acts[i]...)
		res.NZCounts[i] = append([]int(nil), se.nz[i]...)
	}
	return res
}

// snapshotTrace copies the arena's recorded trace so it survives arena reuse.
func (s *Simulator) snapshotTrace(se *session) *memtrace.Trace {
	var view memtrace.Trace
	se.rec.TraceInto(&view)
	return &memtrace.Trace{
		BlockBytes: view.BlockBytes,
		Accesses:   append([]memtrace.Access(nil), view.Accesses...),
	}
}

// Session is a reusable inference handle bound to one Simulator. Run fills
// and returns a Result whose buffers — activations, counts, and the Trace —
// are owned by the session and valid only until the next Run on the same
// session, which makes steady-state inference allocation-free. A Session is
// not safe for concurrent use, but distinct Sessions of one Simulator are:
// the oracle attacks issue concurrent queries by giving each goroutine its
// own session.
type Session struct {
	sim *Simulator
	se  *session
}

// NewSession allocates an independent run context sized for the network.
func (s *Simulator) NewSession() *Session {
	return &Session{sim: s, se: s.newSession()}
}

// Run performs one inference reusing the session's arena. The returned
// Result (including its Trace) aliases session memory: copy anything that
// must survive the next call.
func (ss *Session) Run(x []float32) (*Result, error) {
	return ss.RunPrefix(x, len(ss.sim.net.Specs)-1)
}

// RunPrefix performs one inference truncated after lastLayer: execution,
// cycle accounting and trace recording all stop once layer lastLayer has
// run, so the returned trace is a byte-exact prefix of what Run would have
// recorded for the same input (equal-seed jitter included) at a cost
// proportional to the prefix alone. The §4 weight attack targets one layer
// per query and uses this to stop paying for the downstream network.
//
// The returned Result aliases session memory like Run's; Logits is the
// stop layer's activation, and Acts/NZCounts/LayerCycles entries past
// lastLayer are stale from the previous run (their LayerAccessRange entries
// are empty).
func (ss *Session) RunPrefix(x []float32, lastLayer int) (*Result, error) {
	s, se := ss.sim, ss.se
	se.rec.Reset()
	se.reseedJitter(&s.cfg)
	if _, err := s.runLayers(se, x, 0, lastLayer); err != nil {
		return nil, err
	}
	res := &se.res
	res.Logits = se.acts[lastLayer]
	res.Acts = se.acts
	res.LayerCycles = se.layerCyc
	res.LayerStartCycle = se.layerStart
	res.NZCounts = se.nz
	res.LayerAccessRange = se.accRange
	se.rec.TraceInto(&se.trace)
	res.Trace = &se.trace
	return res, nil
}

// runOne executes one inference against the arena's recorder, starting at
// the given cycle, and returns the end cycle. Layer buffers are fully
// overwritten in execution order, so arena reuse leaks no state between
// runs; the per-run tests pin this by comparing reused-arena traces against
// fresh-simulator traces byte for byte.
func (s *Simulator) runOne(se *session, x []float32, startCycle uint64) (uint64, error) {
	return s.runLayers(se, x, startCycle, len(s.net.Specs)-1)
}

// runLayers executes layers 0..last against the arena's recorder. Because
// layers execute strictly in order — the cycle counter, the jitter stream
// and the recorder all advance layer by layer — stopping after layer `last`
// records exactly the same accesses a full run would have recorded up to
// that point: a prefix run's trace is a byte-exact prefix of the full run's.
// The per-layer record ranges in se.accRange are maintained as each layer
// runs; layers past `last` get an empty range at the trace end.
func (s *Simulator) runLayers(se *session, x []float32, startCycle uint64, last int) (uint64, error) {
	if len(x) != s.net.Input.Len() {
		return 0, fmt.Errorf("accel: input has %d elements, want %d", len(x), s.net.Input.Len())
	}
	n := s.net
	if last < 0 || last >= len(n.Specs) {
		return 0, fmt.Errorf("accel: prefix layer %d out of range [0,%d)", last, len(n.Specs))
	}
	s.resetRun(se, x, startCycle)
	for i := 0; i <= last; i++ {
		start := se.cycle
		se.layerStart[i] = start
		se.accRange[i][0] = se.rec.Len()
		switch n.Specs[i].Kind {
		case nn.KindConv:
			s.simConv(i, se)
		case nn.KindFC:
			s.simFC(i, se)
		case nn.KindConcat:
			s.simConcat(i, se)
		case nn.KindEltwise:
			s.simEltwise(i, se)
		}
		se.accRange[i][1] = se.rec.Len()
		se.layerCyc[i] = se.cycle - start
	}
	for i := last + 1; i < len(n.Specs); i++ {
		se.accRange[i][0] = se.rec.Len()
		se.accRange[i][1] = se.rec.Len()
		se.layerStart[i] = se.cycle
		se.layerCyc[i] = 0
	}
	return se.cycle, nil
}

// inputAct returns the activation buffer feeding input j of layer i.
func (se *session) inputAct(n *nn.Network, i, j int) []float32 {
	ref := n.Specs[i].Inputs[j]
	if ref == nn.InputRef {
		return se.x
	}
	return se.acts[ref]
}

// inputChanBytes returns the per-channel stored sizes of the region feeding
// input j of layer i: the producer's compressed sizes when it wrote pruned,
// else the simulator's immutable dense tables.
func (s *Simulator) inputChanBytes(se *session, i, j int) []int {
	ref := s.net.Specs[i].Inputs[j]
	if ref == nn.InputRef {
		return s.inDenseCB
	}
	if se.pruned[ref] {
		return se.chanBytes[ref]
	}
	return s.denseCB[ref]
}

// prunedInput reports whether the region feeding input j of layer i holds
// compressed (pruned) data.
func (s *Simulator) prunedInput(se *session, i, j int) bool {
	ref := s.net.Specs[i].Inputs[j]
	return ref != nn.InputRef && se.pruned[ref]
}

// jitter scales a chunk latency by a factor uniform in [1−J, 1+J].
func (s *Simulator) jitter(se *session, cycles uint64) uint64 {
	if se.rng == nil {
		return cycles
	}
	f := 1 + (se.rng.Float64()*2-1)*s.cfg.CycleJitter
	if f < 0 {
		f = 0
	}
	return uint64(float64(cycles) * f)
}

// memCycles converts a byte volume to DRAM cycles.
func (s *Simulator) memCycles(bytes int) uint64 {
	return uint64((bytes + s.cfg.MemBytesPerCycle - 1) / s.cfg.MemBytesPerCycle)
}

// computeCycles converts a MAC count to PE-array cycles.
func (s *Simulator) computeCycles(macs int64) uint64 {
	p := int64(s.cfg.PEs)
	return uint64((macs + p - 1) / p)
}

// activate applies the configured activation (threshold ReLU) in place.
func (s *Simulator) activate(buf []float32) {
	tensor.ThresholdReLUForward(buf, buf, s.cfg.Threshold)
}

// applyActPool runs the fused activation+pooling stages of a conv layer in
// the configured order. For unpooled layers convOut must alias out (the
// activation happens in place); for pooled layers convOut is the pre-pool
// scratch and out receives the pooled result.
func (s *Simulator) applyActPool(spec *nn.LayerSpec, convOut []float32, convShape nn.Shape, out []float32) {
	if spec.Pool == nn.PoolNone {
		if spec.ReLU {
			s.activate(out)
		}
		return
	}
	doPool := func(in []float32) {
		p := tensor.Pool2D{F: spec.PoolF, S: spec.PoolS, P: spec.PoolP, Ceil: false}
		if spec.Pool == nn.PoolMax {
			p.MaxForward(in, convShape.C, convShape.H, convShape.W, out, nil)
		} else {
			p.AvgForward(in, convShape.C, convShape.H, convShape.W, out)
		}
	}
	if s.cfg.PoolBeforeActivation {
		doPool(convOut)
		if spec.ReLU {
			s.activate(out)
		}
		return
	}
	if spec.ReLU {
		s.activate(convOut)
	}
	doPool(convOut)
}

// recordPrunedWrite emits the compressed write burst for nz non-zero values
// appended to channel c's stream in layer li's output slot, and returns the
// byte volume written.
func (s *Simulator) recordPrunedWrite(se *session, li, c, nz int, planeBytes uint64) int {
	if nz == 0 {
		return 0
	}
	bytes := nz * s.cfg.PruneBytesPerNZ
	base := s.lay.Fmaps[li].Base + uint64(c)*planeBytes + se.chanStream[li][c]
	se.rec.RecordBytes(se.cycle, base, bytes, memtrace.Write)
	se.chanStream[li][c] += uint64(bytes)
	return bytes
}

// countNZRows counts non-zero elements of channel c, rows [r0,r1), in a
// C×H×W buffer.
func countNZRows(buf []float32, h, w, c, r0, r1 int) int {
	nz := 0
	base := c * h * w
	for _, v := range buf[base+r0*w : base+r1*w] {
		if v != 0 {
			nz++
		}
	}
	return nz
}

// simConv computes a conv layer functionally and emits its tiled trace.
func (s *Simulator) simConv(li int, se *session) {
	n := s.net
	spec := &n.Specs[li]
	in := n.InShapes[li][0]
	conv := tensor.Conv2D{InC: in.C, OutC: spec.OutC, F: spec.F, S: spec.S, P: spec.P}
	convShape := spec.ConvOut(in)
	outShape := n.Shapes[li]

	out := se.acts[li]
	convOut := out // unpooled: conv and layer output share the buffer
	if spec.Pool != nn.PoolNone {
		convOut = se.convScratch[:convShape.Len()]
	}
	conv.Forward(se.inputAct(n, li, 0), in.H, in.W, n.Params[li].W.Data, n.Params[li].B.Data, convOut, se.cols)
	s.applyActPool(spec, convOut, convShape, out)

	s.emitConvTrace(li, se, in, convShape, outShape, conv.InC*spec.F*spec.F)
	s.finishFmap(li, se, outShape, s.cfg.ZeroPrune)
}

// finishFmap records per-channel non-zero statistics and, for layers whose
// output was written compressed, the stored channel sizes. With
// PadPrunedWrites, compressed streams are padded with dummy transactions up
// to the dense-equivalent worst case, hiding the §4 count leak (at a cost
// exceeding unpruned traffic).
func (s *Simulator) finishFmap(li int, se *session, outShape nn.Shape, pruned bool) {
	out := se.acts[li]
	nz := se.nz[li]
	for c := 0; c < outShape.C; c++ {
		nz[c] = countNZRows(out, outShape.H, outShape.W, c, 0, outShape.H)
	}
	if !pruned {
		return
	}
	cb := se.chanBytes[li]
	for c := range cb {
		cb[c] = nz[c] * s.cfg.PruneBytesPerNZ
	}
	if s.cfg.PadPrunedWrites {
		stride := s.fmapPlaneStride(outShape)
		for c := range cb {
			pad := int(stride) - cb[c]
			if pad > 0 {
				base := s.lay.Fmaps[li].Base + uint64(c)*stride + uint64(cb[c])
				se.rec.RecordBytes(se.cycle, base, pad, memtrace.Write)
				se.cycle += s.jitter(se, s.memCycles(pad))
			}
			cb[c] = int(stride)
		}
	}
	se.pruned[li] = true
}

// convTiling derives the conv loop-nest geometry — the output-channel tile
// and the output-row band height — from the buffer sizes. Shared by the
// trace emitter and the transaction-count estimator so Recorder reservations
// match what a run records.
func (s *Simulator) convTiling(li int, in, convShape, outShape nn.Shape, weightsPerOC int, pruneIn bool) (bandRows, ocTile int) {
	spec := &s.net.Specs[li]
	cfg := &s.cfg
	elem := cfg.ElemBytes

	ocTile = cfg.WBufBytes / ((weightsPerOC + 1) * elem)
	if ocTile < 1 {
		ocTile = 1
	}
	if ocTile > spec.OutC {
		ocTile = spec.OutC
	}

	// Choose a band height (in output rows) so the OFM band fits the OFM
	// buffer and one channel's IFM band fits the IFM buffer.
	bandRows = outShape.H
	for bandRows > 1 {
		i0, i1 := s.ifmRowsFor(spec, in, convShape, bandRows, 0)
		ofmOK := bandRows*outShape.W*ocTile*elem <= cfg.OFMBufBytes
		ifmOK := (i1-i0)*in.W*elem <= cfg.IFMBufBytes
		if ofmOK && ifmOK {
			break
		}
		bandRows--
	}
	if pruneIn {
		// Compressed IFM streams are not row-addressable: stream the whole
		// map once per filter tile instead of banding.
		bandRows = outShape.H
	}
	return bandRows, ocTile
}

// ifmRowsFor maps an output-row band [p0, p0+bh) back to the input rows it
// consumes through the (optional) pool and conv windows.
func (s *Simulator) ifmRowsFor(spec *nn.LayerSpec, in, convShape nn.Shape, bh, p0 int) (i0, i1 int) {
	c0, c1 := p0, p0+bh // conv rows
	if spec.Pool != nn.PoolNone {
		c0 = p0*spec.PoolS - spec.PoolP
		c1 = (p0+bh-1)*spec.PoolS - spec.PoolP + spec.PoolF
	}
	if c0 < 0 {
		c0 = 0
	}
	if c1 > convShape.H {
		c1 = convShape.H
	}
	i0 = c0*spec.S - spec.P
	i1 = (c1-1)*spec.S - spec.P + spec.F
	if i0 < 0 {
		i0 = 0
	}
	if i1 > in.H {
		i1 = in.H
	}
	return i0, i1
}

// emitConvTrace walks the tiling loop nest of a convolution, emitting reads
// of IFM and filter tiles, OFM write bursts and the cycle cost of each tile.
func (s *Simulator) emitConvTrace(li int, se *session, in, convShape, outShape nn.Shape, weightsPerOC int) {
	n := s.net
	spec := &n.Specs[li]
	cfg := &s.cfg
	elem := cfg.ElemBytes

	pruneIn := s.prunedInput(se, li, 0)
	inCB := s.inputChanBytes(se, li, 0)
	inReg, _ := s.inputRegion(li, 0)
	wReg := s.lay.Weights[li]
	outReg := s.lay.Fmaps[li]
	inStride := s.inputPlaneStride(li, 0)
	inDense := inStride == uint64(in.H*in.W*elem)
	outStride := s.fmapPlaneStride(outShape)
	outDense := outStride == uint64(outShape.H*outShape.W*elem)
	if cfg.ZeroPrune {
		cs := se.chanStream[li]
		for c := range cs {
			cs[c] = 0
		}
	}

	bandRows, ocTile := s.convTiling(li, in, convShape, outShape, weightsPerOC, pruneIn)

	// Shared tile helpers, composed per the configured dataflow.
	readIFM := func(p0, p1 int) int {
		i0, i1 := s.ifmRowsFor(spec, in, convShape, p1-p0, p0)
		memBytes := 0
		if pruneIn {
			// Compressed channels cannot be row-addressed: stream whole
			// channels.
			for c := 0; c < in.C; c++ {
				if inCB[c] == 0 {
					continue
				}
				se.rec.RecordBytes(se.cycle, inReg.Base+uint64(c)*inStride, inCB[c], memtrace.Read)
				memBytes += inCB[c]
			}
			return memBytes
		}
		rowBytes := (i1 - i0) * in.W * elem
		if i0 == 0 && i1 == in.H && inDense {
			// Whole channels are contiguous: one burst.
			se.rec.RecordBytes(se.cycle, inReg.Base, in.C*rowBytes, memtrace.Read)
			return in.C * rowBytes
		}
		for c := 0; c < in.C; c++ {
			base := inReg.Base + uint64(c)*inStride + uint64(i0*in.W*elem)
			se.rec.RecordBytes(se.cycle, base, rowBytes, memtrace.Read)
			memBytes += rowBytes
		}
		return memBytes
	}
	readIFMRows := func(r0, r1 int) int {
		// Row-granular IFM read: only rows [r0, r1), every channel.
		rowBytes := (r1 - r0) * in.W * elem
		if r0 == 0 && r1 == in.H && inDense {
			se.rec.RecordBytes(se.cycle, inReg.Base, in.C*rowBytes, memtrace.Read)
			return in.C * rowBytes
		}
		memBytes := 0
		for c := 0; c < in.C; c++ {
			base := inReg.Base + uint64(c)*inStride + uint64(r0*in.W*elem)
			se.rec.RecordBytes(se.cycle, base, rowBytes, memtrace.Read)
			memBytes += rowBytes
		}
		return memBytes
	}
	readWeights := func(oc0, oc1 int) int {
		wBytes := (oc1 - oc0) * weightsPerOC * elem
		se.rec.RecordBytes(se.cycle, wReg.Base+uint64(oc0*weightsPerOC*elem), wBytes, memtrace.Read)
		if cfg.BiasInDRAM {
			biasBase := wReg.Base + uint64(spec.OutC*weightsPerOC*elem)
			bBytes := (oc1 - oc0) * elem
			se.rec.RecordBytes(se.cycle, biasBase+uint64(oc0*elem), bBytes, memtrace.Read)
			wBytes += bBytes
		}
		return wBytes
	}
	convRows := func(p0, p1 int) (c0, c1 int) {
		c0, c1 = p0, p1
		if spec.Pool != nn.PoolNone {
			c0 = p0*spec.PoolS - spec.PoolP
			c1 = (p1-1)*spec.PoolS - spec.PoolP + spec.PoolF
			if c0 < 0 {
				c0 = 0
			}
			if c1 > convShape.H {
				c1 = convShape.H
			}
		}
		return c0, c1
	}
	computeRows := func(c0, c1, oc0, oc1, memBytes int) {
		macs := int64(c1-c0) * int64(convShape.W) * int64(spec.F) * int64(spec.F) * int64(in.C) * int64(oc1-oc0)
		cc := s.computeCycles(macs)
		if mc := s.memCycles(memBytes); mc > cc {
			cc = mc
		}
		se.cycle += s.jitter(se, cc+cfg.TileOverhead)
	}
	compute := func(p0, p1, oc0, oc1, memBytes int) {
		c0, c1 := convRows(p0, p1)
		computeRows(c0, c1, oc0, oc1, memBytes)
	}
	writeOFM := func(p0, p1, oc0, oc1 int) {
		// OFM band write (once, post activation+pool).
		if cfg.ZeroPrune {
			wb := 0
			for c := oc0; c < oc1; c++ {
				nz := countNZRows(se.acts[li], outShape.H, outShape.W, c, p0, p1)
				wb += s.recordPrunedWrite(se, li, c, nz, outStride)
			}
			se.cycle += s.jitter(se, s.memCycles(wb))
			return
		}
		rowBytes := (p1 - p0) * outShape.W * elem
		if p0 == 0 && p1 == outShape.H && outDense {
			se.rec.RecordBytes(se.cycle, outReg.Base+uint64(oc0)*outStride, (oc1-oc0)*rowBytes, memtrace.Write)
		} else {
			for c := oc0; c < oc1; c++ {
				base := outReg.Base + uint64(c)*outStride + uint64(p0*outShape.W*elem)
				se.rec.RecordBytes(se.cycle, base, rowBytes, memtrace.Write)
			}
		}
		se.cycle += s.jitter(se, s.memCycles((oc1-oc0)*rowBytes))
	}

	switch cfg.Dataflow {
	case WeightStationary:
		// Each filter tile is pinned on chip while the IFM streams past it;
		// filters are read exactly once.
		for oc0 := 0; oc0 < spec.OutC; oc0 += ocTile {
			oc1 := minInt(oc0+ocTile, spec.OutC)
			wb := readWeights(oc0, oc1)
			for p0 := 0; p0 < outShape.H; p0 += bandRows {
				p1 := minInt(p0+bandRows, outShape.H)
				mem := readIFM(p0, p1)
				if p0 == 0 {
					mem += wb
				}
				compute(p0, p1, oc0, oc1, mem)
				writeOFM(p0, p1, oc0, oc1)
			}
		}
	case RowStationary:
		// Filters stream on chip exactly once (ascending tile preamble) and
		// partial sums are retained in the PE array, so the IFM is also read
		// exactly once: each output row pulls in only its newly-needed input
		// rows and retires immediately across every output channel. The
		// per-row channel-interleaved write pattern after a weight-only
		// preamble is this dataflow's trace signature.
		wb := 0
		for oc0 := 0; oc0 < spec.OutC; oc0 += ocTile {
			oc1 := minInt(oc0+ocTile, spec.OutC)
			wb += readWeights(oc0, oc1)
		}
		if pruneIn {
			// Compressed IFM streams are not row-addressable: stream the
			// whole map once after the filter preamble.
			wb += readIFM(0, outShape.H)
		}
		cursor, ccur := 0, 0
		for p := 0; p < outShape.H; p++ {
			mem := 0
			if !pruneIn {
				_, i1 := s.ifmRowsFor(spec, in, convShape, 1, p)
				if i1 > cursor {
					mem = readIFMRows(cursor, i1)
					cursor = i1
				}
			}
			if p == 0 {
				mem += wb
			}
			// Pool windows overlap in conv rows; partial sums held in the
			// array mean each conv row's MACs are paid exactly once.
			c0, c1 := convRows(p, p+1)
			if c0 < ccur {
				c0 = ccur
			}
			if c1 < c0 {
				c1 = c0
			}
			ccur = c1
			computeRows(c0, c1, 0, spec.OutC, mem)
			writeOFM(p, p+1, 0, spec.OutC)
		}
	default: // OutputStationary
		// Each output band is pinned on chip while the filter tiles stream
		// past it.
		for p0 := 0; p0 < outShape.H; p0 += bandRows {
			p1 := minInt(p0+bandRows, outShape.H)
			for oc0 := 0; oc0 < spec.OutC; oc0 += ocTile {
				oc1 := minInt(oc0+ocTile, spec.OutC)
				mem := readIFM(p0, p1) + readWeights(oc0, oc1)
				compute(p0, p1, oc0, oc1, mem)
				writeOFM(p0, p1, oc0, oc1)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// simFC computes a fully-connected layer and emits its trace: the IFM is
// read once (it fits on chip), weight rows stream in output tiles, and the
// output vector is written once.
func (s *Simulator) simFC(li int, se *session) {
	n := s.net
	spec := &n.Specs[li]
	in := n.InShapes[li][0]
	cfg := &s.cfg
	elem := cfg.ElemBytes

	l := tensor.Linear{In: in.Len(), Out: spec.OutC}
	out := se.acts[li]
	l.Forward(se.inputAct(n, li, 0), n.Params[li].W.Data, n.Params[li].B.Data, out)
	if spec.ReLU {
		s.activate(out)
	}

	inReg, inShape := s.inputRegion(li, 0)
	inCB := s.inputChanBytes(se, li, 0)
	pruneIn := s.prunedInput(se, li, 0)
	inStride := s.inputPlaneStride(li, 0)
	inDense := inStride == uint64(inShape.H*inShape.W*elem)
	wReg := s.lay.Weights[li]
	outShape := n.Shapes[li]
	outStride := s.fmapPlaneStride(outShape)
	if cfg.ZeroPrune {
		cs := se.chanStream[li]
		for c := range cs {
			cs[c] = 0
		}
	}

	// Read the whole IFM once.
	memBytes := 0
	if pruneIn || !inDense {
		for c := 0; c < inShape.C; c++ {
			if inCB[c] == 0 {
				continue
			}
			se.rec.RecordBytes(se.cycle, inReg.Base+uint64(c)*inStride, inCB[c], memtrace.Read)
			memBytes += inCB[c]
		}
	} else {
		se.rec.RecordBytes(se.cycle, inReg.Base, in.Len()*elem, memtrace.Read)
		memBytes = in.Len() * elem
	}
	se.cycle += s.jitter(se, s.memCycles(memBytes)+cfg.TileOverhead)

	rowBytes := in.Len() * elem
	ocTile := cfg.WBufBytes / rowBytes
	if ocTile < 1 {
		ocTile = 1
	}
	for oc0 := 0; oc0 < spec.OutC; oc0 += ocTile {
		oc1 := oc0 + ocTile
		if oc1 > spec.OutC {
			oc1 = spec.OutC
		}
		wBytes := (oc1 - oc0) * rowBytes
		se.rec.RecordBytes(se.cycle, wReg.Base+uint64(oc0*rowBytes), wBytes, memtrace.Read)
		if cfg.BiasInDRAM {
			biasBase := wReg.Base + uint64(spec.OutC*rowBytes)
			se.rec.RecordBytes(se.cycle, biasBase+uint64(oc0*elem), (oc1-oc0)*elem, memtrace.Read)
		}
		macs := int64(oc1-oc0) * int64(in.Len())
		cc := s.computeCycles(macs)
		if mc := s.memCycles(wBytes); mc > cc {
			cc = mc
		}
		se.cycle += s.jitter(se, cc+cfg.TileOverhead)
	}

	if cfg.ZeroPrune {
		wb := 0
		for c := 0; c < spec.OutC; c++ {
			nz := 0
			if out[c] != 0 {
				nz = 1
			}
			wb += s.recordPrunedWrite(se, li, c, nz, outStride)
		}
		se.cycle += s.jitter(se, s.memCycles(wb))
	} else {
		se.rec.RecordBytes(se.cycle, s.lay.Fmaps[li].Base, spec.OutC*elem, memtrace.Write)
		se.cycle += s.jitter(se, s.memCycles(spec.OutC*elem))
	}
	s.finishFmap(li, se, outShape, s.cfg.ZeroPrune)
}

// simEltwise adds its inputs channel-plane by channel-plane, reading the
// most recently produced input first (its data is the fresh RAW dependency
// that marks the layer boundary).
func (s *Simulator) simEltwise(li int, se *session) {
	n := s.net
	spec := &n.Specs[li]
	outShape := n.Shapes[li]
	elem := s.cfg.ElemBytes

	out := se.acts[li]
	copy(out, se.inputAct(n, li, 0))
	for j := 1; j < len(spec.Inputs); j++ {
		for k, v := range se.inputAct(n, li, j) {
			out[k] += v
		}
	}

	// Visit inputs most-recent-producer first.
	order := se.order[:len(spec.Inputs)]
	for i := range order {
		order[i] = i
	}
	for a := 0; a < len(order); a++ {
		for b := a + 1; b < len(order); b++ {
			if spec.Inputs[order[b]] > spec.Inputs[order[a]] {
				order[a], order[b] = order[b], order[a]
			}
		}
	}

	denseBytes := outShape.H * outShape.W * elem
	outStride := s.fmapPlaneStride(outShape)
	for c := 0; c < outShape.C; c++ {
		memBytes := 0
		for _, j := range order {
			reg, _ := s.inputRegion(li, j)
			cb := s.inputChanBytes(se, li, j)
			stride := s.inputPlaneStride(li, j)
			if cb[c] == 0 {
				continue
			}
			se.rec.RecordBytes(se.cycle, reg.Base+uint64(c)*stride, cb[c], memtrace.Read)
			memBytes += cb[c]
		}
		se.rec.RecordBytes(se.cycle, s.lay.Fmaps[li].Base+uint64(c)*outStride, denseBytes, memtrace.Write)
		memBytes += denseBytes
		se.cycle += s.jitter(se, s.memCycles(memBytes)+s.cfg.TileOverhead)
	}
	// Element-wise outputs are written dense even under pruning.
	s.finishFmap(li, se, outShape, false)
}

// simConcat assembles its output. Producers whose sole consumer is this
// concat already wrote into the shared region (zero-copy) and contribute no
// traffic; others are copied through the accelerator.
func (s *Simulator) simConcat(li int, se *session) {
	n := s.net
	spec := &n.Specs[li]
	outShape := n.Shapes[li]
	elem := s.cfg.ElemBytes

	out := se.acts[li]
	off := 0
	for j := range spec.Inputs {
		src := se.inputAct(n, li, j)
		copy(out[off:off+len(src)], src)
		off += len(src)
	}

	// Per-channel stored sizes: concatenation of producer channel sizes
	// (so downstream readers of a pruned fire module see compressed streams).
	cb := se.chanBytes[li]
	cOff := 0
	anyPruned := false
	for j := range spec.Inputs {
		jcb := s.inputChanBytes(se, li, j)
		copy(cb[cOff:cOff+len(jcb)], jcb)
		cOff += len(jcb)
		if s.prunedInput(se, li, j) {
			anyPruned = true
		}
	}
	se.pruned[li] = anyPruned

	byteOff := uint64(0)
	felem := uint64(s.fmapElemBytes())
	for j := range spec.Inputs {
		ref := spec.Inputs[j]
		reg, shape := s.inputRegion(li, j)
		slot := uint64(shape.Len()) * felem
		if ref >= 0 && s.concatTarget[ref] == li {
			byteOff += slot
			continue // zero-copy: already in place
		}
		size := shape.Len() * elem
		se.rec.RecordBytes(se.cycle, reg.Base, size, memtrace.Read)
		se.rec.RecordBytes(se.cycle, s.lay.Fmaps[li].Base+byteOff, size, memtrace.Write)
		se.cycle += s.jitter(se, s.memCycles(2*size)+s.cfg.TileOverhead)
		byteOff += slot
	}

	// Non-zero statistics for the assembled map.
	nzs := se.nz[li]
	for c := 0; c < outShape.C; c++ {
		nzs[c] = countNZRows(out, outShape.H, outShape.W, c, 0, outShape.H)
	}
}
