package accel

import (
	"fmt"
	"math/rand"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
	"cnnrev/internal/tensor"
)

// runState carries per-run simulation state.
type runState struct {
	rec   *memtrace.Recorder
	cycle uint64
	rng   *rand.Rand // tile-latency jitter source (nil = no jitter)
	x     []float32
	acts  [][]float32
	// chanBytes[i][c] is the stored byte size of channel c of layer i's
	// output (compressed when pruned, dense otherwise).
	chanBytes [][]int
	nz        [][]int
	// chanStream[i][c] is the next write offset into channel c's compressed
	// stream when pruning.
	chanStream [][]uint64
	layerStart []uint64
	layerCyc   []uint64
}

// Run performs one inference, returning the functional outputs and the
// observed trace.
func (s *Simulator) Run(x []float32) (*Result, error) {
	rec := memtrace.NewRecorder(s.cfg.BlockBytes)
	res, _, err := s.runOne(x, rec, 0, s.jitterSource())
	if err != nil {
		return nil, err
	}
	res.Trace = rec.Trace()
	return res, nil
}

// RunMany performs several back-to-back inferences on the same device —
// what an adversary watching a serving accelerator observes — returning the
// per-inference functional results and one continuous trace.
func (s *Simulator) RunMany(xs [][]float32) ([]*Result, *memtrace.Trace, error) {
	rec := memtrace.NewRecorder(s.cfg.BlockBytes)
	rng := s.jitterSource()
	var results []*Result
	cycle := uint64(0)
	for _, x := range xs {
		res, end, err := s.runOne(x, rec, cycle, rng)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, res)
		cycle = end
	}
	tr := rec.Trace()
	for _, r := range results {
		r.Trace = tr
	}
	return results, tr, nil
}

// runOne executes one inference against a shared recorder, starting at the
// given cycle, and returns the result (Trace unset) plus the end cycle.
func (s *Simulator) runOne(x []float32, rec *memtrace.Recorder, startCycle uint64, rng *rand.Rand) (*Result, uint64, error) {
	if len(x) != s.net.Input.Len() {
		return nil, 0, fmt.Errorf("accel: input has %d elements, want %d", len(x), s.net.Input.Len())
	}
	n := s.net
	st := &runState{
		rec:        rec,
		cycle:      startCycle,
		x:          x,
		rng:        rng,
		acts:       make([][]float32, len(n.Specs)),
		chanBytes:  make([][]int, len(n.Specs)),
		nz:         make([][]int, len(n.Specs)),
		chanStream: make([][]uint64, len(n.Specs)),
		layerStart: make([]uint64, len(n.Specs)),
		layerCyc:   make([]uint64, len(n.Specs)),
	}
	for i := range n.Specs {
		start := st.cycle
		st.layerStart[i] = start
		switch n.Specs[i].Kind {
		case nn.KindConv:
			s.simConv(i, st)
		case nn.KindFC:
			s.simFC(i, st)
		case nn.KindConcat:
			s.simConcat(i, st)
		case nn.KindEltwise:
			s.simEltwise(i, st)
		}
		st.layerCyc[i] = st.cycle - start
	}
	last := len(n.Specs) - 1
	logits := make([]float32, len(st.acts[last]))
	copy(logits, st.acts[last])
	return &Result{
		Logits:          logits,
		Acts:            st.acts,
		LayerCycles:     st.layerCyc,
		LayerStartCycle: st.layerStart,
		NZCounts:        st.nz,
	}, st.cycle, nil
}

// inputAct returns the activation buffer feeding input j of layer i.
func (st *runState) inputAct(n *nn.Network, i, j int) []float32 {
	ref := n.Specs[i].Inputs[j]
	if ref == nn.InputRef {
		return st.x
	}
	return st.acts[ref]
}

// inputChanBytes returns the per-channel stored sizes of the region feeding
// input j of layer i (dense plane size when the producer is unpruned or is
// the network input).
func (s *Simulator) inputChanBytes(st *runState, i, j int) []int {
	ref := s.net.Specs[i].Inputs[j]
	var shape nn.Shape
	if ref == nn.InputRef {
		shape = s.net.Input
	} else {
		if cb := st.chanBytes[ref]; cb != nil {
			return cb
		}
		shape = s.net.Shapes[ref]
	}
	plane := shape.H * shape.W * s.cfg.ElemBytes
	cb := make([]int, shape.C)
	for c := range cb {
		cb[c] = plane
	}
	return cb
}

// prunedInput reports whether the region feeding input j of layer i holds
// compressed (pruned) data.
func (s *Simulator) prunedInput(st *runState, i, j int) bool {
	ref := s.net.Specs[i].Inputs[j]
	return ref != nn.InputRef && st.chanBytes[ref] != nil
}

// jitterSource returns the latency-noise generator for one run.
func (s *Simulator) jitterSource() *rand.Rand {
	if s.cfg.CycleJitter <= 0 {
		return nil
	}
	return rand.New(rand.NewSource(s.cfg.NoiseSeed))
}

// jitter scales a chunk latency by a factor uniform in [1−J, 1+J].
func (s *Simulator) jitter(st *runState, cycles uint64) uint64 {
	if st.rng == nil {
		return cycles
	}
	f := 1 + (st.rng.Float64()*2-1)*s.cfg.CycleJitter
	if f < 0 {
		f = 0
	}
	return uint64(float64(cycles) * f)
}

// memCycles converts a byte volume to DRAM cycles.
func (s *Simulator) memCycles(bytes int) uint64 {
	return uint64((bytes + s.cfg.MemBytesPerCycle - 1) / s.cfg.MemBytesPerCycle)
}

// computeCycles converts a MAC count to PE-array cycles.
func (s *Simulator) computeCycles(macs int64) uint64 {
	p := int64(s.cfg.PEs)
	return uint64((macs + p - 1) / p)
}

// activate applies the configured activation (threshold ReLU) in place.
func (s *Simulator) activate(buf []float32) {
	tensor.ThresholdReLUForward(buf, buf, s.cfg.Threshold)
}

// applyActPool runs the fused activation+pooling stages of a conv layer in
// the configured order, returning the final output buffer.
func (s *Simulator) applyActPool(spec *nn.LayerSpec, convOut []float32, convShape nn.Shape, outLen int) []float32 {
	doPool := func(in []float32) []float32 {
		if spec.Pool == nn.PoolNone {
			return in
		}
		out := make([]float32, outLen)
		p := tensor.Pool2D{F: spec.PoolF, S: spec.PoolS, P: spec.PoolP, Ceil: false}
		if spec.Pool == nn.PoolMax {
			p.MaxForward(in, convShape.C, convShape.H, convShape.W, out, nil)
		} else {
			p.AvgForward(in, convShape.C, convShape.H, convShape.W, out)
		}
		return out
	}
	if s.cfg.PoolBeforeActivation {
		out := doPool(convOut)
		if spec.ReLU {
			s.activate(out)
		}
		return out
	}
	if spec.ReLU {
		s.activate(convOut)
	}
	return doPool(convOut)
}

// recordPrunedWrite emits the compressed write burst for nz non-zero values
// appended to channel c's stream in layer li's output slot, and returns the
// byte volume written.
func (s *Simulator) recordPrunedWrite(st *runState, li, c, nz int, planeBytes uint64) int {
	if nz == 0 {
		return 0
	}
	bytes := nz * s.cfg.PruneBytesPerNZ
	base := s.lay.Fmaps[li].Base + uint64(c)*planeBytes + st.chanStream[li][c]
	st.rec.RecordBytes(st.cycle, base, bytes, memtrace.Write)
	st.chanStream[li][c] += uint64(bytes)
	return bytes
}

// countNZRows counts non-zero elements of channel c, rows [r0,r1), in a
// C×H×W buffer.
func countNZRows(buf []float32, h, w, c, r0, r1 int) int {
	nz := 0
	base := c * h * w
	for _, v := range buf[base+r0*w : base+r1*w] {
		if v != 0 {
			nz++
		}
	}
	return nz
}

// simConv computes a conv layer functionally and emits its tiled trace.
func (s *Simulator) simConv(li int, st *runState) {
	n := s.net
	spec := &n.Specs[li]
	in := n.InShapes[li][0]
	conv := tensor.Conv2D{InC: in.C, OutC: spec.OutC, F: spec.F, S: spec.S, P: spec.P}
	convShape := spec.ConvOut(in)
	outShape := n.Shapes[li]

	convOut := make([]float32, convShape.Len())
	conv.Forward(st.inputAct(n, li, 0), in.H, in.W, n.Params[li].W.Data, n.Params[li].B.Data, convOut, nil)
	out := s.applyActPool(spec, convOut, convShape, outShape.Len())
	st.acts[li] = out

	s.emitConvTrace(li, st, in, convShape, outShape, conv.InC*spec.F*spec.F)
	s.finishFmap(li, st, outShape, s.cfg.ZeroPrune)
}

// finishFmap records per-channel non-zero statistics and, for layers whose
// output was written compressed, the stored channel sizes. With
// PadPrunedWrites, compressed streams are padded with dummy transactions up
// to the dense-equivalent worst case, hiding the §4 count leak (at a cost
// exceeding unpruned traffic).
func (s *Simulator) finishFmap(li int, st *runState, outShape nn.Shape, pruned bool) {
	out := st.acts[li]
	nz := make([]int, outShape.C)
	for c := 0; c < outShape.C; c++ {
		nz[c] = countNZRows(out, outShape.H, outShape.W, c, 0, outShape.H)
	}
	st.nz[li] = nz
	if !pruned {
		return
	}
	cb := make([]int, outShape.C)
	for c := range cb {
		cb[c] = nz[c] * s.cfg.PruneBytesPerNZ
	}
	if s.cfg.PadPrunedWrites {
		stride := s.fmapPlaneStride(outShape)
		for c := range cb {
			pad := int(stride) - cb[c]
			if pad > 0 {
				base := s.lay.Fmaps[li].Base + uint64(c)*stride + uint64(cb[c])
				st.rec.RecordBytes(st.cycle, base, pad, memtrace.Write)
				st.cycle += s.jitter(st, s.memCycles(pad))
			}
			cb[c] = int(stride)
		}
	}
	st.chanBytes[li] = cb
}

// emitConvTrace walks the tiling loop nest of a convolution, emitting reads
// of IFM and filter tiles, OFM write bursts and the cycle cost of each tile.
func (s *Simulator) emitConvTrace(li int, st *runState, in, convShape, outShape nn.Shape, weightsPerOC int) {
	n := s.net
	spec := &n.Specs[li]
	cfg := &s.cfg
	elem := cfg.ElemBytes

	pruneIn := s.prunedInput(st, li, 0)
	inCB := s.inputChanBytes(st, li, 0)
	inReg, _ := s.inputRegion(li, 0)
	wReg := s.lay.Weights[li]
	outReg := s.lay.Fmaps[li]
	inStride := s.inputPlaneStride(li, 0)
	inDense := inStride == uint64(in.H*in.W*elem)
	outStride := s.fmapPlaneStride(outShape)
	outDense := outStride == uint64(outShape.H*outShape.W*elem)
	if cfg.ZeroPrune {
		st.chanStream[li] = make([]uint64, outShape.C)
	}

	ocTile := cfg.WBufBytes / ((weightsPerOC + 1) * elem)
	if ocTile < 1 {
		ocTile = 1
	}
	if ocTile > spec.OutC {
		ocTile = spec.OutC
	}

	// Choose a band height (in output rows) so the OFM band fits the OFM
	// buffer and one channel's IFM band fits the IFM buffer.
	pooled := spec.Pool != nn.PoolNone
	bandRows := outShape.H
	ifmRowsFor := func(bh, p0 int) (i0, i1 int) {
		c0, c1 := p0, p0+bh // conv rows
		if pooled {
			c0 = p0*spec.PoolS - spec.PoolP
			c1 = (p0+bh-1)*spec.PoolS - spec.PoolP + spec.PoolF
		}
		if c0 < 0 {
			c0 = 0
		}
		if c1 > convShape.H {
			c1 = convShape.H
		}
		i0 = c0*spec.S - spec.P
		i1 = (c1-1)*spec.S - spec.P + spec.F
		if i0 < 0 {
			i0 = 0
		}
		if i1 > in.H {
			i1 = in.H
		}
		return i0, i1
	}
	for bandRows > 1 {
		i0, i1 := ifmRowsFor(bandRows, 0)
		ofmOK := bandRows*outShape.W*ocTile*elem <= cfg.OFMBufBytes
		ifmOK := (i1-i0)*in.W*elem <= cfg.IFMBufBytes
		if ofmOK && ifmOK {
			break
		}
		bandRows--
	}
	if pruneIn {
		// Compressed IFM streams are not row-addressable: stream the whole
		// map once per filter tile instead of banding.
		bandRows = outShape.H
	}

	// Shared tile helpers, composed per the configured dataflow.
	readIFM := func(p0, p1 int) int {
		i0, i1 := ifmRowsFor(p1-p0, p0)
		memBytes := 0
		if pruneIn {
			// Compressed channels cannot be row-addressed: stream whole
			// channels.
			for c := 0; c < in.C; c++ {
				if inCB[c] == 0 {
					continue
				}
				st.rec.RecordBytes(st.cycle, inReg.Base+uint64(c)*inStride, inCB[c], memtrace.Read)
				memBytes += inCB[c]
			}
			return memBytes
		}
		rowBytes := (i1 - i0) * in.W * elem
		if i0 == 0 && i1 == in.H && inDense {
			// Whole channels are contiguous: one burst.
			st.rec.RecordBytes(st.cycle, inReg.Base, in.C*rowBytes, memtrace.Read)
			return in.C * rowBytes
		}
		for c := 0; c < in.C; c++ {
			base := inReg.Base + uint64(c)*inStride + uint64(i0*in.W*elem)
			st.rec.RecordBytes(st.cycle, base, rowBytes, memtrace.Read)
			memBytes += rowBytes
		}
		return memBytes
	}
	readWeights := func(oc0, oc1 int) int {
		wBytes := (oc1 - oc0) * weightsPerOC * elem
		st.rec.RecordBytes(st.cycle, wReg.Base+uint64(oc0*weightsPerOC*elem), wBytes, memtrace.Read)
		if cfg.BiasInDRAM {
			biasBase := wReg.Base + uint64(spec.OutC*weightsPerOC*elem)
			bBytes := (oc1 - oc0) * elem
			st.rec.RecordBytes(st.cycle, biasBase+uint64(oc0*elem), bBytes, memtrace.Read)
			wBytes += bBytes
		}
		return wBytes
	}
	convRows := func(p0, p1 int) (c0, c1 int) {
		c0, c1 = p0, p1
		if pooled {
			c0 = p0*spec.PoolS - spec.PoolP
			c1 = (p1-1)*spec.PoolS - spec.PoolP + spec.PoolF
			if c0 < 0 {
				c0 = 0
			}
			if c1 > convShape.H {
				c1 = convShape.H
			}
		}
		return c0, c1
	}
	compute := func(p0, p1, oc0, oc1, memBytes int) {
		c0, c1 := convRows(p0, p1)
		macs := int64(c1-c0) * int64(convShape.W) * int64(spec.F) * int64(spec.F) * int64(in.C) * int64(oc1-oc0)
		cc := s.computeCycles(macs)
		if mc := s.memCycles(memBytes); mc > cc {
			cc = mc
		}
		st.cycle += s.jitter(st, cc+cfg.TileOverhead)
	}
	writeOFM := func(p0, p1, oc0, oc1 int) {
		// OFM band write (once, post activation+pool).
		if cfg.ZeroPrune {
			wb := 0
			for c := oc0; c < oc1; c++ {
				nz := countNZRows(st.acts[li], outShape.H, outShape.W, c, p0, p1)
				wb += s.recordPrunedWrite(st, li, c, nz, outStride)
			}
			st.cycle += s.jitter(st, s.memCycles(wb))
			return
		}
		rowBytes := (p1 - p0) * outShape.W * elem
		if p0 == 0 && p1 == outShape.H && outDense {
			st.rec.RecordBytes(st.cycle, outReg.Base+uint64(oc0)*outStride, (oc1-oc0)*rowBytes, memtrace.Write)
		} else {
			for c := oc0; c < oc1; c++ {
				base := outReg.Base + uint64(c)*outStride + uint64(p0*outShape.W*elem)
				st.rec.RecordBytes(st.cycle, base, rowBytes, memtrace.Write)
			}
		}
		st.cycle += s.jitter(st, s.memCycles((oc1-oc0)*rowBytes))
	}

	switch cfg.Dataflow {
	case WeightStationary:
		// Each filter tile is pinned on chip while the IFM streams past it;
		// filters are read exactly once.
		for oc0 := 0; oc0 < spec.OutC; oc0 += ocTile {
			oc1 := minInt(oc0+ocTile, spec.OutC)
			wb := readWeights(oc0, oc1)
			for p0 := 0; p0 < outShape.H; p0 += bandRows {
				p1 := minInt(p0+bandRows, outShape.H)
				mem := readIFM(p0, p1)
				if p0 == 0 {
					mem += wb
				}
				compute(p0, p1, oc0, oc1, mem)
				writeOFM(p0, p1, oc0, oc1)
			}
		}
	default: // OutputStationary
		// Each output band is pinned on chip while the filter tiles stream
		// past it.
		for p0 := 0; p0 < outShape.H; p0 += bandRows {
			p1 := minInt(p0+bandRows, outShape.H)
			for oc0 := 0; oc0 < spec.OutC; oc0 += ocTile {
				oc1 := minInt(oc0+ocTile, spec.OutC)
				mem := readIFM(p0, p1) + readWeights(oc0, oc1)
				compute(p0, p1, oc0, oc1, mem)
				writeOFM(p0, p1, oc0, oc1)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// simFC computes a fully-connected layer and emits its trace: the IFM is
// read once (it fits on chip), weight rows stream in output tiles, and the
// output vector is written once.
func (s *Simulator) simFC(li int, st *runState) {
	n := s.net
	spec := &n.Specs[li]
	in := n.InShapes[li][0]
	cfg := &s.cfg
	elem := cfg.ElemBytes

	l := tensor.Linear{In: in.Len(), Out: spec.OutC}
	out := make([]float32, spec.OutC)
	l.Forward(st.inputAct(n, li, 0), n.Params[li].W.Data, n.Params[li].B.Data, out)
	if spec.ReLU {
		s.activate(out)
	}
	st.acts[li] = out

	inReg, inShape := s.inputRegion(li, 0)
	inCB := s.inputChanBytes(st, li, 0)
	pruneIn := s.prunedInput(st, li, 0)
	inStride := s.inputPlaneStride(li, 0)
	inDense := inStride == uint64(inShape.H*inShape.W*elem)
	wReg := s.lay.Weights[li]
	outShape := n.Shapes[li]
	outStride := s.fmapPlaneStride(outShape)
	if cfg.ZeroPrune {
		st.chanStream[li] = make([]uint64, outShape.C)
	}

	// Read the whole IFM once.
	memBytes := 0
	if pruneIn || !inDense {
		for c := 0; c < inShape.C; c++ {
			if inCB[c] == 0 {
				continue
			}
			st.rec.RecordBytes(st.cycle, inReg.Base+uint64(c)*inStride, inCB[c], memtrace.Read)
			memBytes += inCB[c]
		}
	} else {
		st.rec.RecordBytes(st.cycle, inReg.Base, in.Len()*elem, memtrace.Read)
		memBytes = in.Len() * elem
	}
	st.cycle += s.jitter(st, s.memCycles(memBytes)+cfg.TileOverhead)

	rowBytes := in.Len() * elem
	ocTile := cfg.WBufBytes / rowBytes
	if ocTile < 1 {
		ocTile = 1
	}
	for oc0 := 0; oc0 < spec.OutC; oc0 += ocTile {
		oc1 := oc0 + ocTile
		if oc1 > spec.OutC {
			oc1 = spec.OutC
		}
		wBytes := (oc1 - oc0) * rowBytes
		st.rec.RecordBytes(st.cycle, wReg.Base+uint64(oc0*rowBytes), wBytes, memtrace.Read)
		if cfg.BiasInDRAM {
			biasBase := wReg.Base + uint64(spec.OutC*rowBytes)
			st.rec.RecordBytes(st.cycle, biasBase+uint64(oc0*elem), (oc1-oc0)*elem, memtrace.Read)
		}
		macs := int64(oc1-oc0) * int64(in.Len())
		cc := s.computeCycles(macs)
		if mc := s.memCycles(wBytes); mc > cc {
			cc = mc
		}
		st.cycle += s.jitter(st, cc+cfg.TileOverhead)
	}

	if cfg.ZeroPrune {
		wb := 0
		for c := 0; c < spec.OutC; c++ {
			nz := 0
			if out[c] != 0 {
				nz = 1
			}
			wb += s.recordPrunedWrite(st, li, c, nz, outStride)
		}
		st.cycle += s.jitter(st, s.memCycles(wb))
	} else {
		st.rec.RecordBytes(st.cycle, s.lay.Fmaps[li].Base, spec.OutC*elem, memtrace.Write)
		st.cycle += s.jitter(st, s.memCycles(spec.OutC*elem))
	}
	s.finishFmap(li, st, outShape, s.cfg.ZeroPrune)
}

// simEltwise adds its inputs channel-plane by channel-plane, reading the
// most recently produced input first (its data is the fresh RAW dependency
// that marks the layer boundary).
func (s *Simulator) simEltwise(li int, st *runState) {
	n := s.net
	spec := &n.Specs[li]
	outShape := n.Shapes[li]
	elem := s.cfg.ElemBytes

	out := make([]float32, outShape.Len())
	copy(out, st.inputAct(n, li, 0))
	for j := 1; j < len(spec.Inputs); j++ {
		for k, v := range st.inputAct(n, li, j) {
			out[k] += v
		}
	}
	st.acts[li] = out

	// Visit inputs most-recent-producer first.
	order := make([]int, len(spec.Inputs))
	for i := range order {
		order[i] = i
	}
	for a := 0; a < len(order); a++ {
		for b := a + 1; b < len(order); b++ {
			if spec.Inputs[order[b]] > spec.Inputs[order[a]] {
				order[a], order[b] = order[b], order[a]
			}
		}
	}

	denseBytes := outShape.H * outShape.W * elem
	outStride := s.fmapPlaneStride(outShape)
	for c := 0; c < outShape.C; c++ {
		memBytes := 0
		for _, j := range order {
			reg, _ := s.inputRegion(li, j)
			cb := s.inputChanBytes(st, li, j)
			stride := s.inputPlaneStride(li, j)
			if cb[c] == 0 {
				continue
			}
			st.rec.RecordBytes(st.cycle, reg.Base+uint64(c)*stride, cb[c], memtrace.Read)
			memBytes += cb[c]
		}
		st.rec.RecordBytes(st.cycle, s.lay.Fmaps[li].Base+uint64(c)*outStride, denseBytes, memtrace.Write)
		memBytes += denseBytes
		st.cycle += s.jitter(st, s.memCycles(memBytes)+s.cfg.TileOverhead)
	}
	// Element-wise outputs are written dense even under pruning.
	s.finishFmap(li, st, outShape, false)
}

// simConcat assembles its output. Producers whose sole consumer is this
// concat already wrote into the shared region (zero-copy) and contribute no
// traffic; others are copied through the accelerator.
func (s *Simulator) simConcat(li int, st *runState) {
	n := s.net
	spec := &n.Specs[li]
	outShape := n.Shapes[li]
	elem := s.cfg.ElemBytes

	out := make([]float32, outShape.Len())
	off := 0
	for j := range spec.Inputs {
		src := st.inputAct(n, li, j)
		copy(out[off:off+len(src)], src)
		off += len(src)
	}
	st.acts[li] = out

	// Per-channel stored sizes: concatenation of producer channel sizes
	// (so downstream readers of a pruned fire module see compressed streams).
	var cb []int
	anyPruned := false
	for j := range spec.Inputs {
		jcb := s.inputChanBytes(st, li, j)
		cb = append(cb, jcb...)
		if s.prunedInput(st, li, j) {
			anyPruned = true
		}
	}
	if anyPruned {
		st.chanBytes[li] = cb
	}

	byteOff := uint64(0)
	felem := uint64(s.fmapElemBytes())
	for j := range spec.Inputs {
		ref := spec.Inputs[j]
		reg, shape := s.inputRegion(li, j)
		slot := uint64(shape.Len()) * felem
		if ref >= 0 && s.concatTarget[ref] == li {
			byteOff += slot
			continue // zero-copy: already in place
		}
		size := shape.Len() * elem
		st.rec.RecordBytes(st.cycle, reg.Base, size, memtrace.Read)
		st.rec.RecordBytes(st.cycle, s.lay.Fmaps[li].Base+byteOff, size, memtrace.Write)
		st.cycle += s.jitter(st, s.memCycles(2*size)+s.cfg.TileOverhead)
		byteOff += slot
	}

	// Non-zero statistics for the assembled map.
	nzs := make([]int, outShape.C)
	for c := 0; c < outShape.C; c++ {
		nzs[c] = countNZRows(out, outShape.H, outShape.W, c, 0, outShape.H)
	}
	st.nz[li] = nzs
}
