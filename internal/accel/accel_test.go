package accel

import (
	"math"
	"math/rand"
	"testing"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

func randInput(n *nn.Network, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float32, n.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	return x
}

// TestFunctionalEquivalence: the simulator must compute exactly what the nn
// substrate computes (same kernels, same order), for all layer kinds.
func TestFunctionalEquivalence(t *testing.T) {
	nets := []*nn.Network{nn.LeNet(10), nn.ConvNet(10), nn.AlexNet(10, 16), nn.SqueezeNet(10, 8)}
	for _, net := range nets {
		net.InitWeights(5)
		sim, err := New(net, Config{})
		if err != nil {
			t.Fatal(err)
		}
		x := randInput(net, 6)
		res, err := sim.Run(x)
		if err != nil {
			t.Fatal(err)
		}
		want := net.Infer(x)
		if len(res.Logits) != len(want) {
			t.Fatalf("%s: logit count %d vs %d", net.Name, len(res.Logits), len(want))
		}
		for i := range want {
			if res.Logits[i] != want[i] {
				t.Fatalf("%s: logit %d = %v, nn says %v", net.Name, i, res.Logits[i], want[i])
			}
		}
	}
}

// collectRegionOps sums read and written bytes intersecting region r.
func collectRegionOps(tr *memtrace.Trace, r Region) (readBytes, writeBytes uint64) {
	for _, a := range tr.Accesses {
		end := a.End(tr.BlockBytes)
		lo, hi := a.Addr, end
		if lo < r.Base {
			lo = r.Base
		}
		if hi > r.End() {
			hi = r.End()
		}
		if lo >= hi {
			continue
		}
		if a.Kind == memtrace.Read {
			readBytes += hi - lo
		} else {
			writeBytes += hi - lo
		}
	}
	return readBytes, writeBytes
}

func TestWeightRegionsAreReadOnlyAndFullyRead(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, _ := New(net, Config{})
	res, _ := sim.Run(randInput(net, 2))
	for i, wr := range sim.Layout().Weights {
		if wr.Bytes == 0 {
			continue
		}
		rd, wrB := collectRegionOps(res.Trace, wr)
		if wrB != 0 {
			t.Errorf("layer %d: weights written (%d bytes)", i, wrB)
		}
		if rd < wr.Bytes {
			t.Errorf("layer %d: only %d of %d weight bytes read", i, rd, wr.Bytes)
		}
	}
}

func TestOFMWrittenExactlyOnce(t *testing.T) {
	net := nn.ConvNet(10)
	net.InitWeights(1)
	sim, _ := New(net, Config{})
	res, _ := sim.Run(randInput(net, 3))
	for i, fr := range sim.Layout().Fmaps {
		if sim.Layout().FmapOwner[i] != i {
			continue
		}
		_, wrB := collectRegionOps(res.Trace, fr)
		if wrB != fr.Bytes {
			t.Errorf("layer %d: wrote %d bytes of %d-byte OFM region (must be exactly once)", i, wrB, fr.Bytes)
		}
	}
}

// TestRAWOrdering: every read of a feature-map address must come after a
// write of that address — the invariant the whole structure attack rests on.
func TestRAWOrdering(t *testing.T) {
	net := nn.SqueezeNet(10, 16)
	net.InitWeights(2)
	sim, _ := New(net, Config{})
	res, _ := sim.Run(randInput(net, 4))

	lay := sim.Layout()
	inFmap := func(addr uint64) bool {
		for i, fr := range lay.Fmaps {
			if lay.FmapOwner[i] != i || fr.Bytes == 0 {
				continue
			}
			if addr >= fr.Base && addr < fr.End() {
				return true
			}
		}
		return false
	}
	written := make(map[uint64]bool)
	for _, a := range res.Trace.Accesses {
		for b := uint64(0); b < uint64(a.Count); b++ {
			addr := a.Addr + b*uint64(res.Trace.BlockBytes)
			if !inFmap(addr) {
				continue
			}
			if a.Kind == memtrace.Write {
				written[addr] = true
			} else if !written[addr] {
				t.Fatalf("read of fmap address %#x before any write", addr)
			}
		}
	}
}

// TestCyclesTrackMACs: for conv layers the compute-bound cycle model must
// keep cycles/MAC near-constant — the property the paper's timing filter
// assumes ("execution time is roughly proportional to the number of MACs").
func TestCyclesTrackMACs(t *testing.T) {
	net := nn.AlexNet(1000, 1)
	net.InitWeights(3)
	sim, _ := New(net, Config{})
	res, err := sim.Run(randInput(net, 5))
	if err != nil {
		t.Fatal(err)
	}
	var ratios []float64
	for i := range net.Specs {
		if net.Specs[i].Kind != nn.KindConv {
			continue
		}
		r := float64(res.LayerCycles[i]) / float64(net.MACs(i))
		ratios = append(ratios, r)
	}
	lo, hi := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	if hi/lo > 1.25 {
		t.Fatalf("conv cycles/MAC spread too wide: %v (ratio %.2f)", ratios, hi/lo)
	}
}

func TestZeroPruneWriteBytesMatchNZCounts(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(7)
	cfg := Config{ZeroPrune: true}
	sim, err := New(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := sim.Run(randInput(net, 8))
	lay := sim.Layout()
	pnz := sim.Config().PruneBytesPerNZ
	for li := range net.Specs {
		if net.Specs[li].Kind != nn.KindConv && net.Specs[li].Kind != nn.KindFC {
			continue
		}
		shape := net.Shapes[li]
		plane := uint64(shape.H * shape.W * pnz) // pruned slots are worst-case sized
		for c := 0; c < shape.C; c++ {
			chr := Region{Base: lay.Fmaps[li].Base + uint64(c)*plane, Bytes: plane}
			_, wb := collectRegionOps(res.Trace, chr)
			wantNZ := res.NZCounts[li][c]
			if int(wb) != wantNZ*pnz {
				t.Fatalf("layer %d ch %d: wrote %d bytes, want %d (nz=%d)", li, c, wb, wantNZ*pnz, wantNZ)
			}
		}
	}
}

func TestZeroPruneShrinksTraffic(t *testing.T) {
	// Pruning pays off when sparsity exceeds 1 − ElemBytes/PruneBytesPerNZ.
	// Trained ReLU networks have sparse maps (the paper cites ~40% op
	// reduction); with random weights we recreate that regime with negative
	// biases. Max-pooled layers densify, so use an unpooled conv stack.
	net, err := nn.Sequential("sparse", nn.Shape{C: 2, H: 24, W: 24}, []nn.ConvConfig{
		{OutC: 8, F: 3, S: 1, P: 1},
		{OutC: 8, F: 3, S: 1, P: 1},
		{OutC: 8, F: 3, S: 1, P: 1},
	}, []int{10})
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(9)
	for _, p := range net.Params {
		p.B.Fill(-1)
	}
	x := randInput(net, 10)
	dense, _ := New(net, Config{})
	pruned, _ := New(net, Config{ZeroPrune: true})
	dres, _ := dense.Run(x)
	pres, _ := pruned.Run(x)
	if pres.Trace.Blocks() >= dres.Trace.Blocks() {
		t.Fatalf("pruning did not reduce traffic: %d vs %d blocks", pres.Trace.Blocks(), dres.Trace.Blocks())
	}
	// Functional results must be unchanged by pruning.
	for i := range dres.Logits {
		if dres.Logits[i] != pres.Logits[i] {
			t.Fatal("pruning must not change computation")
		}
	}
}

func TestThresholdActivation(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(11)
	x := randInput(net, 12)
	s0, _ := New(net, Config{})
	s1, _ := New(net, Config{Threshold: 0.5})
	r0, _ := s0.Run(x)
	r1, _ := s1.Run(x)
	nz0, nz1 := 0, 0
	for c := range r0.NZCounts[0] {
		nz0 += r0.NZCounts[0][c]
		nz1 += r1.NZCounts[0][c]
	}
	if nz1 >= nz0 {
		t.Fatalf("higher threshold must prune more: %d vs %d", nz1, nz0)
	}
}

func TestPrunePerNZMustAlignToBlocks(t *testing.T) {
	net := nn.LeNet(10)
	if _, err := New(net, Config{ZeroPrune: true, PruneBytesPerNZ: 6, BlockBytes: 4}); err == nil {
		t.Fatal("expected config rejection")
	}
}

func TestRunRejectsWrongInputSize(t *testing.T) {
	net := nn.LeNet(10)
	sim, _ := New(net, Config{})
	if _, err := sim.Run(make([]float32, 3)); err == nil {
		t.Fatal("expected input size error")
	}
}

func TestLayoutRegionsDisjoint(t *testing.T) {
	net := nn.SqueezeNet(10, 16)
	sim, _ := New(net, Config{})
	lay := sim.Layout()
	var regs []Region
	regs = append(regs, lay.Input)
	for i, r := range lay.Weights {
		if r.Bytes > 0 {
			regs = append(regs, r)
		}
		// Embedded fire-module outputs overlap their concat region by design;
		// only owner regions must be disjoint.
		if lay.FmapOwner[i] == i && lay.Fmaps[i].Bytes > 0 {
			regs = append(regs, lay.Fmaps[i])
		}
	}
	for i := range regs {
		for j := i + 1; j < len(regs); j++ {
			a, b := regs[i], regs[j]
			if a.Base < b.End() && b.Base < a.End() {
				t.Fatalf("regions overlap: %+v and %+v", a, b)
			}
		}
	}
}

// TestConcatZeroCopy: fire-module expand layers write directly into the
// concat region, and the concat itself adds no traffic.
func TestConcatZeroCopy(t *testing.T) {
	net := nn.SqueezeNet(10, 16)
	net.InitWeights(13)
	sim, _ := New(net, Config{})
	res, _ := sim.Run(randInput(net, 14))
	lay := sim.Layout()
	for i := range net.Specs {
		if net.Specs[i].Kind != nn.KindConcat {
			continue
		}
		// Both expand inputs must be embedded.
		for _, ref := range net.Specs[i].Inputs {
			if lay.FmapOwner[ref] != i {
				t.Fatalf("concat %s input %d not embedded", net.Specs[i].Name, ref)
			}
		}
		// The concat region must be fully written (by the expands).
		_, wb := collectRegionOps(res.Trace, lay.Fmaps[i])
		if wb != lay.Fmaps[i].Bytes {
			t.Fatalf("concat %s region: %d of %d bytes written", net.Specs[i].Name, wb, lay.Fmaps[i].Bytes)
		}
	}
}

func TestLayerCyclesPositiveAndOrdered(t *testing.T) {
	net := nn.ConvNet(10)
	net.InitWeights(15)
	sim, _ := New(net, Config{})
	res, _ := sim.Run(randInput(net, 16))
	var prevStart uint64
	for i := range net.Specs {
		if res.LayerCycles[i] == 0 {
			t.Fatalf("layer %d has zero cycles", i)
		}
		if res.LayerStartCycle[i] < prevStart {
			t.Fatalf("layer %d starts before layer %d", i, i-1)
		}
		prevStart = res.LayerStartCycle[i]
	}
	if math.Abs(float64(res.Trace.LastCycle())-float64(prevStart+res.LayerCycles[len(net.Specs)-1])) > float64(res.LayerCycles[len(net.Specs)-1]) {
		t.Log("trace end and cycle accounting roughly agree") // informative only
	}
}

func TestCycleJitterOnlyAffectsTiming(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(17)
	x := randInput(net, 18)
	clean, _ := New(net, Config{})
	noisy, _ := New(net, Config{CycleJitter: 0.2, NoiseSeed: 3})
	rc, _ := clean.Run(x)
	rn, _ := noisy.Run(x)
	for i := range rc.Logits {
		if rc.Logits[i] != rn.Logits[i] {
			t.Fatal("jitter must not change computation")
		}
	}
	if len(rc.Trace.Accesses) != len(rn.Trace.Accesses) {
		t.Fatal("jitter must not change the access sequence")
	}
	diff := false
	for i := range rc.Trace.Accesses {
		a, b := rc.Trace.Accesses[i], rn.Trace.Accesses[i]
		if a.Addr != b.Addr || a.Count != b.Count || a.Kind != b.Kind {
			t.Fatal("jitter must not change addresses")
		}
		if a.Cycle != b.Cycle {
			diff = true
		}
	}
	if !diff {
		t.Fatal("jitter changed nothing")
	}
	// Determinism per seed.
	noisy2, _ := New(net, Config{CycleJitter: 0.2, NoiseSeed: 3})
	rn2, _ := noisy2.Run(x)
	for i := range rn.Trace.Accesses {
		if rn.Trace.Accesses[i] != rn2.Trace.Accesses[i] {
			t.Fatal("jitter must be deterministic per seed")
		}
	}
}

// TestZeroPruneSqueezeNetConsistent: the pruned-data path must stay
// functionally exact through concat and eltwise layers (whose outputs are
// written dense even under pruning).
func TestZeroPruneSqueezeNetConsistent(t *testing.T) {
	net := nn.SqueezeNet(10, 16)
	net.InitWeights(21)
	x := randInput(net, 22)
	plain, _ := New(net, Config{})
	pruned, _ := New(net, Config{ZeroPrune: true})
	rp, err := plain.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	rz, err := pruned.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rp.Logits {
		if rp.Logits[i] != rz.Logits[i] {
			t.Fatal("pruning changed SqueezeNet computation")
		}
	}
}

// TestPadPrunedWritesHidesCounts: with padding, every channel's write
// volume is the worst-case constant regardless of the input, blinding the
// §4 attack.
func TestPadPrunedWritesHidesCounts(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(23)
	sim, err := New(net, Config{ZeroPrune: true, PadPrunedWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	lay := sim.Layout()
	pnz := sim.Config().PruneBytesPerNZ
	volumes := func(seed int64) []uint64 {
		res, err := sim.Run(randInput(net, seed))
		if err != nil {
			t.Fatal(err)
		}
		var out []uint64
		shape := net.Shapes[0]
		stride := uint64(shape.H * shape.W * pnz)
		for c := 0; c < shape.C; c++ {
			chr := Region{Base: lay.Fmaps[0].Base + uint64(c)*stride, Bytes: stride}
			_, wb := collectRegionOps(res.Trace, chr)
			out = append(out, wb)
		}
		return out
	}
	a, b := volumes(1), volumes(2)
	shape := net.Shapes[0]
	want := uint64(shape.H * shape.W * pnz)
	for c := range a {
		if a[c] != want || b[c] != want {
			t.Fatalf("channel %d: padded volumes %d/%d, want constant %d", c, a[c], b[c], want)
		}
	}
}

// TestDataflowsComputeIdentically: all three tiling orders are functionally
// identical and read the same total filter/OFM volumes, but produce
// different access sequences (weight- and row-stationary read filters
// exactly once; row-stationary also reads the IFM at most once).
func TestDataflowsComputeIdentically(t *testing.T) {
	net := nn.ConvNet(10)
	net.InitWeights(31)
	x := randInput(net, 32)
	os, _ := New(net, Config{Dataflow: OutputStationary})
	ws, _ := New(net, Config{Dataflow: WeightStationary})
	rs, _ := New(net, Config{Dataflow: RowStationary})
	ro, _ := os.Run(x)
	rw, _ := ws.Run(x)
	rr, _ := rs.Run(x)
	for i := range ro.Logits {
		if ro.Logits[i] != rw.Logits[i] || ro.Logits[i] != rr.Logits[i] {
			t.Fatal("dataflow changed computation")
		}
	}
	// Weight volume: output-stationary re-reads filters per band;
	// weight- and row-stationary read each exactly once.
	lay := os.Layout()
	for i, wr := range lay.Weights {
		if wr.Bytes == 0 || net.Specs[i].Kind != nn.KindConv {
			continue
		}
		rdOS, _ := collectRegionOps(ro.Trace, wr)
		rdWS, _ := collectRegionOps(rw.Trace, wr)
		rdRS, _ := collectRegionOps(rr.Trace, wr)
		if rdWS != wr.Bytes {
			t.Errorf("layer %d: weight-stationary read %d of %d weight bytes", i, rdWS, wr.Bytes)
		}
		if rdRS != wr.Bytes {
			t.Errorf("layer %d: row-stationary read %d of %d weight bytes", i, rdRS, wr.Bytes)
		}
		if rdOS < rdWS {
			t.Errorf("layer %d: output-stationary should read at least as much (%d vs %d)", i, rdOS, rdWS)
		}
	}
	// Row-stationary single-pass IFM: each conv layer's input region is read
	// at most once (weight-stationary streams it once per filter tile).
	for i := range net.Specs {
		if net.Specs[i].Kind != nn.KindConv {
			continue
		}
		ref := net.Specs[i].Inputs[0]
		var inReg Region
		if ref == nn.InputRef {
			inReg = lay.Input
		} else {
			inReg = lay.Fmaps[ref]
		}
		rdRS, _ := collectRegionOps(rr.Trace, inReg)
		if rdRS > inReg.Bytes {
			t.Errorf("layer %d: row-stationary read %d of a %d-byte input region (re-read)", i, rdRS, inReg.Bytes)
		}
	}
}

// TestConcatCopyPath: a producer consumed by both a concat and another
// layer cannot be zero-copy embedded; the concat must copy it through the
// accelerator while still embedding its sole-consumer sibling.
func TestConcatCopyPath(t *testing.T) {
	net, err := nn.New("copycat", nn.Shape{C: 2, H: 8, W: 8}, []nn.LayerSpec{
		{Name: "a", Kind: nn.KindConv, OutC: 3, F: 3, S: 1, P: 1, ReLU: true},
		{Name: "b", Kind: nn.KindConv, OutC: 3, F: 1, S: 1, ReLU: true, Inputs: []int{nn.InputRef}},
		{Name: "cat", Kind: nn.KindConcat, Inputs: []int{0, 1}},
		{Name: "side", Kind: nn.KindConv, OutC: 2, F: 1, S: 1, ReLU: true, Inputs: []int{0}},
		{Name: "head", Kind: nn.KindFC, OutC: 4, Inputs: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.InitWeights(33)
	sim, err := New(net, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lay := sim.Layout()
	// "a" has two consumers: own region. "b" only feeds the concat: embedded.
	if lay.FmapOwner[0] != 0 {
		t.Fatal("layer a should own its region")
	}
	if lay.FmapOwner[1] != 2 {
		t.Fatal("layer b should be embedded in the concat region")
	}
	x := randInput(net, 34)
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	// Functional equivalence still holds.
	want := net.Infer(x)
	for i := range want {
		if res.Logits[i] != want[i] {
			t.Fatal("copy path changed computation")
		}
	}
	// The concat region must be fully written: b's half zero-copy, a's half
	// copied through.
	_, wb := collectRegionOps(res.Trace, lay.Fmaps[2])
	if wb != lay.Fmaps[2].Bytes {
		t.Fatalf("concat region: %d of %d bytes written", wb, lay.Fmaps[2].Bytes)
	}
	// a's own region must be both written (by a) and read (by the copy and
	// by side).
	rd, wr := collectRegionOps(res.Trace, lay.Fmaps[0])
	if wr == 0 || rd == 0 {
		t.Fatalf("layer a region: rd=%d wr=%d", rd, wr)
	}
}

// TestWeightStationaryWithPruning combines the alternative dataflows with
// zero-pruned writes; functional results and per-channel write volumes must
// match the output-stationary path.
func TestWeightStationaryWithPruning(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(41)
	x := randInput(net, 42)
	osim, _ := New(net, Config{ZeroPrune: true})
	ro, _ := osim.Run(x)
	for _, df := range []Dataflow{WeightStationary, RowStationary} {
		wsim, _ := New(net, Config{ZeroPrune: true, Dataflow: df})
		rw, _ := wsim.Run(x)
		for i := range ro.Logits {
			if ro.Logits[i] != rw.Logits[i] {
				t.Fatalf("%v changed pruned computation", df)
			}
		}
		for li := range net.Specs {
			for c := range ro.NZCounts[li] {
				if ro.NZCounts[li][c] != rw.NZCounts[li][c] {
					t.Fatalf("%v layer %d ch %d: nz differs across dataflows", df, li, c)
				}
			}
		}
	}
}

// TestRunManyMatchesIndividualRuns: a served trace is the concatenation of
// individual runs (addresses and per-run logits identical, cycles offset).
func TestRunManyMatchesIndividualRuns(t *testing.T) {
	net := nn.ConvNet(10)
	net.InitWeights(43)
	xs := [][]float32{randInput(net, 44), randInput(net, 45)}
	sim, _ := New(net, Config{})
	results, tr, err := sim.RunMany(xs)
	if err != nil {
		t.Fatal(err)
	}
	var individual []*Result
	for _, x := range xs {
		s2, _ := New(net, Config{})
		r, _ := s2.Run(x)
		individual = append(individual, r)
	}
	for k := range xs {
		for i := range results[k].Logits {
			if results[k].Logits[i] != individual[k].Logits[i] {
				t.Fatalf("run %d logits differ", k)
			}
		}
	}
	n1 := len(individual[0].Trace.Accesses)
	if len(tr.Accesses) != n1+len(individual[1].Trace.Accesses) {
		t.Fatalf("served trace has %d records, want %d", len(tr.Accesses),
			n1+len(individual[1].Trace.Accesses))
	}
	// Second inference's accesses repeat the first run's addresses with a
	// cycle offset.
	for i, a := range individual[1].Trace.Accesses {
		b := tr.Accesses[n1+i]
		if a.Addr != b.Addr || a.Count != b.Count || a.Kind != b.Kind {
			t.Fatalf("record %d differs in the served trace", i)
		}
		if b.Cycle < a.Cycle {
			t.Fatal("served cycles must not rewind")
		}
	}
}
