package accel

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

func traceBytes(t *testing.T, tr *memtrace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func resultsEqual(t *testing.T, label string, got, want *Result) {
	t.Helper()
	for i := range want.Logits {
		if got.Logits[i] != want.Logits[i] {
			t.Fatalf("%s: logit %d = %v, want %v", label, i, got.Logits[i], want.Logits[i])
		}
	}
	for li := range want.Acts {
		for j := range want.Acts[li] {
			if got.Acts[li][j] != want.Acts[li][j] {
				t.Fatalf("%s: act[%d][%d] = %v, want %v", label, li, j, got.Acts[li][j], want.Acts[li][j])
			}
		}
		for c := range want.NZCounts[li] {
			if got.NZCounts[li][c] != want.NZCounts[li][c] {
				t.Fatalf("%s: nz[%d][%d] = %d, want %d", label, li, c, got.NZCounts[li][c], want.NZCounts[li][c])
			}
		}
		if got.LayerCycles[li] != want.LayerCycles[li] || got.LayerStartCycle[li] != want.LayerStartCycle[li] {
			t.Fatalf("%s: layer %d cycles (%d,%d), want (%d,%d)", label, li,
				got.LayerStartCycle[li], got.LayerCycles[li], want.LayerStartCycle[li], want.LayerCycles[li])
		}
	}
}

// TestArenaReuseMatchesFreshSimulator: a simulator (and a Session) reused
// across many inferences must emit byte-identical traces and identical
// Results to a simulator constructed fresh for every run — the arena leaks
// no state between runs. Exercised over the conv/FC (LeNet), concat
// (SqueezeNet fire modules) and eltwise (ResNetMini) paths, with pruning
// and jitter on and off.
func TestArenaReuseMatchesFreshSimulator(t *testing.T) {
	nets := []*nn.Network{nn.LeNet(10), nn.SqueezeNet(10, 8), nn.ResNetMini(10, 8)}
	cfgs := []Config{
		{},
		{ZeroPrune: true},
		{ZeroPrune: true, CycleJitter: 0.05, NoiseSeed: 9},
	}
	for _, net := range nets {
		net.InitWeights(5)
		for ci, cfg := range cfgs {
			shared, err := New(net, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ses := shared.NewSession()
			for run := 0; run < 3; run++ {
				label := fmt.Sprintf("%s/cfg%d/run%d", net.Name, ci, run)
				x := randInput(net, int64(20+run))

				fresh, err := New(net, cfg)
				if err != nil {
					t.Fatal(err)
				}
				want, err := fresh.Run(x)
				if err != nil {
					t.Fatal(err)
				}

				got, err := shared.Run(x)
				if err != nil {
					t.Fatal(err)
				}
				resultsEqual(t, label+"/reused-sim", got, want)
				if !bytes.Equal(traceBytes(t, got.Trace), traceBytes(t, want.Trace)) {
					t.Fatalf("%s: reused-simulator trace differs from fresh simulator", label)
				}

				sres, err := ses.Run(x)
				if err != nil {
					t.Fatal(err)
				}
				// Session results alias the arena: compare before the next Run.
				resultsEqual(t, label+"/session", sres, want)
				if !bytes.Equal(traceBytes(t, sres.Trace), traceBytes(t, want.Trace)) {
					t.Fatalf("%s: session trace differs from fresh simulator", label)
				}
			}
		}
	}
}

// TestRunManyArenaReuseStable: back-to-back RunMany calls on one simulator
// (the served-victim capture path) must be reproducible — the shared arena
// carries nothing across calls.
func TestRunManyArenaReuseStable(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(5)
	sim, err := New(net, Config{ZeroPrune: true, CycleJitter: 0.05, NoiseSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	xs := [][]float32{randInput(net, 1), randInput(net, 2), randInput(net, 3)}
	r1, t1, err := sim.RunMany(xs)
	if err != nil {
		t.Fatal(err)
	}
	r2, t2, err := sim.RunMany(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(traceBytes(t, t1), traceBytes(t, t2)) {
		t.Fatal("repeated RunMany on one simulator produced different traces")
	}
	for i := range r1 {
		resultsEqual(t, fmt.Sprintf("runmany/%d", i), r2[i], r1[i])
	}
}

// TestConcurrentSessionsShareSimulator: distinct Sessions of one Simulator
// (and concurrent Run calls, which borrow pooled arenas) must be safe to
// drive from many goroutines — the weight attack issues its oracle queries
// this way. Run with -race in CI.
func TestConcurrentSessionsShareSimulator(t *testing.T) {
	net := nn.LeNet(10)
	net.InitWeights(5)
	sim, err := New(net, Config{ZeroPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, runs = 4, 5
	inputs := make([][]float32, runs)
	want := make([][]float32, runs)
	for i := range inputs {
		inputs[i] = randInput(net, int64(40+i))
		res, err := sim.Run(inputs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Logits
	}
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ses := sim.NewSession()
			for i := 0; i < runs; i++ {
				idx := (g + i) % runs
				res, err := ses.Run(inputs[idx])
				if err != nil {
					errc <- err
					return
				}
				for j := range want[idx] {
					if res.Logits[j] != want[idx][j] {
						errc <- fmt.Errorf("goroutine %d run %d: logit %d = %v, want %v",
							g, i, j, res.Logits[j], want[idx][j])
						return
					}
				}
				if _, err := sim.Run(inputs[idx]); err != nil { // pooled-arena path
					errc <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestSessionRunSteadyStateAllocs pins the arena design: once a session is
// warm, an inference allocates nothing — the attack pipelines hinge on this
// for their oracle-query throughput. Tolerance 1 absorbs a GC draining the
// GEMM/region sync.Pools mid-measurement.
func TestSessionRunSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; pin runs in the non-race job")
	}
	for _, cfg := range []Config{
		{},
		{ZeroPrune: true},
		{ZeroPrune: true, CycleJitter: 0.05, NoiseSeed: 7},
		{Dataflow: WeightStationary},
		{Dataflow: RowStationary},
	} {
		net := nn.LeNet(10)
		net.InitWeights(5)
		sim, err := New(net, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ses := sim.NewSession()
		x := randInput(net, 6)
		for i := 0; i < 2; i++ { // warm the recorder and scratch
			if _, err := ses.Run(x); err != nil {
				t.Fatal(err)
			}
		}
		allocs := testing.AllocsPerRun(50, func() {
			if _, err := ses.Run(x); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 1 {
			t.Fatalf("cfg %+v: Session.Run allocates %.1f objects per inference in steady state, want 0", cfg, allocs)
		}
	}
}
