package accel

import (
	"testing"

	"cnnrev/internal/nn"
)

// benchSession times one steady-state Session inference (trace emission
// included) under the given dataflow. The trio doubles as a smoke check
// that every backend stays allocation-free once warm.
func benchSession(b *testing.B, df Dataflow) {
	net := nn.LeNet(10)
	net.InitWeights(5)
	sim, err := New(net, Config{Dataflow: df})
	if err != nil {
		b.Fatal(err)
	}
	ses := sim.NewSession()
	x := randInput(net, 6)
	if _, err := ses.Run(x); err != nil { // warm the recorder and scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ses.Run(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSession_OS(b *testing.B) { benchSession(b, OutputStationary) }
func BenchmarkSession_WS(b *testing.B) { benchSession(b, WeightStationary) }
func BenchmarkSession_RS(b *testing.B) { benchSession(b, RowStationary) }
