// Package accel simulates the paper's victim: a tile-based CNN inference
// accelerator (Figure 1) behind an SGX-like protection boundary (Figure 2).
// The simulator computes each layer exactly (same arithmetic as internal/nn)
// while emitting the off-chip DRAM access trace an adversary would observe:
// tiled reads of input-feature-map (IFM) and filter regions, write-once
// output-feature-map (OFM) bursts, and a cycle counter from a compute-bound
// PE-array model. With ZeroPrune enabled, OFM writes are run-length
// compressed per output channel, leaking the non-zero pixel counts that the
// paper's weight attack exploits.
package accel

import (
	"fmt"
	"sync"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// Dataflow selects the convolution tiling loop order — the accelerator's
// data-reuse strategy. The paper's structure attack is claimed to work
// "regardless of its micro-architecture details and data reuse strategies";
// having both orders lets the reproduction test that claim directly.
type Dataflow int

const (
	// OutputStationary pins each output band on chip and streams filter
	// tiles past it (the default).
	OutputStationary Dataflow = iota
	// WeightStationary pins each filter tile on chip and streams the input
	// feature map past it; filters are read exactly once.
	WeightStationary
	// RowStationary holds partial sums in the PE array (Eyeriss-style):
	// filters and the input feature map are each read exactly once, and
	// output rows retire in row-major order across every output channel.
	RowStationary
)

// String names the dataflow.
func (d Dataflow) String() string {
	switch d {
	case WeightStationary:
		return "weight-stationary"
	case RowStationary:
		return "row-stationary"
	}
	return "output-stationary"
}

// ParseDataflow maps a user-facing dataflow name (canonical or short form)
// to its constant. The empty string selects the default output-stationary
// design, matching the zero Config.
func ParseDataflow(s string) (Dataflow, error) {
	switch s {
	case "", "os", "output-stationary":
		return OutputStationary, nil
	case "ws", "weight-stationary":
		return WeightStationary, nil
	case "rs", "row-stationary":
		return RowStationary, nil
	}
	return OutputStationary, fmt.Errorf("accel: unknown dataflow %q (want output-stationary|weight-stationary|row-stationary or os|ws|rs)", s)
}

// Config describes the accelerator microarchitecture.
type Config struct {
	// Dataflow selects the conv tiling loop order (default OutputStationary).
	Dataflow Dataflow
	// BlockBytes is the DRAM transaction granularity (default 4, i.e. a
	// 32-bit bus as on the paper's FPGA prototype).
	BlockBytes int
	// ElemBytes is the storage size of one feature-map/weight element
	// (default 4).
	ElemBytes int
	// IFMBufBytes, WBufBytes and OFMBufBytes size the on-chip buffers
	// (default 64 KiB each).
	IFMBufBytes, WBufBytes, OFMBufBytes int
	// PEs is the number of multiply-accumulates per cycle (default 256).
	PEs int
	// MemBytesPerCycle is the DRAM bandwidth (default 16).
	MemBytesPerCycle int
	// TileOverhead is the fixed per-tile control overhead in cycles
	// (default 32).
	TileOverhead uint64
	// ZeroPrune enables dynamic zero pruning of conv/FC OFM writes
	// (Cnvlutin/SCNN/Minerva style run-length encoding).
	ZeroPrune bool
	// PruneBytesPerNZ is the compressed size of one non-zero element
	// (value + index, default 8).
	PruneBytesPerNZ int
	// Threshold is the activation threshold: outputs at or below it are
	// zeroed. Zero gives plain ReLU; a tunable positive threshold models the
	// Minerva-style optimization §4 uses to recover the bias.
	Threshold float32
	// PoolBeforeActivation applies fused pooling before the activation
	// function (the semantics of the paper's Eq. 11) instead of the default
	// activation-then-pooling order.
	PoolBeforeActivation bool
	// PadPrunedWrites pads every compressed channel stream with dummy
	// transactions up to the dense size — the natural countermeasure to the
	// §4 weight attack (constant write counts reveal nothing) that also
	// forfeits pruning's entire bandwidth saving.
	PadPrunedWrites bool
	// CycleJitter adds deterministic multiplicative noise to every tile's
	// latency: each chunk's cycles are scaled by a factor uniform in
	// [1−CycleJitter, 1+CycleJitter]. Models DRAM contention and refresh
	// variability; the structure attack's timing filter must tolerate it.
	CycleJitter float64
	// NoiseSeed drives the jitter (runs with equal seeds are identical).
	NoiseSeed int64
	// BiasInDRAM stores per-channel biases in the filter DRAM region (and
	// streams them with the weights). The default (false) matches the
	// paper's Equation (3), SIZE_FLTR = F²·D_IFM·D_OFM: biases arrive with
	// the layer instructions from the host. Storing them in DRAM is an
	// ablation — the extra D_OFM elements let the attacker reject wrong
	// D_OFM factorizations outright, making the structure attack stronger.
	BiasInDRAM bool
}

// DefaultConfig returns the baseline configuration used by the experiments.
func DefaultConfig() Config {
	return Config{
		BlockBytes:       4,
		ElemBytes:        4,
		IFMBufBytes:      64 << 10,
		WBufBytes:        64 << 10,
		OFMBufBytes:      64 << 10,
		PEs:              64,
		MemBytesPerCycle: 64,
		TileOverhead:     32,
		PruneBytesPerNZ:  8,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.BlockBytes == 0 {
		c.BlockBytes = d.BlockBytes
	}
	if c.ElemBytes == 0 {
		c.ElemBytes = d.ElemBytes
	}
	if c.IFMBufBytes == 0 {
		c.IFMBufBytes = d.IFMBufBytes
	}
	if c.WBufBytes == 0 {
		c.WBufBytes = d.WBufBytes
	}
	if c.OFMBufBytes == 0 {
		c.OFMBufBytes = d.OFMBufBytes
	}
	if c.PEs == 0 {
		c.PEs = d.PEs
	}
	if c.MemBytesPerCycle == 0 {
		c.MemBytesPerCycle = d.MemBytesPerCycle
	}
	if c.TileOverhead == 0 {
		c.TileOverhead = d.TileOverhead
	}
	if c.PruneBytesPerNZ == 0 {
		c.PruneBytesPerNZ = d.PruneBytesPerNZ
	}
}

// Region is an allocated DRAM byte range.
type Region struct {
	Base  uint64
	Bytes uint64
}

// End returns the first byte past the region.
func (r Region) End() uint64 { return r.Base + r.Bytes }

// Layout is the accelerator's DRAM allocation: one read-only region per
// parameterized layer (weights + bias), one feature-map region per layer
// output, and the network input region. Layers whose sole consumer is a
// concat layer write directly into the concat's region at their channel
// offset (zero-copy concatenation, as the paper assumes for fire modules).
type Layout struct {
	Input   Region
	Weights []Region // indexed by layer; zero Region for layers without parameters
	Fmaps   []Region // indexed by layer; output region of each layer
	// FmapOwner[i] is the layer whose Fmaps region layer i writes into
	// (i itself unless the output is embedded in a concat region).
	FmapOwner []int
	// FmapOffset[i] is the byte offset of layer i's output within the
	// owner's region.
	FmapOffset []uint64
}

const regionAlign = 4096

// Simulator runs a network on the modelled accelerator. A Simulator is safe
// for concurrent Run/RunMany calls (each borrows an arena from an internal
// pool); for allocation-free repeated inference give each goroutine its own
// Session.
type Simulator struct {
	cfg Config
	net *nn.Network
	lay Layout

	// zero-copy concat bookkeeping
	concatTarget []int // for each layer: consuming concat layer or -1

	// Immutable per-channel dense stored sizes, shared by every session:
	// denseCB[i][c] for layer i's output, inDenseCB for the network input.
	denseCB   [][]int
	inDenseCB []int
	// estAccesses is the tiling-derived upper bound on coalesced trace
	// records per inference, used to pre-reserve Recorder capacity.
	estAccesses int

	sessions sync.Pool // *session arenas for Run/RunMany
}

// Result captures one inference run.
type Result struct {
	// Logits is the final layer output (identical to nn inference up to the
	// configured activation semantics).
	Logits []float32
	// Trace is the observed off-chip access trace.
	Trace *memtrace.Trace
	// Acts holds every layer's output activation (ground truth for tests).
	Acts [][]float32
	// LayerCycles[i] is the simulated execution time of layer i (ground
	// truth; the adversary instead derives this from trace timestamps).
	LayerCycles []uint64
	// LayerStartCycle[i] is the cycle at which layer i began.
	LayerStartCycle []uint64
	// NZCounts[i][c] is the number of non-zero pixels in channel c of layer
	// i's output (meaningful when ZeroPrune is set; ground truth for tests).
	NZCounts [][]int
	// LayerAccessRange[i] brackets layer i's records in the trace: the
	// accesses layer i issued are Trace.Accesses[lo:hi] for [lo, hi] =
	// LayerAccessRange[i]. Region-scoped consumers (the §4 count oracle) use
	// it to read one layer's bursts without scanning the whole trace. For a
	// prefix run, layers past the stop layer carry an empty range at the
	// trace end.
	LayerAccessRange [][2]int
}

// New builds a simulator for net with the given configuration.
func New(net *nn.Network, cfg Config) (*Simulator, error) {
	cfg.fillDefaults()
	if cfg.Dataflow < OutputStationary || cfg.Dataflow > RowStationary {
		return nil, fmt.Errorf("accel: unknown dataflow %d", cfg.Dataflow)
	}
	if cfg.ZeroPrune && cfg.PruneBytesPerNZ%cfg.BlockBytes != 0 {
		return nil, fmt.Errorf("accel: PruneBytesPerNZ (%d) must be a multiple of BlockBytes (%d) so write counts are exact", cfg.PruneBytesPerNZ, cfg.BlockBytes)
	}
	s := &Simulator{cfg: cfg, net: net}
	s.buildLayout()
	s.denseCB = make([][]int, len(net.Specs))
	for i := range net.Specs {
		sh := net.Shapes[i]
		cb := make([]int, sh.C)
		for c := range cb {
			cb[c] = sh.H * sh.W * cfg.ElemBytes
		}
		s.denseCB[i] = cb
	}
	s.inDenseCB = make([]int, net.Input.C)
	for c := range s.inDenseCB {
		s.inDenseCB[c] = net.Input.H * net.Input.W * cfg.ElemBytes
	}
	s.estAccesses = s.estimateAccesses()
	return s, nil
}

// estimateAccesses bounds the number of coalesced trace records one
// inference can emit, by walking the same tiling geometry the emitters use.
// Sessions reserve this much Recorder capacity up front so even the first
// run records without growth copies. The bound need not be tight (burst
// merging only shrinks the real count); it is capped so degenerate configs
// cannot reserve unbounded memory.
func (s *Simulator) estimateAccesses() int {
	n := s.net
	total := 0
	for i := range n.Specs {
		spec := &n.Specs[i]
		out := n.Shapes[i]
		switch spec.Kind {
		case nn.KindConv:
			in := n.InShapes[i][0]
			convShape := spec.ConvOut(in)
			bandRows, ocTile := s.convTiling(i, in, convShape, out, in.C*spec.F*spec.F, false)
			bands := (out.H + bandRows - 1) / bandRows
			ocTiles := (spec.OutC + ocTile - 1) / ocTile
			if s.cfg.Dataflow == RowStationary {
				// Weight + bias preamble per tile, then per output row: up
				// to in.C IFM row bursts and out.C row writes.
				total += 2*ocTiles + out.H*(in.C+out.C)
			} else {
				// Per tile: up to in.C IFM read bursts, weight + bias reads,
				// up to ocTile OFM write bursts.
				total += bands * ocTiles * (in.C + 2 + ocTile)
			}
			total += out.C // PadPrunedWrites padding bursts
		case nn.KindFC:
			in := n.InShapes[i][0]
			rowBytes := in.Len() * s.cfg.ElemBytes
			ocTile := s.cfg.WBufBytes / rowBytes
			if ocTile < 1 {
				ocTile = 1
			}
			tiles := (spec.OutC + ocTile - 1) / ocTile
			total += in.C + 2*tiles + 2*out.C
		case nn.KindEltwise:
			total += out.C * (len(spec.Inputs) + 1)
		case nn.KindConcat:
			total += 2 * len(spec.Inputs)
		}
	}
	const capEntries = 1 << 20
	if total > capEntries {
		total = capEntries
	}
	return total
}

// Config returns the simulator's (default-filled) configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SetThreshold retunes the activation threshold between runs — the knob the
// §4 bias-recovery attack sweeps. Not safe concurrently with in-flight runs;
// the oracle serializes sweeps around its query batches.
func (s *Simulator) SetThreshold(t float32) { s.cfg.Threshold = t }

// Layout returns the DRAM allocation (ground truth for tests and for
// building oracles; the adversary recovers the equivalent information from
// the trace).
func (s *Simulator) Layout() Layout { return s.lay }

// Net returns the simulated network.
func (s *Simulator) Net() *nn.Network { return s.net }

func alignUp(v uint64, a uint64) uint64 { return (v + a - 1) / a * a }

// fmapElemBytes returns the per-element slot size of feature-map regions.
// With zero pruning, each channel slot must hold the worst-case compressed
// stream (every element non-zero at PruneBytesPerNZ bytes each), so slots
// are sized accordingly.
func (s *Simulator) fmapElemBytes() int {
	if s.cfg.ZeroPrune {
		return s.cfg.PruneBytesPerNZ
	}
	return s.cfg.ElemBytes
}

// fmapPlaneStride returns the byte stride between consecutive channel slots
// of a feature-map region with the given shape.
func (s *Simulator) fmapPlaneStride(shape nn.Shape) uint64 {
	return uint64(shape.H * shape.W * s.fmapElemBytes())
}

// inputPlaneStride returns the channel-slot stride of the region feeding
// input j of layer i (the network input region is always dense).
func (s *Simulator) inputPlaneStride(i, j int) uint64 {
	ref := s.net.Specs[i].Inputs[j]
	if ref == nn.InputRef {
		return uint64(s.net.Input.H * s.net.Input.W * s.cfg.ElemBytes)
	}
	return s.fmapPlaneStride(s.net.Shapes[ref])
}

// buildLayout allocates DRAM regions: input, per-layer weights, per-layer
// feature maps. Each region is page-aligned with a guard page so an
// adversary's interval clustering keeps them distinct (as real allocators
// do).
func (s *Simulator) buildLayout() {
	n := s.net
	elem := uint64(s.cfg.ElemBytes)
	s.lay.Weights = make([]Region, len(n.Specs))
	s.lay.Fmaps = make([]Region, len(n.Specs))
	s.lay.FmapOwner = make([]int, len(n.Specs))
	s.lay.FmapOffset = make([]uint64, len(n.Specs))
	s.concatTarget = make([]int, len(n.Specs))
	for i := range s.concatTarget {
		s.concatTarget[i] = -1
	}

	// A layer writes straight into a concat region iff its only consumer is
	// that concat.
	consumers := make([][]int, len(n.Specs))
	for i := range n.Specs {
		for _, ref := range n.Specs[i].Inputs {
			if ref >= 0 {
				consumers[ref] = append(consumers[ref], i)
			}
		}
	}
	for i := range n.Specs {
		if len(consumers[i]) == 1 {
			c := consumers[i][0]
			if n.Specs[c].Kind == nn.KindConcat {
				s.concatTarget[i] = c
			}
		}
	}

	cursor := uint64(regionAlign)
	alloc := func(bytes uint64) Region {
		r := Region{Base: cursor, Bytes: bytes}
		cursor = alignUp(cursor+bytes, regionAlign) + regionAlign
		return r
	}

	felem := uint64(s.fmapElemBytes())
	s.lay.Input = alloc(uint64(n.Input.Len()) * elem)
	for i := range n.Specs {
		if p := n.Params[i]; p != nil {
			wlen := p.W.Len()
			if s.cfg.BiasInDRAM {
				wlen += p.B.Len()
			}
			s.lay.Weights[i] = alloc(uint64(wlen) * elem)
		}
	}
	for i := range n.Specs {
		if s.concatTarget[i] >= 0 {
			continue // allocated inside the concat region below
		}
		s.lay.Fmaps[i] = alloc(uint64(n.Shapes[i].Len()) * felem)
		s.lay.FmapOwner[i] = i
	}
	// Embed zero-copy producers inside their concat regions at channel
	// offsets matching the concat input order.
	for ci := range n.Specs {
		if n.Specs[ci].Kind != nn.KindConcat {
			continue
		}
		off := uint64(0)
		for _, ref := range n.Specs[ci].Inputs {
			if ref >= 0 && s.concatTarget[ref] == ci {
				s.lay.Fmaps[ref] = Region{
					Base:  s.lay.Fmaps[ci].Base + off,
					Bytes: uint64(n.Shapes[ref].Len()) * felem,
				}
				s.lay.FmapOwner[ref] = ci
				s.lay.FmapOffset[ref] = off
			}
			if ref == nn.InputRef {
				off += uint64(n.Input.Len()) * felem
			} else {
				off += uint64(n.Shapes[ref].Len()) * felem
			}
		}
	}
}

// inputRegion returns the DRAM region and shape feeding input j of layer i.
func (s *Simulator) inputRegion(i, j int) (Region, nn.Shape) {
	ref := s.net.Specs[i].Inputs[j]
	if ref == nn.InputRef {
		return s.lay.Input, s.net.Input
	}
	return s.lay.Fmaps[ref], s.net.Shapes[ref]
}
