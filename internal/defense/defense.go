// Package defense applies deterministic, seeded defensive trace transforms
// to memory traces. The paper's related-work section names ORAM as the
// defense that defeats its attacks at significant cost; real deployments
// would try cheaper countermeasures first (Wei et al. arXiv:1803.05847,
// Alam & Ghosh arXiv:1811.05259). This package models four of them as
// post-hoc transforms over a captured memtrace.Trace — the defender's view
// of "what the DRAM bus would have carried had the accelerator shipped with
// this countermeasure" — plus an adapter wrapping the Path ORAM controller
// in internal/oram behind the same interface:
//
//   - dummy: dummy-traffic injection *inside* the victim's own buffer
//     regions, inflating observed read/write volumes and fabricating
//     read-after-write edges (traffic injected outside the footprint is
//     stripped by the tolerant analyzer's far-field filter, so a useful
//     dummy defense must pollute the victim's address space itself),
//   - pad: buffer padding to size buckets — every buffer is re-allocated at
//     its bucket size (next power of two, or the configured granularity)
//     and the pad tail is actually streamed, so distinct layer geometries
//     collapse onto shared observable sizes,
//   - rerand: address-space re-randomization between layers — at every
//     producer→consumer handoff the buffer is copied to a fresh randomized
//     base, severing the write→read address linkage the segmentation
//     keys on,
//   - fuse: layer fusion — intermediate feature maps small enough for the
//     configured on-chip buffer never round-trip through DRAM, so their
//     records vanish from the trace (a bandwidth *saving*, overhead < 1),
//   - oram: the full Path ORAM controller (cost 2·Z·(L+1) physical blocks
//     per logical access).
//
// All randomized transforms draw from a single PRNG seeded by Config.Seed,
// so equal (trace, Config) pairs produce byte-identical defended traces,
// and a zero Config returns a byte-identical copy — the same contract
// internal/corrupt pins. Every transform reports bandwidth and latency
// overhead factors via Stats.
package defense

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/oram"
)

// Kinds lists the recognized defense kinds, in documentation order.
// "none" (or the empty string) disables the defense.
var Kinds = []string{"none", "dummy", "pad", "rerand", "fuse", "oram"}

// guardBytes is the allocator's guard-page separation between victim
// buffers (see accel.layout); transforms that re-place buffers preserve it
// so the defended trace still looks like one victim address space.
const guardBytes = 4096

// regionGap is the coalescing gap used to recover buffer regions from a
// trace: one byte under the guard separation, matching the tolerant
// analyzer's default so the defender and attacker agree on what a
// "buffer" is.
const regionGap = guardBytes - 1

// maxEmitRecords bounds how many records a defense may materialize beyond
// the input, keeping Apply total on hostile (codec-valid but adversarial)
// traces. It sits far above any real victim's record count.
const maxEmitRecords = 8 << 20

// Config selects a defense and its knobs. The zero value disables every
// transform: Apply becomes a deep copy with unit overhead.
type Config struct {
	// Kind names the defense: "", "none", "dummy", "pad", "rerand",
	// "fuse", or "oram".
	Kind string

	// Seed drives the PRNG behind the randomized transforms (dummy,
	// rerand) and defaults the ORAM position-map seed. Equal seeds on
	// equal inputs defend identically.
	Seed int64

	// DummyRate is the expected number of injected dummy records per real
	// record, in [0, 8]. 0 defaults to 1.
	DummyRate float64

	// BucketBytes is the pad defense's bucket granularity: every buffer is
	// padded to the next multiple of this size. 0 selects power-of-two
	// bucketing (each buffer rounds up to the next power of two).
	BucketBytes int

	// OnChipBytes is the fuse defense's on-chip buffer capacity:
	// intermediate feature maps at most this large never reach DRAM.
	// 0 defaults to 1 MiB.
	OnChipBytes int64

	// ORAM parameterizes the oram adapter (BlockBytes, Z, Seed). A zero
	// ORAM.Seed inherits Config.Seed.
	ORAM oram.Config
}

// Enabled reports whether a defense transform is active.
func (c Config) Enabled() bool {
	return c.Kind != "" && c.Kind != "none"
}

// Validate rejects configurations no transform can run. It is the single
// gate both HTTP endpoints and the CLIs rely on, so every bound is checked
// here rather than at use sites.
func (c Config) Validate() error {
	switch c.Kind {
	case "", "none", "dummy", "pad", "rerand", "fuse", "oram":
	default:
		return fmt.Errorf("defense: unknown kind %q (want one of %v)", c.Kind, Kinds)
	}
	if c.DummyRate < 0 || c.DummyRate > 8 {
		return fmt.Errorf("defense: DummyRate must be in [0,8], got %v", c.DummyRate)
	}
	if math.IsNaN(c.DummyRate) {
		return fmt.Errorf("defense: DummyRate must be in [0,8], got NaN")
	}
	if c.BucketBytes < 0 || c.BucketBytes > 1<<30 {
		return fmt.Errorf("defense: BucketBytes must be in [0,2^30], got %d", c.BucketBytes)
	}
	if c.OnChipBytes < 0 || c.OnChipBytes > 1<<40 {
		return fmt.Errorf("defense: OnChipBytes must be in [0,2^40], got %d", c.OnChipBytes)
	}
	if err := c.ORAM.Validate(); err != nil {
		return err
	}
	return nil
}

// Stats reports the cost of one defended replay. Input counts describe the
// plaintext trace, Output counts the defended trace the adversary observes.
type Stats struct {
	// Defense is the canonical kind name ("none" for the identity).
	Defense string
	// InputBlocks / OutputBlocks count block transfers before and after.
	// The two sides may use different block sizes (the ORAM adapter usually
	// does), so overhead factors are computed from the byte totals below,
	// never from these counts.
	InputBlocks  uint64
	OutputBlocks uint64
	// InputBytes / OutputBytes are the off-chip traffic volumes
	// (blocks × block size) — the basis of BandwidthOverhead.
	InputBytes  uint64
	OutputBytes uint64
	// InputCycles / OutputCycles are the trace time spans (last cycle
	// stamps), the latency proxy under the one-transfer-per-tick model.
	// The ORAM adapter normalizes its output span to the input's block
	// granularity so the ratio compares equal-bandwidth buses.
	InputCycles  uint64
	OutputCycles uint64
	// ORAM carries the controller's own statistics when Defense == "oram".
	ORAM *oram.Stats
}

// BandwidthOverhead returns the traffic expansion factor in bytes
// (output/input; < 1 for fusion, which removes traffic).
func (s Stats) BandwidthOverhead() float64 {
	if s.InputBytes == 0 {
		return 0
	}
	return float64(s.OutputBytes) / float64(s.InputBytes)
}

// LatencyOverhead returns the trace-span expansion factor.
func (s Stats) LatencyOverhead() float64 {
	if s.InputCycles == 0 {
		return 0
	}
	return float64(s.OutputCycles) / float64(s.InputCycles)
}

// Transform is one defense: a deterministic trace rewrite plus its cost.
// Apply never modifies its input.
type Transform interface {
	// Name is the canonical kind string.
	Name() string
	// Apply returns the defended trace and cost statistics.
	Apply(tr *memtrace.Trace) (*memtrace.Trace, Stats, error)
}

// New returns the transform selected by cfg, or an error if cfg is invalid.
func New(cfg Config) (Transform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	switch cfg.Kind {
	case "", "none":
		return identity{}, nil
	case "dummy":
		return dummyTraffic{cfg}, nil
	case "pad":
		return padBuckets{cfg}, nil
	case "rerand":
		return rerandomize{cfg}, nil
	case "fuse":
		return fuseLayers{cfg}, nil
	case "oram":
		return oramAdapter{cfg}, nil
	}
	return nil, fmt.Errorf("defense: unknown kind %q", cfg.Kind)
}

// Apply is the convenience entry point: validate cfg, run its transform.
func Apply(tr *memtrace.Trace, cfg Config) (*memtrace.Trace, Stats, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, Stats{}, err
	}
	return t.Apply(tr)
}

// copyTrace deep-copies a trace (the no-mutation contract's foundation).
func copyTrace(tr *memtrace.Trace) *memtrace.Trace {
	return &memtrace.Trace{
		BlockBytes: tr.BlockBytes,
		Accesses:   append([]memtrace.Access(nil), tr.Accesses...),
	}
}

// statsFor fills a Stats pair from the two traces.
func statsFor(name string, in, out *memtrace.Trace) Stats {
	return Stats{
		Defense:      name,
		InputBlocks:  in.Blocks(),
		OutputBlocks: out.Blocks(),
		InputBytes:   traceBytes(in),
		OutputBytes:  traceBytes(out),
		InputCycles:  in.LastCycle(),
		OutputCycles: out.LastCycle(),
	}
}

// traceBytes is the trace's off-chip traffic volume, saturating on hostile
// block totals.
func traceBytes(tr *memtrace.Trace) uint64 {
	blocks, bb := tr.Blocks(), uint64(tr.BlockBytes)
	if bb != 0 && blocks > ^uint64(0)/bb {
		return ^uint64(0)
	}
	return blocks * bb
}

// recEnd returns the record's end address, saturating instead of wrapping
// on hostile extents.
func recEnd(a memtrace.Access, blockBytes int) uint64 {
	span := uint64(a.Count) * uint64(blockBytes)
	if a.Addr > ^uint64(0)-span {
		return ^uint64(0)
	}
	return a.Addr + span
}

// footprint recovers the trace's buffer regions: per-record extents
// coalesced with the guard-aware gap, sorted by base address.
func footprint(tr *memtrace.Trace) []memtrace.Interval {
	ivs := make([]memtrace.Interval, 0, len(tr.Accesses))
	for _, a := range tr.Accesses {
		ivs = append(ivs, memtrace.Interval{Lo: a.Addr, Hi: recEnd(a, tr.BlockBytes)})
	}
	return memtrace.CoalesceIntervals(ivs, regionGap)
}

// regionOf returns the index of the region containing addr, or -1.
// regions must be sorted by Lo (CoalesceIntervals guarantees it).
func regionOf(regions []memtrace.Interval, addr uint64) int {
	i := sort.Search(len(regions), func(i int) bool { return regions[i].Hi > addr })
	if i < len(regions) && addr >= regions[i].Lo {
		return i
	}
	return -1
}

// identity is the disabled defense: a byte-identical deep copy.
type identity struct{}

func (identity) Name() string { return "none" }

func (identity) Apply(tr *memtrace.Trace) (*memtrace.Trace, Stats, error) {
	out := copyTrace(tr)
	return out, statsFor("none", tr, out), nil
}

// dummyTraffic injects seeded dummy records at random offsets inside the
// victim's own buffer regions. Each real record seeds, in expectation,
// DummyRate dummies carrying its cycle stamp and (up to region capacity)
// its transfer size, so the injected traffic is time- and volume-
// correlated with real activity — bandwidth overhead tracks 1+DummyRate —
// and, critically, address-correlated: it lands inside the regions the
// tolerant analyzer keeps, inflating every observed size and planting
// spurious read-after-write edges.
type dummyTraffic struct{ cfg Config }

func (dummyTraffic) Name() string { return "dummy" }

func (d dummyTraffic) Apply(tr *memtrace.Trace) (*memtrace.Trace, Stats, error) {
	out := copyTrace(tr)
	if len(out.Accesses) == 0 {
		return out, statsFor("dummy", tr, out), nil
	}
	rate := d.cfg.DummyRate
	if rate == 0 {
		rate = 1
	}
	regions := footprint(out)
	if len(regions) == 0 {
		return out, statsFor("dummy", tr, out), nil
	}
	rng := rand.New(rand.NewSource(d.cfg.Seed))
	block := uint64(out.BlockBytes)
	budget := maxEmitRecords
	merged := make([]memtrace.Access, 0, len(out.Accesses)+int(rate*float64(len(out.Accesses)))+1)
	for _, a := range out.Accesses {
		merged = append(merged, a)
		n := int(rate)
		if rng.Float64() < rate-float64(n) {
			n++
		}
		for k := 0; k < n && budget > 0; k++ {
			r := regions[rng.Intn(len(regions))]
			span := r.Bytes() / block
			if span == 0 {
				continue
			}
			want := uint64(a.Count)
			if want == 0 {
				want = 1
			}
			if want > span {
				want = span // region smaller than the source transfer
			}
			maxOff := span - want
			if maxOff > math.MaxInt64-1 {
				maxOff = math.MaxInt64 - 1
			}
			off := uint64(rng.Int63n(int64(maxOff+1))) * block
			count := uint32(want)
			kind := memtrace.Read
			if rng.Intn(2) == 1 {
				kind = memtrace.Write
			}
			merged = append(merged, memtrace.Access{Cycle: a.Cycle, Addr: r.Lo + off, Count: count, Kind: kind})
			budget--
		}
	}
	out.Accesses = merged
	return out, statsFor("dummy", tr, out), nil
}

// bucketFor rounds size up to the configured bucket: the next multiple of
// BucketBytes, or the next power of two when BucketBytes is 0. Saturates
// instead of overflowing on hostile sizes.
func bucketFor(size uint64, bucketBytes int) uint64 {
	if size == 0 {
		return 0
	}
	if bucketBytes > 0 {
		b := uint64(bucketBytes)
		r := size % b
		if r == 0 {
			return size
		}
		if size > ^uint64(0)-(b-r) {
			return ^uint64(0)
		}
		return size + (b - r)
	}
	p := uint64(1)
	for p < size {
		if p > 1<<62 {
			return ^uint64(0)
		}
		p <<= 1
	}
	return p
}

// padBuckets re-allocates every buffer at its bucket size and streams the
// pad tail, so the adversary observes bucket geometries instead of exact
// layer sizes. Buffers are re-placed in a fresh address space (each at its
// bucket size plus the usual guard page) because padding in place would
// spill into the neighbouring buffer; the relative order of buffers is
// preserved. Pad traffic replays each kind that touched the buffer, at
// that kind's last cycle in the buffer, as one tail record.
type padBuckets struct{ cfg Config }

func (padBuckets) Name() string { return "pad" }

func (p padBuckets) Apply(tr *memtrace.Trace) (*memtrace.Trace, Stats, error) {
	out := copyTrace(tr)
	if len(out.Accesses) == 0 {
		return out, statsFor("pad", tr, out), nil
	}
	block := uint64(out.BlockBytes)
	regions := footprint(out)
	// Lay the padded buffers out in a fresh space, preserving order.
	newBase := make([]uint64, len(regions))
	bucket := make([]uint64, len(regions))
	cursor := uint64(guardBytes)
	for i, r := range regions {
		size := r.Bytes()
		// Round the occupied size up to block alignment before bucketing so
		// the pad tail starts on a block boundary.
		if rem := size % block; rem != 0 {
			size += block - rem
		}
		b := bucketFor(size, p.cfg.BucketBytes)
		if b < size {
			b = size
		}
		newBase[i] = cursor
		bucket[i] = b
		step := b + guardBytes
		if cursor > ^uint64(0)-step {
			return nil, Stats{}, fmt.Errorf("defense: pad layout overflows the address space (%d buffers)", len(regions))
		}
		cursor += step
	}
	// Track, per (region, kind), the last cycle that kind touched it, to
	// stamp the pad tails.
	type lastUse struct {
		cycle uint64
		seen  bool
	}
	last := make([][2]lastUse, len(regions))
	for i := range out.Accesses {
		a := &out.Accesses[i]
		ri := regionOf(regions, a.Addr)
		if ri < 0 {
			continue
		}
		a.Addr = newBase[ri] + (a.Addr - regions[ri].Lo)
		lu := &last[ri][a.Kind&1]
		if !lu.seen || a.Cycle >= lu.cycle {
			lu.cycle = a.Cycle
			lu.seen = true
		}
	}
	// Stream each buffer's pad tail once per kind that used it.
	var tails []memtrace.Access
	for i, r := range regions {
		size := r.Bytes()
		if rem := size % block; rem != 0 {
			size += block - rem
		}
		padBlocks := (bucket[i] - size) / block
		if padBlocks == 0 {
			continue
		}
		for k := 0; k < 2; k++ {
			lu := last[i][k]
			if !lu.seen {
				continue
			}
			addr := newBase[i] + size
			remaining := padBlocks
			for remaining > 0 && len(tails) < maxEmitRecords {
				c := remaining
				if c > math.MaxUint32 {
					c = math.MaxUint32
				}
				tails = append(tails, memtrace.Access{Cycle: lu.cycle, Addr: addr, Count: uint32(c), Kind: memtrace.Kind(k)})
				addr += c * block
				remaining -= c
			}
		}
	}
	if len(tails) > 0 {
		out.Accesses = mergeByCycle(out.Accesses, tails)
	}
	return out, statsFor("pad", tr, out), nil
}

// mergeByCycle stable-merges extra records into the main stream by cycle
// stamp; main records keep their relative order and an extra record lands
// after main records with the same stamp. extra is sorted first (stably,
// preserving generation order on ties).
func mergeByCycle(main, extra []memtrace.Access) []memtrace.Access {
	sort.SliceStable(extra, func(x, y int) bool { return extra[x].Cycle < extra[y].Cycle })
	merged := make([]memtrace.Access, 0, len(main)+len(extra))
	i, j := 0, 0
	for i < len(main) && j < len(extra) {
		if main[i].Cycle <= extra[j].Cycle {
			merged = append(merged, main[i])
			i++
		} else {
			merged = append(merged, extra[j])
			j++
		}
	}
	merged = append(merged, main[i:]...)
	merged = append(merged, extra[j:]...)
	return merged
}

// rerandomize re-randomizes buffer placement at every producer→consumer
// handoff: when a buffer that was just written is first read back, the
// runtime copies it to a fresh base (one whole-region read of the old
// placement plus one whole-region write of the new) and the consumer reads
// the copy. The write→read address linkage the segmentation keys on is
// severed — the reads hit an address the producer never wrote — at a cost
// of two extra region transits per layer boundary.
type rerandomize struct{ cfg Config }

func (rerandomize) Name() string { return "rerand" }

func (r rerandomize) Apply(tr *memtrace.Trace) (*memtrace.Trace, Stats, error) {
	out := copyTrace(tr)
	if len(out.Accesses) == 0 {
		return out, statsFor("rerand", tr, out), nil
	}
	block := uint64(out.BlockBytes)
	regions := footprint(out)
	if len(regions) == 0 {
		return out, statsFor("rerand", tr, out), nil
	}
	// Fresh placements go past the top of the existing footprint.
	top := regions[len(regions)-1].Hi
	if rem := top % guardBytes; rem != 0 {
		top += guardBytes - rem
	}
	cursor := top + guardBytes
	if cursor < top {
		// Hostile footprint already occupies the top of the address space;
		// nowhere to re-place, leave the trace unchanged (same convention as
		// corrupt's interference injector).
		return out, statsFor("rerand", tr, out), nil
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	// Current base of each region (identity until first handoff) and the
	// kind of its previous access.
	base := make([]uint64, len(regions))
	lastKind := make([]memtrace.Kind, len(regions))
	everWritten := make([]bool, len(regions))
	for i, reg := range regions {
		base[i] = reg.Lo
		lastKind[i] = memtrace.Kind(0xff) // sentinel: untouched
	}
	var copies []memtrace.Access
	var outAccs []memtrace.Access
	for _, a := range out.Accesses {
		ri := regionOf(regions, a.Addr)
		if ri < 0 {
			outAccs = append(outAccs, a)
			continue
		}
		if a.Kind == memtrace.Read && lastKind[ri] == memtrace.Write && everWritten[ri] {
			// Handoff: copy the region to a fresh randomized base.
			size := regions[ri].Bytes()
			if rem := size % block; rem != 0 {
				size += block - rem
			}
			slack := uint64(rng.Intn(16)) * guardBytes
			step := size + guardBytes + slack
			if cursor > ^uint64(0)-step || len(copies)+2 > maxEmitRecords {
				// Out of address space (hostile extents): stop re-placing,
				// keep the remaining trace as-is.
				outAccs = append(outAccs, a)
				lastKind[ri] = a.Kind
				continue
			}
			fresh := cursor + slack
			cursor += step
			blocks := size / block
			for blocks > 0 {
				c := blocks
				if c > math.MaxUint32 {
					c = math.MaxUint32
				}
				copies = append(copies,
					memtrace.Access{Cycle: a.Cycle, Addr: base[ri] + (size - blocks*block), Count: uint32(c), Kind: memtrace.Read},
					memtrace.Access{Cycle: a.Cycle, Addr: fresh + (size - blocks*block), Count: uint32(c), Kind: memtrace.Write})
				blocks -= c
			}
			base[ri] = fresh
		}
		a.Addr = base[ri] + (a.Addr - regions[ri].Lo)
		lastKind[ri] = a.Kind
		if a.Kind == memtrace.Write {
			everWritten[ri] = true
		}
		outAccs = append(outAccs, a)
	}
	out.Accesses = outAccs
	if len(copies) > 0 {
		out.Accesses = mergeByCycle(out.Accesses, copies)
	}
	return out, statsFor("rerand", tr, out), nil
}

// fuseLayers removes the DRAM round-trip of intermediate feature maps that
// fit the on-chip buffer: any buffer that is both written and later read
// (a producer→consumer intermediate) and whose extent is at most
// OnChipBytes has all its records elided. Read-only buffers (weights, the
// input image) and write-only buffers (the final output) always remain.
// This is the only defense whose bandwidth overhead is below 1.
type fuseLayers struct{ cfg Config }

func (fuseLayers) Name() string { return "fuse" }

func (f fuseLayers) Apply(tr *memtrace.Trace) (*memtrace.Trace, Stats, error) {
	out := copyTrace(tr)
	if len(out.Accesses) == 0 {
		return out, statsFor("fuse", tr, out), nil
	}
	capacity := f.cfg.OnChipBytes
	if capacity == 0 {
		capacity = 1 << 20
	}
	regions := footprint(out)
	written := make([]bool, len(regions))
	readAfterWrite := make([]bool, len(regions))
	for _, a := range out.Accesses {
		ri := regionOf(regions, a.Addr)
		if ri < 0 {
			continue
		}
		switch a.Kind {
		case memtrace.Write:
			written[ri] = true
		case memtrace.Read:
			if written[ri] {
				readAfterWrite[ri] = true
			}
		}
	}
	fused := make([]bool, len(regions))
	for i, r := range regions {
		fused[i] = written[i] && readAfterWrite[i] && r.Bytes() <= uint64(capacity)
	}
	kept := out.Accesses[:0]
	for _, a := range out.Accesses {
		if ri := regionOf(regions, a.Addr); ri >= 0 && fused[ri] {
			continue
		}
		kept = append(kept, a)
	}
	out.Accesses = kept
	return out, statsFor("fuse", tr, out), nil
}

// oramAdapter runs the Path ORAM controller behind the Transform interface.
type oramAdapter struct{ cfg Config }

func (oramAdapter) Name() string { return "oram" }

func (o oramAdapter) Apply(tr *memtrace.Trace) (*memtrace.Trace, Stats, error) {
	ocfg := o.cfg.ORAM
	if ocfg.Seed == 0 {
		ocfg.Seed = o.cfg.Seed
	}
	obf, ost, err := oram.Obfuscate(tr, ocfg)
	if err != nil {
		return nil, Stats{}, err
	}
	st := statsFor("oram", tr, obf)
	st.ORAM = &ost
	// The controller clocks one tick per physical transfer, but its blocks
	// may be far larger than the victim's. Normalize the output span to the
	// input granularity so LatencyOverhead compares equal-bandwidth buses.
	if tr.BlockBytes > 0 && obf.BlockBytes > tr.BlockBytes {
		factor := uint64(obf.BlockBytes / tr.BlockBytes)
		if st.OutputCycles > ^uint64(0)/factor {
			st.OutputCycles = ^uint64(0)
		} else {
			st.OutputCycles *= factor
		}
	}
	return obf, st, nil
}
