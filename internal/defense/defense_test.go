package defense

import (
	"bytes"
	"math"
	"testing"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/oram"
)

// testTrace builds a deterministic victim-like trace with the four buffer
// roles the transforms key on, guard-separated like accel's allocator:
//
//	region A: weights (read-only)
//	region B: input image (read-only)
//	region C: intermediate feature map (written, then read back — a RAW
//	          handoff the rerand and fuse defenses act on)
//	region D: final output (write-only)
func testTrace() *memtrace.Trace {
	tr := &memtrace.Trace{BlockBytes: 64}
	cycle := uint64(100)
	burst := func(base uint64, blocks int, kind memtrace.Kind) {
		addr := base
		for blocks > 0 {
			n := 5
			if n > blocks {
				n = blocks
			}
			tr.Accesses = append(tr.Accesses, memtrace.Access{
				Cycle: cycle, Addr: addr, Count: uint32(n), Kind: kind,
			})
			addr += uint64(n) * 64
			blocks -= n
			cycle += 3
		}
	}
	const (
		regionA = uint64(1 << 20)
		regionB = regionA + 48*64 + 8192
		regionC = regionB + 30*64 + 8192
		regionD = regionC + 40*64 + 8192
	)
	burst(regionA, 48, memtrace.Read)  // weights stream in
	burst(regionB, 30, memtrace.Read)  // input image
	burst(regionC, 40, memtrace.Write) // layer 1 OFM out
	burst(regionC, 40, memtrace.Read)  // layer 2 reads it back
	burst(regionD, 20, memtrace.Write) // final output
	return tr
}

func traceWire(t *testing.T, tr *memtrace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

func mustApply(t *testing.T, tr *memtrace.Trace, cfg Config) (*memtrace.Trace, Stats) {
	t.Helper()
	out, st, err := Apply(tr, cfg)
	if err != nil {
		t.Fatalf("Apply(%+v): %v", cfg, err)
	}
	return out, st
}

// enabledKinds is every defense that actually transforms, for table tests.
var enabledKinds = []string{"dummy", "pad", "rerand", "fuse", "oram"}

// TestZeroConfigIsByteIdentical pins the corrupt-package contract: a
// disabled Config returns a byte-identical copy, and a seed alone does not
// enable anything.
func TestZeroConfigIsByteIdentical(t *testing.T) {
	tr := testTrace()
	want := traceWire(t, tr)
	for _, cfg := range []Config{{}, {Seed: 42}, {Kind: "none", Seed: 42}} {
		out, st, err := Apply(tr, cfg)
		if err != nil {
			t.Fatalf("Apply(%+v): %v", cfg, err)
		}
		if !bytes.Equal(want, traceWire(t, out)) {
			t.Fatalf("disabled config %+v changed the trace bytes", cfg)
		}
		if cfg.Enabled() {
			t.Fatalf("config %+v claims to be enabled", cfg)
		}
		if st.Defense != "none" || st.BandwidthOverhead() != 1 || st.LatencyOverhead() != 1 {
			t.Fatalf("identity stats: %+v", st)
		}
	}
}

// TestApplyDoesNotMutateInput verifies no transform touches its input.
func TestApplyDoesNotMutateInput(t *testing.T) {
	for _, kind := range enabledKinds {
		tr := testTrace()
		want := traceWire(t, tr)
		mustApply(t, tr, Config{Kind: kind, Seed: 3})
		if !bytes.Equal(want, traceWire(t, tr)) {
			t.Fatalf("%s: Apply mutated its input trace", kind)
		}
	}
}

// TestEqualSeedsDefendIdentically pins determinism for every transform and
// seed sensitivity for the randomized ones.
func TestEqualSeedsDefendIdentically(t *testing.T) {
	for _, kind := range enabledKinds {
		cfg := Config{Kind: kind, Seed: 7}
		a := traceWire(t, first(mustApply(t, testTrace(), cfg)))
		b := traceWire(t, first(mustApply(t, testTrace(), cfg)))
		if !bytes.Equal(a, b) {
			t.Fatalf("%s: equal seeds produced different defended traces", kind)
		}
	}
	for _, kind := range []string{"dummy", "rerand", "oram"} {
		a := traceWire(t, first(mustApply(t, testTrace(), Config{Kind: kind, Seed: 7})))
		c := traceWire(t, first(mustApply(t, testTrace(), Config{Kind: kind, Seed: 8})))
		if bytes.Equal(a, c) {
			t.Fatalf("%s: different seeds produced identical defended traces", kind)
		}
	}
}

func first(tr *memtrace.Trace, _ Stats) *memtrace.Trace { return tr }

// TestValidateRejectsHostileConfigs pins the single validation gate the
// HTTP endpoints and CLIs rely on.
func TestValidateRejectsHostileConfigs(t *testing.T) {
	bad := []Config{
		{Kind: "rot13"},
		{Kind: "dummy", DummyRate: -0.1},
		{Kind: "dummy", DummyRate: 8.5},
		{Kind: "dummy", DummyRate: math.NaN()},
		{Kind: "pad", BucketBytes: -1},
		{Kind: "pad", BucketBytes: 1<<30 + 1},
		{Kind: "fuse", OnChipBytes: -1},
		{Kind: "fuse", OnChipBytes: 1<<40 + 1},
		{Kind: "oram", ORAM: oram.Config{Z: -1}},
		{Kind: "oram", ORAM: oram.Config{BlockBytes: -64}},
		{Kind: "oram", ORAM: oram.Config{BlockBytes: 48}}, // not a power of two
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted a hostile config", cfg)
		}
		if _, err := New(cfg); err == nil {
			t.Errorf("New(%+v) accepted a hostile config", cfg)
		}
		if _, _, err := Apply(testTrace(), cfg); err == nil {
			t.Errorf("Apply(%+v) accepted a hostile config", cfg)
		}
	}
	good := []Config{
		{}, {Kind: "none"}, {Kind: "dummy", DummyRate: 8}, {Kind: "pad", BucketBytes: 1 << 30},
		{Kind: "fuse", OnChipBytes: 1 << 40}, {Kind: "oram", ORAM: oram.Config{Z: 4, BlockBytes: 4096}},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v): %v", cfg, err)
		}
	}
}

// TestDummyInjectsInsideFootprint verifies the dummy defense pollutes the
// victim's own regions (anything else would be stripped as co-tenant
// interference), at a bandwidth overhead tracking 1+rate.
func TestDummyInjectsInsideFootprint(t *testing.T) {
	tr := testTrace()
	regions := footprint(tr)
	out, st := mustApply(t, tr, Config{Kind: "dummy", Seed: 9, DummyRate: 2})
	if len(out.Accesses) <= len(tr.Accesses) {
		t.Fatal("dummy injected nothing")
	}
	for i, a := range out.Accesses {
		if regionOf(regions, a.Addr) < 0 {
			t.Fatalf("record %d at %#x lies outside the victim footprint", i, a.Addr)
		}
		if end := recEnd(a, out.BlockBytes); regionOf(regions, end-1) < 0 {
			t.Fatalf("record %d end %#x lies outside the victim footprint", i, end)
		}
	}
	bw := st.BandwidthOverhead()
	if bw <= 1.2 || bw > 3.2 {
		t.Fatalf("dummy rate 2 bandwidth overhead %v, want in (1.2, 3.2]", bw)
	}
	if st.LatencyOverhead() != 1 {
		t.Fatalf("dummy must not stretch the trace span, got x%v", st.LatencyOverhead())
	}
}

// TestPadRoundsRegionsToBuckets verifies every defended buffer occupies a
// bucket-sized region: distinct layer geometries collapse onto shared
// observable sizes, and real sizes are no longer present.
func TestPadRoundsRegionsToBuckets(t *testing.T) {
	tr := testTrace()
	in := footprint(tr)
	out, st := mustApply(t, tr, Config{Kind: "pad", Seed: 1})
	got := footprint(out)
	if len(got) != len(in) {
		t.Fatalf("pad changed the region count: %d -> %d", len(in), len(got))
	}
	for i, r := range got {
		size := r.Bytes()
		if size&(size-1) != 0 {
			t.Fatalf("region %d: %d bytes is not a power of two", i, size)
		}
		if size < in[i].Bytes() {
			t.Fatalf("region %d shrank: %d -> %d bytes", i, in[i].Bytes(), size)
		}
	}
	if st.BandwidthOverhead() <= 1 {
		t.Fatalf("pad tail not streamed: bandwidth x%v", st.BandwidthOverhead())
	}
	// Explicit granularity: every region becomes a multiple of the bucket.
	out2, _ := mustApply(t, tr, Config{Kind: "pad", BucketBytes: 4096})
	for i, r := range footprint(out2) {
		if r.Bytes()%4096 != 0 {
			t.Fatalf("region %d: %d bytes not a multiple of the 4096 bucket", i, r.Bytes())
		}
	}
}

// TestRerandRelocatesConsumerReads verifies the producer→consumer handoff
// is broken by indirection: the consumer's reads move to a fresh placement
// above the original footprint, and the producer's buffer is swept exactly
// once — by the copy engine, in a single instant — instead of being read
// back over the consumer's whole compute phase.
func TestRerandRelocatesConsumerReads(t *testing.T) {
	tr := testTrace()
	in := footprint(tr)
	top := in[len(in)-1].Hi
	// Original region C: the written-then-read intermediate (index 2).
	oldC := in[2]
	out, st := mustApply(t, tr, Config{Kind: "rerand", Seed: 5})
	if len(out.Accesses) <= len(tr.Accesses) {
		t.Fatal("rerand emitted no copy traffic")
	}
	var freshWrites, freshReads int
	oldCReadCycles := map[uint64]bool{}
	var oldCReadBlocks uint64
	for _, a := range out.Accesses {
		if a.Addr >= top {
			if a.Kind == memtrace.Write {
				freshWrites++
			} else {
				freshReads++
			}
		}
		if a.Kind == memtrace.Read && a.Addr >= oldC.Lo && a.Addr < oldC.Hi {
			oldCReadCycles[a.Cycle] = true
			oldCReadBlocks += uint64(a.Count)
		}
	}
	if freshWrites == 0 || freshReads == 0 {
		t.Fatalf("no relocated traffic above the original footprint (w=%d r=%d)", freshWrites, freshReads)
	}
	if len(oldCReadCycles) != 1 {
		t.Fatalf("producer buffer read at %d distinct cycles, want 1 (the copy sweep)", len(oldCReadCycles))
	}
	if want := oldC.Bytes() / uint64(out.BlockBytes); oldCReadBlocks != want {
		t.Fatalf("copy sweep read %d blocks of the producer buffer, want %d", oldCReadBlocks, want)
	}
	if st.BandwidthOverhead() <= 1 {
		t.Fatalf("copy traffic missing: bandwidth x%v", st.BandwidthOverhead())
	}
}

// TestFuseElidesIntermediates verifies fusion removes exactly the
// written-then-read region (when it fits on chip) and nothing else.
func TestFuseElidesIntermediates(t *testing.T) {
	tr := testTrace()
	in := footprint(tr)
	out, st := mustApply(t, tr, Config{Kind: "fuse"})
	got := footprint(out)
	if len(got) != len(in)-1 {
		t.Fatalf("fuse kept %d regions, want %d (one intermediate elided)", len(got), len(in)-1)
	}
	if st.BandwidthOverhead() >= 1 {
		t.Fatalf("fusion must save bandwidth, got x%v", st.BandwidthOverhead())
	}
	// A capacity below the intermediate's size must elide nothing.
	same, st2 := mustApply(t, tr, Config{Kind: "fuse", OnChipBytes: 64})
	if len(same.Accesses) != len(tr.Accesses) || st2.BandwidthOverhead() != 1 {
		t.Fatalf("fuse with a 64-byte buffer still elided records (x%v)", st2.BandwidthOverhead())
	}
}

// TestORAMAdapterStats verifies the adapter surfaces the controller's
// statistics and inherits the defense seed.
func TestORAMAdapterStats(t *testing.T) {
	tr := testTrace()
	out, st := mustApply(t, tr, Config{Kind: "oram", Seed: 11})
	if st.Defense != "oram" || st.ORAM == nil {
		t.Fatalf("adapter stats incomplete: %+v", st)
	}
	if st.ORAM.PhysicalBlocks != out.Blocks() {
		t.Fatalf("physical blocks %d != trace blocks %d", st.ORAM.PhysicalBlocks, out.Blocks())
	}
	if st.BandwidthOverhead() < 10 {
		t.Fatalf("Path ORAM should cost dearly, got x%v", st.BandwidthOverhead())
	}
	// A coarser ORAM block must keep the byte-based overheads above 1 even
	// though the raw block count shrinks.
	_, st4k := mustApply(t, tr, Config{Kind: "oram", Seed: 11, ORAM: oram.Config{BlockBytes: 4096}})
	if st4k.BandwidthOverhead() <= 1 || st4k.LatencyOverhead() <= 1 {
		t.Fatalf("byte-normalized overheads must exceed 1: bw x%v lat x%v",
			st4k.BandwidthOverhead(), st4k.LatencyOverhead())
	}
}

// TestEmptyTrace verifies every transform handles a record-free trace.
func TestEmptyTrace(t *testing.T) {
	for _, kind := range enabledKinds {
		tr := &memtrace.Trace{BlockBytes: 64}
		out, _, err := Apply(tr, Config{Kind: kind, Seed: 1})
		if err != nil {
			t.Fatalf("%s on empty trace: %v", kind, err)
		}
		if len(out.Accesses) != 0 {
			t.Fatalf("%s fabricated %d records from an empty trace", kind, len(out.Accesses))
		}
	}
}
