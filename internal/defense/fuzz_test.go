package defense

import (
	"bytes"
	"testing"

	"cnnrev/internal/memtrace"
	"cnnrev/internal/oram"
	"cnnrev/internal/structrev"
)

// FuzzDefenseHostile drives hostile (codec-accepted but adversarial)
// traces through every defense transform and then through the adversary's
// own pipeline — tolerant analysis plus a bounded solve — and checks one
// property: nothing panics or spins. The defended trace feeds the analyzer
// exactly as the daemon's trace endpoint would feed it.
func FuzzDefenseHostile(f *testing.F) {
	addSeed := func(tr *memtrace.Trace) {
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), int64(1), 0.5, 0, int64(0))
	}
	// A minimal plausible two-layer trace with a RAW handoff.
	addSeed(&memtrace.Trace{BlockBytes: 4, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: 8192, Count: 8, Kind: memtrace.Read},
		{Cycle: 10, Addr: 16384, Count: 12, Kind: memtrace.Write},
		{Cycle: 20, Addr: 16384, Count: 12, Kind: memtrace.Read},
		{Cycle: 30, Addr: 32768, Count: 2, Kind: memtrace.Write},
	}})
	// Hostile-extent corpus: regions hugging the top of the address space
	// (pad re-layout and rerand placement must saturate, not wrap), maximal
	// cycle stamps, duplicate and interleaved regions.
	top := ^uint64(0)
	addSeed(&memtrace.Trace{BlockBytes: 64, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: top - 64*16 + 1, Count: 16, Kind: memtrace.Read},
		{Cycle: 1, Addr: top - 64, Count: 1, Kind: memtrace.Write},
	}})
	addSeed(&memtrace.Trace{BlockBytes: 1, Accesses: []memtrace.Access{
		{Cycle: top, Addr: top - 1, Count: 1, Kind: memtrace.Read},
		{Cycle: top, Addr: 0, Count: 1, Kind: memtrace.Write},
		{Cycle: 0, Addr: top - 1, Count: 1, Kind: memtrace.Write},
	}})
	// A trace claiming enormous per-record extents (DoS-guard boundary).
	addSeed(&memtrace.Trace{BlockBytes: 1 << 20, Accesses: []memtrace.Access{
		{Cycle: 0, Addr: 0, Count: 1 << 31, Kind: memtrace.Read},
		{Cycle: 1, Addr: 1 << 60, Count: 1 << 31, Kind: memtrace.Write},
		{Cycle: 2, Addr: 1 << 60, Count: 1 << 31, Kind: memtrace.Read},
	}})
	f.Add([]byte{}, int64(0), 0.0, 0, int64(0))

	f.Fuzz(func(t *testing.T, raw []byte, seed int64, rate float64, bucketBytes int, onchip int64) {
		tr, err := memtrace.DecodeTrace(raw)
		if err != nil {
			return
		}
		if len(tr.Accesses) > 2048 {
			return // bound fuzz iteration cost, not the property
		}
		if rate < 0 || rate > 8 {
			rate = 1
		}
		if bucketBytes < 0 || bucketBytes > 1<<30 {
			bucketBytes = 0
		}
		if onchip < 0 || onchip > 1<<40 {
			onchip = 0
		}
		for _, cfg := range []Config{
			{Kind: "dummy", Seed: seed, DummyRate: rate},
			{Kind: "pad", Seed: seed, BucketBytes: bucketBytes},
			{Kind: "rerand", Seed: seed},
			{Kind: "fuse", Seed: seed, OnChipBytes: onchip},
			{Kind: "oram", Seed: seed, ORAM: oram.Config{BlockBytes: 4096}},
		} {
			out, st, err := Apply(tr, cfg)
			if err != nil {
				continue // rejecting a hostile trace is fine; panicking is not
			}
			if out == nil {
				t.Fatalf("%s: nil trace without error", cfg.Kind)
			}
			// Overhead accounting must stay finite and non-negative.
			if bw := st.BandwidthOverhead(); bw < 0 {
				t.Fatalf("%s: negative bandwidth overhead %v", cfg.Kind, bw)
			}
			if len(out.Accesses) > len(tr.Accesses)+maxEmitRecords {
				t.Fatalf("%s: emitted %d records from %d input records", cfg.Kind, len(out.Accesses), len(tr.Accesses))
			}
			a, err := structrev.AnalyzeTolerant(out, 3136, 4, structrev.TolerantOptions{})
			if err != nil {
				continue
			}
			opt := structrev.DefaultOptions()
			opt.MaxStructures = 200
			_, _ = structrev.Solve(a, 28, 1, 10, opt)
		}
	})
}
