package defense

import (
	"math/rand"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
)

// benchTrace captures the LeNet victim once per benchmark: a real
// accelerator trace, so the reported overhead factors are the ones the
// defense matrix experiment publishes.
func benchTrace(b *testing.B) *memtrace.Trace {
	b.Helper()
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		b.Fatal(err)
	}
	return res.Trace
}

func benchDefense(b *testing.B, cfg Config) {
	tr := benchTrace(b)
	var st Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		_, st, err = Apply(tr, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(st.BandwidthOverhead(), "bw_overhead")
	b.ReportMetric(st.LatencyOverhead(), "lat_overhead")
	b.ReportMetric(float64(st.OutputBlocks), "out_blocks")
}

func BenchmarkDefense_Pad(b *testing.B)   { benchDefense(b, Config{Kind: "pad", Seed: 7}) }
func BenchmarkDefense_Dummy(b *testing.B) { benchDefense(b, Config{Kind: "dummy", Seed: 7}) }
