package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/corrupt"
	"cnnrev/internal/defense"
	"cnnrev/internal/memtrace"
)

// payloadHeader is the job-store wire form of an attackRequest, minus the
// trace body (which rides behind it in its native serialized form so a
// multi-megabyte upload is never base64-inflated through JSON). The frontend
// resolves everything request-shaped — including the effective MaxStructures
// merged with the server cap — before encoding, so a worker replica with a
// different local configuration still solves under the submitting frontend's
// bound and the result matches the frontend's cache key.
type payloadHeader struct {
	Mode string `json:"mode"`

	TraceHash string `json:"trace_hash,omitempty"`
	InW       int    `json:"inw,omitempty"`
	InD       int    `json:"ind,omitempty"`
	ElemBytes int    `json:"elem,omitempty"`

	Model    string  `json:"model,omitempty"`
	DepthDiv int     `json:"depth_div,omitempty"`
	Filters  int     `json:"filters,omitempty"`
	ZeroFrac float64 `json:"zero_frac,omitempty"`
	Seed     int64   `json:"seed,omitempty"`

	Classes       int            `json:"classes,omitempty"`
	Modular       bool           `json:"modular,omitempty"`
	Tol           float64        `json:"tol,omitempty"`
	AllowStrideOK bool           `json:"allow_stride_ok,omitempty"`
	MaxStructures int            `json:"max_structures,omitempty"`
	CapResolved   bool           `json:"cap_resolved,omitempty"`
	MaxReturn     int            `json:"max_return,omitempty"`
	Rank          *rankParams    `json:"rank,omitempty"`
	Weights       bool           `json:"weights,omitempty"`
	TimeoutNS     int64          `json:"timeout_ns,omitempty"`
	Dataflow      string         `json:"dataflow,omitempty"`
	Tolerant      bool           `json:"tolerant,omitempty"`
	Corrupt       corrupt.Config `json:"corrupt,omitempty"`
	Defense       defense.Config `json:"defense,omitempty"`
}

// encodeRequest serializes a parsed request for the job store:
// a 4-byte little-endian header length, the JSON header, then (trace mode)
// the raw serialized trace.
func encodeRequest(req *attackRequest) ([]byte, error) {
	hdr := payloadHeader{
		Mode:      req.mode,
		TraceHash: req.traceHash, InW: req.inW, InD: req.inD, ElemBytes: req.elemBytes,
		Model: req.model, DepthDiv: req.depthDiv, Filters: req.filters,
		ZeroFrac: req.zeroFrac, Seed: req.seed,
		Classes: req.classes, Modular: req.modular, Tol: req.tol,
		AllowStrideOK: req.allowStrideOK,
		MaxStructures: req.maxStructures, CapResolved: req.capResolved,
		MaxReturn: req.maxReturn, Rank: req.rank, Weights: req.weights,
		TimeoutNS: int64(req.timeout), Dataflow: req.dataflow.String(),
		Tolerant: req.tolerant, Corrupt: req.corrupt, Defense: req.defense,
	}
	hb, err := json.Marshal(&hdr)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	var lenb [4]byte
	binary.LittleEndian.PutUint32(lenb[:], uint32(len(hb)))
	buf.Write(lenb[:])
	buf.Write(hb)
	if req.mode == "trace" {
		if req.trace == nil {
			return nil, fmt.Errorf("serve: trace mode request without a trace")
		}
		if err := req.trace.Write(&buf); err != nil {
			return nil, err
		}
	}
	return buf.Bytes(), nil
}

// decodeRequest parses a job payload back into an attackRequest. The
// payload comes from this package's own encoder (possibly in another
// process), so errors mean version skew or corruption, not client input.
func decodeRequest(payload []byte) (*attackRequest, error) {
	if len(payload) < 4 {
		return nil, fmt.Errorf("serve: job payload too short")
	}
	hlen := binary.LittleEndian.Uint32(payload[:4])
	if int(hlen) > len(payload)-4 {
		return nil, fmt.Errorf("serve: job payload header length %d exceeds payload", hlen)
	}
	var hdr payloadHeader
	if err := json.Unmarshal(payload[4:4+hlen], &hdr); err != nil {
		return nil, fmt.Errorf("serve: job payload header: %w", err)
	}
	df, err := accel.ParseDataflow(hdr.Dataflow)
	if err != nil {
		return nil, fmt.Errorf("serve: job payload dataflow: %w", err)
	}
	req := &attackRequest{
		mode:      hdr.Mode,
		traceHash: hdr.TraceHash, inW: hdr.InW, inD: hdr.InD, elemBytes: hdr.ElemBytes,
		model: hdr.Model, depthDiv: hdr.DepthDiv, filters: hdr.Filters,
		zeroFrac: hdr.ZeroFrac, seed: hdr.Seed,
		classes: hdr.Classes, modular: hdr.Modular, tol: hdr.Tol,
		allowStrideOK: hdr.AllowStrideOK,
		maxStructures: hdr.MaxStructures, capResolved: hdr.CapResolved,
		maxReturn: hdr.MaxReturn, rank: hdr.Rank, weights: hdr.Weights,
		timeout:  time.Duration(hdr.TimeoutNS),
		dataflow: df, tolerant: hdr.Tolerant, corrupt: hdr.Corrupt,
		defense: hdr.Defense,
	}
	if req.mode == "trace" {
		tr, err := memtrace.DecodeTrace(payload[4+hlen:])
		if err != nil {
			return nil, fmt.Errorf("serve: job payload trace: %w", err)
		}
		req.trace = tr
	}
	return req, nil
}

// resultEnvelope is the job-store wire form of a finished job's HTTP
// outcome: the status and pre-marshaled response body a frontend should
// relay. Cacheable marks complete 200s — the only outcomes the
// content-addressed result cache may store.
type resultEnvelope struct {
	Status    int             `json:"status"`
	Body      json.RawMessage `json:"body,omitempty"`
	ErrMsg    string          `json:"error,omitempty"`
	Cacheable bool            `json:"cacheable,omitempty"`
}

func encodeEnvelope(env *resultEnvelope) []byte {
	b, err := json.Marshal(env)
	if err != nil {
		// The envelope is built from marshalable fields only; failure here is
		// a programming error, but a failed job beats a crashed worker.
		b, _ = json.Marshal(&resultEnvelope{Status: 500, ErrMsg: "result encoding failed"})
	}
	return b
}

func decodeEnvelope(data []byte) (*resultEnvelope, error) {
	var env resultEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("serve: result envelope: %w", err)
	}
	return &env, nil
}
