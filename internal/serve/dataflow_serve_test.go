package serve

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"cnnrev/internal/accel"
	"cnnrev/internal/nn"
)

// victimTraceBytes is lenetTraceBytes generalized over the capture dataflow.
func victimTraceBytes(t *testing.T, df accel.Dataflow) []byte {
	t.Helper()
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{Dataflow: df})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// postTraceJSON wraps postTrace (serve_test.go) and decodes the response on
// a 200.
func postTraceJSON(t *testing.T, ts *httptest.Server, query string, raw []byte) (*attackResponse, int, string) {
	t.Helper()
	code, body, marker := postTrace(t, ts, query, raw)
	if code != http.StatusOK {
		return nil, code, marker
	}
	var ar attackResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	return &ar, code, marker
}

// TestSimulateDataflowEndToEnd: the simulate endpoint accepts every
// dataflow spelling, runs the capture on the selected backend, reports both
// the configured and the auto-detected scheduling, and feeds the
// per-dataflow stage metrics.
func TestSimulateDataflowEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		body string
		want string
	}{
		{`{"model":"lenet"}`, "output-stationary"},
		{`{"model":"lenet","dataflow":"ws"}`, "weight-stationary"},
		{`{"model":"lenet","dataflow":"row-stationary"}`, "row-stationary"},
	}
	for _, c := range cases {
		ar, code := postSimulate(t, ts, c.body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", c.body, code)
		}
		if ar.Dataflow != c.want {
			t.Fatalf("%s: ran under %q, want %q", c.body, ar.Dataflow, c.want)
		}
		if ar.DetectedDF != c.want {
			t.Fatalf("%s: detected %q, want %q", c.body, ar.DetectedDF, c.want)
		}
		if _, ok := ar.StageMS["detect"]; !ok {
			t.Fatalf("%s: missing detect stage timing", c.body)
		}
		if ar.NumStructures == 0 {
			t.Fatalf("%s: empty solve set", c.body)
		}
	}
	for _, df := range []string{"output-stationary", "weight-stationary", "row-stationary"} {
		if n := s.Metrics().StageDataflowCount("capture", df); n == 0 {
			t.Fatalf("no capture stage executions recorded under %s", df)
		}
	}
}

// TestSimulateDataflowValidation: unknown dataflow spellings are a 400, not
// a silent output-stationary run.
func TestSimulateDataflowValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if _, code := postSimulate(t, ts, `{"model":"lenet","dataflow":"weigth-stationary"}`); code != http.StatusBadRequest {
		t.Fatalf("bad simulate dataflow: status %d, want 400", code)
	}
}

// TestTraceDataflowEndToEnd: the trace endpoint accepts the dataflow
// parameter, validates it before reading the body, and auto-detects the
// scheduling that actually produced the upload — including when it
// contradicts the declared prior.
func TestTraceDataflowEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	dataflows := []struct {
		df   accel.Dataflow
		name string
	}{
		{accel.OutputStationary, "output-stationary"},
		{accel.WeightStationary, "weight-stationary"},
		{accel.RowStationary, "row-stationary"},
	}
	if raceEnabled {
		dataflows = dataflows[:2] // scale work down under the race detector
	}
	for _, d := range dataflows {
		raw := victimTraceBytes(t, d.df)
		ar, code, _ := postTraceJSON(t, ts, "inw=28&ind=1&classes=10&dataflow=os", raw)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", d.name, code)
		}
		if ar.DetectedDF != d.name {
			t.Fatalf("%s trace detected as %q", d.name, ar.DetectedDF)
		}
		if ar.Dataflow != "output-stationary" {
			t.Fatalf("declared prior not echoed: %q", ar.Dataflow)
		}
	}

	// Validation happens on the query string alone: a bad dataflow is
	// rejected without a trace body at all.
	_, code, _ := postTraceJSON(t, ts, "inw=28&ind=1&classes=10&dataflow=systolic", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad trace dataflow: status %d, want 400", code)
	}
}

// TestDataflowSplitsCacheKey: the same upload under a different dataflow is
// a different result-cache entry — same trace + different dataflow is never
// a cache hit — while repeating a (trace, dataflow) pair hits.
func TestDataflowSplitsCacheKey(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	raw := victimTraceBytes(t, accel.OutputStationary)

	if _, code, hdr := postTraceJSON(t, ts, "inw=28&ind=1&classes=10&dataflow=os", raw); code != http.StatusOK || hdr == "hit" {
		t.Fatalf("first os request: status %d, cache %q", code, hdr)
	}
	if _, code, hdr := postTraceJSON(t, ts, "inw=28&ind=1&classes=10&dataflow=ws", raw); code != http.StatusOK || hdr == "hit" {
		t.Fatalf("same trace under ws must miss the cache: status %d, cache %q", code, hdr)
	}
	if _, code, hdr := postTraceJSON(t, ts, "inw=28&ind=1&classes=10&dataflow=os", raw); code != http.StatusOK || hdr != "hit" {
		t.Fatalf("repeated os request must hit the cache: status %d, cache %q", code, hdr)
	}
	// The bare spelling and the canonical one resolve to the same key: a
	// client that spells it out does not re-run the attack.
	if _, code, hdr := postTraceJSON(t, ts, "inw=28&ind=1&classes=10&dataflow=weight-stationary", raw); code != http.StatusOK || hdr != "hit" {
		t.Fatalf("ws alias must share the ws cache entry: status %d, cache %q", code, hdr)
	}
	if hits := s.Metrics().Counter("cache_hits"); hits != 2 {
		t.Fatalf("recorded %d cache hits, want 2", hits)
	}
	// The simulate surface splits on the same axis.
	if ar, code := postSimulate(t, ts, `{"model":"lenet","dataflow":"rs"}`); code != http.StatusOK || ar.Cached {
		t.Fatalf("first rs simulate: status %d, cached %v", code, ar != nil && ar.Cached)
	}
	if ar, code := postSimulate(t, ts, `{"model":"lenet"}`); code != http.StatusOK || ar.Cached {
		t.Fatalf("default-dataflow simulate must not reuse the rs entry: status %d", code)
	}
	if ar, code := postSimulate(t, ts, `{"model":"lenet","dataflow":"rs"}`); code != http.StatusOK || !ar.Cached {
		t.Fatalf("repeated rs simulate must be served from cache: status %d", code)
	}
}
