// Package serve implements revcnnd, the long-running attack-pipeline
// service: it accepts uploaded memory traces (and simulate-by-spec
// requests), and runs the paper's structure attack — optionally followed by
// candidate ranking and the zero-pruning weight attack — as jobs on a
// bounded queue with per-job deadlines. Overload is rejected up front
// (429), an abandoned client's job is cancelled at the next
// candidate/epoch/weight boundary, a deadline yields the partial result
// accumulated so far, and shutdown drains exactly the in-flight jobs while
// aborting queued ones.
package serve

import (
	"context"
	"errors"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the number of jobs executed concurrently. Each job already
	// fans out internally on the shared tensor worker pool, so this defaults
	// to 1; raise it to trade per-job latency for throughput.
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// submissions beyond it are rejected with 429.
	QueueDepth int
	// JobTimeout caps every job's deadline; requests may ask for less but
	// never more. Default 60s.
	JobTimeout time.Duration
	// MaxUploadBytes bounds trace upload request bodies. Default 64 MiB.
	MaxUploadBytes int64
	// MaxStructures caps the solver's enumeration per job (0 = solver
	// default). It protects the service from pathological traces whose
	// candidate count explodes.
	MaxStructures int
	// CacheBytes bounds the content-addressed result cache (keys plus
	// stored response bodies). 0 selects the 256 MiB default; negative
	// disables caching entirely.
	CacheBytes int64
	// Logger receives structured per-job logs; defaults to slog.Default().
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// errQueueFull rejects a submission because the queue is at capacity.
var errQueueFull = errors.New("serve: job queue full")

// errDraining rejects a submission (or aborts a queued job) during shutdown.
var errDraining = errors.New("serve: server shutting down")

// job is one queued attack request and its completion slot.
type job struct {
	id  uint64
	ctx context.Context
	req *attackRequest

	// Written by exactly one of runJob / Shutdown, then done is closed.
	resp   *attackResponse
	status int // HTTP status when resp is nil
	err    error
	done   chan struct{}
}

func (j *job) finish(resp *attackResponse, status int, err error) {
	j.resp, j.status, j.err = resp, status, err
	close(j.done)
}

// Server runs the bounded job queue and its HTTP surface.
type Server struct {
	cfg   Config
	log   *slog.Logger
	met   *Metrics
	mux   *http.ServeMux
	cache *resultCache // nil when caching is disabled

	mu       sync.Mutex
	cond     *sync.Cond
	pending  []*job
	draining bool

	wg     sync.WaitGroup
	jobSeq atomic.Uint64
}

// New builds a server and starts its worker goroutines.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{cfg: cfg, log: cfg.Logger, met: newMetrics()}
	if cfg.CacheBytes > 0 {
		s.cache = newResultCache(cfg.CacheBytes)
	}
	s.cond = sync.NewCond(&s.mu)
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters, mainly for tests.
func (s *Server) Metrics() *Metrics { return s.met }

// queueDepth returns the number of jobs waiting for a worker.
func (s *Server) queueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// cacheStats reports the result cache's occupancy; zeros when disabled.
func (s *Server) cacheStats() (bytes int64, entries int) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.stats()
}

// enqueue admits a job to the bounded queue, or reports why it cannot.
func (s *Server) enqueue(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errDraining
	}
	if len(s.pending) >= s.cfg.QueueDepth {
		s.met.rejected.Add(1)
		return errQueueFull
	}
	s.pending = append(s.pending, j)
	s.cond.Signal()
	return nil
}

// dequeue blocks until a job is available; nil means the server is draining
// and the worker should exit.
func (s *Server) dequeue() *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.pending) == 0 && !s.draining {
		s.cond.Wait()
	}
	if len(s.pending) == 0 {
		return nil
	}
	j := s.pending[0]
	s.pending = s.pending[1:]
	return j
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.dequeue()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// Shutdown drains the server: new submissions are refused, every queued
// (not yet started) job is aborted with 503, and in-flight jobs run to
// completion. It returns once all workers have exited, or ctx's error if
// that takes longer than ctx allows (workers keep finishing in the
// background either way).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	aborted := s.pending
	s.pending = nil
	s.cond.Broadcast()
	s.mu.Unlock()

	for _, j := range aborted {
		s.met.aborted.Add(1)
		s.log.Info("job aborted by shutdown", "job", j.id)
		j.finish(nil, http.StatusServiceUnavailable, errDraining)
	}

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runJob executes one job and classifies its outcome for metrics/logging.
func (s *Server) runJob(j *job) {
	s.met.running.Add(1)
	s.met.started.Add(1)
	start := time.Now()
	s.log.Info("job start", "job", j.id, "mode", j.req.mode, "model", j.req.model,
		"rank", j.req.rank != nil, "weights", j.req.weights, "timeout", j.req.timeout)

	resp, status, err := s.execute(j)

	elapsed := time.Since(start)
	s.met.running.Add(-1)
	outcome := "ok"
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		outcome = "cancelled"
		s.met.cancelled.Add(1)
	case err != nil:
		outcome = "error"
		s.met.failed.Add(1)
	case resp.Partial:
		outcome = "partial"
		s.met.partial.Add(1)
		s.met.completed.Add(1)
	default:
		s.met.completed.Add(1)
	}
	s.log.Info("job end", "job", j.id, "outcome", outcome, "elapsed", elapsed,
		"structures", respStructures(resp), "err", err)
	j.finish(resp, status, err)
}

func respStructures(resp *attackResponse) int {
	if resp == nil {
		return 0
	}
	return resp.NumStructures
}
