// Package serve implements revcnnd, the attack-pipeline service: it accepts
// uploaded memory traces (and simulate-by-spec requests) and runs the
// paper's structure attack — optionally followed by candidate ranking and
// the zero-pruning weight attack — as jobs on a pluggable store
// (internal/jobstore). The default in-process store preserves the original
// single-process contract: overload is rejected up front (429), an
// abandoned client's job is cancelled at the next candidate/epoch/weight
// boundary, a deadline yields the partial result accumulated so far, and
// shutdown drains exactly the in-flight jobs while aborting queued ones.
//
// Pointing several processes at one shared filesystem store splits the
// service horizontally: frontends (stateless — every byte of job state
// lives in the store) submit and wait, workers claim jobs under a lease and
// heartbeat while executing, and a worker that dies mid-job has its lease
// expire and the job re-claimed elsewhere. The async surface (wait=false,
// GET /v1/jobs/{id}) lets clients outlive any single frontend connection.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"cnnrev/internal/jobstore"
)

// Server roles. A frontend serves the HTTP attack/job surface but runs no
// workers; a worker claims and executes jobs but serves only
// healthz/metrics; "both" (the default) is the original single-process
// deployment.
const (
	RoleBoth     = "both"
	RoleFrontend = "frontend"
	RoleWorker   = "worker"
)

// Config parameterizes a Server.
type Config struct {
	// Workers is the number of jobs executed concurrently. Each job already
	// fans out internally on the shared tensor worker pool, so this defaults
	// to 1; raise it to trade per-job latency for throughput. Idle workers
	// also help execute other jobs' rank rungs (see runShared). Forced to 0
	// by RoleFrontend.
	Workers int
	// QueueDepth bounds how many accepted jobs may wait for a worker;
	// submissions beyond it are rejected with 429. Only consulted when the
	// server builds its own in-process store (Store == nil).
	QueueDepth int
	// JobTimeout caps every job's deadline; requests may ask for less but
	// never more. Default 60s. Queue wait counts against the deadline.
	JobTimeout time.Duration
	// MaxUploadBytes bounds trace upload request bodies. Default 64 MiB.
	MaxUploadBytes int64
	// MaxStructures caps the solver's enumeration per job (0 = solver
	// default). It protects the service from pathological traces whose
	// candidate count explodes. The cap is resolved on the frontend and
	// travels with the job, so worker replicas with different local caps
	// still produce the submitting frontend's result.
	MaxStructures int
	// CacheBytes bounds the content-addressed result cache (keys plus
	// stored response bodies). 0 selects the 256 MiB default; negative
	// disables caching entirely.
	CacheBytes int64
	// Store is the job store. nil builds a private in-process store
	// (jobstore.NewMem) with QueueDepth/MaxRetries, which the server also
	// closes on shutdown; a provided store (e.g. jobstore.OpenFS shared by
	// several processes) stays the caller's to close.
	Store jobstore.Store
	// Role selects which halves of the service run: RoleBoth (default),
	// RoleFrontend, or RoleWorker.
	Role string
	// Lease is how long a claimed job may go without a heartbeat before the
	// store re-queues it for another worker. Default 15s.
	Lease time.Duration
	// MaxRetries bounds lease-expiry re-claims before a job is failed as
	// orphaned. Only consulted when the server builds its own store.
	MaxRetries int
	// Logger receives structured per-job logs; defaults to slog.Default().
	Logger *slog.Logger
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.MaxUploadBytes <= 0 {
		c.MaxUploadBytes = 64 << 20
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.Role == "" {
		c.Role = RoleBoth
	}
	if c.Role == RoleFrontend {
		c.Workers = 0
	}
	if c.Lease <= 0 {
		c.Lease = 15 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
}

// errDraining rejects a submission (or reports an aborted queued job)
// during shutdown.
var errDraining = errors.New("serve: server shutting down")

// job is one claimed attack request as the worker executes it.
type job struct {
	id  string
	ctx context.Context
	req *attackRequest
}

// Server runs the job store's HTTP surface and (role permitting) its
// workers.
type Server struct {
	cfg      Config
	log      *slog.Logger
	met      *Metrics
	mux      *http.ServeMux
	cache    *resultCache // nil when caching is disabled
	store    jobstore.Store
	ownStore bool
	instance string // worker-name prefix, unique per process

	// shards hands rung sub-tasks from a ranking job to idle workers; see
	// runShared. Unbuffered: a shard is only ever offered, never queued, so
	// a busy pool degrades to the caller training its own rung serially.
	shards chan func()

	mu       sync.Mutex
	draining bool
	tracked  map[string]struct{} // sync submissions owned by this frontend

	// claimGate serializes Shutdown against in-progress Claims: workers hold
	// the read side while claiming, Shutdown takes the write side after
	// closing stopc, so once Shutdown proceeds no further claim can start
	// and every queued job it cancels stays unclaimed.
	claimGate sync.RWMutex
	stopc     chan struct{}
	stopped   atomic.Bool
	wg        sync.WaitGroup
}

// New builds a server and starts its worker goroutines.
func New(cfg Config) *Server {
	cfg.fillDefaults()
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		met:      newMetrics(cfg.Workers),
		tracked:  make(map[string]struct{}),
		shards:   make(chan func()),
		stopc:    make(chan struct{}),
		instance: fmt.Sprintf("p%d", os.Getpid()),
	}
	if cfg.CacheBytes > 0 {
		s.cache = newResultCache(cfg.CacheBytes)
	}
	if cfg.Store != nil {
		s.store = cfg.Store
	} else {
		s.store = jobstore.NewMem(jobstore.Options{
			QueueDepth: cfg.QueueDepth,
			MaxRetries: cfg.MaxRetries,
		})
		s.ownStore = true
	}
	s.mux = http.NewServeMux()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the server's counters, mainly for tests.
func (s *Server) Metrics() *Metrics { return s.met }

// Store exposes the job store, mainly for tests.
func (s *Server) Store() jobstore.Store { return s.store }

// queueDepth returns the number of jobs waiting for a worker.
func (s *Server) queueDepth() int {
	return s.store.Stats().Queued
}

// cacheStats reports the result cache's occupancy; zeros when disabled.
func (s *Server) cacheStats() (bytes int64, entries int) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.stats()
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// track registers a synchronous submission so Shutdown can abort it while
// queued. Async submissions are deliberately untracked: they belong to the
// store, survive this process, and are exactly what lease recovery exists
// for.
func (s *Server) track(id string) {
	s.mu.Lock()
	s.tracked[id] = struct{}{}
	s.mu.Unlock()
}

func (s *Server) untrack(id string) {
	s.mu.Lock()
	delete(s.tracked, id)
	s.mu.Unlock()
}

// Shutdown drains the server: new submissions are refused, every tracked
// queued (not yet claimed) job is aborted with 503, and in-flight jobs run
// to completion. It returns once all workers have exited, or ctx's error if
// that takes longer than ctx allows (workers keep finishing in the
// background either way).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	tracked := make([]string, 0, len(s.tracked))
	for id := range s.tracked {
		tracked = append(tracked, id)
	}
	s.mu.Unlock()

	// Stop claims: after stopped+stopc no worker begins a new job, and the
	// write lock waits out any Claim already in progress — so the queued-job
	// snapshot below cannot race a claim.
	s.stopped.Store(true)
	close(s.stopc)
	s.claimGate.Lock()
	s.claimGate.Unlock() //nolint:staticcheck // barrier, not a critical section

	for _, id := range tracked {
		rec, err := s.store.Fetch(id)
		if err != nil || rec.State != jobstore.StateQueued {
			continue // in flight (drains to completion) or already terminal
		}
		if _, err := s.store.Cancel(id); err == nil {
			s.met.aborted.Add(1)
			s.log.Info("job aborted by shutdown", "job", id)
		}
	}

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		err = ctx.Err()
	}
	if err == nil && s.ownStore {
		s.store.Close()
	}
	return err
}

// worker is one claim-execute loop. Between claims it lends itself to other
// jobs' rank rungs via the shard channel, so a mostly-idle pool accelerates
// the one job that is running.
func (s *Server) worker(idx int) {
	defer s.wg.Done()
	name := fmt.Sprintf("%s-w%d", s.instance, idx)
	for {
		if s.stopped.Load() {
			return
		}
		c, ok := s.claim(name)
		if !ok {
			return
		}
		if c == nil {
			select {
			case <-s.stopc:
				return
			case fn := <-s.shards:
				fn()
			case <-s.store.Notify():
			case <-time.After(250 * time.Millisecond):
			}
			continue
		}
		s.runClaimed(idx, name, c)
	}
}

// claim attempts one store claim under the shutdown gate. ok=false means
// the server is draining; a nil claim with ok=true means nothing to do.
func (s *Server) claim(name string) (*jobstore.Claim, bool) {
	s.claimGate.RLock()
	defer s.claimGate.RUnlock()
	if s.stopped.Load() {
		return nil, false
	}
	c, err := s.store.Claim(name, s.cfg.Lease)
	switch {
	case err == nil:
		return c, true
	case errors.Is(err, jobstore.ErrEmpty):
		return nil, true
	case errors.Is(err, jobstore.ErrClosed):
		return nil, false
	default:
		s.log.Error("claim failed", "worker", name, "err", err)
		return nil, true
	}
}

// heartbeatLoop renews the claim's lease until stop closes. A lost lease
// (expired and re-claimed or orphaned while this worker stalled) cancels
// the job context and sets lost, telling runClaimed to discard the result;
// a cancellation request also cancels the context but keeps heartbeating,
// so the store can see the worker acknowledge via Complete.
func (s *Server) heartbeatLoop(c *jobstore.Claim, name string, cancelJob context.CancelFunc, lost *atomic.Bool, stop <-chan struct{}) {
	interval := s.cfg.Lease / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 2*time.Second {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			cancelReq, err := s.store.Heartbeat(c.ID, name, c.Attempt, s.cfg.Lease)
			switch {
			case err == nil:
				if cancelReq {
					cancelJob()
				}
			case errors.Is(err, jobstore.ErrLost) || errors.Is(err, jobstore.ErrNotFound):
				lost.Store(true)
				cancelJob()
				return
			case errors.Is(err, jobstore.ErrClosed):
				return
			default:
				// Transient store trouble: keep the job running and retry on
				// the next tick; the lease has interval*4 of slack.
				s.log.Warn("heartbeat failed", "job", c.ID, "err", err)
			}
		}
	}
}

// runClaimed executes one claimed job end to end: decode the payload, run
// the pipeline under the job deadline with the lease heartbeating, classify
// the outcome, and complete the job with a result envelope. The (ID,
// Attempt) completion credential makes delivery exactly-once even when this
// worker stalls past its lease: the store rejects the stale Complete and
// the re-claiming worker's result is the one that counts.
func (s *Server) runClaimed(idx int, name string, c *jobstore.Claim) {
	s.met.observeQueueWait(c.ClaimedAt.Sub(c.SubmittedAt))
	s.met.workerJob(idx)
	s.met.running.Add(1)
	s.met.started.Add(1)
	defer s.met.running.Add(-1)

	req, derr := decodeRequest(c.Payload)
	if derr != nil {
		s.met.failed.Add(1)
		s.log.Error("job payload undecodable", "job", c.ID, "err", derr)
		env := encodeEnvelope(&resultEnvelope{Status: http.StatusInternalServerError, ErrMsg: derr.Error()})
		s.store.Complete(c.ID, name, c.Attempt, env, "payload decode: "+derr.Error())
		return
	}

	base := context.Background()
	var cancelDeadline context.CancelFunc = func() {}
	if !c.Deadline.IsZero() {
		base, cancelDeadline = context.WithDeadline(base, c.Deadline)
	}
	ctx, cancelJob := context.WithCancel(base)
	defer cancelDeadline()
	defer cancelJob()

	var lost atomic.Bool
	if cw, ok := s.store.(jobstore.CancelWatcher); ok {
		// Fast path: the in-process store fires this the instant Cancel is
		// called, preserving the original one-epoch disconnect latency.
		cw.WatchCancel(c.ID, c.Attempt, cancelJob)
	}
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		s.heartbeatLoop(c, name, cancelJob, &lost, hbStop)
	}()

	start := time.Now()
	s.log.Info("job start", "job", c.ID, "worker", name, "attempt", c.Attempt,
		"mode", req.mode, "model", req.model, "rank", req.rank != nil,
		"weights", req.weights, "timeout", req.timeout)

	resp, status, err := s.execute(&job{id: c.ID, ctx: ctx, req: req})

	close(hbStop)
	<-hbDone
	elapsed := time.Since(start)

	if lost.Load() {
		// The lease expired out from under us: the job now belongs to
		// whoever re-claimed it (or it was orphaned). Discard everything —
		// Complete would be rejected with ErrLost anyway.
		s.log.Warn("job lease lost; discarding result", "job", c.ID, "worker", name,
			"attempt", c.Attempt, "elapsed", elapsed)
		return
	}

	outcome := "ok"
	var env *resultEnvelope
	var failure string
	switch {
	case err != nil && errors.Is(err, context.Canceled):
		outcome = "cancelled"
		s.met.cancelled.Add(1)
		// Complete with no result: cancelRequested terminalizes the job as
		// cancelled, acknowledging the cancellation.
	case err != nil:
		outcome = "error"
		s.met.failed.Add(1)
		env = &resultEnvelope{Status: status, ErrMsg: err.Error()}
		failure = err.Error()
	case resp.Partial:
		outcome = "partial"
		s.met.partial.Add(1)
		s.met.completed.Add(1)
		env = s.envelope(resp, status)
	default:
		s.met.completed.Add(1)
		env = s.envelope(resp, status)
	}
	var result []byte
	if env != nil {
		result = encodeEnvelope(env)
	}
	if cerr := s.store.Complete(c.ID, name, c.Attempt, result, failure); cerr != nil {
		s.log.Warn("job completion rejected", "job", c.ID, "worker", name, "attempt", c.Attempt, "err", cerr)
		return
	}
	s.met.observeLeaseAge(time.Since(c.ClaimedAt))
	s.log.Info("job end", "job", c.ID, "worker", name, "outcome", outcome,
		"elapsed", elapsed, "structures", respStructures(resp), "err", err)
}

// envelope marshals a finished response for the store. Only complete
// (non-partial) 200s are cacheable: partials depend on where the deadline
// struck, which is not a function of the cache key.
func (s *Server) envelope(resp *attackResponse, status int) *resultEnvelope {
	body, err := marshalResponse(resp)
	if err != nil {
		return &resultEnvelope{Status: http.StatusInternalServerError, ErrMsg: "response encoding failed: " + err.Error()}
	}
	return &resultEnvelope{
		Status:    status,
		Body:      body,
		Cacheable: status == http.StatusOK && !resp.Partial,
	}
}

// runShared executes fn(0..n-1) with idle serve workers helping: up to
// Workers-1 shard closures are offered (never queued) on the shard channel,
// each draining the same atomic work counter, and the caller always
// participates — so with no idle worker this degenerates to the serial
// loop, and the rank determinism contract (schedule-independent results)
// makes the fan-out unobservable in the output.
func (s *Server) runShared(n int, fn func(i int)) {
	if n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	var wg sync.WaitGroup
	helpers := s.cfg.Workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	for h := 0; h < helpers; h++ {
		wg.Add(1)
		helper := func() {
			defer wg.Done()
			s.met.shardHelped.Add(1)
			work()
		}
		select {
		case s.shards <- helper:
		default:
			wg.Done() // every worker is busy; don't wait for one
		}
	}
	work()
	wg.Wait()
	s.met.shardRuns.Add(1)
}

func respStructures(resp *attackResponse) int {
	if resp == nil {
		return 0
	}
	return resp.NumStructures
}
