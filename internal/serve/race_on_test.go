//go:build race

package serve

// raceEnabled lets tests scale work down under the race detector's ~10x
// slowdown (same pattern as internal/accel).
const raceEnabled = true
