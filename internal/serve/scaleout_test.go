package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"cnnrev/internal/jobstore"
)

func ctxWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func pidForTest() int { return os.Getpid() }

// postAsync submits a simulate request with wait=false and returns the
// accepted job ID.
func postAsync(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/attack/simulate?wait=false", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("async submit: got %d (%s), want 202", resp.StatusCode, b)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location = %q, want /v1/jobs/...", loc)
	}
	var acc struct {
		JobID string `json:"job_id"`
		State string `json:"state"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	if acc.JobID == "" || acc.State != string(jobstore.StateQueued) {
		t.Fatalf("accepted = %+v, want non-empty id in state queued", acc)
	}
	return acc.JobID
}

// getJob polls the job status endpoint once.
func getJob(t *testing.T, ts *httptest.Server, id string) (int, *jobStatusJSON) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	var st jobStatusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, &st
}

// TestAsyncJobLifecycle submits with wait=false, polls to completion, and
// checks the relayed result matches the synchronous surface.
func TestAsyncJobLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	id := postAsync(t, ts, `{"model":"lenet"}`)

	var final *jobStatusJSON
	waitFor(t, "async job to finish", time.Minute, func() bool {
		code, st := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%s = %d", id, code)
		}
		final = st
		return jobstore.State(st.State).Terminal()
	})
	if final.State != string(jobstore.StateDone) || final.Status != http.StatusOK {
		t.Fatalf("final = state %s status %d (err %q), want done/200", final.State, final.Status, final.Error)
	}
	var ar attackResponse
	if err := json.Unmarshal(final.Result, &ar); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if ar.JobID != id || ar.NumStructures == 0 {
		t.Fatalf("result job_id=%q structures=%d, want id %q and structures > 0", ar.JobID, ar.NumStructures, id)
	}
	if got := s.Metrics().Counter("async"); got != 1 {
		t.Fatalf("async counter = %d, want 1", got)
	}
	if code, _ := getJob(t, ts, "jdeadbeef00000000"); code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", code)
	}
}

// TestAsyncCancelQueued parks a job on a workerless frontend and cancels it
// through the DELETE surface.
func TestAsyncCancelQueued(t *testing.T) {
	_, ts := newTestServer(t, Config{Role: RoleFrontend})
	id := postAsync(t, ts, `{"model":"lenet"}`)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE = %d, want 202", resp.StatusCode)
	}
	code, st := getJob(t, ts, id)
	if code != http.StatusOK || st.State != string(jobstore.StateCancelled) {
		t.Fatalf("after cancel: code %d state %s, want 200 cancelled", code, st.State)
	}
	// Cancelling a terminal job conflicts.
	resp, err = ts.Client().Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second DELETE = %d, want 409", resp.StatusCode)
	}
}

// TestSharedStoreTwoServers runs a workerless frontend and a frontend-less
// worker against one shared filesystem store: the frontend's synchronous
// request must be executed by the worker process's pool.
func TestSharedStoreTwoServers(t *testing.T) {
	dir := t.TempDir()
	opt := jobstore.Options{PollInterval: 5 * time.Millisecond}
	front, err := jobstore.OpenFS(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	back, err := jobstore.OpenFS(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()

	fs, ts := newTestServer(t, Config{Role: RoleFrontend, Store: front})
	ws, _ := newTestServer(t, Config{Role: RoleWorker, Store: back, Workers: 2, Lease: 2 * time.Second})

	ar, code := postSimulate(t, ts, `{"model":"lenet"}`)
	if code != http.StatusOK {
		t.Fatalf("simulate through shared store = %d, want 200", code)
	}
	if ar.NumStructures == 0 {
		t.Fatal("no structures from shared-store execution")
	}
	if got := fs.Metrics().Counter("started"); got != 0 {
		t.Fatalf("frontend executed %d jobs itself, want 0", got)
	}
	if got := ws.Metrics().Counter("started"); got != 1 {
		t.Fatalf("worker started = %d, want 1", got)
	}
	if got := ws.Metrics().Counter("completed"); got != 1 {
		t.Fatalf("worker completed = %d, want 1", got)
	}
	// The worker role must not expose the attack surface.
	wts := httptest.NewServer(ws.Handler())
	defer wts.Close()
	resp, err := wts.Client().Post(wts.URL+"/v1/attack/simulate", "application/json", strings.NewReader(`{"model":"lenet"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("worker-role attack endpoint = %d, want 404", resp.StatusCode)
	}
}

// TestRankShardFanout checks that a multi-worker pool fans rank rungs out
// through the shard channel and that the scores stay bit-identical to the
// serial schedule.
func TestRankShardFanout(t *testing.T) {
	body := `{"model":"lenet","rank":{"classes":2,"per_class":4,"epochs":2,"max_candidates":4},"timeout_ms":120000}`

	_, serialTS := newTestServer(t, Config{Workers: 1, CacheBytes: -1})
	serial, code := postSimulate(t, serialTS, body)
	if code != http.StatusOK {
		t.Fatalf("serial rank = %d", code)
	}

	fan, fanTS := newTestServer(t, Config{Workers: 3, CacheBytes: -1})
	fanned, code := postSimulate(t, fanTS, body)
	if code != http.StatusOK {
		t.Fatalf("fanned rank = %d", code)
	}

	if got := fan.Metrics().Counter("shard_runs"); got < 1 {
		t.Fatalf("shard_runs = %d, want >= 1", got)
	}
	sj, _ := json.Marshal(serial.Scores)
	fj, _ := json.Marshal(fanned.Scores)
	if string(sj) != string(fj) {
		t.Fatalf("fanned scores diverge from serial:\n serial: %s\n fanned: %s", sj, fj)
	}
}

// TestShutdownUnderLoadFS mirrors the in-memory drain test on the shared
// filesystem store: the in-flight job completes, queued tracked jobs are
// aborted with 503, and drain-time submissions are refused.
func TestShutdownUnderLoadFS(t *testing.T) {
	dir := t.TempDir()
	st, err := jobstore.OpenFS(dir, jobstore.Options{PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Workers: 1, Store: st, Lease: 2 * time.Second,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One slow in-flight job, two queued behind it.
	codes := make(chan int, 3)
	post := func(body string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/attack/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			codes <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		codes <- resp.StatusCode
	}
	// The in-flight job must outlive the queue-fill observation below;
	// 40 epochs finishes in ~100ms on an idle box, far too fast. Match
	// TestShutdownDrainsInFlightAbortsQueued's budget.
	epochs := 1000
	if raceEnabled {
		epochs = 150
	}
	go post(fmt.Sprintf(`{"model":"lenet","rank":{"classes":2,"per_class":6,"epochs":%d,"max_candidates":1},"timeout_ms":120000}`, epochs))
	waitFor(t, "job to start", 30*time.Second, func() bool { return s.Metrics().Counter("started") == 1 })
	go post(`{"model":"lenet"}`)
	go post(`{"model":"lenet"}`)
	waitFor(t, "queue to fill", 30*time.Second, func() bool { return s.queueDepth() == 2 })

	sctx, scancel := ctxWithTimeout(2 * time.Minute)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	got := map[int]int{}
	for i := 0; i < 3; i++ {
		got[<-codes]++
	}
	if got[http.StatusOK] != 1 || got[http.StatusServiceUnavailable] != 2 {
		t.Fatalf("status mix = %v, want one 200 and two 503", got)
	}
	if c := s.Metrics().Counter("completed"); c != 1 {
		t.Fatalf("completed = %d, want 1", c)
	}
	if a := s.Metrics().Counter("aborted"); a != 2 {
		t.Fatalf("aborted = %d, want 2", a)
	}
	// The store survives the server: a fresh server on the same directory
	// sees an empty queue, not orphaned state.
	if st.Stats().Queued != 0 || st.Stats().Leased != 0 {
		t.Fatalf("store not drained: %+v", st.Stats())
	}
}

// TestOrphanedLeaseReclaimedByNewServer simulates a worker process dying
// mid-job: its lease expires and a later server on the same store directory
// re-claims and completes the job exactly once.
func TestOrphanedLeaseReclaimedByNewServer(t *testing.T) {
	dir := t.TempDir()
	opt := jobstore.Options{PollInterval: 5 * time.Millisecond}
	st, err := jobstore.OpenFS(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	req := &attackRequest{mode: "simulate", model: "lenet", timeout: time.Minute}
	payload, err := encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	id := jobstore.NewID()
	if err := st.Submit(jobstore.Job{ID: id, Payload: payload, Deadline: time.Now().Add(time.Minute)}); err != nil {
		t.Fatal(err)
	}
	// The doomed worker claims with a short lease and then "crashes":
	// no heartbeat, no completion.
	if _, err := st.Claim("doomed-w0", 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	second, err := jobstore.OpenFS(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	s := New(Config{Workers: 1, Store: second, Lease: 2 * time.Second,
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	defer func() {
		sctx, scancel := ctxWithTimeout(time.Minute)
		defer scancel()
		s.Shutdown(sctx)
	}()

	var rec *jobstore.Record
	waitFor(t, "re-claimed job to finish", time.Minute, func() bool {
		rec, err = st.Fetch(id)
		if err != nil {
			t.Fatal(err)
		}
		return rec.State.Terminal()
	})
	if rec.State != jobstore.StateDone {
		t.Fatalf("state = %s (err %q), want done", rec.State, rec.Err)
	}
	if rec.Attempt < 2 {
		t.Fatalf("attempt = %d, want >= 2 (a re-claim)", rec.Attempt)
	}
	if rec.Completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", rec.Completions)
	}
	if !strings.HasPrefix(rec.Worker, fmt.Sprintf("p%d-", pidForTest())) {
		t.Fatalf("completing worker = %q, want this process's pool", rec.Worker)
	}
}

// TestWeightsStageObservedOnFailure: LeNet's pooled first layer is out of
// the corner-iteration algorithm's reach, so the weight stage errors — but
// its wall time must still land in the stage histogram.
func TestWeightsStageObservedOnFailure(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	ar, code := postSimulate(t, ts, `{"model":"lenet","weights":true}`)
	if code != http.StatusOK {
		t.Fatalf("simulate = %d", code)
	}
	if ar.WeightsError == "" {
		t.Fatal("expected a weights_error for lenet's pooled first layer")
	}
	if got := s.Metrics().StageCount("weights"); got != 1 {
		t.Fatalf("weights stage count = %d, want 1 (observed on failure too)", got)
	}
	if _, ok := ar.StageMS["weights"]; !ok {
		t.Fatal("stage_ms missing the failed weights stage")
	}
}

// TestCacheKeyUsesEffectiveCap: the cache key must reflect the cap the
// solver actually ran under (server cap merged with the request), so a
// server restarted with a different -max-structures cannot replay results
// computed under the old bound.
func TestCacheKeyUsesEffectiveCap(t *testing.T) {
	base := func() *attackRequest {
		return &attackRequest{mode: "simulate", model: "lenet", classes: 10, maxStructures: 100}
	}
	tight := &Server{cfg: Config{MaxStructures: 7}}
	loose := &Server{cfg: Config{MaxStructures: 0}}

	a, b := base(), base()
	a.maxStructures = tight.solverOptions(a).MaxStructures
	a.capResolved = true
	b.maxStructures = loose.solverOptions(b).MaxStructures
	b.capResolved = true
	if a.maxStructures != 7 {
		t.Fatalf("effective cap = %d, want server cap 7", a.maxStructures)
	}
	if a.cacheKey() == b.cacheKey() {
		t.Fatal("cache keys collide across different effective caps")
	}
	if !strings.HasPrefix(a.cacheKey(), "v3|") {
		t.Fatalf("cache key %q not version-bumped", a.cacheKey())
	}
	// Once resolved, a worker's own config must not re-merge the cap.
	if got := tight.solverOptions(b).MaxStructures; got != b.maxStructures {
		t.Fatalf("worker re-merged resolved cap: %d, want %d", got, b.maxStructures)
	}
}
