package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestRankHalvingEndToEnd runs a short successive-halving tournament
// through /v1/attack/simulate and checks the schedule surfaces in the
// response and on the rank metrics.
func TestRankHalvingEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	body := `{"model":"lenet","rank":{"classes":2,"per_class":6,"epochs":4,"max_candidates":6,"halving":true,"eta":2,"min_epochs":1}}`
	ar, code := postSimulate(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("halving simulate: status %d", code)
	}
	if ar.Rank == nil || !ar.Rank.Halving {
		t.Fatalf("response rank meta missing or not halving: %+v", ar.Rank)
	}
	if len(ar.Rank.Rungs) < 2 {
		t.Fatalf("want a multi-rung tournament, got rungs %+v", ar.Rank.Rungs)
	}
	if ar.Rank.Rungs[0].Candidates != 6 || ar.Rank.Rungs[0].TargetEpochs != 1 {
		t.Fatalf("first rung %+v, want 6 candidates at budget 1", ar.Rank.Rungs[0])
	}
	if ar.Rank.TotalEpochs <= 0 || ar.Rank.TotalEpochs >= 6*4 {
		t.Fatalf("tournament total epochs %d, want in (0, flat=24)", ar.Rank.TotalEpochs)
	}
	if len(ar.Scores) != 6 {
		t.Fatalf("want 6 scores, got %d", len(ar.Scores))
	}
	if ar.Scores[0].Epochs != 4 {
		t.Fatalf("top score trained %d epochs, want the full budget 4", ar.Scores[0].Epochs)
	}
	if ar.Rank.Skipped == 0 {
		t.Fatalf("max_candidates=6 on a %d-structure report should record skips", ar.NumStructures)
	}

	if got := s.met.Counter("rank_halving"); got != 1 {
		t.Fatalf("rank_halving counter %d, want 1", got)
	}
	if got := s.met.Counter("rank_epochs"); got != int64(ar.Rank.TotalEpochs) {
		t.Fatalf("rank_epochs counter %d, want %d", got, ar.Rank.TotalEpochs)
	}
	if got := s.met.Counter("rank_eliminated"); got <= 0 {
		t.Fatalf("rank_eliminated counter %d, want > 0", got)
	}
	if ep, cands := s.met.RankRung(0); ep != int64(ar.Rank.Rungs[0].Epochs) || cands != 6 {
		t.Fatalf("rung-0 metrics (%d epochs, %d candidates), want (%d, 6)", ep, cands, ar.Rank.Rungs[0].Epochs)
	}

	// A flat ranking increments the other side of the split.
	flat, code := postSimulate(t, ts, `{"model":"lenet","rank":{"classes":2,"per_class":6,"epochs":2,"max_candidates":4}}`)
	if code != http.StatusOK {
		t.Fatalf("flat simulate: status %d", code)
	}
	if flat.Rank == nil || flat.Rank.Halving {
		t.Fatalf("flat rank meta wrong: %+v", flat.Rank)
	}
	if len(flat.Rank.Rungs) != 1 || flat.Rank.Rungs[0].TargetEpochs != 2 {
		t.Fatalf("flat schedule should be one full-budget rung, got %+v", flat.Rank.Rungs)
	}
	if got := s.met.Counter("rank_flat"); got != 1 {
		t.Fatalf("rank_flat counter %d, want 1", got)
	}

	// The per-rung counters surface on /metrics.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"revcnnd_rank_halving_total 1",
		"revcnnd_rank_flat_total 1",
		`revcnnd_rank_rung_epochs_total{rung="0"}`,
		`revcnnd_rank_rung_candidates_total{rung="11+"}`,
	} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestRankParamsRejected covers the 400 surface on both endpoints: out-of-
// range tournament knobs, and eta/min_epochs without halving (a silent
// no-op would mint a tournament-looking cache key for a flat ranking).
func TestRankParamsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	jsonBad := []string{
		`{"model":"lenet","rank":{"eta":2}}`,
		`{"model":"lenet","rank":{"min_epochs":3}}`,
		`{"model":"lenet","rank":{"halving":true,"eta":65}}`,
		`{"model":"lenet","rank":{"halving":true,"eta":-1}}`,
		`{"model":"lenet","rank":{"halving":true,"min_epochs":-1}}`,
	}
	for _, body := range jsonBad {
		if _, code := postSimulate(t, ts, body); code != http.StatusBadRequest {
			t.Fatalf("simulate %s: status %d, want 400", body, code)
		}
	}
	queryBad := []string{
		"rank=1&rank_eta=2",
		"rank=1&rank_halving=1&rank_eta=100",
		"rank=1&rank_halving=1&rank_min_epochs=-2",
		"rank=1&rank_halving=maybe",
	}
	for _, q := range queryBad {
		resp, err := ts.Client().Post(ts.URL+"/v1/attack/trace?inw=28&ind=1&classes=10&"+q, "application/octet-stream", strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trace?%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	// The valid query spelling runs a real tournament on an uploaded trace.
	raw, _ := lenetTraceBytes(t)
	q := "inw=28&ind=1&classes=10&rank=1&rank_classes=2&rank_per_class=4&rank_epochs=2&rank_max_candidates=3&rank_halving=1&rank_eta=2&rank_min_epochs=1"
	resp, err := ts.Client().Post(ts.URL+"/v1/attack/trace?"+q, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("valid rank tournament query: status %d: %s", resp.StatusCode, b)
	}
	var ar attackResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if ar.Rank == nil || !ar.Rank.Halving || len(ar.Scores) == 0 {
		t.Fatalf("trace-endpoint tournament missing rank meta/scores: %+v", ar.Rank)
	}
}

// TestRankCacheKeyDistinguishesHalving: a flat and a tournament ranking of
// the same victim must occupy distinct result-cache entries, while each
// schedule individually still hits its own entry on repeat.
func TestRankCacheKeyDistinguishesHalving(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	flatBody := `{"model":"lenet","rank":{"classes":2,"per_class":4,"epochs":2,"max_candidates":3}}`
	halvBody := `{"model":"lenet","rank":{"classes":2,"per_class":4,"epochs":2,"max_candidates":3,"halving":true,"eta":2,"min_epochs":1}}`

	if ar, code := postSimulate(t, ts, flatBody); code != http.StatusOK || ar.Cached {
		t.Fatalf("first flat: code %d cached %v", code, ar != nil && ar.Cached)
	}
	// Same victim, tournament schedule: must miss, not serve the flat body.
	ar, code := postSimulate(t, ts, halvBody)
	if code != http.StatusOK || ar.Cached {
		t.Fatalf("first halving: code %d cached %v", code, ar != nil && ar.Cached)
	}
	if ar.Rank == nil || !ar.Rank.Halving {
		t.Fatalf("halving request served a flat result: %+v", ar.Rank)
	}
	if got := s.met.Counter("cache_misses"); got != 2 {
		t.Fatalf("cache misses %d, want 2 (flat and halving keys are distinct)", got)
	}
	// Repeats hit their own entries and keep their schedules.
	if ar, code := postSimulate(t, ts, flatBody); code != http.StatusOK || !ar.Cached || ar.Rank == nil || ar.Rank.Halving {
		t.Fatalf("flat repeat: code %d, %+v", code, ar)
	}
	if ar, code := postSimulate(t, ts, halvBody); code != http.StatusOK || !ar.Cached || ar.Rank == nil || !ar.Rank.Halving {
		t.Fatalf("halving repeat: code %d, %+v", code, ar)
	}
	if got := s.met.Counter("cache_hits"); got != 2 {
		t.Fatalf("cache hits %d, want 2", got)
	}
}
