package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/core"
	"cnnrev/internal/corrupt"
	"cnnrev/internal/defense"
	"cnnrev/internal/experiments"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

// rankParams mirrors core.RankConfig for the request surface.
type rankParams struct {
	Classes       int   `json:"classes"`
	PerClass      int   `json:"per_class"`
	Epochs        int   `json:"epochs"`
	DepthDiv      int   `json:"depth_div"`
	TopK          int   `json:"top_k"`
	Seed          int64 `json:"seed"`
	MaxCandidates int   `json:"max_candidates"`

	// Successive-halving tournament knobs (core.RankConfig.Halving/Eta/
	// MinEpochs). The zero values select the flat schedule.
	Halving   bool `json:"halving"`
	Eta       int  `json:"eta"`
	MinEpochs int  `json:"min_epochs"`
}

// validate bounds the tournament knobs. Eta/MinEpochs without halving are
// rejected rather than ignored: a silent no-op would still mint a distinct
// result-cache key and return a flat ranking under tournament-looking
// parameters. Every count knob is also bounded below: a negative count
// would flow silently into trainer/rank semantics (and mint its own cache
// key) on both request surfaces.
func (p *rankParams) validate() error {
	for _, c := range []struct {
		name string
		v    int
	}{
		{"classes", p.Classes},
		{"per_class", p.PerClass},
		{"epochs", p.Epochs},
		{"depth_div", p.DepthDiv},
		{"top_k", p.TopK},
		{"max_candidates", p.MaxCandidates},
	} {
		if c.v < 0 {
			return fmt.Errorf("rank %s must be >= 0, got %d", c.name, c.v)
		}
	}
	if p.Eta < 0 || p.Eta > 64 {
		return fmt.Errorf("rank eta must be in [0,64], got %d", p.Eta)
	}
	if p.MinEpochs < 0 || p.MinEpochs > 1<<20 {
		return fmt.Errorf("rank min_epochs must be in [0,%d], got %d", 1<<20, p.MinEpochs)
	}
	if !p.Halving && (p.Eta != 0 || p.MinEpochs != 0) {
		return fmt.Errorf("rank eta/min_epochs require halving=true")
	}
	return nil
}

// defenseParams mirrors defense.Config for the request surface.
type defenseParams struct {
	Kind           string  `json:"kind"`
	Seed           int64   `json:"seed"`
	DummyRate      float64 `json:"dummy_rate"`
	BucketBytes    int     `json:"bucket_bytes"`
	OnChipBytes    int64   `json:"onchip_bytes"`
	ORAMZ          int     `json:"oram_z"`
	ORAMBlockBytes int     `json:"oram_block_bytes"`
}

// toConfig validates the parameters and converts them to a defense.Config.
// Knobs belonging to a defense other than the selected one are rejected
// rather than ignored — a silent no-op would still mint a distinct
// result-cache key and return an undefended result under defense-looking
// parameters (the same contract rankParams enforces for eta/min_epochs).
func (p *defenseParams) toConfig() (defense.Config, error) {
	cfg := defense.Config{
		Kind:        p.Kind,
		Seed:        p.Seed,
		DummyRate:   p.DummyRate,
		BucketBytes: p.BucketBytes,
		OnChipBytes: p.OnChipBytes,
	}
	cfg.ORAM.Z = p.ORAMZ
	cfg.ORAM.BlockBytes = p.ORAMBlockBytes
	if err := cfg.Validate(); err != nil {
		return defense.Config{}, err
	}
	if !cfg.Enabled() {
		if p.Seed != 0 || p.DummyRate != 0 || p.BucketBytes != 0 || p.OnChipBytes != 0 || p.ORAMZ != 0 || p.ORAMBlockBytes != 0 {
			return defense.Config{}, fmt.Errorf("defense_* knobs require a defense kind (one of %v)", defense.Kinds[1:])
		}
		return cfg, nil
	}
	if p.DummyRate != 0 && cfg.Kind != "dummy" {
		return defense.Config{}, fmt.Errorf("defense_dummy_rate applies to defense=dummy, not %q", cfg.Kind)
	}
	if p.BucketBytes != 0 && cfg.Kind != "pad" {
		return defense.Config{}, fmt.Errorf("defense_bucket_bytes applies to defense=pad, not %q", cfg.Kind)
	}
	if p.OnChipBytes != 0 && cfg.Kind != "fuse" {
		return defense.Config{}, fmt.Errorf("defense_onchip_bytes applies to defense=fuse, not %q", cfg.Kind)
	}
	if (p.ORAMZ != 0 || p.ORAMBlockBytes != 0) && cfg.Kind != "oram" {
		return defense.Config{}, fmt.Errorf("defense_oram_* apply to defense=oram, not %q", cfg.Kind)
	}
	return cfg, nil
}

// attackRequest is a fully parsed job input, either a decoded uploaded
// trace ("trace" mode) or a victim spec to simulate ("simulate" mode).
type attackRequest struct {
	mode string // "trace" | "simulate"

	// trace mode
	trace     *memtrace.Trace
	traceHash string // SHA-256 of the serialized upload, hex
	inW, inD  int
	elemBytes int

	// simulate mode
	model    string
	depthDiv int
	filters  int
	zeroFrac float64
	seed     int64

	// common
	classes       int
	modular       bool
	tol           float64
	allowStrideOK bool
	maxStructures int
	// capResolved marks maxStructures as the *effective* solver cap — the
	// request cap already merged with the server's -max-structures by the
	// submitting frontend — so worker replicas and the cache key use the
	// frontend's bound verbatim instead of re-merging against their own.
	capResolved bool
	maxReturn   int
	rank          *rankParams
	weights       bool
	timeout       time.Duration
	// dataflow selects the accelerator backend: the capture schedule in
	// simulate mode, the adversary's declared scheduling prior in trace mode
	// (either way the job's own detection result is reported back).
	dataflow accel.Dataflow

	// hostile-probe extensions: corrupt degrades the trace before analysis
	// (uploaded or captured), tolerant selects the noise-tolerant analysis
	// path (forced on whenever corruption is enabled).
	tolerant bool
	corrupt  corrupt.Config

	// defense applies a defensive trace transform (internal/defense) to
	// the victim's trace before any adversary-side stage — before corrupt,
	// since the countermeasure runs at the accelerator while probe noise
	// happens on the bus.
	defense defense.Config

	// cacheBypass skips the result-cache lookup (the fresh result still
	// refreshes the stored entry).
	cacheBypass bool
}

// cacheKey canonicalizes everything that determines a job's result into
// the content-addressed cache key. Trace mode is keyed on the upload's
// SHA-256 plus the analysis parameters; simulate mode on the canonical
// victim spec (with the seed already resolved, so an absent seed and an
// explicit seed 2 share an entry). The maxstructures component is the
// *effective* cap (request merged with the server's -max-structures), so
// restarting the server with a different cap never replays a result
// computed under the old bound. The v3 prefix adds the defense tuple: a
// defended and an undefended run of the same victim must never share an
// entry. The job timeout is deliberately excluded: only complete results
// are cached, and a complete result is valid under any deadline.
func (req *attackRequest) cacheKey() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v3|mode=%s|", req.mode)
	if req.mode == "trace" {
		fmt.Fprintf(&b, "sha256=%s|inw=%d|ind=%d|elem=%d|", req.traceHash, req.inW, req.inD, req.elemBytes)
	} else {
		fmt.Fprintf(&b, "model=%s|depthdiv=%d|filters=%d|zerofrac=%g|seed=%d|",
			req.model, req.depthDiv, req.filters, req.zeroFrac, req.seed)
	}
	fmt.Fprintf(&b, "classes=%d|modular=%t|tol=%g|strideok=%t|maxstructures=%d|maxreturn=%d|tolerant=%t|weights=%t|dataflow=%s|",
		req.classes, req.modular, req.tol, req.allowStrideOK, req.maxStructures, req.maxReturn, req.tolerant, req.weights, req.dataflow)
	c := req.corrupt
	fmt.Fprintf(&b, "corrupt=%d,%g,%g,%g,%d,%g,%d,%d|",
		c.Seed, c.DropRate, c.SplitRate, c.CoalesceRate, c.ReorderWindow,
		c.InterferenceRate, c.InterferenceRegions, c.ProbeGranularityBlocks)
	d := req.defense
	fmt.Fprintf(&b, "defense=%s,%d,%g,%d,%d,%d,%d|",
		d.Kind, d.Seed, d.DummyRate, d.BucketBytes, d.OnChipBytes,
		d.ORAM.Z, d.ORAM.BlockBytes)
	if r := req.rank; r != nil {
		fmt.Fprintf(&b, "rank=%d,%d,%d,%d,%d,%d,%d,h=%t,%d,%d",
			r.Classes, r.PerClass, r.Epochs, r.DepthDiv, r.TopK, r.Seed, r.MaxCandidates,
			r.Halving, r.Eta, r.MinEpochs)
	} else {
		b.WriteString("rank=-")
	}
	return b.String()
}

// corruptParams mirrors corrupt.Config for the request surface.
type corruptParams struct {
	Seed                   int64   `json:"seed"`
	DropRate               float64 `json:"drop_rate"`
	SplitRate              float64 `json:"split_rate"`
	CoalesceRate           float64 `json:"coalesce_rate"`
	ReorderWindow          int     `json:"reorder_window"`
	InterferenceRate       float64 `json:"interference_rate"`
	InterferenceRegions    int     `json:"interference_regions"`
	ProbeGranularityBlocks int     `json:"probe_granularity_blocks"`
}

// toConfig validates the parameters and converts them to a corrupt.Config.
func (p *corruptParams) toConfig() (corrupt.Config, error) {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"drop_rate", p.DropRate},
		{"split_rate", p.SplitRate},
		{"coalesce_rate", p.CoalesceRate},
		{"interference_rate", p.InterferenceRate},
	} {
		if r.v < 0 || r.v > 1 {
			return corrupt.Config{}, fmt.Errorf("%s must be in [0,1], got %g", r.name, r.v)
		}
	}
	if p.ReorderWindow < 0 || p.ReorderWindow > 1<<20 {
		return corrupt.Config{}, fmt.Errorf("reorder_window must be in [0,%d], got %d", 1<<20, p.ReorderWindow)
	}
	if p.InterferenceRegions < 0 || p.InterferenceRegions > 64 {
		return corrupt.Config{}, fmt.Errorf("interference_regions must be in [0,64], got %d", p.InterferenceRegions)
	}
	if p.ProbeGranularityBlocks < 0 || p.ProbeGranularityBlocks > 1<<20 {
		return corrupt.Config{}, fmt.Errorf("probe_granularity_blocks must be in [0,%d], got %d", 1<<20, p.ProbeGranularityBlocks)
	}
	return corrupt.Config{
		Seed:                   p.Seed,
		DropRate:               p.DropRate,
		SplitRate:              p.SplitRate,
		CoalesceRate:           p.CoalesceRate,
		ReorderWindow:          p.ReorderWindow,
		InterferenceRate:       p.InterferenceRate,
		InterferenceRegions:    p.InterferenceRegions,
		ProbeGranularityBlocks: p.ProbeGranularityBlocks,
	}, nil
}

type segInputJSON struct {
	Producer int    `json:"producer"`
	Bytes    uint64 `json:"bytes"`
	Adjacent bool   `json:"adjacent,omitempty"`
}

type segmentJSON struct {
	Index        int            `json:"index"`
	Kind         string         `json:"kind"`
	WeightsBytes uint64         `json:"weights_bytes"`
	OFMBytes     uint64         `json:"ofm_bytes"`
	Cycles       uint64         `json:"cycles"`
	Inputs       []segInputJSON `json:"inputs"`
}

type scoreJSON struct {
	Candidate int      `json:"candidate"`
	Accuracy  *float64 `json:"accuracy"` // null when training failed or was cancelled
	IsTruth   bool     `json:"is_truth,omitempty"`
	Error     string   `json:"error,omitempty"`
	Epochs    int      `json:"epochs,omitempty"` // training epochs received (partial under halving elimination)
}

// rungJSON is one successive-halving rung in the response.
type rungJSON struct {
	TargetEpochs int `json:"target_epochs"`
	Candidates   int `json:"candidates"`
	Epochs       int `json:"epochs"`
	Eliminated   int `json:"eliminated"`
}

// rankMetaJSON summarizes the ranking schedule that produced the scores.
type rankMetaJSON struct {
	Halving     bool       `json:"halving"`
	TotalEpochs int        `json:"total_epochs"`
	Skipped     int        `json:"skipped,omitempty"` // candidates never trained (MaxCandidates cap)
	Rungs       []rungJSON `json:"rungs,omitempty"`
}

type weightsJSON struct {
	Filters       int     `json:"filters"`
	MaxRatioErr   float64 `json:"max_ratio_err"`
	ZerosActual   int     `json:"zeros_actual"`
	ZerosDetected int     `json:"zeros_detected"`
	ZeroErrors    int     `json:"zero_errors"`
	Queries       int     `json:"queries"`
}

// attackResponse is the JSON result of one job. Partial marks a response
// cut short by the job deadline: the populated fields are a deterministic
// prefix of the full result.
// noiseJSON mirrors structrev.NoiseStats in the response.
type noiseJSON struct {
	InterferenceRegions  int     `json:"interference_regions"`
	InterferenceAccesses int     `json:"interference_accesses"`
	WriteHoleFrac        float64 `json:"write_hole_frac"`
	ROHoleFrac           float64 `json:"ro_hole_frac"`
	DroppedDeps          int     `json:"dropped_deps"`
}

// defenseJSON reports the applied defensive transform and its measured
// cost in the response.
type defenseJSON struct {
	Kind              string  `json:"kind"`
	BandwidthOverhead float64 `json:"bandwidth_overhead"`
	LatencyOverhead   float64 `json:"latency_overhead"`
	InputBlocks       uint64  `json:"input_blocks"`
	OutputBlocks      uint64  `json:"output_blocks"`
	ORAMLevels        int     `json:"oram_levels,omitempty"`
	ORAMMaxStash      int     `json:"oram_max_stash,omitempty"`
}

func defenseJSONFrom(st defense.Stats) *defenseJSON {
	dj := &defenseJSON{
		Kind:              st.Defense,
		BandwidthOverhead: st.BandwidthOverhead(),
		LatencyOverhead:   st.LatencyOverhead(),
		InputBlocks:       st.InputBlocks,
		OutputBlocks:      st.OutputBlocks,
	}
	if st.ORAM != nil {
		dj.ORAMLevels = st.ORAM.Levels
		dj.ORAMMaxStash = st.ORAM.MaxStash
	}
	return dj
}

type attackResponse struct {
	JobID         string           `json:"job_id"`
	Mode          string           `json:"mode"`
	Model         string           `json:"model,omitempty"`
	Partial       bool             `json:"partial,omitempty"`
	Cached        bool             `json:"cached,omitempty"` // served from the result cache; job_id/stage_ms describe the job that computed it
	Tolerant      bool             `json:"tolerant,omitempty"`
	Corrupted     bool             `json:"corrupted,omitempty"`
	Defense       *defenseJSON     `json:"defense,omitempty"` // defensive transform applied before analysis, with measured overheads
	Dataflow      string           `json:"dataflow,omitempty"`          // accelerator scheduling the job ran under (simulate: capture backend; trace: declared prior)
	DetectedDF    string           `json:"detected_dataflow,omitempty"` // scheduling class auto-detected from the trace; "ambiguous" when evidence is insufficient
	Noise         *noiseJSON       `json:"noise,omitempty"`
	Segments      []segmentJSON    `json:"segments,omitempty"`
	NumStructures int              `json:"num_structures"`
	Structures    []string         `json:"structures,omitempty"`
	Truncated     bool             `json:"structures_truncated,omitempty"`
	TruthIndex    *int             `json:"truth_index,omitempty"`
	Scores        []scoreJSON      `json:"scores,omitempty"`
	Rank          *rankMetaJSON    `json:"rank,omitempty"`
	Weights       *weightsJSON     `json:"weights,omitempty"`
	WeightsError  string           `json:"weights_error,omitempty"`
	TraceBytes    uint64           `json:"trace_bytes,omitempty"`
	StageMS       map[string]int64 `json:"stage_ms"`
}

// buildVictim constructs the simulate-mode victim. initWeights reports
// whether the caller should seed the weights (the pruned-conv victim of the
// weight attack arrives with its magnitude-pruned weights already set).
func buildVictim(model string, classes, depthDiv, filters int, zeroFrac float64, seed int64) (net *nn.Network, initWeights bool, err error) {
	if classes <= 0 {
		classes = 10
		if model == "alexnet" || model == "squeezenet" {
			classes = 1000
		}
	}
	if depthDiv <= 0 {
		depthDiv = 1
	}
	switch model {
	case "lenet":
		return nn.LeNet(classes), true, nil
	case "convnet":
		return nn.ConvNet(classes), true, nil
	case "alexnet":
		return nn.AlexNet(classes, depthDiv), true, nil
	case "squeezenet":
		return nn.SqueezeNet(classes, depthDiv), true, nil
	case "vgg11":
		return nn.VGG11(classes, depthDiv), true, nil
	case "nin":
		return nn.NiN(classes, depthDiv), true, nil
	case "resnetmini":
		return nn.ResNetMini(classes, depthDiv), true, nil
	case "prunedconv1":
		// The §4 weight-attack victim: a first layer the corner-iteration
		// algorithm can reach (unpooled, unpadded conv).
		if zeroFrac <= 0 || zeroFrac >= 1 {
			zeroFrac = 0.25
		}
		return experiments.PrunedConv1(filters, zeroFrac, seed), false, nil
	}
	return nil, false, fmt.Errorf("unknown model %q", model)
}

// solverOptions maps request knobs onto the solver's option set. Once the
// submitting frontend has resolved the effective cap (capResolved), it is
// taken verbatim — a worker with a different -max-structures must not
// re-merge it.
func (s *Server) solverOptions(req *attackRequest) structrev.Options {
	opt := structrev.DefaultOptions()
	opt.IdenticalModules = req.modular
	opt.AllowStrideOverKernel = req.allowStrideOK
	if req.tol > 0 {
		opt.TimingSpreadMax = req.tol
	}
	if req.capResolved {
		opt.MaxStructures = req.maxStructures
		return opt
	}
	if s.cfg.MaxStructures > 0 {
		opt.MaxStructures = s.cfg.MaxStructures
	}
	if req.maxStructures > 0 && (opt.MaxStructures == 0 || req.maxStructures < opt.MaxStructures) {
		opt.MaxStructures = req.maxStructures
	}
	return opt
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// execute runs the attack pipeline for one job. It returns the response
// (possibly partial), or a nil response with the HTTP status to report.
// A context.Canceled error means the client disconnected; the job is
// abandoned without a response.
func (s *Server) execute(j *job) (*attackResponse, int, error) {
	req, ctx := j.req, j.ctx
	resp := &attackResponse{JobID: j.id, Mode: req.mode, Model: req.model, StageMS: map[string]int64{}}
	observe := func(stage string, d time.Duration) {
		s.met.ObserveStage(stage, d)
		s.met.ObserveStageDataflow(stage, req.dataflow.String(), d)
		resp.StageMS[stage] = d.Milliseconds()
	}
	opt := s.solverOptions(req)

	// cancelledIn attributes a context expiration to the stage that was (or
	// would have been) running: the first pipeline stage with no recorded
	// completion.
	cancelledIn := func() string {
		for _, st := range stageNames {
			if _, done := resp.StageMS[st]; !done {
				return st
			}
		}
		return stageNames[len(stageNames)-1]
	}
	fail := func(status int, err error) (*attackResponse, int, error) {
		if isCtxErr(err) {
			s.met.MarkStageCancelled(cancelledIn())
			if errors.Is(err, context.Canceled) {
				return nil, 0, err
			}
			status = http.StatusGatewayTimeout
		}
		return nil, status, err
	}

	var rep *core.StructureReport
	var input nn.Shape
	var net *nn.Network

	switch req.mode {
	case "trace":
		input = nn.Shape{C: req.inD, H: req.inW, W: req.inW}
		trace := req.trace
		var defStats defense.Stats
		defended := req.defense.Enabled()
		if defended {
			t0 := time.Now()
			var derr error
			trace, defStats, derr = defense.Apply(trace, req.defense)
			if derr != nil {
				return fail(http.StatusUnprocessableEntity, derr)
			}
			observe("defense", time.Since(t0))
		}
		corrupted := req.corrupt.Enabled()
		if corrupted {
			t0 := time.Now()
			trace = corrupt.Apply(trace, req.corrupt)
			observe("corrupt", time.Since(t0))
		}
		tolerant := req.tolerant || corrupted
		t0 := time.Now()
		var a *structrev.Analysis
		var err error
		if tolerant {
			a, err = structrev.AnalyzeTolerant(trace, input.Len()*req.elemBytes, req.elemBytes, structrev.TolerantOptions{})
		} else {
			a, err = structrev.Analyze(trace, input.Len()*req.elemBytes, req.elemBytes)
		}
		if err != nil {
			return fail(http.StatusUnprocessableEntity, err)
		}
		observe("analyze", time.Since(t0))
		t0 = time.Now()
		detected := structrev.DetectDataflow(trace, a, structrev.DetectOptions{})
		observe("detect", time.Since(t0))
		t0 = time.Now()
		structures, serr := structrev.SolveCtx(ctx, a, req.inW, req.inD, req.classes, opt)
		observe("solve", time.Since(t0))
		if serr != nil && !isCtxErr(serr) {
			return fail(http.StatusUnprocessableEntity, serr)
		}
		rep = &core.StructureReport{
			Analysis:   a,
			Structures: structures,
			PerLayer:   structrev.UniqueConfigs(a, structures),
			TruthIndex: -1,
			TraceBytes: trace.Blocks() * uint64(trace.BlockBytes),
			Partial:    serr != nil,
			Corrupted:  corrupted,
			Tolerant:   tolerant,
			Noise:      a.Noise,

			Dataflow:         req.dataflow.String(),
			DetectedDataflow: detected.Class.String(),
		}
		if defended {
			rep.Defense = req.defense.Kind
			rep.DefenseStats = defStats
		}
		if serr != nil {
			s.met.MarkStageCancelled("solve")
		}
	case "simulate":
		var initW bool
		var err error
		net, initW, err = buildVictim(req.model, req.classes, req.depthDiv, req.filters, req.zeroFrac, req.seed)
		if err != nil {
			return fail(http.StatusBadRequest, err)
		}
		if initW {
			net.InitWeights(req.seed)
		}
		input = net.Input
		spec := core.StructureAttackSpec{Defense: req.defense, Corrupt: req.corrupt, Tolerant: req.tolerant}
		rep, err = core.RunStructureAttackSpec(ctx, net, accel.Config{Dataflow: req.dataflow}, opt, req.seed, spec, observe)
		if err != nil && rep == nil {
			return fail(http.StatusUnprocessableEntity, err)
		}
		if rep.Partial {
			s.met.MarkStageCancelled("solve")
		}
		idx := rep.TruthIndex
		resp.TruthIndex = &idx
	default:
		return fail(http.StatusBadRequest, fmt.Errorf("unknown mode %q", req.mode))
	}

	fillStructureResult(resp, rep, req.maxReturn)

	// A partial solve means the deadline already struck: later stages would
	// start cancelled, so return what we have.
	if rep.Partial {
		resp.Partial = true
		if errors.Is(ctx.Err(), context.Canceled) {
			return nil, 0, ctx.Err()
		}
		return resp, http.StatusOK, nil
	}

	if req.rank != nil {
		rc := core.RankConfig{
			Classes: req.rank.Classes, PerClass: req.rank.PerClass, Epochs: req.rank.Epochs,
			DepthDiv: req.rank.DepthDiv, TopK: req.rank.TopK, Seed: req.rank.Seed,
			MaxCandidates: req.rank.MaxCandidates,
			Halving:       req.rank.Halving, Eta: req.rank.Eta, MinEpochs: req.rank.MinEpochs,
		}
		if s.cfg.Workers > 1 {
			// Fan each rung's independent trainings out to idle serve workers;
			// training remains seed-deterministic per candidate, so the scores
			// are bit-identical to the serial schedule.
			rc.Runner = s.runShared
		}
		t0 := time.Now()
		rres := core.RankCandidatesResult(ctx, rep, input, rc)
		observe("rank", time.Since(t0))
		s.met.ObserveRank(rres)
		for _, sc := range rres.Scores {
			sj := scoreJSON{Candidate: sc.Index, IsTruth: sc.IsTruth, Epochs: sc.Epochs}
			if !math.IsNaN(sc.Accuracy) {
				acc := sc.Accuracy
				sj.Accuracy = &acc
			}
			if sc.Err != nil {
				sj.Error = sc.Err.Error()
			}
			resp.Scores = append(resp.Scores, sj)
		}
		meta := &rankMetaJSON{Halving: rres.Halving, TotalEpochs: rres.TotalEpochs, Skipped: rres.Skipped}
		for _, rg := range rres.Rungs {
			meta.Rungs = append(meta.Rungs, rungJSON{
				TargetEpochs: rg.TargetEpochs, Candidates: rg.Candidates,
				Epochs: rg.Epochs, Eliminated: rg.Eliminated,
			})
		}
		resp.Rank = meta
		if ctx.Err() != nil {
			s.met.MarkStageCancelled("rank")
			resp.Partial = true
		}
	}

	if req.weights && !resp.Partial {
		if net == nil {
			resp.WeightsError = "weight attack requires simulate mode"
		} else {
			t0 := time.Now()
			wrep, err := core.RunWeightAttackCtx(ctx, net, accel.Config{Dataflow: req.dataflow})
			// Record the stage on every outcome — an unreachable first layer
			// or a mid-stage cancellation still spent this wall time, and the
			// stage histogram must not undercount it.
			observe("weights", time.Since(t0))
			switch {
			case err != nil && isCtxErr(err):
				s.met.MarkStageCancelled("weights")
				resp.Partial = true
			case err != nil:
				// The victim's first layer is out of the §4 algorithm's
				// reach (pooled/padded); report it without failing the job.
				resp.WeightsError = err.Error()
			default:
				resp.Weights = &weightsJSON{
					Filters: wrep.Filters, MaxRatioErr: wrep.MaxRatioErr,
					ZerosActual: wrep.ZerosActual, ZerosDetected: wrep.ZerosDetected,
					ZeroErrors: wrep.ZeroErrors, Queries: wrep.Queries,
				}
			}
		}
	}

	if cerr := ctx.Err(); cerr != nil {
		resp.Partial = true
		if errors.Is(cerr, context.Canceled) {
			return nil, 0, cerr
		}
	}
	return resp, http.StatusOK, nil
}

// fillStructureResult populates the structure-attack portion of a response.
// maxReturn bounds the rendered structure list (the count is always exact);
// Truncated flags the cut so a capped list is never mistaken for the full
// enumeration.
func fillStructureResult(resp *attackResponse, rep *core.StructureReport, maxReturn int) {
	if maxReturn <= 0 {
		maxReturn = 50
	}
	for i := range rep.Analysis.Segments {
		seg := &rep.Analysis.Segments[i]
		sj := segmentJSON{
			Index: seg.Index, Kind: seg.Kind.String(),
			WeightsBytes: seg.WeightsBytes, OFMBytes: seg.OFMBytes, Cycles: seg.Cycles(),
		}
		for _, in := range seg.Inputs {
			sj.Inputs = append(sj.Inputs, segInputJSON{Producer: in.Producer, Bytes: in.Bytes, Adjacent: in.Adjacent})
		}
		resp.Segments = append(resp.Segments, sj)
	}
	resp.NumStructures = len(rep.Structures)
	resp.TraceBytes = rep.TraceBytes
	resp.Tolerant = rep.Tolerant
	resp.Corrupted = rep.Corrupted
	resp.Dataflow = rep.Dataflow
	resp.DetectedDF = rep.DetectedDataflow
	if rep.Defense != "" {
		resp.Defense = defenseJSONFrom(rep.DefenseStats)
	}
	if rep.Tolerant {
		resp.Noise = &noiseJSON{
			InterferenceRegions:  rep.Noise.InterferenceRegions,
			InterferenceAccesses: rep.Noise.InterferenceAccesses,
			WriteHoleFrac:        rep.Noise.WriteHoleFrac,
			ROHoleFrac:           rep.Noise.ROHoleFrac,
			DroppedDeps:          rep.Noise.DroppedDeps,
		}
	}
	n := len(rep.Structures)
	if n > maxReturn {
		n = maxReturn
		resp.Truncated = true
	}
	for i := 0; i < n; i++ {
		resp.Structures = append(resp.Structures, renderStructure(&rep.Structures[i]))
	}
}

// renderStructure prints a candidate as its weighted configs in execution
// order, the same view cmd/revcnn prints.
func renderStructure(st *structrev.Structure) string {
	var parts []string
	for _, c := range st.WeightedConfigs() {
		parts = append(parts, c.String())
	}
	return strings.Join(parts, "; ")
}
