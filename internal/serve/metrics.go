package serve

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"cnnrev/internal/core"
	"cnnrev/internal/jobstore"
	"cnnrev/internal/tensor"
)

// stageNames is the fixed pipeline-stage vocabulary, in execution order.
// Fixing the set up front lets every stage own lock-free atomics.
var stageNames = []string{"decode", "capture", "defense", "corrupt", "analyze", "detect", "solve", "rank", "weights"}

// dataflowNames is the fixed accelerator-dataflow label vocabulary for the
// per-dataflow stage counters (accel's canonical names).
var dataflowNames = []string{"output-stationary", "weight-stationary", "row-stationary"}

// latBounds are the per-stage latency histogram bucket upper bounds in
// seconds; stage work spans sub-millisecond trace decodes to multi-minute
// AlexNet ranks.
var latBounds = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// histogram is a fixed-bucket latency histogram on atomics, rendered in
// Prometheus text format (cumulative le buckets).
type histogram struct {
	counts   []atomic.Int64 // len(latBounds)+1; last bucket is +Inf
	sumNanos atomic.Int64
	count    atomic.Int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]atomic.Int64, len(latBounds)+1)}
}

func (h *histogram) observe(d time.Duration) {
	h.counts[sort.SearchFloat64s(latBounds, d.Seconds())].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// Metrics is the service's observability surface: job lifecycle counters,
// occupancy gauges, and per-stage latency histograms, all updated with
// atomics so the hot path never takes a lock.
type Metrics struct {
	started   atomic.Int64
	completed atomic.Int64
	partial   atomic.Int64
	rejected  atomic.Int64
	cancelled atomic.Int64
	failed    atomic.Int64
	aborted   atomic.Int64
	running   atomic.Int64
	// abandoned counts jobs whose client disconnected before the response
	// could be written — a distinct outcome from server-side deadline
	// expiry, which still writes a 504/partial body.
	abandoned atomic.Int64
	// async counts wait=false submissions accepted with 202.
	async atomic.Int64

	// Scale-out instrumentation: time spent queued before a worker claimed
	// the job, lease age at completion, per-worker job attribution, and the
	// rank-rung shard pool's activity.
	queueWait   *histogram
	leaseAge    *histogram
	workerJobs  []atomic.Int64
	shardRuns   atomic.Int64
	shardHelped atomic.Int64

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheBypassed  atomic.Int64
	cacheStores    atomic.Int64
	cacheEvictions atomic.Int64

	// Candidate-ranking counters. The per-rung arrays are indexed by rung
	// number with the last bucket absorbing overflow, keeping the /metrics
	// label cardinality fixed no matter what schedule a request asks for.
	rankFlat           atomic.Int64
	rankHalving        atomic.Int64
	rankEpochs         atomic.Int64
	rankSkipped        atomic.Int64
	rankEliminated     atomic.Int64
	rankRungEpochs     [rankRungBuckets]atomic.Int64
	rankRungCandidates [rankRungBuckets]atomic.Int64

	stageLat    map[string]*histogram
	stageCancel map[string]*atomic.Int64
	// stageDataflow splits stage executions by the accelerator dataflow the
	// job ran under (keyed "stage|dataflow"); both vocabularies are fixed, so
	// scrape cardinality is bounded regardless of request mix.
	stageDataflow map[string]*stageDataflowStat
}

// stageDataflowStat accumulates one (stage, dataflow) cell: execution count
// and total latency.
type stageDataflowStat struct {
	count    atomic.Int64
	sumNanos atomic.Int64
}

// rankRungBuckets bounds the per-rung metric label set. Eta=2 from
// MinEpochs=1 reaches any practical Epochs budget well inside 12 rungs;
// deeper schedules fold into the final bucket.
const rankRungBuckets = 12

func newMetrics(workers int) *Metrics {
	if workers < 0 {
		workers = 0
	}
	m := &Metrics{
		queueWait:     newHistogram(),
		leaseAge:      newHistogram(),
		workerJobs:    make([]atomic.Int64, workers),
		stageLat:      make(map[string]*histogram, len(stageNames)),
		stageCancel:   make(map[string]*atomic.Int64, len(stageNames)),
		stageDataflow: make(map[string]*stageDataflowStat, len(stageNames)*len(dataflowNames)),
	}
	for _, s := range stageNames {
		m.stageLat[s] = newHistogram()
		m.stageCancel[s] = new(atomic.Int64)
		for _, df := range dataflowNames {
			m.stageDataflow[s+"|"+df] = new(stageDataflowStat)
		}
	}
	return m
}

// observeQueueWait records the interval between a job's submission and the
// claim that started executing it.
func (m *Metrics) observeQueueWait(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.queueWait.observe(d)
}

// observeLeaseAge records how long a worker held its lease on a job, claim
// to completion.
func (m *Metrics) observeLeaseAge(d time.Duration) {
	if d < 0 {
		d = 0
	}
	m.leaseAge.observe(d)
}

// workerJob attributes one claimed job to a worker index.
func (m *Metrics) workerJob(idx int) {
	if idx >= 0 && idx < len(m.workerJobs) {
		m.workerJobs[idx].Add(1)
	}
}

// WorkerJobs returns the jobs claimed by one worker index.
func (m *Metrics) WorkerJobs(idx int) int64 {
	if idx >= 0 && idx < len(m.workerJobs) {
		return m.workerJobs[idx].Load()
	}
	return 0
}

// ObserveStage records one completed stage execution.
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	if h := m.stageLat[stage]; h != nil {
		h.observe(d)
	}
}

// ObserveStageDataflow records one completed stage execution under an
// accelerator dataflow; unknown labels are dropped rather than minted.
func (m *Metrics) ObserveStageDataflow(stage, dataflow string, d time.Duration) {
	if st := m.stageDataflow[stage+"|"+dataflow]; st != nil {
		st.count.Add(1)
		st.sumNanos.Add(int64(d))
	}
}

// StageDataflowCount returns how many executions a (stage, dataflow) cell
// has observed. The e2e tests use this instead of scraping the text output.
func (m *Metrics) StageDataflowCount(stage, dataflow string) int64 {
	if st := m.stageDataflow[stage+"|"+dataflow]; st != nil {
		return st.count.Load()
	}
	return 0
}

// MarkStageCancelled records that a job's context expired inside the stage.
func (m *Metrics) MarkStageCancelled(stage string) {
	if c := m.stageCancel[stage]; c != nil {
		c.Add(1)
	}
}

// ObserveRank accumulates one ranking run's schedule into the rank
// counters: flat/tournament split, total epoch work, MaxCandidates skips,
// rung-boundary eliminations, and per-rung epoch/candidate totals.
func (m *Metrics) ObserveRank(res *core.RankResult) {
	if res.Halving {
		m.rankHalving.Add(1)
	} else {
		m.rankFlat.Add(1)
	}
	m.rankEpochs.Add(int64(res.TotalEpochs))
	m.rankSkipped.Add(int64(res.Skipped))
	for i, r := range res.Rungs {
		b := i
		if b >= rankRungBuckets {
			b = rankRungBuckets - 1
		}
		m.rankRungEpochs[b].Add(int64(r.Epochs))
		m.rankRungCandidates[b].Add(int64(r.Candidates))
		m.rankEliminated.Add(int64(r.Eliminated))
	}
}

// RankRung returns the per-rung (epochs, candidates) totals for a rung
// index, folding overflow into the last bucket like the writer does.
func (m *Metrics) RankRung(i int) (epochs, candidates int64) {
	if i < 0 {
		return 0, 0
	}
	if i >= rankRungBuckets {
		i = rankRungBuckets - 1
	}
	return m.rankRungEpochs[i].Load(), m.rankRungCandidates[i].Load()
}

// Counter returns a lifecycle counter by its short name; unknown names
// return 0. The e2e tests use this instead of scraping the text output.
func (m *Metrics) Counter(name string) int64 {
	switch name {
	case "started":
		return m.started.Load()
	case "completed":
		return m.completed.Load()
	case "partial":
		return m.partial.Load()
	case "rejected":
		return m.rejected.Load()
	case "cancelled":
		return m.cancelled.Load()
	case "failed":
		return m.failed.Load()
	case "aborted":
		return m.aborted.Load()
	case "running":
		return m.running.Load()
	case "abandoned":
		return m.abandoned.Load()
	case "async":
		return m.async.Load()
	case "queue_wait_count":
		return m.queueWait.count.Load()
	case "lease_age_count":
		return m.leaseAge.count.Load()
	case "shard_runs":
		return m.shardRuns.Load()
	case "shard_helped":
		return m.shardHelped.Load()
	case "cache_hits":
		return m.cacheHits.Load()
	case "cache_misses":
		return m.cacheMisses.Load()
	case "cache_bypassed":
		return m.cacheBypassed.Load()
	case "cache_stores":
		return m.cacheStores.Load()
	case "cache_evictions":
		return m.cacheEvictions.Load()
	case "rank_flat":
		return m.rankFlat.Load()
	case "rank_halving":
		return m.rankHalving.Load()
	case "rank_epochs":
		return m.rankEpochs.Load()
	case "rank_skipped":
		return m.rankSkipped.Load()
	case "rank_eliminated":
		return m.rankEliminated.Load()
	}
	return 0
}

// StageCancelled returns the cancellation count recorded against a stage.
func (m *Metrics) StageCancelled(stage string) int64 {
	if c := m.stageCancel[stage]; c != nil {
		return c.Load()
	}
	return 0
}

// StageCount returns how many completed executions a stage has observed.
func (m *Metrics) StageCount(stage string) int64 {
	if h := m.stageLat[stage]; h != nil {
		return h.count.Load()
	}
	return 0
}

// writePrometheus renders the metrics in Prometheus text exposition format.
// The job-store stats, worker count, and cache occupancy are owned by the
// server (the store and cache are mutex-backed) and passed in at scrape
// time. Store counters are process-local: on a shared filesystem store each
// replica reports its own claims/retries, while the queue gauges reflect
// the whole shared queue.
func (m *Metrics) writePrometheus(w io.Writer, st jobstore.Stats, workers int, cacheBytes int64, cacheEntries int) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP revcnnd_%s %s\n# TYPE revcnnd_%s counter\nrevcnnd_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP revcnnd_%s %s\n# TYPE revcnnd_%s gauge\nrevcnnd_%s %d\n", name, help, name, name, v)
	}
	counter("jobs_started_total", "Jobs a worker began executing.", m.started.Load())
	counter("jobs_completed_total", "Jobs that produced a full result.", m.completed.Load())
	counter("jobs_partial_total", "Jobs that hit their deadline and returned a partial result.", m.partial.Load())
	counter("jobs_rejected_total", "Jobs rejected with 429 because the queue was full.", m.rejected.Load())
	counter("jobs_cancelled_total", "Jobs abandoned because the client disconnected.", m.cancelled.Load())
	counter("jobs_failed_total", "Jobs that ended in an error.", m.failed.Load())
	counter("jobs_aborted_total", "Queued jobs aborted by shutdown.", m.aborted.Load())
	counter("jobs_abandoned_total", "Jobs whose client disconnected before the response was written.", m.abandoned.Load())
	counter("jobs_async_total", "Jobs accepted asynchronously (wait=false) with 202.", m.async.Load())
	counter("store_claimed_total", "Job leases issued by this process's store handle.", st.Claimed)
	counter("store_retried_total", "Expired leases re-queued for another attempt.", st.Retried)
	counter("store_orphaned_total", "Jobs failed after exhausting the lease-retry cap.", st.Orphaned)
	counter("cache_hits_total", "Requests served from the content-addressed result cache.", m.cacheHits.Load())
	counter("cache_misses_total", "Cache lookups that fell through to the job queue.", m.cacheMisses.Load())
	counter("cache_bypassed_total", "Requests that skipped the cache lookup via cache_bypass.", m.cacheBypassed.Load())
	counter("cache_stores_total", "Completed results stored in the cache.", m.cacheStores.Load())
	counter("cache_evictions_total", "Entries evicted to stay under the cache byte budget.", m.cacheEvictions.Load())
	counter("rank_flat_total", "Candidate rankings run on the flat full-budget schedule.", m.rankFlat.Load())
	counter("rank_halving_total", "Candidate rankings run as successive-halving tournaments.", m.rankHalving.Load())
	counter("rank_epochs_total", "Training epochs spent ranking candidates.", m.rankEpochs.Load())
	counter("rank_skipped_total", "Candidates never trained because of a MaxCandidates cap.", m.rankSkipped.Load())
	counter("rank_eliminated_total", "Candidates eliminated at tournament rung boundaries.", m.rankEliminated.Load())
	gauge("cache_bytes", "Bytes held by the result cache (keys + bodies).", cacheBytes)
	gauge("cache_entries", "Entries held by the result cache.", int64(cacheEntries))
	gauge("jobs_running", "Jobs currently executing on workers.", m.running.Load())
	gauge("queue_depth", "Jobs waiting for a worker.", int64(st.Queued))
	gauge("jobs_leased", "Jobs currently leased to workers (whole store, all processes).", int64(st.Leased))
	gauge("workers", "Configured worker count.", int64(workers))
	gauge("tensor_pool_workers", "Shared tensor worker pool size used inside jobs.", int64(tensor.Workers()))
	counter("rank_shard_runs_total", "Rank rungs fanned out through the worker shard pool.", m.shardRuns.Load())
	counter("rank_shard_helpers_total", "Idle workers recruited to help a rank rung.", m.shardHelped.Load())

	writeHistogram := func(name, help string, h *histogram) {
		fmt.Fprintf(w, "# HELP revcnnd_%s %s\n# TYPE revcnnd_%s histogram\n", name, help, name)
		var cum int64
		for i, b := range latBounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "revcnnd_%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), cum)
		}
		cum += h.counts[len(latBounds)].Load()
		fmt.Fprintf(w, "revcnnd_%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "revcnnd_%s_sum %g\n", name, time.Duration(h.sumNanos.Load()).Seconds())
		fmt.Fprintf(w, "revcnnd_%s_count %d\n", name, h.count.Load())
	}
	writeHistogram("queue_wait_seconds", "Time jobs spent queued before a worker claimed them.", m.queueWait)
	writeHistogram("lease_age_seconds", "Lease age at job completion (claim to finish).", m.leaseAge)

	fmt.Fprintf(w, "# HELP revcnnd_worker_jobs_total Jobs claimed per local worker.\n# TYPE revcnnd_worker_jobs_total counter\n")
	for i := range m.workerJobs {
		fmt.Fprintf(w, "revcnnd_worker_jobs_total{worker=\"%d\"} %d\n", i, m.workerJobs[i].Load())
	}

	fmt.Fprintf(w, "# HELP revcnnd_stage_seconds Per-stage job latency.\n# TYPE revcnnd_stage_seconds histogram\n")
	for _, s := range stageNames {
		h := m.stageLat[s]
		var cum int64
		for i, b := range latBounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "revcnnd_stage_seconds_bucket{stage=%q,le=%q} %d\n", s, fmt.Sprintf("%g", b), cum)
		}
		cum += h.counts[len(latBounds)].Load()
		fmt.Fprintf(w, "revcnnd_stage_seconds_bucket{stage=%q,le=\"+Inf\"} %d\n", s, cum)
		fmt.Fprintf(w, "revcnnd_stage_seconds_sum{stage=%q} %g\n", s, time.Duration(h.sumNanos.Load()).Seconds())
		fmt.Fprintf(w, "revcnnd_stage_seconds_count{stage=%q} %d\n", s, h.count.Load())
	}
	fmt.Fprintf(w, "# HELP revcnnd_stage_cancelled_total Context expirations observed inside a stage.\n# TYPE revcnnd_stage_cancelled_total counter\n")
	for _, s := range stageNames {
		fmt.Fprintf(w, "revcnnd_stage_cancelled_total{stage=%q} %d\n", s, m.stageCancel[s].Load())
	}
	fmt.Fprintf(w, "# HELP revcnnd_stage_dataflow_total Stage executions split by accelerator dataflow.\n# TYPE revcnnd_stage_dataflow_total counter\n")
	for _, s := range stageNames {
		for _, df := range dataflowNames {
			st := m.stageDataflow[s+"|"+df]
			fmt.Fprintf(w, "revcnnd_stage_dataflow_total{stage=%q,dataflow=%q} %d\n", s, df, st.count.Load())
		}
	}
	fmt.Fprintf(w, "# HELP revcnnd_stage_dataflow_seconds_total Stage latency split by accelerator dataflow.\n# TYPE revcnnd_stage_dataflow_seconds_total counter\n")
	for _, s := range stageNames {
		for _, df := range dataflowNames {
			st := m.stageDataflow[s+"|"+df]
			fmt.Fprintf(w, "revcnnd_stage_dataflow_seconds_total{stage=%q,dataflow=%q} %g\n", s, df, time.Duration(st.sumNanos.Load()).Seconds())
		}
	}

	rungLabel := func(i int) string {
		if i == rankRungBuckets-1 {
			return fmt.Sprintf("%d+", i)
		}
		return fmt.Sprintf("%d", i)
	}
	fmt.Fprintf(w, "# HELP revcnnd_rank_rung_epochs_total Training epochs spent at each tournament rung (rung 0 is the flat schedule's only rung).\n# TYPE revcnnd_rank_rung_epochs_total counter\n")
	for i := range m.rankRungEpochs {
		fmt.Fprintf(w, "revcnnd_rank_rung_epochs_total{rung=%q} %d\n", rungLabel(i), m.rankRungEpochs[i].Load())
	}
	fmt.Fprintf(w, "# HELP revcnnd_rank_rung_candidates_total Candidates entering each tournament rung.\n# TYPE revcnnd_rank_rung_candidates_total counter\n")
	for i := range m.rankRungCandidates {
		fmt.Fprintf(w, "revcnnd_rank_rung_candidates_total{rung=%q} %d\n", rungLabel(i), m.rankRungCandidates[i].Load())
	}
}
