package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/memtrace"
	"cnnrev/internal/nn"
	"cnnrev/internal/structrev"
)

// newTestServer builds a server plus its httptest front end. The cleanup
// shuts the job queue down before closing the HTTP server, mirroring the
// revcnnd exit path.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// postSimulate issues a simulate request and decodes the response.
func postSimulate(t *testing.T, ts *httptest.Server, body string) (*attackResponse, int) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/attack/simulate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var ar attackResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	return &ar, resp.StatusCode
}

// endlessRankBody is a simulate request whose ranking stage runs for an
// unbounded number of epochs: only cancellation (client disconnect or
// deadline) ends it, and it ends within one epoch of the signal.
func endlessRankBody(timeoutMS int) string {
	return fmt.Sprintf(`{"model":"lenet","rank":{"classes":2,"per_class":6,"epochs":1048576,"max_candidates":1},"timeout_ms":%d}`, timeoutMS)
}

// startCancellable fires a request on its own goroutine with a private
// context; the returned channel yields the client-side error after cancel.
func startCancellable(t *testing.T, ts *httptest.Server, body string) (cancel context.CancelFunc, done chan error) {
	t.Helper()
	ctx, cancelFn := context.WithCancel(context.Background())
	done = make(chan error, 1)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/attack/simulate", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		resp, err := ts.Client().Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- err
	}()
	return cancelFn, done
}

// lenetTraceBytes records a LeNet victim's memory trace the same way the
// structrev tests do, serialized for upload.
func lenetTraceBytes(t *testing.T) ([]byte, *nn.Network) {
	t.Helper()
	net := nn.LeNet(10)
	net.InitWeights(1)
	sim, err := accel.New(net, accel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := make([]float32, net.Input.Len())
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	res, err := sim.Run(x)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Trace.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), net
}

// TestTraceUploadEndToEnd uploads a recorded LeNet trace and checks the
// service recovers exactly the candidate set the library does directly.
func TestTraceUploadEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw, net := lenetTraceBytes(t)

	resp, err := ts.Client().Post(ts.URL+"/v1/attack/trace?inw=28&ind=1&classes=10", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	var ar attackResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}

	// Reference: the direct library pipeline on the same trace.
	rep, err := coreReferenceSolve(t, raw, net)
	if err != nil {
		t.Fatal(err)
	}
	if ar.Partial {
		t.Fatal("full-deadline job reported partial")
	}
	if ar.NumStructures != rep {
		t.Fatalf("service found %d structures, library %d", ar.NumStructures, rep)
	}
	if ar.NumStructures == 0 || len(ar.Segments) == 0 {
		t.Fatalf("empty result: %+v", ar)
	}
	if ar.StageMS == nil {
		t.Fatal("missing stage timings")
	}
	for _, st := range []string{"analyze", "solve"} {
		if _, ok := ar.StageMS[st]; !ok {
			t.Fatalf("missing %s stage timing", st)
		}
	}
}

func coreReferenceSolve(t *testing.T, raw []byte, net *nn.Network) (int, error) {
	t.Helper()
	tr, err := memtrace.DecodeTrace(raw)
	if err != nil {
		return 0, err
	}
	a, err := structrev.Analyze(tr, net.Input.Len()*4, 4)
	if err != nil {
		return 0, err
	}
	sts, err := structrev.Solve(a, net.Input.W, net.Input.C, net.NumClasses(), structrev.DefaultOptions())
	if err != nil {
		return 0, err
	}
	return len(sts), nil
}

// TestTraceUploadRejectsGarbageAndOversize pins the untrusted-boundary
// behavior: malformed bodies are 400s, oversized ones 413s, and neither
// consumes a job slot.
func TestTraceUploadRejectsGarbageAndOversize(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxUploadBytes: 1 << 10})

	resp, err := ts.Client().Post(ts.URL+"/v1/attack/trace?inw=28&ind=1&classes=10", "application/octet-stream", strings.NewReader("not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d, want 400", resp.StatusCode)
	}

	big := bytes.Repeat([]byte{0xAA}, 4<<10)
	resp, err = ts.Client().Post(ts.URL+"/v1/attack/trace?inw=28&ind=1&classes=10", "application/octet-stream", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	if got := s.Metrics().Counter("started"); got != 0 {
		t.Fatalf("rejected uploads started %d jobs", got)
	}
}

// TestQueueFullReturns429 pins the overload contract: with the single
// worker pinned and the queue full, a burst of submissions is rejected
// immediately with 429 — nothing blocks behind the running job.
func TestQueueFullReturns429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1, JobTimeout: 5 * time.Minute})

	cancelA, doneA := startCancellable(t, ts, endlessRankBody(0))
	defer cancelA()
	waitFor(t, "worker busy", 30*time.Second, func() bool { return s.Metrics().Counter("running") == 1 })

	cancelB, doneB := startCancellable(t, ts, endlessRankBody(0))
	defer cancelB()
	waitFor(t, "queue occupied", 30*time.Second, func() bool { return s.queueDepth() == 1 })

	const burst = 5
	codes := make(chan int, burst)
	for i := 0; i < burst; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/attack/simulate", "application/json", strings.NewReader(`{"model":"lenet"}`))
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	for i := 0; i < burst; i++ {
		select {
		case code := <-codes:
			if code != http.StatusTooManyRequests {
				t.Fatalf("burst request got status %d, want 429", code)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("burst request blocked behind a full queue")
		}
	}
	if got := s.Metrics().Counter("rejected"); got != burst {
		t.Fatalf("rejected counter %d, want %d", got, burst)
	}

	cancelA()
	cancelB()
	<-doneA
	<-doneB
	waitFor(t, "cancelled jobs to unwind", 60*time.Second, func() bool {
		return s.Metrics().Counter("running") == 0 && s.queueDepth() == 0
	})
}

// TestClientDisconnectCancelsJob pins cancellation latency: killing the
// client mid-rank frees the worker within one candidate/epoch boundary,
// visible through the stage-cancellation counters, and the worker is
// immediately usable again.
func TestClientDisconnectCancelsJob(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, JobTimeout: 5 * time.Minute})

	cancel, done := startCancellable(t, ts, endlessRankBody(0))
	waitFor(t, "solve stage to finish (job inside rank)", 60*time.Second, func() bool {
		return s.Metrics().StageCount("solve") == 1
	})
	cancel()
	if err := <-done; err == nil {
		t.Fatal("cancelled client request returned no error")
	}
	waitFor(t, "worker to notice the disconnect", 60*time.Second, func() bool {
		return s.Metrics().Counter("cancelled") == 1 && s.Metrics().Counter("running") == 0
	})
	if got := s.Metrics().StageCancelled("rank"); got < 1 {
		t.Fatalf("rank stage cancellations %d, want >= 1", got)
	}

	// The pool is clean: a fresh job completes normally.
	ar, code := postSimulate(t, ts, `{"model":"lenet"}`)
	if code != http.StatusOK || ar == nil || ar.Partial || ar.NumStructures == 0 {
		t.Fatalf("post-cancel job: code %d resp %+v", code, ar)
	}
}

// TestDeadlineReturnsPartialResult pins partial-result semantics: a job
// whose deadline strikes during ranking still returns 200 with the complete
// structure enumeration, Partial set, and untrained candidates marked.
func TestDeadlineReturnsPartialResult(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	timeoutMS := 1500
	if raceEnabled {
		timeoutMS = 6000
	}
	ar, code := postSimulate(t, ts, endlessRankBody(timeoutMS))
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200 with partial body", code)
	}
	if !ar.Partial {
		t.Fatalf("response not marked partial: %+v", ar)
	}
	if ar.NumStructures == 0 {
		t.Fatal("partial response lost the completed solve stage")
	}
	var cancelledScores int
	for _, sc := range ar.Scores {
		if sc.Error != "" && sc.Accuracy == nil {
			cancelledScores++
		}
	}
	if cancelledScores == 0 {
		t.Fatalf("no scores marked cancelled: %+v", ar.Scores)
	}
	if got := s.Metrics().Counter("partial"); got != 1 {
		t.Fatalf("partial counter %d, want 1", got)
	}
	if got := s.Metrics().StageCancelled("rank"); got < 1 {
		t.Fatalf("rank stage cancellations %d, want >= 1", got)
	}
}

// TestShutdownDrainsInFlightAbortsQueued pins the SIGTERM contract: the
// in-flight job runs to completion, every queued job is aborted with 503,
// and new submissions are refused while draining.
func TestShutdownDrainsInFlightAbortsQueued(t *testing.T) {
	epochs := 1000
	if raceEnabled {
		epochs = 150
	}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, JobTimeout: 5 * time.Minute})

	finite := fmt.Sprintf(`{"model":"lenet","rank":{"classes":2,"per_class":6,"epochs":%d,"max_candidates":1}}`, epochs)
	typeA := make(chan *attackResponse, 1)
	codeA := make(chan int, 1)
	go func() {
		ar, code := postSimulate(t, ts, finite)
		typeA <- ar
		codeA <- code
	}()
	waitFor(t, "in-flight job running", 30*time.Second, func() bool { return s.Metrics().Counter("running") == 1 })

	queuedCodes := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/attack/simulate", "application/json", strings.NewReader(`{"model":"lenet"}`))
			if err != nil {
				queuedCodes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			queuedCodes <- resp.StatusCode
		}()
	}
	waitFor(t, "two jobs queued", 30*time.Second, func() bool { return s.queueDepth() == 2 })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()

	// Queued jobs are aborted promptly, long before the in-flight job ends.
	for i := 0; i < 2; i++ {
		select {
		case code := <-queuedCodes:
			if code != http.StatusServiceUnavailable {
				t.Fatalf("queued job got status %d, want 503", code)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("queued job was not aborted by shutdown")
		}
	}

	// A submission during the drain is refused.
	resp, err := ts.Client().Post(ts.URL+"/v1/attack/simulate", "application/json", strings.NewReader(`{"model":"lenet"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain got %d, want 503", resp.StatusCode)
	}

	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if ar, code := <-typeA, <-codeA; code != http.StatusOK || ar == nil || ar.Partial {
		t.Fatalf("in-flight job was not drained to completion: code %d resp %+v", code, ar)
	}
	m := s.Metrics()
	if m.Counter("completed") != 1 || m.Counter("aborted") != 2 || m.Counter("started") != 1 {
		t.Fatalf("drain metrics: completed %d aborted %d started %d, want 1/2/1",
			m.Counter("completed"), m.Counter("aborted"), m.Counter("started"))
	}
	if m.Counter("running") != 0 {
		t.Fatal("running gauge nonzero after drain")
	}
}

// TestHealthzAndMetrics exercises the observability surface.
func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	if ar, code := postSimulate(t, ts, `{"model":"lenet"}`); code != http.StatusOK || ar.NumStructures == 0 {
		t.Fatalf("simulate: code %d resp %+v", code, ar)
	}

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Workers != 2 {
		t.Fatalf("healthz: %d %+v", resp.StatusCode, health)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"revcnnd_jobs_started_total 1",
		"revcnnd_jobs_completed_total 1",
		"revcnnd_jobs_running 0",
		"revcnnd_queue_depth 0",
		"revcnnd_workers 2",
		`revcnnd_stage_seconds_count{stage="solve"} 1`,
		`revcnnd_stage_cancelled_total{stage="rank"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, text)
		}
	}
	if got := s.Metrics().StageCount("capture"); got != 1 {
		t.Fatalf("capture stage count %d, want 1", got)
	}
}

// TestCorruptTolerantEndToEnd pins the hostile-probe surface: trace mode
// with corruption query params degrades the upload and takes the tolerant
// path, simulate mode accepts the JSON corrupt spec, and invalid corruption
// parameters are 400s that never consume a job slot.
func TestCorruptTolerantEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	raw, net := lenetTraceBytes(t)

	// Clean reference count from the direct library pipeline.
	want, err := coreReferenceSolve(t, raw, net)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupted upload: drop + bounded reorder at the levels the tolerant
	// analyzer is tested to survive.
	url := ts.URL + "/v1/attack/trace?inw=28&ind=1&classes=10&drop_rate=0.02&reorder_window=16&corrupt_seed=1"
	resp, err := ts.Client().Post(url, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var ar attackResponse
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("corrupted upload: status %d: %s", resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !ar.Corrupted || !ar.Tolerant || ar.Noise == nil {
		t.Fatalf("corrupted upload not flagged: corrupted=%v tolerant=%v noise=%v", ar.Corrupted, ar.Tolerant, ar.Noise)
	}
	if _, ok := ar.StageMS["corrupt"]; !ok {
		t.Fatal("missing corrupt stage timing")
	}
	if len(ar.Segments) != 4 || ar.NumStructures == 0 {
		t.Fatalf("corrupted upload: %d segments, %d structures", len(ar.Segments), ar.NumStructures)
	}

	// Tolerant-on-clean simulate reproduces the strict candidate set and
	// reports zero-noise stats.
	tr, code := postSimulate(t, ts, `{"model":"lenet","seed":1,"tolerant":true}`)
	if code != http.StatusOK {
		t.Fatalf("tolerant simulate: status %d", code)
	}
	if !tr.Tolerant || tr.Corrupted || tr.Noise == nil {
		t.Fatalf("tolerant simulate flags: tolerant=%v corrupted=%v noise=%v", tr.Tolerant, tr.Corrupted, tr.Noise)
	}
	if tr.NumStructures != want {
		t.Fatalf("tolerant clean simulate found %d structures, strict library %d", tr.NumStructures, want)
	}
	if tr.Noise.WriteHoleFrac != 0 || tr.Noise.InterferenceRegions != 0 {
		t.Fatalf("clean capture reported noise: %+v", tr.Noise)
	}

	// Corrupted simulate runs the corrupt stage inside the service pipeline.
	cr, code := postSimulate(t, ts, `{"model":"lenet","seed":1,"corrupt":{"seed":1,"drop_rate":0.02,"reorder_window":16}}`)
	if code != http.StatusOK {
		t.Fatalf("corrupt simulate: status %d", code)
	}
	if !cr.Corrupted || !cr.Tolerant || cr.NumStructures == 0 {
		t.Fatalf("corrupt simulate: corrupted=%v tolerant=%v structures=%d", cr.Corrupted, cr.Tolerant, cr.NumStructures)
	}

	started := s.Metrics().Counter("started")

	// Out-of-range corruption parameters are rejected before enqueue.
	for _, bad := range []string{
		"drop_rate=2",
		"interference_rate=-0.5",
		"reorder_window=-1",
		"interference_regions=1000",
	} {
		resp, err := ts.Client().Post(ts.URL+"/v1/attack/trace?inw=28&ind=1&classes=10&"+bad, "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if _, code := postSimulate(t, ts, `{"model":"lenet","corrupt":{"drop_rate":1.5}}`); code != http.StatusBadRequest {
		t.Fatalf("bad simulate corrupt spec: status %d, want 400", code)
	}

	// Oversized geometry claims are rejected at the same boundary.
	for _, bad := range []string{"inw=99999&ind=1&classes=10", "inw=28&ind=1&classes=10&elem=0"} {
		resp, err := ts.Client().Post(ts.URL+"/v1/attack/trace?"+bad, "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
	if got := s.Metrics().Counter("started"); got != started {
		t.Fatalf("rejected requests consumed job slots: started %d -> %d", started, got)
	}
}

// TestQueryBoolRejectsUnrecognized pins the boolean-parameter regression:
// a typo like tolerant=ture must be a 400 naming the parameter, not a
// silent false that runs the wrong attack under a 200.
func TestQueryBoolRejectsUnrecognized(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	raw, _ := lenetTraceBytes(t)

	for _, param := range []string{"rank", "modular", "tolerant", "allow_stride_over_kernel", "cache_bypass"} {
		url := fmt.Sprintf("%s/v1/attack/trace?inw=28&ind=1&classes=10&%s=ture", ts.URL, param)
		resp, err := ts.Client().Post(url, "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s=ture: status %d, want 400", param, resp.StatusCode)
		}
		if !strings.Contains(string(body), param) {
			t.Fatalf("%s=ture: error %q does not name the parameter", param, body)
		}
	}

	// The full accepted vocabulary still parses on both sides of the coin.
	for _, v := range []string{"0", "1", "true", "false", "yes", "no"} {
		url := fmt.Sprintf("%s/v1/attack/trace?inw=28&ind=1&classes=10&tolerant=%s", ts.URL, v)
		resp, err := ts.Client().Post(url, "application/octet-stream", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tolerant=%s: status %d, want 200", v, resp.StatusCode)
		}
	}

	// Same vocabulary guard on the simulate endpoint's cache_bypass.
	resp, err := ts.Client().Post(ts.URL+"/v1/attack/simulate?cache_bypass=ture", "application/json", strings.NewReader(`{"model":"lenet"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "cache_bypass") {
		t.Fatalf("simulate cache_bypass=ture: status %d body %q, want 400 naming the parameter", resp.StatusCode, body)
	}

	// None of the rejected requests reached the queue. (The six accepted
	// vocabulary uploads enqueue at most six jobs: tolerant=0/false/no and
	// tolerant=1/true/yes each share a cache key, so later ones may hit.)
	if got := s.Metrics().Counter("started"); got > 6 {
		t.Fatalf("rejected requests consumed job slots: started %d", got)
	}
}

// postTrace uploads a trace and returns the status, raw response bytes, and
// the cache-marker header.
func postTrace(t *testing.T, ts *httptest.Server, query string, raw []byte) (int, []byte, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/attack/trace?"+query, "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Revcnnd-Cache")
}

// TestTraceCacheHitByteIdentity pins the result cache's contract: a repeat
// of an identical upload is served from the cache byte-for-byte, without
// running any pipeline stage past decode, and cache_bypass forces a fresh
// computation.
func TestTraceCacheHitByteIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	raw, _ := lenetTraceBytes(t)
	const q = "inw=28&ind=1&classes=10"

	code, first, marker := postTrace(t, ts, q, raw)
	if code != http.StatusOK || marker != "" {
		t.Fatalf("first upload: status %d marker %q", code, marker)
	}
	m := s.Metrics()
	if m.Counter("cache_misses") != 1 || m.Counter("cache_stores") != 1 {
		t.Fatalf("first upload: misses %d stores %d, want 1/1", m.Counter("cache_misses"), m.Counter("cache_stores"))
	}
	started, analyzed, solved := m.Counter("started"), m.StageCount("analyze"), m.StageCount("solve")

	code, second, marker := postTrace(t, ts, q, raw)
	if code != http.StatusOK || marker != "hit" {
		t.Fatalf("second upload: status %d marker %q, want 200 hit", code, marker)
	}
	var ar attackResponse
	if err := json.Unmarshal(second, &ar); err != nil {
		t.Fatal(err)
	}
	if !ar.Cached {
		t.Fatal("cached response not marked cached")
	}
	if ar.NumStructures == 0 || len(ar.Segments) == 0 {
		t.Fatalf("cached response lost its payload: %+v", ar)
	}
	// The cached body is the stored computation verbatim, so apart from the
	// cached marker it matches the first response byte for byte.
	want := bytes.Replace(first, []byte(`"mode":"trace"`), []byte(`"mode":"trace","cached":true`), 1)
	if !bytes.Equal(second, want) {
		t.Fatalf("cached body diverges from the original beyond the cached flag:\n first: %s\nsecond: %s", first, second)
	}
	// No pipeline stage past decode ran for the hit.
	if m.Counter("started") != started || m.StageCount("analyze") != analyzed || m.StageCount("solve") != solved {
		t.Fatalf("cache hit ran the pipeline: started %d->%d analyze %d->%d solve %d->%d",
			started, m.Counter("started"), analyzed, m.StageCount("analyze"), solved, m.StageCount("solve"))
	}
	if m.Counter("cache_hits") != 1 {
		t.Fatalf("cache_hits %d, want 1", m.Counter("cache_hits"))
	}

	// Hits are stable: a third identical request returns identical bytes.
	code, third, _ := postTrace(t, ts, q, raw)
	if code != http.StatusOK || !bytes.Equal(second, third) {
		t.Fatalf("repeat hit not byte-identical (status %d)", code)
	}

	// Different analysis parameters are a different key, not a stale hit.
	code, _, marker = postTrace(t, ts, q+"&tol=0.5", raw)
	if code != http.StatusOK || marker == "hit" {
		t.Fatalf("changed params: status %d marker %q, want a miss", code, marker)
	}

	// cache_bypass recomputes even though the entry exists.
	code, bypassed, marker := postTrace(t, ts, q+"&cache_bypass=1", raw)
	if code != http.StatusOK || marker == "hit" {
		t.Fatalf("bypass: status %d marker %q", code, marker)
	}
	var br attackResponse
	if err := json.Unmarshal(bypassed, &br); err != nil {
		t.Fatal(err)
	}
	if br.Cached {
		t.Fatal("bypassed response claims to be cached")
	}
	if m.Counter("cache_bypassed") != 1 || m.Counter("started") != started+2 {
		t.Fatalf("bypass accounting: bypassed %d started %d, want 1 and %d", m.Counter("cache_bypassed"), m.Counter("started"), started+2)
	}

	// The cache surface is visible on /metrics.
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"revcnnd_cache_hits_total 2", "revcnnd_cache_bypassed_total 1", "revcnnd_cache_entries 2"} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestCacheDisabled pins the negative-budget escape hatch: with caching off
// every identical request recomputes and no cache metrics move.
func TestCacheDisabled(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheBytes: -1})
	for i := 0; i < 2; i++ {
		if ar, code := postSimulate(t, ts, `{"model":"lenet"}`); code != http.StatusOK || ar.Cached {
			t.Fatalf("request %d: code %d cached %v", i, code, ar.Cached)
		}
	}
	m := s.Metrics()
	if m.Counter("started") != 2 {
		t.Fatalf("started %d, want 2 recomputations", m.Counter("started"))
	}
	if m.Counter("cache_hits")+m.Counter("cache_misses")+m.Counter("cache_stores") != 0 {
		t.Fatal("disabled cache recorded lookups")
	}
}

// TestSimulateSeedZeroDistinct pins the seed-zero regression: seed 0 is a
// real victim, not an alias for the default, while an omitted seed and an
// explicit seed 2 share one result.
func TestSimulateSeedZeroDistinct(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	if ar, code := postSimulate(t, ts, `{"model":"lenet","seed":0}`); code != http.StatusOK || ar.NumStructures == 0 {
		t.Fatalf("seed 0: code %d resp %+v", code, ar)
	}
	if ar, code := postSimulate(t, ts, `{"model":"lenet"}`); code != http.StatusOK || ar.Cached {
		t.Fatalf("omitted seed: code %d cached %v — seed 0 and the default collided", code, ar.Cached)
	}
	m := s.Metrics()
	if m.Counter("cache_misses") != 2 || m.Counter("cache_hits") != 0 {
		t.Fatalf("seed 0 vs default: misses %d hits %d, want 2/0", m.Counter("cache_misses"), m.Counter("cache_hits"))
	}

	// The documented default: an omitted seed is exactly seed 2.
	if ar, code := postSimulate(t, ts, `{"model":"lenet","seed":2}`); code != http.StatusOK || !ar.Cached {
		t.Fatalf("seed 2: code %d cached %v — omitted seed did not resolve to 2", code, ar.Cached)
	}
	if m.Counter("started") != 2 {
		t.Fatalf("started %d, want 2 (seed 2 served from the omitted-seed entry)", m.Counter("started"))
	}
}

// TestClientDisconnectWritesNothing pins the disconnect regression: when
// the client is gone before the job finishes, the server writes no status
// and no body (previously a 408 nobody could receive) and records the
// abandoned outcome.
func TestClientDisconnectWritesNothing(t *testing.T) {
	s, _ := newTestServer(t, Config{})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the job even starts
	req := httptest.NewRequest(http.MethodPost, "/v1/attack/simulate", strings.NewReader(`{"model":"lenet"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	// Nothing was written: the recorder still holds its zero-value 200 with
	// an empty body, meaning net/http would just drop the dead connection.
	if rec.Body.Len() != 0 {
		t.Fatalf("disconnected client was sent a body: %q", rec.Body.String())
	}
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d written to a disconnected client", rec.Code)
	}
	m := s.Metrics()
	if m.Counter("abandoned") != 1 || m.Counter("cancelled") != 1 {
		t.Fatalf("abandoned %d cancelled %d, want 1/1", m.Counter("abandoned"), m.Counter("cancelled"))
	}
	if m.Counter("cache_stores") != 0 {
		t.Fatal("abandoned job stored a cache entry")
	}
}

// TestSimulateWeightAttack runs the §4-compatible victim through the
// service with weight recovery enabled.
func TestSimulateWeightAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("weight recovery is slow in -short mode")
	}
	_, ts := newTestServer(t, Config{JobTimeout: 5 * time.Minute})
	ar, code := postSimulate(t, ts, `{"model":"prunedconv1","filters":4,"weights":true,"classes":1}`)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if ar.Weights == nil {
		t.Fatalf("no weight report (weights_error=%q)", ar.WeightsError)
	}
	if ar.Weights.Filters != 4 || ar.Weights.MaxRatioErr > 1.0/1024 {
		t.Fatalf("weight recovery out of paper tolerance: %+v", ar.Weights)
	}

	// A pooled/padded victim cannot satisfy §4's reach; the job still
	// succeeds and reports why.
	ar, code = postSimulate(t, ts, `{"model":"lenet","weights":true}`)
	if code != http.StatusOK || ar.WeightsError == "" {
		t.Fatalf("pooled victim: code %d weights_error %q", code, ar.WeightsError)
	}
}
