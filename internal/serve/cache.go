package serve

import (
	"container/list"
	"sync"
)

// resultCache is the content-addressed result store: completed, non-partial
// attack responses keyed by the canonicalized request (trace mode keys on
// the upload's SHA-256 plus every result-affecting parameter; simulate mode
// on the canonical victim spec). Every pipeline stage is deterministic for
// a fixed key — the simulator schedule depends only on shapes, corruption
// and ranking are seeded — so a hit can replay the stored response bytes
// verbatim instead of recomputing analyze/solve/rank.
//
// Eviction is LRU over a total byte budget (keys + bodies), so one giant
// AlexNet enumeration cannot pin the cache while a stream of small results
// starves; a single entry larger than the budget is simply not stored.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func newResultCache(maxBytes int64) *resultCache {
	return &resultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

func entrySize(e *cacheEntry) int64 { return int64(len(e.key) + len(e.body)) }

// get returns the stored response body for key and marks it most recently
// used. The returned slice is shared — callers must not mutate it.
func (c *resultCache) get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

// put stores body under key (replacing any previous entry) and returns how
// many entries were evicted to fit it under the byte budget.
func (c *resultCache) put(key string, body []byte) (evicted int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes -= entrySize(e)
		e.body = body
		c.bytes += entrySize(e)
		c.ll.MoveToFront(el)
	} else {
		e := &cacheEntry{key: key, body: body}
		if entrySize(e) > c.maxBytes {
			return 0
		}
		c.entries[key] = c.ll.PushFront(e)
		c.bytes += entrySize(e)
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.ll.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= entrySize(e)
		evicted++
	}
	return evicted
}

// stats reports the cache's current occupancy for the metrics endpoint.
func (c *resultCache) stats() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, c.ll.Len()
}
