package serve

import (
	"bytes"
	"fmt"
	"testing"

	"cnnrev/internal/accel"
)

// TestResultCacheLRUEviction pins the byte-budget LRU contract: least
// recently used entries fall out first, a get refreshes recency, and the
// byte accounting tracks keys plus bodies.
func TestResultCacheLRUEviction(t *testing.T) {
	entry := func(i int) (string, []byte) {
		return fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 97) // 3 + 97 = 100 bytes
	}
	c := newResultCache(300) // exactly three entries
	for i := 0; i < 3; i++ {
		k, b := entry(i)
		if ev := c.put(k, b); ev != 0 {
			t.Fatalf("put %d evicted %d entries under budget", i, ev)
		}
	}
	if n, e := c.stats(); n != 300 || e != 3 {
		t.Fatalf("stats = %d bytes %d entries, want 300/3", n, e)
	}
	// Touch k00 so k01 becomes the LRU victim.
	if _, ok := c.get("k00"); !ok {
		t.Fatal("k00 missing before eviction")
	}
	k3, b3 := entry(3)
	if ev := c.put(k3, b3); ev != 1 {
		t.Fatalf("put over budget evicted %d entries, want 1", ev)
	}
	if _, ok := c.get("k01"); ok {
		t.Fatal("LRU entry k01 survived eviction")
	}
	for _, k := range []string{"k00", "k02", "k03"} {
		if _, ok := c.get(k); !ok {
			t.Fatalf("%s evicted out of LRU order", k)
		}
	}
}

// TestResultCacheReplaceAndOversize: replacing a key updates bytes in
// place, and an entry larger than the whole budget is refused rather than
// flushing the cache to make room for something that cannot fit.
func TestResultCacheReplaceAndOversize(t *testing.T) {
	c := newResultCache(100)
	c.put("a", make([]byte, 10))
	c.put("a", make([]byte, 50))
	if n, e := c.stats(); n != 51 || e != 1 {
		t.Fatalf("after replace: %d bytes %d entries, want 51/1", n, e)
	}
	got, ok := c.get("a")
	if !ok || len(got) != 50 {
		t.Fatalf("replaced body len %d, want 50", len(got))
	}
	if ev := c.put("huge", make([]byte, 200)); ev != 0 {
		t.Fatalf("oversized put evicted %d entries", ev)
	}
	if _, ok := c.get("huge"); ok {
		t.Fatal("entry over the whole budget was stored")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("oversized put flushed an existing entry")
	}
}

// TestCacheKeyDistinguishesParams pins the canonicalization: any
// result-affecting field must change the key, and the same logical request
// must reproduce it.
func TestCacheKeyDistinguishesParams(t *testing.T) {
	base := func() *attackRequest {
		return &attackRequest{
			mode: "trace", traceHash: "abc", inW: 28, inD: 1, elemBytes: 4,
			classes: 10, tol: 0.1,
		}
	}
	k0 := base().cacheKey()
	if k0 != base().cacheKey() {
		t.Fatal("identical requests produced different keys")
	}
	mutations := map[string]func(*attackRequest){
		"trace hash":   func(r *attackRequest) { r.traceHash = "abd" },
		"inw":          func(r *attackRequest) { r.inW = 32 },
		"classes":      func(r *attackRequest) { r.classes = 100 },
		"elem":         func(r *attackRequest) { r.elemBytes = 8 },
		"modular":      func(r *attackRequest) { r.modular = true },
		"tolerant":     func(r *attackRequest) { r.tolerant = true },
		"tol":          func(r *attackRequest) { r.tol = 0.2 },
		"stride":       func(r *attackRequest) { r.allowStrideOK = true },
		"max return":   func(r *attackRequest) { r.maxReturn = 5 },
		"weights":      func(r *attackRequest) { r.weights = true },
		"corrupt seed": func(r *attackRequest) { r.corrupt.Seed = 9 },
		"drop rate":    func(r *attackRequest) { r.corrupt.DropRate = 0.01 },
		"rank present": func(r *attackRequest) { r.rank = &rankParams{} },
		"rank seed":    func(r *attackRequest) { r.rank = &rankParams{Seed: 3} },
		"mode":         func(r *attackRequest) { r.mode = "simulate" },
		"dataflow ws":  func(r *attackRequest) { r.dataflow = accel.WeightStationary },
		"dataflow rs":  func(r *attackRequest) { r.dataflow = accel.RowStationary },
	}
	seen := map[string]string{k0: "base"}
	for name, mutate := range mutations {
		r := base()
		mutate(r)
		k := r.cacheKey()
		if prev, dup := seen[k]; dup {
			t.Fatalf("mutation %q collides with %q on key %q", name, prev, k)
		}
		seen[k] = name
	}
	// Simulate mode keys on the resolved seed: 0 and 2 are distinct.
	s0 := &attackRequest{mode: "simulate", model: "lenet", seed: 0}
	s2 := &attackRequest{mode: "simulate", model: "lenet", seed: 2}
	if s0.cacheKey() == s2.cacheKey() {
		t.Fatal("seed 0 and seed 2 collide on one cache key")
	}
	// The timeout is deliberately not part of the key.
	tA := base()
	tA.timeout = 1
	if tA.cacheKey() != k0 {
		t.Fatal("timeout leaked into the cache key")
	}
}
