package serve

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// benchServeThroughput pushes b.N independent structure-attack jobs through
// a server with the given worker count and reports end-to-end jobs/s. The
// cache is disabled (every seed is distinct anyway) so each job pays the
// full pipeline; scaling beyond one worker requires spare cores — on a
// single-core runner the pair measures queueing overhead, not speedup.
func benchServeThroughput(b *testing.B, workers int) {
	s := New(Config{
		Workers:    workers,
		QueueDepth: 4096,
		CacheBytes: -1,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	ts := httptest.NewServer(s.Handler())
	defer func() {
		sctx, scancel := ctxWithTimeout(b.Elapsed() + 120e9)
		defer scancel()
		if err := s.Shutdown(sctx); err != nil {
			b.Errorf("shutdown: %v", err)
		}
		ts.Close()
	}()
	var seed atomic.Int64
	b.SetParallelism(workers)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			body := fmt.Sprintf(`{"model":"lenet","seed":%d}`, seed.Add(1))
			resp, err := ts.Client().Post(ts.URL+"/v1/attack/simulate", "application/json", strings.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("simulate = %d", resp.StatusCode)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "jobs/s")
}

func BenchmarkServeThroughput_1Workers(b *testing.B) { benchServeThroughput(b, 1) }
func BenchmarkServeThroughput_4Workers(b *testing.B) { benchServeThroughput(b, 4) }
