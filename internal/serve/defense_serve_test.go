package serve

import (
	"net/http"
	"testing"

	"cnnrev/internal/accel"
)

// TestSimulateDefenseEndToEnd: the simulate endpoint accepts a defense
// spec, applies it between capture and analysis, reports the measured
// overheads, and feeds the "defense" stage metric.
func TestSimulateDefenseEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	// fuse keeps the analysis alive on lenet (read-only and write-only
	// buffers survive), so the response is a 200 carrying defense stats.
	ar, code := postSimulate(t, ts, `{"model":"lenet","defense":{"kind":"fuse"}}`)
	if code != http.StatusOK {
		t.Fatalf("fuse simulate: status %d", code)
	}
	if ar.Defense == nil || ar.Defense.Kind != "fuse" {
		t.Fatalf("defense stats missing from response: %+v", ar.Defense)
	}
	if bw := ar.Defense.BandwidthOverhead; bw >= 1 || bw <= 0 {
		t.Fatalf("fusion must save bandwidth, got x%v", bw)
	}
	if _, ok := ar.StageMS["defense"]; !ok {
		t.Fatal("missing defense stage timing")
	}
	if n := s.Metrics().StageDataflowCount("defense", "output-stationary"); n == 0 {
		t.Fatal("no defense stage executions recorded")
	}

	// An undefended run must not report defense stats.
	ar, code = postSimulate(t, ts, `{"model":"lenet"}`)
	if code != http.StatusOK || ar.Defense != nil {
		t.Fatalf("undefended run: status %d, defense %+v", code, ar.Defense)
	}

	// A defense that defeats the analysis outright (pad collapses the
	// input buffer's observable size) is a 422 — the attack failed, which
	// is the defense working, not a server error.
	if _, code = postSimulate(t, ts, `{"model":"lenet","defense":{"kind":"pad"}}`); code != http.StatusUnprocessableEntity {
		t.Fatalf("pad-defeated attack: status %d, want 422", code)
	}

	// ORAM end to end, with its controller stats surfaced.
	ar, code = postSimulate(t, ts, `{"model":"lenet","defense":{"kind":"oram","seed":3},"tolerant":true}`)
	if code == http.StatusOK {
		t.Fatal("ORAM-defended attack should not succeed")
	}
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("oram simulate: status %d, want 422", code)
	}
}

// TestTraceDefenseEndToEnd: the trace endpoint accepts the defense query
// parameters and applies the transform before analysis (the "what if the
// victim had shipped this countermeasure" replay).
func TestTraceDefenseEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	raw := victimTraceBytes(t, accel.OutputStationary)

	ar, code, _ := postTraceJSON(t, ts, "inw=28&ind=1&classes=10&defense=fuse", raw)
	if code != http.StatusOK {
		t.Fatalf("fuse trace: status %d", code)
	}
	if ar.Defense == nil || ar.Defense.Kind != "fuse" {
		t.Fatalf("defense stats missing: %+v", ar.Defense)
	}
	if ar.Defense.OutputBlocks >= ar.Defense.InputBlocks {
		t.Fatalf("fusion did not remove traffic: %d -> %d blocks", ar.Defense.InputBlocks, ar.Defense.OutputBlocks)
	}

	// Defense knobs pass through: an explicit on-chip capacity too small to
	// fuse anything leaves the trace intact (overhead exactly 1).
	ar, code, _ = postTraceJSON(t, ts, "inw=28&ind=1&classes=10&defense=fuse&defense_onchip_bytes=64", raw)
	if code != http.StatusOK || ar.Defense == nil || ar.Defense.BandwidthOverhead != 1 {
		t.Fatalf("tiny on-chip buffer: status %d, defense %+v", code, ar.Defense)
	}

	// A defense that defeats the analysis is a 422 on this surface too.
	if code, _, _ := postTrace(t, ts, "inw=28&ind=1&classes=10&defense=pad", raw); code != http.StatusUnprocessableEntity {
		t.Fatalf("pad-defeated trace attack: status %d, want 422", code)
	}
}

// TestDefenseValidation: hostile or inconsistent defense parameters are a
// 400 on both surfaces, before any capture or analysis runs.
func TestDefenseValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	badQueries := []string{
		"defense=rot13",
		"defense=dummy&defense_dummy_rate=9",
		"defense=dummy&defense_dummy_rate=-0.5",
		"defense=pad&defense_bucket_bytes=-1",
		"defense=fuse&defense_onchip_bytes=-1",
		"defense=oram&defense_oram_z=-1",
		"defense=oram&defense_oram_block=48",
		// Cross-kind knobs: a knob without its defense would silently mint
		// a distinct cache key for an undefended run.
		"defense_dummy_rate=0.5",
		"defense_seed=7",
		"defense=pad&defense_dummy_rate=0.5",
		"defense=dummy&defense_oram_z=4",
	}
	for _, q := range badQueries {
		// Validation happens on the query string alone — no body needed.
		if code, _, _ := postTrace(t, ts, "inw=28&ind=1&classes=10&"+q, nil); code != http.StatusBadRequest {
			t.Errorf("trace ?%s: status %d, want 400", q, code)
		}
	}
	badBodies := []string{
		`{"model":"lenet","defense":{"kind":"rot13"}}`,
		`{"model":"lenet","defense":{"kind":"dummy","dummy_rate":9}}`,
		`{"model":"lenet","defense":{"kind":"oram","oram_z":-1}}`,
		`{"model":"lenet","defense":{"kind":"oram","oram_block_bytes":48}}`,
		`{"model":"lenet","defense":{"dummy_rate":0.5}}`,
		`{"model":"lenet","defense":{"kind":"fuse","bucket_bytes":4096}}`,
	}
	for _, b := range badBodies {
		if _, code := postSimulate(t, ts, b); code != http.StatusBadRequest {
			t.Errorf("simulate %s: status %d, want 400", b, code)
		}
	}
}

// TestNegativeCountValidation pins the queryInt lower-bound fix: negative
// counts and budgets are a 400 on both the query and JSON-body paths
// instead of flowing silently into the solver and trainer.
func TestNegativeCountValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{
		"max_structures=-1", "max_return=-1", "timeout_ms=-1",
	} {
		if code, _, _ := postTrace(t, ts, "inw=28&ind=1&classes=10&"+q, nil); code != http.StatusBadRequest {
			t.Errorf("trace ?%s: status %d, want 400", q, code)
		}
	}
	for _, b := range []string{
		`{"model":"lenet","max_structures":-1}`,
		`{"model":"lenet","max_return":-1}`,
		`{"model":"lenet","timeout_ms":-1}`,
		`{"model":"lenet","classes":-10}`,
		`{"model":"lenet","depth_div":-2}`,
		`{"model":"lenet","rank":{"classes":-1}}`,
		`{"model":"lenet","rank":{"per_class":-1}}`,
		`{"model":"lenet","rank":{"epochs":-1}}`,
		`{"model":"lenet","rank":{"top_k":-1}}`,
	} {
		if _, code := postSimulate(t, ts, b); code != http.StatusBadRequest {
			t.Errorf("simulate %s: status %d, want 400", b, code)
		}
	}
}

// TestDefenseSplitsCacheKey: defended and undefended runs of the same
// victim are distinct result-cache entries, and the split covers the
// defense knobs, not just the kind.
func TestDefenseSplitsCacheKey(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if ar, code := postSimulate(t, ts, `{"model":"lenet","defense":{"kind":"fuse"}}`); code != http.StatusOK || ar.Cached {
		t.Fatalf("first fuse simulate: status %d", code)
	}
	if ar, code := postSimulate(t, ts, `{"model":"lenet"}`); code != http.StatusOK || ar.Cached {
		t.Fatal("undefended run must not reuse the defended entry")
	}
	if ar, code := postSimulate(t, ts, `{"model":"lenet","defense":{"kind":"fuse"}}`); code != http.StatusOK || !ar.Cached {
		t.Fatal("repeated fuse simulate must be served from cache")
	}
	if ar, code := postSimulate(t, ts, `{"model":"lenet","defense":{"kind":"fuse","onchip_bytes":64}}`); code != http.StatusOK || ar.Cached {
		t.Fatal("different on-chip capacity must be a distinct cache entry")
	}
	if hits := s.Metrics().Counter("cache_hits"); hits != 1 {
		t.Fatalf("recorded %d cache hits, want 1", hits)
	}
}
