package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cnnrev/internal/accel"
	"cnnrev/internal/corrupt"
	"cnnrev/internal/defense"
	"cnnrev/internal/jobstore"
	"cnnrev/internal/memtrace"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Role == RoleWorker {
		// A pure worker keeps only the observability surface; attack
		// submission and job polling belong to the frontends.
		return
	}
	s.mux.HandleFunc("POST /v1/attack/trace", s.handleTrace)
	s.mux.HandleFunc("POST /v1/attack/simulate", s.handleSimulate)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := struct {
		Status     string `json:"status"`
		Role       string `json:"role"`
		Workers    int    `json:"workers"`
		Running    int64  `json:"running"`
		QueueDepth int    `json:"queue_depth"`
	}{"ok", s.cfg.Role, s.cfg.Workers, s.met.running.Load(), s.queueDepth()}
	code := http.StatusOK
	if s.isDraining() {
		st.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	cacheBytes, cacheEntries := s.cacheStats()
	s.met.writePrometheus(w, s.store.Stats(), s.cfg.Workers, cacheBytes, cacheEntries)
}

// jobStatusJSON is the GET /v1/jobs/{id} body: the store record plus, for
// finished jobs, the result envelope's status and body.
type jobStatusJSON struct {
	ID      string `json:"job_id"`
	State   string `json:"state"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
	// Status and Result carry the finished job's HTTP outcome: the status
	// the synchronous path would have returned and the attack response body.
	Status int             `json:"status,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, err := s.store.Fetch(id)
	if err != nil {
		if errors.Is(err, jobstore.ErrNotFound) {
			http.Error(w, "unknown job", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	st := jobStatusJSON{ID: rec.ID, State: string(rec.State), Attempt: rec.Attempt, Error: rec.Err}
	if rec.State.Terminal() && len(rec.Result) > 0 {
		if env, derr := decodeEnvelope(rec.Result); derr == nil {
			st.Status = env.Status
			st.Result = env.Body
			if env.ErrMsg != "" && st.Error == "" {
				st.Error = env.ErrMsg
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	wasQueued, err := s.store.Cancel(id)
	switch {
	case errors.Is(err, jobstore.ErrNotFound):
		http.Error(w, "unknown job", http.StatusNotFound)
		return
	case errors.Is(err, jobstore.ErrTerminal):
		http.Error(w, "job already finished", http.StatusConflict)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	state := "cancelling" // running: the worker acknowledges at the next boundary
	if wasQueued {
		state = "cancelled"
		s.met.cancelled.Add(1)
	}
	s.log.Info("job cancel requested", "job", id, "queued", wasQueued)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "{\"job_id\":%q,\"state\":%q}\n", id, state)
}

// queryInt parses an optional integer query parameter.
func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return n, nil
}

// queryBool parses an optional boolean query parameter. Values outside the
// recognized vocabulary are an error, not false: silently coercing
// tolerant=ture or rank=yess to false would run the wrong attack under a
// 200 response.
func queryBool(r *http.Request, name string) (bool, error) {
	switch v := r.URL.Query().Get(name); v {
	case "", "0", "false", "no":
		return false, nil
	case "1", "true", "yes":
		return true, nil
	default:
		return false, fmt.Errorf("bad %s=%q (want one of 0/1/true/false/yes/no)", name, v)
	}
}

// queryFloat parses an optional float query parameter.
func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", name, v)
	}
	return f, nil
}

// corruptFromQuery assembles the optional trace-corruption model from
// corruption query params; the zero config (nothing requested) disables it.
func corruptFromQuery(r *http.Request) (corrupt.Config, error) {
	cp := &corruptParams{}
	var err error
	if cp.DropRate, err = queryFloat(r, "drop_rate", 0); err != nil {
		return corrupt.Config{}, err
	}
	if cp.SplitRate, err = queryFloat(r, "split_rate", 0); err != nil {
		return corrupt.Config{}, err
	}
	if cp.CoalesceRate, err = queryFloat(r, "coalesce_rate", 0); err != nil {
		return corrupt.Config{}, err
	}
	if cp.InterferenceRate, err = queryFloat(r, "interference_rate", 0); err != nil {
		return corrupt.Config{}, err
	}
	if cp.ReorderWindow, err = queryInt(r, "reorder_window", 0); err != nil {
		return corrupt.Config{}, err
	}
	if cp.InterferenceRegions, err = queryInt(r, "interference_regions", 0); err != nil {
		return corrupt.Config{}, err
	}
	if cp.ProbeGranularityBlocks, err = queryInt(r, "probe_granularity_blocks", 0); err != nil {
		return corrupt.Config{}, err
	}
	// Seeds are full int64 on the JSON surface; parse at 64 bits here too so
	// both request surfaces accept the same range regardless of platform int.
	if v := r.URL.Query().Get("corrupt_seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return corrupt.Config{}, fmt.Errorf("bad corrupt_seed=%q", v)
		}
		cp.Seed = seed
	}
	return cp.toConfig()
}

// defenseFromQuery assembles the optional defensive trace transform from
// defense query params; the zero config (nothing requested) disables it.
// Validation — including the rejection of knobs that belong to a different
// defense kind — lives in defenseParams.toConfig, shared with the JSON
// surface.
func defenseFromQuery(r *http.Request) (defense.Config, error) {
	dp := &defenseParams{Kind: r.URL.Query().Get("defense")}
	var err error
	if dp.DummyRate, err = queryFloat(r, "defense_dummy_rate", 0); err != nil {
		return defense.Config{}, err
	}
	if dp.BucketBytes, err = queryInt(r, "defense_bucket_bytes", 0); err != nil {
		return defense.Config{}, err
	}
	var onchip int
	if onchip, err = queryInt(r, "defense_onchip_bytes", 0); err != nil {
		return defense.Config{}, err
	}
	dp.OnChipBytes = int64(onchip)
	if dp.ORAMZ, err = queryInt(r, "defense_oram_z", 0); err != nil {
		return defense.Config{}, err
	}
	if dp.ORAMBlockBytes, err = queryInt(r, "defense_oram_block", 0); err != nil {
		return defense.Config{}, err
	}
	// Seeds are full int64 on the JSON surface; parse at 64 bits here too so
	// both request surfaces accept the same range regardless of platform int.
	if v := r.URL.Query().Get("defense_seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return defense.Config{}, fmt.Errorf("bad defense_seed=%q", v)
		}
		dp.Seed = seed
	}
	return dp.toConfig()
}

// rankFromQuery assembles optional ranking parameters from rank_* query
// params; nil when ranking was not requested.
func rankFromQuery(r *http.Request) (*rankParams, error) {
	ranked, err := queryBool(r, "rank")
	if err != nil {
		return nil, err
	}
	if !ranked {
		return nil, nil
	}
	rp := &rankParams{}
	if rp.Classes, err = queryInt(r, "rank_classes", 0); err != nil {
		return nil, err
	}
	if rp.PerClass, err = queryInt(r, "rank_per_class", 0); err != nil {
		return nil, err
	}
	if rp.Epochs, err = queryInt(r, "rank_epochs", 0); err != nil {
		return nil, err
	}
	if rp.DepthDiv, err = queryInt(r, "rank_depth_div", 0); err != nil {
		return nil, err
	}
	if rp.MaxCandidates, err = queryInt(r, "rank_max_candidates", 0); err != nil {
		return nil, err
	}
	if rp.Halving, err = queryBool(r, "rank_halving"); err != nil {
		return nil, err
	}
	if rp.Eta, err = queryInt(r, "rank_eta", 0); err != nil {
		return nil, err
	}
	if rp.MinEpochs, err = queryInt(r, "rank_min_epochs", 0); err != nil {
		return nil, err
	}
	if v := r.URL.Query().Get("rank_seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad rank_seed=%q", v)
		}
		rp.Seed = seed
	}
	if err := rp.validate(); err != nil {
		return nil, err
	}
	return rp, nil
}

// handleTrace accepts a raw serialized memtrace body plus query parameters
// describing what the adversary knows (input geometry and class count).
// The body is never buffered: records stream from the wire through the
// incremental decoder in bounded batches, with the raw bytes SHA-256-hashed
// in flight to form the result-cache key. Query parameters are validated
// before the body is touched, so a bad request costs a header read rather
// than a multi-gigabyte upload.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength > s.cfg.MaxUploadBytes {
		http.Error(w, fmt.Sprintf("trace exceeds %d byte upload limit", s.cfg.MaxUploadBytes), http.StatusRequestEntityTooLarge)
		return
	}
	req := &attackRequest{mode: "trace"}
	var err error
	if req.inW, err = queryInt(r, "inw", 0); err == nil && (req.inW <= 0 || req.inW > 1<<14) {
		err = fmt.Errorf("trace attack requires 0 < inw <= %d (input width)", 1<<14)
	}
	if err == nil {
		if req.inD, err = queryInt(r, "ind", 0); err == nil && (req.inD <= 0 || req.inD > 1<<12) {
			err = fmt.Errorf("trace attack requires 0 < ind <= %d (input channels)", 1<<12)
		}
	}
	if err == nil {
		if req.classes, err = queryInt(r, "classes", 0); err == nil && (req.classes <= 0 || req.classes > 1<<20) {
			err = fmt.Errorf("trace attack requires 0 < classes <= %d", 1<<20)
		}
	}
	if err == nil {
		if req.elemBytes, err = queryInt(r, "elem", 4); err == nil && (req.elemBytes <= 0 || req.elemBytes > 64) {
			err = fmt.Errorf("elem must be in [1,64] bytes, got %d", req.elemBytes)
		}
	}
	if err == nil {
		req.corrupt, err = corruptFromQuery(r)
	}
	if err == nil {
		req.defense, err = defenseFromQuery(r)
	}
	if err == nil {
		if req.maxStructures, err = queryInt(r, "max_structures", 0); err == nil && req.maxStructures < 0 {
			err = fmt.Errorf("max_structures must be >= 0, got %d", req.maxStructures)
		}
	}
	if err == nil {
		if req.maxReturn, err = queryInt(r, "max_return", 0); err == nil && req.maxReturn < 0 {
			err = fmt.Errorf("max_return must be >= 0, got %d", req.maxReturn)
		}
	}
	if err == nil {
		req.rank, err = rankFromQuery(r)
	}
	if err == nil {
		req.modular, err = queryBool(r, "modular")
	}
	if err == nil {
		req.tolerant, err = queryBool(r, "tolerant")
	}
	if err == nil {
		req.allowStrideOK, err = queryBool(r, "allow_stride_over_kernel")
	}
	if err == nil {
		req.cacheBypass, err = queryBool(r, "cache_bypass")
	}
	if err == nil {
		req.dataflow, err = accel.ParseDataflow(r.URL.Query().Get("dataflow"))
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if tol := r.URL.Query().Get("tol"); tol != "" {
		if req.tol, err = strconv.ParseFloat(tol, 64); err != nil {
			http.Error(w, fmt.Sprintf("bad tol=%q", tol), http.StatusBadRequest)
			return
		}
	}
	timeoutMS, err := queryInt(r, "timeout_ms", 0)
	if err == nil && timeoutMS < 0 {
		err = fmt.Errorf("timeout_ms must be >= 0, got %d", timeoutMS)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	req.timeout = time.Duration(timeoutMS) * time.Millisecond

	// Stream the body through hash and decoder in one pass. MaxBytesReader
	// still guards chunked uploads that carry no Content-Length; its error
	// surfaces through the decoder wrapped, so errors.As recovers it here.
	decodeStart := time.Now()
	hash := sha256.New()
	dec := memtrace.NewDecoder(io.TeeReader(http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes), hash))
	var accs []memtrace.Access
	if n := r.ContentLength; n > 0 {
		// Records are 21 bytes on the wire. Content-Length is a client
		// claim, so cap the pre-allocation: beyond the cap, append growth
		// amortizes and the claim can no longer buy memory it didn't send.
		hint := n / 21
		if hint > 1<<20 {
			hint = 1 << 20
		}
		accs = make([]memtrace.Access, 0, hint)
	}
	for {
		batch, derr := dec.Next()
		if derr == io.EOF {
			break
		}
		if derr != nil {
			var tooBig *http.MaxBytesError
			if errors.As(derr, &tooBig) {
				http.Error(w, fmt.Sprintf("trace exceeds %d byte upload limit", tooBig.Limit), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, derr.Error(), http.StatusBadRequest)
			return
		}
		accs = append(accs, batch...)
	}
	req.trace = &memtrace.Trace{BlockBytes: dec.BlockBytes(), Accesses: accs}
	req.traceHash = hex.EncodeToString(hash.Sum(nil))
	s.met.ObserveStage("decode", time.Since(decodeStart))
	s.submit(w, r, req)
}

// simulateRequest is the JSON body of /v1/attack/simulate.
type simulateRequest struct {
	Model    string  `json:"model"`
	Classes  int     `json:"classes"`
	DepthDiv int     `json:"depth_div"`
	Filters  int     `json:"filters"`
	ZeroFrac float64 `json:"zero_frac"`
	// Seed is a pointer so "absent" and an explicit 0 stay distinguishable:
	// an omitted seed defaults to 2 (the seed the examples and golden corpus
	// use), while seed 0 is a legitimate victim in its own right — and the
	// two must never collide on one result-cache key.
	Seed          *int64      `json:"seed"`
	Modular       bool        `json:"modular"`
	Tol           float64     `json:"tol"`
	AllowStrideOK bool        `json:"allow_stride_over_kernel"`
	MaxStructures int         `json:"max_structures"`
	MaxReturn     int         `json:"max_return"`
	Rank          *rankParams `json:"rank"`
	Weights       bool        `json:"weights"`
	TimeoutMS     int         `json:"timeout_ms"`

	// Tolerant forces the noise-tolerant analysis path even on a clean
	// capture; Corrupt degrades the captured trace before analysis and
	// implies Tolerant.
	Tolerant bool           `json:"tolerant"`
	Corrupt  *corruptParams `json:"corrupt"`

	// Defense applies a defensive trace transform to the captured trace
	// before any adversary-side stage (internal/defense).
	Defense *defenseParams `json:"defense"`

	// Dataflow selects the accelerator backend the victim runs on
	// (output-stationary | weight-stationary | row-stationary, or the os/ws/rs
	// shorthand; empty = output-stationary).
	Dataflow string `json:"dataflow"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var sr simulateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return
	}
	if sr.Model == "" {
		http.Error(w, "missing model", http.StatusBadRequest)
		return
	}
	bypass, err := queryBool(r, "cache_bypass")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	dataflow, err := accel.ParseDataflow(sr.Dataflow)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if sr.Rank != nil {
		if err := sr.Rank.validate(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	// Negative counts would flow silently into victim construction and
	// solver/return semantics (and mint their own cache keys); reject them
	// here the way the query surface does.
	for _, c := range []struct {
		name string
		v    int
	}{
		{"classes", sr.Classes},
		{"depth_div", sr.DepthDiv},
		{"filters", sr.Filters},
		{"max_structures", sr.MaxStructures},
		{"max_return", sr.MaxReturn},
		{"timeout_ms", sr.TimeoutMS},
	} {
		if c.v < 0 {
			http.Error(w, fmt.Sprintf("%s must be >= 0, got %d", c.name, c.v), http.StatusBadRequest)
			return
		}
	}
	seed := int64(2) // documented default for an omitted seed
	if sr.Seed != nil {
		seed = *sr.Seed
	}
	req := &attackRequest{
		mode: "simulate", model: sr.Model, classes: sr.Classes, depthDiv: sr.DepthDiv,
		filters: sr.Filters, zeroFrac: sr.ZeroFrac, seed: seed,
		modular: sr.Modular, tol: sr.Tol, allowStrideOK: sr.AllowStrideOK,
		maxStructures: sr.MaxStructures, maxReturn: sr.MaxReturn,
		rank: sr.Rank, weights: sr.Weights,
		timeout:  time.Duration(sr.TimeoutMS) * time.Millisecond,
		tolerant: sr.Tolerant, cacheBypass: bypass, dataflow: dataflow,
	}
	if sr.Corrupt != nil {
		cfg, err := sr.Corrupt.toConfig()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req.corrupt = cfg
	}
	if sr.Defense != nil {
		cfg, err := sr.Defense.toConfig()
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		req.defense = cfg
	}
	s.submit(w, r, req)
}

// marshalResponse renders an attack response body as compact JSON without
// a trailing newline — the form that survives a json.RawMessage round-trip
// through the result envelope byte-for-byte. Writers append the newline at
// write time so cached replays stay byte-identical to first responses.
func marshalResponse(resp *attackResponse) ([]byte, error) {
	return json.Marshal(resp)
}

// writeBody writes a response body plus the protocol's trailing newline.
func writeBody(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
	w.Write([]byte{'\n'})
}

// submit resolves the request against the content-addressed result cache,
// then — on a miss — encodes it into the job store. wait=true (the
// default) blocks until a worker (or shutdown) finishes the job, writing
// its outcome and caching complete results; wait=false returns 202 with
// the job ID for GET /v1/jobs polling. The effective solver cap is
// resolved here, before keying and encoding, so every worker replica
// solves under the submitting frontend's bound.
func (s *Server) submit(w http.ResponseWriter, r *http.Request, req *attackRequest) {
	wait := true
	switch v := r.URL.Query().Get("wait"); v {
	case "", "1", "true", "yes":
	case "0", "false", "no":
		wait = false
	default:
		http.Error(w, fmt.Sprintf("bad wait=%q (want one of 0/1/true/false/yes/no)", v), http.StatusBadRequest)
		return
	}
	req.maxStructures = s.solverOptions(req).MaxStructures
	req.capResolved = true
	var key string
	if s.cache != nil && wait {
		key = req.cacheKey()
		if req.cacheBypass {
			s.met.cacheBypassed.Add(1)
		} else if body, ok := s.cache.get(key); ok {
			s.met.cacheHits.Add(1)
			w.Header().Set("X-Revcnnd-Cache", "hit")
			writeBody(w, http.StatusOK, body)
			return
		} else {
			s.met.cacheMisses.Add(1)
		}
	}
	if req.timeout <= 0 || req.timeout > s.cfg.JobTimeout {
		req.timeout = s.cfg.JobTimeout
	}
	payload, err := encodeRequest(req)
	if err != nil {
		http.Error(w, "request encoding failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	id := jobstore.NewID()

	// Register before submitting so a Shutdown racing this handler either
	// sees the drain flag here or finds the job tracked and aborts it.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		http.Error(w, errDraining.Error(), http.StatusServiceUnavailable)
		return
	}
	if wait {
		s.tracked[id] = struct{}{}
	}
	s.mu.Unlock()
	if wait {
		defer s.untrack(id)
	}

	deadline := time.Now().Add(req.timeout)
	if err := s.store.Submit(jobstore.Job{ID: id, Payload: payload, Deadline: deadline}); err != nil {
		code := http.StatusServiceUnavailable
		if errors.Is(err, jobstore.ErrFull) {
			s.met.rejected.Add(1)
			code = http.StatusTooManyRequests
			w.Header().Set("Retry-After", "1")
		}
		s.log.Info("job rejected", "job", id, "reason", err)
		http.Error(w, err.Error(), code)
		return
	}
	if wait && s.isDraining() {
		// Shutdown's abort sweep may have run between tracking and Submit,
		// finding nothing to cancel; abort the stragglers ourselves. A job a
		// worker already claimed drains to completion like any in-flight job.
		if wasQueued, cerr := s.store.Cancel(id); cerr == nil && wasQueued {
			s.met.aborted.Add(1)
			s.log.Info("job aborted by shutdown", "job", id)
			http.Error(w, errDraining.Error(), http.StatusServiceUnavailable)
			return
		}
	}

	if !wait {
		s.met.async.Add(1)
		s.log.Info("job accepted", "job", id, "mode", req.mode, "timeout", req.timeout)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Location", "/v1/jobs/"+id)
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\"job_id\":%q,\"state\":%q}\n", id, jobstore.StateQueued)
		return
	}

	// Wait out the job on a store watch detached from the client connection:
	// the deadline plus two leases covers queue wait, execution, and one full
	// lease-recovery round before we give up on the store.
	waitCtx, cancelWait := context.WithDeadline(context.Background(), deadline.Add(2*s.cfg.Lease+5*time.Second))
	defer cancelWait()
	type waitResult struct {
		rec *jobstore.Record
		err error
	}
	recc := make(chan waitResult, 1)
	go func() {
		rec, werr := s.store.Wait(waitCtx, id)
		recc <- waitResult{rec, werr}
	}()

	select {
	case <-r.Context().Done():
		// The client disconnected. Cancel the job — a queued job dies here
		// (counted as cancelled, like a running job the worker abandons), a
		// running one is flagged for the worker — then await the terminal
		// state so completed work can still populate the cache. Nothing is
		// written: the peer is gone.
		if wasQueued, cerr := s.store.Cancel(id); cerr == nil && wasQueued {
			s.met.cancelled.Add(1)
		}
		res := <-recc
		s.met.abandoned.Add(1)
		s.log.Info("job canceled by client disconnect; no response written", "job", id)
		if res.err == nil && res.rec.State == jobstore.StateDone {
			s.maybeCache(key, res.rec)
		}
		return
	case res := <-recc:
		if res.err != nil {
			http.Error(w, "job did not complete: "+res.err.Error(), http.StatusGatewayTimeout)
			return
		}
		s.writeOutcome(w, key, res.rec)
	}
}

// maybeCache stores a finished job's cacheable envelope, re-marshaling the
// body with the cached flag set (byte-stable: compact JSON, sorted map
// keys, round-trip-exact numbers).
func (s *Server) maybeCache(key string, rec *jobstore.Record) {
	if s.cache == nil || key == "" || len(rec.Result) == 0 {
		return
	}
	env, err := decodeEnvelope(rec.Result)
	if err != nil || !env.Cacheable {
		return
	}
	var resp attackResponse
	if err := json.Unmarshal(env.Body, &resp); err != nil {
		return
	}
	resp.Cached = true
	body, err := marshalResponse(&resp)
	if err != nil {
		return
	}
	s.met.cacheStores.Add(1)
	s.met.cacheEvictions.Add(s.cache.put(key, body))
}

// writeOutcome relays a terminal job record to the synchronous client.
func (s *Server) writeOutcome(w http.ResponseWriter, key string, rec *jobstore.Record) {
	switch rec.State {
	case jobstore.StateDone, jobstore.StateFailed:
		env, err := decodeEnvelope(rec.Result)
		if err != nil {
			msg := rec.Err
			if msg == "" {
				msg = "job result unreadable: " + err.Error()
			}
			http.Error(w, msg, http.StatusInternalServerError)
			return
		}
		if env.Body == nil {
			http.Error(w, env.ErrMsg, env.Status)
			return
		}
		if env.Cacheable {
			s.maybeCache(key, rec)
		}
		writeBody(w, env.Status, env.Body)
	case jobstore.StateCancelled:
		// Either shutdown aborted it while queued or another client's DELETE
		// landed; both are service-side terminations of a live request.
		http.Error(w, errDraining.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, "job in unexpected state "+string(rec.State), http.StatusInternalServerError)
	}
}
