// Command revcnn runs the paper's structure reverse-engineering attack
// (§3) end to end: it simulates a victim on the CNN accelerator, observes
// the off-chip memory trace, and enumerates every network structure
// consistent with the trace.
//
// Usage:
//
//	revcnn -model alexnet [-modular] [-tol 1.35] [-rank] [-depthdiv 16]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"cnnrev"
)

func main() {
	log.SetFlags(0)
	model := flag.String("model", "lenet", "victim model: lenet|convnet|alexnet|squeezenet|vgg11|nin|resnetmini")
	classes := flag.Int("classes", 0, "classifier outputs (default: 10 small nets, 1000 large)")
	modular := flag.Bool("modular", false, "assume repeated modules are identical (paper's SqueezeNet reduction)")
	tol := flag.Float64("tol", 1.35, "execution-time filter tolerance (max cycles-per-MAC spread)")
	rank := flag.Bool("rank", false, "short-train candidates on synthetic data and rank them (Figs 4-5)")
	depthDiv := flag.Int("depthdiv", 16, "depth scaling for candidate training")
	epochs := flag.Int("epochs", 0, "with -rank: per-candidate epoch budget (0 = default)")
	halving := flag.Bool("halving", false, "with -rank: successive-halving tournament instead of full-budget training")
	eta := flag.Int("eta", 0, "with -halving: elimination factor (0 = default 2)")
	minEpochs := flag.Int("minepochs", 0, "with -halving: first-rung epoch budget (0 = default 1)")
	seed := flag.Int64("seed", 2, "victim weight/input seed")
	dataflow := flag.String("dataflow", "", "accelerator dataflow: os|ws|rs (or output-stationary|weight-stationary|row-stationary; default os)")
	defenseKind := flag.String("defense", "", "defensive trace transform on the victim side: none|dummy|pad|rerand|fuse|oram")
	defenseSeed := flag.Int64("defense-seed", 0, "seed for the randomized defenses (dummy, rerand, oram)")
	dummyRate := flag.Float64("defense-dummy-rate", 0, "with -defense dummy: injected records per real record (0 = default 1)")
	bucketBytes := flag.Int("defense-bucket-bytes", 0, "with -defense pad: bucket granularity in bytes (0 = next power of two)")
	onchipBytes := flag.Int64("defense-onchip-bytes", 0, "with -defense fuse: on-chip buffer capacity in bytes (0 = 1 MiB)")
	oramZ := flag.Int("defense-oram-z", 0, "with -defense oram: bucket capacity Z (0 = default 4)")
	oramBlock := flag.Int("defense-oram-block", 0, "with -defense oram: ORAM block size in bytes (0 = default 64)")
	tolerant := flag.Bool("tolerant", false, "use the noise-tolerant analysis path")
	traceFile := flag.String("trace", "", "attack a recorded trace file (from cmd/tracegen) instead of simulating; requires -inw/-ind/-classes")
	inW := flag.Int("inw", 0, "with -trace: input width")
	inD := flag.Int("ind", 0, "with -trace: input channel count")
	flag.Parse()

	df, err := cnnrev.ParseDataflow(*dataflow)
	if err != nil {
		log.Fatalf("revcnn: %v", err)
	}
	dcfg := cnnrev.DefenseConfig{
		Kind: *defenseKind, Seed: *defenseSeed, DummyRate: *dummyRate,
		BucketBytes: *bucketBytes, OnChipBytes: *onchipBytes,
	}
	dcfg.ORAM.Z = *oramZ
	dcfg.ORAM.BlockBytes = *oramBlock
	if err := dcfg.Validate(); err != nil {
		log.Fatalf("revcnn: %v", err)
	}

	if *traceFile != "" {
		attackTraceFile(*traceFile, *inW, *inD, *classes)
		return
	}

	net, err := buildModel(*model, *classes)
	if err != nil {
		log.Fatal(err)
	}
	net.InitWeights(*seed)

	opt := cnnrev.DefaultSolverOptions()
	opt.IdenticalModules = *modular
	opt.TimingSpreadMax = *tol
	spec := cnnrev.StructureAttackSpec{Defense: dcfg, Tolerant: *tolerant}
	rep, err := cnnrev.RunStructureAttackSpec(context.Background(), net, cnnrev.AccelConfig{Dataflow: df}, opt, *seed, spec)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("victim: %s (%v input, %d classes)\n", net.Name, net.Input, net.NumClasses())
	fmt.Printf("accelerator dataflow: %s (detected from trace: %s)\n", rep.Dataflow, rep.DetectedDataflow)
	if rep.Defense != "" {
		fmt.Printf("defense: %s (bandwidth x%.2f, latency x%.2f)\n",
			rep.Defense, rep.DefenseStats.BandwidthOverhead(), rep.DefenseStats.LatencyOverhead())
	}
	fmt.Printf("trace observed: %d bytes of off-chip transfers\n", rep.TraceBytes)
	rep.Analysis.WriteReport(os.Stdout)
	fmt.Printf("candidate structures: %d (true structure found: %v)\n",
		len(rep.Structures), rep.TruthIndex >= 0)
	fmt.Println("\nper-layer candidate configurations:")
	for seg := range rep.Analysis.Segments {
		cfgs := rep.PerLayer[seg]
		if len(cfgs) == 0 {
			continue
		}
		fmt.Printf("  segment %d:\n", seg)
		for _, c := range cfgs {
			fmt.Printf("    %s\n", c.String())
		}
	}

	if *rank {
		fmt.Println("\nshort-training candidates on synthetic data...")
		res := cnnrev.RankCandidatesResult(context.Background(), rep, net.Input, cnnrev.RankConfig{
			DepthDiv: *depthDiv, Seed: *seed, Epochs: *epochs,
			Halving: *halving, Eta: *eta, MinEpochs: *minEpochs,
		})
		if res.Halving {
			fmt.Printf("successive-halving tournament: %d epochs total across %d rungs\n",
				res.TotalEpochs, len(res.Rungs))
			for i, rg := range res.Rungs {
				fmt.Printf("  rung %d: %3d candidates x budget %2d  (%4d epochs, %d eliminated)\n",
					i, rg.Candidates, rg.TargetEpochs, rg.Epochs, rg.Eliminated)
			}
		}
		if res.Skipped > 0 {
			fmt.Printf("candidate cap: %d candidates never trained\n", res.Skipped)
		}
		for i, s := range res.Scores {
			mark := ""
			if s.IsTruth {
				mark = "  <-- original structure"
			}
			fmt.Printf("%3d. candidate %2d  acc %.3f  (%d epochs)%s\n", i+1, s.Index, s.Accuracy, s.Epochs, mark)
		}
	}
}

// attackTraceFile runs the structure attack on a recorded trace (the
// tracegen → revcnn workflow: the adversary need not share a process with
// the victim).
func attackTraceFile(path string, inW, inD, classes int) {
	if inW <= 0 || inD <= 0 || classes <= 0 {
		log.Fatal("revcnn: -trace requires -inw, -ind and -classes")
	}
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	tr, err := cnnrev.ReadTrace(f)
	if err != nil {
		log.Fatal(err)
	}
	input := cnnrev.Shape{C: inD, H: inW, W: inW}
	structures, err := cnnrev.RunStructureAttackOnTrace(tr, input, classes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace %s: %d records, %d block transfers\n", path, len(tr.Accesses), tr.Blocks())
	if det, err := cnnrev.DetectTraceDataflow(tr, input); err == nil {
		fmt.Printf("detected dataflow: %s\n", det.Class)
	}
	fmt.Printf("candidate structures: %d\n", len(structures))
	for i, st := range structures {
		fmt.Printf("candidate %d:\n", i)
		for _, c := range st.WeightedConfigs() {
			fmt.Printf("  %s\n", c.String())
		}
	}
}

func buildModel(model string, classes int) (*cnnrev.Network, error) {
	if classes == 0 {
		classes = 10
		if model == "alexnet" || model == "squeezenet" {
			classes = 1000
		}
	}
	switch model {
	case "lenet":
		return cnnrev.LeNet(classes), nil
	case "convnet":
		return cnnrev.ConvNet(classes), nil
	case "alexnet":
		return cnnrev.AlexNet(classes, 1), nil
	case "squeezenet":
		return cnnrev.SqueezeNet(classes, 1), nil
	case "vgg11":
		return cnnrev.VGG11(classes, 1), nil
	case "nin":
		return cnnrev.NiN(classes, 1), nil
	case "resnetmini":
		return cnnrev.ResNetMini(classes, 1), nil
	}
	return nil, fmt.Errorf("unknown model %q", model)
}
