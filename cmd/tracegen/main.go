// Command tracegen runs one of the study networks on the simulated CNN
// accelerator and writes the observable off-chip memory trace to a file.
//
// Usage:
//
//	tracegen -model alexnet -out alexnet.trace [-zeroprune] [-depthdiv 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cnnrev"
)

func main() {
	log.SetFlags(0)
	model := flag.String("model", "lenet", "victim model: lenet|convnet|alexnet|squeezenet|vgg11|nin|resnetmini")
	out := flag.String("out", "", "output trace file (required)")
	zeroPrune := flag.Bool("zeroprune", false, "enable dynamic zero pruning of feature maps")
	depthDiv := flag.Int("depthdiv", 1, "channel-count divisor (1 = paper size)")
	classes := flag.Int("classes", 0, "classifier outputs (default: 10 small nets, 1000 large)")
	seed := flag.Int64("seed", 2, "input/weight seed")
	dataflow := flag.String("dataflow", "", "accelerator dataflow: os|ws|rs (or output-stationary|weight-stationary|row-stationary; default os)")
	defenseKind := flag.String("defense", "", "defensive trace transform applied before writing: none|dummy|pad|rerand|fuse|oram")
	defenseSeed := flag.Int64("defense-seed", 0, "seed for the randomized defenses (dummy, rerand, oram)")
	dummyRate := flag.Float64("defense-dummy-rate", 0, "with -defense dummy: injected records per real record (0 = default 1)")
	bucketBytes := flag.Int("defense-bucket-bytes", 0, "with -defense pad: bucket granularity in bytes (0 = next power of two)")
	onchipBytes := flag.Int64("defense-onchip-bytes", 0, "with -defense fuse: on-chip buffer capacity in bytes (0 = 1 MiB)")
	oramZ := flag.Int("defense-oram-z", 0, "with -defense oram: bucket capacity Z (0 = default 4)")
	oramBlock := flag.Int("defense-oram-block", 0, "with -defense oram: ORAM block size in bytes (0 = default 64)")
	flag.Parse()
	if *out == "" {
		log.Fatal("tracegen: -out is required")
	}
	df, err := cnnrev.ParseDataflow(*dataflow)
	if err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	dcfg := cnnrev.DefenseConfig{
		Kind: *defenseKind, Seed: *defenseSeed, DummyRate: *dummyRate,
		BucketBytes: *bucketBytes, OnChipBytes: *onchipBytes,
	}
	dcfg.ORAM.Z = *oramZ
	dcfg.ORAM.BlockBytes = *oramBlock
	if err := dcfg.Validate(); err != nil {
		log.Fatalf("tracegen: %v", err)
	}

	net, err := buildModel(*model, *classes, *depthDiv)
	if err != nil {
		log.Fatal(err)
	}
	net.InitWeights(*seed)
	cfg := cnnrev.AccelConfig{ZeroPrune: *zeroPrune, Dataflow: df}
	tr, err := cnnrev.CaptureTrace(net, cfg, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if dcfg.Enabled() {
		defended, st, derr := cnnrev.DefendTrace(tr, dcfg)
		if derr != nil {
			log.Fatalf("tracegen: %v", derr)
		}
		tr = defended
		fmt.Printf("defense %s: bandwidth x%.2f, latency x%.2f (%d -> %d block transfers)\n",
			st.Defense, st.BandwidthOverhead(), st.LatencyOverhead(), st.InputBlocks, st.OutputBlocks)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := cnnrev.WriteTrace(tr, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %s dataflow, %d records, %d block transfers (block %dB), last cycle %d\n",
		*out, df, len(tr.Accesses), tr.Blocks(), tr.BlockBytes, tr.LastCycle())
}

func buildModel(model string, classes, depthDiv int) (*cnnrev.Network, error) {
	if classes == 0 {
		classes = 10
		if model == "alexnet" || model == "squeezenet" {
			classes = 1000
		}
	}
	switch model {
	case "lenet":
		return cnnrev.LeNet(classes), nil
	case "convnet":
		return cnnrev.ConvNet(classes), nil
	case "alexnet":
		return cnnrev.AlexNet(classes, depthDiv), nil
	case "squeezenet":
		return cnnrev.SqueezeNet(classes, depthDiv), nil
	case "vgg11":
		return cnnrev.VGG11(classes, depthDiv), nil
	case "nin":
		return cnnrev.NiN(classes, depthDiv), nil
	case "resnetmini":
		return cnnrev.ResNetMini(classes, depthDiv), nil
	}
	return nil, fmt.Errorf("unknown model %q", model)
}
