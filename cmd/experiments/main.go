// Command experiments regenerates the paper's evaluation artifacts: Tables
// 3-4 and Figures 3, 4, 5 and 7, plus the reproduction's ablations.
//
// Usage:
//
//	experiments -run all [-outdir results] [-scale medium]
//	experiments -run table3,fig7
//
// The -scale flag trades fidelity for time in the training-based figures:
// "smoke" finishes in seconds, "medium" in minutes, "full" trains every
// candidate longer.
//
// The -cpuprofile and -memprofile flags write pprof profiles covering the
// selected experiments, for hunting pipeline hot spots:
//
//	experiments -run fig4 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cnnrev/internal/core"
	"cnnrev/internal/experiments"
)

func main() {
	log.SetFlags(0)
	run := flag.String("run", "all", "comma-separated: table3,table3x,table4,fig3,fig4,fig5,fig7,noise,rank,dataflow,defense,ablations")
	outdir := flag.String("outdir", "results", "directory for CSV artifacts")
	scale := flag.String("scale", "smoke", "training scale for figs 4/5: smoke|medium|full")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fatal(f.Close())
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fatal(err)
			runtime.GC() // report live steady-state heap, not transient garbage
			fatal(pprof.WriteHeapProfile(f))
			fatal(f.Close())
		}()
	}

	want := map[string]bool{}
	for _, s := range strings.Split(*run, ",") {
		want[strings.TrimSpace(s)] = true
	}
	all := want["all"]
	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	rc4, rc5 := rankConfigs(*scale)

	if all || want["table3"] {
		timed("table3", func() {
			rows, err := experiments.Table3(nil)
			fatal(err)
			fmt.Print(experiments.FormatTable3(rows))
		})
	}
	if all || want["table3x"] {
		timed("table3x", func() {
			rows, err := experiments.Table3Extended()
			fatal(err)
			fmt.Print(experiments.FormatTable3(rows))
		})
	}
	if all || want["table4"] {
		timed("table4", func() {
			rep, err := experiments.Table4()
			fatal(err)
			fmt.Print(rep.String())
		})
	}
	if all || want["fig3"] {
		timed("fig3", func() {
			path := filepath.Join(*outdir, "fig3_alexnet_trace.csv")
			f, err := os.Create(path)
			fatal(err)
			defer f.Close()
			rep, err := experiments.Fig3("alexnet", f)
			fatal(err)
			fmt.Print(rep.String())
			fmt.Printf("CSV written to %s\n", path)
		})
	}
	if all || want["fig4"] {
		timed("fig4", func() {
			rep, err := experiments.Fig4(rc4)
			fatal(err)
			fmt.Print(rep.String())
		})
	}
	if all || want["fig5"] {
		timed("fig5", func() {
			rep, err := experiments.Fig5(rc5)
			fatal(err)
			fmt.Print(rep.String())
		})
	}
	if all || want["fig7"] {
		timed("fig7", func() {
			filters := 96
			if *scale == "smoke" {
				filters = 16
			}
			rep, err := experiments.Fig7(filters)
			fatal(err)
			fmt.Print(rep.String())
		})
	}
	if all || want["noise"] {
		timed("noise", func() {
			points, err := experiments.NoiseSweep(nil)
			fatal(err)
			md := experiments.FormatNoiseSweep(points)
			fmt.Print(md)
			path := filepath.Join(*outdir, "noise_sweep.md")
			fatal(os.WriteFile(path, []byte(md), 0o644))
			fmt.Printf("markdown written to %s\n", path)
		})
	}
	if all || want["rank"] {
		timed("rank", func() {
			rows, err := experiments.RankPerf(*scale)
			fatal(err)
			md := experiments.FormatRankPerf(*scale, rows)
			fmt.Print(md)
			mdPath := filepath.Join(*outdir, "perf_rank.md")
			fatal(os.WriteFile(mdPath, []byte(md), 0o644))
			jsonPath := filepath.Join(*outdir, "bench_rank.json")
			fatal(experiments.WriteBenchRankJSON(jsonPath, *scale, rows))
			fmt.Printf("markdown written to %s, JSON to %s\n", mdPath, jsonPath)
		})
	}
	if all || want["dataflow"] {
		timed("dataflow", func() {
			rows, err := experiments.DataflowMatrix(nil)
			fatal(err)
			md := experiments.FormatDataflowMatrix(rows)
			fmt.Print(md)
			path := filepath.Join(*outdir, "dataflow_matrix.md")
			fatal(os.WriteFile(path, []byte(md), 0o644))
			fmt.Printf("markdown written to %s\n", path)
		})
	}
	if all || want["defense"] {
		timed("defense", func() {
			// The smoke scale keeps CI honest without the large-net captures:
			// one MNIST-scale victim against a defense subset.
			var models, defenses []string
			if *scale == "smoke" {
				models = []string{"lenet"}
				defenses = []string{"none", "pad", "fuse"}
			}
			rows, err := experiments.DefenseMatrix(models, defenses)
			fatal(err)
			md := experiments.FormatDefenseMatrix(rows)
			fmt.Print(md)
			path := filepath.Join(*outdir, "defense_matrix.md")
			fatal(os.WriteFile(path, []byte(md), 0o644))
			fmt.Printf("markdown written to %s\n", path)
		})
	}
	if all || want["ablations"] {
		timed("ablations", func() {
			rows, err := experiments.AblationTimingSweep("alexnet", nil)
			fatal(err)
			fmt.Print(experiments.FormatTimingSweep("alexnet", rows))

			kb, err := experiments.AblationKernelBound("alexnet", nil)
			fatal(err)
			fmt.Print(experiments.FormatKernelBound("alexnet", kb))

			bias, err := experiments.AblationBiasInDRAM("lenet")
			fatal(err)
			fmt.Print(bias.String())

			pt, err := experiments.AblationZeroPruneTraffic(nil)
			fatal(err)
			fmt.Print(experiments.FormatPruneTraffic(pt))

			or, err := experiments.AblationORAM("lenet")
			fatal(err)
			fmt.Print(or.String())

			bs, err := experiments.AblationBlockSize("lenet", nil)
			fatal(err)
			fmt.Print(experiments.FormatBlockSize("lenet", bs))

			tn, err := experiments.AblationTimingNoise("alexnet", nil)
			fatal(err)
			fmt.Print(experiments.FormatTimingNoise("alexnet", tn))

			pd, err := experiments.AblationPadDefense()
			fatal(err)
			fmt.Print(pd.String())

			df, err := experiments.AblationDataflow("alexnet")
			fatal(err)
			fmt.Print(experiments.FormatDataflow("alexnet", df))
		})
	}
}

// rankConfigs maps the scale flag to Fig-4/5 training configurations.
func rankConfigs(scale string) (core.RankConfig, core.RankConfig) {
	switch scale {
	case "full":
		return core.RankConfig{Classes: 8, PerClass: 40, Epochs: 3, DepthDiv: 16, Seed: 9},
			core.RankConfig{Classes: 8, PerClass: 30, Epochs: 3, DepthDiv: 16, TopK: 5, Seed: 9}
	case "medium":
		return core.RankConfig{Classes: 6, PerClass: 30, Epochs: 2, DepthDiv: 24, Seed: 9},
			core.RankConfig{Classes: 8, PerClass: 20, Epochs: 3, DepthDiv: 24, TopK: 5, Seed: 9}
	default: // smoke
		return core.RankConfig{Classes: 3, PerClass: 6, Epochs: 1, DepthDiv: 48, Seed: 9, MaxCandidates: 6},
			core.RankConfig{Classes: 6, PerClass: 8, Epochs: 1, DepthDiv: 32, TopK: 5, Seed: 9}
	}
}

func timed(name string, f func()) {
	fmt.Printf("==== %s ====\n", name)
	start := time.Now()
	f()
	fmt.Printf("[%s took %s]\n\n", name, time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
