// Command weightrev runs the paper's weight reverse-engineering attack
// (§4) against a magnitude-pruned AlexNet CONV1 layer on the zero-pruning
// accelerator, recovering every weight as a ratio of the bias and checking
// the error against the paper's 2^-10 bound (Figure 7).
//
// Usage:
//
//	weightrev [-filters 96] [-zerofrac 0.25]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"cnnrev"
	"cnnrev/internal/core"
)

func main() {
	log.SetFlags(0)
	filters := flag.Int("filters", 96, "number of CONV1 filters to recover")
	zeroFrac := flag.Float64("zerofrac", 0.25, "fraction of weights pruned to exactly zero")
	seed := flag.Int64("seed", 42, "victim weight seed")
	flag.Parse()

	net := cnnrev.PrunedConv1(*filters, *zeroFrac, *seed)
	fmt.Printf("victim: AlexNet CONV1, %d filters of 11x11x3, %.0f%% zero weights\n",
		*filters, *zeroFrac*100)

	start := time.Now()
	rep, err := core.RunWeightAttack(net, cnnrev.AccelConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d filters in %s using %d device queries\n",
		rep.Filters, time.Since(start).Round(time.Millisecond), rep.Queries)
	fmt.Printf("max |w/b| error: %.3g (paper bound: 2^-10 = %.3g)\n", rep.MaxRatioErr, 1.0/1024)
	fmt.Printf("zero weights: %d/%d detected, %d misclassified\n",
		rep.ZerosDetected, rep.ZerosActual, rep.ZeroErrors)
	if rep.MaxRatioErr < 1.0/1024 && rep.ZeroErrors == 0 {
		fmt.Println("PASS: recovery within the paper's reported precision")
	} else {
		fmt.Println("WARN: recovery outside the paper's reported precision")
	}
}
