// Command weightrev runs the paper's weight reverse-engineering attack
// (§4) against a magnitude-pruned AlexNet CONV1 layer on the zero-pruning
// accelerator, recovering every weight as a ratio of the bias and checking
// the error against the paper's 2^-10 bound (Figure 7).
//
// Usage:
//
//	weightrev [-filters 96] [-zerofrac 0.25] [-parallel=false]
//
// The -cpuprofile and -memprofile flags write pprof profiles of the attack
// for hunting hot spots:
//
//	weightrev -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cnnrev"
	"cnnrev/internal/core"
)

func main() {
	log.SetFlags(0)
	filters := flag.Int("filters", 96, "number of CONV1 filters to recover")
	zeroFrac := flag.Float64("zerofrac", 0.25, "fraction of weights pruned to exactly zero")
	seed := flag.Int64("seed", 42, "victim weight seed")
	parallel := flag.Bool("parallel", true, "recover filters in parallel on the worker pool (results are identical either way)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the attack to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (taken after the run) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			fatal(f.Close())
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			fatal(err)
			runtime.GC() // report live steady-state heap, not transient garbage
			fatal(pprof.WriteHeapProfile(f))
			fatal(f.Close())
		}()
	}

	net := cnnrev.PrunedConv1(*filters, *zeroFrac, *seed)
	mode := "parallel"
	if !*parallel {
		mode = "serial"
	}
	fmt.Printf("victim: AlexNet CONV1, %d filters of 11x11x3, %.0f%% zero weights (%s recovery)\n",
		*filters, *zeroFrac*100, mode)

	start := time.Now()
	rep, err := core.RunWeightAttackOpts(context.Background(), net, cnnrev.AccelConfig{},
		core.WeightAttackConfig{Serial: !*parallel})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	qps := float64(rep.Queries) / elapsed.Seconds()
	fmt.Printf("recovered %d filters in %s using %d device queries (%.0f queries/s)\n",
		rep.Filters, elapsed.Round(time.Millisecond), rep.Queries, qps)
	fmt.Printf("max |w/b| error: %.3g (paper bound: 2^-10 = %.3g)\n", rep.MaxRatioErr, 1.0/1024)
	fmt.Printf("zero weights: %d/%d detected, %d misclassified\n",
		rep.ZerosDetected, rep.ZerosActual, rep.ZeroErrors)
	if rep.MaxRatioErr < 1.0/1024 && rep.ZeroErrors == 0 {
		fmt.Println("PASS: recovery within the paper's reported precision")
	} else {
		fmt.Println("WARN: recovery outside the paper's reported precision")
	}
}

func fatal(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
