// Command revcnnd serves the paper's attack pipeline over HTTP: clients
// upload recorded memory traces (or ask for a simulated victim by spec) and
// receive the recovered structure candidates — optionally ranked, and with
// §4 weight recovery for compatible victims. Jobs run on a bounded queue
// with per-job deadlines; SIGTERM/SIGINT drain in-flight jobs before exit.
//
// Usage:
//
//	revcnnd -addr :8080 -workers 1 -queue 8 -timeout 60s
//
// Scale-out: point several processes at one shared store directory to split
// the service horizontally — stateless frontends submit and wait, workers
// claim jobs under a lease and heartbeat while executing, and a worker that
// dies mid-job has its lease expire and the job re-claimed elsewhere:
//
//	revcnnd -addr :8080 -role frontend -store /srv/revcnn/jobs
//	revcnnd -addr :8081 -role worker   -store /srv/revcnn/jobs -workers 2
//
// Endpoints:
//
//	GET    /healthz              liveness + role + queue occupancy
//	GET    /metrics              Prometheus text metrics
//	POST   /v1/attack/trace      raw trace body; ?inw=&ind=&classes=[&rank=1...][&wait=0]
//	POST   /v1/attack/simulate   JSON victim spec; see internal/serve [?wait=0]
//	GET    /v1/jobs/{id}         async job status + result
//	DELETE /v1/jobs/{id}         cancel a queued or running job
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cnnrev/internal/jobstore"
	"cnnrev/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 1, "concurrent attack jobs (each job parallelizes internally)")
	queue := flag.Int("queue", 8, "max queued jobs; a full queue returns 429")
	timeout := flag.Duration("timeout", 60*time.Second, "per-job deadline cap (requests may ask for less)")
	maxUpload := flag.Int64("max-upload", 64<<20, "max trace upload size in bytes")
	maxStructures := flag.Int("max-structures", 0, "cap candidate enumeration per job (0 = solver default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache budget in bytes (0 = 256 MiB default, negative disables)")
	drain := flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight jobs")
	storeDir := flag.String("store", "", "shared filesystem job-store directory (empty = private in-process queue)")
	role := flag.String("role", serve.RoleBoth, "process role: both, frontend (no workers), or worker (no attack surface)")
	lease := flag.Duration("lease", 15*time.Second, "job lease duration; a worker silent this long forfeits its job")
	maxRetries := flag.Int("max-retries", 2, "lease-expiry re-claims before a job is failed as orphaned")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if err := run(log, *addr, *workers, *queue, *timeout, *maxUpload, *maxStructures,
		*cacheBytes, *drain, *storeDir, *role, *lease, *maxRetries); err != nil {
		log.Error("revcnnd failed", "err", err)
		os.Exit(1)
	}
}

func run(log *slog.Logger, addr string, workers, queue int, timeout time.Duration,
	maxUpload int64, maxStructures int, cacheBytes int64, drain time.Duration,
	storeDir, role string, lease time.Duration, maxRetries int) error {
	switch role {
	case serve.RoleBoth, serve.RoleFrontend, serve.RoleWorker:
	default:
		return fmt.Errorf("unknown -role %q (want both, frontend, or worker)", role)
	}
	if role != serve.RoleBoth && storeDir == "" {
		return fmt.Errorf("-role %s requires a shared -store directory", role)
	}

	var store jobstore.Store
	if storeDir != "" {
		fs, err := jobstore.OpenFS(storeDir, jobstore.Options{
			QueueDepth: queue,
			MaxRetries: maxRetries,
		})
		if err != nil {
			return fmt.Errorf("open job store: %w", err)
		}
		defer fs.Close()
		store = fs
	}

	srv := serve.New(serve.Config{
		Workers:        workers,
		QueueDepth:     queue,
		JobTimeout:     timeout,
		MaxUploadBytes: maxUpload,
		MaxStructures:  maxStructures,
		CacheBytes:     cacheBytes,
		Store:          store,
		Role:           role,
		Lease:          lease,
		MaxRetries:     maxRetries,
		Logger:         log,
	})

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Info("revcnnd listening", "addr", ln.Addr().String(), "role", role,
		"workers", workers, "queue", queue, "timeout", timeout, "store", storeDir)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Info("shutting down", "signal", sig.String())
	case err := <-errc:
		return fmt.Errorf("listener failed: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	// Drain the job queue first (aborting queued jobs, finishing in-flight
	// ones), then close the listener and let handlers flush responses.
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("job drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("http shutdown", "err", err)
	}
	log.Info("drained; exiting")
	return nil
}
