// Command revcnnd serves the paper's attack pipeline over HTTP: clients
// upload recorded memory traces (or ask for a simulated victim by spec) and
// receive the recovered structure candidates — optionally ranked, and with
// §4 weight recovery for compatible victims. Jobs run on a bounded queue
// with per-job deadlines; SIGTERM/SIGINT drain in-flight jobs before exit.
//
// Usage:
//
//	revcnnd -addr :8080 -workers 1 -queue 8 -timeout 60s
//
// Endpoints:
//
//	GET  /healthz              liveness + queue occupancy
//	GET  /metrics              Prometheus text metrics
//	POST /v1/attack/trace      raw trace body; ?inw=&ind=&classes=[&rank=1...]
//	POST /v1/attack/simulate   JSON victim spec; see internal/serve
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cnnrev/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 1, "concurrent attack jobs (each job parallelizes internally)")
	queue := flag.Int("queue", 8, "max queued jobs; a full queue returns 429")
	timeout := flag.Duration("timeout", 60*time.Second, "per-job deadline cap (requests may ask for less)")
	maxUpload := flag.Int64("max-upload", 64<<20, "max trace upload size in bytes")
	maxStructures := flag.Int("max-structures", 0, "cap candidate enumeration per job (0 = solver default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache budget in bytes (0 = 256 MiB default, negative disables)")
	drain := flag.Duration("drain-timeout", 2*time.Minute, "how long shutdown waits for in-flight jobs")
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		JobTimeout:     *timeout,
		MaxUploadBytes: *maxUpload,
		MaxStructures:  *maxStructures,
		CacheBytes:     *cacheBytes,
		Logger:         log,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("revcnnd listening", "addr", *addr, "workers", *workers, "queue", *queue, "timeout", *timeout)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		log.Info("shutting down", "signal", sig.String())
	case err := <-errc:
		log.Error("listener failed", "err", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	// Drain the job queue first (aborting queued jobs, finishing in-flight
	// ones), then close the listener and let handlers flush responses.
	if err := srv.Shutdown(ctx); err != nil {
		log.Error("job drain incomplete", "err", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("http shutdown", "err", err)
	}
	log.Info("drained; exiting")
}
